#include <gtest/gtest.h>

#include <cmath>

#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/gradient_check.h"
#include "nn/loss.h"
#include "nn/lstm.h"

namespace drcell::nn {
namespace {

std::vector<Matrix> random_sequence(std::size_t steps, std::size_t batch,
                                    std::size_t features, Rng& rng) {
  std::vector<Matrix> seq(steps, Matrix(batch, features));
  for (auto& m : seq)
    for (double& v : m.data()) v = rng.normal();
  return seq;
}

TEST(Lstm, OutputShape) {
  Rng rng(1);
  Lstm lstm(3, 5, rng);
  const auto seq = random_sequence(4, 2, 3, rng);
  const Matrix h = lstm.forward(seq);
  EXPECT_EQ(h.rows(), 2u);
  EXPECT_EQ(h.cols(), 5u);
  EXPECT_EQ(lstm.hidden_states().size(), 4u);
}

TEST(Lstm, EmptySequenceThrows) {
  Rng rng(1);
  Lstm lstm(3, 5, rng);
  EXPECT_THROW(lstm.forward(std::vector<Matrix>{}), CheckError);
}

TEST(Lstm, InconsistentStepShapeThrows) {
  Rng rng(1);
  Lstm lstm(3, 5, rng);
  std::vector<Matrix> seq{Matrix(2, 3), Matrix(2, 4)};
  EXPECT_THROW(lstm.forward(seq), CheckError);
}

TEST(Lstm, ForgetGateBiasInitialisedToOne) {
  Rng rng(2);
  Lstm lstm(2, 3, rng);
  auto params = lstm.parameters();
  const Matrix& b = params[2]->value;  // bias is third
  for (std::size_t j = 3; j < 6; ++j) EXPECT_EQ(b(0, j), 1.0);
  for (std::size_t j = 0; j < 3; ++j) EXPECT_EQ(b(0, j), 0.0);
}

TEST(Lstm, DeterministicForward) {
  Rng rng_a(3), rng_b(3);
  Lstm a(3, 4, rng_a), b(3, 4, rng_b);
  Rng data_rng(4);
  const auto seq = random_sequence(3, 2, 3, data_rng);
  EXPECT_EQ(a.forward(seq), b.forward(seq));
}

TEST(Lstm, HiddenStaysBounded) {
  // |h| <= 1 because h = sigmoid * tanh.
  Rng rng(5);
  Lstm lstm(2, 6, rng);
  Rng data_rng(6);
  auto seq = random_sequence(20, 1, 2, data_rng);
  for (auto& m : seq) m *= 100.0;  // extreme inputs
  const Matrix h = lstm.forward(seq);
  EXPECT_LE(h.max_abs(), 1.0);
  EXPECT_FALSE(h.has_non_finite());
}

TEST(Lstm, RespondsToInputHistory) {
  // Different first steps must yield different final hidden states
  // (the recurrent memory actually carries information).
  Rng rng(7);
  Lstm lstm(2, 4, rng);
  Rng data_rng(8);
  auto seq1 = random_sequence(3, 1, 2, data_rng);
  auto seq2 = seq1;
  seq2.front()(0, 0) += 1.0;
  const Matrix h1 = lstm.forward(seq1);
  const Matrix h2 = lstm.forward(seq2);
  EXPECT_GT((h1 - h2).max_abs(), 1e-6);
}

TEST(LstmGateKernel, FusedGradientCheckAtBatch1And32) {
  // The fused fastmath gate kernel's analytic gradients against central
  // differences at the per-sample (B=1) and minibatch (B=32) widths the
  // trainer runs.
  for (std::size_t batch : {std::size_t{1}, std::size_t{32}}) {
    Rng rng(41);
    Lstm lstm(3, 5, rng);
    Rng data_rng(42 + batch);
    const auto seq = random_sequence(3, batch, 3, data_rng);
    Matrix target(batch, 5);
    for (double& v : target.data()) v = data_rng.normal();

    auto loss_fn = [&] { return mse_loss(lstm.forward(seq), target).value; };
    for (auto* p : lstm.parameters()) p->zero_grad();
    const auto l = mse_loss(lstm.forward(seq), target);
    lstm.backward(l.grad);
    for (auto* p : lstm.parameters()) {
      const auto r = check_gradient(*p, loss_fn, 1e-6);
      EXPECT_TRUE(r.passed(1e-4)) << "batch=" << batch
                                  << " max_rel=" << r.max_rel_diff;
    }
  }
}

#ifdef DRCELL_ENABLE_REFERENCE_KERNELS
TEST(LstmGateKernel, FusedMatchesStdReferenceWithinFastmathTolerance) {
  // Fused fastmath vs the retained std:: gate kernel, B ∈ {1, 32}: hidden
  // states and accumulated parameter gradients agree within the fastmath
  // divergence bound (per-activation ≤1e-12 relative; a few steps of BPTT
  // compound it only modestly). This is the numeric-divergence contract —
  // the two kernels are deliberately NOT bit-identical.
  for (std::size_t batch : {std::size_t{1}, std::size_t{32}}) {
    Rng rng_a(51), rng_b(51);
    Lstm fused(4, 6, rng_a);
    Lstm reference(4, 6, rng_b);
    reference.set_reference_gate_kernel(true);

    Rng data_rng(52 + batch);
    auto seq = random_sequence(4, batch, 4, data_rng);
    for (auto& m : seq) m *= 3.0;  // push some gates toward saturation
    Matrix grad_h(batch, 6);
    for (double& v : grad_h.data()) v = data_rng.normal();

    for (auto* p : fused.parameters()) p->zero_grad();
    for (auto* p : reference.parameters()) p->zero_grad();
    const Matrix h_fused = fused.forward(seq);
    const Matrix h_ref = reference.forward(seq);
    for (std::size_t i = 0; i < h_fused.data().size(); ++i)
      EXPECT_NEAR(h_fused.data()[i], h_ref.data()[i], 1e-12)
          << "batch=" << batch << " i=" << i;

    fused.backward(grad_h);
    reference.backward(grad_h);
    const auto pa = fused.parameters();
    const auto pb = reference.parameters();
    for (std::size_t p = 0; p < pa.size(); ++p)
      for (std::size_t i = 0; i < pa[p]->grad.data().size(); ++i)
        EXPECT_NEAR(pa[p]->grad.data()[i], pb[p]->grad.data()[i], 1e-10)
            << "batch=" << batch << " param=" << p;
  }
}
#endif

TEST(Lstm, GradientWrtParametersMatchesFiniteDifferences) {
  Rng rng(9);
  Lstm lstm(3, 4, rng);
  Rng data_rng(10);
  const auto seq = random_sequence(3, 2, 3, data_rng);
  Matrix target(2, 4);
  for (double& v : target.data()) v = data_rng.normal();

  auto loss_fn = [&] { return mse_loss(lstm.forward(seq), target).value; };
  for (auto* p : lstm.parameters()) p->zero_grad();
  const auto l = mse_loss(lstm.forward(seq), target);
  lstm.backward(l.grad);
  for (auto* p : lstm.parameters()) {
    const auto r = check_gradient(*p, loss_fn, 1e-6);
    EXPECT_TRUE(r.passed(1e-4)) << "max_rel=" << r.max_rel_diff;
  }
}

TEST(Lstm, GradientWrtInputsMatchesFiniteDifferences) {
  Rng rng(11);
  Lstm lstm(2, 3, rng);
  Rng data_rng(12);
  auto seq = random_sequence(3, 1, 2, data_rng);
  Matrix target(1, 3);
  for (double& v : target.data()) v = data_rng.normal();

  for (auto* p : lstm.parameters()) p->zero_grad();
  const auto l = mse_loss(lstm.forward(seq), target);
  const auto grad_x = lstm.backward(l.grad);
  ASSERT_EQ(grad_x.size(), 3u);

  const double eps = 1e-6;
  for (std::size_t t = 0; t < 3; ++t) {
    for (std::size_t j = 0; j < 2; ++j) {
      const double saved = seq[t](0, j);
      seq[t](0, j) = saved + eps;
      const double up = mse_loss(lstm.forward(seq), target).value;
      seq[t](0, j) = saved - eps;
      const double down = mse_loss(lstm.forward(seq), target).value;
      seq[t](0, j) = saved;
      EXPECT_NEAR(grad_x[t](0, j), (up - down) / (2 * eps), 1e-5)
          << "t=" << t << " j=" << j;
    }
  }
}

TEST(Lstm, SequenceBackwardMatchesFiniteDifferences) {
  // Loss reads *every* step's hidden state, exercising
  // backward_sequence's per-step external gradients.
  Rng rng(13);
  Lstm lstm(2, 3, rng);
  Rng data_rng(14);
  const auto seq = random_sequence(4, 1, 2, data_rng);

  auto loss_fn = [&] {
    lstm.forward(seq);
    double s = 0.0;
    for (const auto& h : lstm.hidden_states())
      for (double v : h.data()) s += v * v;
    return s;
  };

  for (auto* p : lstm.parameters()) p->zero_grad();
  lstm.forward(seq);
  std::vector<Matrix> grads;
  for (const auto& h : lstm.hidden_states()) {
    Matrix g = h;
    g *= 2.0;  // d/dh of sum h²
    grads.push_back(std::move(g));
  }
  lstm.backward_sequence(grads);

  for (auto* p : lstm.parameters()) {
    const auto r = check_gradient(*p, loss_fn, 1e-6);
    EXPECT_TRUE(r.passed(1e-4)) << "max_rel=" << r.max_rel_diff;
  }
}

TEST(Lstm, BackwardBeforeForwardThrows) {
  Rng rng(15);
  Lstm lstm(2, 3, rng);
  EXPECT_THROW(lstm.backward(Matrix(1, 3)), CheckError);
}

TEST(Lstm, CanLearnToRememberFirstStep) {
  // Tiny training sanity check: target equals a linear readout of the
  // *first* input step — only the recurrent path can pass it through.
  Rng rng(16);
  Lstm lstm(1, 8, rng);
  Dense head(8, 1, rng);
  std::vector<nn::Parameter*> params = lstm.parameters();
  for (auto* p : head.parameters()) params.push_back(p);

  Rng data_rng(17);
  double initial_loss = 0.0, final_loss = 0.0;
  const double lr = 0.05;
  for (int iter = 0; iter < 1200; ++iter) {
    // Batch of 8 sequences, 3 steps each; target = first step's value.
    std::vector<Matrix> seq(3, Matrix(8, 1));
    Matrix target(8, 1);
    for (std::size_t b = 0; b < 8; ++b) {
      for (std::size_t t = 0; t < 3; ++t)
        seq[t](b, 0) = data_rng.uniform(-1.0, 1.0);
      target(b, 0) = seq[0](b, 0);
    }
    for (auto* p : params) p->zero_grad();
    const Matrix h = lstm.forward(seq);
    const Matrix y = head.forward(h);
    const auto l = mse_loss(y, target);
    const Matrix dh = head.backward(l.grad);
    lstm.backward(dh);
    for (auto* p : params)
      for (std::size_t i = 0; i < p->value.data().size(); ++i)
        p->value.data()[i] -= lr * p->grad.data()[i];
    if (iter == 0) initial_loss = l.value;
    final_loss = l.value;
  }
  EXPECT_LT(final_loss, initial_loss * 0.2)
      << "LSTM failed to learn a memory task: " << initial_loss << " -> "
      << final_loss;
}

}  // namespace
}  // namespace drcell::nn
