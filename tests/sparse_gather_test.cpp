// The metro-tier fast-path contracts (linalg/sparse_matrix.h,
// nn/lstm.h, rl/qnetwork.h, mcs/candidate_set.h):
//
//  * the sparse gather kernels are BIT-IDENTICAL to the dense kernels on
//    the densified operand — the dense kernels accumulate each output
//    element in ascending-k order and skip zero terms, and the gather
//    replays exactly those additions in exactly that order;
//  * the candidate-restricted Q head scores every candidate bit-identically
//    to the full forward, so the candidate argmax equals the full masked
//    argmax whenever the candidates cover the allowed actions — and under
//    covering candidates a whole candidate train step matches the full
//    batched train step parameter for parameter;
//  * the candidate-set generator degenerates to the exact action space in
//    the covering case and otherwise returns a deterministic, strictly
//    ascending subset of the unsensed cells.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include "linalg/sparse_matrix.h"
#include "mcs/candidate_set.h"
#include "mcs/environment.h"
#include "mcs/state_encoder.h"
#include "nn/gradient_check.h"
#include "nn/lstm.h"
#include "rl/dqn_trainer.h"
#include "rl/drqn_qnetwork.h"
#include "rl/replay_buffer.h"
#include "rl/spatial_drqn_qnetwork.h"
#include "test_helpers.h"

namespace drcell {
namespace {

/// Densified matrix -> SparseRowMatrix (ascending columns per row, explicit
/// zeros dropped) — the canonical conversion every bit-identity test pivots
/// on.
SparseRowMatrix to_sparse(const Matrix& m) {
  SparseRowMatrix s(m.rows(), m.cols());
  for (std::size_t r = 0; r < m.rows(); ++r)
    for (std::size_t c = 0; c < m.cols(); ++c)
      if (m(r, c) != 0.0) s.append(r, c, m(r, c));
  return s;
}

std::vector<SparseRowMatrix> to_sparse_batch(const std::vector<Matrix>& seq) {
  std::vector<SparseRowMatrix> out;
  out.reserve(seq.size());
  for (const Matrix& m : seq) out.push_back(to_sparse(m));
  return out;
}

/// Timestep-major batch with controllable sparsity. `one_hot` rows hold a
/// single 1.0 (the selection-vector shape); otherwise entries are nonzero
/// with probability `density` and carry arbitrary values (the mixed-density
/// shape the gather must still match the dense kernel on).
std::vector<Matrix> random_batch(std::size_t steps, std::size_t batch,
                                 std::size_t cells, bool one_hot,
                                 double density, Rng& rng) {
  std::vector<Matrix> seq(steps, Matrix(batch, cells));
  for (auto& m : seq)
    for (std::size_t b = 0; b < batch; ++b) {
      if (one_hot) {
        m(b, rng.uniform_index(cells)) = 1.0;
      } else {
        for (std::size_t c = 0; c < cells; ++c)
          if (rng.bernoulli(density)) m(b, c) = rng.normal();
      }
    }
  return seq;
}

Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (double& v : m.data()) v = rng.normal();
  return m;
}

TEST(SparseRowMatrix, BasicsAndByteSize) {
  SparseRowMatrix s(3, 5);
  EXPECT_EQ(s.rows(), 3u);
  EXPECT_EQ(s.cols(), 5u);
  EXPECT_EQ(s.nonzeros(), 0u);
  EXPECT_EQ(s.density(), 0.0);

  s.append(0, 1, 1.0);
  s.append(0, 4, 2.0);
  s.append(2, 0, 3.0);  // row 1 stays empty
  EXPECT_EQ(s.nonzeros(), 3u);
  EXPECT_DOUBLE_EQ(s.density(), 3.0 / 15.0);

  const auto r0 = s.row_indices(0);
  ASSERT_EQ(r0.size(), 2u);
  EXPECT_EQ(r0[0], 1u);
  EXPECT_EQ(r0[1], 4u);
  EXPECT_EQ(s.row_indices(1).size(), 0u);
  ASSERT_EQ(s.row_indices(2).size(), 1u);
  EXPECT_EQ(s.row_values(2)[0], 3.0);

  const Matrix d = s.to_dense();
  EXPECT_EQ(d.rows(), 3u);
  EXPECT_EQ(d.cols(), 5u);
  EXPECT_EQ(d(0, 1), 1.0);
  EXPECT_EQ(d(0, 4), 2.0);
  EXPECT_EQ(d(2, 0), 3.0);
  EXPECT_EQ(d(1, 2), 0.0);

  // 3 idx * 4 + 3 val * 8 + 3 opened-row offsets (the skipped empty row 1
  // is opened in passing so its span reads back empty).
  EXPECT_EQ(s.byte_size(), 3 * 4 + 3 * 8 + 3 * sizeof(std::size_t));

  s.reset(2, 4);
  EXPECT_EQ(s.nonzeros(), 0u);
  EXPECT_EQ(s.rows(), 2u);
  // Empty shape forces the dense path instead of dividing by zero.
  EXPECT_EQ(SparseRowMatrix().density(), 1.0);
}

TEST(SparseGather, MatmulBitIdenticalToDenseKernel) {
  for (std::size_t batch : {std::size_t{1}, std::size_t{32}}) {
    for (bool one_hot : {true, false}) {
      Rng rng(100 + batch + (one_hot ? 1 : 0));
      const auto seq = random_batch(1, batch, 40, one_hot, 0.15, rng);
      const Matrix& dense = seq.front();
      const SparseRowMatrix sparse = to_sparse(dense);
      const Matrix w = random_matrix(40, 13, rng);

      Matrix out_dense, out_sparse;
      dense.matmul_into(w, out_dense);
      sparse.matmul_into(w, out_sparse);
      EXPECT_EQ(out_dense, out_sparse)
          << "batch=" << batch << " one_hot=" << one_hot;
    }
  }
}

TEST(SparseGather, TransposedSelfAddBitIdenticalToDenseKernel) {
  // The batched parameter-gradient contraction: out += xᵀ · g must replay
  // the dense kernel's additions exactly (same ascending row order, same
  // zero skips), including on a non-zero initial accumulator.
  for (std::size_t batch : {std::size_t{1}, std::size_t{32}}) {
    for (bool one_hot : {true, false}) {
      Rng rng(200 + batch + (one_hot ? 1 : 0));
      const auto seq = random_batch(1, batch, 17, one_hot, 0.2, rng);
      const Matrix& dense = seq.front();
      const SparseRowMatrix sparse = to_sparse(dense);
      const Matrix g = random_matrix(batch, 9, rng);

      Matrix acc_dense = random_matrix(17, 9, rng);
      Matrix acc_sparse = acc_dense;
      dense.matmul_transposed_self_add(g, acc_dense);
      sparse.matmul_transposed_self_add(g, acc_sparse);
      EXPECT_EQ(acc_dense, acc_sparse)
          << "batch=" << batch << " one_hot=" << one_hot;
    }
  }
}

TEST(SparseGather, LstmSparseForwardAndBackwardBitIdentical) {
  // Whole-layer contract: forward hidden states and the backward pass's
  // accumulated parameter gradients through the sparse-input path equal the
  // dense path's bit for bit (the sparse concat feeds the same
  // matmul_transposed_self_add additions in the same sample-major order).
  for (std::size_t batch : {std::size_t{1}, std::size_t{32}}) {
    const auto build = [] {
      Rng rng(7);
      return nn::Lstm(20, 6, rng);
    };
    nn::Lstm dense_lstm = build();
    nn::Lstm sparse_lstm = build();

    Rng data_rng(300 + batch);
    const auto seq = random_batch(3, batch, 20, true, 0.0, data_rng);
    const auto sseq = to_sparse_batch(seq);
    Matrix grad_h(batch, 6);
    for (double& v : grad_h.data()) v = data_rng.normal();

    for (auto* p : dense_lstm.parameters()) p->zero_grad();
    for (auto* p : sparse_lstm.parameters()) p->zero_grad();
    const Matrix h_dense = dense_lstm.forward(seq);
    const Matrix h_sparse = sparse_lstm.forward(sseq);
    EXPECT_EQ(h_dense, h_sparse) << "batch=" << batch;

    dense_lstm.backward(grad_h);
    sparse_lstm.backward(grad_h);
    const auto pa = dense_lstm.parameters();
    const auto pb = sparse_lstm.parameters();
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t i = 0; i < pa.size(); ++i)
      EXPECT_EQ(pa[i]->grad, pb[i]->grad)
          << "param " << i << " batch=" << batch;
  }
}

TEST(SparseGather, LstmDensityFallbackStillMatchesDense) {
  // Above kSparseGatherMaxDensity the sparse forward densifies and
  // delegates — trivially identical, but the routing itself must not
  // disturb shapes or downstream backward state.
  Rng rng(8);
  nn::Lstm a(10, 5, rng);
  Rng rng_b(8);
  nn::Lstm b(10, 5, rng_b);
  Rng data_rng(9);
  // density 0.6 >> 0.25 threshold
  const auto seq = random_batch(2, 4, 10, false, 0.6, data_rng);
  ASSERT_GE(to_sparse(seq.front()).density(),
            nn::Lstm::kSparseGatherMaxDensity);
  const Matrix h_dense = a.forward(seq);
  const Matrix h_sparse = b.forward(to_sparse_batch(seq));
  EXPECT_EQ(h_dense, h_sparse);

  Matrix grad_h(4, 5);
  for (double& v : grad_h.data()) v = data_rng.normal();
  for (auto* p : a.parameters()) p->zero_grad();
  for (auto* p : b.parameters()) p->zero_grad();
  a.backward(grad_h);
  b.backward(grad_h);
  const auto pa = a.parameters();
  const auto pb = b.parameters();
  for (std::size_t i = 0; i < pa.size(); ++i)
    EXPECT_EQ(pa[i]->grad, pb[i]->grad) << "param " << i;
}

TEST(SparseGather, DrqnForwardBatchSparseBitIdentical) {
  for (std::size_t batch : {std::size_t{1}, std::size_t{32}}) {
    Rng rng_a(11), rng_b(11);
    rl::DrqnQNetwork dense_net(15, 3, 8, 4, rng_a);
    rl::DrqnQNetwork sparse_net(15, 3, 8, 4, rng_b);
    Rng data_rng(400 + batch);
    const auto seq = random_batch(3, batch, 15, true, 0.0, data_rng);
    EXPECT_EQ(dense_net.forward_batch(seq),
              sparse_net.forward_batch_sparse(to_sparse_batch(seq)))
        << "batch=" << batch;
  }
}

TEST(SparseGather, ForwardBatchColumnsMatchesFullForward) {
  // Every scored candidate Q-value equals the full forward's value at that
  // column, bit for bit (ragged per-sample column lists, padded rows).
  for (std::size_t batch : {std::size_t{1}, std::size_t{7}}) {
    Rng rng_a(13), rng_b(13);
    rl::DrqnQNetwork full(12, 2, 6, 5, rng_a);
    rl::DrqnQNetwork restricted(12, 2, 6, 5, rng_b);
    Rng data_rng(500 + batch);
    const auto seq = random_batch(2, batch, 12, true, 0.0, data_rng);
    const auto sseq = to_sparse_batch(seq);

    rl::ActionColumns columns(batch);
    for (std::size_t b = 0; b < batch; ++b) {
      for (std::uint32_t c = 0; c < 12; ++c)
        if (data_rng.bernoulli(0.4)) columns[b].push_back(c);
      if (columns[b].empty()) columns[b].push_back(3);
    }

    const Matrix q_full = full.forward_batch(seq);
    const Matrix q_cols = restricted.forward_batch_columns(sseq, columns);
    for (std::size_t b = 0; b < batch; ++b)
      for (std::size_t j = 0; j < columns[b].size(); ++j)
        EXPECT_EQ(q_cols(b, j), q_full(b, columns[b][j]))
            << "batch=" << batch << " b=" << b << " j=" << j;
  }
}

TEST(SparseGather, BackwardColumnsMatchesScatteredFullBackward) {
  // backward_columns with a [b x width] gradient must accumulate exactly
  // the parameter gradients of a full backward whose [b x cells] gradient
  // is zero outside the candidate columns.
  const std::size_t batch = 5, cells = 10;
  Rng rng_a(17), rng_b(17);
  rl::DrqnQNetwork full(cells, 2, 6, 4, rng_a);
  rl::DrqnQNetwork restricted(cells, 2, 6, 4, rng_b);
  Rng data_rng(21);
  const auto seq = random_batch(2, batch, cells, true, 0.0, data_rng);
  const auto sseq = to_sparse_batch(seq);

  rl::ActionColumns columns(batch);
  std::size_t width = 0;
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::uint32_t c = 0; c < cells; ++c)
      if (data_rng.bernoulli(0.3)) columns[b].push_back(c);
    if (columns[b].empty()) columns[b].push_back(0);
    width = std::max(width, columns[b].size());
  }
  Matrix grad_cols(batch, width);
  Matrix grad_full(batch, cells);
  for (std::size_t b = 0; b < batch; ++b)
    for (std::size_t j = 0; j < columns[b].size(); ++j) {
      const double g = data_rng.normal();
      grad_cols(b, j) = g;
      grad_full(b, columns[b][j]) = g;
    }

  for (auto* p : full.parameters()) p->zero_grad();
  for (auto* p : restricted.parameters()) p->zero_grad();
  full.forward_batch_sparse(sseq);
  full.backward(grad_full);
  restricted.forward_batch_columns(sseq, columns);
  restricted.backward_columns(grad_cols, columns);

  const auto pa = full.parameters();
  const auto pb = restricted.parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i)
    EXPECT_EQ(pa[i]->grad, pb[i]->grad) << "param " << i;
}

rl::QNetworkPtr make_drqn(std::size_t cells, std::size_t k,
                          std::uint64_t seed) {
  Rng rng(seed);
  return std::make_unique<rl::DrqnQNetwork>(cells, k, 10, 0, rng);
}

TEST(CandidateActions, GreedyArgmaxEqualsFullMaskedArgmaxWhenCovering) {
  const std::size_t cells = 14, k = 2;
  rl::DqnOptions opt;
  rl::DqnTrainer trainer(make_drqn(cells, k, 31), opt, 41);
  Rng rng(43);
  for (int trial = 0; trial < 20; ++trial) {
    // One-hot-union state, both representations.
    std::vector<double> state(k * cells, 0.0);
    std::vector<std::uint32_t> ones;
    for (std::size_t j = 0; j < k; ++j) {
      const std::size_t hot = j * cells + rng.uniform_index(cells);
      state[hot] = 1.0;
      ones.push_back(static_cast<std::uint32_t>(hot));
    }
    std::vector<std::uint8_t> mask(cells, 0);
    std::vector<std::uint32_t> candidates;
    for (std::uint32_t c = 0; c < cells; ++c)
      if (rng.bernoulli(0.6)) {
        mask[c] = 1;
        candidates.push_back(c);
      }
    if (candidates.empty()) {
      mask[5] = 1;
      candidates.push_back(5);
    }
    EXPECT_EQ(trainer.greedy_action(state, mask),
              trainer.greedy_action_candidates(ones, candidates))
        << "trial " << trial;
  }
}

rl::Experience random_sparse_experience(std::size_t cells, std::size_t k,
                                        Rng& rng) {
  rl::Experience e;
  e.sparse_states = true;
  for (std::size_t j = 0; j < k; ++j) {
    e.state_ones.push_back(
        static_cast<std::uint32_t>(j * cells + rng.uniform_index(cells)));
    e.next_state_ones.push_back(
        static_cast<std::uint32_t>(j * cells + rng.uniform_index(cells)));
  }
  e.action = rng.uniform_index(cells);
  e.reward = rng.uniform(-1.0, 2.0);
  e.terminal = rng.bernoulli(0.15);
  std::vector<std::uint8_t> mask(cells, 0);
  std::size_t allowed = 0;
  for (std::uint32_t c = 0; c < cells; ++c)
    if (rng.bernoulli(0.7)) {
      mask[c] = 1;
      ++allowed;
    }
  if (allowed == 0) mask[0] = 1;
  e.next_mask = mask;
  return e;
}

TEST(CandidateActions, CoveringCandidateTrainStepMatchesFullBitIdentically) {
  // Two identically seeded trainers over the same minibatches: one trains
  // full-width (next_mask bootstrap, full Q head + masked loss), one on
  // candidate subsets that exactly cover the allowed actions. The covering
  // contract: losses and post-update parameters bit-identical — candidate
  // training changes the trajectory distribution only, never the
  // arithmetic.
  const std::size_t cells = 12, k = 2;
  rl::DqnOptions opt;
  opt.batch_size = 8;
  opt.min_replay = 8;
  opt.replay_capacity = 64;
  opt.target_sync_interval = 3;
  rl::DqnOptions cand_opt = opt;
  cand_opt.candidate_training = true;

  for (bool double_dqn : {false, true}) {
    opt.double_dqn = cand_opt.double_dqn = double_dqn;
    rl::DqnTrainer full(make_drqn(cells, k, 51), opt, 61);
    rl::DqnTrainer candidate(make_drqn(cells, k, 51), cand_opt, 61);

    Rng fill(71);
    for (int i = 0; i < 40; ++i) {
      rl::Experience e = random_sparse_experience(cells, k, fill);
      rl::Experience cov = e;
      // Candidate copy: covering candidates instead of the mask.
      cov.next_candidates.clear();
      for (std::uint32_t c = 0; c < cells; ++c)
        if (e.next_mask[c]) cov.next_candidates.push_back(c);
      cov.next_mask.clear();
      full.observe(std::move(e));
      candidate.observe(std::move(cov));
    }

    Rng draw(81);
    for (int step = 0; step < 10; ++step) {
      std::vector<std::size_t> indices;
      for (std::size_t i = 0; i < opt.batch_size; ++i)
        indices.push_back(draw.uniform_index(40));
      const double loss_full = full.train_step_on_indices(indices);
      const double loss_cand = candidate.train_step_on_indices(indices);
      ASSERT_EQ(loss_full, loss_cand)
          << "step " << step << " double_dqn=" << double_dqn;
    }
    const auto pa = full.online().parameters();
    const auto pb = candidate.online().parameters();
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t i = 0; i < pa.size(); ++i)
      EXPECT_EQ(pa[i]->value, pb[i]->value)
          << "param " << i << " double_dqn=" << double_dqn;
  }
}

TEST(CandidateActions, SparseBatchTrainStepMatchesForcedDense) {
  // The sparse minibatch fast path vs the same trainer pinned dense
  // (force_dense_batch): identical losses and parameters — the routing
  // flag must not change the arithmetic.
  const std::size_t cells = 10, k = 2;
  rl::DqnOptions opt;
  opt.batch_size = 6;
  opt.min_replay = 6;
  opt.replay_capacity = 32;
  rl::DqnOptions dense_opt = opt;
  dense_opt.force_dense_batch = true;

  rl::DqnTrainer sparse(make_drqn(cells, k, 91), opt, 95);
  rl::DqnTrainer dense(make_drqn(cells, k, 91), dense_opt, 95);
  Rng fill(97);
  for (int i = 0; i < 20; ++i) {
    rl::Experience e = random_sparse_experience(cells, k, fill);
    rl::Experience copy = e;
    sparse.observe(std::move(e));
    dense.observe(std::move(copy));
  }
  Rng draw(99);
  for (int step = 0; step < 8; ++step) {
    std::vector<std::size_t> indices;
    for (std::size_t i = 0; i < opt.batch_size; ++i)
      indices.push_back(draw.uniform_index(20));
    ASSERT_EQ(sparse.train_step_on_indices(indices),
              dense.train_step_on_indices(indices))
        << "step " << step;
  }
  const auto pa = sparse.online().parameters();
  const auto pb = dense.online().parameters();
  for (std::size_t i = 0; i < pa.size(); ++i)
    EXPECT_EQ(pa[i]->value, pb[i]->value) << "param " << i;
}

std::vector<cs::CellCoord> grid_coords(std::size_t side) {
  std::vector<cs::CellCoord> coords;
  for (std::size_t y = 0; y < side; ++y)
    for (std::size_t x = 0; x < side; ++x)
      coords.push_back({static_cast<double>(x), static_cast<double>(y)});
  return coords;
}

TEST(CandidateSet, CoveringCaseReturnsWholeUnsensedSorted) {
  mcs::CandidateSetOptions opt;
  opt.subset_size = 8;
  mcs::CandidateSetGenerator gen(grid_coords(10), opt);
  const std::vector<std::size_t> unsensed{42, 7, 99, 3};
  const std::vector<std::size_t> recent{50};
  const auto& c = gen.generate(unsensed, recent);
  EXPECT_EQ(c, (std::vector<std::uint32_t>{3, 7, 42, 99}));
}

TEST(CandidateSet, SubsetIsAscendingDistinctWithinUnsensedAndDeterministic) {
  mcs::CandidateSetOptions opt;
  opt.subset_size = 16;
  opt.random_fraction = 0.5;
  opt.seed = 123;
  mcs::CandidateSetGenerator gen_a(grid_coords(10), opt);
  mcs::CandidateSetGenerator gen_b(grid_coords(10), opt);

  std::vector<std::size_t> unsensed;
  for (std::size_t c = 0; c < 100; c += 2) unsensed.push_back(c);  // 50 cells
  const std::vector<std::size_t> recent{44, 46};

  const auto a = gen_a.generate(unsensed, recent);
  const auto& b = gen_b.generate(unsensed, recent);
  EXPECT_EQ(a, b);  // same seed, same call sequence -> same subset
  EXPECT_EQ(a.size(), opt.subset_size);
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
  EXPECT_EQ(std::adjacent_find(a.begin(), a.end()), a.end());
  for (const std::uint32_t cell : a)
    EXPECT_TRUE(std::find(unsensed.begin(), unsensed.end(), cell) !=
                unsensed.end())
        << cell;
}

TEST(CandidateSet, PureKnnSlicePicksNearestToRecentCentroid) {
  mcs::CandidateSetOptions opt;
  opt.subset_size = 6;
  opt.random_fraction = 0.0;  // KNN slice only
  const auto coords = grid_coords(10);
  mcs::CandidateSetGenerator gen(coords, opt);

  std::vector<std::size_t> unsensed;
  for (std::size_t c = 0; c < 100; ++c) unsensed.push_back(c);
  const std::vector<std::size_t> recent{55};  // centroid = (5, 5)

  const auto& got = gen.generate(unsensed, recent);
  // Expected: the 6 nearest unsensed cells by squared distance to (5, 5),
  // ties broken by ascending cell id, then sorted ascending.
  std::vector<std::pair<double, std::size_t>> scored;
  for (const std::size_t c : unsensed) {
    const double dx = coords[c].x - 5.0, dy = coords[c].y - 5.0;
    scored.push_back({dx * dx + dy * dy, c});
  }
  std::sort(scored.begin(), scored.end());
  std::vector<std::uint32_t> expected;
  for (std::size_t i = 0; i < opt.subset_size; ++i)
    expected.push_back(static_cast<std::uint32_t>(scored[i].second));
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(got, expected);
}

TEST(CandidateSet, EmptyRecentFallsBackToFullyRandomSubset) {
  mcs::CandidateSetOptions opt;
  opt.subset_size = 10;
  opt.random_fraction = 0.0;  // would be all-KNN, but nothing to anchor on
  mcs::CandidateSetGenerator gen(grid_coords(10), opt);
  std::vector<std::size_t> unsensed;
  for (std::size_t c = 0; c < 100; ++c) unsensed.push_back(c);
  const auto& got = gen.generate(unsensed, {});
  EXPECT_EQ(got.size(), opt.subset_size);
  EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
  EXPECT_EQ(std::adjacent_find(got.begin(), got.end()), got.end());
}

TEST(FillTimestepMajorSparse, DensifiedMatchesDenseFill) {
  const std::size_t cells = 6, k = 3;
  mcs::StateEncoder encoder(cells, k);
  rl::ReplayBuffer buffer(8);
  Rng fill(7);
  for (int i = 0; i < 8; ++i) {
    rl::Experience e;
    e.state.assign(k * cells, 0.0);
    e.next_state.assign(k * cells, 0.0);
    for (std::size_t j = 0; j < k; ++j) {
      e.state[j * cells + fill.uniform_index(cells)] = 1.0;
      e.next_state[j * cells + fill.uniform_index(cells)] = 1.0;
    }
    e.next_mask.assign(cells, 1);
    buffer.add(std::move(e));
  }
  const auto encode = [&](const rl::Experience& e) {
    rl::EncodedExperience enc;
    encoder.to_sparse_steps(e.state, enc.state);
    encoder.to_sparse_steps(e.next_state, enc.next_state);
    return enc;
  };

  const std::vector<std::size_t> indices{5, 1, 5, 0, 2};
  std::vector<Matrix> dstate, dnext;
  buffer.fill_timestep_major(indices, encode, dstate, dnext);
  std::vector<SparseRowMatrix> sstate, snext;
  buffer.fill_timestep_major_sparse(indices, encode, sstate, snext);

  ASSERT_EQ(sstate.size(), k);
  ASSERT_EQ(snext.size(), k);
  for (std::size_t j = 0; j < k; ++j) {
    EXPECT_EQ(sstate[j].to_dense(), dstate[j]) << "step " << j;
    EXPECT_EQ(snext[j].to_dense(), dnext[j]) << "step " << j;
  }
}

TEST(FillTimestepMajorSparse, RingOverwriteInvalidatesCachedRows) {
  // The sparse twin of the dense ring-overwrite regression: after the
  // replay ring wraps, the sparse batch assembly must re-encode the
  // overwritten slot rather than append the stale cached sparse rows, and
  // untouched slots must keep being served from the cache.
  const std::size_t cells = 3, k = 2;
  mcs::StateEncoder encoder(cells, k);
  rl::ReplayBuffer buffer(4);
  const auto encode = [&](const rl::Experience& e) {
    rl::EncodedExperience enc;
    encoder.to_sparse_steps(e.state, enc.state);
    encoder.to_sparse_steps(e.next_state, enc.next_state);
    return enc;
  };
  // Nonzero fill values so every encoded row actually stores entries.
  const auto make = [&](double v) {
    rl::Experience e;
    e.state.assign(k * cells, v);
    e.next_state.assign(k * cells, v + 0.5);
    e.next_mask.assign(cells, 1);
    return e;
  };
  for (int i = 0; i < 4; ++i) buffer.add(make(1.0 + static_cast<double>(i)));

  const std::vector<std::size_t> indices{0, 1};
  std::vector<SparseRowMatrix> state_seq, next_seq;
  buffer.fill_timestep_major_sparse(indices, encode, state_seq, next_seq);
  EXPECT_EQ(state_seq[0].to_dense()(0, 0), 1.0);
  EXPECT_EQ(buffer.encode_misses(), 2u);

  // The ring wraps: slot 0 now holds a different transition; the sparse
  // fill must re-encode it while slot 1 still comes from the cache.
  buffer.add(make(9.0));
  buffer.fill_timestep_major_sparse(indices, encode, state_seq, next_seq);
  EXPECT_EQ(state_seq[0].to_dense()(0, 0), 9.0);
  EXPECT_EQ(next_seq[0].to_dense()(0, 0), 9.5);
  EXPECT_EQ(state_seq[0].to_dense()(1, 0), 2.0);  // slot 1 served from cache
  EXPECT_EQ(buffer.encode_misses(), 3u);
}

TEST(CandidateActions, CandidateQValuesMatchFullForwardAndGreedyArgmax) {
  // candidate_q_values must hand back exactly the scores the greedy
  // candidate path argmaxes over — bit-identical to the full forward's
  // entries at the candidate columns, with the argmax agreeing with
  // greedy_action_candidates (same first-max tie-break).
  const std::size_t cells = 14, k = 2;
  rl::DqnOptions opt;
  rl::DqnTrainer trainer(make_drqn(cells, k, 33), opt, 47);
  Rng rng(53);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> state(k * cells, 0.0);
    std::vector<std::uint32_t> ones;
    for (std::size_t j = 0; j < k; ++j) {
      const std::size_t hot = j * cells + rng.uniform_index(cells);
      state[hot] = 1.0;
      ones.push_back(static_cast<std::uint32_t>(hot));
    }
    std::vector<std::uint32_t> candidates;
    for (std::uint32_t c = 0; c < cells; ++c)
      if (rng.bernoulli(0.5)) candidates.push_back(c);
    if (candidates.empty()) candidates.push_back(2);

    const std::vector<double> qs = trainer.candidate_q_values(ones, candidates);
    ASSERT_EQ(qs.size(), candidates.size()) << "trial " << trial;
    const std::vector<double> full = trainer.q_values(state);
    for (std::size_t j = 0; j < candidates.size(); ++j)
      EXPECT_EQ(qs[j], full[candidates[j]]) << "trial " << trial << " j=" << j;
    const std::size_t best = static_cast<std::size_t>(
        std::max_element(qs.begin(), qs.end()) - qs.begin());
    EXPECT_EQ(candidates[best],
              trainer.greedy_action_candidates(ones, candidates))
        << "trial " << trial;
  }
}

// --- SpatialDrqnQNetwork: the metro-tier action-embedding head ---------

TEST(SpatialDrqn, FeatureMatrixShapeAndCountColumn) {
  Rng rng(61);
  rl::SpatialDrqnQNetwork net(6, 5, 2, 8, 2, 0, rng);
  EXPECT_EQ(net.num_actions(), 30u);
  EXPECT_EQ(net.history_steps(), 2u);
  // d = (2k+1)^2 Fourier features per cell; feature 0 is the constant 1,
  // so a summed projection's first coordinate carries the selection count
  // (the within-cycle progress signal, see the kInputGain note).
  const Matrix& phi = net.features();
  EXPECT_EQ(net.feature_dims(), 25u);
  ASSERT_EQ(phi.rows(), 30u);
  ASSERT_EQ(phi.cols(), 25u);
  for (std::size_t c = 0; c < phi.rows(); ++c)
    EXPECT_EQ(phi(c, 0), 1.0) << "cell " << c;
}

TEST(SpatialDrqn, SparseForwardBitIdenticalToDense) {
  // The x·Φ trunk projection is the sparse gather-GEMM; both input paths
  // must produce bit-identical Q over all cells. Exercised with one-hot
  // selection rows and mixed-density rows, and with both query heads
  // (direct map and ReLU hidden layer).
  for (std::size_t query_hidden : {std::size_t{0}, std::size_t{7}}) {
    for (std::size_t batch : {std::size_t{1}, std::size_t{9}}) {
      for (bool one_hot : {true, false}) {
        Rng rng_a(23), rng_b(23);
        rl::SpatialDrqnQNetwork dense_net(6, 5, 2, 8, 2, query_hidden, rng_a);
        rl::SpatialDrqnQNetwork sparse_net(6, 5, 2, 8, 2, query_hidden, rng_b);
        Rng data_rng(600 + batch + (one_hot ? 1 : 0));
        const auto seq = random_batch(2, batch, 30, one_hot, 0.15, data_rng);
        EXPECT_EQ(dense_net.forward_batch(seq),
                  sparse_net.forward_batch_sparse(to_sparse_batch(seq)))
            << "qh=" << query_hidden << " batch=" << batch
            << " one_hot=" << one_hot;
      }
    }
  }
}

TEST(SpatialDrqn, ForwardBatchColumnsMatchesFullForward) {
  // The column-restricted head evaluates q·φ(a) with the same ascending-k
  // zero-skip recurrence the full q·Φᵀ kernel uses, so every scored entry
  // must equal the full forward's bit for bit.
  for (std::size_t batch : {std::size_t{1}, std::size_t{7}}) {
    Rng rng_a(29), rng_b(29);
    rl::SpatialDrqnQNetwork full(5, 5, 2, 8, 2, 3, rng_a);
    rl::SpatialDrqnQNetwork restricted(5, 5, 2, 8, 2, 3, rng_b);
    Rng data_rng(700 + batch);
    const auto seq = random_batch(2, batch, 25, true, 0.0, data_rng);
    const auto sseq = to_sparse_batch(seq);

    rl::ActionColumns columns(batch);
    for (std::size_t b = 0; b < batch; ++b) {
      for (std::uint32_t c = 0; c < 25; ++c)
        if (data_rng.bernoulli(0.4)) columns[b].push_back(c);
      if (columns[b].empty()) columns[b].push_back(11);
    }

    const Matrix q_full = full.forward_batch(seq);
    const Matrix q_cols = restricted.forward_batch_columns(sseq, columns);
    for (std::size_t b = 0; b < batch; ++b)
      for (std::size_t j = 0; j < columns[b].size(); ++j)
        EXPECT_EQ(q_cols(b, j), q_full(b, columns[b][j]))
            << "batch=" << batch << " b=" << b << " j=" << j;
  }
}

TEST(SpatialDrqn, BackwardColumnsMatchesScatteredFullBackward) {
  // backward_columns accumulates exactly the terms of a full backward
  // whose [b x cells] gradient is zero outside the candidate columns.
  const std::size_t batch = 5, cells = 24;
  Rng rng_a(37), rng_b(37);
  rl::SpatialDrqnQNetwork full(6, 4, 2, 8, 1, 0, rng_a);
  rl::SpatialDrqnQNetwork restricted(6, 4, 2, 8, 1, 0, rng_b);
  Rng data_rng(41);
  const auto seq = random_batch(2, batch, cells, true, 0.0, data_rng);
  const auto sseq = to_sparse_batch(seq);

  rl::ActionColumns columns(batch);
  std::size_t width = 0;
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::uint32_t c = 0; c < cells; ++c)
      if (data_rng.bernoulli(0.3)) columns[b].push_back(c);
    if (columns[b].empty()) columns[b].push_back(0);
    width = std::max(width, columns[b].size());
  }
  Matrix grad_cols(batch, width);
  Matrix grad_full(batch, cells);
  for (std::size_t b = 0; b < batch; ++b)
    for (std::size_t j = 0; j < columns[b].size(); ++j) {
      const double g = data_rng.normal();
      grad_cols(b, j) = g;
      grad_full(b, columns[b][j]) = g;
    }

  for (auto* p : full.parameters()) p->zero_grad();
  for (auto* p : restricted.parameters()) p->zero_grad();
  full.forward_batch_sparse(sseq);
  full.backward(grad_full);
  restricted.forward_batch_columns(sseq, columns);
  restricted.backward_columns(grad_cols, columns);

  const auto pa = full.parameters();
  const auto pb = restricted.parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i)
    EXPECT_EQ(pa[i]->grad, pb[i]->grad) << "param " << i;
}

TEST(SpatialDrqn, ColumnRestrictedGradientCheckAtSizeOneAndFullCover) {
  // Analytic gradients of the column-restricted head vs central
  // differences, at the two extremes of the candidate subset: exactly one
  // candidate per row (the narrowest restriction the trainer can issue)
  // and the full-cover set (every cell scored). Between them every branch
  // of the restricted backward — the q·φ(a) scatter and the shared
  // recurrent trunk — gets finite-difference coverage.
  const std::size_t batch = 3, cells = 20, k = 2;
  for (const bool full_cover : {false, true}) {
    Rng rng(61);
    rl::SpatialDrqnQNetwork net(5, 4, k, 8, 1, 3, rng);
    Rng data_rng(62);
    const auto seq = random_batch(k, batch, cells, true, 0.0, data_rng);
    const auto sseq = to_sparse_batch(seq);

    rl::ActionColumns columns(batch);
    const std::size_t width = full_cover ? cells : 1;
    for (std::size_t b = 0; b < batch; ++b) {
      if (full_cover) {
        for (std::uint32_t c = 0; c < cells; ++c) columns[b].push_back(c);
      } else {
        columns[b].push_back(
            static_cast<std::uint32_t>(data_rng.uniform_index(cells)));
      }
    }
    Matrix target(batch, width);
    for (double& v : target.data()) v = data_rng.normal();

    const auto loss_fn = [&] {
      const Matrix q = net.forward_batch_columns(sseq, columns);
      double s = 0.0;
      for (std::size_t b = 0; b < batch; ++b)
        for (std::size_t j = 0; j < width; ++j) {
          const double d = q(b, j) - target(b, j);
          s += 0.5 * d * d;
        }
      return s;
    };

    for (auto* p : net.parameters()) p->zero_grad();
    const Matrix q = net.forward_batch_columns(sseq, columns);
    Matrix grad(batch, width);
    for (std::size_t b = 0; b < batch; ++b)
      for (std::size_t j = 0; j < width; ++j)
        grad(b, j) = q(b, j) - target(b, j);
    net.backward_columns(grad, columns);

    for (auto* p : net.parameters()) {
      const auto r = nn::check_gradient(*p, loss_fn, 1e-6);
      EXPECT_TRUE(r.passed(1e-4))
          << (full_cover ? "full-cover" : "size-1")
          << " max_rel=" << r.max_rel_diff << " max_abs=" << r.max_abs_diff;
    }
  }
}

TEST(SpatialDrqn, CloneArchitectureMatchesShapes) {
  Rng rng(43);
  rl::SpatialDrqnQNetwork net(6, 4, 3, 10, 2, 5, rng);
  Rng clone_rng(991);
  const auto clone = net.clone_architecture(clone_rng);
  EXPECT_EQ(clone->num_actions(), net.num_actions());
  EXPECT_EQ(clone->history_steps(), net.history_steps());
  EXPECT_EQ(clone->name(), net.name());
  EXPECT_TRUE(clone->supports_sparse_batch());
  EXPECT_TRUE(clone->supports_action_columns());
  const auto pa = net.parameters();
  const auto pb = clone->parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i]->value.rows(), pb[i]->value.rows()) << "param " << i;
    EXPECT_EQ(pa[i]->value.cols(), pb[i]->value.cols()) << "param " << i;
  }
}

TEST(SpatialDrqn, TrainerGreedyCandidatesAgreeWithCandidateQValues) {
  // The pairing the metro example's D4-averaged selector depends on: with
  // the spatial network under the trainer, candidate_q_values scores the
  // same restricted forward greedy_action_candidates argmaxes over.
  rl::DqnOptions opt;
  Rng net_rng(71);
  rl::DqnTrainer trainer(
      std::make_unique<rl::SpatialDrqnQNetwork>(6, 6, 2, 8, 2, 0, net_rng),
      opt, 73);
  Rng rng(79);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<std::uint32_t> ones;
    for (std::size_t j = 0; j < 2; ++j)
      for (int s = 0; s < 3; ++s)
        ones.push_back(static_cast<std::uint32_t>(j * 36 +
                                                  rng.uniform_index(36)));
    std::sort(ones.begin(), ones.end());
    ones.erase(std::unique(ones.begin(), ones.end()), ones.end());
    std::vector<std::uint32_t> candidates;
    for (std::uint32_t c = 0; c < 36; ++c)
      if (rng.bernoulli(0.4)) candidates.push_back(c);
    if (candidates.empty()) candidates.push_back(17);

    const auto qs = trainer.candidate_q_values(ones, candidates);
    ASSERT_EQ(qs.size(), candidates.size());
    const std::size_t best = static_cast<std::size_t>(
        std::max_element(qs.begin(), qs.end()) - qs.begin());
    EXPECT_EQ(candidates[best],
              trainer.greedy_action_candidates(ones, candidates))
        << "trial " << trial;
  }
}

TEST(Environment, StateOnesMatchesDenseStateNonzeros) {
  auto task = std::make_shared<const mcs::SensingTask>(
      testing::make_toy_task(8, 10));
  auto env = testing::make_toy_environment(task, 1e9);
  Rng rng(3);
  for (int step = 0; step < 12 && !env.episode_done(); ++step) {
    const std::vector<double> state = env.state();
    std::vector<std::uint32_t> expected;
    for (std::size_t i = 0; i < state.size(); ++i) {
      EXPECT_TRUE(state[i] == 0.0 || state[i] == 1.0);
      if (state[i] == 1.0) expected.push_back(static_cast<std::uint32_t>(i));
    }
    EXPECT_EQ(env.state_ones(), expected) << "step " << step;

    const auto& unsensed = env.unsensed_cells();
    env.step(unsensed[rng.uniform_index(unsensed.size())]);
  }
}

}  // namespace
}  // namespace drcell
