// Cross-engine property sweeps: contracts every inference engine must
// satisfy on arbitrary observation patterns, plus consistency between the
// generic leave-one-out path and MatrixCompletion's fast approximation.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "cs/committee.h"
#include "cs/knn_inference.h"
#include "cs/matrix_completion.h"
#include "cs/mean_inference.h"
#include "cs/temporal_inference.h"
#include "data/synthetic_field.h"
#include "util/statistics.h"

namespace drcell::cs {
namespace {

struct EngineCase {
  std::string engine;
  double density;
  std::uint64_t seed;
};

void PrintTo(const EngineCase& c, std::ostream* os) {
  *os << c.engine << "/density=" << c.density << "/seed=" << c.seed;
}

class EngineProperty : public ::testing::TestWithParam<EngineCase> {
 protected:
  static InferenceEnginePtr make_engine(const std::string& name,
                                        const std::vector<CellCoord>& coords) {
    if (name == "completion") return std::make_shared<MatrixCompletion>();
    if (name == "knn") return std::make_shared<KnnInference>(coords);
    if (name == "mean") return std::make_shared<MeanInference>();
    return std::make_shared<TemporalInterpolation>();
  }
};

TEST_P(EngineProperty, FiniteEstimatesAndObservedPassthrough) {
  const auto& param = GetParam();
  const auto coords = data::grid_coords(4, 4, 10.0, 10.0);
  data::SyntheticFieldGenerator gen(coords);
  data::FieldParams field;
  field.mean = 12.0;
  field.stddev = 3.0;
  field.spatial_length = 15.0;
  field.num_modes = 2;
  Rng rng(param.seed);
  const Matrix truth = gen.generate(field, 20, rng);

  PartialMatrix observed(16, 20);
  for (std::size_t i = 0; i < 16; ++i)
    for (std::size_t t = 0; t < 20; ++t)
      if (rng.bernoulli(param.density)) observed.set(i, t, truth(i, t));

  const auto engine = make_engine(param.engine, coords);
  const Matrix est = engine->infer(observed);
  ASSERT_EQ(est.rows(), 16u);
  ASSERT_EQ(est.cols(), 20u);
  EXPECT_FALSE(est.has_non_finite());
  for (std::size_t i = 0; i < 16; ++i)
    for (std::size_t t = 0; t < 20; ++t)
      if (observed.observed(i, t))
        EXPECT_EQ(est(i, t), truth(i, t))
            << param.engine << " altered an observed entry";

  // Estimates stay within a sane multiple of the observed data range.
  if (observed.observed_count() > 0) {
    RunningStats stats;
    for (std::size_t i = 0; i < 16; ++i)
      for (std::size_t t = 0; t < 20; ++t)
        if (observed.observed(i, t)) stats.add(observed.value(i, t));
    const double span =
        std::max(1.0, stats.max() - stats.min());
    EXPECT_LE(est.max_abs(),
              std::fabs(stats.mean()) + 10.0 * span + 10.0);
  }
}

std::vector<EngineCase> engine_cases() {
  std::vector<EngineCase> cases;
  for (const char* engine :
       {"completion", "knn", "mean", "temporal"})
    for (double density : {0.05, 0.3, 0.7})
      for (std::uint64_t seed : {1ull, 2ull})
        cases.push_back({engine, density, seed});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, EngineProperty,
                         ::testing::ValuesIn(engine_cases()));

class LooConsistency : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LooConsistency, FastPathTracksGenericLoo) {
  // The fast factor-reuse LOO must correlate strongly with the exact
  // refit-per-cell default on a realistic window.
  const auto coords = data::grid_coords(4, 4, 10.0, 10.0);
  data::SyntheticFieldGenerator gen(coords);
  data::FieldParams field;
  field.mean = 10.0;
  field.stddev = 2.0;
  field.spatial_length = 15.0;
  field.num_modes = 2;
  Rng rng(GetParam());
  const Matrix truth = gen.generate(field, 16, rng);

  PartialMatrix observed(16, 16);
  for (std::size_t i = 0; i < 16; ++i)
    for (std::size_t t = 0; t < 15; ++t)
      if (rng.bernoulli(0.6)) observed.set(i, t, truth(i, t));
  // Last column: 8 observations to hold out.
  for (std::size_t i = 0; i < 16; i += 2) observed.set(i, 15, truth(i, 15));

  MatrixCompletionOptions options;
  options.rank = 3;
  const MatrixCompletion engine(options);
  const auto fast = engine.loo_column_predictions(observed, 15);

  // Generic path via the base-class implementation.
  struct GenericOnly : InferenceEngine {
    explicit GenericOnly(const MatrixCompletion& mc) : mc_(mc) {}
    Matrix infer(const PartialMatrix& o) const override {
      return mc_.infer(o);
    }
    std::string name() const override { return "generic"; }
    const MatrixCompletion& mc_;
  };
  const GenericOnly generic(engine);
  const auto exact = generic.loo_column_predictions(observed, 15);

  ASSERT_EQ(fast.size(), exact.size());
  ASSERT_EQ(fast.size(), 8u);
  const double rho = pearson_correlation(fast, exact);
  EXPECT_GT(rho, 0.9) << "fast LOO diverged from the exact refit";
  // And both must be finite.
  for (std::size_t k = 0; k < fast.size(); ++k) {
    EXPECT_TRUE(std::isfinite(fast[k]));
    EXPECT_TRUE(std::isfinite(exact[k]));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, LooConsistency,
                         ::testing::Values(3, 4, 5, 6));

TEST(LooEdgeCases, SingleObservationColumn) {
  // One observation in the assessed column: the fast path must fall back to
  // the mean-only prediction without crashing.
  PartialMatrix observed(6, 4);
  for (std::size_t i = 0; i < 6; ++i)
    for (std::size_t t = 0; t < 3; ++t)
      observed.set(i, t, 5.0 + static_cast<double>(i + t));
  observed.set(2, 3, 9.0);
  const MatrixCompletion engine;
  const auto preds = engine.loo_column_predictions(observed, 3);
  ASSERT_EQ(preds.size(), 1u);
  EXPECT_TRUE(std::isfinite(preds[0]));
}

TEST(LooEdgeCases, EmptyColumnYieldsNoPredictions) {
  PartialMatrix observed(6, 4);
  observed.set(0, 0, 1.0);
  const MatrixCompletion engine;
  EXPECT_TRUE(engine.loo_column_predictions(observed, 3).empty());
}

}  // namespace
}  // namespace drcell::cs
