// Failure injection: degenerate shapes, corrupted streams, hostile inputs.
// The library must fail loudly (CheckError / SerializationError), never
// silently corrupt state or crash.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "core/agent.h"
#include "cs/matrix_completion.h"
#include "data/task_io.h"
#include "mcs/environment.h"
#include "nn/serialize.h"
#include "rl/dqn_trainer.h"
#include "rl/mlp_qnetwork.h"
#include "test_helpers.h"

namespace drcell {
namespace {

TEST(FailureInjection, EnvironmentRejectsNullDependencies) {
  auto task = std::make_shared<const mcs::SensingTask>(
      testing::make_toy_task());
  auto engine = testing::default_engine();
  auto gate = std::make_shared<mcs::GroundTruthGate>(0.5);
  EXPECT_THROW(mcs::SparseMcsEnvironment(nullptr, engine, gate), CheckError);
  EXPECT_THROW(mcs::SparseMcsEnvironment(task, nullptr, gate), CheckError);
  EXPECT_THROW(mcs::SparseMcsEnvironment(task, engine, nullptr), CheckError);
}

TEST(FailureInjection, EnvironmentRejectsZeroWindow) {
  auto task = std::make_shared<const mcs::SensingTask>(
      testing::make_toy_task());
  mcs::EnvOptions opt;
  opt.inference_window = 0;
  EXPECT_THROW(testing::make_toy_environment(task, 0.5, opt), CheckError);
}

TEST(FailureInjection, EnvironmentRejectsZeroMinObservations) {
  auto task = std::make_shared<const mcs::SensingTask>(
      testing::make_toy_task());
  mcs::EnvOptions opt;
  opt.min_observations = 0;
  EXPECT_THROW(testing::make_toy_environment(task, 0.5, opt), CheckError);
}

TEST(FailureInjection, EnvironmentRejectsNegativeCellCost) {
  auto task = std::make_shared<const mcs::SensingTask>(
      testing::make_toy_task(6, 12));
  mcs::EnvOptions opt;
  opt.cell_costs.assign(6, 1.0);
  opt.cell_costs[3] = -2.0;
  EXPECT_THROW(testing::make_toy_environment(task, 0.5, opt), CheckError);
}

TEST(FailureInjection, SingleCycleTaskCompletesCleanly) {
  auto task = std::make_shared<const mcs::SensingTask>(
      testing::make_toy_task(4, 1));
  mcs::EnvOptions opt;
  opt.min_observations = 1;
  auto env = testing::make_toy_environment(task, 1e9, opt);
  const auto r = env.step(0);
  EXPECT_TRUE(r.cycle_complete);
  EXPECT_TRUE(r.episode_done);
}

TEST(FailureInjection, MinObservationsAboveCellCountStillTerminates) {
  auto task = std::make_shared<const mcs::SensingTask>(
      testing::make_toy_task(3, 2));
  mcs::EnvOptions opt;
  opt.min_observations = 10;  // more than the 3 cells
  auto env = testing::make_toy_environment(task, 1e9, opt);
  mcs::StepResult last;
  for (std::size_t cell = 0; cell < 3; ++cell) last = env.step(cell);
  EXPECT_TRUE(last.cycle_complete);  // full sensing forces completion
}

TEST(FailureInjection, CompletionWithRankAboveObservations) {
  cs::MatrixCompletionOptions opt;
  opt.rank = 10;
  const cs::MatrixCompletion mc(opt);
  cs::PartialMatrix p(5, 5);
  p.set(0, 0, 1.0);
  p.set(2, 3, 2.0);
  const Matrix est = mc.infer(p);  // rank silently clamped
  EXPECT_FALSE(est.has_non_finite());
}

TEST(FailureInjection, CompletionWithConstantData) {
  // Zero-variance observations: factors collapse but estimates stay finite
  // and equal the constant.
  const cs::MatrixCompletion mc;
  cs::PartialMatrix p(4, 6);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 6; j += 2) p.set(i, j, 7.0);
  const Matrix est = mc.infer(p);
  EXPECT_FALSE(est.has_non_finite());
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 6; ++j) EXPECT_NEAR(est(i, j), 7.0, 0.3);
}

TEST(FailureInjection, CompletionWithExtremeValues) {
  const cs::MatrixCompletion mc;
  cs::PartialMatrix p(4, 4);
  p.set(0, 0, 1e9);
  p.set(1, 1, -1e9);
  p.set(2, 2, 1e-9);
  const Matrix est = mc.infer(p);
  EXPECT_FALSE(est.has_non_finite());
}

TEST(FailureInjection, CorruptedWeightStreamVariants) {
  Rng rng(1);
  rl::MlpQNetwork net(3, 1, {4}, rng);

  // Flip bytes inside a valid stream at several offsets.
  std::stringstream good;
  nn::save_parameters(good, net.parameters());
  const std::string blob = good.str();
  for (std::size_t offset : {0ul, 4ul, 8ul, 12ul}) {
    std::string corrupted = blob;
    ASSERT_GT(corrupted.size(), offset);
    corrupted[offset] = static_cast<char>(corrupted[offset] ^ 0xff);
    std::stringstream in(corrupted);
    // Header corruption throws; payload corruption loads garbage values but
    // must not crash. Either outcome is acceptable — assert no UB by just
    // executing it.
    try {
      nn::load_parameters(in, net.parameters());
    } catch (const nn::SerializationError&) {
      // expected for header/shape corruption
    }
  }
}

TEST(FailureInjection, WeightStreamWithAbsurdShapeRejected) {
  // Hand-craft a stream declaring a 10^18-element matrix.
  std::stringstream ss;
  ss.write("DRCW", 4);
  const std::uint32_t version = 1;
  ss.write(reinterpret_cast<const char*>(&version), 4);
  const std::uint64_t count = 1;
  ss.write(reinterpret_cast<const char*>(&count), 8);
  const std::uint64_t rows = 1'000'000'000ull, cols = 1'000'000'000ull;
  ss.write(reinterpret_cast<const char*>(&rows), 8);
  ss.write(reinterpret_cast<const char*>(&cols), 8);
  EXPECT_THROW(nn::load_matrices(ss), nn::SerializationError);
}

TEST(FailureInjection, TaskCsvWithRaggedRowsThrows) {
  const auto task = testing::make_toy_task(3, 4);
  std::stringstream ss;
  data::save_task_csv(ss, task);
  std::string text = ss.str();
  // Drop the last field of the final row (making it ragged).
  const auto last_comma = text.find_last_of(',');
  text = text.substr(0, last_comma) + "\n";
  std::stringstream corrupted(text);
  EXPECT_THROW(data::load_task_csv(corrupted), CheckError);
}

TEST(FailureInjection, TaskCsvTruncatedHeaderThrows) {
  std::stringstream ss("name,toy\ncycle_hours,1\n");
  EXPECT_THROW(data::load_task_csv(ss), CheckError);
}

TEST(FailureInjection, AgentConfigValidation) {
  core::DrCellConfig config;
  config.history_cycles = 0;
  EXPECT_THROW(core::DrCellAgent(5, config), CheckError);
  core::DrCellConfig bad_batch;
  bad_batch.dqn.batch_size = 0;
  EXPECT_THROW(core::DrCellAgent(5, bad_batch), CheckError);
  core::DrCellConfig bad_warmup;
  bad_warmup.dqn.min_replay = 4;
  bad_warmup.dqn.batch_size = 32;  // warm-up below batch size
  EXPECT_THROW(core::DrCellAgent(5, bad_warmup), CheckError);
}

TEST(FailureInjection, TrainerRejectsZeroCells) {
  core::DrCellConfig config;
  EXPECT_THROW(core::DrCellAgent(0, config), CheckError);
}

TEST(FailureInjection, GateOnNoisyTaskNeverSatisfiedStillTerminates) {
  // Epsilon = 0 on a noisy task: only full sensing closes cycles. The
  // episode must still terminate with every cycle fully sensed.
  auto task = std::make_shared<const mcs::SensingTask>(
      testing::make_toy_task(4, 3, /*noise=*/1.0));
  mcs::EnvOptions opt;
  opt.min_observations = 1;
  auto env = mcs::SparseMcsEnvironment(
      task, testing::default_engine(),
      std::make_shared<mcs::GroundTruthGate>(0.0), opt);
  std::size_t guard = 0;
  while (!env.episode_done()) {
    const auto mask = env.action_mask();
    for (std::size_t a = 0; a < mask.size(); ++a)
      if (mask[a]) {
        env.step(a);
        break;
      }
    ASSERT_LT(++guard, 100u) << "episode failed to terminate";
  }
  for (auto count : env.stats().cycle_selected) EXPECT_EQ(count, 4u);
}

}  // namespace
}  // namespace drcell
