// Failure injection: degenerate shapes, corrupted streams, hostile inputs —
// plus the RUNTIME fault drills of the fault-tolerance layer (deterministic
// fault-injection registry, numeric-health sentinels, campaign quarantine,
// checkpoint-ring rollback). The library must fail loudly (CheckError /
// SerializationError), never silently corrupt state or crash; the serving
// fleet must contain faults to the faulted campaign and keep every healthy
// campaign bit-identical to a no-fault run.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <memory>
#include <sstream>

#include "baselines/random_selector.h"
#include "core/agent.h"
#include "core/campaign_scheduler.h"
#include "core/checkpoint.h"
#include "core/health_monitor.h"
#include "core/policy.h"
#include "cs/matrix_completion.h"
#include "data/task_io.h"
#include "mcs/environment.h"
#include "nn/serialize.h"
#include "rl/dqn_trainer.h"
#include "rl/mlp_qnetwork.h"
#include "test_helpers.h"
#include "util/fault_injection.h"

namespace drcell {
namespace {

/// Every fault-injection test disarms on entry AND exit so a failing assert
/// cannot leak an armed spec into later tests.
struct DisarmGuard {
  DisarmGuard() { util::FaultInjection::disarm_all(); }
  ~DisarmGuard() { util::FaultInjection::disarm_all(); }
};

TEST(FailureInjection, EnvironmentRejectsNullDependencies) {
  auto task = std::make_shared<const mcs::SensingTask>(
      testing::make_toy_task());
  auto engine = testing::default_engine();
  auto gate = std::make_shared<mcs::GroundTruthGate>(0.5);
  EXPECT_THROW(mcs::SparseMcsEnvironment(nullptr, engine, gate), CheckError);
  EXPECT_THROW(mcs::SparseMcsEnvironment(task, nullptr, gate), CheckError);
  EXPECT_THROW(mcs::SparseMcsEnvironment(task, engine, nullptr), CheckError);
}

TEST(FailureInjection, EnvironmentRejectsZeroWindow) {
  auto task = std::make_shared<const mcs::SensingTask>(
      testing::make_toy_task());
  mcs::EnvOptions opt;
  opt.inference_window = 0;
  EXPECT_THROW(testing::make_toy_environment(task, 0.5, opt), CheckError);
}

TEST(FailureInjection, EnvironmentRejectsZeroMinObservations) {
  auto task = std::make_shared<const mcs::SensingTask>(
      testing::make_toy_task());
  mcs::EnvOptions opt;
  opt.min_observations = 0;
  EXPECT_THROW(testing::make_toy_environment(task, 0.5, opt), CheckError);
}

TEST(FailureInjection, EnvironmentRejectsNegativeCellCost) {
  auto task = std::make_shared<const mcs::SensingTask>(
      testing::make_toy_task(6, 12));
  mcs::EnvOptions opt;
  opt.cell_costs.assign(6, 1.0);
  opt.cell_costs[3] = -2.0;
  EXPECT_THROW(testing::make_toy_environment(task, 0.5, opt), CheckError);
}

TEST(FailureInjection, SingleCycleTaskCompletesCleanly) {
  auto task = std::make_shared<const mcs::SensingTask>(
      testing::make_toy_task(4, 1));
  mcs::EnvOptions opt;
  opt.min_observations = 1;
  auto env = testing::make_toy_environment(task, 1e9, opt);
  const auto r = env.step(0);
  EXPECT_TRUE(r.cycle_complete);
  EXPECT_TRUE(r.episode_done);
}

TEST(FailureInjection, MinObservationsAboveCellCountStillTerminates) {
  auto task = std::make_shared<const mcs::SensingTask>(
      testing::make_toy_task(3, 2));
  mcs::EnvOptions opt;
  opt.min_observations = 10;  // more than the 3 cells
  auto env = testing::make_toy_environment(task, 1e9, opt);
  mcs::StepResult last;
  for (std::size_t cell = 0; cell < 3; ++cell) last = env.step(cell);
  EXPECT_TRUE(last.cycle_complete);  // full sensing forces completion
}

TEST(FailureInjection, CompletionWithRankAboveObservations) {
  cs::MatrixCompletionOptions opt;
  opt.rank = 10;
  const cs::MatrixCompletion mc(opt);
  cs::PartialMatrix p(5, 5);
  p.set(0, 0, 1.0);
  p.set(2, 3, 2.0);
  const Matrix est = mc.infer(p);  // rank silently clamped
  EXPECT_FALSE(est.has_non_finite());
}

TEST(FailureInjection, CompletionWithConstantData) {
  // Zero-variance observations: factors collapse but estimates stay finite
  // and equal the constant.
  const cs::MatrixCompletion mc;
  cs::PartialMatrix p(4, 6);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 6; j += 2) p.set(i, j, 7.0);
  const Matrix est = mc.infer(p);
  EXPECT_FALSE(est.has_non_finite());
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 6; ++j) EXPECT_NEAR(est(i, j), 7.0, 0.3);
}

TEST(FailureInjection, CompletionWithExtremeValues) {
  const cs::MatrixCompletion mc;
  cs::PartialMatrix p(4, 4);
  p.set(0, 0, 1e9);
  p.set(1, 1, -1e9);
  p.set(2, 2, 1e-9);
  const Matrix est = mc.infer(p);
  EXPECT_FALSE(est.has_non_finite());
}

TEST(FailureInjection, CorruptedWeightStreamVariants) {
  Rng rng(1);
  rl::MlpQNetwork net(3, 1, {4}, rng);

  // Flip bytes inside a valid stream at several offsets.
  std::stringstream good;
  nn::save_parameters(good, net.parameters());
  const std::string blob = good.str();
  for (std::size_t offset : {0ul, 4ul, 8ul, 12ul}) {
    std::string corrupted = blob;
    ASSERT_GT(corrupted.size(), offset);
    corrupted[offset] = static_cast<char>(corrupted[offset] ^ 0xff);
    std::stringstream in(corrupted);
    // Header corruption throws; payload corruption loads garbage values but
    // must not crash. Either outcome is acceptable — assert no UB by just
    // executing it.
    try {
      nn::load_parameters(in, net.parameters());
    } catch (const nn::SerializationError&) {
      // expected for header/shape corruption
    }
  }
}

TEST(FailureInjection, WeightStreamWithAbsurdShapeRejected) {
  // Hand-craft a stream declaring a 10^18-element matrix.
  std::stringstream ss;
  ss.write("DRCW", 4);
  const std::uint32_t version = 1;
  ss.write(reinterpret_cast<const char*>(&version), 4);
  const std::uint64_t count = 1;
  ss.write(reinterpret_cast<const char*>(&count), 8);
  const std::uint64_t rows = 1'000'000'000ull, cols = 1'000'000'000ull;
  ss.write(reinterpret_cast<const char*>(&rows), 8);
  ss.write(reinterpret_cast<const char*>(&cols), 8);
  EXPECT_THROW(nn::load_matrices(ss), nn::SerializationError);
}

TEST(FailureInjection, TaskCsvWithRaggedRowsThrows) {
  const auto task = testing::make_toy_task(3, 4);
  std::stringstream ss;
  data::save_task_csv(ss, task);
  std::string text = ss.str();
  // Drop the last field of the final row (making it ragged).
  const auto last_comma = text.find_last_of(',');
  text = text.substr(0, last_comma) + "\n";
  std::stringstream corrupted(text);
  EXPECT_THROW(data::load_task_csv(corrupted), CheckError);
}

TEST(FailureInjection, TaskCsvTruncatedHeaderThrows) {
  std::stringstream ss("name,toy\ncycle_hours,1\n");
  EXPECT_THROW(data::load_task_csv(ss), CheckError);
}

TEST(FailureInjection, AgentConfigValidation) {
  core::DrCellConfig config;
  config.history_cycles = 0;
  EXPECT_THROW(core::DrCellAgent(5, config), CheckError);
  core::DrCellConfig bad_batch;
  bad_batch.dqn.batch_size = 0;
  EXPECT_THROW(core::DrCellAgent(5, bad_batch), CheckError);
  core::DrCellConfig bad_warmup;
  bad_warmup.dqn.min_replay = 4;
  bad_warmup.dqn.batch_size = 32;  // warm-up below batch size
  EXPECT_THROW(core::DrCellAgent(5, bad_warmup), CheckError);
}

TEST(FailureInjection, TrainerRejectsZeroCells) {
  core::DrCellConfig config;
  EXPECT_THROW(core::DrCellAgent(0, config), CheckError);
}

TEST(FailureInjection, GateOnNoisyTaskNeverSatisfiedStillTerminates) {
  // Epsilon = 0 on a noisy task: only full sensing closes cycles. The
  // episode must still terminate with every cycle fully sensed.
  auto task = std::make_shared<const mcs::SensingTask>(
      testing::make_toy_task(4, 3, /*noise=*/1.0));
  mcs::EnvOptions opt;
  opt.min_observations = 1;
  auto env = mcs::SparseMcsEnvironment(
      task, testing::default_engine(),
      std::make_shared<mcs::GroundTruthGate>(0.0), opt);
  std::size_t guard = 0;
  while (!env.episode_done()) {
    const auto mask = env.action_mask();
    for (std::size_t a = 0; a < mask.size(); ++a)
      if (mask[a]) {
        env.step(a);
        break;
      }
    ASSERT_LT(++guard, 100u) << "episode failed to terminate";
  }
  for (auto count : env.stats().cycle_selected) EXPECT_EQ(count, 4u);
}

// ---------------------------------------------------------------------------
// Fault-injection registry (util/fault_injection.h)

TEST(FaultInjectionRegistry, DisarmedIsNoOp) {
  DisarmGuard guard;
  EXPECT_FALSE(util::FaultInjection::enabled());
  EXPECT_FALSE(util::FaultInjection::check("env.step", "anything"));
  EXPECT_NO_THROW(util::FaultInjection::site("env.step", "anything"));
  EXPECT_EQ(util::FaultInjection::hits("env.step"), 0u);
}

TEST(FaultInjectionRegistry, SpecStringCountdownAndScope) {
  DisarmGuard guard;
  ASSERT_EQ(util::FaultInjection::arm_from_string("env.step@c1:after=1,times=2"),
            1u);
  // Wrong scope: never matches, never counts.
  EXPECT_FALSE(util::FaultInjection::check("env.step", "c2"));
  EXPECT_EQ(util::FaultInjection::hits("env.step", "c1"), 0u);
  // Matching scope: hit 1 skipped (after=1), hits 2-3 fire (times=2), then
  // the spec is exhausted.
  EXPECT_FALSE(util::FaultInjection::check("env.step", "c1"));
  EXPECT_TRUE(util::FaultInjection::check("env.step", "c1"));
  EXPECT_TRUE(util::FaultInjection::check("env.step", "c1"));
  EXPECT_FALSE(util::FaultInjection::check("env.step", "c1"));
  EXPECT_EQ(util::FaultInjection::hits("env.step", "c1"), 4u);
  EXPECT_EQ(util::FaultInjection::fires("env.step", "c1"), 2u);
}

TEST(FaultInjectionRegistry, BareSiteIsPersistent) {
  DisarmGuard guard;
  ASSERT_EQ(util::FaultInjection::arm_from_string("train.step"), 1u);
  for (int i = 0; i < 5; ++i)
    EXPECT_THROW(util::FaultInjection::site("train.step", ""),
                 util::InjectedFault);
  // An unscoped spec matches any scope.
  EXPECT_TRUE(util::FaultInjection::check("train.step", "whatever"));
}

TEST(FaultInjectionRegistry, MalformedSpecsThrow) {
  DisarmGuard guard;
  EXPECT_THROW(util::FaultInjection::arm_from_string("env.step:bogus=1"),
               CheckError);
  EXPECT_THROW(util::FaultInjection::arm_from_string("env.step:times=abc"),
               CheckError);
  EXPECT_THROW(util::FaultInjection::arm_from_string("env.step:prob=1.5"),
               CheckError);
  EXPECT_THROW(util::FaultInjection::arm_from_string(":after=1"), CheckError);
}

TEST(FaultInjectionRegistry, ProbabilisticFiresAreDeterministic) {
  DisarmGuard guard;
  const auto pattern = [] {
    util::FaultInjection::disarm_all();
    util::FaultSpec spec;
    spec.site = "als.solve";
    spec.probability = 0.3;
    spec.seed = 99;
    util::FaultInjection::arm(spec);
    std::vector<bool> fires;
    for (int i = 0; i < 200; ++i)
      fires.push_back(util::FaultInjection::check("als.solve"));
    return fires;
  };
  const auto first = pattern();
  const auto second = pattern();
  EXPECT_EQ(first, second);  // private RNG stream -> reproducible drills
  const auto fired = std::count(first.begin(), first.end(), true);
  EXPECT_GT(fired, 0);
  EXPECT_LT(fired, 200);
}

// ---------------------------------------------------------------------------
// Numeric-health sentinels (core/health_monitor.h)

TEST(HealthMonitor, NonFiniteLossTripsStickyAndResets) {
  core::HealthMonitor monitor;
  EXPECT_TRUE(monitor.healthy());
  monitor.record_loss(0.5);
  EXPECT_TRUE(monitor.healthy());
  EXPECT_EQ(monitor.record_loss(std::numeric_limits<double>::quiet_NaN()),
            core::HealthStatus::kNonFiniteLoss);
  // Sticky: healthy losses afterwards do not clear it.
  monitor.record_loss(0.5);
  EXPECT_EQ(monitor.status(), core::HealthStatus::kNonFiniteLoss);
  EXPECT_FALSE(monitor.reason().empty());
  monitor.reset();
  EXPECT_TRUE(monitor.healthy());
  EXPECT_TRUE(monitor.reason().empty());
}

TEST(HealthMonitor, LossExplosionTripsAgainstBaseline) {
  core::HealthOptions options;
  options.loss_baseline = 4;
  options.loss_window = 2;
  options.loss_explosion_factor = 10.0;
  core::HealthMonitor monitor(options);
  for (int i = 0; i < 4; ++i) monitor.record_loss(1.0);  // baseline mean 1
  EXPECT_TRUE(monitor.healthy());
  monitor.record_loss(1000.0);
  monitor.record_loss(1000.0);  // window mean 1000 > 10 * (1 + 1)
  EXPECT_EQ(monitor.status(), core::HealthStatus::kLossExplosion);
}

TEST(HealthMonitor, QSentinels) {
  core::HealthMonitor nan_monitor;
  Matrix q(2, 3);
  q(1, 2) = std::numeric_limits<double>::infinity();
  EXPECT_EQ(nan_monitor.check_q(q), core::HealthStatus::kNonFiniteQ);

  core::HealthOptions bounded;
  bounded.max_abs_q = 100.0;
  core::HealthMonitor range_monitor(bounded);
  Matrix big(1, 2);
  big(0, 1) = -1e6;
  EXPECT_EQ(range_monitor.check_q(big), core::HealthStatus::kQOutOfRange);
}

TEST(HealthMonitor, ParameterSentinelViaAgent) {
  core::DrCellConfig config;
  config.history_cycles = 2;
  config.lstm_hidden = 8;
  core::DrCellAgent agent(4, config);
  EXPECT_EQ(agent.check_parameter_health(), core::HealthStatus::kHealthy);
  agent.trainer().online().parameters()[0]->value(0, 0) =
      std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(agent.check_parameter_health(),
            core::HealthStatus::kNonFiniteParams);
}

// ---------------------------------------------------------------------------
// Scheduler fault domains: quarantine, retry, rollback, fallback

/// Small deterministic fleet for the drills: two frozen DR-Cell campaigns
/// sharing one agent (slots 0-1) plus two RANDOM campaigns (slots 2-3).
/// Two separately constructed ToyFleets are bit-identical (fixed seeds).
struct ToyFleet {
  std::shared_ptr<const mcs::SensingTask> task;
  core::DrCellConfig config;
  core::CampaignConfig campaign;
  std::shared_ptr<core::DrCellAgent> agent;

  ToyFleet() {
    task = std::make_shared<const mcs::SensingTask>(
        testing::make_toy_task(6, 10));
    config.history_cycles = 2;
    config.lstm_hidden = 16;
    config.env.min_observations = 2;
    config.env.inference_window = 6;
    agent = std::make_shared<core::DrCellAgent>(6, config);
    campaign.epsilon = 0.8;
    campaign.p = 0.8;
    campaign.env = config.env;
    campaign.env.history_cycles = config.history_cycles;
  }

  void populate(core::CampaignScheduler& scheduler) const {
    for (int i = 0; i < 2; ++i)
      scheduler.add_campaign(
          "drcell-" + std::to_string(i), campaign, task,
          [] { return testing::default_engine(); },
          std::make_shared<core::DrCellPolicy>(*agent));
    for (int i = 0; i < 2; ++i)
      scheduler.add_campaign(
          "random-" + std::to_string(i), campaign, task,
          [] { return testing::default_engine(); },
          std::make_shared<baselines::RandomSelector>(
              static_cast<std::uint64_t>(40 + i)));
  }
};

void expect_campaign_identical(const core::CampaignScheduler& a,
                               const core::CampaignScheduler& b,
                               std::size_t slot) {
  const auto ra = a.results()[slot];
  const auto rb = b.results()[slot];
  EXPECT_EQ(ra.cycles, rb.cycles) << "slot " << slot;
  EXPECT_EQ(ra.stats.cycle_errors, rb.stats.cycle_errors) << "slot " << slot;
  EXPECT_EQ(ra.stats.total_reward, rb.stats.total_reward) << "slot " << slot;
  EXPECT_EQ(a.action_log(slot), b.action_log(slot)) << "slot " << slot;
}

bool has_incident(const core::CampaignScheduler& s, const std::string& kind) {
  return std::any_of(s.incidents().begin(), s.incidents().end(),
                     [&](const core::Incident& i) { return i.kind == kind; });
}

TEST(SchedulerFaults, PersistentFaultQuarantinesOnlyTargetedCampaign) {
  DisarmGuard guard;
  const ToyFleet clean;
  core::CampaignScheduler reference;
  clean.populate(reference);
  reference.run();
  ASSERT_TRUE(reference.incidents().empty());

  util::FaultSpec spec;
  spec.site = "env.step";
  spec.scope = "random-0";  // slot 2
  util::FaultInjection::arm(spec);
  const ToyFleet fleet;
  core::CampaignScheduler faulted;
  fleet.populate(faulted);
  faulted.run();
  util::FaultInjection::disarm_all();

  ASSERT_TRUE(faulted.all_done());
  EXPECT_EQ(faulted.quarantined_slots(), (std::vector<std::size_t>{2}));
  EXPECT_EQ(faulted.campaign_state(2), core::CampaignState::kQuarantined);
  EXPECT_TRUE(faulted.results()[2].quarantined);
  EXPECT_FALSE(faulted.quarantine_reason(2).empty());
  EXPECT_TRUE(has_incident(faulted, "step-fault"));
  EXPECT_TRUE(has_incident(faulted, "quarantine"));
  // The healthy fleet never noticed: bit-identical to the no-fault run.
  for (const std::size_t slot : {0u, 1u, 3u})
    expect_campaign_identical(reference, faulted, slot);
}

TEST(SchedulerFaults, TransientStepFaultRetriedBitIdentically) {
  DisarmGuard guard;
  const ToyFleet clean;
  core::CampaignScheduler reference;
  clean.populate(reference);
  reference.run();

  util::FaultSpec spec;
  spec.site = "env.step";
  spec.scope = "random-1";
  spec.after = 3;  // let three steps through
  spec.times = 1;  // then fire exactly once
  util::FaultInjection::arm(spec);
  const ToyFleet fleet;
  core::CampaignScheduler faulted;
  fleet.populate(faulted);
  faulted.run();
  util::FaultInjection::disarm_all();

  // Recovered in-wave: no quarantine, and the WHOLE fleet — the faulted
  // campaign included — matches the no-fault run bit for bit.
  EXPECT_TRUE(faulted.quarantined_slots().empty());
  EXPECT_TRUE(has_incident(faulted, "retry-recovered"));
  for (std::size_t slot = 0; slot < 4; ++slot)
    expect_campaign_identical(reference, faulted, slot);
}

TEST(SchedulerFaults, NanPoisonedAgentRollsBackFromCheckpointRing) {
  DisarmGuard guard;
  core::CampaignScheduler::Options options;
  options.fault.checkpoint_every_waves = 4;
  options.fault.checkpoint_ring = 2;

  const ToyFleet clean;
  core::CampaignScheduler reference(options);
  clean.populate(reference);
  reference.run();
  ASSERT_EQ(reference.rollbacks(), 0u);

  const ToyFleet fleet;
  core::CampaignScheduler poisoned(options);
  fleet.populate(poisoned);
  poisoned.run(/*max_waves=*/10);
  ASSERT_GT(poisoned.checkpoint_ring_size(), 0u);
  fleet.agent->trainer().online().parameters()[0]->value(1, 1) =
      std::numeric_limits<double>::quiet_NaN();
  poisoned.run();

  // Detected by the parameter sentinel, restored from the newest ring
  // entry, and — the frozen policy being deterministic and the selector
  // streams restored — the re-run lands exactly on the no-fault run.
  EXPECT_EQ(poisoned.rollbacks(), 1u);
  EXPECT_TRUE(has_incident(poisoned, "agent-unhealthy"));
  EXPECT_TRUE(has_incident(poisoned, "rollback"));
  EXPECT_TRUE(poisoned.quarantined_slots().empty());
  EXPECT_TRUE(fleet.agent->health().healthy());  // reset after rollback
  for (std::size_t slot = 0; slot < 4; ++slot)
    expect_campaign_identical(reference, poisoned, slot);
}

TEST(SchedulerFaults, OnlineTrainStepDetectsNanWithinOneStep) {
  DisarmGuard guard;
  const ToyFleet fleet;
  core::DrCellConfig config = fleet.config;
  config.dqn.batch_size = 4;
  config.dqn.min_replay = 4;   // train from the 4th step on
  config.dqn.double_dqn = true;  // next-action chooser = the clean online net
  core::DrCellAgent agent(6, config);

  core::CampaignScheduler::Options options;
  // Monitoring off: this test pins the DETECTION latency of the loss
  // sentinel itself, without the scheduler acting on it.
  options.fault.health_check_every_waves = 0;
  core::CampaignScheduler scheduler(options);
  scheduler.add_campaign(
      "online-0", fleet.campaign, fleet.task,
      [] { return testing::default_engine(); },
      std::make_shared<core::OnlineAdaptivePolicy>(agent, 0.05, 7));
  scheduler.run(/*max_waves=*/8);  // replay warmed, training active
  ASSERT_EQ(scheduler.waves_completed(), 8u);
  ASSERT_GE(agent.trainer().replay().size(), 4u);
  ASSERT_GT(agent.trainer().train_steps(), 0u);
  ASSERT_TRUE(agent.health().healthy());

  // Poison the TARGET network. The action path (online net) stays clean —
  // poisoning it would NaN every Q-value and masked_argmax would reject the
  // decide with "no selectable action" before any train step ran. The
  // Double-DQN target value, however, flows straight into the TD loss, so
  // the very next train step records a NaN Huber loss.
  for (nn::Parameter* p : agent.trainer().target().parameters())
    p->value(0, 0) = std::numeric_limits<double>::quiet_NaN();
  scheduler.step_wave();  // ONE wave = one train step
  EXPECT_EQ(agent.health().status(), core::HealthStatus::kNonFiniteLoss);
}

TEST(SchedulerFaults, UnhealthyAgentFallsBackToBaselineSelector) {
  DisarmGuard guard;
  const ToyFleet fleet;
  core::CampaignScheduler::Options options;
  // No checkpoint ring: rollback is impossible, so the recovery path must
  // degrade the agent's campaigns to the configured fallback.
  options.fault.fallback_factory = [](const std::string&, std::size_t slot) {
    return std::make_shared<baselines::RandomSelector>(1000 + slot);
  };
  core::CampaignScheduler scheduler(options);
  fleet.populate(scheduler);
  scheduler.run(/*max_waves=*/3);
  fleet.agent->trainer().online().parameters()[0]->value(0, 0) =
      std::numeric_limits<double>::quiet_NaN();
  scheduler.run();

  ASSERT_TRUE(scheduler.all_done());
  EXPECT_TRUE(has_incident(scheduler, "agent-unhealthy"));
  EXPECT_TRUE(has_incident(scheduler, "fallback"));
  EXPECT_TRUE(scheduler.quarantined_slots().empty());
  const auto results = scheduler.results();
  // The agent's campaigns (slots 0-1, originally "DR-Cell") now serve the
  // fallback selector; degraded but not dropped.
  EXPECT_EQ(results[0].selector, "RANDOM");
  EXPECT_EQ(results[1].selector, "RANDOM");
  EXPECT_FALSE(results[0].quarantined);
  EXPECT_FALSE(results[1].quarantined);
}

TEST(SchedulerFaults, QuarantineStateSurvivesCheckpointRoundTrip) {
  DisarmGuard guard;
  util::FaultSpec spec;
  spec.site = "env.step";
  spec.scope = "random-0";
  util::FaultInjection::arm(spec);
  const ToyFleet fleet;
  core::CampaignScheduler faulted;
  fleet.populate(faulted);
  faulted.run();
  util::FaultInjection::disarm_all();
  ASSERT_EQ(faulted.quarantined_slots(), (std::vector<std::size_t>{2}));

  std::ostringstream out(std::ios::binary);
  core::save_checkpoint(faulted, out);
  const ToyFleet resumed_fleet;
  core::CampaignScheduler resumed;
  resumed_fleet.populate(resumed);
  std::istringstream in(out.str(), std::ios::binary);
  core::load_checkpoint(resumed, in);
  EXPECT_EQ(resumed.quarantined_slots(), (std::vector<std::size_t>{2}));
  EXPECT_EQ(resumed.quarantine_reason(2), faulted.quarantine_reason(2));
}

// ---------------------------------------------------------------------------
// Checkpoint integrity: corruption vs mismatch, v1 compatibility

TEST(CheckpointIntegrity, TruncationAndBitFlipAreCorruption) {
  const ToyFleet fleet;
  core::CampaignScheduler burst;
  fleet.populate(burst);
  burst.run(/*max_waves=*/6);
  std::ostringstream out(std::ios::binary);
  core::save_checkpoint(burst, out);
  const std::string bytes = out.str();

  {
    const ToyFleet fresh_fleet;
    core::CampaignScheduler fresh;
    fresh_fleet.populate(fresh);
    std::istringstream in(bytes.substr(0, bytes.size() - 7),
                          std::ios::binary);
    EXPECT_THROW(core::load_checkpoint(fresh, in),
                 core::CheckpointCorruptionError);
  }
  {
    std::string flipped = bytes;
    flipped[flipped.size() / 2] =
        static_cast<char>(flipped[flipped.size() / 2] ^ 0x01);
    const ToyFleet fresh_fleet;
    core::CampaignScheduler fresh;
    fresh_fleet.populate(fresh);
    std::istringstream in(flipped, std::ios::binary);
    EXPECT_THROW(core::load_checkpoint(fresh, in),
                 core::CheckpointCorruptionError);
  }
}

TEST(CheckpointIntegrity, WrongFleetIsMismatchNotCorruption) {
  const ToyFleet fleet;
  core::CampaignScheduler burst;
  fleet.populate(burst);
  burst.run(/*max_waves=*/6);
  std::ostringstream out(std::ios::binary);
  core::save_checkpoint(burst, out);

  // Same bytes, CRC intact — but a fleet with different campaign ids.
  const ToyFleet other_fleet;
  core::CampaignScheduler other;
  other_fleet.populate(other);
  other.add_campaign("extra", other_fleet.campaign, other_fleet.task,
                     [] { return testing::default_engine(); },
                     std::make_shared<baselines::RandomSelector>(9));
  std::istringstream in(out.str(), std::ios::binary);
  EXPECT_THROW(core::load_checkpoint(other, in),
               core::CheckpointMismatchError);
}

TEST(CheckpointIntegrity, LegacyV1StreamStillResumesBitIdentically) {
  const ToyFleet clean;
  core::CampaignScheduler uninterrupted;
  clean.populate(uninterrupted);
  uninterrupted.run();

  const ToyFleet burst_fleet;
  core::CampaignScheduler burst;
  burst_fleet.populate(burst);
  burst.run(/*max_waves=*/6);
  std::ostringstream out(std::ios::binary);
  core::save_checkpoint_v1(burst, out);  // legacy writer, no CRC envelope

  const ToyFleet resumed_fleet;
  core::CampaignScheduler resumed;
  resumed_fleet.populate(resumed);
  std::istringstream in(out.str(), std::ios::binary);
  core::load_checkpoint(resumed, in);
  resumed.run();
  for (std::size_t slot = 0; slot < 4; ++slot)
    expect_campaign_identical(uninterrupted, resumed, slot);
}

// ---------------------------------------------------------------------------
// ALS non-convergence -> cold-solve fallback

TEST(AlsFallback, ConvergeFaultFallsBackToColdSolveBitIdentically) {
  DisarmGuard guard;
  cs::MatrixCompletionOptions options;
  options.rank = 3;
  const cs::MatrixCompletion warm(options);

  // A smooth low-rank window, mostly observed; then two small increments —
  // exactly the per-cycle evolution the warm path trusts.
  const auto window = [](std::size_t extra) {
    cs::PartialMatrix p(8, 6);
    for (std::size_t r = 0; r < 8; ++r)
      for (std::size_t c = 0; c < 5; ++c)
        p.set(r, c, 10.0 + std::sin(0.7 * static_cast<double>(r)) +
                        0.5 * std::cos(0.9 * static_cast<double>(c)));
    for (std::size_t r = 0; r < extra; ++r)
      p.set(r, 5, 10.0 + std::sin(0.7 * static_cast<double>(r)) + 0.5);
    return p;
  };
  warm.infer(window(2));  // cold fit, caches factors
  warm.infer(window(4));  // trusted warm resume

  util::FaultSpec spec;
  spec.site = "als.converge";
  spec.times = 1;
  util::FaultInjection::arm(spec);
  const Matrix forced = warm.infer(window(6));
  // Exactly one fire proves the warm-resume path was taken and rejected.
  ASSERT_EQ(util::FaultInjection::fires("als.converge"), 1u);
  util::FaultInjection::disarm_all();
  // A fresh never-warmed engine on the same window is the reference: the
  // fallback re-solves from the same seeded noise with the full budget.
  const cs::MatrixCompletion cold(options);
  const Matrix reference = cold.infer(window(6));
  ASSERT_EQ(forced.rows(), reference.rows());
  ASSERT_EQ(forced.cols(), reference.cols());
  for (std::size_t r = 0; r < forced.rows(); ++r)
    for (std::size_t c = 0; c < forced.cols(); ++c)
      EXPECT_EQ(forced(r, c), reference(r, c)) << "(" << r << "," << c << ")";
}

}  // namespace
}  // namespace drcell
