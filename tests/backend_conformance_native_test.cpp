// Conformance suite instantiation for the "native" backend (the tuned
// blocked/fused kernels — the bit-exactness reference of the registry).
#define DRCELL_CONFORMANCE_BACKEND "native"
#include "backend_conformance.inc.cc"
