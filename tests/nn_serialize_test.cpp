#include <gtest/gtest.h>

#include <sstream>

#include "nn/dense.h"
#include "nn/lstm.h"
#include "nn/serialize.h"
#include "rl/spatial_drqn_qnetwork.h"

namespace drcell::nn {
namespace {

TEST(Serialize, MatrixRoundTrip) {
  Matrix a{{1.5, -2.0}, {0.0, 3.25}};
  Matrix b(1, 3, 7.0);
  std::stringstream ss;
  save_matrices(ss, {&a, &b});
  const auto loaded = load_matrices(ss);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0], a);
  EXPECT_EQ(loaded[1], b);
}

TEST(Serialize, EmptyListRoundTrip) {
  std::stringstream ss;
  save_matrices(ss, {});
  EXPECT_TRUE(load_matrices(ss).empty());
}

TEST(Serialize, BadMagicThrows) {
  std::stringstream ss("not a weight stream at all");
  EXPECT_THROW(load_matrices(ss), SerializationError);
}

TEST(Serialize, TruncatedStreamThrows) {
  Matrix a(4, 4, 1.0);
  std::stringstream ss;
  save_matrices(ss, {&a});
  std::string data = ss.str();
  data.resize(data.size() / 2);
  std::stringstream truncated(data);
  EXPECT_THROW(load_matrices(truncated), SerializationError);
}

TEST(Serialize, EmptyStreamThrows) {
  std::stringstream ss;
  EXPECT_THROW(load_matrices(ss), SerializationError);
}

TEST(Serialize, ParameterRoundTripRestoresValues) {
  Rng rng(1);
  Dense original(3, 4, rng);
  std::stringstream ss;
  save_parameters(ss, original.parameters());

  Rng rng2(99);
  Dense restored(3, 4, rng2);
  ASSERT_NE(restored.weight().value, original.weight().value);
  load_parameters(ss, restored.parameters());
  EXPECT_EQ(restored.weight().value, original.weight().value);
  EXPECT_EQ(restored.bias().value, original.bias().value);
}

TEST(Serialize, ParameterCountMismatchThrows) {
  Rng rng(2);
  Dense d(2, 2, rng);
  std::stringstream ss;
  save_parameters(ss, d.parameters());
  Lstm lstm(2, 2, rng);  // 3 parameters vs Dense's 2
  EXPECT_THROW(load_parameters(ss, lstm.parameters()), SerializationError);
}

TEST(Serialize, ShapeMismatchThrows) {
  Rng rng(3);
  Dense small(2, 2, rng);
  std::stringstream ss;
  save_parameters(ss, small.parameters());
  Dense big(3, 3, rng);
  EXPECT_THROW(load_parameters(ss, big.parameters()), SerializationError);
}

TEST(Serialize, LstmRoundTripPreservesBehaviour) {
  Rng rng(4);
  Lstm original(3, 5, rng);
  std::stringstream ss;
  save_parameters(ss, original.parameters());

  Rng rng2(5);
  Lstm restored(3, 5, rng2);
  load_parameters(ss, restored.parameters());

  Rng data_rng(6);
  std::vector<Matrix> seq(3, Matrix(2, 3));
  for (auto& m : seq)
    for (double& v : m.data()) v = data_rng.normal();
  EXPECT_EQ(original.forward(seq), restored.forward(seq));
}

TEST(Serialize, CopyParametersTransfersValues) {
  Rng rng(7);
  Dense a(2, 3, rng), b(2, 3, rng);
  ASSERT_NE(a.weight().value, b.weight().value);
  copy_parameters(a.parameters(), b.parameters());
  EXPECT_EQ(a.weight().value, b.weight().value);
  // Independent storage: mutating the source must not affect the copy.
  a.weight().value(0, 0) += 1.0;
  EXPECT_NE(a.weight().value, b.weight().value);
}

TEST(Serialize, CopyParametersShapeMismatchThrows) {
  Rng rng(8);
  Dense a(2, 3, rng), b(3, 2, rng);
  EXPECT_THROW(copy_parameters(a.parameters(), b.parameters()), CheckError);
}

TEST(Serialize, FileRoundTrip) {
  Rng rng(9);
  Dense original(4, 2, rng);
  const std::string path = ::testing::TempDir() + "/drcell_weights.bin";
  save_parameters_to_file(path, original.parameters());
  Rng rng2(10);
  Dense restored(4, 2, rng2);
  load_parameters_from_file(path, restored.parameters());
  EXPECT_EQ(original.weight().value, restored.weight().value);
}

std::vector<Matrix> spatial_probe_batch(const rl::SpatialDrqnQNetwork& net,
                                        std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Matrix> steps(net.history_steps(),
                            Matrix(2, net.num_actions()));
  for (auto& step : steps)
    for (double& v : step.data()) v = rng.uniform() < 0.2 ? 1.0 : 0.0;
  return steps;
}

TEST(Serialize, SpatialDrqnRoundTripPreservesQValues) {
  Rng rng(20);
  rl::SpatialDrqnQNetwork original(4, 3, 2, 8, 1, 0, rng);
  std::stringstream ss;
  save_parameters(ss, original.parameters());

  Rng rng2(21);
  rl::SpatialDrqnQNetwork restored(4, 3, 2, 8, 1, 0, rng2);
  const auto probe = spatial_probe_batch(original, 22);
  ASSERT_NE(original.forward_batch(probe), restored.forward_batch(probe));
  load_parameters(ss, restored.parameters());
  EXPECT_EQ(original.forward_batch(probe), restored.forward_batch(probe));
}

TEST(Serialize, SpatialDrqnTruncatedStreamThrows) {
  Rng rng(23);
  rl::SpatialDrqnQNetwork net(4, 3, 2, 8, 1, 4, rng);
  std::stringstream ss;
  save_parameters(ss, net.parameters());
  std::string data = ss.str();
  data.resize(data.size() / 2);
  std::stringstream truncated(data);
  EXPECT_THROW(load_parameters(truncated, net.parameters()),
               SerializationError);
}

TEST(Serialize, SpatialDrqnShapeMismatchThrows) {
  Rng rng(24);
  rl::SpatialDrqnQNetwork small(4, 3, 2, 8, 1, 0, rng);
  std::stringstream ss;
  save_parameters(ss, small.parameters());
  // Same grid and parameter count, but a wider LSTM: every weight shape
  // disagrees and the load must refuse rather than scribble.
  rl::SpatialDrqnQNetwork wide(4, 3, 2, 12, 1, 0, rng);
  ASSERT_EQ(wide.parameters().size(), small.parameters().size());
  EXPECT_THROW(load_parameters(ss, wide.parameters()), SerializationError);
}

TEST(Serialize, MissingFileThrows) {
  Rng rng(11);
  Dense d(2, 2, rng);
  EXPECT_THROW(
      load_parameters_from_file("/nonexistent/dir/w.bin", d.parameters()),
      SerializationError);
}

}  // namespace
}  // namespace drcell::nn
