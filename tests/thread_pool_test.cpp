#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "util/check.h"
#include "util/thread_pool.h"

namespace drcell::util {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  for (std::size_t workers : {std::size_t{0}, std::size_t{1}, std::size_t{3}}) {
    ThreadPool pool(workers);
    constexpr std::size_t n = 100;
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_for(n, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
  }
}

TEST(ThreadPool, ResultsAreIndexOrderedAndThreadCountIndependent) {
  constexpr std::size_t n = 64;
  std::vector<double> serial(n);
  for (std::size_t i = 0; i < n; ++i)
    serial[i] = static_cast<double>(i * i) + 0.5;

  for (std::size_t workers : {std::size_t{0}, std::size_t{4}}) {
    ThreadPool pool(workers);
    std::vector<double> out(n, -1.0);
    pool.parallel_for(
        n, [&](std::size_t i) { out[i] = static_cast<double>(i * i) + 0.5; });
    EXPECT_EQ(out, serial);
  }
}

TEST(ThreadPool, SeededTasksAreReproducibleAcrossWorkerCounts) {
  constexpr std::size_t n = 32;
  constexpr std::uint64_t seed = 99;
  std::vector<double> draws_serial(n), draws_pooled(n);

  ThreadPool serial(0);
  serial.parallel_for_seeded(
      seed, n, [&](std::size_t i, Rng& rng) { draws_serial[i] = rng.normal(); });
  ThreadPool pooled(3);
  pooled.parallel_for_seeded(
      seed, n, [&](std::size_t i, Rng& rng) { draws_pooled[i] = rng.normal(); });

  EXPECT_EQ(draws_serial, draws_pooled);
  // And the per-task streams are genuinely distinct.
  EXPECT_NE(draws_serial[0], draws_serial[1]);
}

TEST(ThreadPool, PropagatesTaskExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(16,
                                 [](std::size_t i) {
                                   if (i == 5)
                                     throw CheckError("boom");
                                 }),
               CheckError);
  // The pool is still usable afterwards.
  std::atomic<int> count{0};
  pool.parallel_for(8, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPool, AggregatesExceptionsWithoutStarvingOtherTasks) {
  // The aggregation contract: every index runs even when several throw, the
  // first captured exception is rethrown, and last_batch_error_count()
  // reports how many tasks threw in the batch.
  for (std::size_t workers : {std::size_t{0}, std::size_t{3}}) {
    ThreadPool pool(workers);
    constexpr std::size_t n = 64;
    std::vector<std::atomic<int>> hits(n);
    EXPECT_THROW(pool.parallel_for(n,
                                   [&](std::size_t i) {
                                     hits[i].fetch_add(1);
                                     if (i % 16 == 3)  // 4 throwers
                                       throw CheckError("task " +
                                                        std::to_string(i));
                                   }),
                 CheckError);
    EXPECT_EQ(ThreadPool::last_batch_error_count(), 4u);
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_EQ(hits[i].load(), 1) << "task " << i << " was starved";
    // A clean batch resets the count.
    pool.parallel_for(8, [](std::size_t) {});
    EXPECT_EQ(ThreadPool::last_batch_error_count(), 0u);
  }
}

TEST(ThreadPool, SerialBatchRethrowsLowestIndexException) {
  // With 0 workers claim order IS index order, so "first captured" is
  // deterministic and observable.
  ThreadPool pool(0);
  try {
    pool.parallel_for(32, [](std::size_t i) {
      if (i == 7 || i == 21) throw CheckError("task " + std::to_string(i));
    });
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("task 7"), std::string::npos);
  }
  EXPECT_EQ(ThreadPool::last_batch_error_count(), 2u);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  // Nested submissions can land on a worker lane (inline via the worker
  // flag) or on the caller's own lane (inline via the re-entry flag; a
  // second try_lock on the non-recursive submission mutex would be UB).
  // With n well above the lane count both paths are exercised.
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.parallel_for(16, [&](std::size_t) {
    pool.parallel_for(4, [&](std::size_t) { count.fetch_add(1); });
  });
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, GlobalPoolIsUsable) {
  std::atomic<int> count{0};
  ThreadPool::global().parallel_for(10, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, ChunkedDispatchCoversLargeRangesExactlyOnce) {
  // n well above lanes*chunks so several fetch_add ranges per lane are
  // claimed; every index must still run exactly once.
  for (std::size_t workers : {std::size_t{0}, std::size_t{1}, std::size_t{3}}) {
    ThreadPool pool(workers);
    constexpr std::size_t n = 10000;
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_for(n, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPool, FunctionRefCallsThroughWithoutCopyingTheTarget) {
  int calls = 0;
  auto lambda = [&calls](std::size_t i) { calls += static_cast<int>(i) + 1; };
  FunctionRef<void(std::size_t)> ref = lambda;
  ref(0);
  ref(2);
  EXPECT_EQ(calls, 4);  // mutations land in the original: no copy was made
}

TEST(ThreadPool, WorkersFromLanesSpecParsesTotalLanes) {
  EXPECT_EQ(ThreadPool::workers_from_lanes_spec("1", 7), 0u);   // serial
  EXPECT_EQ(ThreadPool::workers_from_lanes_spec("4", 7), 3u);   // 3 workers
  EXPECT_EQ(ThreadPool::workers_from_lanes_spec(nullptr, 7), 7u);
  EXPECT_EQ(ThreadPool::workers_from_lanes_spec("", 7), 7u);
  EXPECT_EQ(ThreadPool::workers_from_lanes_spec("0", 7), 7u);   // invalid
  EXPECT_EQ(ThreadPool::workers_from_lanes_spec("abc", 7), 7u);
  EXPECT_EQ(ThreadPool::workers_from_lanes_spec("4x", 7), 7u);
}

TEST(ThreadPool, SetGlobalWorkerCountForTestingResizesAndRestores) {
  const std::size_t before = ThreadPool::global().worker_count();
  ThreadPool::set_global_worker_count_for_testing(2);
  EXPECT_EQ(ThreadPool::global().worker_count(), 2u);
  std::atomic<int> count{0};
  ThreadPool::global().parallel_for(32, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 32);
  ThreadPool::set_global_worker_count_for_testing(before);
  EXPECT_EQ(ThreadPool::global().worker_count(), before);
}

}  // namespace
}  // namespace drcell::util
