// Tests for the O(1) selection loop: the environment's incrementally
// maintained unsensed set / action mask and the SelectionMatrix's per-cycle
// selection lists, each checked against a naive rebuild-from-scratch
// reference under select / cycle-turnover / reset churn.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "baselines/random_selector.h"
#include "mcs/environment.h"
#include "mcs/selection_matrix.h"
#include "test_helpers.h"
#include "util/rng.h"

namespace drcell {
namespace {

/// Seed-equivalent references: rebuild the mask and the allowed-cell list by
/// scanning the selection matrix, the way the environment did before the
/// incremental set.
std::vector<std::uint8_t> naive_mask(const mcs::SparseMcsEnvironment& env) {
  std::vector<std::uint8_t> mask(env.num_cells(), 0);
  if (env.episode_done()) return mask;
  for (std::size_t cell = 0; cell < env.num_cells(); ++cell)
    if (!env.selections().selected(cell, env.current_cycle())) mask[cell] = 1;
  return mask;
}

std::vector<std::size_t> naive_allowed(const mcs::SparseMcsEnvironment& env) {
  std::vector<std::size_t> allowed;
  if (env.episode_done()) return allowed;
  for (std::size_t cell = 0; cell < env.num_cells(); ++cell)
    if (!env.selections().selected(cell, env.current_cycle()))
      allowed.push_back(cell);
  return allowed;
}

/// The incremental structures must agree with the naive rebuilds in *content*
/// (the unsensed set's order is unspecified), and the O(1) membership test
/// with both.
void expect_matches_naive_reference(const mcs::SparseMcsEnvironment& env) {
  EXPECT_EQ(env.action_mask(), naive_mask(env));

  std::vector<std::size_t> unsensed = env.unsensed_cells();
  std::sort(unsensed.begin(), unsensed.end());
  EXPECT_EQ(unsensed, naive_allowed(env));

  for (std::size_t cell = 0; cell < env.num_cells(); ++cell) {
    const bool allowed =
        !env.episode_done() &&
        !env.selections().selected(cell, env.current_cycle());
    EXPECT_EQ(env.can_select(cell), allowed) << "cell " << cell;
  }
}

TEST(UnsensedSet, MatchesNaiveRebuildUnderEpisodeChurn) {
  // Random episodes across shapes and seeds, checking the incremental state
  // after every step (including the cycle turnovers that restore the
  // finished cycle's selections) and after every reset.
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const std::size_t cells = 4 + 2 * static_cast<std::size_t>(seed);
    auto task = std::make_shared<const mcs::SensingTask>(
        testing::make_toy_task(cells, 6, 0.1, seed));
    mcs::EnvOptions opt;
    opt.min_observations = 1 + static_cast<std::size_t>(seed % 3);
    opt.inference_window = 4;
    auto env = testing::make_toy_environment(task, 0.6, opt);
    baselines::RandomSelector selector(seed);

    expect_matches_naive_reference(env);
    for (int episode = 0; episode < 2; ++episode) {
      while (!env.episode_done()) {
        const auto action = selector.select(env);
        EXPECT_TRUE(env.can_select(action));
        (void)env.step(action);
        expect_matches_naive_reference(env);
      }
      env.reset();
      expect_matches_naive_reference(env);
    }
  }
}

TEST(UnsensedSet, EmptyAfterEpisodeEndAndRestoredByReset) {
  auto env = testing::make_toy_environment(
      std::make_shared<const mcs::SensingTask>(testing::make_toy_task(5, 2)),
      1e9);
  while (!env.episode_done())
    (void)env.step(env.unsensed_cells().front());
  EXPECT_TRUE(env.unsensed_cells().empty());
  for (std::size_t cell = 0; cell < env.num_cells(); ++cell)
    EXPECT_FALSE(env.can_select(cell));
  expect_matches_naive_reference(env);

  env.reset();
  EXPECT_EQ(env.unsensed_cells().size(), env.num_cells());
  expect_matches_naive_reference(env);
}

TEST(SelectionMatrixLists, PerCycleListsStaySortedAndConsistent) {
  // The incremental per-cycle lists behind selected_cells_in_cycle() must
  // match a dense scan of the bit grid whatever the mark order.
  mcs::SelectionMatrix s(9, 4);
  Rng rng(42);
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  for (std::size_t cell = 0; cell < 9; ++cell)
    for (std::size_t cycle = 0; cycle < 4; ++cycle)
      pairs.push_back({cell, cycle});
  for (std::size_t i = pairs.size(); i > 1; --i)
    std::swap(pairs[i - 1], pairs[rng.uniform_index(i)]);

  const auto dense_selected = [&s](std::size_t cycle) {
    std::vector<std::size_t> out;
    for (std::size_t cell = 0; cell < s.cells(); ++cell)
      if (s.selected(cell, cycle)) out.push_back(cell);
    return out;
  };

  for (const auto& [cell, cycle] : pairs) {
    s.mark(cell, cycle);
    for (std::size_t t = 0; t < s.cycles(); ++t) {
      const auto dense = dense_selected(t);
      EXPECT_EQ(s.selected_cells_in_cycle(t), dense) << "cycle " << t;
      EXPECT_EQ(s.selected_count_in_cycle(t), dense.size());
    }
  }
  EXPECT_EQ(s.selected_count(), pairs.size());

  s.reset();
  for (std::size_t t = 0; t < s.cycles(); ++t) {
    EXPECT_TRUE(s.selected_cells_in_cycle(t).empty());
    EXPECT_EQ(s.selected_count_in_cycle(t), 0u);
  }
  EXPECT_EQ(s.selected_count(), 0u);
}

}  // namespace
}  // namespace drcell
