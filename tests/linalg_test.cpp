#include <gtest/gtest.h>

#include <cmath>

#include "linalg/decompositions.h"
#include "linalg/matrix.h"
#include "linalg/solvers.h"
#include "util/rng.h"

namespace drcell {
namespace {

Matrix random_spd(std::size_t n, Rng& rng) {
  Matrix a = random_normal_matrix(n, n, rng);
  Matrix spd = a.matmul_transposed_self(a);  // AᵀA
  for (std::size_t i = 0; i < n; ++i) spd(i, i) += 1.0;
  return spd;
}

TEST(Matrix, ConstructionAndIndexing) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_EQ(m(0, 1), -2.0);
}

TEST(Matrix, InitializerList) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m(0, 0), 1.0);
  EXPECT_EQ(m(1, 1), 4.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), CheckError);
}

TEST(Matrix, OutOfRangeIndexThrows) {
  Matrix m(2, 2);
  // at() is checked in every build mode; operator() only when DCHECKs are
  // active (debug / DRCELL_ENABLE_DCHECKS builds).
  EXPECT_THROW(m.at(2, 0), CheckError);
  EXPECT_THROW(m.at(0, 2), CheckError);
#if DRCELL_DCHECKS_ACTIVE
  EXPECT_THROW(m(2, 0), CheckError);
  EXPECT_THROW(m(0, 2), CheckError);
#endif
}

TEST(Matrix, IdentityAndDiagonal) {
  const Matrix i = Matrix::identity(3);
  EXPECT_EQ(i(0, 0), 1.0);
  EXPECT_EQ(i(0, 1), 0.0);
  const std::vector<double> d{1.0, 2.0, 3.0};
  const Matrix diag = Matrix::diagonal(d);
  EXPECT_EQ(diag(1, 1), 2.0);
  EXPECT_EQ(diag(1, 2), 0.0);
}

TEST(Matrix, TransposeRoundTrip) {
  Rng rng(1);
  const Matrix m = random_normal_matrix(3, 5, rng);
  EXPECT_EQ(m.transposed().transposed(), m);
}

TEST(Matrix, ArithmeticOperators) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{4, 3}, {2, 1}};
  const Matrix sum = a + b;
  EXPECT_EQ(sum(0, 0), 5.0);
  EXPECT_EQ(sum(1, 1), 5.0);
  const Matrix diff = a - b;
  EXPECT_EQ(diff(0, 0), -3.0);
  const Matrix scaled = a * 2.0;
  EXPECT_EQ(scaled(1, 0), 6.0);
}

TEST(Matrix, ShapeMismatchThrows) {
  Matrix a(2, 2), b(2, 3);
  EXPECT_THROW(a += b, CheckError);
  EXPECT_THROW(a.matmul(Matrix(3, 1)), CheckError);
}

TEST(Matrix, MatmulMatchesHandComputation) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5, 6}, {7, 8}};
  const Matrix c = a.matmul(b);
  EXPECT_EQ(c(0, 0), 19.0);
  EXPECT_EQ(c(0, 1), 22.0);
  EXPECT_EQ(c(1, 0), 43.0);
  EXPECT_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MatmulTransposedSelfEqualsExplicit) {
  Rng rng(2);
  const Matrix a = random_normal_matrix(4, 3, rng);
  const Matrix b = random_normal_matrix(4, 2, rng);
  const Matrix expected = a.transposed().matmul(b);
  const Matrix actual = a.matmul_transposed_self(b);
  EXPECT_NEAR((expected - actual).max_abs(), 0.0, 1e-12);
}

TEST(Matrix, MatmulTransposedSelfAddAccumulatesRowMajor) {
  Rng rng(12);
  const Matrix a = random_normal_matrix(5, 3, rng);
  const Matrix b = random_normal_matrix(5, 4, rng);
  // Accumulating the whole product into a zeroed target replays exactly the
  // per-row accumulation — the sample-major gradient contract.
  Matrix whole(3, 4);
  a.matmul_transposed_self_add(b, whole);
  Matrix row_by_row(3, 4);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    Matrix ar(1, a.cols()), br(1, b.cols());
    for (std::size_t c = 0; c < a.cols(); ++c) ar(0, c) = a(r, c);
    for (std::size_t c = 0; c < b.cols(); ++c) br(0, c) = b(r, c);
    ar.matmul_transposed_self_add(br, row_by_row);
  }
  EXPECT_EQ(whole, row_by_row);
  EXPECT_EQ(whole, a.matmul_transposed_self(b));
}

TEST(Matrix, MatmulTransposedOtherEqualsExplicit) {
  Rng rng(13);
  // 7 columns exercise the 4-wide unrolled dots plus the remainder path.
  const Matrix a = random_normal_matrix(5, 6, rng);
  const Matrix b = random_normal_matrix(7, 6, rng);
  const Matrix expected = a.matmul(b.transposed());
  const Matrix actual = a.matmul_transposed_other(b);
  ASSERT_EQ(actual.rows(), 5u);
  ASSERT_EQ(actual.cols(), 7u);
  EXPECT_NEAR((expected - actual).max_abs(), 0.0, 1e-12);

  Matrix into;
  a.matmul_transposed_other_into(b, into);
  EXPECT_EQ(into, actual);
  EXPECT_THROW(a.matmul_transposed_other(Matrix(7, 5)), CheckError);
}

TEST(Matrix, MatmulRowsAreBatchIndependent) {
  // The batched-training determinism contract at the kernel level: each
  // output row of the blocked kernel (and of A·Bᵀ) is bit-identical whether
  // the row is multiplied alone or stacked into a larger batch — for shapes
  // spanning multiple i/k/j tiles and the sub-8-column remainder path.
  Rng rng(14);
  for (const std::size_t n : {3u, 37u, 150u}) {
    const Matrix a = random_normal_matrix(40, n, rng);
    const Matrix bt = random_normal_matrix(n, n + 5, rng);
    const Matrix whole = a.matmul(bt);
    const Matrix whole_t = a.matmul_transposed_other(bt.transposed());
    for (std::size_t r = 0; r < a.rows(); r += 7) {
      Matrix row(1, n);
      for (std::size_t c = 0; c < n; ++c) row(0, c) = a(r, c);
      const Matrix single = row.matmul(bt);
      for (std::size_t c = 0; c < whole.cols(); ++c) {
        ASSERT_EQ(whole(r, c), single(0, c)) << n << " " << r << " " << c;
        ASSERT_EQ(whole_t(r, c), single(0, c)) << n << " " << r << " " << c;
      }
    }
  }
}

TEST(Matrix, HadamardProduct) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{2, 2}, {0.5, 1}};
  const Matrix h = a.hadamard(b);
  EXPECT_EQ(h(0, 1), 4.0);
  EXPECT_EQ(h(1, 0), 1.5);
}

TEST(Matrix, NormsAndSums) {
  Matrix m{{3, 4}};
  EXPECT_DOUBLE_EQ(m.frobenius_norm(), 5.0);
  EXPECT_DOUBLE_EQ(m.max_abs(), 4.0);
  EXPECT_DOUBLE_EQ(m.sum(), 7.0);
}

TEST(Matrix, HasNonFiniteDetectsNanAndInf) {
  Matrix m(2, 2);
  EXPECT_FALSE(m.has_non_finite());
  m(0, 0) = std::nan("");
  EXPECT_TRUE(m.has_non_finite());
  m(0, 0) = std::numeric_limits<double>::infinity();
  EXPECT_TRUE(m.has_non_finite());
}

TEST(Matrix, ColumnAccessors) {
  Matrix m{{1, 2}, {3, 4}, {5, 6}};
  const auto c1 = m.col(1);
  EXPECT_EQ(c1, (std::vector<double>{2, 4, 6}));
  m.set_col(0, std::vector<double>{7, 8, 9});
  EXPECT_EQ(m(2, 0), 9.0);
}

TEST(VectorOps, DotAndNorm) {
  const std::vector<double> a{1, 2, 2};
  const std::vector<double> b{2, 0, 1};
  EXPECT_DOUBLE_EQ(dot(a, b), 4.0);
  EXPECT_DOUBLE_EQ(norm2(a), 3.0);
}

TEST(VectorOps, MatvecMatchesMatmul) {
  Rng rng(3);
  const Matrix a = random_normal_matrix(4, 3, rng);
  const std::vector<double> x{1.0, -2.0, 0.5};
  const auto y = matvec(a, x);
  const Matrix xm = Matrix::column(x);
  const Matrix ym = a.matmul(xm);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(y[i], ym(i, 0), 1e-12);
}

TEST(Cholesky, ReconstructsMatrix) {
  Rng rng(4);
  const Matrix a = random_spd(5, rng);
  const Cholesky chol(a);
  const Matrix rec = chol.l.matmul(chol.l.transposed());
  EXPECT_NEAR((rec - a).max_abs(), 0.0, 1e-9);
}

TEST(Cholesky, SolvesLinearSystem) {
  Rng rng(5);
  const Matrix a = random_spd(6, rng);
  std::vector<double> x_true(6);
  for (std::size_t i = 0; i < 6; ++i) x_true[i] = std::sin(i + 1.0);
  const auto b = matvec(a, x_true);
  const auto x = Cholesky(a).solve(b);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
}

TEST(Cholesky, RejectsNonSpd) {
  Matrix not_spd{{1, 2}, {2, 1}};  // eigenvalues 3, -1
  EXPECT_THROW(Cholesky{not_spd}, CheckError);
}

TEST(Cholesky, RejectsNonSquare) {
  EXPECT_THROW(Cholesky{Matrix(2, 3)}, CheckError);
}

TEST(QRDecomposition, QHasOrthonormalColumns) {
  Rng rng(6);
  const Matrix a = random_normal_matrix(7, 4, rng);
  const QR qr(a);
  const Matrix qtq = qr.q.matmul_transposed_self(qr.q);
  EXPECT_NEAR((qtq - Matrix::identity(4)).max_abs(), 0.0, 1e-10);
}

TEST(QRDecomposition, Reconstructs) {
  Rng rng(7);
  const Matrix a = random_normal_matrix(6, 3, rng);
  const QR qr(a);
  const Matrix rec = qr.q.matmul(qr.r);
  EXPECT_NEAR((rec - a).max_abs(), 0.0, 1e-10);
}

TEST(QRDecomposition, LeastSquaresMatchesNormalEquations) {
  Rng rng(8);
  const Matrix a = random_normal_matrix(10, 3, rng);
  std::vector<double> b(10);
  for (auto& v : b) v = rng.normal();
  const auto x_qr = QR(a).solve(b);
  const auto x_ridge = ridge_solve(a, b, 0.0);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(x_qr[i], x_ridge[i], 1e-8);
}

TEST(SVDDecomposition, SingularValuesOfDiagonal) {
  const std::vector<double> d{3.0, 1.0, 2.0};
  const SVD svd(Matrix::diagonal(d));
  ASSERT_EQ(svd.singular.size(), 3u);
  EXPECT_NEAR(svd.singular[0], 3.0, 1e-10);
  EXPECT_NEAR(svd.singular[1], 2.0, 1e-10);
  EXPECT_NEAR(svd.singular[2], 1.0, 1e-10);
}

TEST(SVDDecomposition, ReconstructsTallMatrix) {
  Rng rng(9);
  const Matrix a = random_normal_matrix(8, 4, rng);
  const SVD svd(a);
  EXPECT_NEAR((svd.reconstruct() - a).max_abs(), 0.0, 1e-9);
}

TEST(SVDDecomposition, ReconstructsWideMatrix) {
  Rng rng(10);
  const Matrix a = random_normal_matrix(3, 7, rng);
  const SVD svd(a);
  EXPECT_NEAR((svd.reconstruct() - a).max_abs(), 0.0, 1e-9);
}

TEST(SVDDecomposition, OrthonormalFactors) {
  Rng rng(11);
  const Matrix a = random_normal_matrix(6, 4, rng);
  const SVD svd(a);
  const Matrix utu = svd.u.matmul_transposed_self(svd.u);
  const Matrix vtv = svd.v.matmul_transposed_self(svd.v);
  EXPECT_NEAR((utu - Matrix::identity(4)).max_abs(), 0.0, 1e-9);
  EXPECT_NEAR((vtv - Matrix::identity(4)).max_abs(), 0.0, 1e-9);
}

TEST(SVDDecomposition, RankOfLowRankMatrix) {
  Rng rng(12);
  const Matrix u = random_normal_matrix(8, 2, rng);
  const Matrix v = random_normal_matrix(5, 2, rng);
  const Matrix low_rank = u.matmul(v.transposed());
  EXPECT_EQ(SVD(low_rank).rank(), 2u);
}

TEST(Solvers, RidgeShrinksTowardsZero) {
  Rng rng(13);
  const Matrix a = random_normal_matrix(20, 3, rng);
  std::vector<double> b(20);
  for (auto& v : b) v = rng.normal();
  const auto x0 = ridge_solve(a, b, 1e-9);
  const auto x1 = ridge_solve(a, b, 100.0);
  EXPECT_LT(norm2(x1), norm2(x0));
}

TEST(Solvers, RidgeHandlesUnderdeterminedWithRegularisation) {
  // 2 rows, 3 unknowns: only solvable thanks to lambda > 0.
  Matrix a{{1, 0, 1}, {0, 1, 1}};
  const std::vector<double> b{1.0, 2.0};
  const auto x = ridge_solve(a, b, 0.1);
  EXPECT_EQ(x.size(), 3u);
  for (double v : x) EXPECT_TRUE(std::isfinite(v));
}

TEST(Solvers, LuSolveMatchesKnownSolution) {
  Matrix a{{2, 1, -1}, {-3, -1, 2}, {-2, 1, 2}};
  const std::vector<double> b{8, -11, -3};
  const auto x = lu_solve(a, b);
  EXPECT_NEAR(x[0], 2.0, 1e-10);
  EXPECT_NEAR(x[1], 3.0, 1e-10);
  EXPECT_NEAR(x[2], -1.0, 1e-10);
}

TEST(Solvers, LuSolveNeedsPivoting) {
  // Zero pivot in the (0,0) position requires row exchange.
  Matrix a{{0, 1}, {1, 0}};
  const std::vector<double> b{2, 3};
  const auto x = lu_solve(a, b);
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Solvers, LuSolveSingularThrows) {
  Matrix a{{1, 2}, {2, 4}};
  EXPECT_THROW(lu_solve(a, {1.0, 2.0}), CheckError);
}

TEST(Solvers, SpdSolveAgainstLu) {
  Rng rng(14);
  const Matrix a = random_spd(5, rng);
  std::vector<double> b(5);
  for (auto& v : b) v = rng.normal();
  const auto x1 = spd_solve(a, b);
  const auto x2 = lu_solve(a, b);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_NEAR(x1[i], x2[i], 1e-9);
}

}  // namespace
}  // namespace drcell
