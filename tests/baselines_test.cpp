#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "baselines/oracle_selector.h"
#include "baselines/qbc_selector.h"
#include "baselines/random_selector.h"
#include "cs/temporal_inference.h"
#include "test_helpers.h"

namespace drcell::baselines {
namespace {

std::shared_ptr<const mcs::SensingTask> toy_task_ptr(std::size_t cells = 6,
                                                     std::size_t cycles = 8) {
  return std::make_shared<const mcs::SensingTask>(
      testing::make_toy_task(cells, cycles));
}

TEST(RandomSelector, OnlyPicksUnmaskedCells) {
  auto env = testing::make_toy_environment(toy_task_ptr(), 1e9);
  RandomSelector sel(1);
  env.step(0);
  env.step(1);
  for (int i = 0; i < 50; ++i) {
    const auto a = sel.select(env);
    EXPECT_NE(a, 0u);
    EXPECT_NE(a, 1u);
    EXPECT_LT(a, 6u);
  }
}

TEST(RandomSelector, CoversAllCellsEventually) {
  auto env = testing::make_toy_environment(toy_task_ptr(), 1e9);
  RandomSelector sel(2);
  std::set<std::size_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(sel.select(env));
  EXPECT_EQ(seen.size(), 6u);
}

TEST(RandomSelector, DeterministicForSeed) {
  auto env1 = testing::make_toy_environment(toy_task_ptr(), 1e9);
  auto env2 = testing::make_toy_environment(toy_task_ptr(), 1e9);
  RandomSelector a(7), b(7);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(a.select(env1), b.select(env2));
}

TEST(RandomSelector, CompletesCyclesViaRunCycle) {
  auto env = testing::make_toy_environment(toy_task_ptr(6, 4), 1e9);
  RandomSelector sel(3);
  const auto r =
      env.run_cycle([&sel](const mcs::SparseMcsEnvironment& e) {
        return sel.select(e);
      });
  EXPECT_TRUE(r.cycle_complete);
  EXPECT_EQ(env.stats().cycle_selected.back(), 3u);
}

TEST(QbcSelector, DefaultCommitteeSelectsValidCells) {
  auto task = toy_task_ptr();
  auto env = testing::make_toy_environment(task, 1e9);
  auto sel = QbcSelector::make_default(*task, 4);
  const auto a = sel.select(env);
  EXPECT_LT(a, 6u);
  env.step(a);
  const auto b = sel.select(env);
  EXPECT_NE(b, a);
  EXPECT_LT(b, 6u);
}

TEST(QbcSelector, PrefersHighDisagreementCell) {
  // Build a committee of mean + temporal interpolation and a window where
  // exactly one unsensed cell shows disagreement between the two engines.
  auto task = toy_task_ptr(4, 6);
  mcs::EnvOptions opt;
  opt.inference_window = 6;
  auto env = testing::make_toy_environment(task, 1e9, opt);
  // Cycle 0: observe cells 0, 1; quality satisfied at min_obs=3 -> pick 2.
  env.step(0);
  env.step(1);
  env.step(2);  // completes cycle 0
  // Now cycle 1. Observe cell 0: remaining candidates are 1, 2, 3.
  env.step(0);

  std::vector<cs::InferenceEnginePtr> members;
  members.push_back(std::make_shared<cs::MatrixCompletion>());
  members.push_back(std::make_shared<cs::KnnInference>(task->coords()));
  members.push_back(std::make_shared<cs::TemporalInterpolation>());
  QbcSelector sel(cs::InferenceCommittee(std::move(members)), 5);
  const auto choice = sel.select(env);
  EXPECT_NE(choice, 0u);  // cell 0 already sensed
  EXPECT_LT(choice, 4u);
}

TEST(QbcSelector, DeterministicGivenSameState) {
  auto task = toy_task_ptr();
  auto env = testing::make_toy_environment(task, 1e9);
  env.step(2);
  auto sel1 = QbcSelector::make_default(*task, 9);
  auto sel2 = QbcSelector::make_default(*task, 9);
  EXPECT_EQ(sel1.select(env), sel2.select(env));
}

TEST(OracleSelector, PicksErrorMinimisingCell) {
  auto task = toy_task_ptr(6, 4);
  auto env = testing::make_toy_environment(task, 1e9);
  GreedyOracleSelector oracle(testing::default_engine());
  const auto a = oracle.select(env);
  EXPECT_LT(a, 6u);
  env.step(a);
  const auto b = oracle.select(env);
  EXPECT_NE(b, a);
}

TEST(OracleSelector, BeatsRandomOnAverageError) {
  // After an equal number of selections, oracle-guided sensing should leave
  // a true cycle error no worse than random sensing (averaged over cycles).
  auto run = [&](bool use_oracle, std::uint64_t seed) {
    auto task = toy_task_ptr(6, 6);
    mcs::EnvOptions opt;
    opt.min_observations = 1;
    opt.max_selections_per_cycle = 3;
    auto env = mcs::SparseMcsEnvironment(
        task, testing::default_engine(),
        std::make_shared<mcs::GroundTruthGate>(0.0), opt);  // never satisfied
    GreedyOracleSelector oracle(testing::default_engine());
    RandomSelector random(seed);
    while (!env.episode_done()) {
      const auto a =
          use_oracle ? oracle.select(env) : random.select(env);
      env.step(a);
    }
    double total = 0.0;
    for (double e : env.stats().cycle_errors) total += e;
    return total / static_cast<double>(env.stats().cycle_errors.size());
  };
  double random_err = 0.0;
  for (std::uint64_t s = 0; s < 3; ++s) random_err += run(false, 10 + s);
  random_err /= 3.0;
  const double oracle_err = run(true, 0);
  EXPECT_LE(oracle_err, random_err * 1.05);
}

TEST(OracleSelector, RequiresEngine) {
  EXPECT_THROW(GreedyOracleSelector(nullptr), CheckError);
}

}  // namespace
}  // namespace drcell::baselines
