// Multi-campaign serving engine: wave equivalence (batched vs solo),
// worker-count invariance, the checkpoint/resume contract and its error
// paths, and the process-wide shared spatial-factor registry.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <vector>

#include "baselines/random_selector.h"
#include "core/campaign_scheduler.h"
#include "core/checkpoint.h"
#include "core/policy.h"
#include "data/synthetic_field.h"
#include "nn/serialize.h"
#include "test_helpers.h"
#include "util/thread_pool.h"

namespace drcell::core {
namespace {

DrCellConfig agent_config(std::uint64_t seed = 13) {
  DrCellConfig config;
  config.history_cycles = 2;
  config.lstm_hidden = 16;
  config.dqn.epsilon = rl::EpsilonSchedule(1.0, 0.1, 200);
  config.env.min_observations = 2;
  config.env.inference_window = 6;
  config.seed = seed;
  return config;
}

CampaignConfig campaign_config(const DrCellConfig& config) {
  CampaignConfig campaign;
  campaign.epsilon = 0.8;
  campaign.p = 0.8;
  campaign.env = config.env;
  campaign.env.history_cycles = config.history_cycles;
  return campaign;
}

CampaignScheduler::EngineFactory engine_factory() {
  return [] { return testing::default_engine(); };
}

/// Everything a campaign computed, seconds and id excluded (wall-clock is
/// never bit-compared; run_campaign leaves id empty).
void expect_same_result(const CampaignResult& a, const CampaignResult& b) {
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.total_selected, b.total_selected);
  EXPECT_EQ(a.avg_cells_per_cycle, b.avg_cells_per_cycle);
  EXPECT_EQ(a.satisfaction_ratio, b.satisfaction_ratio);
  EXPECT_EQ(a.mean_cycle_error, b.mean_cycle_error);
  EXPECT_EQ(a.total_cost, b.total_cost);
  EXPECT_EQ(a.stats.cycle_errors, b.stats.cycle_errors);
}

/// The standard test fleet: three frozen DR-Cell campaigns sharing one
/// agent plus two RANDOM campaigns, all over the same toy task.
void populate(CampaignScheduler& scheduler,
              const std::shared_ptr<const mcs::SensingTask>& task,
              const CampaignConfig& campaign, DrCellAgent& agent) {
  for (int i = 0; i < 3; ++i)
    scheduler.add_campaign("drcell-" + std::to_string(i), campaign, task,
                           engine_factory(),
                           std::make_shared<DrCellPolicy>(agent));
  for (int i = 0; i < 2; ++i)
    scheduler.add_campaign("random-" + std::to_string(i), campaign, task,
                           engine_factory(),
                           std::make_shared<baselines::RandomSelector>(
                               static_cast<std::uint64_t>(40 + i)));
}

TEST(CampaignScheduler, BatchedWaveBitIdenticalToSolo) {
  auto task = std::make_shared<const mcs::SensingTask>(
      testing::make_toy_task(6, 10));
  const DrCellConfig config = agent_config();
  DrCellAgent agent(6, config);
  const CampaignConfig campaign = campaign_config(config);

  CampaignScheduler batched;
  populate(batched, task, campaign, agent);
  batched.run();
  ASSERT_TRUE(batched.all_done());

  // Reference 1: the unbatched scheduler (every selector steps via
  // select()).
  CampaignScheduler::Options unbatched_options;
  unbatched_options.cross_campaign_batching = false;
  CampaignScheduler unbatched(unbatched_options);
  populate(unbatched, task, campaign, agent);
  unbatched.run();

  // Reference 2: each campaign alone through run_campaign.
  for (std::size_t i = 0; i < batched.num_campaigns(); ++i) {
    expect_same_result(batched.results()[i], unbatched.results()[i]);
    EXPECT_EQ(batched.action_log(i), unbatched.action_log(i));
  }
  for (int i = 0; i < 3; ++i) {
    DrCellPolicy solo(agent);
    expect_same_result(
        batched.results()[static_cast<std::size_t>(i)],
        run_campaign(task, testing::default_engine(), solo, campaign));
  }
  for (int i = 0; i < 2; ++i) {
    baselines::RandomSelector solo(static_cast<std::uint64_t>(40 + i));
    expect_same_result(
        batched.results()[static_cast<std::size_t>(3 + i)],
        run_campaign(task, testing::default_engine(), solo, campaign));
  }
}

TEST(CampaignScheduler, WorkerCountInvariance) {
  auto task = std::make_shared<const mcs::SensingTask>(
      testing::make_toy_task(6, 8));
  const DrCellConfig config = agent_config();
  const CampaignConfig campaign = campaign_config(config);

  std::vector<std::vector<CampaignResult>> per_pool;
  std::vector<std::vector<std::uint32_t>> first_logs;
  for (const std::size_t workers : {std::size_t{0}, std::size_t{3}}) {
    util::ThreadPool pool(workers);
    CampaignScheduler::Options options;
    options.pool = &pool;
    CampaignScheduler scheduler(options);
    DrCellAgent agent(6, agent_config());
    populate(scheduler, task, campaign, agent);
    scheduler.run();
    per_pool.push_back(scheduler.results());
    if (first_logs.empty())
      for (std::size_t i = 0; i < scheduler.num_campaigns(); ++i)
        first_logs.push_back(scheduler.action_log(i));
    else
      for (std::size_t i = 0; i < scheduler.num_campaigns(); ++i)
        EXPECT_EQ(scheduler.action_log(i), first_logs[i]);
  }
  ASSERT_EQ(per_pool.size(), 2u);
  for (std::size_t i = 0; i < per_pool[0].size(); ++i)
    expect_same_result(per_pool[0][i], per_pool[1][i]);
}

TEST(CampaignScheduler, RejectsEmptyAndDuplicateIds) {
  auto task = std::make_shared<const mcs::SensingTask>(
      testing::make_toy_task(5, 6));
  const CampaignConfig campaign = campaign_config(agent_config());
  CampaignScheduler scheduler;
  EXPECT_THROW(scheduler.add_campaign(
                   "", campaign, task, engine_factory(),
                   std::make_shared<baselines::RandomSelector>(1)),
               CheckError);
  scheduler.add_campaign("a", campaign, task, engine_factory(),
                         std::make_shared<baselines::RandomSelector>(1));
  EXPECT_THROW(scheduler.add_campaign(
                   "a", campaign, task, engine_factory(),
                   std::make_shared<baselines::RandomSelector>(2)),
               CheckError);
}

TEST(Checkpoint, ResumeBitIdenticalToUninterrupted) {
  auto task = std::make_shared<const mcs::SensingTask>(
      testing::make_toy_task(6, 10));
  const DrCellConfig config = agent_config();
  const CampaignConfig campaign = campaign_config(config);

  DrCellAgent uninterrupted_agent(6, config);
  CampaignScheduler uninterrupted;
  populate(uninterrupted, task, campaign, uninterrupted_agent);
  uninterrupted.run();

  DrCellAgent burst_agent(6, config);
  CampaignScheduler burst;
  populate(burst, task, campaign, burst_agent);
  burst.run(/*max_waves=*/7);
  ASSERT_FALSE(burst.all_done());
  std::ostringstream out(std::ios::binary);
  save_checkpoint(burst, out);

  // The resumed registry's agent starts from a DIFFERENT seed — if the
  // resumed fleet still matches, the checkpoint restored the weights.
  DrCellAgent resumed_agent(6, agent_config(/*seed=*/999));
  CampaignScheduler resumed;
  populate(resumed, task, campaign, resumed_agent);
  std::istringstream in(out.str(), std::ios::binary);
  load_checkpoint(resumed, in);
  EXPECT_EQ(resumed.waves_completed(), burst.waves_completed());
  resumed.run();

  for (std::size_t i = 0; i < uninterrupted.num_campaigns(); ++i) {
    expect_same_result(uninterrupted.results()[i], resumed.results()[i]);
    EXPECT_EQ(uninterrupted.action_log(i), resumed.action_log(i));
  }
  EXPECT_EQ(resumed.waves_completed(), uninterrupted.waves_completed());
}

TEST(Checkpoint, TruncatedStreamThrows) {
  auto task = std::make_shared<const mcs::SensingTask>(
      testing::make_toy_task(5, 6));
  const CampaignConfig campaign = campaign_config(agent_config());
  CampaignScheduler scheduler;
  scheduler.add_campaign("a", campaign, task, engine_factory(),
                         std::make_shared<baselines::RandomSelector>(7));
  scheduler.run(/*max_waves=*/4);
  std::ostringstream out(std::ios::binary);
  save_checkpoint(scheduler, out);
  std::string data = out.str();
  data.resize(data.size() / 2);

  CampaignScheduler other;
  other.add_campaign("a", campaign, task, engine_factory(),
                     std::make_shared<baselines::RandomSelector>(7));
  std::istringstream in(data, std::ios::binary);
  EXPECT_THROW(load_checkpoint(other, in), nn::SerializationError);
}

TEST(Checkpoint, BadMagicThrows) {
  auto task = std::make_shared<const mcs::SensingTask>(
      testing::make_toy_task(5, 6));
  const CampaignConfig campaign = campaign_config(agent_config());
  CampaignScheduler scheduler;
  scheduler.add_campaign("a", campaign, task, engine_factory(),
                         std::make_shared<baselines::RandomSelector>(7));
  std::istringstream in("this is not a checkpoint stream",
                        std::ios::binary);
  EXPECT_THROW(load_checkpoint(scheduler, in), nn::SerializationError);
}

TEST(Checkpoint, CampaignCountMismatchThrows) {
  auto task = std::make_shared<const mcs::SensingTask>(
      testing::make_toy_task(5, 6));
  const CampaignConfig campaign = campaign_config(agent_config());
  CampaignScheduler two;
  two.add_campaign("a", campaign, task, engine_factory(),
                   std::make_shared<baselines::RandomSelector>(1));
  two.add_campaign("b", campaign, task, engine_factory(),
                   std::make_shared<baselines::RandomSelector>(2));
  two.run(/*max_waves=*/2);
  std::ostringstream out(std::ios::binary);
  save_checkpoint(two, out);

  CampaignScheduler one;
  one.add_campaign("a", campaign, task, engine_factory(),
                   std::make_shared<baselines::RandomSelector>(1));
  std::istringstream in(out.str(), std::ios::binary);
  EXPECT_THROW(load_checkpoint(one, in), nn::SerializationError);
}

TEST(Checkpoint, CampaignIdMismatchThrows) {
  auto task = std::make_shared<const mcs::SensingTask>(
      testing::make_toy_task(5, 6));
  const CampaignConfig campaign = campaign_config(agent_config());
  CampaignScheduler saved;
  saved.add_campaign("a", campaign, task, engine_factory(),
                     std::make_shared<baselines::RandomSelector>(1));
  saved.run(/*max_waves=*/2);
  std::ostringstream out(std::ios::binary);
  save_checkpoint(saved, out);

  CampaignScheduler renamed;
  renamed.add_campaign("not-a", campaign, task, engine_factory(),
                       std::make_shared<baselines::RandomSelector>(1));
  std::istringstream in(out.str(), std::ios::binary);
  EXPECT_THROW(load_checkpoint(renamed, in), nn::SerializationError);
}

TEST(Checkpoint, AgentWiringMismatchThrows) {
  auto task = std::make_shared<const mcs::SensingTask>(
      testing::make_toy_task(6, 6));
  const DrCellConfig config = agent_config();
  const CampaignConfig campaign = campaign_config(config);
  DrCellAgent agent(6, config);
  CampaignScheduler saved;
  saved.add_campaign("a", campaign, task, engine_factory(),
                     std::make_shared<DrCellPolicy>(agent));
  saved.run(/*max_waves=*/2);
  std::ostringstream out(std::ios::binary);
  save_checkpoint(saved, out);

  // Same id, but the selector carries no agent: the registry's agent table
  // (0 agents) cannot line up with the checkpoint's (1 agent).
  CampaignScheduler weightless;
  weightless.add_campaign("a", campaign, task, engine_factory(),
                          std::make_shared<baselines::RandomSelector>(1));
  std::istringstream in(out.str(), std::ios::binary);
  EXPECT_THROW(load_checkpoint(weightless, in), nn::SerializationError);
}

data::FieldParams shared_cache_params() {
  data::FieldParams params;
  params.mean = 10.0;
  params.stddev = 2.0;
  params.spatial_length = 15.0;
  params.temporal_ar1 = 0.9;
  params.num_modes = 2;
  return params;
}

TEST(SharedFactorCache, CrossGeneratorHitsAndCollisionSafety) {
  using data::SyntheticFieldGenerator;
  SyntheticFieldGenerator::reset_shared_factor_cache();
  const auto coords = data::grid_coords(4, 4, 10.0, 10.0);
  const data::FieldParams params = shared_cache_params();

  SyntheticFieldGenerator first(coords);
  Rng rng_a(1);
  first.generate(params, 6, rng_a);
  EXPECT_EQ(SyntheticFieldGenerator::shared_factor_cache_hits(), 0u);
  EXPECT_EQ(SyntheticFieldGenerator::shared_factor_cache_size(), 1u);

  // A distinct generator over the SAME coordinates reuses the factor.
  SyntheticFieldGenerator second(coords);
  Rng rng_b(2);
  second.generate(params, 6, rng_b);
  EXPECT_EQ(SyntheticFieldGenerator::shared_factor_cache_hits(), 1u);
  EXPECT_EQ(SyntheticFieldGenerator::shared_factor_cache_size(), 1u);

  // Same spatial params over DIFFERENT coordinates must build its own
  // factor — element-wise key equality, a hash collision can never alias.
  SyntheticFieldGenerator elsewhere(data::grid_coords(4, 4, 9.0, 10.0));
  Rng rng_c(3);
  elsewhere.generate(params, 6, rng_c);
  EXPECT_EQ(SyntheticFieldGenerator::shared_factor_cache_hits(), 1u);
  EXPECT_EQ(SyntheticFieldGenerator::shared_factor_cache_size(), 2u);

  // The per-generator cache absorbs repeats before they reach the
  // registry: regenerating on `first` is a local hit, not a shared one.
  Rng rng_d(4);
  first.generate(params, 6, rng_d);
  EXPECT_EQ(first.factor_cache_hits(), 1u);
  EXPECT_EQ(SyntheticFieldGenerator::shared_factor_cache_hits(), 1u);

  SyntheticFieldGenerator::reset_shared_factor_cache();
  EXPECT_EQ(SyntheticFieldGenerator::shared_factor_cache_hits(), 0u);
  EXPECT_EQ(SyntheticFieldGenerator::shared_factor_cache_size(), 0u);
}

TEST(SharedFactorCache, ConcurrentSameConfigBuildsPaidOnce) {
  using data::SyntheticFieldGenerator;
  SyntheticFieldGenerator::reset_shared_factor_cache();
  const auto coords = data::grid_coords(5, 5, 10.0, 10.0);
  const data::FieldParams params = shared_cache_params();

  constexpr std::size_t kGenerators = 8;
  std::vector<std::unique_ptr<SyntheticFieldGenerator>> generators;
  for (std::size_t i = 0; i < kGenerators; ++i)
    generators.push_back(std::make_unique<SyntheticFieldGenerator>(coords));

  util::ThreadPool pool(3);
  pool.parallel_for(kGenerators, [&](std::size_t i) {
    Rng rng(100 + i);
    generators[i]->generate(params, 6, rng);
  });
  // One build, every other generator served by the registry — whether it
  // arrived after the build or waited on the registry lock during it.
  EXPECT_EQ(SyntheticFieldGenerator::shared_factor_cache_hits(),
            kGenerators - 1);
  EXPECT_EQ(SyntheticFieldGenerator::shared_factor_cache_size(), 1u);
  SyntheticFieldGenerator::reset_shared_factor_cache();
}

}  // namespace
}  // namespace drcell::core
