#include <gtest/gtest.h>

#include <cmath>

#include "cs/committee.h"
#include "cs/knn_inference.h"
#include "cs/matrix_completion.h"
#include "cs/mean_inference.h"
#include "cs/partial_matrix.h"
#include "cs/temporal_inference.h"
#include "util/rng.h"

namespace drcell::cs {
namespace {

/// Exactly rank-2 matrix (outer product + outer product).
Matrix make_low_rank(std::size_t m, std::size_t n, Rng& rng) {
  std::vector<double> u1(m), v1(n), u2(m), v2(n);
  for (auto& x : u1) x = rng.uniform(0.5, 1.5);
  for (auto& x : v1) x = rng.uniform(0.5, 1.5);
  for (auto& x : u2) x = rng.normal();
  for (auto& x : v2) x = rng.normal();
  Matrix d(m, n);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j)
      d(i, j) = 10.0 + 3.0 * u1[i] * v1[j] + u2[i] * v2[j];
  return d;
}

PartialMatrix sample_entries(const Matrix& d, double fraction, Rng& rng) {
  PartialMatrix p(d.rows(), d.cols());
  for (std::size_t i = 0; i < d.rows(); ++i)
    for (std::size_t j = 0; j < d.cols(); ++j)
      if (rng.bernoulli(fraction)) p.set(i, j, d(i, j));
  return p;
}

TEST(PartialMatrix, SetClearAndCounts) {
  PartialMatrix p(3, 4);
  EXPECT_EQ(p.observed_count(), 0u);
  p.set(1, 2, 5.0);
  EXPECT_TRUE(p.observed(1, 2));
  EXPECT_EQ(p.value(1, 2), 5.0);
  EXPECT_EQ(p.observed_count(), 1u);
  p.set(1, 2, 6.0);  // overwrite, no double count
  EXPECT_EQ(p.observed_count(), 1u);
  EXPECT_EQ(p.value(1, 2), 6.0);
  p.clear(1, 2);
  EXPECT_FALSE(p.observed(1, 2));
  EXPECT_EQ(p.observed_count(), 0u);
}

TEST(PartialMatrix, ReadingUnobservedThrows) {
  PartialMatrix p(2, 2);
  EXPECT_THROW(p.value(0, 0), CheckError);
}

TEST(PartialMatrix, RowColQueries) {
  PartialMatrix p(3, 3);
  p.set(0, 1, 1.0);
  p.set(2, 1, 2.0);
  p.set(2, 2, 3.0);
  EXPECT_EQ(p.observed_count_in_col(1), 2u);
  EXPECT_EQ(p.observed_count_in_row(2), 2u);
  EXPECT_EQ(p.observed_rows_in_col(1), (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(p.observed_cols_in_row(2), (std::vector<std::size_t>{1, 2}));
}

TEST(PartialMatrix, ObservedMean) {
  PartialMatrix p(2, 2);
  EXPECT_EQ(p.observed_mean(), 0.0);
  p.set(0, 0, 2.0);
  p.set(1, 1, 4.0);
  EXPECT_DOUBLE_EQ(p.observed_mean(), 3.0);
}

TEST(PartialMatrix, IndexOutOfRangeThrows) {
  PartialMatrix p(2, 2);
  EXPECT_THROW(p.set(2, 0, 1.0), CheckError);
  EXPECT_THROW(p.observed(0, 2), CheckError);
}

TEST(MatrixCompletion, RecoversLowRankMatrix) {
  Rng rng(1);
  const Matrix d = make_low_rank(12, 20, rng);
  const PartialMatrix p = sample_entries(d, 0.5, rng);
  MatrixCompletionOptions opt;
  opt.rank = 3;
  const MatrixCompletion mc(opt);
  const Matrix est = mc.infer(p);
  double err = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < d.rows(); ++i)
    for (std::size_t j = 0; j < d.cols(); ++j)
      if (!p.observed(i, j)) {
        err += std::fabs(est(i, j) - d(i, j));
        ++count;
      }
  err /= static_cast<double>(count);
  // Relative to the data scale (~10), recovery should be tight.
  EXPECT_LT(err, 0.35) << "mean abs error " << err;
}

TEST(MatrixCompletion, KeepsObservedEntriesExact) {
  Rng rng(2);
  const Matrix d = make_low_rank(8, 10, rng);
  const PartialMatrix p = sample_entries(d, 0.4, rng);
  const Matrix est = MatrixCompletion().infer(p);
  for (std::size_t i = 0; i < d.rows(); ++i)
    for (std::size_t j = 0; j < d.cols(); ++j)
      if (p.observed(i, j)) EXPECT_EQ(est(i, j), d(i, j));
}

TEST(MatrixCompletion, EmptyObservationFallsBackToZeroMean) {
  PartialMatrix p(4, 4);
  const Matrix est = MatrixCompletion().infer(p);
  EXPECT_EQ(est.max_abs(), 0.0);
}

TEST(MatrixCompletion, SingleObservationGivesConstantField) {
  PartialMatrix p(4, 4);
  p.set(1, 1, 7.5);
  const Matrix est = MatrixCompletion().infer(p);
  EXPECT_FALSE(est.has_non_finite());
  // Every unobserved estimate should be near the only evidence available.
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j) EXPECT_NEAR(est(i, j), 7.5, 1.0);
}

TEST(MatrixCompletion, MoreObservationsReduceError) {
  Rng rng(3);
  const Matrix d = make_low_rank(10, 16, rng);
  auto error_at = [&](double fraction, std::uint64_t seed) {
    Rng sample_rng(seed);
    const PartialMatrix p = sample_entries(d, fraction, sample_rng);
    const Matrix est = MatrixCompletion().infer(p);
    double err = 0.0;
    std::size_t count = 0;
    for (std::size_t i = 0; i < d.rows(); ++i)
      for (std::size_t j = 0; j < d.cols(); ++j)
        if (!p.observed(i, j)) {
          err += std::fabs(est(i, j) - d(i, j));
          ++count;
        }
    return count ? err / static_cast<double>(count) : 0.0;
  };
  // Average over a few samplings to avoid single-draw flakiness.
  double sparse = 0.0, dense = 0.0;
  for (std::uint64_t s = 0; s < 5; ++s) {
    sparse += error_at(0.15, 100 + s);
    dense += error_at(0.6, 200 + s);
  }
  EXPECT_LT(dense, sparse);
}

TEST(MatrixCompletion, DeterministicAcrossCalls) {
  Rng rng(4);
  const Matrix d = make_low_rank(6, 8, rng);
  const PartialMatrix p = sample_entries(d, 0.5, rng);
  const MatrixCompletion mc;
  EXPECT_EQ(mc.infer(p), mc.infer(p));
}

TEST(MatrixCompletion, RejectsBadOptions) {
  MatrixCompletionOptions opt;
  opt.rank = 0;
  EXPECT_THROW(MatrixCompletion{opt}, CheckError);
  opt.rank = 2;
  opt.lambda = 0.0;
  EXPECT_THROW(MatrixCompletion{opt}, CheckError);
}

TEST(KnnInference, DistanceHelper) {
  EXPECT_DOUBLE_EQ(euclidean_distance({0, 0}, {3, 4}), 5.0);
}

TEST(KnnInference, InterpolatesFromNearestNeighbours) {
  // 4 cells on a line at x = 0, 1, 2, 3; observe the ends of one cycle.
  KnnInference knn({{0, 0}, {1, 0}, {2, 0}, {3, 0}}, {.k = 2});
  PartialMatrix p(4, 1);
  p.set(0, 0, 0.0);
  p.set(3, 0, 9.0);
  const Matrix est = knn.infer(p);
  // Cell 1 is nearer to cell 0 -> weighted below midpoint.
  EXPECT_GT(est(1, 0), 0.0);
  EXPECT_LT(est(1, 0), 4.5);
  EXPECT_GT(est(2, 0), 4.5);
  EXPECT_LT(est(2, 0), 9.0);
}

TEST(KnnInference, CoincidentCellCopiesValue) {
  KnnInference knn({{0, 0}, {0, 0}, {5, 5}}, {.k = 2});
  PartialMatrix p(3, 1);
  p.set(0, 0, 42.0);
  const Matrix est = knn.infer(p);
  EXPECT_EQ(est(1, 0), 42.0);
}

TEST(KnnInference, EmptyCycleFallsBackToCellMean) {
  KnnInference knn({{0, 0}, {10, 0}});
  PartialMatrix p(2, 2);
  p.set(0, 0, 4.0);  // only cycle 0 observed
  const Matrix est = knn.infer(p);
  EXPECT_NEAR(est(0, 1), 4.0, 1e-12);  // cell 0's own mean
}

TEST(KnnInference, CoordinateCountMismatchThrows) {
  KnnInference knn({{0, 0}, {1, 1}});
  PartialMatrix p(3, 1);
  p.set(0, 0, 1.0);
  EXPECT_THROW(knn.infer(p), CheckError);
}

TEST(MeanInference, UsesColumnThenRowThenGlobal) {
  MeanInference mi;
  PartialMatrix p(3, 3);
  p.set(0, 0, 2.0);
  p.set(1, 0, 4.0);
  p.set(2, 2, 10.0);
  const Matrix est = mi.infer(p);
  EXPECT_DOUBLE_EQ(est(2, 0), 3.0);   // column-0 mean
  EXPECT_DOUBLE_EQ(est(2, 1), 10.0);  // column 1 empty -> row-2 mean
  EXPECT_DOUBLE_EQ(est(0, 0), 2.0);   // observed passthrough
}

TEST(TemporalInterpolation, LinearBetweenObservations) {
  TemporalInterpolation ti;
  PartialMatrix p(1, 5);
  p.set(0, 0, 0.0);
  p.set(0, 4, 8.0);
  const Matrix est = ti.infer(p);
  EXPECT_NEAR(est(0, 1), 2.0, 1e-12);
  EXPECT_NEAR(est(0, 2), 4.0, 1e-12);
  EXPECT_NEAR(est(0, 3), 6.0, 1e-12);
}

TEST(TemporalInterpolation, ConstantExtrapolationAtEnds) {
  TemporalInterpolation ti;
  PartialMatrix p(1, 5);
  p.set(0, 2, 3.0);
  const Matrix est = ti.infer(p);
  EXPECT_EQ(est(0, 0), 3.0);
  EXPECT_EQ(est(0, 4), 3.0);
}

TEST(TemporalInterpolation, UnobservedCellUsesCycleMeans) {
  TemporalInterpolation ti;
  PartialMatrix p(2, 2);
  p.set(0, 0, 2.0);
  p.set(0, 1, 6.0);
  const Matrix est = ti.infer(p);
  EXPECT_EQ(est(1, 0), 2.0);
  EXPECT_EQ(est(1, 1), 6.0);
}

TEST(Committee, RequiresTwoMembers) {
  std::vector<InferenceEnginePtr> one;
  one.push_back(std::make_shared<MeanInference>());
  EXPECT_THROW(InferenceCommittee{std::move(one)}, CheckError);
}

TEST(Committee, DisagreementIsZeroForIdenticalPredictions) {
  const std::vector<Matrix> preds{Matrix(2, 2, 3.0), Matrix(2, 2, 3.0)};
  EXPECT_EQ(InferenceCommittee::disagreement(preds).max_abs(), 0.0);
}

TEST(Committee, DisagreementMatchesVarianceFormula) {
  const std::vector<Matrix> preds{Matrix(1, 1, 1.0), Matrix(1, 1, 3.0),
                                  Matrix(1, 1, 5.0)};
  // Population variance of {1,3,5} = 8/3.
  EXPECT_NEAR(InferenceCommittee::disagreement(preds)(0, 0), 8.0 / 3.0,
              1e-12);
  EXPECT_NEAR(InferenceCommittee::mean_prediction(preds)(0, 0), 3.0, 1e-12);
}

TEST(Committee, InferAllRunsEveryMember) {
  std::vector<InferenceEnginePtr> members;
  members.push_back(std::make_shared<MeanInference>());
  members.push_back(std::make_shared<TemporalInterpolation>());
  InferenceCommittee committee(std::move(members));
  PartialMatrix p(2, 4);
  p.set(0, 0, 1.0);
  p.set(0, 3, 7.0);
  const auto preds = committee.infer_all(p);
  ASSERT_EQ(preds.size(), 2u);
  // Members genuinely disagree on cycle 1 of cell 0: the temporal
  // interpolator gives 1 + (1/3)·6 = 3, the mean engine gives the row
  // mean 4.
  EXPECT_NE(preds[0](0, 1), preds[1](0, 1));
}

}  // namespace
}  // namespace drcell::cs
