#include <gtest/gtest.h>

#include <cmath>

#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/gradient_check.h"
#include "nn/init.h"
#include "nn/loss.h"
#include "nn/sequential.h"

namespace drcell::nn {
namespace {

TEST(Activations, SigmoidValuesAndStability) {
  EXPECT_DOUBLE_EQ(sigmoid(0.0), 0.5);
  EXPECT_NEAR(sigmoid(2.0), 1.0 / (1.0 + std::exp(-2.0)), 1e-12);
  // Extreme inputs must not overflow.
  EXPECT_NEAR(sigmoid(1000.0), 1.0, 1e-12);
  EXPECT_NEAR(sigmoid(-1000.0), 0.0, 1e-12);
}

TEST(Activations, DerivativeIdentities) {
  const double y = sigmoid(0.7);
  EXPECT_NEAR(dsigmoid_from_output(y), y * (1 - y), 1e-15);
  const double t = std::tanh(0.7);
  EXPECT_NEAR(dtanh_from_output(t), 1 - t * t, 1e-15);
}

TEST(ReLULayer, ForwardClampsNegatives) {
  ReLU relu;
  Matrix x{{-1.0, 0.0, 2.0}};
  const Matrix y = relu.forward(x);
  EXPECT_EQ(y(0, 0), 0.0);
  EXPECT_EQ(y(0, 1), 0.0);
  EXPECT_EQ(y(0, 2), 2.0);
}

TEST(ReLULayer, BackwardGatesGradient) {
  ReLU relu;
  Matrix x{{-1.0, 3.0}};
  relu.forward(x);
  Matrix g{{5.0, 5.0}};
  const Matrix dx = relu.backward(g);
  EXPECT_EQ(dx(0, 0), 0.0);
  EXPECT_EQ(dx(0, 1), 5.0);
}

TEST(TanhLayer, ForwardAndBackward) {
  Tanh tanh_layer;
  Matrix x{{0.5}};
  const Matrix y = tanh_layer.forward(x);
  EXPECT_NEAR(y(0, 0), std::tanh(0.5), 1e-12);
  Matrix g{{1.0}};
  const Matrix dx = tanh_layer.backward(g);
  EXPECT_NEAR(dx(0, 0), 1.0 - std::pow(std::tanh(0.5), 2), 1e-12);
}

TEST(SigmoidLayer, BackwardMatchesDerivative) {
  Sigmoid s;
  Matrix x{{0.3}};
  s.forward(x);
  const Matrix dx = s.backward(Matrix{{1.0}});
  const double y = sigmoid(0.3);
  EXPECT_NEAR(dx(0, 0), y * (1 - y), 1e-12);
}

TEST(DenseLayer, ForwardMatchesManualComputation) {
  Rng rng(1);
  Dense d(2, 3, rng);
  d.weight().value = Matrix{{1, 2, 3}, {4, 5, 6}};
  d.bias().value = Matrix{{0.5, -0.5, 1.0}};
  Matrix x{{1.0, 2.0}};
  const Matrix y = d.forward(x);
  EXPECT_NEAR(y(0, 0), 1 * 1 + 2 * 4 + 0.5, 1e-12);
  EXPECT_NEAR(y(0, 1), 1 * 2 + 2 * 5 - 0.5, 1e-12);
  EXPECT_NEAR(y(0, 2), 1 * 3 + 2 * 6 + 1.0, 1e-12);
}

TEST(DenseLayer, InputShapeMismatchThrows) {
  Rng rng(1);
  Dense d(3, 2, rng);
  EXPECT_THROW(d.forward(Matrix(1, 4)), CheckError);
}

TEST(DenseLayer, GradientMatchesFiniteDifferences) {
  Rng rng(2);
  Dense d(4, 3, rng);
  Matrix x(5, 4);
  for (double& v : x.data()) v = rng.normal();
  Matrix target(5, 3);
  for (double& v : target.data()) v = rng.normal();

  auto loss_fn = [&] { return mse_loss(d.forward(x), target).value; };
  // One forward/backward to populate gradients.
  for (auto* p : d.parameters()) p->zero_grad();
  const auto l = mse_loss(d.forward(x), target);
  d.backward(l.grad);

  for (auto* p : d.parameters()) {
    const auto r = check_gradient(*p, loss_fn);
    EXPECT_TRUE(r.passed(1e-5)) << "max_rel=" << r.max_rel_diff;
  }
}

TEST(DenseLayer, InputGradientMatchesFiniteDifferences) {
  Rng rng(3);
  Dense d(3, 2, rng);
  Matrix x{{0.5, -1.0, 2.0}};
  Matrix target{{1.0, 0.0}};
  for (auto* p : d.parameters()) p->zero_grad();
  const auto l = mse_loss(d.forward(x), target);
  const Matrix dx = d.backward(l.grad);

  const double eps = 1e-6;
  for (std::size_t j = 0; j < 3; ++j) {
    const double saved = x(0, j);
    x(0, j) = saved + eps;
    const double up = mse_loss(d.forward(x), target).value;
    x(0, j) = saved - eps;
    const double down = mse_loss(d.forward(x), target).value;
    x(0, j) = saved;
    EXPECT_NEAR(dx(0, j), (up - down) / (2 * eps), 1e-5);
  }
}

TEST(Sequential, ForwardComposesLayers) {
  Rng rng(4);
  Sequential net;
  net.emplace<Dense>(2, 2, rng);
  net.emplace<ReLU>();
  net.emplace<Dense>(2, 1, rng);
  const Matrix y = net.forward(Matrix{{1.0, -1.0}});
  EXPECT_EQ(y.rows(), 1u);
  EXPECT_EQ(y.cols(), 1u);
}

TEST(Sequential, ParameterCount) {
  Rng rng(5);
  Sequential net;
  net.emplace<Dense>(3, 4, rng);
  net.emplace<Tanh>();
  net.emplace<Dense>(4, 2, rng);
  EXPECT_EQ(net.parameters().size(), 4u);  // two weights + two biases
}

TEST(Sequential, EmptyForwardThrows) {
  Sequential net;
  EXPECT_THROW(net.forward(Matrix(1, 1)), CheckError);
}

TEST(Sequential, GradientThroughMlpMatchesFiniteDifferences) {
  Rng rng(6);
  Sequential net;
  net.emplace<Dense>(3, 5, rng);
  net.emplace<Tanh>();
  net.emplace<Dense>(5, 2, rng);
  Matrix x(4, 3);
  for (double& v : x.data()) v = rng.normal();
  Matrix target(4, 2);
  for (double& v : target.data()) v = rng.normal();

  auto loss_fn = [&] { return mse_loss(net.forward(x), target).value; };
  for (auto* p : net.parameters()) p->zero_grad();
  const auto l = mse_loss(net.forward(x), target);
  net.backward(l.grad);
  for (auto* p : net.parameters()) {
    const auto r = check_gradient(*p, loss_fn);
    EXPECT_TRUE(r.passed(1e-5)) << "max_rel=" << r.max_rel_diff;
  }
}

TEST(Init, XavierBoundsRespectFanInOut) {
  Rng rng(7);
  Matrix w(100, 50);
  xavier_uniform(w, 100, 50, rng);
  const double bound = std::sqrt(6.0 / 150.0);
  EXPECT_LE(w.max_abs(), bound);
  EXPECT_GT(w.max_abs(), bound * 0.5);  // actually fills the range
}

TEST(Init, HeNormalVariance) {
  Rng rng(8);
  Matrix w(200, 100);
  he_normal(w, 200, rng);
  double s = 0.0;
  for (double v : w.data()) s += v * v;
  const double var = s / static_cast<double>(w.size());
  EXPECT_NEAR(var, 2.0 / 200.0, 2e-3);
}

TEST(Init, ConstantFill) {
  Matrix w(2, 2);
  constant_fill(w, 3.5);
  EXPECT_EQ(w(1, 1), 3.5);
}

TEST(Loss, MseValueAndGradient) {
  Matrix pred{{1.0, 2.0}};
  Matrix target{{0.0, 4.0}};
  const auto l = mse_loss(pred, target);
  EXPECT_NEAR(l.value, (1.0 + 4.0) / 2.0, 1e-12);
  EXPECT_NEAR(l.grad(0, 0), 2.0 * 1.0 / 2.0, 1e-12);
  EXPECT_NEAR(l.grad(0, 1), 2.0 * -2.0 / 2.0, 1e-12);
}

TEST(Loss, HuberQuadraticAndLinearRegions) {
  Matrix pred{{0.5, 3.0}};
  Matrix target{{0.0, 0.0}};
  const auto l = huber_loss(pred, target, 1.0);
  // element 0: quadratic 0.5*0.25; element 1: linear 1*(3-0.5).
  EXPECT_NEAR(l.value, (0.125 + 2.5) / 2.0, 1e-12);
  EXPECT_NEAR(l.grad(0, 0), 0.5 / 2.0, 1e-12);
  EXPECT_NEAR(l.grad(0, 1), 1.0 / 2.0, 1e-12);  // clipped to delta
}

TEST(Loss, MaskedVariantsIgnoreMaskedElements) {
  Matrix pred{{1.0, 100.0}};
  Matrix target{{0.0, 0.0}};
  Matrix mask{{1.0, 0.0}};
  const auto l = masked_mse_loss(pred, target, mask);
  EXPECT_NEAR(l.value, 1.0, 1e-12);
  EXPECT_EQ(l.grad(0, 1), 0.0);
  const auto h = masked_huber_loss(pred, target, mask, 1.0);
  EXPECT_NEAR(h.value, 0.5, 1e-12);
  EXPECT_EQ(h.grad(0, 1), 0.0);
}

TEST(Loss, AllMaskedThrows) {
  Matrix pred(1, 2), target(1, 2), mask(1, 2);
  EXPECT_THROW(masked_mse_loss(pred, target, mask), CheckError);
}

TEST(Loss, ShapeMismatchThrows) {
  EXPECT_THROW(mse_loss(Matrix(1, 2), Matrix(2, 1)), CheckError);
}

}  // namespace
}  // namespace drcell::nn
