#include <gtest/gtest.h>

#include <cmath>

#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/sequential.h"

namespace drcell::nn {
namespace {

/// Quadratic bowl: minimise ||p - target||² for a single 1x2 parameter.
struct Bowl {
  Parameter p{1, 2};
  Matrix target{{3.0, -2.0}};

  double loss_and_grad() {
    p.zero_grad();
    double l = 0.0;
    for (std::size_t i = 0; i < 2; ++i) {
      const double d = p.value(0, i) - target(0, i);
      l += d * d;
      p.grad(0, i) = 2.0 * d;
    }
    return l;
  }
};

TEST(Optimizer, RequiresParameters) {
  EXPECT_THROW(Sgd({}, 0.1), CheckError);
}

TEST(Sgd, ConvergesOnQuadratic) {
  Bowl bowl;
  Sgd opt({&bowl.p}, 0.1);
  for (int i = 0; i < 200; ++i) {
    bowl.loss_and_grad();
    opt.step();
  }
  EXPECT_NEAR(bowl.p.value(0, 0), 3.0, 1e-6);
  EXPECT_NEAR(bowl.p.value(0, 1), -2.0, 1e-6);
}

TEST(Sgd, MomentumAcceleratesConvergence) {
  Bowl plain_bowl, momentum_bowl;
  Sgd plain({&plain_bowl.p}, 0.01);
  Sgd momentum({&momentum_bowl.p}, 0.01, 0.9);
  for (int i = 0; i < 50; ++i) {
    plain_bowl.loss_and_grad();
    plain.step();
    momentum_bowl.loss_and_grad();
    momentum.step();
  }
  EXPECT_LT(momentum_bowl.loss_and_grad(), plain_bowl.loss_and_grad());
}

TEST(RmsProp, ConvergesOnQuadratic) {
  Bowl bowl;
  RmsProp opt({&bowl.p}, 0.05);
  for (int i = 0; i < 500; ++i) {
    bowl.loss_and_grad();
    opt.step();
  }
  EXPECT_NEAR(bowl.p.value(0, 0), 3.0, 1e-3);
}

TEST(Adam, ConvergesOnQuadratic) {
  Bowl bowl;
  Adam opt({&bowl.p}, 0.1);
  for (int i = 0; i < 500; ++i) {
    bowl.loss_and_grad();
    opt.step();
  }
  EXPECT_NEAR(bowl.p.value(0, 0), 3.0, 1e-4);
  EXPECT_NEAR(bowl.p.value(0, 1), -2.0, 1e-4);
}

TEST(Adam, FirstStepIsBiasCorrectlySized) {
  // With bias correction the very first Adam update has magnitude ≈ lr.
  Bowl bowl;
  Adam opt({&bowl.p}, 0.1);
  const double before = bowl.p.value(0, 0);
  bowl.loss_and_grad();
  opt.step();
  EXPECT_NEAR(std::fabs(bowl.p.value(0, 0) - before), 0.1, 1e-6);
}

TEST(Optimizer, ZeroGradClearsGradients) {
  Bowl bowl;
  Sgd opt({&bowl.p}, 0.1);
  bowl.loss_and_grad();
  EXPECT_NE(bowl.p.grad.max_abs(), 0.0);
  opt.zero_grad();
  EXPECT_EQ(bowl.p.grad.max_abs(), 0.0);
}

TEST(Optimizer, SgdRejectsBadHyperparameters) {
  Parameter p(1, 1);
  EXPECT_THROW(Sgd({&p}, 0.0), CheckError);
  EXPECT_THROW(Sgd({&p}, 0.1, 1.0), CheckError);
}

TEST(ClipGradNorm, LeavesSmallGradientsAlone) {
  Parameter p(1, 2);
  p.grad(0, 0) = 0.3;
  p.grad(0, 1) = 0.4;  // norm 0.5
  const double norm = clip_grad_norm({&p}, 1.0);
  EXPECT_NEAR(norm, 0.5, 1e-12);
  EXPECT_NEAR(p.grad(0, 0), 0.3, 1e-12);
}

TEST(ClipGradNorm, ScalesLargeGradients) {
  Parameter p(1, 2);
  p.grad(0, 0) = 3.0;
  p.grad(0, 1) = 4.0;  // norm 5
  const double norm = clip_grad_norm({&p}, 1.0);
  EXPECT_NEAR(norm, 5.0, 1e-12);
  EXPECT_NEAR(p.grad(0, 0), 0.6, 1e-12);
  EXPECT_NEAR(p.grad(0, 1), 0.8, 1e-12);
}

TEST(ClipGradNorm, GlobalAcrossParameters) {
  Parameter a(1, 1), b(1, 1);
  a.grad(0, 0) = 3.0;
  b.grad(0, 0) = 4.0;
  clip_grad_norm({&a, &b}, 1.0);
  const double total = std::sqrt(a.grad(0, 0) * a.grad(0, 0) +
                                 b.grad(0, 0) * b.grad(0, 0));
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Training, MlpFitsXor) {
  // End-to-end: a 2-layer MLP + Adam can fit XOR — exercises the whole
  // forward/backward/step loop on a non-linearly-separable problem.
  Rng rng(21);
  Sequential net;
  net.emplace<Dense>(2, 8, rng);
  net.emplace<Tanh>();
  net.emplace<Dense>(8, 1, rng);
  Adam opt(net.parameters(), 0.03);

  Matrix x{{0, 0}, {0, 1}, {1, 0}, {1, 1}};
  Matrix y{{0}, {1}, {1}, {0}};
  double loss = 0.0;
  for (int i = 0; i < 2000; ++i) {
    opt.zero_grad();
    const auto l = mse_loss(net.forward(x), y);
    net.backward(l.grad);
    opt.step();
    loss = l.value;
  }
  EXPECT_LT(loss, 0.01);
  const Matrix pred = net.forward(x);
  EXPECT_LT(std::fabs(pred(0, 0) - 0.0), 0.2);
  EXPECT_LT(std::fabs(pred(1, 0) - 1.0), 0.2);
  EXPECT_LT(std::fabs(pred(2, 0) - 1.0), 0.2);
  EXPECT_LT(std::fabs(pred(3, 0) - 0.0), 0.2);
}

TEST(Training, HuberIsRobustToOutlierTargets) {
  // With one absurd target, Huber-trained weights should move less than
  // MSE-trained weights.
  auto train = [](bool huber) {
    Rng rng(22);
    Dense d(1, 1, rng);
    d.weight().value(0, 0) = 1.0;
    d.bias().value(0, 0) = 0.0;
    Sgd opt(d.parameters(), 0.01);
    Matrix x{{1.0}, {2.0}, {3.0}};
    Matrix y{{1.0}, {2.0}, {1000.0}};  // outlier
    for (int i = 0; i < 50; ++i) {
      opt.zero_grad();
      const Matrix pred = d.forward(x);
      const auto l = huber ? huber_loss(pred, y, 1.0) : mse_loss(pred, y);
      d.backward(l.grad);
      opt.step();
    }
    return std::fabs(d.weight().value(0, 0) - 1.0);
  };
  EXPECT_LT(train(true), train(false));
}

}  // namespace
}  // namespace drcell::nn
