// The low-rank Nyström spatial sampler (data/synthetic_field.h): covariance
// error bound vs the exact kernel, the exact-path fallback below the size
// threshold, the spatial-factor cache, and the metro-scale task factory.
#include <gtest/gtest.h>

#include <cmath>

#include "cs/knn_inference.h"
#include "data/datasets.h"
#include "data/synthetic_field.h"
#include "util/statistics.h"
#include "util/thread_pool.h"

namespace drcell::data {
namespace {

FieldParams smooth_params() {
  FieldParams p;
  p.spatial_length = 300.0;  // 3 cells of the 100 m grids below
  p.nugget = 0.02;
  p.noise_sd = 0.0;
  return p;
}

TEST(NystromField, CovarianceErrorBoundedAgainstExactKernel) {
  // 400 cells, 128 landmarks, length scale 6 cells: F·Fᵀ must reproduce the
  // smooth kernel part (1 − nugget)·K_rbf to ≤1e-5 absolute (the
  // deterministic measured error is 2.2e-6) — three orders of magnitude
  // below the 0.02 nugget, i.e. the approximation is invisible next to the
  // field's own unpredictable component. The Nyström residual decays with
  // the length-scale-to-landmark-spacing ratio (~2.9 here, ~2.4 for the
  // metro task: err ~2e-5, same regime); the bound also absorbs the 1e-8
  // diagonal jitter.
  const auto coords = grid_coords(20, 20, 100.0, 100.0);
  SyntheticFieldGenerator gen(coords);
  FieldParams p = smooth_params();
  p.spatial_length = 600.0;
  p.nystrom_threshold = 0;  // force the low-rank path at 400 cells
  p.nystrom_landmarks = 128;

  const Matrix& f = gen.nystrom_factor(p);
  ASSERT_EQ(f.rows(), coords.size());
  ASSERT_EQ(f.cols(), 128u);

  const Matrix approx = f.matmul_transposed_other(f);
  const double amp = 1.0 - p.nugget;
  const double ell2 = p.spatial_length * p.spatial_length;
  double max_err = 0.0;
  for (std::size_t i = 0; i < coords.size(); ++i)
    for (std::size_t j = 0; j < coords.size(); ++j) {
      const double d = cs::euclidean_distance(coords[i], coords[j]);
      const double exact = amp * std::exp(-d * d / (2.0 * ell2));
      max_err = std::max(max_err, std::fabs(approx(i, j) - exact));
    }
  EXPECT_LT(max_err, 1e-5);
}

TEST(NystromField, FewLandmarksDegradeGracefully) {
  // With far fewer landmarks than effective modes the error grows but the
  // factor stays finite and PSD-sampled fields stay usable — the guard that
  // a mis-tuned landmark count fails soft, not hard.
  const auto coords = grid_coords(20, 20, 100.0, 100.0);
  SyntheticFieldGenerator gen(coords);
  FieldParams p = smooth_params();
  p.nystrom_threshold = 0;
  p.nystrom_landmarks = 8;
  const Matrix& f = gen.nystrom_factor(p);
  EXPECT_EQ(f.cols(), 8u);
  EXPECT_FALSE(f.has_non_finite());
}

TEST(NystromField, ThresholdSelectsExactPathBitIdentically) {
  // Below the threshold the generator must keep the pre-Nyström exact
  // Cholesky draw stream: raising the threshold (both paths exact) and
  // regenerating from an equal seed yields the identical field.
  const auto coords = grid_coords(8, 8, 100.0, 100.0);
  FieldParams a = smooth_params();  // default threshold: 64 cells => exact
  FieldParams b = a;
  b.nystrom_threshold = 1000000;

  SyntheticFieldGenerator gen_a(coords);
  SyntheticFieldGenerator gen_b(coords);
  Rng rng_a(5), rng_b(5);
  EXPECT_EQ(gen_a.generate(a, 12, rng_a), gen_b.generate(b, 12, rng_b));

  // And asking for the Nyström factor under exact-path params is an error.
  EXPECT_THROW(gen_a.nystrom_factor(a), CheckError);
}

TEST(NystromField, FactorCacheHitsAcrossGenerateCalls) {
  const auto coords = grid_coords(10, 10, 100.0, 100.0);
  SyntheticFieldGenerator gen(coords);
  const FieldParams p = smooth_params();
  Rng rng_a(7), rng_b(7);
  EXPECT_EQ(gen.factor_cache_hits(), 0u);
  const Matrix first = gen.generate(p, 6, rng_a);
  EXPECT_EQ(gen.factor_cache_hits(), 0u);
  // Second call reuses the cached Cholesky — and is bit-identical to what a
  // fresh generator would produce from the same seed (the cache is
  // transparent).
  const Matrix second = gen.generate(p, 6, rng_b);
  EXPECT_EQ(gen.factor_cache_hits(), 1u);
  EXPECT_EQ(first, second);

  // A spatially different configuration misses the cache...
  FieldParams other = p;
  other.spatial_length = 450.0;
  Rng rng_c(9);
  (void)gen.generate(other, 6, rng_c);
  EXPECT_EQ(gen.factor_cache_hits(), 1u);
  // ...while a change in non-spatial fields (temporal dynamics) hits it.
  FieldParams temporal = p;
  temporal.temporal_ar1 = 0.5;
  Rng rng_d(11);
  (void)gen.generate(temporal, 6, rng_d);
  EXPECT_EQ(gen.factor_cache_hits(), 2u);
}

TEST(NystromField, LowRankFieldHitsTargetMomentsAndCachesFactor) {
  const auto coords = grid_coords(18, 18, 100.0, 100.0);
  SyntheticFieldGenerator gen(coords);
  FieldParams p = smooth_params();
  p.nystrom_threshold = 0;  // force low-rank at 324 cells
  p.nystrom_landmarks = 96;
  p.mean = 15.0;
  p.stddev = 3.0;

  Rng rng(13);
  const Matrix field = gen.generate(p, 24, rng);
  ASSERT_EQ(field.rows(), coords.size());
  ASSERT_EQ(field.cols(), 24u);
  EXPECT_FALSE(field.has_non_finite());
  RunningStats stats;
  for (double x : field.data()) stats.add(x);
  // finalize() standardises empirically, so the sample moments match the
  // targets almost exactly.
  EXPECT_NEAR(stats.mean(), 15.0, 1e-9);
  EXPECT_NEAR(stats.stddev(), 3.0, 1e-9);

  Rng rng2(14);
  (void)gen.generate(p, 24, rng2);
  EXPECT_EQ(gen.factor_cache_hits(), 1u);
}

TEST(NystromField, BuildIsWorkerCountInvariant) {
  // The pooled factor build (cross-covariance rows, forward substitution)
  // must be bit-identical for any worker count — the pool determinism
  // contract. Fresh generator AND a shared-registry reset per count, so
  // every iteration pays a genuinely cold build.
  const auto coords = grid_coords(20, 20, 100.0, 100.0);
  FieldParams p = smooth_params();
  p.nystrom_threshold = 0;
  p.nystrom_landmarks = 64;

  Matrix reference;
  for (std::size_t workers : {std::size_t{0}, std::size_t{1}, std::size_t{3}}) {
    SyntheticFieldGenerator::reset_shared_factor_cache();
    util::ThreadPool pool(workers);
    SyntheticFieldGenerator gen(coords);
    gen.set_thread_pool(&pool);
    const Matrix f = gen.nystrom_factor(p);
    if (workers == 0)
      reference = f;
    else
      EXPECT_EQ(f, reference) << "workers=" << workers;
  }
  SyntheticFieldGenerator::reset_shared_factor_cache();
}

TEST(NystromField, SeededDrawsAreWorkerCountInvariant) {
  // Both draw paths keep their Gaussian streams serial from the caller rng
  // and pool only rng-free passes, so equal caller seeds must yield the
  // bit-identical field for 0/1/3 workers.
  const auto coords = grid_coords(15, 15, 100.0, 100.0);
  for (const bool low_rank : {true, false}) {
    FieldParams p = smooth_params();
    p.noise_sd = 0.1;  // exercise the assemble() noise stream too
    if (low_rank) {
      p.nystrom_threshold = 0;
      p.nystrom_landmarks = 48;
    }
    Matrix reference;
    for (std::size_t workers :
         {std::size_t{0}, std::size_t{1}, std::size_t{3}}) {
      SyntheticFieldGenerator::reset_shared_factor_cache();
      util::ThreadPool pool(workers);
      SyntheticFieldGenerator gen(coords);
      gen.set_thread_pool(&pool);
      Rng rng(17);
      const Matrix field = gen.generate(p, 16, rng);
      if (workers == 0)
        reference = field;
      else
        EXPECT_EQ(field, reference)
            << "workers=" << workers << " low_rank=" << low_rank;
    }
  }
  SyntheticFieldGenerator::reset_shared_factor_cache();
}

TEST(NystromField, SharedRegistryCountsColdBuildsAtBothTiers) {
  SyntheticFieldGenerator::reset_shared_factor_cache();
  const auto coords = grid_coords(10, 10, 100.0, 100.0);
  const FieldParams exact = smooth_params();  // 100 cells => exact tier
  FieldParams low_rank = smooth_params();
  low_rank.nystrom_threshold = 0;
  low_rank.nystrom_landmarks = 32;

  SyntheticFieldGenerator gen(coords);
  Rng rng(3);
  EXPECT_EQ(SyntheticFieldGenerator::shared_factor_cache_builds(), 0u);
  (void)gen.generate(exact, 4, rng);  // cold dense Cholesky
  EXPECT_EQ(SyntheticFieldGenerator::shared_factor_cache_builds(), 1u);
  (void)gen.nystrom_factor(low_rank);  // cold Nyström factor
  EXPECT_EQ(SyntheticFieldGenerator::shared_factor_cache_builds(), 2u);

  // Warm at both tiers: a second same-coords generator hits the registry,
  // builds stays put, hits advances.
  const std::size_t hits_before =
      SyntheticFieldGenerator::shared_factor_cache_hits();
  SyntheticFieldGenerator warm(coords);
  Rng rng2(3);
  (void)warm.generate(exact, 4, rng2);
  (void)warm.nystrom_factor(low_rank);
  EXPECT_EQ(SyntheticFieldGenerator::shared_factor_cache_builds(), 2u);
  EXPECT_EQ(SyntheticFieldGenerator::shared_factor_cache_hits(),
            hits_before + 2);
  SyntheticFieldGenerator::reset_shared_factor_cache();
}

TEST(NystromField, MetroScaleTaskFactorySmoke) {
  // The factory at a reduced grid (the full 100 x 100 tier is exercised by
  // bench_scale_10000cell / example_scale_10000cell).
  const auto task = make_metro_scale_task(12, 12, 8, 1);
  EXPECT_EQ(task.num_cells(), 144u);
  EXPECT_EQ(task.num_cycles(), 8u);
  EXPECT_EQ(task.name(), "metro-scale-temperature");
  EXPECT_FALSE(task.ground_truth().has_non_finite());
}

}  // namespace
}  // namespace drcell::data
