// Tests for the hot-path overhaul: blocked matmul vs the retained naive
// reference, matmul_into storage reuse, warm-started ALS matching the
// cold-start solution, thread-pooled committee/trainer parity with the
// serial paths, and the DCHECK demotion scheme.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "cs/committee.h"
#include "cs/matrix_completion.h"
#include "cs/mean_inference.h"
#include "cs/temporal_inference.h"
#include "linalg/matrix.h"
#include "rl/dqn_trainer.h"
#include "rl/drqn_qnetwork.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace drcell {
namespace {

double max_abs_diff(const Matrix& a, const Matrix& b) {
  EXPECT_EQ(a.rows(), b.rows());
  EXPECT_EQ(a.cols(), b.cols());
  double worst = 0.0;
  for (std::size_t i = 0; i < a.data().size(); ++i)
    worst = std::max(worst, std::fabs(a.data()[i] - b.data()[i]));
  return worst;
}

#ifdef DRCELL_ENABLE_REFERENCE_KERNELS
TEST(BlockedMatmul, MatchesNaiveReferenceOnRandomShapes) {
  // Shapes straddle the tile boundaries (32/128): smaller, exact multiples,
  // and non-multiples in every dimension.
  const std::size_t shapes[][3] = {{1, 57, 64},   {3, 5, 7},    {32, 32, 32},
                                   {33, 65, 17},  {31, 129, 100}, {64, 128, 96},
                                   {130, 33, 129}, {2, 1, 2}};
  Rng rng(42);
  for (const auto& s : shapes) {
    const Matrix a = random_normal_matrix(s[0], s[1], rng);
    const Matrix b = random_normal_matrix(s[1], s[2], rng);
    const Matrix fast = a.matmul(b);
    const Matrix ref = a.matmul_naive(b);
    EXPECT_LE(max_abs_diff(fast, ref), 1e-10 * static_cast<double>(s[1]))
        << "shape " << s[0] << "x" << s[1] << "x" << s[2];
    // The retained seed kernel accumulates in the same k-order as the
    // blocked kernel, so it must agree bit for bit.
    EXPECT_EQ(fast, a.matmul_unblocked(b))
        << "shape " << s[0] << "x" << s[1] << "x" << s[2];
  }
}
#endif

TEST(BlockedMatmul, MatmulIntoReusesStorageAndMatchesMatmul) {
  Rng rng(7);
  const Matrix a = random_normal_matrix(40, 70, rng);
  const Matrix b = random_normal_matrix(70, 50, rng);
  Matrix out;
  a.matmul_into(b, out);
  EXPECT_EQ(out, a.matmul(b));

  // A smaller product into the same output must recycle the allocation.
  const double* storage = out.data().data();
  const Matrix c = random_normal_matrix(10, 70, rng);
  c.matmul_into(b, out);
  EXPECT_EQ(out.data().data(), storage);
  EXPECT_EQ(out, c.matmul(b));
}

TEST(BlockedMatmul, MatmulIntoRejectsAliasedOutput) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b = Matrix::identity(2);
  EXPECT_THROW(a.matmul_into(b, a), CheckError);
  EXPECT_THROW(a.matmul_into(b, b), CheckError);
}

TEST(CheckScheme, StructuralChecksStayOnInRelease) {
  Matrix a(2, 3);
  Matrix b(4, 5);
  EXPECT_THROW(a.matmul(b), CheckError);      // shape mismatch
  EXPECT_THROW(a.at(2, 0), CheckError);       // at() is always checked
  EXPECT_THROW(a.at(0, 3), CheckError);
#if DRCELL_DCHECKS_ACTIVE
  EXPECT_THROW(a(2, 0), CheckError);          // hot-path checks in DCHECK builds
#endif
}

TEST(Committee, DisagreementRejectsShapeMismatchedMembers) {
  std::vector<Matrix> predictions;
  predictions.emplace_back(3, 4, 1.0);
  predictions.emplace_back(3, 4, 2.0);
  predictions.emplace_back(2, 4, 3.0);  // wrong row count
  EXPECT_THROW(cs::InferenceCommittee::disagreement(predictions), CheckError);
  predictions[2] = Matrix(3, 5, 3.0);   // wrong column count
  EXPECT_THROW(cs::InferenceCommittee::disagreement(predictions), CheckError);
}

/// Rank-2 field with ~60% of entries observed; enough structure for ALS to
/// nail the reconstruction.
cs::PartialMatrix make_low_rank_window(std::size_t cells, std::size_t cycles,
                                       std::uint64_t seed,
                                       Matrix* truth_out = nullptr,
                                       double freq = 0.4) {
  Rng rng(seed);
  Matrix truth(cells, cycles);
  for (std::size_t r = 0; r < cells; ++r) {
    const double base = 20.0 + 0.7 * static_cast<double>(r);
    const double gain = 1.0 + 0.1 * static_cast<double>(r % 5);
    for (std::size_t c = 0; c < cycles; ++c)
      truth(r, c) =
          base + gain * std::sin(freq * static_cast<double>(c));
  }
  cs::PartialMatrix window(cells, cycles);
  for (std::size_t r = 0; r < cells; ++r)
    for (std::size_t c = 0; c < cycles; ++c)
      if (c < 2 || rng.bernoulli(0.6)) window.set(r, c, truth(r, c));
  if (truth_out != nullptr) *truth_out = truth;
  return window;
}

TEST(WarmStartAls, RepeatInferMatchesColdStartWithinTightTolerance) {
  const auto window = make_low_rank_window(12, 20, 11);

  cs::MatrixCompletionOptions cold_opts;
  cold_opts.warm_start = false;
  const cs::MatrixCompletion cold(cold_opts);
  const Matrix cold_result = cold.infer(window);

  const cs::MatrixCompletion warm;  // warm_start defaults to true
  const Matrix first = warm.infer(window);
  // First call starts from the same random init — identical to cold.
  EXPECT_LE(max_abs_diff(first, cold_result), 1e-12);

  // Second call over the unchanged window hits the fingerprint fast path
  // and returns the cached factors — identical to the cold solution (well
  // inside the 1e-9 MAE budget).
  const Matrix second = warm.infer(window);
  EXPECT_LE(max_abs_diff(second, cold_result), 1e-9);
  EXPECT_EQ(second, cold_result);

  // And after dropping the cache we are back to the cold path bit for bit.
  warm.reset_warm_start();
  EXPECT_LE(max_abs_diff(warm.infer(window), cold_result), 1e-12);
}

TEST(WarmStartAls, DissimilarWindowFallsBackToColdStart) {
  // Same shape, unrelated content (a decorrelated temporal frequency): the
  // RMSE guard must reject the resume, making the warm engine's solve
  // bit-identical to a cold engine's.
  const auto window_a = make_low_rank_window(12, 20, 11);
  const auto window_b =
      make_low_rank_window(12, 20, 77, /*truth_out=*/nullptr, /*freq=*/2.9);

  const cs::MatrixCompletion warm;
  (void)warm.infer(window_a);  // populate the cache with A's factors

  cs::MatrixCompletionOptions cold_opts;
  cold_opts.warm_start = false;
  const cs::MatrixCompletion cold(cold_opts);
  EXPECT_EQ(warm.infer(window_b), cold.infer(window_b));
}

TEST(WarmStartAls, EvolvingWindowKeepsColdStartAccuracy) {
  Matrix truth;
  auto window = make_low_rank_window(10, 16, 23, &truth);
  const cs::MatrixCompletion warm;
  cs::MatrixCompletionOptions cold_opts;
  cold_opts.warm_start = false;
  const cs::MatrixCompletion cold(cold_opts);

  Rng rng(31);
  for (int step = 0; step < 6; ++step) {
    // Reveal a few more entries, as one sensing cycle would.
    for (int added = 0; added < 4; ++added) {
      const std::size_t r = rng.uniform_index(truth.rows());
      const std::size_t c = rng.uniform_index(truth.cols());
      if (!window.observed(r, c)) window.set(r, c, truth(r, c));
    }
    const Matrix warm_est = warm.infer(window);
    const Matrix cold_est = cold.infer(window);
    double warm_mae = 0.0, cold_mae = 0.0;
    for (std::size_t i = 0; i < truth.data().size(); ++i) {
      warm_mae += std::fabs(warm_est.data()[i] - truth.data()[i]);
      cold_mae += std::fabs(cold_est.data()[i] - truth.data()[i]);
    }
    warm_mae /= static_cast<double>(truth.data().size());
    cold_mae /= static_cast<double>(truth.data().size());
    // The warm path must not trade accuracy for speed.
    EXPECT_LE(warm_mae, cold_mae + 0.05)
        << "step " << step << ": warm " << warm_mae << " cold " << cold_mae;
  }
}

TEST(PooledCommittee, InferAllBitIdenticalToSerial) {
  const auto window = make_low_rank_window(8, 12, 3);

  const auto make_committee = [] {
    cs::MatrixCompletionOptions mc_opts;
    mc_opts.warm_start = false;  // keep members stateless for the comparison
    std::vector<cs::InferenceEnginePtr> members;
    members.push_back(std::make_shared<cs::MeanInference>());
    members.push_back(std::make_shared<cs::TemporalInterpolation>());
    members.push_back(std::make_shared<cs::MatrixCompletion>(mc_opts));
    return cs::InferenceCommittee(std::move(members));
  };

  auto serial_committee = make_committee();
  util::ThreadPool serial_pool(0);
  serial_committee.set_thread_pool(&serial_pool);
  const auto serial = serial_committee.infer_all(window);

  auto pooled_committee = make_committee();
  util::ThreadPool pool(3);
  pooled_committee.set_thread_pool(&pool);
  const auto pooled = pooled_committee.infer_all(window);

  ASSERT_EQ(serial.size(), pooled.size());
  for (std::size_t i = 0; i < serial.size(); ++i)
    EXPECT_EQ(serial[i], pooled[i]) << "member " << i;  // bit-wise
}

std::unique_ptr<rl::DqnTrainer> make_trainer(util::ThreadPool* pool) {
  Rng rng(1);
  rl::DqnOptions options;
  options.batch_size = 8;
  options.min_replay = 8;
  options.double_dqn = true;  // exercises both pool lanes fully
  auto trainer = std::make_unique<rl::DqnTrainer>(
      std::make_unique<rl::DrqnQNetwork>(6, 2, 8, 0, rng), options, 7);
  trainer->set_thread_pool(pool);
  Rng fill(3);
  for (int i = 0; i < 64; ++i) {
    rl::Experience e;
    e.state.assign(12, 0.0);
    e.state[fill.uniform_index(12)] = 1.0;
    e.action = fill.uniform_index(6);
    e.reward = fill.uniform(-1.0, 5.0);
    e.next_state.assign(12, 0.0);
    e.next_state[fill.uniform_index(12)] = 1.0;
    e.next_mask.assign(6, 1);
    trainer->observe(std::move(e));
  }
  return trainer;
}

TEST(PooledDqn, TrainStepBitIdenticalToSerial) {
  util::ThreadPool serial_pool(0);
  util::ThreadPool pool(2);
  auto serial = make_trainer(&serial_pool);
  auto pooled = make_trainer(&pool);
  for (int step = 0; step < 5; ++step) {
    const double loss_serial = serial->train_step();
    const double loss_pooled = pooled->train_step();
    EXPECT_EQ(loss_serial, loss_pooled) << "step " << step;  // bit-wise
  }
  const std::vector<double> probe(12, 0.25);
  EXPECT_EQ(serial->q_values(probe), pooled->q_values(probe));
}

}  // namespace
}  // namespace drcell
