// Accuracy contract of the fastmath elementwise kernels (util/fastmath.h):
// ≤1e-12 relative vs std:: on the training range [-40, 40] (the measured
// error is ≲1e-15; the 1e-12 bound is the documented contract the fused
// LSTM gate kernel and the nn/ activations rely on), plus the special-value
// edge cases (±0, denormals, ±inf, NaN, overflow/underflow clamps) and the
// array/in-place forms.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "util/fastmath.h"
#include "util/rng.h"

namespace drcell {
namespace {

constexpr double kContractBound = 1e-12;  // relative, on [-40, 40]

double stable_std_sigmoid(double x) {
  if (x >= 0.0) return 1.0 / (1.0 + std::exp(-x));
  const double z = std::exp(x);
  return z / (1.0 + z);
}

double rel_err(double got, double want) {
  if (want == 0.0) return got == 0.0 ? 0.0 : std::fabs(got);
  return std::fabs(got - want) / std::fabs(want);
}

TEST(Fastmath, DenseGridSweepAgainstStd) {
  // ~80k-point dense grid over the contract range. The grid is offset off
  // round numbers so it lands on generic doubles.
  double worst_tanh = 0.0, worst_sigmoid = 0.0, worst_exp = 0.0;
  for (double x = -40.0 + 1.23e-5; x <= 40.0; x += 1e-3) {
    worst_tanh = std::max(worst_tanh, rel_err(fastmath::tanh(x), std::tanh(x)));
    worst_sigmoid = std::max(
        worst_sigmoid, rel_err(fastmath::sigmoid(x), stable_std_sigmoid(x)));
    worst_exp = std::max(worst_exp, rel_err(fastmath::exp(x), std::exp(x)));
  }
  EXPECT_LT(worst_tanh, kContractBound);
  EXPECT_LT(worst_sigmoid, kContractBound);
  EXPECT_LT(worst_exp, kContractBound);
}

TEST(Fastmath, RandomSweepNearZeroAndTails) {
  // The cancellation-prone regions: tiny arguments (where tanh ≈ x and a
  // 1 − e^{-2x} formulation would lose half the digits) and the saturating
  // tails.
  Rng rng(7);
  for (int i = 0; i < 20000; ++i) {
    const double mag = std::pow(10.0, rng.uniform(-15.0, 1.6));
    const double x = (rng.bernoulli(0.5) ? 1.0 : -1.0) * mag;
    EXPECT_LT(rel_err(fastmath::tanh(x), std::tanh(x)), kContractBound) << x;
    EXPECT_LT(rel_err(fastmath::sigmoid(x), stable_std_sigmoid(x)),
              kContractBound)
        << x;
  }
}

TEST(Fastmath, SignedZeroAndDenormals) {
  EXPECT_EQ(fastmath::tanh(0.0), 0.0);
  EXPECT_FALSE(std::signbit(fastmath::tanh(0.0)));
  EXPECT_TRUE(std::signbit(fastmath::tanh(-0.0)));  // tanh(-0) = -0
  EXPECT_EQ(fastmath::sigmoid(0.0), 0.5);
  EXPECT_EQ(fastmath::sigmoid(-0.0), 0.5);
  EXPECT_EQ(fastmath::exp(0.0), 1.0);

  // Denormal inputs: tanh(x) = x exactly at that magnitude (the r + r²·q
  // polynomial form keeps the leading term exact; r² underflows to 0).
  const double denorm = 5e-310;
  EXPECT_EQ(fastmath::tanh(denorm), denorm);
  EXPECT_EQ(fastmath::tanh(-denorm), -denorm);
  EXPECT_EQ(fastmath::tanh(std::numeric_limits<double>::denorm_min()),
            std::numeric_limits<double>::denorm_min());
  EXPECT_EQ(fastmath::sigmoid(denorm), 0.5);
  EXPECT_EQ(fastmath::sigmoid(-denorm), 0.5);
  EXPECT_EQ(fastmath::exp(denorm), 1.0);
}

TEST(Fastmath, InfinitiesNaNAndClamps) {
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(fastmath::tanh(inf), 1.0);
  EXPECT_EQ(fastmath::tanh(-inf), -1.0);
  EXPECT_EQ(fastmath::sigmoid(inf), 1.0);
  EXPECT_EQ(fastmath::sigmoid(-inf), 0.0);
  EXPECT_EQ(fastmath::exp(-inf), 0.0);
  EXPECT_EQ(fastmath::exp(inf), inf);
  EXPECT_TRUE(std::isnan(fastmath::tanh(std::nan(""))));
  EXPECT_TRUE(std::isnan(fastmath::sigmoid(std::nan(""))));
  EXPECT_TRUE(std::isnan(fastmath::exp(std::nan(""))));

  // Saturation matches std:: exactly well before the clamp boundaries.
  EXPECT_EQ(fastmath::tanh(25.0), 1.0);
  EXPECT_EQ(fastmath::tanh(-25.0), -1.0);
  EXPECT_EQ(fastmath::sigmoid(50.0), 1.0);
  // Documented divergence outside the contract range: exp flushes to 0
  // below ≈ -708 (no subnormal tail); overflow to +inf happens at the IEEE
  // threshold (~709.783), same as std::exp — the last finite stretch still
  // evaluates (split 2^hi·2^lo scaling).
  EXPECT_EQ(fastmath::exp(-760.0), 0.0);
  EXPECT_LT(rel_err(fastmath::exp(709.5), std::exp(709.5)), kContractBound);
  EXPECT_EQ(fastmath::exp(709.9), inf);
  EXPECT_EQ(std::exp(709.9), inf);  // agreeing with std::, not diverging
  EXPECT_EQ(fastmath::exp(800.0), inf);
  EXPECT_EQ(fastmath::sigmoid(-760.0), 0.0);
}

TEST(Fastmath, ArrayFormsMatchScalarAndAliasSafely) {
  Rng rng(3);
  std::vector<double> x(257);  // odd length: exercises the vector epilogue
  for (double& v : x) v = rng.uniform(-42.0, 42.0);
  x[0] = 0.0;
  x[1] = -0.0;
  x[2] = std::numeric_limits<double>::infinity();
  x[3] = -std::numeric_limits<double>::infinity();

  std::vector<double> out(x.size());
  fastmath::tanh_array(x.data(), out.data(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_EQ(out[i], fastmath::tanh(x[i])) << i;
  fastmath::sigmoid_array(x.data(), out.data(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_EQ(out[i], fastmath::sigmoid(x[i])) << i;
  fastmath::exp_array(x.data(), out.data(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_EQ(out[i], fastmath::exp(x[i])) << i;

  // In-place (aliased) forms produce the same values.
  std::vector<double> inplace = x;
  fastmath::tanh_inplace(inplace.data(), inplace.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_EQ(inplace[i], fastmath::tanh(x[i])) << i;
  inplace = x;
  fastmath::sigmoid_inplace(std::span<double>(inplace));
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_EQ(inplace[i], fastmath::sigmoid(x[i])) << i;
}

TEST(Fastmath, DerivativeFromOutputArraysAreExact) {
  Rng rng(5);
  std::vector<double> y(100), grad(100), out(100);
  for (std::size_t i = 0; i < y.size(); ++i) {
    y[i] = rng.uniform(-1.0, 1.0);
    grad[i] = rng.normal();
  }
  fastmath::dtanh_from_output_array(y.data(), grad.data(), out.data(),
                                    y.size());
  for (std::size_t i = 0; i < y.size(); ++i)
    EXPECT_EQ(out[i], grad[i] * (1.0 - y[i] * y[i])) << i;
  fastmath::dsigmoid_from_output_array(y.data(), grad.data(), out.data(),
                                       y.size());
  for (std::size_t i = 0; i < y.size(); ++i)
    EXPECT_EQ(out[i], grad[i] * (y[i] * (1.0 - y[i]))) << i;
}

}  // namespace
}  // namespace drcell
