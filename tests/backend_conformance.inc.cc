// Per-backend conformance suite for the compute-backend registry
// (linalg/backend.h). This file is compiled once per registered backend: a
// thin wrapper TU defines DRCELL_CONFORMANCE_BACKEND to the registry name
// and #includes this file, and CMake registers the result as
// backend_conformance_<name>_test. Adding a backend therefore means adding
// one wrapper TU and one CMake list entry — the contract itself is written
// once.
//
// What is pinned, per backend:
//  * shape/transpose/zero-skip properties of the three dense GEMM forms,
//    against an in-test ascending-k oracle (bit-identical for
//    exact-contract backends, <= tolerance_vs_native() otherwise);
//  * sparse-vs-dense gather identity across densities 0 .. 100% including
//    single-element rows;
//  * LSTM gate determinism plus analytic-vs-central-difference gradient
//    checks through the full cell;
//  * batched-vs-per-sample train-step equivalence at B in {1, 7, 32};
//  * worker-count invariance of the batched trainer;
//  * closeness to the native backend (single-kernel comparisons within
//    tolerance_vs_native(), end-to-end training within the documented
//    1e-9 loss / 1e-8 parameter bound).
#ifndef DRCELL_CONFORMANCE_BACKEND
#error "Wrapper TU must define DRCELL_CONFORMANCE_BACKEND before including"
#endif

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <cstddef>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "linalg/backend.h"
#include "linalg/matrix.h"
#include "linalg/sparse_matrix.h"
#include "nn/gradient_check.h"
#include "nn/loss.h"
#include "nn/lstm.h"
#include "rl/dqn_trainer.h"
#include "rl/drqn_qnetwork.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace drcell {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng,
                     double zero_prob = 0.3) {
  Matrix m(rows, cols);
  for (double& v : m.data()) v = rng.bernoulli(zero_prob) ? 0.0 : rng.normal();
  return m;
}

/// The exact-arithmetic oracle: per output element, additions in ascending-k
/// order, aik == 0.0 skipped, accumulating directly into the zeroed output.
/// Exact-contract backends must reproduce this bit for bit.
Matrix oracle_matmul(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) out(i, j) += aik * b(k, j);
    }
  return out;
}

/// Drops explicit zeros, like the replay encoder does.
SparseRowMatrix to_sparse(const Matrix& dense) {
  SparseRowMatrix s(dense.rows(), dense.cols());
  for (std::size_t r = 0; r < dense.rows(); ++r)
    for (std::size_t c = 0; c < dense.cols(); ++c)
      if (dense(r, c) != 0.0) s.append(r, c, dense(r, c));
  return s;
}

rl::Experience random_experience(std::size_t cells, std::size_t k, Rng& rng) {
  rl::Experience e;
  e.state.assign(k * cells, 0.0);
  e.next_state.assign(k * cells, 0.0);
  for (std::size_t i = 0; i < k; ++i) {
    e.state[i * cells + rng.uniform_index(cells)] = 1.0;
    e.next_state[i * cells + rng.uniform_index(cells)] = 1.0;
  }
  e.action = rng.uniform_index(cells);
  e.reward = rng.uniform(-1.0, 2.0);
  e.next_mask.assign(cells, 0);
  std::size_t allowed = 0;
  for (auto& m : e.next_mask)
    if (rng.bernoulli(0.7)) {
      m = 1;
      ++allowed;
    }
  if (allowed == 0) e.next_mask[0] = 1;
  e.terminal = rng.bernoulli(0.15);
  return e;
}

class BackendConformance : public ::testing::Test {
 protected:
  void SetUp() override {
    be_ = BackendRegistry::find(DRCELL_CONFORMANCE_BACKEND);
    ASSERT_NE(be_, nullptr)
        << "backend '" DRCELL_CONFORMANCE_BACKEND "' is not registered";
    BackendRegistry::set_active(DRCELL_CONFORMANCE_BACKEND);
  }
  void TearDown() override {
    // Leave the binary's backend deterministic between tests regardless of
    // what a cross-backend comparison switched to mid-test.
    BackendRegistry::set_active(DRCELL_CONFORMANCE_BACKEND);
  }

  const ComputeBackend& be() const { return *be_; }
  bool exact() const { return be_->exact_contract(); }
  /// Bound for single-kernel comparisons against exact-contract arithmetic:
  /// bit-identity for exact backends, tolerance_vs_native() otherwise.
  double kernel_tol() const {
    return exact() ? 0.0 : be_->tolerance_vs_native();
  }

  static void expect_matches(const Matrix& got, const Matrix& want,
                             double tol, const char* what) {
    ASSERT_EQ(got.rows(), want.rows()) << what;
    ASSERT_EQ(got.cols(), want.cols()) << what;
    if (tol == 0.0) {
      EXPECT_EQ(got, want) << what;
    } else {
      EXPECT_LE((got - want).max_abs(), tol) << what;
    }
  }

  const ComputeBackend* be_ = nullptr;
};

TEST_F(BackendConformance, RegistryExposesBackendAndContractTier) {
  EXPECT_STREQ(be().name(), DRCELL_CONFORMANCE_BACKEND);
  const auto names = BackendRegistry::names();
  EXPECT_NE(std::find(names.begin(), names.end(),
                      std::string(DRCELL_CONFORMANCE_BACKEND)),
            names.end());
  EXPECT_STREQ(BackendRegistry::active().name(), DRCELL_CONFORMANCE_BACKEND);
  EXPECT_GE(be().tolerance_vs_native(), 0.0);
  if (std::string(be().name()) == "native") {
    EXPECT_TRUE(be().exact_contract());
    EXPECT_EQ(be().tolerance_vs_native(), 0.0);
  }
}

TEST_F(BackendConformance, MatmulMatchesAscendingKOracle) {
  // Shapes straddle every kernel regime: 1x1, sub-tile, exact tile
  // boundaries (native tiles 32/32/128, 8-wide j strips), and ragged edges.
  const struct {
    std::size_t m, k, n;
  } shapes[] = {{1, 1, 1},   {3, 5, 4},    {8, 8, 8},
                {32, 32, 32}, {33, 47, 9}, {40, 130, 17}, {5, 64, 128}};
  Rng rng(101);
  for (const auto& s : shapes) {
    const Matrix a = random_matrix(s.m, s.k, rng);
    const Matrix b = random_matrix(s.k, s.n, rng, 0.0);
    Matrix out;
    a.matmul_into(b, out);
    expect_matches(out, oracle_matmul(a, b), kernel_tol(), "matmul_into");
    expect_matches(a.matmul(b), oracle_matmul(a, b), kernel_tol(), "matmul");
  }
}

TEST_F(BackendConformance, MatmulZeroRowsProduceExactZeros) {
  // Zero-skip property: an all-zero A row must yield an exactly-zero output
  // row even against huge B entries — skipped terms (exact backends) and
  // 0.0 * finite products (tolerance backends) both give exact zeros.
  Rng rng(102);
  Matrix a = random_matrix(9, 13, rng);
  for (std::size_t j = 0; j < a.cols(); ++j) {
    a(2, j) = 0.0;
    a(8, j) = 0.0;
  }
  Matrix b(13, 7);
  for (double& v : b.data()) v = rng.bernoulli(0.5) ? 1e300 : -1e300;
  Matrix out;
  a.matmul_into(b, out);
  for (std::size_t j = 0; j < out.cols(); ++j) {
    EXPECT_EQ(out(2, j), 0.0) << "col " << j;
    EXPECT_EQ(out(8, j), 0.0) << "col " << j;
  }
}

TEST_F(BackendConformance, MatmulRowsIndependentOfBatchStacking) {
  // Row-locality property: row b of a stacked [B x K] matmul equals the
  // same row computed as its own B=1 call. Exact backends promise
  // bit-identity (this is the batched-determinism cornerstone); tolerance
  // backends may re-partition by shape and get the relaxed bound.
  Rng rng(103);
  const Matrix a = random_matrix(7, 33, rng);
  const Matrix b = random_matrix(33, 12, rng, 0.0);
  Matrix full;
  a.matmul_into(b, full);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    Matrix row(1, a.cols());
    for (std::size_t c = 0; c < a.cols(); ++c) row(0, c) = a(r, c);
    Matrix out;
    row.matmul_into(b, out);
    for (std::size_t j = 0; j < out.cols(); ++j) {
      if (exact()) {
        EXPECT_EQ(full(r, j), out(0, j)) << "row " << r << " col " << j;
      } else {
        EXPECT_NEAR(full(r, j), out(0, j), be().tolerance_vs_native())
            << "row " << r << " col " << j;
      }
    }
  }
}

TEST_F(BackendConformance, TransposedOtherMatchesExplicitTranspose) {
  // a·bᵀ must equal a·(bᵀ) computed through the plain matmul: same
  // products, same ascending-k order for exact backends.
  Rng rng(104);
  for (const auto& s : {std::array<std::size_t, 3>{1, 1, 1},
                        std::array<std::size_t, 3>{6, 17, 5},
                        std::array<std::size_t, 3>{13, 40, 13}}) {
    const Matrix a = random_matrix(s[0], s[1], rng);
    const Matrix b = random_matrix(s[2], s[1], rng);
    Matrix got;
    a.matmul_transposed_other_into(b, got);
    expect_matches(got, a.matmul(b.transposed()), kernel_tol(),
                   "matmul_transposed_other_into");
  }
}

TEST_F(BackendConformance, TransposedSelfAddAccumulatesIntoRunningSum) {
  // out += aᵀ·b semantics: the kernel must add to the caller's running sum,
  // not overwrite it — two calls from C0 give C0 + 2·aᵀb.
  Rng rng(105);
  const Matrix a = random_matrix(11, 6, rng);
  const Matrix b = random_matrix(11, 9, rng, 0.0);
  const Matrix c0 = random_matrix(6, 9, rng, 0.0);
  const Matrix atb = a.transposed().matmul(b);

  Matrix out = c0;
  a.matmul_transposed_self_add(b, out);
  if (exact()) {
    // Exact contract additionally fixes the addition order: each product
    // lands directly on the running sum, ascending k — so the oracle must
    // replay exactly that, not add a pre-summed aᵀb.
    Matrix want = c0;
    const auto accumulate = [&](Matrix& w) {
      for (std::size_t k = 0; k < a.rows(); ++k)
        for (std::size_t i = 0; i < a.cols(); ++i) {
          const double aki = a(k, i);
          if (aki == 0.0) continue;
          for (std::size_t j = 0; j < b.cols(); ++j)
            w(i, j) += aki * b(k, j);
        }
    };
    accumulate(want);
    EXPECT_EQ(out, want) << "single accumulate";
    a.matmul_transposed_self_add(b, out);
    accumulate(want);
    EXPECT_EQ(out, want) << "double accumulate";
  } else {
    const double tol = be().tolerance_vs_native();
    expect_matches(out, c0 + atb, tol, "single accumulate");
    a.matmul_transposed_self_add(b, out);
    expect_matches(out, c0 + atb + atb, 2.0 * tol, "double accumulate");
  }
}

TEST_F(BackendConformance, SparseGatherMatchesDense) {
  // Sparse-vs-dense identity for the gather GEMM: for exact backends the
  // gather is bit-identical to the dense kernel on the densified operand;
  // tolerance backends run the exact gather for the sparse side, so the
  // comparison is against their (dgemm-shaped) dense result within bound.
  Rng rng(106);
  for (double density : {0.0, 0.01, 0.3, 1.0}) {
    Matrix dense(24, 40);
    for (double& v : dense.data())
      v = rng.bernoulli(density) ? rng.normal() : 0.0;
    // A band of single-element rows, the one-hot selection-state shape.
    for (std::size_t r = 0; r < 4; ++r) {
      for (std::size_t c = 0; c < dense.cols(); ++c) dense(r, c) = 0.0;
      dense(r, rng.uniform_index(dense.cols())) = 1.0;
    }
    const SparseRowMatrix sparse = to_sparse(dense);
    const Matrix b = random_matrix(40, 11, rng, 0.0);

    Matrix from_sparse, from_dense;
    sparse.matmul_into(b, from_sparse);
    dense.matmul_into(b, from_dense);
    expect_matches(from_sparse, from_dense, kernel_tol(), "gather matmul");

    Matrix acc_sparse = random_matrix(40, 11, rng, 0.0);
    Matrix acc_dense = acc_sparse;
    const Matrix grads = random_matrix(24, 11, rng, 0.0);
    sparse.matmul_transposed_self_add(grads, acc_sparse);
    dense.matmul_transposed_self_add(grads, acc_dense);
    expect_matches(acc_sparse, acc_dense, kernel_tol(),
                   "gather transposed_self_add");
  }
}

TEST_F(BackendConformance, LstmGateForwardDeterministicAndFinite) {
  // A backend's gate pass must be a pure function of its operands — two
  // identical calls give bit-identical tensors (the worker-invariance
  // contract leans on this).
  Rng rng(107);
  const std::size_t batch = 5, hidden = 8;
  const Matrix z = random_matrix(batch, 4 * hidden, rng, 0.0);
  const Matrix c_prev = random_matrix(batch, hidden, rng, 0.0);
  Matrix g1(batch, 4 * hidden), c1(batch, hidden), t1(batch, hidden),
      h1(batch, hidden);
  Matrix g2 = g1, c2 = c1, t2 = t1, h2 = h1;
  be().lstm_gate_forward(z, &c_prev, g1, c1, t1, h1);
  be().lstm_gate_forward(z, &c_prev, g2, c2, t2, h2);
  EXPECT_EQ(g1, g2);
  EXPECT_EQ(c1, c2);
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(h1, h2);
  for (const double v : h1.data()) EXPECT_TRUE(std::isfinite(v));
  // First step (no carried cell state) must also be deterministic.
  be().lstm_gate_forward(z, nullptr, g1, c1, t1, h1);
  be().lstm_gate_forward(z, nullptr, g2, c2, t2, h2);
  EXPECT_EQ(h1, h2);
}

TEST_F(BackendConformance, LstmGradientsMatchCentralDifferences) {
  // Full-cell gradient check through the backend's gate forward/backward:
  // analytic parameter gradients vs central differences at the per-sample
  // and minibatch widths.
  for (std::size_t batch : {std::size_t{1}, std::size_t{16}}) {
    Rng rng(41);
    nn::Lstm lstm(3, 5, rng);
    Rng data_rng(42 + batch);
    std::vector<Matrix> seq;
    for (int t = 0; t < 3; ++t)
      seq.push_back(random_matrix(batch, 3, data_rng, 0.0));
    Matrix target(batch, 5);
    for (double& v : target.data()) v = data_rng.normal();

    auto loss_fn = [&] { return nn::mse_loss(lstm.forward(seq), target).value; };
    for (auto* p : lstm.parameters()) p->zero_grad();
    const auto l = nn::mse_loss(lstm.forward(seq), target);
    lstm.backward(l.grad);
    for (auto* p : lstm.parameters()) {
      const auto r = nn::check_gradient(*p, loss_fn, 1e-6);
      EXPECT_TRUE(r.passed(1e-4))
          << "batch=" << batch << " max_rel=" << r.max_rel_diff;
    }
  }
}

#ifdef DRCELL_ENABLE_REFERENCE_KERNELS
TEST_F(BackendConformance, BatchedTrainStepMatchesPerSample) {
  // Batched-vs-per-sample train-step equivalence at B in {1, 7, 32}: two
  // identically seeded DRQN trainers, one batched and one through the
  // retained per-sample reference path, over the same minibatches. Both
  // pin the std:: gate kernel so the comparison isolates the backend's
  // matrix arithmetic. Exact-contract backends must be bit-identical; for
  // tolerance backends the per-sample path runs differently shaped GEMMs,
  // so the documented end-to-end bound applies instead.
  for (std::size_t batch : {std::size_t{1}, std::size_t{7}, std::size_t{32}}) {
    const std::size_t cells = 6, k = 2;
    rl::DqnOptions opt;
    opt.batch_size = batch;
    opt.min_replay = batch;
    opt.replay_capacity = 64;
    opt.target_sync_interval = 3;
    opt.reference_gate_kernel = true;

    Rng seed_rng(11);
    rl::DqnTrainer batched(
        std::make_unique<rl::DrqnQNetwork>(cells, k, 12, 0, seed_rng), opt, 5);
    Rng seed_rng2(11);
    rl::DqnTrainer reference(
        std::make_unique<rl::DrqnQNetwork>(cells, k, 12, 0, seed_rng2), opt,
        5);

    Rng fill(7);
    for (int i = 0; i < 40; ++i) {
      rl::Experience e = random_experience(cells, k, fill);
      rl::Experience copy = e;
      batched.observe(std::move(e));
      reference.observe(std::move(copy));
    }

    Rng draw(9 + batch);
    for (int step = 0; step < 8; ++step) {
      std::vector<std::size_t> indices;
      for (std::size_t i = 0; i < batch; ++i)
        indices.push_back(draw.uniform_index(40));
      const double loss_batched = batched.train_step_on_indices(indices);
      const double loss_reference =
          reference.train_step_reference_on_indices(indices);
      if (exact()) {
        ASSERT_EQ(loss_batched, loss_reference)
            << "B=" << batch << " step " << step;
      } else {
        ASSERT_NEAR(loss_batched, loss_reference, 1e-9)
            << "B=" << batch << " step " << step;
      }
    }
    const auto pa = batched.online().parameters();
    const auto pb = reference.online().parameters();
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t i = 0; i < pa.size(); ++i) {
      if (exact()) {
        EXPECT_EQ(pa[i]->value, pb[i]->value) << "B=" << batch << " param "
                                              << i;
      } else {
        EXPECT_LT((pa[i]->value - pb[i]->value).max_abs(), 1e-8)
            << "B=" << batch << " param " << i;
      }
    }
  }
}
#endif  // DRCELL_ENABLE_REFERENCE_KERNELS

TEST_F(BackendConformance, TrainStepWorkerCountInvariance) {
  // The batched trainer's results must not depend on how many pool workers
  // serve its per-sample target forwards. Exact backends get bit-identity
  // (row locality makes any work split equivalent); tolerance backends get
  // the end-to-end bound.
  const std::size_t cells = 6, k = 2;
  rl::DqnOptions opt;
  opt.batch_size = 8;
  opt.min_replay = 8;
  opt.replay_capacity = 64;
  opt.target_sync_interval = 3;

  Rng seed_rng(21);
  rl::DqnTrainer serial(
      std::make_unique<rl::DrqnQNetwork>(cells, k, 12, 0, seed_rng), opt, 5);
  Rng seed_rng2(21);
  rl::DqnTrainer pooled(
      std::make_unique<rl::DrqnQNetwork>(cells, k, 12, 0, seed_rng2), opt, 5);
  util::ThreadPool pool(3);
  pooled.set_thread_pool(&pool);

  Rng fill(7);
  for (int i = 0; i < 40; ++i) {
    rl::Experience e = random_experience(cells, k, fill);
    rl::Experience copy = e;
    serial.observe(std::move(e));
    pooled.observe(std::move(copy));
  }
  Rng draw(9);
  for (int step = 0; step < 10; ++step) {
    std::vector<std::size_t> indices;
    for (std::size_t i = 0; i < opt.batch_size; ++i)
      indices.push_back(draw.uniform_index(40));
    const double loss_serial = serial.train_step_on_indices(indices);
    const double loss_pooled = pooled.train_step_on_indices(indices);
    if (exact()) {
      ASSERT_EQ(loss_serial, loss_pooled) << "step " << step;
    } else {
      ASSERT_NEAR(loss_serial, loss_pooled, 1e-9) << "step " << step;
    }
  }
  const auto pa = serial.online().parameters();
  const auto pb = pooled.online().parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    if (exact()) {
      EXPECT_EQ(pa[i]->value, pb[i]->value) << "param " << i;
    } else {
      EXPECT_LT((pa[i]->value - pb[i]->value).max_abs(), 1e-8)
          << "param " << i;
    }
  }
}

TEST_F(BackendConformance, KernelsWithinToleranceOfNative) {
  // Every kernel, same operands, this backend vs native, compared within
  // tolerance_vs_native(). For native itself the bound is 0.0 and the test
  // degenerates to a self-identity check.
  const ComputeBackend* native = BackendRegistry::find("native");
  ASSERT_NE(native, nullptr);
  const double tol = be().tolerance_vs_native();
  Rng rng(108);

  const Matrix a = random_matrix(33, 47, rng);
  const Matrix b = random_matrix(47, 18, rng, 0.0);
  Matrix out_be(33, 18), out_nat(33, 18);
  be().matmul_into(a, b, out_be);
  native->matmul_into(a, b, out_nat);
  expect_matches(out_be, out_nat, tol, "matmul vs native");

  const Matrix bt = random_matrix(18, 47, rng, 0.0);
  Matrix to_be(33, 18), to_nat(33, 18);
  be().matmul_transposed_other_into(a, bt, to_be);
  native->matmul_transposed_other_into(a, bt, to_nat);
  expect_matches(to_be, to_nat, tol, "transposed_other vs native");

  const Matrix g = random_matrix(33, 18, rng, 0.0);
  Matrix acc_be = random_matrix(47, 18, rng, 0.0);
  Matrix acc_nat = acc_be;
  be().matmul_transposed_self_add(a, g, acc_be);
  native->matmul_transposed_self_add(a, g, acc_nat);
  expect_matches(acc_be, acc_nat, tol, "transposed_self_add vs native");

  const SparseRowMatrix sa = to_sparse(random_matrix(33, 47, rng, 0.9));
  Matrix so_be(33, 18), so_nat(33, 18);
  be().sparse_matmul_into(sa, b, so_be);
  native->sparse_matmul_into(sa, b, so_nat);
  expect_matches(so_be, so_nat, tol, "sparse gather vs native");
  Matrix sacc_be = random_matrix(47, 18, rng, 0.0);
  Matrix sacc_nat = sacc_be;
  be().sparse_matmul_transposed_self_add(sa, g, sacc_be);
  native->sparse_matmul_transposed_self_add(sa, g, sacc_nat);
  expect_matches(sacc_be, sacc_nat, tol, "sparse self_add vs native");

  // Gate pass forward + backward on the training activation range.
  const std::size_t batch = 6, hidden = 7;
  Matrix z(batch, 4 * hidden);
  for (double& v : z.data()) v = rng.uniform(-4.0, 4.0);
  const Matrix c_prev = random_matrix(batch, hidden, rng, 0.0);
  Matrix gb(batch, 4 * hidden), cb(batch, hidden), tb(batch, hidden),
      hb(batch, hidden);
  Matrix gn = gb, cn = cb, tn = tb, hn = hb;
  be().lstm_gate_forward(z, &c_prev, gb, cb, tb, hb);
  native->lstm_gate_forward(z, &c_prev, gn, cn, tn, hn);
  expect_matches(hb, hn, tol, "gate forward h vs native");
  expect_matches(cb, cn, tol, "gate forward c vs native");

  const Matrix dh = random_matrix(batch, hidden, rng, 0.0);
  const Matrix dc_next = random_matrix(batch, hidden, rng, 0.0);
  Matrix dz_be(batch, 4 * hidden), dcp_be(batch, hidden);
  Matrix dz_nat = dz_be, dcp_nat = dcp_be;
  be().lstm_gate_backward(gb, tb, &c_prev, dh, dc_next, dz_be, dcp_be);
  native->lstm_gate_backward(gn, tn, &c_prev, dh, dc_next, dz_nat, dcp_nat);
  // Backward consumes each side's own forward tensors, so the divergence
  // compounds one extra step; 4x the single-kernel bound covers it with
  // room while staying zero for exact-identical gate implementations.
  const double btol = tol == 0.0 ? 0.0 : 4.0 * tol;
  expect_matches(dz_be, dz_nat, btol, "gate backward dz vs native");
  expect_matches(dcp_be, dcp_nat, btol, "gate backward dc_prev vs native");
}

TEST_F(BackendConformance, TrainingWithinDocumentedBoundOfNative) {
  // End-to-end: a dozen DRQN Adam steps under this backend vs the same run
  // under native must agree within the documented end-to-end numeric-
  // divergence bound (1e-9 on losses, 1e-8 on parameters — the same bound
  // the fastmath-vs-std:: gate contract established).
  const std::size_t cells = 6, k = 2;
  rl::DqnOptions opt;
  opt.batch_size = 8;
  opt.min_replay = 8;
  opt.replay_capacity = 64;
  opt.target_sync_interval = 3;

  const auto run = [&](const char* backend_name) {
    BackendRegistry::set_active(backend_name);
    Rng seed_rng(11);
    rl::DqnTrainer trainer(
        std::make_unique<rl::DrqnQNetwork>(cells, k, 12, 0, seed_rng), opt, 5);
    Rng fill(7);
    for (int i = 0; i < 40; ++i)
      trainer.observe(random_experience(cells, k, fill));
    Rng draw(9);
    std::vector<double> losses;
    for (int step = 0; step < 12; ++step) {
      std::vector<std::size_t> indices;
      for (std::size_t i = 0; i < opt.batch_size; ++i)
        indices.push_back(draw.uniform_index(40));
      losses.push_back(trainer.train_step_on_indices(indices));
    }
    std::vector<Matrix> params;
    for (const auto* p : trainer.online().parameters())
      params.push_back(p->value);
    return std::make_pair(losses, params);
  };

  const auto [losses_be, params_be] = run(DRCELL_CONFORMANCE_BACKEND);
  const auto [losses_nat, params_nat] = run("native");
  BackendRegistry::set_active(DRCELL_CONFORMANCE_BACKEND);

  ASSERT_EQ(losses_be.size(), losses_nat.size());
  for (std::size_t i = 0; i < losses_be.size(); ++i)
    EXPECT_NEAR(losses_be[i], losses_nat[i], 1e-9) << "step " << i;
  ASSERT_EQ(params_be.size(), params_nat.size());
  for (std::size_t i = 0; i < params_be.size(); ++i)
    EXPECT_LT((params_be[i] - params_nat[i]).max_abs(), 1e-8)
        << "param " << i;
}

}  // namespace
}  // namespace drcell
