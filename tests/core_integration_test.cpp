#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "baselines/random_selector.h"
#include "core/agent.h"
#include "core/campaign.h"
#include "core/policy.h"
#include "core/trainer.h"
#include "core/transfer.h"
#include "test_helpers.h"

namespace drcell::core {
namespace {

DrCellConfig fast_config(std::size_t history = 2) {
  DrCellConfig config;
  config.history_cycles = history;
  config.lstm_hidden = 16;
  config.training_episodes = 4;
  config.dqn.batch_size = 16;
  config.dqn.min_replay = 16;
  config.dqn.replay_capacity = 2048;
  config.dqn.target_sync_interval = 50;
  config.dqn.learning_rate = 3e-3;
  config.dqn.epsilon = rl::EpsilonSchedule(1.0, 0.1, 200);
  config.env.min_observations = 2;
  config.env.inference_window = 6;
  config.seed = 13;
  return config;
}

TEST(DrCellAgent, ConstructionAndGreedyAction) {
  DrCellAgent agent(5, fast_config());
  const std::vector<double> state(10, 0.0);
  const auto a = agent.greedy_action(state, {1, 1, 1, 1, 1});
  EXPECT_LT(a, 5u);
}

TEST(DrCellAgent, MlpVariantWorks) {
  DrCellConfig config = fast_config();
  config.network = NetworkKind::kMlp;
  config.mlp_hidden = {16};
  DrCellAgent agent(4, config);
  const std::vector<double> state(8, 0.0);
  EXPECT_LT(agent.greedy_action(state, {1, 1, 1, 1}), 4u);
}

TEST(DrCellAgent, WeightRoundTripPreservesPolicy) {
  DrCellAgent a(5, fast_config());
  std::stringstream ss;
  a.save_weights(ss);

  DrCellConfig other_config = fast_config();
  other_config.seed = 999;  // different init
  DrCellAgent b(5, other_config);
  b.load_weights(ss);

  // Same weights -> identical Q-values everywhere we probe.
  for (int probe = 0; probe < 5; ++probe) {
    std::vector<double> state(10, 0.0);
    state[probe] = 1.0;
    EXPECT_EQ(a.trainer().q_values(state), b.trainer().q_values(state));
  }
}

TEST(DrCellAgent, CopyWeightsToMatchesSerialisation) {
  DrCellAgent a(4, fast_config());
  DrCellConfig cfg = fast_config();
  cfg.seed = 77;
  DrCellAgent b(4, cfg);
  a.copy_weights_to(b);
  const std::vector<double> state(8, 0.0);
  EXPECT_EQ(a.trainer().q_values(state), b.trainer().q_values(state));
}

TEST(Trainer, EnvironmentFactoryChecksConsistency) {
  auto task = std::make_shared<const mcs::SensingTask>(
      testing::make_toy_task(5, 10));
  const auto config = fast_config();
  auto env = make_training_environment(task, testing::default_engine(), 0.5,
                                       config);
  EXPECT_EQ(env.options().history_cycles, config.history_cycles);
  EXPECT_EQ(env.num_cells(), 5u);
}

TEST(Trainer, TrainingRunsAndRecordsStats) {
  auto task = std::make_shared<const mcs::SensingTask>(
      testing::make_toy_task(5, 8));
  DrCellConfig config = fast_config();
  DrCellAgent agent(5, config);
  auto env = make_training_environment(task, testing::default_engine(), 0.5,
                                       config);
  const auto result = train_agent(agent, env, 3);
  EXPECT_EQ(result.episodes.size(), 3u);
  for (const auto& ep : result.episodes) {
    EXPECT_EQ(ep.cycles, 8u);
    EXPECT_GE(ep.total_selections, 8u * 2u);  // at least min_observations
  }
  EXPECT_GT(agent.trainer().env_steps(), 0u);
  EXPECT_GT(result.final_cells_per_cycle(), 0.0);
}

TEST(Trainer, MismatchedAgentEnvironmentThrows) {
  auto task = std::make_shared<const mcs::SensingTask>(
      testing::make_toy_task(5, 8));
  DrCellConfig config = fast_config();
  DrCellAgent agent(7, config);  // wrong cell count
  auto env = make_training_environment(task, testing::default_engine(), 0.5,
                                       config);
  EXPECT_THROW(train_agent(agent, env, 1), CheckError);
}

TEST(Trainer, LearningReducesSelectionsOnEasyTask) {
  // On the smooth toy task with a permissive epsilon, a trained policy
  // should not need more cells than an untrained one; the final episodes
  // should use no more selections than the first (exploration-heavy) one.
  auto task = std::make_shared<const mcs::SensingTask>(
      testing::make_toy_task(6, 10));
  DrCellConfig config = fast_config();
  config.dqn.epsilon = rl::EpsilonSchedule(0.8, 0.02, 150);
  DrCellAgent agent(6, config);
  auto env = make_training_environment(task, testing::default_engine(), 1.0,
                                       config);
  const auto result = train_agent(agent, env, 6);
  const double first = result.episodes.front().total_selections;
  const double last = result.episodes.back().total_selections;
  EXPECT_LE(last, first * 1.25);
}

TEST(Campaign, RunsRandomSelectorAndReportsMetrics) {
  auto task = std::make_shared<const mcs::SensingTask>(
      testing::make_toy_task(6, 10));
  baselines::RandomSelector selector(1);
  CampaignConfig config;
  config.epsilon = 1.0;
  config.p = 0.8;
  config.env.min_observations = 2;
  config.env.inference_window = 6;
  const auto result =
      run_campaign(task, testing::default_engine(), selector, config);
  EXPECT_EQ(result.selector, "RANDOM");
  EXPECT_EQ(result.cycles, 10u);
  EXPECT_GT(result.avg_cells_per_cycle, 0.0);
  EXPECT_LE(result.avg_cells_per_cycle, 6.0);
  EXPECT_GE(result.satisfaction_ratio, 0.0);
  EXPECT_LE(result.satisfaction_ratio, 1.0);
  EXPECT_EQ(result.total_selected,
            static_cast<std::size_t>(result.avg_cells_per_cycle * 10 + 0.5));
}

TEST(Campaign, QualityContractHoldsOnEasyTask) {
  // Warm-started GP task with an achievable epsilon: the LOO gate should
  // deliver a satisfaction ratio in the vicinity of the requested p. With
  // only 9 cells the LOO sample is tiny (3-6 errors per decision), so the
  // estimate is noisy and we assert a generous lower bound; tight
  // calibration is a large-m property exercised end-to-end by the Fig. 6
  // bench on the 57-cell dataset.
  const auto full = testing::make_gp_task(3, 48);
  auto task =
      std::make_shared<const mcs::SensingTask>(full.slice_cycles(12, 48));
  baselines::RandomSelector selector(2);
  CampaignConfig config;
  config.epsilon = 1.0;
  config.p = 0.85;
  config.env.min_observations = 4;
  config.env.inference_window = 12;
  config.env.warm_start = full.slice_cycles(0, 12).ground_truth();
  const auto result =
      run_campaign(task, testing::default_engine(), selector, config);
  EXPECT_GE(result.satisfaction_ratio, 0.55)
      << "true-error satisfaction collapsed: " << result.satisfaction_ratio;
  EXPECT_LE(result.mean_cycle_error, config.epsilon)
      << "mean error above the bound: " << result.mean_cycle_error;
}

TEST(Campaign, DrCellPolicyRunsEndToEnd) {
  auto task = std::make_shared<const mcs::SensingTask>(
      testing::make_toy_task(5, 12));
  DrCellConfig config = fast_config();
  DrCellAgent agent(5, config);
  auto train_env = make_training_environment(
      std::make_shared<const mcs::SensingTask>(task->slice_cycles(0, 6)),
      testing::default_engine(), 0.8, config);
  train_agent(agent, train_env, 3);

  DrCellPolicy policy(agent);
  CampaignConfig campaign;
  campaign.epsilon = 0.8;
  campaign.p = 0.8;
  campaign.env = config.env;
  campaign.env.history_cycles = config.history_cycles;
  const auto result =
      run_campaign(task, testing::default_engine(), policy, campaign);
  EXPECT_EQ(result.selector, "DR-Cell");
  EXPECT_EQ(result.cycles, 12u);
}

TEST(Campaign, OnlinePolicyLearnsDuringCampaign) {
  auto task = std::make_shared<const mcs::SensingTask>(
      testing::make_toy_task(5, 12));
  DrCellConfig config = fast_config();
  DrCellAgent agent(5, config);
  const std::size_t replay_before = agent.trainer().replay().size();
  OnlineAdaptivePolicy policy(agent, 0.1, 3);
  CampaignConfig campaign;
  campaign.epsilon = 0.8;
  campaign.p = 0.8;
  campaign.env = config.env;
  campaign.env.history_cycles = config.history_cycles;
  run_campaign(task, testing::default_engine(), policy, campaign);
  EXPECT_GT(agent.trainer().replay().size(), replay_before);
}

TEST(Transfer, TransferredAgentStartsFromSourceWeights) {
  const auto source_task = testing::make_toy_task(5, 10, 0.0, 1);
  const auto target_task = testing::make_toy_task(5, 10, 0.0, 2);
  DrCellConfig config = fast_config();
  DrCellAgent source(5, config);

  TransferOptions options;
  options.target_training_cycles = 5;
  options.fine_tune_episodes = 1;
  options.epsilon = 0.8;
  auto transferred =
      transfer_agent(source, target_task, testing::default_engine(), options);
  EXPECT_EQ(transferred.num_cells(), 5u);
  // Fine-tuned for one episode: weights exist and produce valid actions.
  const std::vector<double> state(10, 0.0);
  EXPECT_LT(transferred.greedy_action(state, {1, 1, 1, 1, 1}), 5u);
}

TEST(Transfer, ShortTrainAgentRuns) {
  const auto target_task = testing::make_toy_task(5, 10);
  TransferOptions options;
  options.target_training_cycles = 5;
  options.fine_tune_episodes = 2;
  options.epsilon = 0.8;
  auto agent = short_train_agent(fast_config(), target_task,
                                 testing::default_engine(), options);
  EXPECT_GT(agent.trainer().env_steps(), 0u);
}

TEST(Transfer, CellCountMismatchThrows) {
  DrCellConfig config = fast_config();
  DrCellAgent source(4, config);
  const auto target_task = testing::make_toy_task(5, 10);
  TransferOptions options;
  options.epsilon = 0.5;
  EXPECT_THROW(transfer_agent(source, target_task, testing::default_engine(),
                              options),
               CheckError);
}

TEST(Transfer, RequestingTooManyCyclesThrows) {
  DrCellConfig config = fast_config();
  DrCellAgent source(5, config);
  const auto target_task = testing::make_toy_task(5, 4);
  TransferOptions options;
  options.target_training_cycles = 10;  // task only has 4
  options.epsilon = 0.5;
  EXPECT_THROW(transfer_agent(source, target_task, testing::default_engine(),
                              options),
               CheckError);
}

}  // namespace
}  // namespace drcell::core
