#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "util/check.h"
#include "util/checksum.h"
#include "util/csv.h"
#include "util/rng.h"
#include "util/statistics.h"
#include "util/table.h"

namespace drcell {
namespace {

TEST(Check, PassingConditionDoesNothing) {
  EXPECT_NO_THROW(DRCELL_CHECK(1 + 1 == 2));
}

TEST(Check, FailingConditionThrowsCheckError) {
  EXPECT_THROW(DRCELL_CHECK(1 == 2), CheckError);
}

TEST(Check, MessageIsIncluded) {
  try {
    DRCELL_CHECK_MSG(false, "custom context");
    FAIL() << "should have thrown";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("custom context"),
              std::string::npos);
  }
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng rng(3);
  std::set<std::size_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, UniformIndexRejectsZero) {
  Rng rng(3);
  EXPECT_THROW(rng.uniform_index(0), CheckError);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(9);
  std::set<int> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_int(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 2);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.03);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.03);
}

TEST(Rng, NormalScaledMoments) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.normal(10.0, 2.5));
  EXPECT_NEAR(stats.mean(), 10.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 2.5, 0.1);
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 20000; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(19);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto original = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(23);
  Rng child = a.fork();
  EXPECT_NE(a.next_u64(), child.next_u64());
}

TEST(Rng, ChoiceThrowsOnEmpty) {
  Rng rng(1);
  std::vector<int> empty;
  EXPECT_THROW(rng.choice(empty), CheckError);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MatchesClosedForm) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
  EXPECT_EQ(s.min(), 1.0);
  EXPECT_EQ(s.max(), 4.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i * 0.7) * 3 + i * 0.01;
    if (i % 2 == 0) a.add(x);
    else b.add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(Statistics, MeanAndVariance) {
  const std::vector<double> xs{2.0, 4.0, 6.0};
  EXPECT_DOUBLE_EQ(mean(xs), 4.0);
  EXPECT_DOUBLE_EQ(variance(xs), 4.0);
  EXPECT_DOUBLE_EQ(stddev(xs), 2.0);
}

TEST(Statistics, QuantileInterpolates) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(median(xs), 2.5);
}

TEST(Statistics, QuantileOfEmptyThrows) {
  EXPECT_THROW(quantile({}, 0.5), CheckError);
}

TEST(Statistics, PearsonCorrelationExtremes) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> ys{2.0, 4.0, 6.0, 8.0};
  std::vector<double> neg(ys.rbegin(), ys.rend());
  EXPECT_NEAR(pearson_correlation(xs, ys), 1.0, 1e-12);
  EXPECT_NEAR(pearson_correlation(xs, neg), -1.0, 1e-12);
  const std::vector<double> constant{5.0, 5.0, 5.0, 5.0};
  EXPECT_EQ(pearson_correlation(xs, constant), 0.0);
}

TEST(Statistics, NormalCdfKnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(normal_cdf(-1.96), 0.025, 1e-3);
}

TEST(Statistics, NormalQuantileInvertsCdf) {
  for (double p : {0.01, 0.1, 0.25, 0.5, 0.9, 0.975, 0.999}) {
    EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-6) << "p=" << p;
  }
}

TEST(Statistics, NormalQuantileDomain) {
  EXPECT_THROW(normal_quantile(0.0), CheckError);
  EXPECT_THROW(normal_quantile(1.0), CheckError);
}

TEST(Statistics, StudentTCdfKnownValues) {
  // t = 0 is the median for any dof.
  EXPECT_NEAR(student_t_cdf(0.0, 1.0), 0.5, 1e-12);
  EXPECT_NEAR(student_t_cdf(0.0, 30.0), 0.5, 1e-12);
  // dof = 1 is the Cauchy distribution: CDF(t) = 1/2 + atan(t)/pi.
  EXPECT_NEAR(student_t_cdf(1.0, 1.0), 0.75, 1e-9);
  EXPECT_NEAR(student_t_cdf(-1.0, 1.0), 0.25, 1e-9);
  // Large dof converges to the standard normal.
  EXPECT_NEAR(student_t_cdf(1.96, 1e6), normal_cdf(1.96), 1e-4);
  // Symmetry.
  EXPECT_NEAR(student_t_cdf(0.7, 5.0) + student_t_cdf(-0.7, 5.0), 1.0, 1e-10);
}

TEST(Statistics, StudentTCdfMonotone) {
  double prev = 0.0;
  for (double t = -5.0; t <= 5.0; t += 0.25) {
    const double v = student_t_cdf(t, 4.0);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(Statistics, StudentTCdfHeavierTailsThanNormal) {
  // For small dof, more mass beyond 2 sigma than the normal.
  EXPECT_GT(1.0 - student_t_cdf(2.0, 3.0), 1.0 - normal_cdf(2.0));
}

TEST(Statistics, StudentTCdfRejectsBadDof) {
  EXPECT_THROW(student_t_cdf(1.0, 0.0), CheckError);
}

TEST(Statistics, LogGammaMatchesFactorials) {
  // Γ(n) = (n-1)!
  EXPECT_NEAR(log_gamma(1.0), 0.0, 1e-10);
  EXPECT_NEAR(log_gamma(5.0), std::log(24.0), 1e-9);
  EXPECT_NEAR(log_gamma(11.0), std::log(3628800.0), 1e-8);
  // Γ(1/2) = sqrt(pi)
  EXPECT_NEAR(log_gamma(0.5), 0.5 * std::log(3.14159265358979), 1e-9);
}

TEST(Statistics, IncompleteBetaUniformCase) {
  // Beta(1,1) is uniform: I_x(1,1) = x.
  for (double x : {0.0, 0.2, 0.5, 0.9, 1.0})
    EXPECT_NEAR(incomplete_beta(1.0, 1.0, x), x, 1e-10);
}

TEST(Statistics, IncompleteBetaSymmetry) {
  // I_x(a,b) = 1 - I_{1-x}(b,a).
  EXPECT_NEAR(incomplete_beta(2.5, 4.0, 0.3),
              1.0 - incomplete_beta(4.0, 2.5, 0.7), 1e-10);
}

TEST(Statistics, IncompleteBetaKnownValue) {
  // Beta(2,2) CDF: 3x² - 2x³.
  const double x = 0.4;
  EXPECT_NEAR(incomplete_beta(2.0, 2.0, x), 3 * x * x - 2 * x * x * x, 1e-10);
}

TEST(Csv, WriteEscapesSpecialCharacters) {
  std::ostringstream out;
  CsvWriter w(out);
  w.write_row(std::vector<std::string>{"plain", "with,comma", "with\"quote",
                                       "multi\nline"});
  EXPECT_EQ(out.str(),
            "plain,\"with,comma\",\"with\"\"quote\",\"multi\nline\"\n");
}

TEST(Csv, RoundTripPreservesFields) {
  std::ostringstream out;
  CsvWriter w(out);
  const std::vector<std::string> row{"a,b", "c\"d", "e\nf", "", "plain"};
  w.write_row(row);
  const auto rows = CsvReader::parse(out.str());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], row);
}

TEST(Csv, ParsesMultipleRowsAndCrlf) {
  const auto rows = CsvReader::parse("a,b\r\nc,d\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"c", "d"}));
}

TEST(Csv, LastLineWithoutNewline) {
  const auto rows = CsvReader::parse("a,b\nc,d");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1], (std::vector<std::string>{"c", "d"}));
}

TEST(Csv, UnterminatedQuoteThrows) {
  EXPECT_THROW(CsvReader::parse("\"open"), CheckError);
}

TEST(Csv, NumericRowRoundTrip) {
  std::ostringstream out;
  CsvWriter w(out);
  w.write_row(std::vector<double>{1.5, -2.25, 1e-17});
  const auto rows = CsvReader::parse(out.str());
  ASSERT_EQ(rows.size(), 1u);
  const auto vals = parse_double_row(rows[0]);
  EXPECT_DOUBLE_EQ(vals[0], 1.5);
  EXPECT_DOUBLE_EQ(vals[1], -2.25);
  EXPECT_DOUBLE_EQ(vals[2], 1e-17);
}

TEST(Csv, MalformedNumberThrows) {
  EXPECT_THROW(parse_double_row({"12abc"}), CheckError);
  EXPECT_THROW(parse_double_row({""}), CheckError);
}

TEST(Table, RendersAlignedColumns) {
  TablePrinter t({"method", "cells"});
  t.add_row({"DR-Cell", "12.84"});
  t.add_row("QBC", {13.79}, 2);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("DR-Cell"), std::string::npos);
  EXPECT_NE(s.find("13.79"), std::string::npos);
  // Header separator present.
  EXPECT_NE(s.find("|---"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), CheckError);
}

TEST(Table, FormatDoublePrecision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(2.0, 0), "2");
}

TEST(Checksum, Crc32MatchesStandardCheckValue) {
  // The IEEE 802.3 check value every CRC-32 implementation must reproduce.
  const char msg[] = "123456789";
  EXPECT_EQ(util::crc32(msg, 9), 0xCBF43926u);
  EXPECT_EQ(util::crc32(nullptr, 0), 0u);
}

TEST(Checksum, Crc32ChainsPartialComputations) {
  const std::string payload = "the DRCK v2 checkpoint payload";
  const std::uint32_t whole = util::crc32(payload.data(), payload.size());
  for (std::size_t split : {std::size_t{0}, std::size_t{7}, payload.size()}) {
    const std::uint32_t head = util::crc32(payload.data(), split);
    EXPECT_EQ(util::crc32(payload.data() + split, payload.size() - split,
                          head),
              whole);
  }
}

TEST(Checksum, Crc32SeesEveryBitFlip) {
  std::string payload = "sensitive bytes";
  const std::uint32_t clean = util::crc32(payload.data(), payload.size());
  for (std::size_t bit : {std::size_t{0}, std::size_t{37},
                          8 * payload.size() - 1}) {
    payload[bit / 8] = static_cast<char>(payload[bit / 8] ^ (1u << (bit % 8)));
    EXPECT_NE(util::crc32(payload.data(), payload.size()), clean);
    payload[bit / 8] = static_cast<char>(payload[bit / 8] ^ (1u << (bit % 8)));
  }
}

}  // namespace
}  // namespace drcell
