// Registry semantics of the compute-backend layer (linalg/backend.h) plus
// the native-pin regression: the registry's "native" backend must stay
// bit-identical to the pre-registry kernels, so routing Matrix /
// SparseRowMatrix / Lstm through the dispatch layer changed no computed
// value.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <memory>
#include <string>
#include <vector>

#include "linalg/backend.h"
#include "linalg/kernels.h"
#include "linalg/matrix.h"
#include "linalg/sparse_matrix.h"
#include "util/check.h"
#include "util/rng.h"

namespace drcell {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng,
                     double zero_prob = 0.3) {
  Matrix m(rows, cols);
  for (double& v : m.data()) v = rng.bernoulli(zero_prob) ? 0.0 : rng.normal();
  return m;
}

class BackendRegistryTest : public ::testing::Test {
 protected:
  // Every test in this file runs under native (the pin tests need it) and
  // restores whatever backend the suite was running under — the CI matrix
  // runs the whole binary with DRCELL_BACKEND=reference, and these tests
  // must not leak a different choice into later tests.
  void SetUp() override {
    prev_ = BackendRegistry::active().name();
    BackendRegistry::set_active("native");
  }
  void TearDown() override { BackendRegistry::set_active(prev_); }

 private:
  std::string prev_;
};

TEST_F(BackendRegistryTest, BuiltInBackendsAreRegistered) {
  const auto names = BackendRegistry::names();
  EXPECT_NE(std::find(names.begin(), names.end(), "native"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "reference"), names.end());
  ASSERT_NE(BackendRegistry::find("native"), nullptr);
  ASSERT_NE(BackendRegistry::find("reference"), nullptr);
  EXPECT_TRUE(BackendRegistry::find("native")->exact_contract());
  EXPECT_TRUE(BackendRegistry::find("reference")->exact_contract());
  EXPECT_EQ(BackendRegistry::find("native")->tolerance_vs_native(), 0.0);
  EXPECT_EQ(BackendRegistry::find("no-such-backend"), nullptr);
}

TEST_F(BackendRegistryTest, SetActiveSwitchesAndUnknownNameThrows) {
  BackendRegistry::set_active("reference");
  EXPECT_STREQ(BackendRegistry::active().name(), "reference");
  BackendRegistry::set_active("native");
  EXPECT_STREQ(BackendRegistry::active().name(), "native");
  EXPECT_THROW(BackendRegistry::set_active("no-such-backend"),
               CheckError);
}

TEST_F(BackendRegistryTest, DefaultBackendNameIsCompileTimeDefault) {
  // The build pins DRCELL_DEFAULT_BACKEND; this repo's default is native.
  EXPECT_STREQ(BackendRegistry::default_backend_name(), "native");
}

TEST_F(BackendRegistryTest, RegisterCustomBackendAndDuplicateNameThrows) {
  // A user-supplied backend is selectable by name; re-registering a taken
  // name fails loudly.
  class Forwarding final : public ComputeBackend {
   public:
    explicit Forwarding(const char* name) : name_(name) {}
    const char* name() const override { return name_; }
    bool exact_contract() const override { return true; }
    double tolerance_vs_native() const override { return 0.0; }
    void matmul_into(const Matrix& a, const Matrix& b,
                     Matrix& out) const override {
      kernels::matmul_blocked_into(a, b, out);
    }
    void matmul_transposed_other_into(const Matrix& a, const Matrix& b,
                                      Matrix& out) const override {
      kernels::matmul_transposed_other_into(a, b, out);
    }
    void matmul_transposed_self_add(const Matrix& a, const Matrix& b,
                                    Matrix& out) const override {
      kernels::matmul_transposed_self_add(a, b, out);
    }
    void sparse_matmul_into(const SparseRowMatrix& a, const Matrix& b,
                            Matrix& out) const override {
      kernels::sparse_gather_matmul_into(a, b, out);
    }
    void sparse_matmul_transposed_self_add(const SparseRowMatrix& a,
                                           const Matrix& b,
                                           Matrix& out) const override {
      kernels::sparse_gather_transposed_self_add(a, b, out);
    }
    void lstm_gate_forward(const Matrix& z, const Matrix* c_prev,
                           Matrix& gates, Matrix& c, Matrix& tanh_c,
                           Matrix& h) const override {
      BackendRegistry::find("native")->lstm_gate_forward(z, c_prev, gates, c,
                                                         tanh_c, h);
    }
    void lstm_gate_backward(const Matrix& gates, const Matrix& tanh_c,
                            const Matrix* c_prev, const Matrix& dh,
                            const Matrix& dc_next, Matrix& dz,
                            Matrix& dc_prev) const override {
      BackendRegistry::find("native")->lstm_gate_backward(
          gates, tanh_c, c_prev, dh, dc_next, dz, dc_prev);
    }

   private:
    const char* name_;
  };

  if (BackendRegistry::find("custom-for-test") == nullptr)
    BackendRegistry::register_backend(
        std::make_unique<Forwarding>("custom-for-test"));
  BackendRegistry::set_active("custom-for-test");
  EXPECT_STREQ(BackendRegistry::active().name(), "custom-for-test");

  Rng rng(3);
  const Matrix a = random_matrix(5, 7, rng);
  const Matrix b = random_matrix(7, 4, rng, 0.0);
  Matrix through_registry;
  a.matmul_into(b, through_registry);
  BackendRegistry::set_active("native");
  Matrix through_native;
  a.matmul_into(b, through_native);
  EXPECT_EQ(through_registry, through_native);

  EXPECT_THROW(
      BackendRegistry::register_backend(std::make_unique<Forwarding>("native")),
      CheckError);
}

#ifdef DRCELL_ENABLE_REFERENCE_KERNELS
TEST_F(BackendRegistryTest, NativeMatmulPinnedToPreRegistrySeedKernel) {
  // The native-pin regression: the registry-dispatched matmul must stay
  // bit-identical to matmul_unblocked, the retained seed kernel that never
  // went through the backend layer. If a refactor of the dispatch path or
  // the blocked kernel perturbs any addition, this trips.
  Rng rng(17);
  for (const auto& s : {std::array<std::size_t, 3>{1, 1, 1},
                        std::array<std::size_t, 3>{9, 33, 12},
                        std::array<std::size_t, 3>{40, 64, 130}}) {
    const Matrix a = random_matrix(s[0], s[1], rng);
    const Matrix b = random_matrix(s[1], s[2], rng, 0.0);
    EXPECT_EQ(a.matmul(b), a.matmul_unblocked(b))
        << s[0] << "x" << s[1] << "x" << s[2];
  }
}
#endif

TEST_F(BackendRegistryTest, DirectKernelCallsMatchDispatchedMethods) {
  // kernels:: free functions (what the native backend forwards to) vs the
  // Matrix/SparseRowMatrix methods under the native backend: the dispatch
  // layer must add no arithmetic of its own.
  Rng rng(19);
  const Matrix a = random_matrix(11, 23, rng);
  const Matrix b = random_matrix(23, 9, rng, 0.0);

  Matrix via_method;
  a.matmul_into(b, via_method);
  Matrix via_kernel(11, 9);
  kernels::matmul_blocked_into(a, b, via_kernel);
  EXPECT_EQ(via_method, via_kernel);

  const Matrix bt = random_matrix(9, 23, rng, 0.0);
  Matrix t_method;
  a.matmul_transposed_other_into(bt, t_method);
  Matrix t_kernel(11, 9);
  kernels::matmul_transposed_other_into(a, bt, t_kernel);
  EXPECT_EQ(t_method, t_kernel);

  const Matrix g = random_matrix(11, 9, rng, 0.0);
  Matrix acc_method = random_matrix(23, 9, rng, 0.0);
  Matrix acc_kernel = acc_method;
  a.matmul_transposed_self_add(g, acc_method);
  kernels::matmul_transposed_self_add(a, g, acc_kernel);
  EXPECT_EQ(acc_method, acc_kernel);

  SparseRowMatrix sa(11, 23);
  for (std::size_t r = 0; r < 11; ++r)
    for (std::size_t c = 0; c < 23; ++c)
      if (a(r, c) != 0.0) sa.append(r, c, a(r, c));
  Matrix s_method;
  sa.matmul_into(b, s_method);
  Matrix s_kernel(11, 9);
  kernels::sparse_gather_matmul_into(sa, b, s_kernel);
  EXPECT_EQ(s_method, s_kernel);
  EXPECT_EQ(s_method, via_method);  // gather == dense under native
}

}  // namespace
}  // namespace drcell
