// Warm-start behaviour of the environment: the fully-observed
// preliminary-study block must be visible to the inference window and must
// measurably improve early-cycle inference (the reason the paper's
// organiser runs a preliminary study at all).
#include <gtest/gtest.h>

#include <memory>

#include "mcs/environment.h"
#include "test_helpers.h"

namespace drcell::mcs {
namespace {

struct WarmStartFixture : public ::testing::Test {
  WarmStartFixture() : full(testing::make_gp_task(3, 60, 21)) {}

  SparseMcsEnvironment make_env(std::size_t warm_cycles,
                                std::size_t window = 12,
                                std::size_t min_obs = 3) {
    auto task = std::make_shared<const SensingTask>(
        full.slice_cycles(warm_cycles, 60));
    EnvOptions options;
    options.inference_window = window;
    options.min_observations = min_obs;
    if (warm_cycles > 0)
      options.warm_start = full.slice_cycles(0, warm_cycles).ground_truth();
    return SparseMcsEnvironment(
        std::move(task), testing::default_engine(),
        std::make_shared<GroundTruthGate>(0.0), options);
  }

  SensingTask full;
};

TEST_F(WarmStartFixture, WindowIncludesWarmColumnsAtCycleZero) {
  auto env = make_env(/*warm_cycles=*/12, /*window=*/8);
  // Window: 7 warm columns + the (empty) current one.
  EXPECT_EQ(env.observation_window().cols(), 8u);
  EXPECT_EQ(env.current_window_col(), 7u);
  EXPECT_EQ(env.window_start(), 0u);
  for (std::size_t c = 0; c < 7; ++c)
    EXPECT_EQ(env.observation_window().observed_count_in_col(c), 9u)
        << "warm column " << c << " should be dense";
  EXPECT_EQ(env.observation_window().observed_count_in_col(7), 0u);
}

TEST_F(WarmStartFixture, WarmColumnsCarryGroundTruthValues) {
  auto env = make_env(/*warm_cycles=*/12, /*window=*/4);
  // Window covers virtual cycles -3..0; warm col h+v = 12-3 .. 12-1.
  const auto& window = env.observation_window();
  for (std::size_t c = 0; c < 3; ++c)
    for (std::size_t cell = 0; cell < 9; ++cell)
      EXPECT_EQ(window.value(cell, c), full.truth(cell, 9 + c));
}

TEST_F(WarmStartFixture, WarmBlockSlidesOutAsCyclesAdvance) {
  auto env = make_env(/*warm_cycles=*/2, /*window=*/4, /*min_obs=*/1);
  // Finish three cycles (huge epsilon is not available here: the gate is
  // exact with epsilon 0, so sense everything to complete deterministically).
  for (int cycle = 0; cycle < 3; ++cycle)
    for (std::size_t cell = 0; cell < 9; ++cell) env.step(cell);
  // Now at cycle 3; window of 4 covers cycles 0..3 — no warm columns left.
  EXPECT_EQ(env.current_cycle(), 3u);
  EXPECT_EQ(env.window_start(), 0u);
  EXPECT_EQ(env.current_window_col(), 3u);
  EXPECT_EQ(env.observation_window().cols(), 4u);
}

TEST_F(WarmStartFixture, ShorterWarmBlockThanWindowIsClipped) {
  auto env = make_env(/*warm_cycles=*/3, /*window=*/10);
  // Only 3 warm columns exist; window is clipped to 3 + current.
  EXPECT_EQ(env.observation_window().cols(), 4u);
  EXPECT_EQ(env.current_window_col(), 3u);
}

TEST_F(WarmStartFixture, WarmStartImprovesEarlyInference) {
  // Same deployment cycles with and without the preliminary block; compare
  // the true error of the first completed cycle at an equal budget.
  auto run_first_cycle_error = [&](std::size_t warm_cycles) {
    auto task = std::make_shared<const SensingTask>(
        full.slice_cycles(12, 60));
    EnvOptions options;
    options.inference_window = 12;
    options.min_observations = 1;
    options.max_selections_per_cycle = 3;
    if (warm_cycles > 0)
      options.warm_start =
          full.slice_cycles(12 - warm_cycles, 12).ground_truth();
    SparseMcsEnvironment env(task, testing::default_engine(),
                             std::make_shared<GroundTruthGate>(0.0), options);
    StepResult last;
    for (std::size_t cell : {0u, 4u, 8u}) last = env.step(cell);
    return last.true_cycle_error;
  };
  // Average over the deterministic single comparison: warm must not hurt
  // and should usually help substantially on the first cycle.
  EXPECT_LE(run_first_cycle_error(11), run_first_cycle_error(0) + 1e-9);
}

TEST_F(WarmStartFixture, WrongWarmStartShapeThrows) {
  auto task =
      std::make_shared<const SensingTask>(full.slice_cycles(12, 60));
  EnvOptions options;
  options.warm_start = Matrix(4, 12);  // task has 9 cells
  EXPECT_THROW(SparseMcsEnvironment(task, testing::default_engine(),
                                    std::make_shared<GroundTruthGate>(0.5),
                                    options),
               CheckError);
}

TEST_F(WarmStartFixture, NonFiniteWarmStartThrows) {
  auto task =
      std::make_shared<const SensingTask>(full.slice_cycles(12, 60));
  EnvOptions options;
  options.warm_start = Matrix(9, 12);
  options.warm_start(3, 3) = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(SparseMcsEnvironment(task, testing::default_engine(),
                                    std::make_shared<GroundTruthGate>(0.5),
                                    options),
               CheckError);
}

TEST_F(WarmStartFixture, ResetKeepsWarmStart) {
  auto env = make_env(/*warm_cycles=*/12, /*window=*/8);
  for (std::size_t cell = 0; cell < 9; ++cell) env.step(cell);
  env.reset();
  EXPECT_EQ(env.observation_window().cols(), 8u);
  EXPECT_EQ(env.observation_window().observed_count_in_col(0), 9u);
}

}  // namespace
}  // namespace drcell::mcs
