// Conformance suite instantiation for the "reference" backend (the retained
// naive/std:: kernels, always built).
#define DRCELL_CONFORMANCE_BACKEND "reference"
#include "backend_conformance.inc.cc"
