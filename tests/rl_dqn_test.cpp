#include <gtest/gtest.h>

#include <cmath>

#include "nn/loss.h"
#include "rl/dqn_trainer.h"
#include "rl/drqn_qnetwork.h"
#include "rl/mlp_qnetwork.h"

namespace drcell::rl {
namespace {

std::vector<Matrix> one_state_sequence(std::size_t steps, std::size_t cells,
                                       const std::vector<double>& flat) {
  std::vector<Matrix> seq(steps, Matrix(1, cells));
  for (std::size_t t = 0; t < steps; ++t)
    for (std::size_t c = 0; c < cells; ++c) seq[t](0, c) = flat[t * cells + c];
  return seq;
}

TEST(MlpQNetwork, OutputShape) {
  Rng rng(1);
  MlpQNetwork net(5, 2, {16}, rng);
  std::vector<Matrix> seq(2, Matrix(3, 5));
  const Matrix q = net.forward(seq);
  EXPECT_EQ(q.rows(), 3u);
  EXPECT_EQ(q.cols(), 5u);
  EXPECT_EQ(net.num_actions(), 5u);
  EXPECT_EQ(net.history_steps(), 2u);
}

TEST(MlpQNetwork, WrongSequenceLengthThrows) {
  Rng rng(1);
  MlpQNetwork net(5, 2, {16}, rng);
  std::vector<Matrix> seq(3, Matrix(1, 5));
  EXPECT_THROW(net.forward(seq), CheckError);
}

TEST(MlpQNetwork, CloneHasSameShapeFreshWeights) {
  Rng rng(2);
  MlpQNetwork net(4, 2, {8}, rng);
  auto clone = net.clone_architecture(rng);
  EXPECT_EQ(clone->num_actions(), 4u);
  EXPECT_EQ(clone->parameters().size(), net.parameters().size());
  // Different init.
  EXPECT_NE(net.parameters()[0]->value, clone->parameters()[0]->value);
}

TEST(DrqnQNetwork, OutputShapeAndName) {
  Rng rng(3);
  DrqnQNetwork net(6, 3, 12, 0, rng);
  std::vector<Matrix> seq(3, Matrix(2, 6));
  const Matrix q = net.forward(seq);
  EXPECT_EQ(q.rows(), 2u);
  EXPECT_EQ(q.cols(), 6u);
  EXPECT_EQ(net.name(), "drqn-lstm");
  EXPECT_EQ(net.lstm_hidden(), 12u);
}

TEST(DrqnQNetwork, HiddenHeadAddsParameters) {
  Rng rng(4);
  DrqnQNetwork direct(4, 2, 8, 0, rng);
  DrqnQNetwork with_head(4, 2, 8, 16, rng);
  EXPECT_EQ(direct.parameters().size(), 5u);     // lstm(3) + dense(2)
  EXPECT_EQ(with_head.parameters().size(), 7u);  // lstm(3) + 2 dense layers
}

TEST(DrqnQNetwork, HistoryChangesOutput) {
  // A recurrent Q-network must distinguish state windows that differ only
  // in the *older* slice.
  Rng rng(5);
  DrqnQNetwork net(3, 2, 8, 0, rng);
  std::vector<double> flat_a{1, 0, 0, 0, 0, 1};
  std::vector<double> flat_b{0, 1, 0, 0, 0, 1};
  const Matrix qa = net.forward(one_state_sequence(2, 3, flat_a));
  const Matrix qb = net.forward(one_state_sequence(2, 3, flat_b));
  EXPECT_GT((qa - qb).max_abs(), 1e-9);
}

TEST(DrqnQNetwork, BackwardProducesFiniteGradients) {
  Rng rng(6);
  DrqnQNetwork net(4, 2, 8, 0, rng);
  std::vector<Matrix> seq(2, Matrix(3, 4));
  for (auto& m : seq)
    for (double& v : m.data()) v = rng.bernoulli(0.5) ? 1.0 : 0.0;
  const Matrix q = net.forward(seq);
  Matrix grad(q.rows(), q.cols(), 0.1);
  for (auto* p : net.parameters()) p->zero_grad();
  net.backward(grad);
  for (auto* p : net.parameters()) {
    EXPECT_FALSE(p->grad.has_non_finite());
    EXPECT_GT(p->grad.max_abs(), 0.0);
  }
}

DqnOptions fast_options() {
  DqnOptions opt;
  opt.batch_size = 8;
  opt.min_replay = 8;
  opt.replay_capacity = 256;
  opt.target_sync_interval = 10;
  opt.learning_rate = 5e-3;
  opt.epsilon = EpsilonSchedule(1.0, 0.05, 100);
  return opt;
}

TEST(DqnTrainer, EpsilonDecaysWithEnvSteps) {
  Rng rng(7);
  auto net = std::make_unique<MlpQNetwork>(3, 1, std::vector<std::size_t>{8},
                                           rng);
  DqnTrainer trainer(std::move(net), fast_options(), 1);
  EXPECT_DOUBLE_EQ(trainer.current_epsilon(), 1.0);
  const std::vector<double> s{0, 0, 0};
  for (int i = 0; i < 50; ++i) trainer.select_action(s, {1, 1, 1});
  EXPECT_LT(trainer.current_epsilon(), 1.0);
  EXPECT_EQ(trainer.env_steps(), 50u);
}

TEST(DqnTrainer, GreedyRespectsMask) {
  Rng rng(8);
  auto net = std::make_unique<MlpQNetwork>(4, 1, std::vector<std::size_t>{8},
                                           rng);
  DqnTrainer trainer(std::move(net), fast_options(), 2);
  const std::vector<double> s{0, 0, 0, 0};
  for (int i = 0; i < 20; ++i) {
    const auto a = trainer.greedy_action(s, {0, 1, 0, 1});
    EXPECT_TRUE(a == 1 || a == 3);
  }
}

TEST(DqnTrainer, SelectActionAlwaysUnmasked) {
  Rng rng(9);
  auto net = std::make_unique<MlpQNetwork>(5, 1, std::vector<std::size_t>{8},
                                           rng);
  DqnTrainer trainer(std::move(net), fast_options(), 3);
  const std::vector<double> s{0, 0, 0, 0, 0};
  const std::vector<std::uint8_t> mask{0, 1, 1, 0, 0};
  for (int i = 0; i < 100; ++i) {
    const auto a = trainer.select_action(s, mask);
    EXPECT_TRUE(a == 1 || a == 2);
  }
}

TEST(DqnTrainer, TrainStepIsNoOpBelowWarmup) {
  Rng rng(10);
  auto net = std::make_unique<MlpQNetwork>(3, 1, std::vector<std::size_t>{8},
                                           rng);
  DqnTrainer trainer(std::move(net), fast_options(), 4);
  EXPECT_EQ(trainer.train_step(), 0.0);
  EXPECT_EQ(trainer.train_steps(), 0u);
}

TEST(DqnTrainer, ObserveValidatesShapes) {
  Rng rng(11);
  auto net = std::make_unique<MlpQNetwork>(3, 1, std::vector<std::size_t>{8},
                                           rng);
  DqnTrainer trainer(std::move(net), fast_options(), 5);
  Experience bad;
  bad.state = {0, 0};  // wrong size
  bad.action = 0;
  bad.next_state = {0, 0, 0};
  bad.next_mask = {1, 1, 1};
  EXPECT_THROW(trainer.observe(std::move(bad)), CheckError);
}

/// Contextual bandit: cells 0..2, reward 1 when the action matches the cell
/// flagged in the (single-step) state, else 0. Q-learning with gamma = 0
/// must learn the identity policy.
template <typename NetT>
void train_bandit_and_expect_identity(std::uint64_t seed) {
  Rng rng(seed);
  std::unique_ptr<QNetwork> net;
  if constexpr (std::is_same_v<NetT, MlpQNetwork>) {
    net = std::make_unique<MlpQNetwork>(3, 1, std::vector<std::size_t>{16},
                                        rng);
  } else {
    net = std::make_unique<NetT>(3, 1, 16, 0, rng);
  }
  DqnOptions opt = fast_options();
  opt.gamma = 0.0;
  opt.learning_rate = 1e-2;
  opt.epsilon = EpsilonSchedule(1.0, 0.1, 300);
  DqnTrainer trainer(std::move(net), opt, seed + 1);

  Rng env_rng(seed + 2);
  for (int step = 0; step < 600; ++step) {
    std::vector<double> state(3, 0.0);
    const std::size_t ctx = env_rng.uniform_index(3);
    state[ctx] = 1.0;
    const auto a = trainer.select_action(state, {1, 1, 1});
    Experience e;
    e.state = state;
    e.action = a;
    e.reward = (a == ctx) ? 1.0 : 0.0;
    e.next_state = {0, 0, 0};
    e.next_mask = {1, 1, 1};
    e.terminal = true;
    trainer.observe(std::move(e));
    trainer.train_step();
  }
  for (std::size_t ctx = 0; ctx < 3; ++ctx) {
    std::vector<double> state(3, 0.0);
    state[ctx] = 1.0;
    EXPECT_EQ(trainer.greedy_action(state, {1, 1, 1}), ctx)
        << "context " << ctx;
  }
}

TEST(DqnTrainer, MlpLearnsContextualBandit) {
  train_bandit_and_expect_identity<MlpQNetwork>(21);
}

TEST(DqnTrainer, DrqnLearnsContextualBandit) {
  train_bandit_and_expect_identity<DrqnQNetwork>(22);
}

TEST(DqnTrainer, BootstrapRespectsNextMask) {
  // Craft a situation where the best next action is masked; the TD target
  // must use the best *allowed* action instead.
  Rng rng(23);
  auto net = std::make_unique<MlpQNetwork>(2, 1, std::vector<std::size_t>{8},
                                           rng);
  DqnOptions opt = fast_options();
  opt.gamma = 1.0;
  opt.batch_size = 4;
  opt.min_replay = 4;
  DqnTrainer trainer(std::move(net), opt, 24);

  // Fill replay with transitions whose next_mask allows only action 1.
  for (int i = 0; i < 8; ++i) {
    Experience e;
    e.state = {1.0, 0.0};
    e.action = 0;
    e.reward = 0.0;
    e.next_state = {0.0, 1.0};
    e.next_mask = {0, 1};
    e.terminal = false;
    trainer.observe(std::move(e));
  }
  // Must not throw and must produce finite loss.
  const double loss = trainer.train_step();
  EXPECT_TRUE(std::isfinite(loss));
}

TEST(DqnTrainer, TerminalTransitionsDoNotBootstrap) {
  // gamma = 1 with huge Q-values at next state: if the terminal flag is
  // honoured, targets equal the rewards and the loss stays moderate.
  Rng rng(25);
  auto net = std::make_unique<MlpQNetwork>(2, 1, std::vector<std::size_t>{8},
                                           rng);
  DqnOptions opt = fast_options();
  opt.gamma = 1.0;
  DqnTrainer trainer(std::move(net), opt, 26);
  for (int i = 0; i < 16; ++i) {
    Experience e;
    e.state = {1.0, 0.0};
    e.action = 0;
    e.reward = 0.5;
    e.next_state = {0.0, 1.0};
    e.next_mask = {1, 1};
    e.terminal = true;
    trainer.observe(std::move(e));
  }
  for (int i = 0; i < 200; ++i) trainer.train_step();
  const auto q = trainer.q_values({1.0, 0.0});
  EXPECT_NEAR(q[0], 0.5, 0.05);
}

TEST(DqnTrainer, DoubleDqnOptionRuns) {
  Rng rng(27);
  auto net = std::make_unique<MlpQNetwork>(3, 1, std::vector<std::size_t>{8},
                                           rng);
  DqnOptions opt = fast_options();
  opt.double_dqn = true;
  DqnTrainer trainer(std::move(net), opt, 28);
  for (int i = 0; i < 16; ++i) {
    Experience e;
    e.state = {1, 0, 0};
    e.action = i % 3;
    e.reward = 1.0;
    e.next_state = {0, 1, 0};
    e.next_mask = {1, 1, 1};
    e.terminal = false;
    trainer.observe(std::move(e));
  }
  const double loss = trainer.train_step();
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_GT(trainer.train_steps(), 0u);
}

TEST(DqnTrainer, TargetSyncMakesNetworksAgree) {
  Rng rng(29);
  auto net = std::make_unique<MlpQNetwork>(2, 1, std::vector<std::size_t>{8},
                                           rng);
  DqnTrainer trainer(std::move(net), fast_options(), 30);
  // After construction the target is synchronised; train a few steps, then
  // q-values from the online network change but sync_target realigns them.
  for (int i = 0; i < 16; ++i) {
    Experience e;
    e.state = {1.0, 0.0};
    e.action = 0;
    e.reward = 2.0;
    e.next_state = {0.0, 1.0};
    e.next_mask = {1, 1};
    e.terminal = true;
    trainer.observe(std::move(e));
  }
  for (int i = 0; i < 30; ++i) trainer.train_step();
  EXPECT_NO_THROW(trainer.sync_target());
}

}  // namespace
}  // namespace drcell::rl
