// Conformance suite instantiation for the optional "blas" backend (only
// compiled with -DDRCELL_WITH_BLAS; a tolerance backend, not bit-exact).
#define DRCELL_CONFORMANCE_BACKEND "blas"
#include "backend_conformance.inc.cc"
