// The batched-training determinism contract (nn/layer.h, rl/qnetwork.h):
// batch-major forwards/backwards through nn/ and rl/ must be bit-identical
// to the retained per-sample paths — row b of a batched output equals a
// B=1 forward of sample b, batched input gradients equal per-sample input
// gradients, and parameter gradients accumulate in sample-major order so a
// whole batched train step replays the per-sample reference step addition
// for addition, for every batch size and thread-pool worker count.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/gradient_check.h"
#include "nn/loss.h"
#include "nn/lstm.h"
#include "nn/sequential.h"
#include "rl/dqn_trainer.h"
#include "rl/drqn_qnetwork.h"
#include "rl/mlp_qnetwork.h"
#include "util/thread_pool.h"

namespace drcell {
namespace {

/// Timestep-major batch: `steps` matrices of [batch x cells], ~30% one-hot
/// like the selection-vector states plus dense noise rows to exercise the
/// non-sparse kernels too.
std::vector<Matrix> random_batch(std::size_t steps, std::size_t batch,
                                 std::size_t cells, Rng& rng) {
  std::vector<Matrix> seq(steps, Matrix(batch, cells));
  for (auto& m : seq)
    for (std::size_t b = 0; b < batch; ++b)
      for (std::size_t c = 0; c < cells; ++c)
        m(b, c) = rng.bernoulli(0.3) ? 1.0 : 0.2 * rng.normal();
  return seq;
}

/// Extracts sample b of a timestep-major batch as its own B=1 batch.
std::vector<Matrix> slice_sample(const std::vector<Matrix>& batch_seq,
                                 std::size_t b) {
  std::vector<Matrix> one;
  for (const Matrix& step : batch_seq) {
    Matrix m(1, step.cols());
    for (std::size_t c = 0; c < step.cols(); ++c) m(0, c) = step(b, c);
    one.push_back(std::move(m));
  }
  return one;
}

Matrix slice_row(const Matrix& m, std::size_t r) {
  Matrix out(1, m.cols());
  for (std::size_t c = 0; c < m.cols(); ++c) out(0, c) = m(r, c);
  return out;
}

template <typename NetFn>
void expect_forward_batch_matches_per_sample(NetFn&& make_net,
                                             std::size_t cells,
                                             std::size_t steps) {
  for (std::size_t batch : {std::size_t{1}, std::size_t{7}, std::size_t{32}}) {
    auto net = make_net();
    Rng data_rng(100 + batch);
    const auto seq = random_batch(steps, batch, cells, data_rng);
    const Matrix q_batched = net->forward_batch(seq);
    for (std::size_t b = 0; b < batch; ++b) {
      const Matrix q_single = net->forward(slice_sample(seq, b));
      EXPECT_EQ(slice_row(q_batched, b), q_single)
          << "batch=" << batch << " sample=" << b;
    }
  }
}

TEST(BatchedForward, MlpRowsMatchPerSampleBitIdentically) {
  expect_forward_batch_matches_per_sample(
      [] {
        Rng rng(1);
        return std::make_unique<rl::MlpQNetwork>(
            9, 3, std::vector<std::size_t>{16, 8}, rng);
      },
      9, 3);
}

TEST(BatchedForward, DrqnRowsMatchPerSampleBitIdentically) {
  expect_forward_batch_matches_per_sample(
      [] {
        Rng rng(2);
        return std::make_unique<rl::DrqnQNetwork>(9, 3, 12, 6, rng);
      },
      9, 3);
}

TEST(BatchedBackward, SequentialGradsMatchPerSampleLoopBitIdentically) {
  // One batched forward/backward vs a per-sample loop through an identical
  // twin network: input gradients row for row, parameter gradients addition
  // for addition.
  for (std::size_t batch : {std::size_t{1}, std::size_t{7}, std::size_t{32}}) {
    const auto build = [] {
      Rng rng(3);
      nn::Sequential net;
      net.emplace<nn::Dense>(6, 10, rng);
      net.emplace<nn::ReLU>();
      net.emplace<nn::Dense>(10, 4, rng);
      return net;
    };
    nn::Sequential batched = build();
    nn::Sequential per_sample = build();

    Rng data_rng(200 + batch);
    Matrix x(batch, 6);
    Matrix grad(batch, 4);
    for (double& v : x.data()) v = data_rng.normal();
    for (double& v : grad.data()) v = data_rng.normal();

    for (auto* p : batched.parameters()) p->zero_grad();
    batched.forward(x);
    const Matrix dx_batched = batched.backward(grad);

    for (auto* p : per_sample.parameters()) p->zero_grad();
    for (std::size_t b = 0; b < batch; ++b) {
      per_sample.forward(slice_row(x, b));
      const Matrix dx_single = per_sample.backward(slice_row(grad, b));
      EXPECT_EQ(slice_row(dx_batched, b), dx_single)
          << "batch=" << batch << " sample=" << b;
    }
    const auto pa = batched.parameters();
    const auto pb = per_sample.parameters();
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t i = 0; i < pa.size(); ++i)
      EXPECT_EQ(pa[i]->grad, pb[i]->grad) << "param " << i
                                          << " batch=" << batch;
  }
}

TEST(BatchedBackward, LstmGradsMatchPerSampleLoopBitIdentically) {
  for (std::size_t batch : {std::size_t{1}, std::size_t{7}, std::size_t{32}}) {
    const auto build = [] {
      Rng rng(4);
      return nn::Lstm(5, 7, rng);
    };
    nn::Lstm batched = build();
    nn::Lstm per_sample = build();

    Rng data_rng(300 + batch);
    const auto seq = random_batch(4, batch, 5, data_rng);
    Matrix grad_h(batch, 7);
    for (double& v : grad_h.data()) v = data_rng.normal();

    for (auto* p : batched.parameters()) p->zero_grad();
    batched.forward(seq);
    const auto grad_x_batched = batched.backward(grad_h);
    ASSERT_EQ(grad_x_batched.size(), 4u);

    for (auto* p : per_sample.parameters()) p->zero_grad();
    for (std::size_t b = 0; b < batch; ++b) {
      per_sample.forward(slice_sample(seq, b));
      const auto grad_x_single = per_sample.backward(slice_row(grad_h, b));
      ASSERT_EQ(grad_x_single.size(), 4u);
      for (std::size_t t = 0; t < 4; ++t)
        EXPECT_EQ(slice_row(grad_x_batched[t], b), grad_x_single[t])
            << "batch=" << batch << " sample=" << b << " t=" << t;
    }
    const auto pa = batched.parameters();
    const auto pb = per_sample.parameters();
    for (std::size_t i = 0; i < pa.size(); ++i)
      EXPECT_EQ(pa[i]->grad, pb[i]->grad) << "param " << i
                                          << " batch=" << batch;
  }
}

TEST(BatchedBackward, BatchedLstmGradientCheckAgainstFiniteDifferences) {
  // The batched (B=7) LSTM backward against central differences — the
  // analytic gradients must be right, not merely consistent with the
  // per-sample path.
  Rng rng(5);
  nn::Lstm lstm(3, 5, rng);
  Rng data_rng(6);
  const auto seq = random_batch(4, 7, 3, data_rng);
  Matrix target(7, 5);
  for (double& v : target.data()) v = data_rng.normal();

  auto loss_fn = [&] {
    return nn::mse_loss(lstm.forward(seq), target).value;
  };
  for (auto* p : lstm.parameters()) p->zero_grad();
  const auto l = nn::mse_loss(lstm.forward(seq), target);
  lstm.backward(l.grad);
  for (auto* p : lstm.parameters()) {
    const auto r = nn::check_gradient(*p, loss_fn, 1e-6);
    EXPECT_TRUE(r.passed(1e-4)) << "max_rel=" << r.max_rel_diff;
  }
}

rl::Experience random_experience(std::size_t cells, std::size_t k, Rng& rng) {
  rl::Experience e;
  e.state.assign(k * cells, 0.0);
  e.next_state.assign(k * cells, 0.0);
  for (std::size_t i = 0; i < k; ++i) {
    e.state[i * cells + rng.uniform_index(cells)] = 1.0;
    e.next_state[i * cells + rng.uniform_index(cells)] = 1.0;
  }
  e.action = rng.uniform_index(cells);
  e.reward = rng.uniform(-1.0, 2.0);
  e.next_mask.assign(cells, 0);
  std::size_t allowed = 0;
  for (auto& m : e.next_mask)
    if (rng.bernoulli(0.7)) {
      m = 1;
      ++allowed;
    }
  if (allowed == 0) e.next_mask[0] = 1;
  e.terminal = rng.bernoulli(0.15);
  return e;
}

rl::QNetworkPtr make_qnet(bool drqn, std::size_t cells, std::size_t k,
                          std::uint64_t seed) {
  Rng rng(seed);
  if (drqn) return std::make_unique<rl::DrqnQNetwork>(cells, k, 12, 0, rng);
  return std::make_unique<rl::MlpQNetwork>(cells, k,
                                           std::vector<std::size_t>{16}, rng);
}

#ifdef DRCELL_ENABLE_REFERENCE_KERNELS
/// Two identically seeded trainers, one driven batched and one through the
/// retained per-sample reference path (B=1 sequences through the networks'
/// pre-refactor reference implementations) over the same minibatches, must
/// stay bit-identical: same losses, same parameters — for MLP and DRQN,
/// plain and Double-DQN, and any worker count serving the batched forwards.
/// The batched trainer pins the std::-based gate kernel
/// (reference_gate_kernel): the engine-structure contract (workspace reuse,
/// sample-major AᵀB gradient accumulation) is bit-exact; the fused fastmath
/// gate kernel's divergence from std:: is covered separately by the
/// tolerance test below.
void expect_train_step_matches_reference(bool drqn, bool double_dqn,
                                         std::size_t workers) {
  const std::size_t cells = 6, k = 2;
  rl::DqnOptions opt;
  opt.batch_size = 8;
  opt.min_replay = 8;
  opt.replay_capacity = 64;
  opt.target_sync_interval = 3;  // exercise the sync cadence too
  opt.double_dqn = double_dqn;
  opt.reference_gate_kernel = true;

  rl::DqnTrainer batched(make_qnet(drqn, cells, k, 11), opt, 5);
  rl::DqnTrainer reference(make_qnet(drqn, cells, k, 11), opt, 5);
  util::ThreadPool pool(workers);
  batched.set_thread_pool(&pool);

  Rng fill(7);
  for (int i = 0; i < 40; ++i) {
    rl::Experience e = random_experience(cells, k, fill);
    rl::Experience copy = e;
    batched.observe(std::move(e));
    reference.observe(std::move(copy));
  }

  Rng draw(9);
  for (int step = 0; step < 12; ++step) {
    std::vector<std::size_t> indices;
    for (std::size_t i = 0; i < opt.batch_size; ++i)
      indices.push_back(draw.uniform_index(40));
    const double loss_batched = batched.train_step_on_indices(indices);
    const double loss_reference =
        reference.train_step_reference_on_indices(indices);
    ASSERT_EQ(loss_batched, loss_reference) << "step " << step;
  }
  const auto pa = batched.online().parameters();
  const auto pb = reference.online().parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i)
    EXPECT_EQ(pa[i]->value, pb[i]->value) << "param " << i;
}

TEST(BatchedTrainStep, MlpMatchesReferenceBitIdentically) {
  expect_train_step_matches_reference(false, false, 0);
  expect_train_step_matches_reference(false, false, 3);
}

TEST(BatchedTrainStep, DrqnMatchesReferenceBitIdentically) {
  expect_train_step_matches_reference(true, false, 0);
  expect_train_step_matches_reference(true, false, 3);
}

TEST(BatchedTrainStep, DoubleDqnMatchesReferenceBitIdentically) {
  expect_train_step_matches_reference(false, true, 0);
  expect_train_step_matches_reference(true, true, 3);
}

TEST(BatchedTrainStep, ReferencePathOptionRoutesTrainStep) {
  // options.reference_path must drive train_step() through the per-sample
  // core while consuming the same sample draw — end state bit-identical.
  const std::size_t cells = 5, k = 2;
  rl::DqnOptions opt;
  opt.batch_size = 4;
  opt.min_replay = 4;
  opt.replay_capacity = 32;
  opt.reference_gate_kernel = true;  // both sides on std:: gate arithmetic
  rl::DqnOptions ref_opt = opt;
  ref_opt.reference_path = true;

  rl::DqnTrainer batched(make_qnet(true, cells, k, 21), opt, 31);
  rl::DqnTrainer reference(make_qnet(true, cells, k, 21), ref_opt, 31);
  Rng fill(3);
  for (int i = 0; i < 16; ++i) {
    rl::Experience e = random_experience(cells, k, fill);
    rl::Experience copy = e;
    batched.observe(std::move(e));
    reference.observe(std::move(copy));
  }
  for (int step = 0; step < 6; ++step)
    ASSERT_EQ(batched.train_step(), reference.train_step()) << step;
  const auto pa = batched.online().parameters();
  const auto pb = reference.online().parameters();
  for (std::size_t i = 0; i < pa.size(); ++i)
    EXPECT_EQ(pa[i]->value, pb[i]->value) << "param " << i;
}
TEST(BatchedTrainStep, FastmathGateKernelTracksReferenceWithinTolerance) {
  // The production DRQN path (fused fastmath gate kernel) vs the per-sample
  // std:: reference: no longer bit-identical — every gate activation may
  // differ by the fastmath bound (≤1e-12 relative, measured ≲1e-15) — but
  // after a dozen Adam steps over shared minibatches the losses and
  // parameters must still agree within the documented end-to-end tolerance
  // (docs/ARCHITECTURE.md numeric-divergence contract; the bench
  // self-checks use the same bound).
  const std::size_t cells = 6, k = 2;
  rl::DqnOptions opt;  // default options: fused fastmath gates
  opt.batch_size = 8;
  opt.min_replay = 8;
  opt.replay_capacity = 64;

  rl::DqnTrainer fast(make_qnet(true, cells, k, 11), opt, 5);
  rl::DqnTrainer reference(make_qnet(true, cells, k, 11), opt, 5);
  Rng fill(7);
  for (int i = 0; i < 40; ++i) {
    rl::Experience e = random_experience(cells, k, fill);
    rl::Experience copy = e;
    fast.observe(std::move(e));
    reference.observe(std::move(copy));
  }
  Rng draw(9);
  for (int step = 0; step < 12; ++step) {
    std::vector<std::size_t> indices;
    for (std::size_t i = 0; i < opt.batch_size; ++i)
      indices.push_back(draw.uniform_index(40));
    const double loss_fast = fast.train_step_on_indices(indices);
    const double loss_ref = reference.train_step_reference_on_indices(indices);
    ASSERT_NEAR(loss_fast, loss_ref, 1e-9) << "step " << step;
  }
  const auto pa = fast.online().parameters();
  const auto pb = reference.online().parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    double max_abs = 0.0;
    for (std::size_t j = 0; j < pa[i]->value.data().size(); ++j)
      max_abs = std::max(max_abs, std::fabs(pa[i]->value.data()[j] -
                                            pb[i]->value.data()[j]));
    EXPECT_LT(max_abs, 1e-8) << "param " << i;
  }
}
#endif  // DRCELL_ENABLE_REFERENCE_KERNELS

TEST(FillTimestepMajor, MatchesManualAssemblyAndReusesCache) {
  const std::size_t cells = 4, k = 3;
  mcs::StateEncoder encoder(cells, k);
  rl::ReplayBuffer buffer(8);
  Rng fill(13);
  for (int i = 0; i < 8; ++i) {
    rl::Experience e;
    e.state.assign(k * cells, 0.0);
    e.next_state.assign(k * cells, 0.0);
    for (std::size_t j = 0; j < k * cells; ++j) {
      e.state[j] = fill.uniform(0.0, 1.0);
      e.next_state[j] = fill.uniform(0.0, 1.0);
    }
    e.next_mask.assign(cells, 1);
    buffer.add(std::move(e));
  }
  const auto encode = [&](const rl::Experience& e) {
    rl::EncodedExperience enc;
    encoder.to_sparse_steps(e.state, enc.state);
    encoder.to_sparse_steps(e.next_state, enc.next_state);
    return enc;
  };

  const std::vector<std::size_t> indices{3, 0, 3, 6};
  std::vector<Matrix> state_seq, next_seq;
  buffer.fill_timestep_major(indices, encode, state_seq, next_seq);
  ASSERT_EQ(state_seq.size(), k);
  ASSERT_EQ(next_seq.size(), k);
  for (std::size_t j = 0; j < k; ++j) {
    ASSERT_EQ(state_seq[j].rows(), indices.size());
    ASSERT_EQ(state_seq[j].cols(), cells);
  }
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const auto state_steps = encoder.to_sequence(buffer.at(indices[i]).state);
    const auto next_steps =
        encoder.to_sequence(buffer.at(indices[i]).next_state);
    for (std::size_t j = 0; j < k; ++j) {
      EXPECT_EQ(slice_row(state_seq[j], i), state_steps[j]) << i << "," << j;
      EXPECT_EQ(slice_row(next_seq[j], i), next_steps[j]) << i << "," << j;
    }
  }
  // Distinct transitions encode once each; repeats hit the cache.
  EXPECT_EQ(buffer.encode_misses(), 3u);
  buffer.fill_timestep_major(indices, encode, state_seq, next_seq);
  EXPECT_EQ(buffer.encode_misses(), 3u);
}

TEST(FillTimestepMajor, RingOverwriteInvalidatesCachedRows) {
  const std::size_t cells = 3, k = 2;
  mcs::StateEncoder encoder(cells, k);
  rl::ReplayBuffer buffer(4);
  const auto encode = [&](const rl::Experience& e) {
    rl::EncodedExperience enc;
    encoder.to_sparse_steps(e.state, enc.state);
    encoder.to_sparse_steps(e.next_state, enc.next_state);
    return enc;
  };
  const auto make = [&](double v) {
    rl::Experience e;
    e.state.assign(k * cells, v);
    e.next_state.assign(k * cells, v + 0.5);
    e.next_mask.assign(cells, 1);
    return e;
  };
  for (int i = 0; i < 4; ++i) buffer.add(make(static_cast<double>(i)));

  const std::vector<std::size_t> indices{0, 1};
  std::vector<Matrix> state_seq, next_seq;
  buffer.fill_timestep_major(indices, encode, state_seq, next_seq);
  EXPECT_EQ(state_seq[0](0, 0), 0.0);
  EXPECT_EQ(buffer.encode_misses(), 2u);

  // The ring wraps: slot 0 now holds a different transition, and the batch
  // assembly must re-encode it rather than serve the stale cached rows.
  buffer.add(make(9.0));
  buffer.fill_timestep_major(indices, encode, state_seq, next_seq);
  EXPECT_EQ(state_seq[0](0, 0), 9.0);
  EXPECT_EQ(next_seq[0](0, 0), 9.5);
  EXPECT_EQ(state_seq[0](1, 0), 1.0);  // slot 1 untouched, served from cache
  EXPECT_EQ(buffer.encode_misses(), 3u);
}

}  // namespace
}  // namespace drcell
