// Shared fixtures for the drcell test suite: tiny deterministic sensing
// tasks that keep end-to-end tests fast.
#pragma once

#include <cmath>
#include <memory>

#include "cs/matrix_completion.h"
#include "data/synthetic_field.h"
#include "mcs/environment.h"
#include "mcs/sensing_task.h"

namespace drcell::testing {

/// A smooth, strongly structured toy task: value = base(cell) + wave(cycle),
/// exactly rank-2 plus mean, so matrix completion recovers it from few
/// observations. Cells sit on a tiny grid.
inline mcs::SensingTask make_toy_task(std::size_t cells = 6,
                                      std::size_t cycles = 24,
                                      double noise = 0.0,
                                      std::uint64_t seed = 5) {
  std::vector<cs::CellCoord> coords;
  for (std::size_t i = 0; i < cells; ++i)
    coords.push_back({static_cast<double>(i % 3) * 10.0,
                      static_cast<double>(i / 3) * 10.0});
  Matrix truth(cells, cycles);
  Rng rng(seed);
  for (std::size_t i = 0; i < cells; ++i) {
    const double base = 20.0 + 0.5 * static_cast<double>(i);
    for (std::size_t t = 0; t < cycles; ++t) {
      const double wave =
          2.0 * std::sin(2.0 * 3.14159265 * static_cast<double>(t) / 12.0);
      truth(i, t) = base + wave + (noise > 0.0 ? rng.normal(0.0, noise) : 0.0);
    }
  }
  return mcs::SensingTask("toy", std::move(truth), std::move(coords),
                          mcs::ErrorMetric::mae(), 1.0);
}

/// A GP-generated task, small enough for integration tests.
inline mcs::SensingTask make_gp_task(std::size_t side = 3,
                                     std::size_t cycles = 48,
                                     std::uint64_t seed = 11) {
  auto coords = data::grid_coords(side, side, 10.0, 10.0);
  data::SyntheticFieldGenerator gen(coords);
  data::FieldParams params;
  params.mean = 15.0;
  params.stddev = 2.0;
  params.spatial_length = 18.0;
  params.temporal_ar1 = 0.9;
  params.diurnal_amplitude = 1.0;
  params.cycles_per_day = 24.0;
  // Keep the latent rank low relative to the tiny cell count so rank-3
  // completion is well-specified.
  params.num_modes = 2;
  Rng rng(seed);
  Matrix field = gen.generate(params, cycles, rng);
  return mcs::SensingTask("gp-toy", std::move(field), std::move(coords),
                          mcs::ErrorMetric::mae(), 1.0);
}

inline cs::InferenceEnginePtr default_engine() {
  // The toy/GP tasks are rank-2/3 plus mean; a low-rank engine avoids
  // overfitting their tiny windows.
  cs::MatrixCompletionOptions options;
  options.rank = 3;
  return std::make_shared<cs::MatrixCompletion>(options);
}

inline mcs::SparseMcsEnvironment make_toy_environment(
    std::shared_ptr<const mcs::SensingTask> task, double epsilon,
    mcs::EnvOptions options = {}) {
  return mcs::SparseMcsEnvironment(
      std::move(task), default_engine(),
      std::make_shared<mcs::GroundTruthGate>(epsilon), options);
}

}  // namespace drcell::testing
