#include "util/chunking.h"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "util/rng.h"

namespace drcell::util {
namespace {

std::vector<std::size_t> random_weights(std::size_t count, Rng& rng,
                                        std::size_t max_w) {
  std::vector<std::size_t> w(count);
  for (auto& x : w)
    x = static_cast<std::size_t>(rng.uniform(0.0, static_cast<double>(max_w)));
  return w;
}

std::size_t sum(const std::vector<std::size_t>& w) {
  return std::accumulate(w.begin(), w.end(), std::size_t{0});
}

TEST(ChunkBounds, CoversRangeWithMonotoneBounds) {
  Rng rng(91);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t count =
        1 + static_cast<std::size_t>(rng.uniform(0.0, 400.0));
    const std::size_t lanes =
        1 + static_cast<std::size_t>(rng.uniform(0.0, 8.0));
    const auto w = random_weights(count, rng, 200);
    const auto bounds = chunk_bounds(count, lanes, sum(w), w);
    ASSERT_GE(bounds.size(), 2u);
    EXPECT_EQ(bounds.front(), 0u);
    EXPECT_EQ(bounds.back(), count);
    // Strictly increasing: every index lands in exactly one chunk.
    for (std::size_t c = 0; c + 1 < bounds.size(); ++c)
      EXPECT_LT(bounds[c], bounds[c + 1]);
  }
}

TEST(ChunkBounds, EveryChunkButLastMeetsMinWeightFloor) {
  Rng rng(92);
  const ChunkPolicy policy{/*min_weight_per_chunk=*/128,
                           /*max_chunks_per_lane=*/8};
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t count =
        1 + static_cast<std::size_t>(rng.uniform(0.0, 300.0));
    const auto w = random_weights(count, rng, 64);
    const auto bounds = chunk_bounds(count, 4, sum(w), w, policy);
    for (std::size_t c = 0; c + 2 < bounds.size(); ++c) {
      std::size_t chunk_w = 0;
      for (std::size_t i = bounds[c]; i < bounds[c + 1]; ++i) chunk_w += w[i];
      EXPECT_GE(chunk_w, policy.min_weight_per_chunk);
    }
  }
}

TEST(ChunkBounds, ChunkCountBoundedByLanesTimesPolicyCap) {
  Rng rng(93);
  const ChunkPolicy policy{/*min_weight_per_chunk=*/1,
                           /*max_chunks_per_lane=*/8};
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t count =
        1 + static_cast<std::size_t>(rng.uniform(0.0, 500.0));
    const std::size_t lanes =
        1 + static_cast<std::size_t>(rng.uniform(0.0, 6.0));
    const auto w = random_weights(count, rng, 50);
    const auto bounds = chunk_bounds(count, lanes, sum(w), w, policy);
    // bounds has chunks+1 entries; the accumulator can close max_chunks
    // chunks plus the remainder.
    EXPECT_LE(bounds.size() - 1, lanes * policy.max_chunks_per_lane + 1);
  }
}

TEST(ChunkBounds, DegenerateCounts) {
  const std::vector<std::size_t> none;
  EXPECT_EQ(chunk_bounds(0, 4, 0, none), (std::vector<std::size_t>{0, 0}));
  const std::vector<std::size_t> one{7};
  EXPECT_EQ(chunk_bounds(1, 4, 7, one), (std::vector<std::size_t>{0, 1}));
}

TEST(ChunkBounds, ZeroWeightsCollapseToSingleChunk) {
  const std::vector<std::size_t> w(64, 0);
  const auto bounds = chunk_bounds(64, 4, 0, w);
  EXPECT_EQ(bounds, (std::vector<std::size_t>{0, 64}));
}

TEST(ChunkBounds, HeavyIndexGetsItsOwnChunkNeighbourhood) {
  // One index carrying nearly all the weight must not drag the whole range
  // into one chunk: the indices after it still split off.
  std::vector<std::size_t> w(100, 1);
  w[10] = 100000;
  const auto bounds =
      chunk_bounds(100, 4, sum(w), w,
                   ChunkPolicy{/*min_weight_per_chunk=*/8,
                               /*max_chunks_per_lane=*/8});
  ASSERT_GE(bounds.size(), 3u);  // at least two real splits
  // The heavy index closes its chunk at the first boundary after index 10.
  bool heavy_chunk_found = false;
  for (std::size_t c = 0; c + 1 < bounds.size(); ++c)
    if (bounds[c] <= 10 && 10 < bounds[c + 1]) {
      heavy_chunk_found = true;
      EXPECT_EQ(bounds[c + 1], 11u);
    }
  EXPECT_TRUE(heavy_chunk_found);
}

}  // namespace
}  // namespace drcell::util
