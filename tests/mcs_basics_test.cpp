#include <gtest/gtest.h>

#include "mcs/error_metric.h"
#include "mcs/selection_matrix.h"
#include "mcs/sensing_task.h"
#include "mcs/state_encoder.h"
#include "test_helpers.h"

namespace drcell::mcs {
namespace {

TEST(ErrorMetric, MaeOverIndices) {
  const auto metric = ErrorMetric::mae();
  const std::vector<double> truth{1.0, 2.0, 3.0};
  const std::vector<double> est{1.5, 2.0, 1.0};
  EXPECT_DOUBLE_EQ(metric.error(truth, est, {0, 2}), (0.5 + 2.0) / 2.0);
  EXPECT_DOUBLE_EQ(metric.error(truth, est, {1}), 0.0);
}

TEST(ErrorMetric, EmptyIndicesIsPerfect) {
  const auto metric = ErrorMetric::mae();
  EXPECT_EQ(metric.error({{1.0}}, {{9.0}}, {}), 0.0);
}

TEST(ErrorMetric, RmseOverIndices) {
  const auto metric = ErrorMetric::rmse();
  const std::vector<double> truth{0.0, 0.0};
  const std::vector<double> est{3.0, 4.0};
  EXPECT_DOUBLE_EQ(metric.error(truth, est, {0, 1}),
                   std::sqrt((9.0 + 16.0) / 2.0));
}

TEST(ErrorMetric, AqiCategorization) {
  const auto metric = ErrorMetric::aqi_classification();
  EXPECT_EQ(metric.categorize(0.0), 0);
  EXPECT_EQ(metric.categorize(50.0), 0);    // Good
  EXPECT_EQ(metric.categorize(50.1), 1);    // Moderate
  EXPECT_EQ(metric.categorize(150.0), 2);   // Unhealthy for sensitive
  EXPECT_EQ(metric.categorize(199.0), 3);   // Unhealthy
  EXPECT_EQ(metric.categorize(250.0), 4);   // Very unhealthy
  EXPECT_EQ(metric.categorize(301.0), 5);   // Hazardous
}

TEST(ErrorMetric, ClassificationErrorCountsMismatches) {
  const auto metric = ErrorMetric::aqi_classification();
  const std::vector<double> truth{40.0, 120.0, 250.0, 400.0};
  const std::vector<double> est{45.0, 90.0, 260.0, 100.0};
  // categories: truth {0,2,4,5}, est {0,1,4,1} -> 2 of 4 mismatch.
  EXPECT_DOUBLE_EQ(metric.error(truth, est, {0, 1, 2, 3}), 0.5);
}

TEST(ErrorMetric, PointwiseError) {
  const auto mae = ErrorMetric::mae();
  EXPECT_DOUBLE_EQ(mae.pointwise_error(3.0, 1.5), 1.5);
  const auto cls = ErrorMetric::aqi_classification();
  EXPECT_EQ(cls.pointwise_error(40.0, 45.0), 0.0);
  EXPECT_EQ(cls.pointwise_error(40.0, 60.0), 1.0);
}

TEST(ErrorMetric, CategorizeOnContinuousMetricThrows) {
  EXPECT_THROW(ErrorMetric::mae().categorize(1.0), CheckError);
}

TEST(ErrorMetric, UnsortedBoundsThrow) {
  EXPECT_THROW(ErrorMetric::classification({100.0, 50.0}), CheckError);
}

TEST(ErrorMetric, Names) {
  EXPECT_EQ(ErrorMetric::mae().name(), "mean-absolute-error");
  EXPECT_EQ(ErrorMetric::aqi_classification().name(), "classification-error");
  EXPECT_TRUE(ErrorMetric::aqi_classification().is_classification());
  EXPECT_FALSE(ErrorMetric::rmse().is_classification());
}

TEST(SensingTask, BasicAccessors) {
  const auto task = testing::make_toy_task(6, 24);
  EXPECT_EQ(task.num_cells(), 6u);
  EXPECT_EQ(task.num_cycles(), 24u);
  EXPECT_EQ(task.coords().size(), 6u);
  EXPECT_EQ(task.cycle_hours(), 1.0);
  EXPECT_EQ(task.name(), "toy");
}

TEST(SensingTask, SliceCyclesExtractsRange) {
  const auto task = testing::make_toy_task(4, 20);
  const auto slice = task.slice_cycles(5, 10);
  EXPECT_EQ(slice.num_cycles(), 5u);
  EXPECT_EQ(slice.num_cells(), 4u);
  for (std::size_t c = 0; c < 4; ++c)
    for (std::size_t t = 0; t < 5; ++t)
      EXPECT_EQ(slice.truth(c, t), task.truth(c, t + 5));
}

TEST(SensingTask, InvalidSliceThrows) {
  const auto task = testing::make_toy_task(4, 20);
  EXPECT_THROW(task.slice_cycles(10, 10), CheckError);
  EXPECT_THROW(task.slice_cycles(0, 21), CheckError);
}

TEST(SensingTask, RejectsCoordinateMismatch) {
  EXPECT_THROW(SensingTask("bad", Matrix(3, 2), {{0, 0}},
                           ErrorMetric::mae()),
               CheckError);
}

TEST(SensingTask, RejectsNonFiniteData) {
  Matrix d(2, 2);
  d(0, 0) = std::nan("");
  EXPECT_THROW(
      SensingTask("bad", std::move(d), {{0, 0}, {1, 1}}, ErrorMetric::mae()),
      CheckError);
}

TEST(SelectionMatrix, MarkAndQuery) {
  SelectionMatrix s(4, 3);
  EXPECT_EQ(s.selected_count(), 0u);
  s.mark(1, 0);
  s.mark(3, 0);
  s.mark(1, 2);
  EXPECT_TRUE(s.selected(1, 0));
  EXPECT_FALSE(s.selected(2, 0));
  EXPECT_EQ(s.selected_count(), 3u);
  EXPECT_EQ(s.selected_count_in_cycle(0), 2u);
  EXPECT_EQ(s.selected_cells_in_cycle(0), (std::vector<std::size_t>{1, 3}));
  EXPECT_EQ(s.unselected_cells_in_cycle(0),
            (std::vector<std::size_t>{0, 2}));
}

TEST(SelectionMatrix, DoubleMarkThrows) {
  SelectionMatrix s(2, 2);
  s.mark(0, 0);
  EXPECT_THROW(s.mark(0, 0), CheckError);
}

TEST(SelectionMatrix, CycleVector) {
  SelectionMatrix s(3, 2);
  s.mark(0, 1);
  s.mark(2, 1);
  EXPECT_EQ(s.cycle_vector(1), (std::vector<double>{1.0, 0.0, 1.0}));
  EXPECT_EQ(s.cycle_vector(0), (std::vector<double>{0.0, 0.0, 0.0}));
}

TEST(SelectionMatrix, ResetClearsEverything) {
  SelectionMatrix s(2, 2);
  s.mark(0, 0);
  s.reset();
  EXPECT_EQ(s.selected_count(), 0u);
  EXPECT_FALSE(s.selected(0, 0));
  s.mark(0, 0);  // can re-mark after reset
}

TEST(StateEncoder, EncodesRecentWindowOldestFirst) {
  SelectionMatrix s(3, 5);
  s.mark(0, 1);  // older cycle
  s.mark(2, 2);  // current cycle
  StateEncoder enc(3, 2);
  const auto state = enc.encode(s, 2);
  ASSERT_EQ(state.size(), 6u);
  // Slice 0 = cycle 1, slice 1 = cycle 2.
  EXPECT_EQ(state, (std::vector<double>{1, 0, 0, 0, 0, 1}));
}

TEST(StateEncoder, ZeroPadsBeforeCampaignStart) {
  SelectionMatrix s(2, 5);
  s.mark(1, 0);
  StateEncoder enc(2, 3);
  const auto state = enc.encode(s, 0);
  // Two zero-padded slices then cycle 0.
  EXPECT_EQ(state, (std::vector<double>{0, 0, 0, 0, 0, 1}));
}

TEST(StateEncoder, ToSequenceSplitsSlices) {
  StateEncoder enc(2, 2);
  const std::vector<double> flat{1, 0, 0, 1};
  const auto seq = enc.to_sequence(flat);
  ASSERT_EQ(seq.size(), 2u);
  EXPECT_EQ(seq[0](0, 0), 1.0);
  EXPECT_EQ(seq[0](0, 1), 0.0);
  EXPECT_EQ(seq[1](0, 1), 1.0);
}

TEST(StateEncoder, BatchConversionStacksRows) {
  StateEncoder enc(2, 2);
  const std::vector<double> a{1, 0, 0, 1};
  const std::vector<double> b{0, 1, 1, 0};
  const auto seq = enc.to_sequence_batch({&a, &b});
  ASSERT_EQ(seq.size(), 2u);
  EXPECT_EQ(seq[0].rows(), 2u);
  EXPECT_EQ(seq[0](0, 0), 1.0);
  EXPECT_EQ(seq[0](1, 1), 1.0);
  EXPECT_EQ(seq[1](1, 0), 1.0);
}

TEST(StateEncoder, SizeMismatchThrows) {
  StateEncoder enc(2, 2);
  const std::vector<double> bad{1, 0, 0};
  EXPECT_THROW(enc.to_sequence(bad), CheckError);
}

TEST(StateEncoder, StateSize) {
  StateEncoder enc(7, 3);
  EXPECT_EQ(enc.state_size(), 21u);
  EXPECT_EQ(enc.cells(), 7u);
  EXPECT_EQ(enc.history_cycles(), 3u);
}

}  // namespace
}  // namespace drcell::mcs
