// Property/fuzz coverage for SparseRowMatrix (linalg/sparse_matrix.h):
// randomized shapes and densities against the dense kernels as oracle
// (bit-identity under the native backend — the gather contract), the
// degenerate densities (0%, 100%, single-element rows, explicit stored
// zeros, empty shapes), and the malformed-append preconditions, which must
// trip DRCELL_DCHECK in checked builds (unsorted columns, duplicate
// columns, decreasing rows, out-of-range indices).
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "linalg/backend.h"
#include "linalg/matrix.h"
#include "linalg/sparse_matrix.h"
#include "util/check.h"
#include "util/rng.h"

namespace drcell {
namespace {

Matrix random_dense(std::size_t rows, std::size_t cols, double density,
                    Rng& rng) {
  Matrix m(rows, cols);
  for (double& v : m.data()) v = rng.bernoulli(density) ? rng.normal() : 0.0;
  return m;
}

SparseRowMatrix to_sparse(const Matrix& dense) {
  SparseRowMatrix s(dense.rows(), dense.cols());
  for (std::size_t r = 0; r < dense.rows(); ++r)
    for (std::size_t c = 0; c < dense.cols(); ++c)
      if (dense(r, c) != 0.0) s.append(r, c, dense(r, c));
  return s;
}

class SparseMatrixProperty : public ::testing::Test {
 protected:
  // The bit-identity oracle assumes an exact-contract backend; pin native
  // and restore the suite's prior selection afterwards.
  void SetUp() override {
    prev_ = BackendRegistry::active().name();
    BackendRegistry::set_active("native");
  }
  void TearDown() override { BackendRegistry::set_active(prev_); }

 private:
  std::string prev_;
};

TEST_F(SparseMatrixProperty, FuzzGatherMatchesDenseAcrossShapesAndDensities) {
  // 60 random (shape, density) draws: to_dense round-trips, density
  // accounting, and both gather GEMMs bit-identical to the dense kernels.
  Rng rng(2024);
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t rows = 1 + rng.uniform_index(40);
    const std::size_t cols = 1 + rng.uniform_index(50);
    const std::size_t inner = 1 + rng.uniform_index(12);
    const double density =
        std::vector<double>{0.0, 0.01, 0.1, 0.5, 1.0}[rng.uniform_index(5)];
    const Matrix dense = random_dense(rows, cols, density, rng);
    const SparseRowMatrix sparse = to_sparse(dense);

    EXPECT_EQ(sparse.rows(), rows);
    EXPECT_EQ(sparse.cols(), cols);
    EXPECT_EQ(sparse.to_dense(), dense) << "trial " << trial;

    std::size_t nnz = 0;
    for (const double v : dense.data()) nnz += v != 0.0;
    EXPECT_EQ(sparse.nonzeros(), nnz);

    const Matrix b = random_dense(cols, inner, 1.0, rng);
    Matrix from_sparse, from_dense;
    sparse.matmul_into(b, from_sparse);
    dense.matmul_into(b, from_dense);
    EXPECT_EQ(from_sparse, from_dense) << "trial " << trial;

    const Matrix g = random_dense(rows, inner, 1.0, rng);
    Matrix acc_sparse = random_dense(cols, inner, 1.0, rng);
    Matrix acc_dense = acc_sparse;
    sparse.matmul_transposed_self_add(g, acc_sparse);
    dense.matmul_transposed_self_add(g, acc_dense);
    EXPECT_EQ(acc_sparse, acc_dense) << "trial " << trial;
  }
}

TEST_F(SparseMatrixProperty, SingleElementRowsMatchDense) {
  // The one-hot selection-state shape: exactly one entry per row.
  Rng rng(7);
  const std::size_t rows = 24, cols = 30;
  Matrix dense(rows, cols);
  SparseRowMatrix sparse(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    const std::size_t c = rng.uniform_index(cols);
    dense(r, c) = 1.0;
    sparse.append(r, c, 1.0);
  }
  EXPECT_EQ(sparse.nonzeros(), rows);
  const Matrix b = random_dense(cols, 9, 1.0, rng);
  Matrix from_sparse, from_dense;
  sparse.matmul_into(b, from_sparse);
  dense.matmul_into(b, from_dense);
  EXPECT_EQ(from_sparse, from_dense);
}

TEST_F(SparseMatrixProperty, EmptyAndAllZeroShapes) {
  // 0% density: no stored entries, gather outputs stay exactly zero.
  SparseRowMatrix empty(5, 8);
  EXPECT_EQ(empty.nonzeros(), 0u);
  Rng rng(9);
  const Matrix b = random_dense(8, 3, 1.0, rng);
  Matrix out;
  empty.matmul_into(b, out);
  for (const double v : out.data()) EXPECT_EQ(v, 0.0);

  // Degenerate shapes round-trip without touching the kernels.
  SparseRowMatrix none;
  EXPECT_TRUE(none.empty());
  SparseRowMatrix no_cols(4, 0);
  EXPECT_TRUE(no_cols.empty());
}

TEST_F(SparseMatrixProperty, ExplicitStoredZerosAreSkippedLikeDense) {
  // A stored 0.0 entry must contribute nothing — the kernels' zero-skip
  // mirrors the dense aik == 0.0 skip, keeping bit-identity.
  SparseRowMatrix sparse(2, 4);
  sparse.append(0, 1, 0.0);  // explicit zero
  sparse.append(0, 3, 2.0);
  sparse.append(1, 0, -1.5);
  Matrix dense(2, 4);
  dense(0, 3) = 2.0;
  dense(1, 0) = -1.5;

  Rng rng(11);
  const Matrix b = random_dense(4, 5, 1.0, rng);
  Matrix from_sparse, from_dense;
  sparse.matmul_into(b, from_sparse);
  dense.matmul_into(b, from_dense);
  EXPECT_EQ(from_sparse, from_dense);

  Matrix acc_sparse = random_dense(4, 5, 1.0, rng);
  Matrix acc_dense = acc_sparse;
  const Matrix g = random_dense(2, 5, 1.0, rng);
  sparse.matmul_transposed_self_add(g, acc_sparse);
  dense.matmul_transposed_self_add(g, acc_dense);
  EXPECT_EQ(acc_sparse, acc_dense);
}

TEST_F(SparseMatrixProperty, ResetReusesStorageAndDropsEntries) {
  SparseRowMatrix s(3, 3);
  s.append(0, 0, 1.0);
  s.append(2, 1, 2.0);
  EXPECT_EQ(s.nonzeros(), 2u);
  s.reset(4, 6);
  EXPECT_EQ(s.rows(), 4u);
  EXPECT_EQ(s.cols(), 6u);
  EXPECT_EQ(s.nonzeros(), 0u);
  s.append(1, 5, 3.0);
  Matrix d = s.to_dense();
  EXPECT_EQ(d(1, 5), 3.0);
  EXPECT_EQ(s.nonzeros(), 1u);
}

#if DRCELL_DCHECKS_ACTIVE
// Malformed appends must die loudly in checked builds: the gather kernels'
// bit-identity contract relies on rows being non-decreasing and columns
// strictly ascending within a row, and silent acceptance would corrupt
// results instead of failing the build's precondition checks.
TEST_F(SparseMatrixProperty, MalformedAppendsTripDchecks) {
  {
    SparseRowMatrix s(3, 4);
    s.append(1, 2, 1.0);
    EXPECT_THROW(s.append(1, 1, 1.0), CheckError);  // unsorted column
  }
  {
    SparseRowMatrix s(3, 4);
    s.append(1, 2, 1.0);
    EXPECT_THROW(s.append(1, 2, 5.0), CheckError);  // duplicate column
  }
  {
    SparseRowMatrix s(3, 4);
    s.append(2, 0, 1.0);
    EXPECT_THROW(s.append(1, 0, 1.0), CheckError);  // decreasing row
  }
  {
    SparseRowMatrix s(3, 4);
    EXPECT_THROW(s.append(3, 0, 1.0), CheckError);  // row out of range
    EXPECT_THROW(s.append(0, 4, 1.0), CheckError);  // col out of range
  }
}

#endif  // DRCELL_DCHECKS_ACTIVE

TEST_F(SparseMatrixProperty, ShapeMismatchedGatherTripsChecks) {
  // Shape/alias preconditions use DRCELL_CHECK and therefore fire in every
  // build, not just checked ones.
  SparseRowMatrix s(2, 5);
  s.append(0, 1, 1.0);
  Matrix wrong_inner(4, 3);
  Matrix out;
  EXPECT_THROW(s.matmul_into(wrong_inner, out), CheckError);
  Matrix g(2, 3);
  Matrix wrong_acc(5, 7);
  EXPECT_THROW(s.matmul_transposed_self_add(g, wrong_acc), CheckError);
}

}  // namespace
}  // namespace drcell
