#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "data/datasets.h"
#include "data/synthetic_field.h"
#include "data/task_io.h"
#include "util/statistics.h"

namespace drcell::data {
namespace {

TEST(GridCoords, LaysOutCentres) {
  const auto coords = grid_coords(2, 3, 10.0, 20.0);
  ASSERT_EQ(coords.size(), 6u);
  EXPECT_DOUBLE_EQ(coords[0].x, 5.0);
  EXPECT_DOUBLE_EQ(coords[0].y, 10.0);
  EXPECT_DOUBLE_EQ(coords[5].x, 25.0);
  EXPECT_DOUBLE_EQ(coords[5].y, 30.0);
}

TEST(SyntheticField, MatchesTargetMoments) {
  SyntheticFieldGenerator gen(grid_coords(4, 4, 10, 10));
  FieldParams params;
  params.mean = 25.0;
  params.stddev = 3.0;
  params.spatial_length = 15.0;
  Rng rng(1);
  const Matrix field = gen.generate(params, 200, rng);
  RunningStats stats;
  for (double v : field.data()) stats.add(v);
  EXPECT_NEAR(stats.mean(), 25.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 3.0, 0.1);
}

TEST(SyntheticField, DeterministicForSeed) {
  SyntheticFieldGenerator gen(grid_coords(3, 3, 10, 10));
  FieldParams params;
  Rng a(42), b(42);
  EXPECT_EQ(gen.generate(params, 20, a), gen.generate(params, 20, b));
}

TEST(SyntheticField, SpatialCorrelationDecaysWithDistance) {
  // Nearby cells should correlate more strongly over time than far cells.
  SyntheticFieldGenerator gen(grid_coords(1, 10, 10, 10));
  FieldParams params;
  params.spatial_length = 12.0;
  params.temporal_ar1 = 0.3;  // fast mixing -> more independent samples
  params.diurnal_amplitude = 0.0;
  Rng rng(7);
  const Matrix field = gen.generate(params, 600, rng);
  const auto row0 = field.row(0);
  const auto row1 = field.row(1);
  const auto row9 = field.row(9);
  const double near = pearson_correlation(row0, row1);
  const double far = pearson_correlation(row0, row9);
  EXPECT_GT(near, far + 0.2);
  EXPECT_GT(near, 0.5);
}

TEST(SyntheticField, TemporalSmoothness) {
  // Consecutive cycles must correlate strongly under high AR(1).
  SyntheticFieldGenerator gen(grid_coords(3, 3, 10, 10));
  FieldParams params;
  params.temporal_ar1 = 0.95;
  params.diurnal_amplitude = 0.0;
  Rng rng(8);
  const Matrix field = gen.generate(params, 300, rng);
  std::vector<double> now, next;
  for (std::size_t i = 0; i < field.rows(); ++i)
    for (std::size_t t = 0; t + 1 < field.cols(); ++t) {
      now.push_back(field(i, t));
      next.push_back(field(i, t + 1));
    }
  EXPECT_GT(pearson_correlation(now, next), 0.8);
}

TEST(SyntheticField, LognormalIsPositiveAndHeavyTailed) {
  SyntheticFieldGenerator gen(grid_coords(3, 3, 1000, 1000));
  FieldParams params;
  params.mean = 79.11;
  params.stddev = 81.21;
  params.spatial_length = 2000.0;
  params.lognormal = true;
  Rng rng(9);
  const Matrix field = gen.generate(params, 300, rng);
  RunningStats stats;
  for (double v : field.data()) {
    EXPECT_GT(v, 0.0);
    stats.add(v);
  }
  // Heavy tail: max far above mean + 2 std.
  EXPECT_GT(stats.max(), stats.mean() + 2.5 * stats.stddev());
}

TEST(SyntheticField, CorrelatedPairHitsRequestedRho) {
  SyntheticFieldGenerator gen(grid_coords(4, 4, 10, 10));
  FieldParams a, b;
  a.diurnal_amplitude = 0.0;
  b.diurnal_amplitude = 0.0;
  Rng rng(10);
  const auto [fa, fb] = gen.generate_correlated_pair(a, b, -0.8, 400, rng);
  const double rho = pearson_correlation(fa.data(), fb.data());
  EXPECT_NEAR(rho, -0.8, 0.1);
}

TEST(SyntheticField, InvalidParamsThrow) {
  SyntheticFieldGenerator gen(grid_coords(2, 2, 10, 10));
  FieldParams params;
  params.temporal_ar1 = 1.0;
  Rng rng(1);
  EXPECT_THROW(gen.generate(params, 10, rng), CheckError);
  params.temporal_ar1 = 0.5;
  params.stddev = 0.0;
  EXPECT_THROW(gen.generate(params, 10, rng), CheckError);
  FieldParams logn;
  logn.lognormal = true;
  logn.mean = -1.0;
  EXPECT_THROW(gen.generate(logn, 10, rng), CheckError);
}

TEST(Datasets, SensorScopeShapeMatchesTable1) {
  const auto ds = make_sensorscope_like(1);
  EXPECT_EQ(ds.temperature.num_cells(), 57u);
  EXPECT_EQ(ds.temperature.num_cycles(), 336u);  // 7 d of 0.5 h cycles
  EXPECT_EQ(ds.temperature.cycle_hours(), 0.5);
  EXPECT_EQ(ds.humidity.num_cells(), 57u);
  EXPECT_FALSE(ds.temperature.metric().is_classification());
}

TEST(Datasets, SensorScopeMomentsMatchTable1) {
  const auto ds = make_sensorscope_like(2);
  const auto temp = compute_stats(ds.temperature);
  EXPECT_NEAR(temp.mean, 6.04, 0.25);
  EXPECT_NEAR(temp.stddev, 1.87, 0.2);
  const auto hum = compute_stats(ds.humidity);
  EXPECT_NEAR(hum.mean, 84.52, 0.8);
  EXPECT_NEAR(hum.stddev, 6.32, 0.7);
  EXPECT_NEAR(temp.duration_days, 7.0, 1e-9);
}

TEST(Datasets, SensorScopeTasksAreAnticorrelated) {
  const auto ds = make_sensorscope_like(3);
  const double rho = pearson_correlation(ds.temperature.ground_truth().data(),
                                         ds.humidity.ground_truth().data());
  EXPECT_LT(rho, -0.5);
}

TEST(Datasets, UAirShapeAndMetric) {
  const auto ds = make_uair_like(1);
  EXPECT_EQ(ds.pm25.num_cells(), 36u);
  EXPECT_EQ(ds.pm25.num_cycles(), 264u);  // 11 d hourly
  EXPECT_EQ(ds.pm25.cycle_hours(), 1.0);
  EXPECT_TRUE(ds.pm25.metric().is_classification());
  const auto stats = compute_stats(ds.pm25);
  EXPECT_NEAR(stats.mean, 79.11, 8.0);
  EXPECT_NEAR(stats.stddev, 81.21, 20.0);
  EXPECT_GT(stats.min, 0.0);
  EXPECT_NEAR(stats.duration_days, 11.0, 1e-9);
}

TEST(Datasets, DifferentSeedsProduceDifferentFields) {
  const auto a = make_uair_like(1);
  const auto b = make_uair_like(2);
  EXPECT_NE(a.pm25.ground_truth(), b.pm25.ground_truth());
}

TEST(TaskIo, RoundTripContinuousTask) {
  const auto ds = make_sensorscope_like(4);
  const auto sliced = ds.temperature.slice_cycles(0, 10);
  std::stringstream ss;
  save_task_csv(ss, sliced);
  const auto loaded = load_task_csv(ss);
  EXPECT_EQ(loaded.num_cells(), sliced.num_cells());
  EXPECT_EQ(loaded.num_cycles(), sliced.num_cycles());
  EXPECT_EQ(loaded.cycle_hours(), sliced.cycle_hours());
  double max_diff = 0.0;
  for (std::size_t i = 0; i < sliced.num_cells(); ++i)
    for (std::size_t t = 0; t < sliced.num_cycles(); ++t)
      max_diff = std::max(max_diff,
                          std::fabs(loaded.truth(i, t) - sliced.truth(i, t)));
  EXPECT_EQ(max_diff, 0.0);
  for (std::size_t i = 0; i < sliced.num_cells(); ++i) {
    EXPECT_EQ(loaded.coords()[i].x, sliced.coords()[i].x);
    EXPECT_EQ(loaded.coords()[i].y, sliced.coords()[i].y);
  }
}

TEST(TaskIo, RoundTripClassificationTask) {
  const auto ds = make_uair_like(5);
  const auto sliced = ds.pm25.slice_cycles(0, 6);
  std::stringstream ss;
  save_task_csv(ss, sliced);
  const auto loaded = load_task_csv(ss);
  EXPECT_TRUE(loaded.metric().is_classification());
  EXPECT_EQ(loaded.metric().categorize(75.0),
            sliced.metric().categorize(75.0));
  EXPECT_EQ(loaded.metric().categorize(350.0),
            sliced.metric().categorize(350.0));
}

TEST(TaskIo, MalformedCsvThrows) {
  std::stringstream ss("garbage,file\nwithout,structure\n");
  EXPECT_THROW(load_task_csv(ss), CheckError);
}

}  // namespace
}  // namespace drcell::data
