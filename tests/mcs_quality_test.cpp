#include <gtest/gtest.h>

#include <memory>

#include "cs/matrix_completion.h"
#include "cs/mean_inference.h"
#include "mcs/quality.h"
#include "test_helpers.h"

namespace drcell::mcs {
namespace {

struct QualityFixture : public ::testing::Test {
  QualityFixture()
      : task(testing::make_toy_task(6, 12)),
        engine(std::make_shared<cs::MatrixCompletion>()) {}

  /// Builds a window over cycles [0, width) with `sensed` cells observed in
  /// the last column and everything observed in earlier columns.
  cs::PartialMatrix make_window(std::size_t width,
                                const std::vector<std::size_t>& sensed) {
    cs::PartialMatrix w(task.num_cells(), width);
    for (std::size_t c = 0; c + 1 < width; ++c)
      for (std::size_t cell = 0; cell < task.num_cells(); ++cell)
        w.set(cell, c, task.truth(cell, c));
    for (std::size_t cell : sensed)
      w.set(cell, width - 1, task.truth(cell, width - 1));
    return w;
  }

  SensingTask task;
  std::shared_ptr<cs::MatrixCompletion> engine;
};

TEST_F(QualityFixture, UnobservedCellsHelper) {
  const auto w = make_window(3, {1, 4});
  const auto unobs = unobserved_cells_in_cycle(w, 2);
  EXPECT_EQ(unobs, (std::vector<std::size_t>{0, 2, 3, 5}));
}

TEST_F(QualityFixture, TrueCycleErrorZeroWhenFullySensed) {
  const auto w = make_window(3, {0, 1, 2, 3, 4, 5});
  const Matrix inferred = engine->infer(w);
  EXPECT_EQ(true_cycle_error(task, w, 2, inferred, 2), 0.0);
}

TEST_F(QualityFixture, TrueCycleErrorMatchesManualComputation) {
  const auto w = make_window(3, {0, 1, 2});
  const Matrix inferred = engine->infer(w);
  double expected = 0.0;
  for (std::size_t cell : {3, 4, 5})
    expected += std::fabs(inferred(cell, 2) - task.truth(cell, 2));
  expected /= 3.0;
  EXPECT_NEAR(true_cycle_error(task, w, 2, inferred, 2), expected, 1e-12);
}

TEST_F(QualityFixture, GroundTruthGateThresholds) {
  const auto w = make_window(3, {0, 2, 4});
  const Matrix inferred = engine->infer(w);
  const double err = true_cycle_error(task, w, 2, inferred, 2);
  const QualityContext ctx{task, w, 2, 2, &inferred, *engine};
  EXPECT_TRUE(GroundTruthGate(err + 1e-9).satisfied(ctx));
  EXPECT_FALSE(GroundTruthGate(err - 1e-9).satisfied(ctx));
}

TEST_F(QualityFixture, LooGateNoObservationsGivesZeroProbability) {
  const auto w = make_window(3, {});
  const Matrix inferred = engine->infer(w);
  const QualityContext ctx{task, w, 2, 2, &inferred, *engine};
  EXPECT_EQ(LooBayesianGate(0.5, 0.9).probability(ctx), 0.0);
  EXPECT_FALSE(LooBayesianGate(0.5, 0.9).satisfied(ctx));
}

TEST_F(QualityFixture, LooGateFullySensedIsCertain) {
  const auto w = make_window(3, {0, 1, 2, 3, 4, 5});
  const Matrix inferred = engine->infer(w);
  const QualityContext ctx{task, w, 2, 2, &inferred, *engine};
  EXPECT_EQ(LooBayesianGate(0.01, 0.99).probability(ctx), 1.0);
}

TEST_F(QualityFixture, LooProbabilityMonotoneInEpsilon) {
  const auto w = make_window(4, {0, 1, 3, 5});
  const Matrix inferred = engine->infer(w);
  const QualityContext ctx{task, w, 3, 3, &inferred, *engine};
  double prev = -1.0;
  for (double eps : {0.01, 0.1, 0.5, 1.0, 3.0}) {
    const double p = LooBayesianGate(eps, 0.9).probability(ctx);
    EXPECT_GE(p, prev) << "eps=" << eps;
    prev = p;
  }
}

TEST_F(QualityFixture, LooGateSatisfiedConsistentWithProbability) {
  const auto w = make_window(4, {0, 1, 3, 5});
  const Matrix inferred = engine->infer(w);
  const QualityContext ctx{task, w, 3, 3, &inferred, *engine};
  const LooBayesianGate gate(0.5, 0.9);
  EXPECT_EQ(gate.satisfied(ctx), gate.probability(ctx) >= 0.9);
}

TEST_F(QualityFixture, LooGateLargeEpsilonAlwaysSatisfied) {
  const auto w = make_window(3, {0, 1, 2});
  const Matrix inferred = engine->infer(w);
  const QualityContext ctx{task, w, 2, 2, &inferred, *engine};
  // The toy task's values live near 20; eps = 100 is unmissable.
  EXPECT_TRUE(LooBayesianGate(100.0, 0.95).satisfied(ctx));
}

TEST_F(QualityFixture, LooGateTinyEpsilonRejected) {
  const auto w = make_window(3, {0, 1, 2});
  const Matrix inferred = engine->infer(w);
  const QualityContext ctx{task, w, 2, 2, &inferred, *engine};
  EXPECT_FALSE(LooBayesianGate(1e-12, 0.5).satisfied(ctx));
}

TEST_F(QualityFixture, GateConstructorValidation) {
  EXPECT_THROW(LooBayesianGate(-1.0, 0.9), CheckError);
  EXPECT_THROW(LooBayesianGate(0.5, 0.0), CheckError);
  EXPECT_THROW(LooBayesianGate(0.5, 1.0), CheckError);
  EXPECT_THROW(GroundTruthGate(-0.1), CheckError);
}

TEST(QualityClassification, BetaPosteriorGate) {
  // Classification task: truth in category 0 everywhere; a mean-inference
  // engine will predict values near the truth, so LOO mismatches are rare
  // and the Beta posterior mass below a generous epsilon is high.
  const std::size_t cells = 8;
  Matrix truth(cells, 2);
  for (std::size_t i = 0; i < cells; ++i) {
    truth(i, 0) = 20.0 + static_cast<double>(i);
    truth(i, 1) = 25.0 + static_cast<double>(i);
  }
  std::vector<cs::CellCoord> coords(cells);
  for (std::size_t i = 0; i < cells; ++i)
    coords[i] = {static_cast<double>(i), 0.0};
  SensingTask task("cls", std::move(truth), std::move(coords),
                   ErrorMetric::aqi_classification(), 1.0);
  auto engine = std::make_shared<cs::MeanInference>();

  cs::PartialMatrix w(cells, 2);
  for (std::size_t i = 0; i < cells; ++i) w.set(i, 0, task.truth(i, 0));
  for (std::size_t i = 0; i < 5; ++i) w.set(i, 1, task.truth(i, 1));
  const Matrix inferred = engine->infer(w);
  const QualityContext ctx{task, w, 1, 1, &inferred, *engine};

  const double p_generous = LooBayesianGate(0.5, 0.9).probability(ctx);
  const double p_strict = LooBayesianGate(0.01, 0.9).probability(ctx);
  EXPECT_GT(p_generous, p_strict);
  EXPECT_GT(p_generous, 0.5);
  EXPECT_LT(p_strict, 0.2);
}

}  // namespace
}  // namespace drcell::mcs
