#include <gtest/gtest.h>

#include <memory>

#include "mcs/environment.h"
#include "test_helpers.h"

namespace drcell::mcs {
namespace {

std::shared_ptr<const SensingTask> toy_task_ptr(std::size_t cells = 6,
                                                std::size_t cycles = 12) {
  return std::make_shared<const SensingTask>(
      testing::make_toy_task(cells, cycles));
}

TEST(Environment, InitialStateIsEmpty) {
  auto env = testing::make_toy_environment(toy_task_ptr(), 0.5);
  EXPECT_EQ(env.current_cycle(), 0u);
  EXPECT_FALSE(env.episode_done());
  const auto state = env.state();
  for (double v : state) EXPECT_EQ(v, 0.0);
  const auto mask = env.action_mask();
  for (auto m : mask) EXPECT_EQ(m, 1);
}

TEST(Environment, StepMarksSelectionAndCharges) {
  auto env = testing::make_toy_environment(toy_task_ptr(), 1e-9);
  const auto r = env.step(3);
  EXPECT_EQ(r.reward, -1.0);  // cost only, quality not yet checkable
  EXPECT_FALSE(r.cycle_complete);
  EXPECT_TRUE(env.selections().selected(3, 0));
  EXPECT_EQ(env.action_mask()[3], 0);
  EXPECT_EQ(env.observations_this_cycle(), 1u);
}

TEST(Environment, DoubleSelectionThrows) {
  auto env = testing::make_toy_environment(toy_task_ptr(), 1e9);
  env.step(0);
  EXPECT_THROW(env.step(0), CheckError);
}

TEST(Environment, OutOfRangeActionThrows) {
  auto env = testing::make_toy_environment(toy_task_ptr(6, 12), 1e9);
  EXPECT_THROW(env.step(6), CheckError);
}

TEST(Environment, GenerousEpsilonCompletesAtMinObservations) {
  EnvOptions opt;
  opt.min_observations = 3;
  auto env = testing::make_toy_environment(toy_task_ptr(), 1e9, opt);
  env.step(0);
  env.step(1);
  const auto r = env.step(2);
  EXPECT_TRUE(r.cycle_complete);
  EXPECT_TRUE(r.quality_satisfied);
  // R defaults to m = 6, so the closing step earns 6 - 1 = 5.
  EXPECT_DOUBLE_EQ(r.reward, 5.0);
  EXPECT_EQ(env.current_cycle(), 1u);
}

TEST(Environment, ImpossibleEpsilonForcesFullSensing) {
  // Zero epsilon on a noisy task: only sensing everything satisfies
  // (error over an empty set = 0).
  auto task = std::make_shared<const SensingTask>(
      testing::make_toy_task(4, 3, /*noise=*/0.5));
  EnvOptions opt;
  opt.min_observations = 1;
  auto env =
      mcs::SparseMcsEnvironment(task, testing::default_engine(),
                                std::make_shared<GroundTruthGate>(0.0), opt);
  StepResult last;
  for (std::size_t cell = 0; cell < 4; ++cell) last = env.step(cell);
  EXPECT_TRUE(last.cycle_complete);
  EXPECT_TRUE(last.quality_satisfied);
  EXPECT_EQ(last.true_cycle_error, 0.0);
  EXPECT_EQ(env.stats().cycle_selected.back(), 4u);
}

TEST(Environment, EpisodeEndsAfterLastCycle) {
  auto env = testing::make_toy_environment(toy_task_ptr(6, 2), 1e9);
  // Each cycle completes after min_observations = 3 steps (huge epsilon).
  for (int step = 0; step < 3; ++step) env.step(step);
  EXPECT_FALSE(env.episode_done());
  StepResult last;
  for (int step = 0; step < 3; ++step) last = env.step(step);
  EXPECT_TRUE(last.episode_done);
  EXPECT_TRUE(env.episode_done());
  EXPECT_THROW(env.step(5), CheckError);
}

TEST(Environment, ResetRestoresInitialState) {
  auto env = testing::make_toy_environment(toy_task_ptr(), 1e9);
  env.step(0);
  env.step(1);
  env.reset();
  EXPECT_EQ(env.current_cycle(), 0u);
  EXPECT_EQ(env.selections().selected_count(), 0u);
  EXPECT_EQ(env.stats().total_selections, 0u);
  EXPECT_EQ(env.observations_this_cycle(), 0u);
}

TEST(Environment, StatsAccumulateAcrossCycles) {
  auto env = testing::make_toy_environment(toy_task_ptr(6, 3), 1e9);
  for (int cycle = 0; cycle < 3; ++cycle)
    for (int step = 0; step < 3; ++step) env.step(step);
  const auto& stats = env.stats();
  EXPECT_EQ(stats.cycles, 3u);
  EXPECT_EQ(stats.total_selections, 9u);
  EXPECT_DOUBLE_EQ(stats.average_selections_per_cycle(), 3.0);
  EXPECT_EQ(stats.cycle_errors.size(), 3u);
  EXPECT_DOUBLE_EQ(stats.total_cost, 9.0);
  // reward: each cycle = -3 + 6 = 3.
  EXPECT_DOUBLE_EQ(stats.total_reward, 9.0);
}

TEST(Environment, QualitySatisfactionRatio) {
  EpisodeStats stats;
  stats.cycles = 4;
  stats.cycle_errors = {0.1, 0.5, 0.2, 0.9};
  EXPECT_DOUBLE_EQ(stats.quality_satisfaction_ratio(0.3), 0.5);
  EXPECT_DOUBLE_EQ(stats.quality_satisfaction_ratio(1.0), 1.0);
}

TEST(Environment, StateReflectsHistoryAcrossCycles) {
  EnvOptions opt;
  opt.history_cycles = 2;
  auto env = testing::make_toy_environment(toy_task_ptr(6, 4), 1e9, opt);
  env.step(0);
  env.step(1);
  env.step(2);  // cycle 0 completes
  const auto state = env.state();
  ASSERT_EQ(state.size(), 12u);
  // Slice 0 = previous cycle (cells 0..2 selected), slice 1 = empty current.
  EXPECT_EQ(state[0], 1.0);
  EXPECT_EQ(state[1], 1.0);
  EXPECT_EQ(state[2], 1.0);
  EXPECT_EQ(state[3], 0.0);
  for (std::size_t i = 6; i < 12; ++i) EXPECT_EQ(state[i], 0.0);
}

TEST(Environment, WindowSlidesWithCycles) {
  EnvOptions opt;
  opt.inference_window = 2;
  auto env = testing::make_toy_environment(toy_task_ptr(6, 5), 1e9, opt);
  EXPECT_EQ(env.window_start(), 0u);
  for (int step = 0; step < 3; ++step) env.step(step);  // finish cycle 0
  EXPECT_EQ(env.window_start(), 0u);                    // window = {0, 1}
  for (int step = 0; step < 3; ++step) env.step(step);  // finish cycle 1
  EXPECT_EQ(env.window_start(), 1u);                    // window = {1, 2}
  // Past observations inside the window carry over.
  EXPECT_EQ(env.observation_window().observed_count_in_col(0), 3u);
}

TEST(Environment, MaxSelectionsCapForcesCycleEnd) {
  auto task = std::make_shared<const SensingTask>(
      testing::make_toy_task(6, 2, /*noise=*/1.0));
  EnvOptions opt;
  opt.min_observations = 1;
  opt.max_selections_per_cycle = 2;
  auto env = mcs::SparseMcsEnvironment(
      task, testing::default_engine(),
      std::make_shared<GroundTruthGate>(0.0), opt);  // unsatisfiable
  env.step(0);
  const auto r = env.step(1);
  EXPECT_TRUE(r.cycle_complete);
  EXPECT_FALSE(r.quality_satisfied);  // cap hit without quality
  // No bonus when q = 0: reward is just -c.
  EXPECT_DOUBLE_EQ(r.reward, -1.0);
}

TEST(Environment, CustomRewardBonusAndCost) {
  EnvOptions opt;
  opt.reward_bonus = 10.0;
  opt.cost = 2.0;
  opt.min_observations = 1;
  auto env = testing::make_toy_environment(toy_task_ptr(), 1e9, opt);
  const auto r = env.step(0);
  EXPECT_TRUE(r.cycle_complete);
  EXPECT_DOUBLE_EQ(r.reward, 10.0 - 2.0);
}

TEST(Environment, HeterogeneousCellCosts) {
  EnvOptions opt;
  opt.min_observations = 2;
  opt.cell_costs = {1.0, 5.0, 1.0, 1.0, 1.0, 1.0};
  auto env = testing::make_toy_environment(toy_task_ptr(), 1e9, opt);
  const auto r1 = env.step(1);
  EXPECT_DOUBLE_EQ(r1.reward, -5.0);
  const auto r2 = env.step(0);  // completes (min_obs = 2, huge eps)
  EXPECT_DOUBLE_EQ(r2.reward, 6.0 - 1.0);
  EXPECT_DOUBLE_EQ(env.stats().total_cost, 6.0);
}

TEST(Environment, CellCostSizeMismatchThrows) {
  EnvOptions opt;
  opt.cell_costs = {1.0, 2.0};  // task has 6 cells
  EXPECT_THROW(testing::make_toy_environment(toy_task_ptr(), 1.0, opt),
               CheckError);
}

TEST(Environment, RunCycleDrivesSelectorToCompletion) {
  auto env = testing::make_toy_environment(toy_task_ptr(), 1e9);
  std::size_t next = 0;
  const auto r = env.run_cycle(
      [&next](const SparseMcsEnvironment&) { return next++; });
  EXPECT_TRUE(r.cycle_complete);
  EXPECT_EQ(env.stats().cycle_selected.back(), 3u);  // min_observations
}

TEST(Environment, ErrorShapingRewardsErrorReduction) {
  // Twin environments over the same task and action sequence, one with
  // error_shaping enabled. Cold-start engines (warm_start = false) make
  // every inference a deterministic function of the window alone, so a
  // reference engine can reproduce the shaped env's per-step errors exactly.
  auto task = std::make_shared<const SensingTask>(
      testing::make_toy_task(6, 4, /*noise=*/0.3));
  cs::MatrixCompletionOptions eng_opt;
  eng_opt.rank = 3;
  eng_opt.warm_start = false;
  EnvOptions opt;
  opt.min_observations = 2;
  opt.max_selections_per_cycle = 4;
  const double kScale = 10.0;
  EnvOptions shaped_opt = opt;
  shaped_opt.error_shaping = kScale;
  auto gate = std::make_shared<GroundTruthGate>(1e-12);  // cycles run to cap
  SparseMcsEnvironment plain(
      task, std::make_shared<cs::MatrixCompletion>(eng_opt), gate, opt);
  SparseMcsEnvironment shaped(
      task, std::make_shared<cs::MatrixCompletion>(eng_opt), gate, shaped_opt);
  cs::MatrixCompletion ref(eng_opt);
  auto ref_error = [&] {
    return true_cycle_error(*task, shaped.observation_window(),
                            shaped.current_window_col(),
                            ref.infer(shaped.observation_window()),
                            shaped.current_cycle());
  };

  // Below min_observations: no measurable error yet, rewards identical.
  StepResult rp = plain.step(0);
  StepResult rs = shaped.step(0);
  EXPECT_DOUBLE_EQ(rs.reward, rp.reward);
  // First measurable error has no predecessor to difference against.
  rp = plain.step(1);
  rs = shaped.step(1);
  EXPECT_DOUBLE_EQ(rs.reward, rp.reward);
  double prev_err = ref_error();
  // From here every step earns its own marginal error reduction.
  rp = plain.step(2);
  rs = shaped.step(2);
  const double cur_err = ref_error();
  EXPECT_NEAR(rs.reward - rp.reward, kScale * (prev_err - cur_err), 1e-12);
  prev_err = cur_err;
  // The cap-hitting step is shaped too; its error arrives in the result.
  rp = plain.step(3);
  rs = shaped.step(3);
  ASSERT_TRUE(rs.cycle_complete);
  EXPECT_FALSE(rs.quality_satisfied);
  EXPECT_NEAR(rs.reward - rp.reward,
              kScale * (prev_err - rs.true_cycle_error), 1e-12);
  // A new cycle differences from scratch: its first measurable error is
  // unshaped rather than compared against the previous cycle's final error.
  rp = plain.step(0);
  rs = shaped.step(0);
  EXPECT_DOUBLE_EQ(rs.reward, rp.reward);
  rp = plain.step(1);
  rs = shaped.step(1);
  EXPECT_DOUBLE_EQ(rs.reward, rp.reward);
}

TEST(Environment, TrueErrorDropsWithMoreSensing) {
  // Compare final cycle error when sensing 2 cells vs 5 of 6.
  auto run = [&](std::size_t sense) {
    auto task = toy_task_ptr(6, 1);
    EnvOptions opt;
    opt.min_observations = 1;
    opt.max_selections_per_cycle = sense;
    auto env = mcs::SparseMcsEnvironment(
        task, testing::default_engine(),
        std::make_shared<GroundTruthGate>(0.0), opt);
    StepResult last;
    for (std::size_t cell = 0; cell < sense; ++cell) last = env.step(cell);
    return last.true_cycle_error;
  };
  EXPECT_LE(run(5), run(2));
}

}  // namespace
}  // namespace drcell::mcs
