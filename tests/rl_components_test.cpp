#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "rl/epsilon.h"
#include "rl/replay_buffer.h"
#include "rl/tabular.h"
#include "util/check.h"

namespace drcell::rl {
namespace {

Experience make_exp(double reward, std::size_t action = 0) {
  Experience e;
  e.state = {0.0, 0.0};
  e.action = action;
  e.reward = reward;
  e.next_state = {1.0, 0.0};
  e.next_mask = {1, 1};
  return e;
}

TEST(ReplayBuffer, AddAndSize) {
  ReplayBuffer buf(4);
  EXPECT_TRUE(buf.empty());
  buf.add(make_exp(1.0));
  buf.add(make_exp(2.0));
  EXPECT_EQ(buf.size(), 2u);
  EXPECT_EQ(buf.capacity(), 4u);
}

TEST(ReplayBuffer, NeverExceedsCapacity) {
  ReplayBuffer buf(3);
  for (int i = 0; i < 10; ++i) buf.add(make_exp(i));
  EXPECT_EQ(buf.size(), 3u);
}

TEST(ReplayBuffer, EvictsOldestFirst) {
  ReplayBuffer buf(3);
  for (int i = 0; i < 5; ++i) buf.add(make_exp(i));
  // Items 0 and 1 must be gone; 2, 3, 4 remain (in ring order).
  std::vector<double> rewards;
  for (std::size_t i = 0; i < buf.size(); ++i)
    rewards.push_back(buf.at(i).reward);
  std::sort(rewards.begin(), rewards.end());
  EXPECT_EQ(rewards, (std::vector<double>{2.0, 3.0, 4.0}));
}

TEST(ReplayBuffer, SampleFromEmptyThrows) {
  ReplayBuffer buf(2);
  Rng rng(1);
  EXPECT_THROW(buf.sample(1, rng), CheckError);
}

TEST(ReplayBuffer, SampleReturnsStoredPointers) {
  ReplayBuffer buf(8);
  for (int i = 0; i < 8; ++i) buf.add(make_exp(i));
  Rng rng(2);
  const auto sample = buf.sample(100, rng);
  EXPECT_EQ(sample.size(), 100u);
  for (const auto* e : sample) {
    ASSERT_NE(e, nullptr);
    EXPECT_GE(e->reward, 0.0);
    EXPECT_LE(e->reward, 7.0);
  }
}

TEST(ReplayBuffer, SampleCoversWholeBuffer) {
  ReplayBuffer buf(5);
  for (int i = 0; i < 5; ++i) buf.add(make_exp(i));
  Rng rng(3);
  std::set<double> seen;
  for (const auto* e : buf.sample(500, rng)) seen.insert(e->reward);
  EXPECT_EQ(seen.size(), 5u);
}

TEST(ReplayBuffer, ClearEmptiesBuffer) {
  ReplayBuffer buf(4);
  buf.add(make_exp(1.0));
  buf.clear();
  EXPECT_TRUE(buf.empty());
}

TEST(ReplayBuffer, ZeroCapacityThrows) {
  EXPECT_THROW(ReplayBuffer(0), CheckError);
}

TEST(EpsilonSchedule, LinearDecay) {
  EpsilonSchedule s(1.0, 0.1, 100);
  EXPECT_DOUBLE_EQ(s.value(0), 1.0);
  EXPECT_NEAR(s.value(50), 0.55, 1e-12);
  EXPECT_DOUBLE_EQ(s.value(100), 0.1);
  EXPECT_DOUBLE_EQ(s.value(1000), 0.1);
}

TEST(EpsilonSchedule, ExponentialDecayMonotone) {
  EpsilonSchedule s(1.0, 0.05, 100, EpsilonSchedule::Decay::kExponential);
  double prev = 1.1;
  for (std::size_t t = 0; t <= 300; t += 10) {
    const double v = s.value(t);
    EXPECT_LE(v, prev);
    EXPECT_GE(v, 0.05);
    prev = v;
  }
  EXPECT_NEAR(s.value(0), 1.0, 1e-12);
}

TEST(EpsilonSchedule, ConstantSchedule) {
  const auto s = EpsilonSchedule::constant(0.3);
  EXPECT_DOUBLE_EQ(s.value(0), 0.3);
  EXPECT_DOUBLE_EQ(s.value(99999), 0.3);
}

TEST(EpsilonSchedule, RejectsIncreasingSchedule) {
  EXPECT_THROW(EpsilonSchedule(0.1, 0.5, 10), CheckError);
  EXPECT_THROW(EpsilonSchedule(1.5, 0.1, 10), CheckError);
}

TEST(Tabular, NewStateHasZeroValues) {
  TabularQLearning q(3);
  const std::vector<double> s{0, 0, 0};
  EXPECT_EQ(q.q_value(s, 0), 0.0);
  EXPECT_EQ(q.table_size(), 0u);
}

TEST(Tabular, UpdateFollowsEquation2) {
  TabularQLearning q(2, {.alpha = 0.5, .gamma = 1.0});
  const std::vector<double> s{0, 0};
  const std::vector<double> s2{1, 0};
  const std::vector<std::uint8_t> mask{1, 1};
  // First update: Q = 0.5*0 + 0.5*(3 + 0) = 1.5.
  q.update(s, 0, 3.0, s2, mask, false);
  EXPECT_DOUBLE_EQ(q.q_value(s, 0), 1.5);
  // Teach s2 a value, then update s again: Q = 0.5*1.5 + 0.5*(3 + 2) = 3.25.
  q.update(s2, 1, 4.0, {1, 1}, mask, true);  // Q[s2,1] = 0.5*4 = 2
  EXPECT_DOUBLE_EQ(q.q_value(s2, 1), 2.0);
  q.update(s, 0, 3.0, s2, mask, false);
  EXPECT_DOUBLE_EQ(q.q_value(s, 0), 3.25);
}

TEST(Tabular, TerminalSuppressesBootstrap) {
  TabularQLearning q(2, {.alpha = 1.0, .gamma = 1.0});
  const std::vector<double> s{0, 0};
  const std::vector<double> s2{1, 0};
  q.update(s2, 0, 100.0, {0, 1}, {1, 1}, true);
  q.update(s, 0, 1.0, s2, {1, 1}, true);  // terminal: ignore V(s2)
  EXPECT_DOUBLE_EQ(q.q_value(s, 0), 1.0);
}

TEST(Tabular, StateValueRespectsMask) {
  TabularQLearning q(3, {.alpha = 1.0, .gamma = 1.0});
  const std::vector<double> s{0, 1, 0};
  q.update(s, 0, 5.0, {1, 1, 1}, {1, 1, 1}, true);
  q.update(s, 1, 9.0, {1, 1, 1}, {1, 1, 1}, true);
  EXPECT_DOUBLE_EQ(q.state_value(s, {1, 1, 1}), 9.0);
  EXPECT_DOUBLE_EQ(q.state_value(s, {1, 0, 1}), 5.0);  // best masked out
  EXPECT_DOUBLE_EQ(q.state_value(s, {0, 0, 1}), 0.0);
}

TEST(Tabular, GreedySelectionPicksBestAllowed) {
  TabularQLearning q(3, {.alpha = 1.0, .gamma = 0.9});
  Rng rng(4);
  const std::vector<double> s{0, 0, 0};
  q.update(s, 2, 10.0, {1, 0, 0}, {1, 1, 1}, true);
  EXPECT_EQ(q.select_action(s, {1, 1, 1}, 0.0, rng), 2u);
  // With action 2 masked, falls back to the best remaining (all zero ->
  // either 0 or 1, both valid).
  const auto a = q.select_action(s, {1, 1, 0}, 0.0, rng);
  EXPECT_LT(a, 2u);
}

TEST(Tabular, ExplorationAvoidsBestAction) {
  TabularQLearning q(3, {.alpha = 1.0, .gamma = 0.9});
  Rng rng(5);
  const std::vector<double> s{0, 0, 0};
  q.update(s, 0, 10.0, {1, 0, 0}, {1, 1, 1}, true);
  // epsilon = 1: always explores, so never the greedy action 0.
  for (int i = 0; i < 50; ++i)
    EXPECT_NE(q.select_action(s, {1, 1, 1}, 1.0, rng), 0u);
}

TEST(Tabular, SingleAllowedActionIgnoresEpsilon) {
  TabularQLearning q(3);
  Rng rng(6);
  EXPECT_EQ(q.select_action({0, 0, 0}, {0, 1, 0}, 1.0, rng), 1u);
}

TEST(Tabular, NoAllowedActionThrows) {
  TabularQLearning q(2);
  Rng rng(7);
  EXPECT_THROW(q.select_action({0, 0}, {0, 0}, 0.0, rng), CheckError);
}

TEST(Tabular, DistinctStatesGetDistinctRows) {
  TabularQLearning q(2, {.alpha = 1.0, .gamma = 0.0});
  q.update({0, 0}, 0, 1.0, {1, 1}, {1, 1}, true);
  q.update({1, 0}, 0, 2.0, {1, 1}, {1, 1}, true);
  EXPECT_EQ(q.table_size(), 2u);
  EXPECT_DOUBLE_EQ(q.q_value({0, 0}, 0), 1.0);
  EXPECT_DOUBLE_EQ(q.q_value({1, 0}, 0), 2.0);
}

TEST(Tabular, LargeStatePackingIsConsistent) {
  // States wider than 64 bits exercise multi-word keys.
  TabularQLearning q(2, {.alpha = 1.0, .gamma = 0.0});
  std::vector<double> s1(130, 0.0), s2(130, 0.0);
  s1[128] = 1.0;
  s2[129] = 1.0;
  q.update(s1, 0, 1.0, s1, {1, 1}, true);
  q.update(s2, 0, 2.0, s2, {1, 1}, true);
  EXPECT_EQ(q.table_size(), 2u);
  EXPECT_DOUBLE_EQ(q.q_value(s1, 0), 1.0);
  EXPECT_DOUBLE_EQ(q.q_value(s2, 0), 2.0);
}

TEST(Tabular, LearnsTwoStepChain) {
  // Chain MDP: s0 -a0-> s1 -a1-> terminal(+10). With enough sweeps the
  // Q-values propagate backwards (the Fig. 5 mechanism).
  TabularQLearning q(2, {.alpha = 0.5, .gamma = 1.0});
  const std::vector<double> s0{0, 0};
  const std::vector<double> s1{1, 0};
  const std::vector<std::uint8_t> all{1, 1};
  for (int it = 0; it < 60; ++it) {
    q.update(s0, 0, -1.0, s1, all, false);
    q.update(s1, 1, 10.0, {1, 1}, all, true);
  }
  EXPECT_NEAR(q.q_value(s1, 1), 10.0, 1e-6);
  EXPECT_NEAR(q.q_value(s0, 0), 9.0, 1e-6);
  Rng rng(8);
  EXPECT_EQ(q.select_action(s0, all, 0.0, rng), 0u);
}

}  // namespace
}  // namespace drcell::rl
