// Tests for the O(observed) completion pipeline: PartialMatrix's
// incremental observation lists vs the seed's dense-scan reference,
// consistency under LOO clear-then-restore churn, the cached window
// fingerprint shared across infer + quality gate, ThreadPool-parallel ALS
// bit-identity with the serial path, and the replay buffer's encoded-
// sequence cache.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <memory>
#include <vector>

#include "cs/matrix_completion.h"
#include "cs/partial_matrix.h"
#include "data/synthetic_field.h"
#include "mcs/quality.h"
#include "mcs/sensing_task.h"
#include "rl/dqn_trainer.h"
#include "rl/drqn_qnetwork.h"
#include "rl/replay_buffer.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace drcell {
namespace {

/// Seed-equivalent dense scans, the reference the incremental lists are
/// checked against.
std::vector<std::size_t> dense_rows_in_col(const cs::PartialMatrix& p,
                                           std::size_t c) {
  std::vector<std::size_t> out;
  for (std::size_t r = 0; r < p.rows(); ++r)
    if (p.observed(r, c)) out.push_back(r);
  return out;
}

std::vector<std::size_t> dense_cols_in_row(const cs::PartialMatrix& p,
                                           std::size_t r) {
  std::vector<std::size_t> out;
  for (std::size_t c = 0; c < p.cols(); ++c)
    if (p.observed(r, c)) out.push_back(c);
  return out;
}

double dense_mean(const cs::PartialMatrix& p) {
  double s = 0.0;
  std::size_t count = 0;
  for (std::size_t r = 0; r < p.rows(); ++r)
    for (std::size_t c = 0; c < p.cols(); ++c)
      if (p.observed(r, c)) {
        s += p.value(r, c);
        ++count;
      }
  return count ? s / static_cast<double>(count) : 0.0;
}

/// The seed's order-sensitive window hash (dense row-major scan) — the
/// cached fingerprint must reproduce it exactly.
std::uint64_t dense_fingerprint(const cs::PartialMatrix& p) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
    h ^= h >> 29;
  };
  mix(p.rows());
  mix(p.cols());
  mix(p.observed_count());
  for (std::size_t r = 0; r < p.rows(); ++r)
    for (std::size_t c = 0; c < p.cols(); ++c)
      if (p.observed(r, c)) {
        mix(r * p.cols() + c);
        mix(std::bit_cast<std::uint64_t>(p.value(r, c)));
      }
  return h;
}

/// Full consistency check of the incremental state against the dense-scan
/// reference and a from-scratch rebuild.
void expect_matches_dense_reference(const cs::PartialMatrix& p) {
  std::size_t total = 0;
  for (std::size_t r = 0; r < p.rows(); ++r) {
    const auto dense = dense_cols_in_row(p, r);
    EXPECT_EQ(p.observed_cols_in_row(r), dense) << "row " << r;
    EXPECT_EQ(p.observed_count_in_row(r), dense.size()) << "row " << r;
    total += dense.size();
  }
  for (std::size_t c = 0; c < p.cols(); ++c) {
    const auto dense = dense_rows_in_col(p, c);
    EXPECT_EQ(p.observed_rows_in_col(c), dense) << "col " << c;
    EXPECT_EQ(p.observed_count_in_col(c), dense.size()) << "col " << c;
  }
  EXPECT_EQ(p.observed_count(), total);
  EXPECT_EQ(p.observed_mean(), dense_mean(p));  // same summation order
  EXPECT_EQ(p.fingerprint(), dense_fingerprint(p));

  // From-scratch rebuild: an identical matrix built by one set() per
  // observed entry must agree on every query.
  cs::PartialMatrix rebuilt(p.rows(), p.cols());
  for (std::size_t r = 0; r < p.rows(); ++r)
    for (std::size_t c : p.observed_cols_in_row(r))
      rebuilt.set(r, c, p.value(r, c));
  EXPECT_EQ(rebuilt.observed_count(), p.observed_count());
  EXPECT_EQ(rebuilt.observed_mean(), p.observed_mean());
  EXPECT_EQ(rebuilt.fingerprint(), p.fingerprint());
  for (std::size_t r = 0; r < p.rows(); ++r)
    EXPECT_EQ(rebuilt.observed_cols_in_row(r), p.observed_cols_in_row(r));
  for (std::size_t c = 0; c < p.cols(); ++c)
    EXPECT_EQ(rebuilt.observed_rows_in_col(c), p.observed_rows_in_col(c));
}

TEST(PartialMatrixSparse, ListsMatchDenseReferenceOnRandomMasks) {
  Rng rng(101);
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t m = 1 + rng.uniform_index(14);
    const std::size_t n = 1 + rng.uniform_index(14);
    const double density = rng.uniform(0.0, 1.0);
    cs::PartialMatrix p(m, n);
    for (std::size_t r = 0; r < m; ++r)
      for (std::size_t c = 0; c < n; ++c)
        if (rng.bernoulli(density)) p.set(r, c, rng.uniform(-10.0, 10.0));
    // A few overwrites of already-observed entries (must not duplicate
    // list entries).
    for (int k = 0; k < 5 && p.observed_count() > 0; ++k) {
      const std::size_t r = rng.uniform_index(m);
      const std::size_t c = rng.uniform_index(n);
      p.set(r, c, rng.uniform(-10.0, 10.0));
    }
    expect_matches_dense_reference(p);
  }
}

TEST(PartialMatrixChurn, ClearRestoreAndOverwriteMatchFreshRebuild) {
  // Exhaustive set/clear churn over a small grid, checking the incremental
  // state against the dense reference after every kind of mutation the LOO
  // quality gate performs.
  const std::size_t m = 6, n = 5;
  cs::PartialMatrix p(m, n);
  Rng rng(7);
  for (std::size_t r = 0; r < m; ++r)
    for (std::size_t c = 0; c < n; ++c)
      if ((r + c) % 2 == 0) p.set(r, c, rng.uniform(0.0, 1.0));
  expect_matches_dense_reference(p);

  for (std::size_t r = 0; r < m; ++r)
    for (std::size_t c = 0; c < n; ++c) {
      if (p.observed(r, c)) {
        // LOO churn: clear then restore the same value.
        const double held_out = p.value(r, c);
        p.clear(r, c);
        EXPECT_FALSE(p.observed(r, c));
        expect_matches_dense_reference(p);
        p.set(r, c, held_out);
        EXPECT_TRUE(p.observed(r, c));
        EXPECT_EQ(p.value(r, c), held_out);
        // set/clear/set the same entry with a different value.
        p.set(r, c, held_out + 1.0);
        p.clear(r, c);
        p.set(r, c, held_out);
        expect_matches_dense_reference(p);
      } else {
        // Clearing an unobserved entry stays a no-op.
        const std::size_t before = p.observed_count();
        p.clear(r, c);
        EXPECT_EQ(p.observed_count(), before);
        expect_matches_dense_reference(p);
      }
    }
}

TEST(PartialMatrixFingerprint, CachedUntilMutatedAndRestoredByEqualContent) {
  cs::PartialMatrix p(4, 4);
  p.set(0, 0, 1.5);
  p.set(2, 3, -2.0);
  const std::uint64_t fp = p.fingerprint();
  EXPECT_EQ(p.fingerprint(), fp);
  EXPECT_EQ(p.fingerprint_computations(), 1u);  // second call hit the cache

  // Re-setting the identical value leaves content and cache untouched.
  p.set(0, 0, 1.5);
  EXPECT_EQ(p.fingerprint(), fp);
  EXPECT_EQ(p.fingerprint_computations(), 1u);

  // Clear + restore recomputes, but lands on the same hash.
  p.clear(2, 3);
  EXPECT_NE(p.fingerprint(), fp);
  p.set(2, 3, -2.0);
  EXPECT_EQ(p.fingerprint(), fp);

  // A value change lands on a different hash.
  p.set(0, 0, 1.25);
  EXPECT_NE(p.fingerprint(), fp);
}

/// Rank-2 field with a tunable share of entries observed.
cs::PartialMatrix make_low_rank_window(std::size_t cells, std::size_t cycles,
                                       std::uint64_t seed,
                                       double density = 0.6) {
  Rng rng(seed);
  cs::PartialMatrix window(cells, cycles);
  for (std::size_t r = 0; r < cells; ++r) {
    const double base = 20.0 + 0.7 * static_cast<double>(r);
    const double gain = 1.0 + 0.1 * static_cast<double>(r % 5);
    for (std::size_t c = 0; c < cycles; ++c)
      if (c < 2 || rng.bernoulli(density))
        window.set(r, c,
                   base + gain * std::sin(0.4 * static_cast<double>(c)));
  }
  return window;
}

TEST(FingerprintSharing, InferAndLooGateComputeOneFingerprintPerCycle) {
  // The regression the ROADMAP called out: the LOO quality gate used to
  // re-hash the window on every call. With the cache inside PartialMatrix,
  // one sensing step — inference plus gate decision on the unchanged
  // window — computes the fingerprint exactly once.
  const std::size_t cells = 10, cycles = 8;
  cs::PartialMatrix window = make_low_rank_window(cells, cycles, 3, 0.7);
  const std::size_t col = cycles - 1;
  // The assessed column needs observed and unobserved cells for the gate.
  window.set(0, col, 20.0);
  window.set(1, col, 20.5);
  window.set(2, col, 21.0);
  window.clear(5, col);
  ASSERT_EQ(window.fingerprint_computations(), 0u);

  Matrix truth(cells, cycles, 20.0);
  const mcs::SensingTask task(
      "fp-sharing", truth, data::grid_coords(2, 5, 1.0, 1.0),
      mcs::ErrorMetric::mae());
  const auto engine = std::make_shared<cs::MatrixCompletion>();
  const mcs::LooBayesianGate gate(0.5, 0.9);

  const Matrix inferred = engine->infer(window);
  EXPECT_EQ(window.fingerprint_computations(), 1u);
  const mcs::QualityContext ctx{task, window, col, col, &inferred, *engine};
  (void)gate.probability(ctx);
  EXPECT_EQ(window.fingerprint_computations(), 1u)
      << "the gate's LOO fit must reuse the cycle's cached fingerprint";
  (void)gate.probability(ctx);
  (void)engine->infer(window);
  EXPECT_EQ(window.fingerprint_computations(), 1u);

  // Next cycle: one new observation, one new fingerprint.
  window.set(6, col, 20.2);
  (void)engine->infer(window);
  (void)gate.probability(ctx);
  EXPECT_EQ(window.fingerprint_computations(), 2u);
}

TEST(ParallelAls, PooledSweepsBitIdenticalToSerial) {
  // Big enough that the sweep splits into several chunks per phase (the
  // chunking targets ~1024 observations per chunk).
  const auto window = make_low_rank_window(300, 40, 17, 0.4);
  ASSERT_GT(window.observed_count(), 4000u);

  cs::MatrixCompletionOptions opts;
  opts.warm_start = false;
  cs::MatrixCompletion serial_engine(opts);
  util::ThreadPool serial_pool(0);
  serial_engine.set_thread_pool(&serial_pool);
  cs::MatrixCompletion pooled_engine(opts);
  util::ThreadPool pool(3);
  pooled_engine.set_thread_pool(&pool);

  EXPECT_EQ(serial_engine.infer(window), pooled_engine.infer(window));

  // Warm-started engines must agree too (resume + polish sweeps).
  cs::MatrixCompletion warm_serial;
  warm_serial.set_thread_pool(&serial_pool);
  cs::MatrixCompletion warm_pooled;
  warm_pooled.set_thread_pool(&pool);
  auto evolving = window;
  Rng rng(9);
  for (int step = 0; step < 3; ++step) {
    for (int k = 0; k < 30; ++k) {
      const std::size_t r = rng.uniform_index(evolving.rows());
      const std::size_t c = rng.uniform_index(evolving.cols());
      if (!evolving.observed(r, c))
        evolving.set(r, c, 20.0 + 0.1 * static_cast<double>(r));
    }
    EXPECT_EQ(warm_serial.infer(evolving), warm_pooled.infer(evolving))
        << "step " << step;
  }
}

TEST(ParallelLoo, PooledSolvesBitIdenticalToSerial) {
  // Mirrors ParallelAls above for the other pooled completion path: the
  // per-cell leave-one-out solves fan out over the pool, and the held-out
  // predictions — hence the quality-gate decision — must be bit-identical
  // to the strictly serial pool for any worker count.
  const auto window = make_low_rank_window(120, 30, 23, 0.35);
  const std::size_t col = window.cols() - 1;
  ASSERT_GT(window.observed_rows_in_col(col).size(), 10u);

  cs::MatrixCompletionOptions opts;
  opts.warm_start = false;
  cs::MatrixCompletion serial_engine(opts);
  util::ThreadPool serial_pool(0);
  serial_engine.set_thread_pool(&serial_pool);
  cs::MatrixCompletion pooled_engine(opts);
  util::ThreadPool pool(3);
  pooled_engine.set_thread_pool(&pool);

  const auto serial = serial_engine.loo_column_predictions(window, col);
  const auto pooled = pooled_engine.loo_column_predictions(window, col);
  ASSERT_EQ(serial.size(), pooled.size());
  for (std::size_t i = 0; i < serial.size(); ++i)
    EXPECT_EQ(serial[i], pooled[i]) << "held-out index " << i;

  // The gate consuming those predictions must agree exactly too.
  Matrix truth(window.rows(), window.cols(), 20.0);
  const mcs::SensingTask task(
      "parallel-loo", truth, data::grid_coords(10, 12, 1.0, 1.0),
      mcs::ErrorMetric::mae());
  const mcs::LooBayesianGate gate(0.5, 0.9);
  const mcs::QualityContext serial_ctx{task,    window, col, col,
                                       nullptr, serial_engine};
  const mcs::QualityContext pooled_ctx{task,    window, col, col,
                                       nullptr, pooled_engine};
  EXPECT_EQ(gate.probability(serial_ctx), gate.probability(pooled_ctx));
}

rl::Experience make_experience(Rng& rng, std::size_t cells, std::size_t k) {
  rl::Experience e;
  e.state.assign(k * cells, 0.0);
  e.state[rng.uniform_index(k * cells)] = 1.0;
  e.action = rng.uniform_index(cells);
  e.reward = rng.uniform(-1.0, 5.0);
  e.next_state.assign(k * cells, 0.0);
  e.next_state[rng.uniform_index(k * cells)] = 1.0;
  e.next_mask.assign(cells, 1);
  return e;
}

TEST(ReplayEncodedCache, InvalidatedWhenRingOverwritesSlot) {
  Rng rng(1);
  rl::ReplayBuffer buf(2);
  buf.add(make_experience(rng, 4, 1));
  buf.add(make_experience(rng, 4, 1));

  std::size_t encode_calls = 0;
  const auto encode = [&](const rl::Experience& e) {
    ++encode_calls;
    rl::EncodedExperience enc;
    enc.state.reset(1, e.state.size());
    enc.next_state.reset(1, e.state.size());
    for (std::size_t i = 0; i < e.state.size(); ++i) {
      if (e.state[i] != 0.0) enc.state.append(0, i, e.state[i]);
      if (e.next_state[i] != 0.0) enc.next_state.append(0, i, e.next_state[i]);
    }
    return enc;
  };

  (void)buf.encoded(0, encode);
  (void)buf.encoded(0, encode);
  (void)buf.encoded(1, encode);
  EXPECT_EQ(encode_calls, 2u);  // one per distinct transition
  EXPECT_EQ(buf.encode_misses(), 2u);

  // The ring overwrites slot 0 — its cache entry must be recomputed, while
  // slot 1 stays cached.
  buf.add(make_experience(rng, 4, 1));
  const auto& re = buf.encoded(0, encode);
  EXPECT_EQ(encode_calls, 3u);
  EXPECT_EQ(re.state.to_dense()(0, 0), buf.at(0).state[0]);
  (void)buf.encoded(1, encode);
  EXPECT_EQ(encode_calls, 3u);

  buf.clear();
  EXPECT_EQ(buf.size(), 0u);
}

TEST(ReplayEncodedCache, ByteBudgetStopsCachingButKeepsServing) {
  Rng rng(2);
  // Each sparse [1 x 4] one-hot encoding costs 4 (index) + 8 (value) +
  // 8 (row offset) = 20 bytes; state + next_state = 40. The budget fits
  // exactly one encoding.
  rl::ReplayBuffer buf(4, /*max_cache_bytes=*/40);
  for (int i = 0; i < 4; ++i) buf.add(make_experience(rng, 4, 1));

  std::size_t encode_calls = 0;
  const auto encode = [&](const rl::Experience& e) {
    ++encode_calls;
    rl::EncodedExperience enc;
    enc.state.reset(1, e.state.size());
    enc.next_state.reset(1, e.state.size());
    for (std::size_t i = 0; i < e.state.size(); ++i) {
      if (e.state[i] != 0.0) enc.state.append(0, i, e.state[i]);
      if (e.next_state[i] != 0.0) enc.next_state.append(0, i, e.next_state[i]);
    }
    return enc;
  };

  (void)buf.encoded(0, encode);  // cached (fills the budget)
  EXPECT_EQ(buf.cache_bytes(), 40u);
  (void)buf.encoded(0, encode);
  EXPECT_EQ(encode_calls, 1u);

  // Over budget: slot 1 is served from scratch, re-encoded on every call,
  // and still returns the right transition's encoding.
  const auto& e1 = buf.encoded(1, encode);
  const std::size_t hot = static_cast<std::size_t>(
      std::find(buf.at(1).state.begin(), buf.at(1).state.end(), 1.0) -
      buf.at(1).state.begin());
  EXPECT_EQ(e1.state.to_dense()(0, hot), 1.0);
  (void)buf.encoded(1, encode);
  EXPECT_EQ(encode_calls, 3u);
  EXPECT_EQ(buf.cache_bytes(), 40u);

  // Overwriting the cached slot releases its budget; the next miss caches
  // again.
  for (int i = 0; i < 4; ++i) buf.add(make_experience(rng, 4, 1));
  EXPECT_EQ(buf.cache_bytes(), 0u);
  (void)buf.encoded(2, encode);
  EXPECT_EQ(buf.cache_bytes(), 40u);
}

TEST(ReplayEncodedCache, TrainStepsStopReencodingTransitions) {
  Rng net_rng(1);
  rl::DqnOptions options;
  options.batch_size = 8;
  options.min_replay = 8;
  rl::DqnTrainer trainer(
      std::make_unique<rl::DrqnQNetwork>(6, 2, 8, 0, net_rng), options, 7);
  Rng fill(3);
  for (int i = 0; i < 16; ++i) trainer.observe(make_experience(fill, 6, 2));

  for (int step = 0; step < 30; ++step) (void)trainer.train_step();
  // 30 steps x 8 sampled transitions would be 240 encodes without the
  // cache; with it, each of the 16 stored transitions encodes at most once.
  EXPECT_GT(trainer.replay().encode_misses(), 0u);
  EXPECT_LE(trainer.replay().encode_misses(), trainer.replay().size());
}

}  // namespace
}  // namespace drcell
