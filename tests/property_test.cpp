// Parameterised property-style sweeps over seeds and sizes: invariants that
// must hold for *every* configuration, not just hand-picked examples.
#include <gtest/gtest.h>

#include <memory>

#include "baselines/random_selector.h"
#include "cs/matrix_completion.h"
#include "mcs/environment.h"
#include "rl/epsilon.h"
#include "rl/replay_buffer.h"
#include "test_helpers.h"

namespace drcell {
namespace {

// ---------------------------------------------------------------------------
// Environment invariants across seeds / shapes.

struct EnvCase {
  std::size_t cells;
  std::size_t cycles;
  std::size_t history;
  std::size_t min_obs;
  std::uint64_t seed;
};

class EnvironmentProperty : public ::testing::TestWithParam<EnvCase> {};

TEST_P(EnvironmentProperty, EpisodeInvariantsHold) {
  const auto& param = GetParam();
  auto task = std::make_shared<const mcs::SensingTask>(
      testing::make_toy_task(param.cells, param.cycles, 0.1, param.seed));
  mcs::EnvOptions opt;
  opt.history_cycles = param.history;
  opt.min_observations = param.min_obs;
  opt.inference_window = 5;
  auto env = testing::make_toy_environment(task, 0.6, opt);
  baselines::RandomSelector selector(param.seed);

  const double bonus = static_cast<double>(param.cells);
  double recomputed_reward = 0.0;
  while (!env.episode_done()) {
    // State vector is always k*m wide and binary.
    const auto state = env.state();
    EXPECT_EQ(state.size(), param.history * param.cells);
    for (double v : state) EXPECT_TRUE(v == 0.0 || v == 1.0);

    // Mask marks exactly the unselected cells of the current cycle.
    const auto mask = env.action_mask();
    std::size_t allowed = 0;
    for (auto m : mask) allowed += m;
    EXPECT_EQ(allowed, param.cells - env.observations_this_cycle());

    const auto action = selector.select(env);
    EXPECT_EQ(mask[action], 1);
    const auto result = env.step(action);

    // Reward decomposition R·q − c.
    if (result.cycle_complete && result.quality_satisfied)
      EXPECT_DOUBLE_EQ(result.reward, bonus - 1.0);
    else
      EXPECT_DOUBLE_EQ(result.reward, -1.0);
    recomputed_reward += result.reward;
  }

  const auto& stats = env.stats();
  // Every cycle was completed exactly once.
  EXPECT_EQ(stats.cycles, param.cycles);
  EXPECT_EQ(stats.cycle_selected.size(), param.cycles);
  EXPECT_EQ(stats.cycle_errors.size(), param.cycles);
  // Selection totals agree across bookkeeping paths.
  std::size_t sum = 0;
  for (auto s : stats.cycle_selected) {
    EXPECT_GE(s, std::min(param.min_obs, param.cells));
    EXPECT_LE(s, param.cells);
    sum += s;
  }
  EXPECT_EQ(sum, stats.total_selections);
  EXPECT_EQ(env.selections().selected_count(), stats.total_selections);
  EXPECT_DOUBLE_EQ(stats.total_reward, recomputed_reward);
  // No double selection anywhere in the matrix (mark() would have thrown,
  // but verify the matrix is consistent with per-cycle counts).
  for (std::size_t t = 0; t < param.cycles; ++t)
    EXPECT_EQ(env.selections().selected_count_in_cycle(t),
              stats.cycle_selected[t]);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EnvironmentProperty,
    ::testing::Values(EnvCase{4, 6, 1, 1, 1}, EnvCase{4, 6, 2, 2, 2},
                      EnvCase{6, 10, 2, 3, 3}, EnvCase{6, 10, 4, 2, 4},
                      EnvCase{9, 8, 3, 3, 5}, EnvCase{5, 12, 2, 1, 6},
                      EnvCase{8, 5, 5, 4, 7}, EnvCase{3, 20, 2, 1, 8}));

// ---------------------------------------------------------------------------
// Replay buffer never exceeds capacity and keeps only recent items.

class ReplayProperty
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(ReplayProperty, CapacityAndRecency) {
  const auto [capacity, inserts] = GetParam();
  rl::ReplayBuffer buf(capacity);
  for (std::size_t i = 0; i < inserts; ++i) {
    rl::Experience e;
    e.state = {static_cast<double>(i)};
    e.action = 0;
    e.reward = static_cast<double>(i);
    e.next_state = {0.0};
    e.next_mask = {1};
    buf.add(std::move(e));
    EXPECT_LE(buf.size(), capacity);
  }
  EXPECT_EQ(buf.size(), std::min(capacity, inserts));
  // All retained rewards must be from the most recent window.
  const double oldest_allowed =
      inserts > capacity ? static_cast<double>(inserts - capacity) : 0.0;
  for (std::size_t i = 0; i < buf.size(); ++i)
    EXPECT_GE(buf.at(i).reward, oldest_allowed);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ReplayProperty,
    ::testing::Combine(::testing::Values<std::size_t>(1, 3, 16, 64),
                       ::testing::Values<std::size_t>(0, 1, 16, 100)));

// ---------------------------------------------------------------------------
// Epsilon schedules are monotone non-increasing and bounded.

class EpsilonProperty
    : public ::testing::TestWithParam<std::tuple<double, double, std::size_t,
                                                 rl::EpsilonSchedule::Decay>> {
};

TEST_P(EpsilonProperty, MonotoneAndBounded) {
  const auto [start, end, steps, decay] = GetParam();
  rl::EpsilonSchedule s(start, end, steps, decay);
  double prev = start + 1e-12;
  for (std::size_t t = 0; t < 3 * steps; t += std::max<std::size_t>(1, steps / 37)) {
    const double v = s.value(t);
    EXPECT_LE(v, prev + 1e-12);
    EXPECT_GE(v, end - 1e-12);
    EXPECT_LE(v, start + 1e-12);
    prev = v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EpsilonProperty,
    ::testing::Combine(
        ::testing::Values(1.0, 0.5),
        ::testing::Values(0.0, 0.05),
        ::testing::Values<std::size_t>(10, 1000),
        ::testing::Values(rl::EpsilonSchedule::Decay::kLinear,
                          rl::EpsilonSchedule::Decay::kExponential)));

// ---------------------------------------------------------------------------
// Matrix completion: error shrinks (weakly) as observations grow, for any
// seed; estimates are always finite.

class CompletionProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CompletionProperty, MonotoneImprovementAcrossDensity) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  // Rank-2 ground truth.
  const std::size_t m = 10, n = 14;
  std::vector<double> u(m), v(n), u2(m), v2(n);
  for (auto& x : u) x = rng.uniform(0.5, 1.5);
  for (auto& x : v) x = rng.uniform(0.5, 1.5);
  for (auto& x : u2) x = rng.normal();
  for (auto& x : v2) x = rng.normal();
  Matrix d(m, n);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j)
      d(i, j) = 5.0 + 2.0 * u[i] * v[j] + 0.5 * u2[i] * v2[j];

  const cs::MatrixCompletion mc;
  auto mean_error_at = [&](double density) {
    double total = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
      Rng sample_rng(seed * 100 + rep + static_cast<std::uint64_t>(density * 10));
      cs::PartialMatrix p(m, n);
      for (std::size_t i = 0; i < m; ++i)
        for (std::size_t j = 0; j < n; ++j)
          if (sample_rng.bernoulli(density)) p.set(i, j, d(i, j));
      const Matrix est = mc.infer(p);
      EXPECT_FALSE(est.has_non_finite());
      double err = 0.0;
      std::size_t count = 0;
      for (std::size_t i = 0; i < m; ++i)
        for (std::size_t j = 0; j < n; ++j)
          if (!p.observed(i, j)) {
            err += std::fabs(est(i, j) - d(i, j));
            ++count;
          }
      total += count ? err / static_cast<double>(count) : 0.0;
    }
    return total / 3.0;
  };
  EXPECT_LT(mean_error_at(0.7), mean_error_at(0.1) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, CompletionProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// ---------------------------------------------------------------------------
// LOO gate probability is monotone in epsilon for any observation pattern.

class GateProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GateProperty, ProbabilityMonotoneInEpsilon) {
  const std::uint64_t seed = GetParam();
  auto task = testing::make_toy_task(6, 6, 0.3, seed);
  auto engine = testing::default_engine();
  cs::PartialMatrix window(6, 3);
  Rng rng(seed);
  for (std::size_t c = 0; c < 2; ++c)
    for (std::size_t cell = 0; cell < 6; ++cell)
      if (rng.bernoulli(0.7)) window.set(cell, c, task.truth(cell, c));
  // Ensure at least two observations in the assessed cycle.
  window.set(0, 2, task.truth(0, 2));
  window.set(3, 2, task.truth(3, 2));
  if (rng.bernoulli(0.5)) window.set(5, 2, task.truth(5, 2));

  const Matrix inferred = engine->infer(window);
  const mcs::QualityContext ctx{task, window, 2, 2, &inferred, *engine};
  double prev = -1.0;
  for (double eps : {0.0, 0.05, 0.2, 0.5, 1.0, 2.0, 5.0}) {
    const double p = mcs::LooBayesianGate(eps, 0.9).probability(ctx);
    EXPECT_GE(p, prev - 1e-12);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    prev = p;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, GateProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace drcell
