// Linear solvers built on the decompositions. The ALS matrix-completion
// engine calls ridge_solve thousands of times per campaign, so the normal
// equations + Cholesky path is the hot one.
#pragma once

#include <span>
#include <vector>

#include "linalg/matrix.h"

namespace drcell {

/// Solves the ridge-regularised least squares problem
///   min_x ||A x - b||² + lambda ||x||²
/// via the normal equations (Aᵀ A + λ I) x = Aᵀ b with Cholesky.
/// Requires lambda > 0 or A of full column rank.
std::vector<double> ridge_solve(const Matrix& a, std::span<const double> b,
                                double lambda);

/// Solves a symmetric positive-definite system A x = b.
std::vector<double> spd_solve(const Matrix& a, std::span<const double> b);

/// Solves a general square system A x = b by partially pivoted LU.
/// Throws CheckError if the matrix is numerically singular.
std::vector<double> lu_solve(Matrix a, std::vector<double> b);

}  // namespace drcell
