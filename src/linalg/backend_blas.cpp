// The optional "blas" compute backend (compiled only with
// -DDRCELL_WITH_BLAS; CMake links the BLAS found by find_package). The
// three dense GEMM forms run through Fortran dgemm; the sparse gather pair
// and the fused gate pass reuse the native kernels (a gather over a handful
// of stored entries gains nothing from dgemm, and BLAS has no gate op).
//
// Contract tier: tolerance, not bit-exact. dgemm makes no promise about
// accumulation order, so none of the exact-arithmetic rules (ascending-k,
// zero-skip, direct accumulation) hold — exact_contract() is false, the
// bit-identity suites are replaced by the conformance suite's
// tolerance_vs_native() bound (≤1e-10 max-abs on the conformance
// workloads), and end-to-end training comparisons use the documented 1e-8
// bound. Row-major layouts map onto Fortran's column-major dgemm via
// Cᵀ = Bᵀ·Aᵀ: a row-major M x N buffer read column-major IS its transpose.
#ifdef DRCELL_WITH_BLAS

#include "linalg/backend.h"
#include "linalg/kernels.h"
#include "linalg/matrix.h"
#include "linalg/sparse_matrix.h"
#include "nn/lstm.h"

extern "C" {
// Fortran BLAS symbol — declared directly so no cblas header is required.
void dgemm_(const char* transa, const char* transb, const int* m,
            const int* n, const int* k, const double* alpha, const double* a,
            const int* lda, const double* b, const int* ldb,
            const double* beta, double* c, const int* ldc);
}

namespace drcell {

namespace {

void dgemm(char transa, char transb, int m, int n, int k, double alpha,
           const double* a, int lda, const double* b, int ldb, double beta,
           double* c, int ldc) {
  dgemm_(&transa, &transb, &m, &n, &k, &alpha, a, lda, b, ldb, &beta, c,
         ldc);
}

class BlasBackend final : public ComputeBackend {
 public:
  const char* name() const override { return "blas"; }
  bool exact_contract() const override { return false; }
  double tolerance_vs_native() const override { return 1e-10; }

  void matmul_into(const Matrix& a, const Matrix& b,
                   Matrix& out) const override {
    // out = a·b, all row-major: column-major outᵀ = bᵀ·aᵀ, and the
    // row-major buffers read column-major are exactly those transposes.
    const int m = static_cast<int>(a.rows());
    const int k = static_cast<int>(a.cols());
    const int n = static_cast<int>(b.cols());
    if (m == 0 || n == 0) return;
    if (k == 0) return;  // out stays zeroed — matches the empty-sum contract
    dgemm('N', 'N', n, m, k, 1.0, b.data().data(), n, a.data().data(), k,
          0.0, out.data().data(), n);
  }

  void matmul_transposed_other_into(const Matrix& a, const Matrix& b,
                                    Matrix& out) const override {
    // out = a·bᵀ (a: M x K, b: N x K): column-major outᵀ = b·aᵀ, with b
    // recovered from its column-major-read transpose via 'T'.
    const int m = static_cast<int>(a.rows());
    const int k = static_cast<int>(a.cols());
    const int n = static_cast<int>(b.rows());
    if (m == 0 || n == 0) return;
    if (k == 0) {
      for (double& v : out.data()) v = 0.0;  // every element is assigned
      return;
    }
    dgemm('T', 'N', n, m, k, 1.0, b.data().data(), k, a.data().data(), k,
          0.0, out.data().data(), n);
  }

  void matmul_transposed_self_add(const Matrix& a, const Matrix& b,
                                  Matrix& out) const override {
    // out += aᵀ·b (a: R x C, b: R x N): column-major outᵀ = bᵀ·a, beta = 1
    // keeps the running sum.
    const int r = static_cast<int>(a.rows());
    const int c = static_cast<int>(a.cols());
    const int n = static_cast<int>(b.cols());
    if (c == 0 || n == 0 || r == 0) return;
    dgemm('N', 'T', n, c, r, 1.0, b.data().data(), n, a.data().data(), c,
          1.0, out.data().data(), n);
  }

  void sparse_matmul_into(const SparseRowMatrix& a, const Matrix& b,
                          Matrix& out) const override {
    kernels::sparse_gather_matmul_into(a, b, out);
  }
  void sparse_matmul_transposed_self_add(const SparseRowMatrix& a,
                                         const Matrix& b,
                                         Matrix& out) const override {
    kernels::sparse_gather_transposed_self_add(a, b, out);
  }
  void lstm_gate_forward(const Matrix& z, const Matrix* c_prev, Matrix& gates,
                         Matrix& c, Matrix& tanh_c, Matrix& h) const override {
    nn::lstm_gate_forward(z, c_prev, gates, c, tanh_c, h);
  }
  void lstm_gate_backward(const Matrix& gates, const Matrix& tanh_c,
                          const Matrix* c_prev, const Matrix& dh,
                          const Matrix& dc_next, Matrix& dz,
                          Matrix& dc_prev) const override {
    nn::lstm_gate_backward(gates, tanh_c, c_prev, dh, dc_next, dz, dc_prev);
  }
};

}  // namespace

std::unique_ptr<ComputeBackend> make_blas_backend() {
  return std::make_unique<BlasBackend>();
}

}  // namespace drcell

#endif  // DRCELL_WITH_BLAS
