#include "linalg/matrix.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "linalg/backend.h"
#include "linalg/kernels.h"
#include "util/rng.h"

namespace drcell {

namespace {
// Cache-blocking tiles for the matmul kernel. The combined footprint is
// ~72 KiB (8 KiB A panel + 32 KiB B stripe + 32 KiB C stripe) — sized for
// L2 residency, with the single B row and C row the inner loop touches
// (kTileJ doubles = 1 KiB each) staying hot in L1.
constexpr std::size_t kTileI = 32;
constexpr std::size_t kTileK = 32;
constexpr std::size_t kTileJ = 128;
}  // namespace

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ ? rows.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    DRCELL_CHECK_MSG(r.size() == cols_, "ragged initialiser list");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::column(std::span<const double> data) {
  Matrix m(data.size(), 1);
  for (std::size_t i = 0; i < data.size(); ++i) m(i, 0) = data[i];
  return m;
}

Matrix Matrix::diagonal(std::span<const double> data) {
  Matrix m(data.size(), data.size());
  for (std::size_t i = 0; i < data.size(); ++i) m(i, i) = data[i];
  return m;
}

void Matrix::resize(std::size_t rows, std::size_t cols, double fill) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, fill);
}

std::span<double> Matrix::row(std::size_t r) {
  DRCELL_DCHECK(r < rows_);
  return {data_.data() + r * cols_, cols_};
}

std::span<const double> Matrix::row(std::size_t r) const {
  DRCELL_DCHECK(r < rows_);
  return {data_.data() + r * cols_, cols_};
}

std::vector<double> Matrix::col(std::size_t c) const {
  DRCELL_CHECK(c < cols_);
  std::vector<double> out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = data_[r * cols_ + c];
  return out;
}

ColumnView Matrix::col_view(std::size_t c) {
  DRCELL_CHECK(c < cols_);
  return {data_.data() + c, rows_, cols_};
}

ConstColumnView Matrix::col_view(std::size_t c) const {
  DRCELL_CHECK(c < cols_);
  return {data_.data() + c, rows_, cols_};
}

void Matrix::set_col(std::size_t c, std::span<const double> values) {
  DRCELL_CHECK(c < cols_ && values.size() == rows_);
  for (std::size_t r = 0; r < rows_; ++r) data_[r * cols_ + c] = values[r];
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  DRCELL_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  DRCELL_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& x : data_) x *= s;
  return *this;
}

Matrix Matrix::matmul(const Matrix& other) const {
  Matrix out;
  matmul_into(other, out);
  return out;
}

void Matrix::matmul_into(const Matrix& other, Matrix& out) const {
  DRCELL_CHECK_MSG(cols_ == other.rows_, "matmul shape mismatch");
  DRCELL_CHECK_MSG(&out != this && &out != &other,
                   "matmul_into output must not alias an operand");
  out.resize(rows_, other.cols_);
  BackendRegistry::active().matmul_into(*this, other, out);
}

namespace kernels {

void matmul_blocked_into(const Matrix& a_m, const Matrix& b_m, Matrix& out) {
  const std::size_t rows = a_m.rows();
  const std::size_t cols = a_m.cols();
  const std::size_t n = b_m.cols();
  const double* a = a_m.data().data();
  const double* b = b_m.data().data();
  double* c = out.data().data();
  // Blocked kernel with an 8-wide register-blocked inner tile: for each
  // 8-column C strip the 8 partial sums live in registers across the whole
  // k-tile (SIMD-friendly: two 4-wide FMA lanes), so C is loaded and stored
  // once per k-tile instead of once per k. Per output element the additions
  // still run in ascending k order — tiles in kk order, k ascending within a
  // tile — so the result is bit-identical to the plain ikj loop and, because
  // each output row depends only on its own input row, independent of the
  // batch size stacked into `this` (the batched-training determinism
  // contract; see docs/ARCHITECTURE.md). The aik == 0 skip is kept because
  // the RL state sequences are near-one-hot.
  for (std::size_t ii = 0; ii < rows; ii += kTileI) {
    const std::size_t i_end = std::min(rows, ii + kTileI);
    for (std::size_t kk = 0; kk < cols; kk += kTileK) {
      const std::size_t k_end = std::min(cols, kk + kTileK);
      for (std::size_t jj = 0; jj < n; jj += kTileJ) {
        const std::size_t j_end = std::min(n, jj + kTileJ);
        const std::size_t j_end8 = jj + (j_end - jj) / 8 * 8;
        for (std::size_t i = ii; i < i_end; ++i) {
          const double* arow = a + i * cols;
          double* crow = c + i * n;
          for (std::size_t j = jj; j < j_end8; j += 8) {
            double c0 = crow[j], c1 = crow[j + 1];
            double c2 = crow[j + 2], c3 = crow[j + 3];
            double c4 = crow[j + 4], c5 = crow[j + 5];
            double c6 = crow[j + 6], c7 = crow[j + 7];
            for (std::size_t k = kk; k < k_end; ++k) {
              const double aik = arow[k];
              if (aik == 0.0) continue;
              const double* brow = b + k * n + j;
              c0 += aik * brow[0];
              c1 += aik * brow[1];
              c2 += aik * brow[2];
              c3 += aik * brow[3];
              c4 += aik * brow[4];
              c5 += aik * brow[5];
              c6 += aik * brow[6];
              c7 += aik * brow[7];
            }
            crow[j] = c0;
            crow[j + 1] = c1;
            crow[j + 2] = c2;
            crow[j + 3] = c3;
            crow[j + 4] = c4;
            crow[j + 5] = c5;
            crow[j + 6] = c6;
            crow[j + 7] = c7;
          }
          // Sub-8 right edge of the tile: the original scalar loop.
          if (j_end8 < j_end) {
            for (std::size_t k = kk; k < k_end; ++k) {
              const double aik = arow[k];
              if (aik == 0.0) continue;
              const double* brow = b + k * n;
              for (std::size_t j = j_end8; j < j_end; ++j)
                crow[j] += aik * brow[j];
            }
          }
        }
      }
    }
  }
}

}  // namespace kernels

#ifdef DRCELL_ENABLE_REFERENCE_KERNELS
Matrix Matrix::matmul_naive(const Matrix& other) const {
  DRCELL_CHECK_MSG(cols_ == other.rows_, "matmul shape mismatch");
  Matrix out(rows_, other.cols_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < other.cols_; ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k < cols_; ++k) s += at(i, k) * other.at(k, j);
      out(i, j) = s;
    }
  return out;
}

Matrix Matrix::matmul_unblocked(const Matrix& other) const {
  DRCELL_CHECK_MSG(cols_ == other.rows_, "matmul shape mismatch");
  Matrix out(rows_, other.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double aik = data_[i * cols_ + k];
      if (aik == 0.0) continue;
      const double* brow = other.data_.data() + k * other.cols_;
      double* orow = out.data_.data() + i * other.cols_;
      for (std::size_t j = 0; j < other.cols_; ++j) orow[j] += aik * brow[j];
    }
  }
  return out;
}
#endif

Matrix Matrix::matmul_transposed_self(const Matrix& other) const {
  Matrix out(cols_, other.cols());
  matmul_transposed_self_add(other, out);
  return out;
}

void Matrix::matmul_transposed_self_add(const Matrix& other,
                                        Matrix& out) const {
  DRCELL_CHECK_MSG(rows_ == other.rows(), "matmul_transposed_self mismatch");
  DRCELL_CHECK_MSG(out.rows() == cols_ && out.cols() == other.cols(),
                   "matmul_transposed_self_add output shape mismatch");
  DRCELL_CHECK_MSG(&out != this && &out != &other,
                   "matmul_transposed_self_add output must not alias an "
                   "operand");
  BackendRegistry::active().matmul_transposed_self_add(*this, other, out);
}

namespace kernels {

void matmul_transposed_self_add(const Matrix& a_m, const Matrix& b_m,
                                Matrix& out) {
  const std::size_t rows = a_m.rows();
  const std::size_t cols = a_m.cols();
  const std::size_t n = b_m.cols();
  const double* a = a_m.data().data();
  const double* b = b_m.data().data();
  double* o = out.data().data();
  for (std::size_t k = 0; k < rows; ++k) {
    const double* arow = a + k * cols;
    const double* brow = b + k * n;
    for (std::size_t i = 0; i < cols; ++i) {
      const double aki = arow[i];
      if (aki == 0.0) continue;
      double* orow = o + i * n;
      for (std::size_t j = 0; j < n; ++j) orow[j] += aki * brow[j];
    }
  }
}

}  // namespace kernels

Matrix Matrix::matmul_transposed_other(const Matrix& other) const {
  Matrix out;
  matmul_transposed_other_into(other, out);
  return out;
}

void Matrix::matmul_transposed_other_into(const Matrix& other,
                                          Matrix& out) const {
  DRCELL_CHECK_MSG(cols_ == other.cols(),
                   "matmul_transposed_other shape mismatch");
  DRCELL_CHECK_MSG(&out != this && &out != &other,
                   "matmul_transposed_other output must not alias an "
                   "operand");
  out.resize_overwrite(rows_, other.rows_);  // every element is assigned
  BackendRegistry::active().matmul_transposed_other_into(*this, other, out);
}

namespace kernels {

void matmul_transposed_other_into(const Matrix& a_m, const Matrix& b_m,
                                  Matrix& out) {
  const std::size_t rows = a_m.rows();
  const std::size_t n = b_m.rows();
  const std::size_t depth = a_m.cols();
  const double* a = a_m.data().data();
  const double* b = b_m.data().data();
  double* c = out.data().data();
  // out(i,j) = dot(row_i(a), row_j(b)): both walks are contiguous, so no Wᵀ
  // is ever materialised. Four dots share one pass over the A row
  // (independent accumulators -> ILP); per element the additions run in
  // ascending k order and depend only on that output's own pair of rows, so
  // the result is batch-size independent like the matmul kernel.
  for (std::size_t i = 0; i < rows; ++i) {
    const double* arow = a + i * depth;
    double* crow = c + i * n;
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const double* b0 = b + j * depth;
      const double* b1 = b0 + depth;
      const double* b2 = b1 + depth;
      const double* b3 = b2 + depth;
      double c0 = 0.0, c1 = 0.0, c2 = 0.0, c3 = 0.0;
      for (std::size_t k = 0; k < depth; ++k) {
        const double aik = arow[k];
        if (aik == 0.0) continue;
        c0 += aik * b0[k];
        c1 += aik * b1[k];
        c2 += aik * b2[k];
        c3 += aik * b3[k];
      }
      crow[j] = c0;
      crow[j + 1] = c1;
      crow[j + 2] = c2;
      crow[j + 3] = c3;
    }
    for (; j < n; ++j) {
      const double* brow = b + j * depth;
      double s = 0.0;
      for (std::size_t k = 0; k < depth; ++k) {
        const double aik = arow[k];
        if (aik == 0.0) continue;
        s += aik * brow[k];
      }
      crow[j] = s;
    }
  }
}

}  // namespace kernels

Matrix Matrix::hadamard(const Matrix& other) const {
  DRCELL_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i)
    out.data_[i] *= other.data_[i];
  return out;
}

double Matrix::frobenius_norm() const {
  double s = 0.0;
  for (double x : data_) s += x * x;
  return std::sqrt(s);
}

double Matrix::max_abs() const {
  double m = 0.0;
  for (double x : data_) m = std::max(m, std::fabs(x));
  return m;
}

double Matrix::sum() const {
  double s = 0.0;
  for (double x : data_) s += x;
  return s;
}

bool Matrix::has_non_finite() const {
  for (double x : data_)
    if (!std::isfinite(x)) return true;
  return false;
}

std::string Matrix::to_string(int precision) const {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision);
  for (std::size_t r = 0; r < rows_; ++r) {
    ss << (r == 0 ? "[[" : " [");
    for (std::size_t c = 0; c < cols_; ++c) {
      if (c) ss << ", ";
      ss << (*this)(r, c);
    }
    ss << (r + 1 == rows_ ? "]]" : "]\n");
  }
  return ss.str();
}

Matrix random_normal_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (double& x : m.data()) x = rng.normal();
  return m;
}

std::vector<double> matvec(const Matrix& a, std::span<const double> x) {
  DRCELL_CHECK(a.cols() == x.size());
  std::vector<double> y(a.rows(), 0.0);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const auto row = a.row(r);
    double s = 0.0;
    for (std::size_t c = 0; c < row.size(); ++c) s += row[c] * x[c];
    y[r] = s;
  }
  return y;
}

double dot(std::span<const double> a, std::span<const double> b) {
  DRCELL_CHECK(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm2(std::span<const double> v) { return std::sqrt(dot(v, v)); }

double dot(ConstColumnView a, ConstColumnView b) {
  DRCELL_CHECK(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm2(ConstColumnView v) { return std::sqrt(dot(v, v)); }

}  // namespace drcell
