// The native kernel bodies behind the "native" compute backend — the tuned
// implementations that used to live inline in Matrix / SparseRowMatrix.
// They are plain free functions so the native backend, the conformance
// suite, and the native-pin regression test can call them without going
// through the registry. Precondition checking and output sizing are the
// callers' job (the Matrix/SparseRowMatrix methods validate before
// dispatch); kernels assume validated operands and the output conventions
// documented on ComputeBackend (linalg/backend.h).
#pragma once

#include "linalg/matrix.h"
#include "linalg/sparse_matrix.h"

namespace drcell::kernels {

/// Cache-blocked matmul with the 8-wide register-blocked inner tile.
/// Accumulates into a zeroed, pre-sized `out`. Per output element the
/// additions run in ascending-k order with the aik == 0.0 skip, and each
/// output row depends only on its own input row (the batched-determinism
/// contract).
void matmul_blocked_into(const Matrix& a, const Matrix& b, Matrix& out);

/// out(i,j) = dot(row_i(a), row_j(b)) — a·bᵀ without materialising the
/// transpose, 4 dots sharing one pass over the A row. Assigns every element
/// of the pre-sized `out`.
void matmul_transposed_other_into(const Matrix& a, const Matrix& b,
                                  Matrix& out);

/// out += aᵀ·b, k-outer over ascending rows of `a` with the zero skip —
/// the gradient-determinism primitive (stacked per-sample rows replay a
/// per-sample accumulation loop addition for addition).
void matmul_transposed_self_add(const Matrix& a, const Matrix& b, Matrix& out);

/// Sparse gather GEMM: replays exactly the additions the dense kernel would
/// perform on the densified operand, in the same order (ascending stored
/// columns, explicit zeros skipped) — bit-identical to the dense path.
/// Accumulates into a zeroed, pre-sized `out`.
void sparse_gather_matmul_into(const SparseRowMatrix& a, const Matrix& b,
                               Matrix& out);

/// out += aᵀ·b with `a` sparse — the mirrored gather of the deferred
/// parameter-gradient pass, same bit-identity argument.
void sparse_gather_transposed_self_add(const SparseRowMatrix& a,
                                       const Matrix& b, Matrix& out);

}  // namespace drcell::kernels
