#include "linalg/backend.h"

#include <atomic>
#include <cstdlib>
#include <mutex>

#include "util/check.h"

namespace drcell {

// Built-in backend factories (defined in backend_native.cpp /
// backend_reference.cpp / backend_blas.cpp). Explicit factory calls instead
// of static self-registration: drcell is a static library, and a
// self-registering TU with no referenced symbol would be dead-stripped by
// the linker.
std::unique_ptr<ComputeBackend> make_native_backend();
std::unique_ptr<ComputeBackend> make_reference_backend();
#ifdef DRCELL_WITH_BLAS
std::unique_ptr<ComputeBackend> make_blas_backend();
#endif

namespace {

#ifndef DRCELL_DEFAULT_BACKEND_NAME
#define DRCELL_DEFAULT_BACKEND_NAME "native"
#endif

struct Registry {
  std::mutex mu;
  std::vector<std::unique_ptr<ComputeBackend>> backends;
  // Hot-path dispatch state: one acquire load per kernel call.
  std::atomic<const ComputeBackend*> active{nullptr};
};

Registry& registry() {
  static Registry* r = [] {
    // Leaked intentionally: kernel dispatch must outlive every static
    // destructor (thread pools and tests may run matmuls during teardown).
    auto* reg = new Registry();
    reg->backends.push_back(make_native_backend());
    reg->backends.push_back(make_reference_backend());
#ifdef DRCELL_WITH_BLAS
    reg->backends.push_back(make_blas_backend());
#endif
    return reg;
  }();
  return *r;
}

const ComputeBackend* find_locked(Registry& r, const std::string& name) {
  for (const auto& b : r.backends)
    if (name == b->name()) return b.get();
  return nullptr;
}

}  // namespace

void BackendRegistry::register_backend(std::unique_ptr<ComputeBackend> b) {
  DRCELL_CHECK_MSG(b != nullptr, "cannot register a null backend");
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  DRCELL_CHECK_MSG(find_locked(r, b->name()) == nullptr,
                   std::string("backend '") + b->name() +
                       "' is already registered");
  r.backends.push_back(std::move(b));
}

const ComputeBackend& BackendRegistry::active() {
  Registry& r = registry();
  const ComputeBackend* a = r.active.load(std::memory_order_acquire);
  if (a != nullptr) return *a;
  // First dispatch: resolve the env var / compile-time default under the
  // lock (set_active may race; whoever stores first wins, both are valid
  // selections of registered backends).
  std::lock_guard<std::mutex> lock(r.mu);
  a = r.active.load(std::memory_order_acquire);
  if (a != nullptr) return *a;
  const char* env = std::getenv("DRCELL_BACKEND");
  const std::string name = env != nullptr && env[0] != '\0'
                               ? env
                               : DRCELL_DEFAULT_BACKEND_NAME;
  const ComputeBackend* chosen = find_locked(r, name);
  DRCELL_CHECK_MSG(chosen != nullptr,
                   "unknown compute backend '" + name +
                       "' (DRCELL_BACKEND / compile-time default)");
  r.active.store(chosen, std::memory_order_release);
  return *chosen;
}

void BackendRegistry::set_active(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  const ComputeBackend* chosen = find_locked(r, name);
  DRCELL_CHECK_MSG(chosen != nullptr,
                   "unknown compute backend '" + name + "'");
  r.active.store(chosen, std::memory_order_release);
}

const ComputeBackend* BackendRegistry::find(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  return find_locked(r, name);
}

std::vector<std::string> BackendRegistry::names() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<std::string> out;
  out.reserve(r.backends.size());
  for (const auto& b : r.backends) out.emplace_back(b->name());
  return out;
}

const char* BackendRegistry::default_backend_name() {
  return DRCELL_DEFAULT_BACKEND_NAME;
}

}  // namespace drcell
