// Sparse row-major matrix for the near-one-hot RL state sequences.
//
// The DRQN's per-step inputs are selection vectors: at the 10,000-cell
// metro tier a [32 x 10000] step matrix holds a few hundred ones in 320k
// entries, yet the dense x·Wx kernel still loads and tests every element.
// SparseRowMatrix stores each row as an ascending (column, value) list so
// the input GEMM becomes a gather: for every stored entry, accumulate
// value · W.row(column) into the output row.
//
// Bit-identity contract (tests/sparse_gather_test.cpp): the dense kernels
// accumulate each output element in ascending-k order and skip aik == 0.0
// terms, so a gather over ascending column indices — skipping explicit
// zeros the same way — performs exactly the additions the dense kernel
// performs, in the same order. matmul_into here is bit-identical to
// Matrix::matmul_into on the densified operand, and
// matmul_transposed_self_add to its dense counterpart (rows walked in
// ascending order, entries within a row ascending).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "linalg/matrix.h"

namespace drcell {

class SparseRowMatrix {
 public:
  SparseRowMatrix() = default;
  SparseRowMatrix(std::size_t rows, std::size_t cols) { reset(rows, cols); }

  /// Reshapes to rows x cols and drops all entries. Reuses the entry
  /// storage, so per-minibatch workspaces do not reallocate.
  void reset(std::size_t rows, std::size_t cols);

  /// Appends one entry. Rows must be appended in non-decreasing order and
  /// columns in strictly ascending order within a row (the order the gather
  /// kernels rely on for bit-identity with the dense kernels).
  void append(std::size_t row, std::size_t col, double value);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nonzeros() const { return idx_.size(); }
  bool empty() const { return rows_ == 0 || cols_ == 0; }
  /// Fraction of entries stored; 1.0 for an empty shape (forces the dense
  /// path rather than dividing by zero).
  double density() const;
  /// Heap bytes of the stored entries (the replay cache's budget unit).
  std::size_t byte_size() const {
    return idx_.size() * sizeof(std::uint32_t) +
           val_.size() * sizeof(double) + offsets_.size() * sizeof(std::size_t);
  }

  /// Ascending column indices / matching values of row r.
  std::span<const std::uint32_t> row_indices(std::size_t r) const;
  std::span<const double> row_values(std::size_t r) const;

  /// Densifies into `out` (resized to rows x cols, untouched entries 0).
  void to_dense(Matrix& out) const;
  Matrix to_dense() const;

  /// out = this · other via row gather: for each stored entry (r, k, v),
  /// out.row(r) += v · other.row(k). Bit-identical to
  /// Matrix::matmul_into(other, out) on the densified left operand.
  void matmul_into(const Matrix& other, Matrix& out) const;

  /// out += thisᵀ · other, accumulating in ascending row order of `this` —
  /// bit-identical to Matrix::matmul_transposed_self_add on the densified
  /// operand (the batched parameter-gradient contract).
  void matmul_transposed_self_add(const Matrix& other, Matrix& out) const;

 private:
  // offsets_ holds one entry per *opened* row (pushed the moment append()
  // first reaches that row): offsets_[r] is the start of row r's entries,
  // its end is the next opened row's start (or idx_.size() for the last
  // opened row). Rows at or past offsets_.size() are empty. O(1) amortised
  // appends, reads valid at any time.
  std::size_t row_begin(std::size_t r) const {
    DRCELL_DCHECK(r < rows_);
    return r < offsets_.size() ? offsets_[r] : idx_.size();
  }
  std::size_t row_end(std::size_t r) const {
    DRCELL_DCHECK(r < rows_);
    return r + 1 < offsets_.size() ? offsets_[r + 1] : idx_.size();
  }

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> offsets_;
  std::vector<std::uint32_t> idx_;
  std::vector<double> val_;
};

}  // namespace drcell
