#include "linalg/solvers.h"

#include <cmath>

#include "linalg/decompositions.h"

namespace drcell {

std::vector<double> ridge_solve(const Matrix& a, std::span<const double> b,
                                double lambda) {
  DRCELL_CHECK(a.rows() == b.size());
  DRCELL_CHECK(lambda >= 0.0);
  const std::size_t n = a.cols();
  // G = AᵀA + λI, rhs = Aᵀb.
  Matrix g = a.matmul_transposed_self(a);
  for (std::size_t i = 0; i < n; ++i) g(i, i) += lambda;
  std::vector<double> rhs(n, 0.0);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const auto row = a.row(r);
    const double br = b[r];
    for (std::size_t c = 0; c < n; ++c) rhs[c] += row[c] * br;
  }
  // A fixed lambda can be negligible against extreme data scales, leaving
  // the Gram matrix numerically semidefinite. Escalate a scale-aware jitter
  // until the factorisation succeeds.
  double trace = 0.0;
  for (std::size_t i = 0; i < n; ++i) trace += g(i, i);
  double jitter = 1e-12 * std::max(trace / static_cast<double>(n), 1.0);
  for (int attempt = 0; attempt < 8; ++attempt) {
    try {
      return Cholesky(g).solve(rhs);
    } catch (const CheckError&) {
      for (std::size_t i = 0; i < n; ++i) g(i, i) += jitter;
      jitter *= 100.0;
    }
  }
  return Cholesky(g).solve(rhs);
}

std::vector<double> spd_solve(const Matrix& a, std::span<const double> b) {
  return Cholesky(a).solve(b);
}

std::vector<double> lu_solve(Matrix a, std::vector<double> b) {
  DRCELL_CHECK_MSG(a.rows() == a.cols(), "lu_solve requires a square matrix");
  DRCELL_CHECK(a.rows() == b.size());
  const std::size_t n = a.rows();
  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting.
    std::size_t piv = k;
    for (std::size_t i = k + 1; i < n; ++i)
      if (std::fabs(a(i, k)) > std::fabs(a(piv, k))) piv = i;
    DRCELL_CHECK_MSG(std::fabs(a(piv, k)) > 1e-300, "singular matrix");
    if (piv != k) {
      for (std::size_t j = 0; j < n; ++j) std::swap(a(k, j), a(piv, j));
      std::swap(b[k], b[piv]);
    }
    for (std::size_t i = k + 1; i < n; ++i) {
      const double f = a(i, k) / a(k, k);
      a(i, k) = 0.0;
      if (f == 0.0) continue;
      for (std::size_t j = k + 1; j < n; ++j) a(i, j) -= f * a(k, j);
      b[i] -= f * b[k];
    }
  }
  std::vector<double> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = b[ii];
    for (std::size_t j = ii + 1; j < n; ++j) s -= a(ii, j) * x[j];
    x[ii] = s / a(ii, ii);
  }
  return x;
}

}  // namespace drcell
