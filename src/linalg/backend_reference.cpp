// The "reference" compute backend: the retained pre-optimisation kernels,
// promoted out of DRCELL_ENABLE_REFERENCE_KERNELS into an always-built
// backend. Dense matmul is the seed's unblocked ikj loop; the transposed
// forms are plain per-element loop nests; the sparse pair is the j-outer
// gather; the LSTM gates are the scalar std::tanh / nn::sigmoid passes.
//
// Every matrix kernel here upholds the exact-arithmetic contract
// (linalg/backend.h): per output element the additions run in ascending-k
// order, zero terms are skipped, and contributions accumulate directly into
// the output element — so each kernel is bit-identical to its native
// counterpart even though the loop nests differ, and all the bit-identity
// suites (sparse-vs-dense, batched-vs-per-sample, worker invariance) hold
// under this backend unchanged. Only the gate nonlinearities diverge from
// native (std:: vs fastmath, within the documented ≤1e-12 fastmath bound),
// which is what tolerance_vs_native() covers.
#include "linalg/backend.h"
#include "linalg/matrix.h"
#include "linalg/sparse_matrix.h"
#include "nn/lstm.h"

namespace drcell {

namespace {

class ReferenceBackend final : public ComputeBackend {
 public:
  const char* name() const override { return "reference"; }
  bool exact_contract() const override { return true; }
  // Matrix kernels are exact vs native; the std:: gate passes diverge from
  // the fused fastmath ones by ≤1e-12 relative per activation, so 1e-10
  // bounds any single conformance forward comfortably.
  double tolerance_vs_native() const override { return 1e-10; }

  void matmul_into(const Matrix& a_m, const Matrix& b_m,
                   Matrix& out) const override {
    // The seed's kernel before the blocked overhaul: single-level ikj with
    // raw pointers and the zero-skip, accumulating row by row.
    const std::size_t rows = a_m.rows();
    const std::size_t cols = a_m.cols();
    const std::size_t n = b_m.cols();
    const double* a = a_m.data().data();
    const double* b = b_m.data().data();
    double* o = out.data().data();
    for (std::size_t i = 0; i < rows; ++i) {
      for (std::size_t k = 0; k < cols; ++k) {
        const double aik = a[i * cols + k];
        if (aik == 0.0) continue;
        const double* brow = b + k * n;
        double* orow = o + i * n;
        for (std::size_t j = 0; j < n; ++j) orow[j] += aik * brow[j];
      }
    }
  }

  void matmul_transposed_other_into(const Matrix& a_m, const Matrix& b_m,
                                    Matrix& out) const override {
    // Textbook per-element dot over contiguous rows (no 4-wide unroll).
    const std::size_t rows = a_m.rows();
    const std::size_t n = b_m.rows();
    const std::size_t depth = a_m.cols();
    const double* a = a_m.data().data();
    const double* b = b_m.data().data();
    double* o = out.data().data();
    for (std::size_t i = 0; i < rows; ++i) {
      const double* arow = a + i * depth;
      for (std::size_t j = 0; j < n; ++j) {
        const double* brow = b + j * depth;
        double s = 0.0;
        for (std::size_t k = 0; k < depth; ++k) {
          const double aik = arow[k];
          if (aik == 0.0) continue;
          s += aik * brow[k];
        }
        o[i * n + j] = s;
      }
    }
  }

  void matmul_transposed_self_add(const Matrix& a_m, const Matrix& b_m,
                                  Matrix& out) const override {
    // Per-element nest (i, j outer; k ascending) accumulating directly into
    // out(i, j) — NOT into a local sum first, which would break the
    // batched-vs-per-sample replay (out + (t1+t2) != (out+t1)+t2).
    const std::size_t rows = a_m.rows();
    const std::size_t cols = a_m.cols();
    const std::size_t n = b_m.cols();
    const double* a = a_m.data().data();
    const double* b = b_m.data().data();
    double* o = out.data().data();
    for (std::size_t i = 0; i < cols; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        double& oij = o[i * n + j];
        for (std::size_t k = 0; k < rows; ++k) {
          const double aki = a[k * cols + i];
          if (aki == 0.0) continue;
          oij += aki * b[k * n + j];
        }
      }
    }
  }

  void sparse_matmul_into(const SparseRowMatrix& a, const Matrix& b,
                          Matrix& out) const override {
    // j-outer gather: same additions per output element, in the same
    // ascending stored-entry order, as the native row-at-a-time gather.
    const std::size_t n = b.cols();
    for (std::size_t r = 0; r < a.rows(); ++r) {
      const auto cols = a.row_indices(r);
      const auto vals = a.row_values(r);
      double* orow = out.row(r).data();
      for (std::size_t j = 0; j < n; ++j) {
        for (std::size_t e = 0; e < cols.size(); ++e) {
          const double v = vals[e];
          if (v == 0.0) continue;
          orow[j] += v * b(cols[e], j);
        }
      }
    }
  }

  void sparse_matmul_transposed_self_add(const SparseRowMatrix& a,
                                         const Matrix& b,
                                         Matrix& out) const override {
    // Mirrored gather, entry-at-a-time like native (k must stay the outer
    // loop: out row `cols[e]` collects contributions from every input row
    // k that stores that column, in ascending-k order).
    const std::size_t n = b.cols();
    for (std::size_t k = 0; k < a.rows(); ++k) {
      const auto cols = a.row_indices(k);
      const auto vals = a.row_values(k);
      for (std::size_t e = 0; e < cols.size(); ++e) {
        const double v = vals[e];
        if (v == 0.0) continue;
        double* orow = out.row(cols[e]).data();
        for (std::size_t j = 0; j < n; ++j) orow[j] += v * b(k, j);
      }
    }
  }

  void lstm_gate_forward(const Matrix& z, const Matrix* c_prev, Matrix& gates,
                         Matrix& c, Matrix& tanh_c, Matrix& h) const override {
    nn::lstm_gate_forward_reference(z, c_prev, gates, c, tanh_c, h);
  }
  void lstm_gate_backward(const Matrix& gates, const Matrix& tanh_c,
                          const Matrix* c_prev, const Matrix& dh,
                          const Matrix& dc_next, Matrix& dz,
                          Matrix& dc_prev) const override {
    nn::lstm_gate_backward_reference(gates, tanh_c, c_prev, dh, dc_next, dz,
                                     dc_prev);
  }
};

}  // namespace

std::unique_ptr<ComputeBackend> make_reference_backend() {
  return std::make_unique<ReferenceBackend>();
}

}  // namespace drcell
