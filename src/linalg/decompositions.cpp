#include "linalg/decompositions.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace drcell {

Cholesky::Cholesky(const Matrix& a) {
  DRCELL_CHECK_MSG(a.rows() == a.cols(), "Cholesky requires a square matrix");
  const std::size_t n = a.rows();
  l = Matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double d = a(j, j);
    for (std::size_t k = 0; k < j; ++k) d -= l(j, k) * l(j, k);
    DRCELL_CHECK_MSG(d > 0.0, "matrix is not positive definite");
    l(j, j) = std::sqrt(d);
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
      l(i, j) = s / l(j, j);
    }
  }
}

std::vector<double> Cholesky::forward(std::span<const double> b) const {
  const std::size_t n = l.rows();
  DRCELL_CHECK(b.size() == n);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= l(i, k) * y[k];
    y[i] = s / l(i, i);
  }
  return y;
}

std::vector<double> Cholesky::solve(std::span<const double> b) const {
  const std::size_t n = l.rows();
  std::vector<double> y = forward(b);
  // Back substitution with Lᵀ.
  std::vector<double> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= l(k, ii) * x[k];
    x[ii] = s / l(ii, ii);
  }
  return x;
}

QR::QR(const Matrix& a) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  DRCELL_CHECK_MSG(m >= n, "QR requires rows >= cols");
  // Modified Gram-Schmidt is adequate for the well-conditioned, regularised
  // systems this library produces, and keeps thin Q directly.
  q = a;
  r = Matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    // In-place strided views: no per-column std::vector copies in the loop.
    const auto qj = q.col_view(j);
    for (std::size_t i = 0; i < j; ++i) {
      const ConstColumnView qi = q.col_view(i);
      const double rij = dot(qi, qj);
      r(i, j) = rij;
      for (std::size_t k = 0; k < m; ++k) qj[k] -= rij * qi[k];
    }
    const double njj = norm2(qj);
    DRCELL_CHECK_MSG(njj > 1e-300, "rank-deficient matrix in QR");
    r(j, j) = njj;
    for (std::size_t k = 0; k < m; ++k) qj[k] /= njj;
  }
}

std::vector<double> QR::solve(std::span<const double> b) const {
  DRCELL_CHECK(b.size() == q.rows());
  const std::size_t n = r.rows();
  // y = Qᵀ b
  std::vector<double> y(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    double s = 0.0;
    for (std::size_t i = 0; i < q.rows(); ++i) s += q(i, j) * b[i];
    y[j] = s;
  }
  // Back substitution R x = y.
  std::vector<double> x(n);
  for (std::size_t jj = n; jj-- > 0;) {
    double s = y[jj];
    for (std::size_t k = jj + 1; k < n; ++k) s -= r(jj, k) * x[k];
    x[jj] = s / r(jj, jj);
  }
  return x;
}

SVD::SVD(const Matrix& a, int max_sweeps, double tol) {
  // One-sided Jacobi on the columns of a working copy W: rotate column pairs
  // until all are mutually orthogonal; then s_i = ||w_i||, u_i = w_i / s_i.
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  DRCELL_CHECK_MSG(m > 0 && n > 0, "SVD of empty matrix");
  // Work on AT if the matrix is wide so that rows >= cols.
  const bool transposed_input = m < n;
  Matrix w = transposed_input ? a.transposed() : a;
  const std::size_t wr = w.rows();
  const std::size_t wc = w.cols();
  Matrix vt = Matrix::identity(wc);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    bool converged = true;
    for (std::size_t p = 0; p + 1 < wc; ++p) {
      for (std::size_t q_ = p + 1; q_ < wc; ++q_) {
        double app = 0.0, aqq = 0.0, apq = 0.0;
        for (std::size_t i = 0; i < wr; ++i) {
          const double wp = w(i, p);
          const double wq = w(i, q_);
          app += wp * wp;
          aqq += wq * wq;
          apq += wp * wq;
        }
        if (std::fabs(apq) <= tol * std::sqrt(app * aqq) ||
            (app == 0.0 && aqq == 0.0)) {
          continue;
        }
        converged = false;
        const double tau = (aqq - app) / (2.0 * apq);
        const double t = (tau >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(tau) + std::sqrt(1.0 + tau * tau));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        for (std::size_t i = 0; i < wr; ++i) {
          const double wp = w(i, p);
          const double wq = w(i, q_);
          w(i, p) = c * wp - s * wq;
          w(i, q_) = s * wp + c * wq;
        }
        for (std::size_t i = 0; i < wc; ++i) {
          const double vp = vt(i, p);
          const double vq = vt(i, q_);
          vt(i, p) = c * vp - s * vq;
          vt(i, q_) = s * vp + c * vq;
        }
      }
    }
    if (converged) break;
  }

  // Extract singular values and sort descending.
  std::vector<double> sv(wc);
  for (std::size_t j = 0; j < wc; ++j) {
    double s = 0.0;
    for (std::size_t i = 0; i < wr; ++i) s += w(i, j) * w(i, j);
    sv[j] = std::sqrt(s);
  }
  std::vector<std::size_t> order(wc);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t i, std::size_t j) { return sv[i] > sv[j]; });

  Matrix uu(wr, wc);
  Matrix vv(wc, wc);
  singular.resize(wc);
  for (std::size_t jj = 0; jj < wc; ++jj) {
    const std::size_t src = order[jj];
    singular[jj] = sv[src];
    const double inv = sv[src] > 0.0 ? 1.0 / sv[src] : 0.0;
    for (std::size_t i = 0; i < wr; ++i) uu(i, jj) = w(i, src) * inv;
    for (std::size_t i = 0; i < wc; ++i) vv(i, jj) = vt(i, src);
  }
  if (transposed_input) {
    u = std::move(vv);
    v = std::move(uu);
  } else {
    u = std::move(uu);
    v = std::move(vv);
  }
}

std::size_t SVD::rank(double rel_tol) const {
  if (singular.empty() || singular[0] == 0.0) return 0;
  const double cutoff = singular[0] * rel_tol;
  std::size_t r = 0;
  for (double s : singular)
    if (s > cutoff) ++r;
  return r;
}

Matrix SVD::reconstruct() const {
  Matrix us = u;
  for (std::size_t j = 0; j < singular.size(); ++j)
    for (std::size_t i = 0; i < us.rows(); ++i) us(i, j) *= singular[j];
  return us.matmul(v.transposed());
}

}  // namespace drcell
