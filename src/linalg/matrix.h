// Dense row-major double matrix used throughout the library (neural nets,
// matrix completion, the GP dataset generator).
//
// The class is intentionally value-semantic and small: the workloads in
// this repo are at most a few thousand elements per matrix, so clarity and
// safety (bounds checks stay on in release) beat BLAS-grade tuning.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "util/check.h"

namespace drcell {

class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() = default;
  /// rows x cols matrix, zero-initialised (or filled with `fill`).
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);
  /// Builds from nested initialiser lists; all rows must be equally long.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix identity(std::size_t n);
  /// Column vector from data.
  static Matrix column(std::span<const double> data);
  /// Diagonal matrix from data.
  static Matrix diagonal(std::span<const double> data);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    DRCELL_CHECK_MSG(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    DRCELL_CHECK_MSG(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }

  /// Mutable view of row r.
  std::span<double> row(std::size_t r);
  std::span<const double> row(std::size_t r) const;
  /// Copy of column c.
  std::vector<double> col(std::size_t c) const;
  void set_col(std::size_t c, std::span<const double> values);

  std::span<double> data() { return data_; }
  std::span<const double> data() const { return data_; }

  Matrix transposed() const;

  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double s);
  friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
  friend Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
  friend Matrix operator*(Matrix a, double s) { return a *= s; }
  friend Matrix operator*(double s, Matrix a) { return a *= s; }
  bool operator==(const Matrix& other) const = default;

  /// Matrix product this * other.
  Matrix matmul(const Matrix& other) const;
  /// thisᵀ * other without materialising the transpose.
  Matrix matmul_transposed_self(const Matrix& other) const;
  /// Element-wise (Hadamard) product.
  Matrix hadamard(const Matrix& other) const;
  /// Applies f to every element in place.
  template <typename F>
  Matrix& apply(F&& f) {
    for (double& x : data_) x = f(x);
    return *this;
  }

  /// Frobenius norm.
  double frobenius_norm() const;
  /// Largest absolute element; 0 when empty.
  double max_abs() const;
  /// Sum of all elements.
  double sum() const;
  /// True if any element is NaN or infinite.
  bool has_non_finite() const;

  std::string to_string(int precision = 4) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// y = A x for a column-vector x given as a span. Returns the result vector.
std::vector<double> matvec(const Matrix& a, std::span<const double> x);
/// Dot product. Sizes must match.
double dot(std::span<const double> a, std::span<const double> b);
/// Euclidean norm.
double norm2(std::span<const double> v);

}  // namespace drcell
