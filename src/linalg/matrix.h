// Dense row-major double matrix used throughout the library (neural nets,
// matrix completion, the GP dataset generator).
//
// The class is value-semantic, but the multiply kernels are tuned: matmul is
// blocked/tiled with a raw-pointer inner loop, matmul_into reuses output
// storage across calls, and per-element bounds checks are DRCELL_DCHECKs —
// on in debug/DCHECK builds, compiled out of release hot loops.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "util/check.h"

namespace drcell {

class Rng;

/// Read-only strided view of one matrix column. Lets column-oriented
/// algorithms (Gram–Schmidt, ALS gathers) walk a column without copying it
/// into a fresh std::vector per visit.
class ConstColumnView {
 public:
  ConstColumnView(const double* first, std::size_t size, std::size_t stride)
      : first_(first), size_(size), stride_(stride) {}

  std::size_t size() const { return size_; }
  double operator[](std::size_t i) const {
    DRCELL_DCHECK(i < size_);
    return first_[i * stride_];
  }

 private:
  const double* first_;
  std::size_t size_;
  std::size_t stride_;
};

/// Mutable strided view of one matrix column.
class ColumnView {
 public:
  ColumnView(double* first, std::size_t size, std::size_t stride)
      : first_(first), size_(size), stride_(stride) {}

  std::size_t size() const { return size_; }
  double& operator[](std::size_t i) const {
    DRCELL_DCHECK(i < size_);
    return first_[i * stride_];
  }
  operator ConstColumnView() const { return {first_, size_, stride_}; }

 private:
  double* first_;
  std::size_t size_;
  std::size_t stride_;
};

class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() = default;
  /// rows x cols matrix, zero-initialised (or filled with `fill`).
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);
  /// Builds from nested initialiser lists; all rows must be equally long.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix identity(std::size_t n);
  /// Column vector from data.
  static Matrix column(std::span<const double> data);
  /// Diagonal matrix from data.
  static Matrix diagonal(std::span<const double> data);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    DRCELL_DCHECK_MSG(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    DRCELL_DCHECK_MSG(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }
  /// Always-checked element access regardless of build mode (boundary code,
  /// parsers, and the naive reference kernels use it).
  double at(std::size_t r, std::size_t c) const {
    DRCELL_CHECK_MSG(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }

  /// Reshapes to rows x cols, filling with `fill`. Reuses the existing
  /// allocation when capacity allows, so hot loops can recycle workspaces.
  void resize(std::size_t rows, std::size_t cols, double fill = 0.0);
  /// resize() without the fill guarantee: when the shape is already
  /// rows x cols the contents are left untouched, so workspaces whose every
  /// element the caller overwrites skip a redundant zero pass per call.
  void resize_overwrite(std::size_t rows, std::size_t cols) {
    if (rows == rows_ && cols == cols_) return;
    resize(rows, cols);
  }

  /// Mutable view of row r.
  std::span<double> row(std::size_t r);
  std::span<const double> row(std::size_t r) const;
  /// Copy of column c.
  std::vector<double> col(std::size_t c) const;
  /// Strided no-copy views of column c.
  ColumnView col_view(std::size_t c);
  ConstColumnView col_view(std::size_t c) const;
  void set_col(std::size_t c, std::span<const double> values);

  std::span<double> data() { return data_; }
  std::span<const double> data() const { return data_; }

  Matrix transposed() const;

  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double s);
  friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
  friend Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
  friend Matrix operator*(Matrix a, double s) { return a *= s; }
  friend Matrix operator*(double s, Matrix a) { return a *= s; }
  bool operator==(const Matrix& other) const = default;

  /// Matrix product this * other (blocked/tiled kernel).
  Matrix matmul(const Matrix& other) const;
  /// Matrix product written into `out`, reusing its storage when already
  /// correctly shaped. `out` must not alias either operand.
  void matmul_into(const Matrix& other, Matrix& out) const;
#ifdef DRCELL_ENABLE_REFERENCE_KERNELS
  /// Benchmark floor: textbook i-j-k product through the always-checked
  /// accessor (strided B walk, bounds check per element). This is the
  /// unoptimised-scalar lower bound the perf gate compares against, NOT the
  /// seed implementation — see matmul_unblocked for that.
  Matrix matmul_naive(const Matrix& other) const;
  /// The seed's actual kernel before this overhaul: single-level ikj with
  /// raw pointers and the zero-skip, unblocked. Retained so the report can
  /// show the blocked kernel's gain over what the repo really shipped.
  Matrix matmul_unblocked(const Matrix& other) const;
#endif
  /// thisᵀ * other without materialising the transpose.
  Matrix matmul_transposed_self(const Matrix& other) const;
  /// out += thisᵀ * other, accumulating directly into `out` (must already be
  /// cols x other.cols). Contributions are added in ascending row order of
  /// `this`, which is what makes batched parameter-gradient accumulation
  /// bit-identical to a per-sample loop: stacking per-sample rows and calling
  /// this replays exactly the additions the per-sample path would perform.
  void matmul_transposed_self_add(const Matrix& other, Matrix& out) const;
  /// this * otherᵀ without materialising the transpose. Both operands are
  /// walked along contiguous rows (out(i,j) = dot(row_i, other row_j), k
  /// ascending), so backward passes no longer build Wᵀ every step.
  Matrix matmul_transposed_other(const Matrix& other) const;
  /// this * otherᵀ written into `out`, reusing its storage when already
  /// correctly shaped. `out` must not alias either operand.
  void matmul_transposed_other_into(const Matrix& other, Matrix& out) const;
  /// Element-wise (Hadamard) product.
  Matrix hadamard(const Matrix& other) const;
  /// Applies f to every element in place.
  template <typename F>
  Matrix& apply(F&& f) {
    for (double& x : data_) x = f(x);
    return *this;
  }

  /// Frobenius norm.
  double frobenius_norm() const;
  /// Largest absolute element; 0 when empty.
  double max_abs() const;
  /// Sum of all elements.
  double sum() const;
  /// True if any element is NaN or infinite.
  bool has_non_finite() const;

  std::string to_string(int precision = 4) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// rows x cols matrix with i.i.d. standard-normal entries (tests, benches,
/// and factor initialisation share this instead of rolling their own).
Matrix random_normal_matrix(std::size_t rows, std::size_t cols, Rng& rng);

/// y = A x for a column-vector x given as a span. Returns the result vector.
std::vector<double> matvec(const Matrix& a, std::span<const double> x);
/// Dot product. Sizes must match.
double dot(std::span<const double> a, std::span<const double> b);
double dot(ConstColumnView a, ConstColumnView b);
/// Euclidean norm.
double norm2(std::span<const double> v);
double norm2(ConstColumnView v);

}  // namespace drcell
