// The "native" compute backend: the repo's tuned kernels, verbatim — the
// blocked/register-tiled matmul, the transpose-free GEMM pair, the sparse
// gather pair, and the fused fastmath LSTM gate pass. This backend is the
// bit-exactness reference every other backend is measured against
// (tolerance_vs_native() == 0 by definition), and the conformance suite
// pins it bit-identical to the pre-registry kernels via linalg/kernels.h.
#include "linalg/backend.h"
#include "linalg/kernels.h"
#include "nn/lstm.h"

namespace drcell {

namespace {

class NativeBackend final : public ComputeBackend {
 public:
  const char* name() const override { return "native"; }
  bool exact_contract() const override { return true; }
  double tolerance_vs_native() const override { return 0.0; }

  void matmul_into(const Matrix& a, const Matrix& b,
                   Matrix& out) const override {
    kernels::matmul_blocked_into(a, b, out);
  }
  void matmul_transposed_other_into(const Matrix& a, const Matrix& b,
                                    Matrix& out) const override {
    kernels::matmul_transposed_other_into(a, b, out);
  }
  void matmul_transposed_self_add(const Matrix& a, const Matrix& b,
                                  Matrix& out) const override {
    kernels::matmul_transposed_self_add(a, b, out);
  }
  void sparse_matmul_into(const SparseRowMatrix& a, const Matrix& b,
                          Matrix& out) const override {
    kernels::sparse_gather_matmul_into(a, b, out);
  }
  void sparse_matmul_transposed_self_add(const SparseRowMatrix& a,
                                         const Matrix& b,
                                         Matrix& out) const override {
    kernels::sparse_gather_transposed_self_add(a, b, out);
  }
  void lstm_gate_forward(const Matrix& z, const Matrix* c_prev, Matrix& gates,
                         Matrix& c, Matrix& tanh_c, Matrix& h) const override {
    nn::lstm_gate_forward(z, c_prev, gates, c, tanh_c, h);
  }
  void lstm_gate_backward(const Matrix& gates, const Matrix& tanh_c,
                          const Matrix* c_prev, const Matrix& dh,
                          const Matrix& dc_next, Matrix& dz,
                          Matrix& dc_prev) const override {
    nn::lstm_gate_backward(gates, tanh_c, c_prev, dh, dc_next, dz, dc_prev);
  }
};

}  // namespace

std::unique_ptr<ComputeBackend> make_native_backend() {
  return std::make_unique<NativeBackend>();
}

}  // namespace drcell
