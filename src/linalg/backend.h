// Swappable compute backends for the kernel surface the engine dispatches
// through: the three dense GEMM forms (blocked matmul, A·Bᵀ, out += Aᵀ·B),
// the SparseRowMatrix gather GEMM pair, and the fused LSTM gate pass.
// Everything above this layer — `Matrix`, `SparseRowMatrix`, `nn::Lstm`,
// and therefore every Q-network, trainer, and campaign — routes through the
// active backend, so a deployment can swap kernel implementations (native
// tuned loops, the retained naive reference, a BLAS build) without forking
// src/linalg or src/nn.
//
// Contract tiers (pinned per backend by tests/backend_conformance.inc.cc,
// compiled once per registered backend):
//
//  * exact-contract backends (`native`, `reference`) promise the repo's
//    exact-arithmetic rules: per output element the additions run in
//    ascending-k order, aik == 0.0 terms are skipped, contributions
//    accumulate directly into the output (no per-element temporaries), and
//    each output row depends only on its own input row. Those four rules
//    are what make sparse-vs-dense gather bit-identity, batched-vs-
//    per-sample training bit-identity, and worker-count invariance hold —
//    see docs/ARCHITECTURE.md.
//  * tolerance backends (`blas`) make no accumulation-order promise and are
//    instead held to `tolerance_vs_native()` (≤1e-10 max-abs on the
//    conformance workloads) against the native kernels.
//
// Selection order: BackendRegistry::set_active() > the DRCELL_BACKEND
// environment variable (read once, at the first active() call) > the
// compile-time default (CMake cache variable DRCELL_DEFAULT_BACKEND,
// "native" unless overridden). Unknown names fail loudly via DRCELL_CHECK.
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace drcell {

class Matrix;
class SparseRowMatrix;

/// One kernel implementation set. Backends are stateless (all methods
/// const): the same instance is shared by every thread of the pool, and the
/// worker-count-invariance contract assumes a kernel call is a pure
/// function of its operands.
class ComputeBackend {
 public:
  virtual ~ComputeBackend() = default;

  /// Registry key ("native", "reference", "blas", ...).
  virtual const char* name() const = 0;

  /// True when the backend upholds the exact-arithmetic contract above.
  /// The full drcell_tests suite (whose bit-identity tests assume it) is
  /// only guaranteed to pass under exact-contract backends; tolerance
  /// backends are covered by their conformance suite instead.
  virtual bool exact_contract() const = 0;

  /// Max |x - x_native| permitted on the conformance workloads for
  /// single-kernel and single-forward comparisons against the native
  /// backend. 0.0 for native itself. (End-to-end training comparisons use
  /// the looser documented 1e-8 bound — the same one the fastmath-vs-std::
  /// gate contract already established.)
  virtual double tolerance_vs_native() const = 0;

  // --- Dense GEMM surface. Shape/alias checking and output sizing happen
  // in the Matrix methods before dispatch; kernels receive validated
  // operands. `out` arrives zeroed for matmul_into (kernels accumulate),
  // sized but unspecified for matmul_transposed_other_into (kernels assign
  // every element), and carrying the running sum for
  // matmul_transposed_self_add (kernels add to it).
  virtual void matmul_into(const Matrix& a, const Matrix& b,
                           Matrix& out) const = 0;
  virtual void matmul_transposed_other_into(const Matrix& a, const Matrix& b,
                                            Matrix& out) const = 0;
  virtual void matmul_transposed_self_add(const Matrix& a, const Matrix& b,
                                          Matrix& out) const = 0;

  // --- Sparse gather GEMM pair (same output conventions: matmul
  // accumulates into a zeroed out, transposed_self adds to a running sum).
  virtual void sparse_matmul_into(const SparseRowMatrix& a, const Matrix& b,
                                  Matrix& out) const = 0;
  virtual void sparse_matmul_transposed_self_add(const SparseRowMatrix& a,
                                                 const Matrix& b,
                                                 Matrix& out) const = 0;

  // --- Fused LSTM gate pass (signatures mirror nn::lstm_gate_forward/
  // backward; all tensors pre-sized by the caller, column layout
  // [i | f | g | o], c_prev nullptr on the first step).
  virtual void lstm_gate_forward(const Matrix& z, const Matrix* c_prev,
                                 Matrix& gates, Matrix& c, Matrix& tanh_c,
                                 Matrix& h) const = 0;
  virtual void lstm_gate_backward(const Matrix& gates, const Matrix& tanh_c,
                                  const Matrix* c_prev, const Matrix& dh,
                                  const Matrix& dc_next, Matrix& dz,
                                  Matrix& dc_prev) const = 0;
};

/// Process-wide backend registry. The built-in backends ("native",
/// "reference", and "blas" when compiled with -DDRCELL_WITH_BLAS) register
/// themselves on first use; additional backends can be registered at
/// startup. active() is a lock-free atomic read after initialisation, so
/// hot kernel dispatch costs one load plus a virtual call.
class BackendRegistry {
 public:
  /// Registers `backend` under backend->name(). Names must be unique;
  /// re-registering an existing name fails a DRCELL_CHECK.
  static void register_backend(std::unique_ptr<ComputeBackend> backend);

  /// The currently selected backend. On the first call the selection order
  /// documented above is applied (explicit set_active wins, then the
  /// DRCELL_BACKEND env var, then the compile-time default).
  static const ComputeBackend& active();

  /// Selects a registered backend by name (DRCELL_CHECKs that it exists).
  static void set_active(const std::string& name);

  /// Looks up a backend without activating it; nullptr when unknown.
  static const ComputeBackend* find(const std::string& name);

  /// Names of all registered backends, in registration order.
  static std::vector<std::string> names();

  /// The compile-time default backend name (CMake: DRCELL_DEFAULT_BACKEND).
  static const char* default_backend_name();
};

}  // namespace drcell
