#include "linalg/sparse_matrix.h"

#include <algorithm>

#include "linalg/backend.h"
#include "linalg/kernels.h"

namespace drcell {

void SparseRowMatrix::reset(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  offsets_.clear();
  idx_.clear();
  val_.clear();
}

void SparseRowMatrix::append(std::size_t row, std::size_t col, double value) {
  DRCELL_DCHECK_MSG(row < rows_ && col < cols_,
                    "sparse entry out of range");
  const std::size_t opened = offsets_.size();
  DRCELL_DCHECK_MSG(row + 1 >= opened,
                    "sparse rows must be appended in non-decreasing order");
  if (row >= opened) {
    // Open row `row` (rows opened and immediately passed over stay empty).
    for (std::size_t r = opened; r <= row; ++r)
      offsets_.push_back(idx_.size());
  } else if (offsets_[row] < idx_.size()) {
    DRCELL_DCHECK_MSG(col > idx_.back(),
                      "sparse columns must ascend within a row");
  }
  idx_.push_back(static_cast<std::uint32_t>(col));
  val_.push_back(value);
}

double SparseRowMatrix::density() const {
  const std::size_t total = rows_ * cols_;
  if (total == 0) return 1.0;
  return static_cast<double>(idx_.size()) / static_cast<double>(total);
}

std::span<const std::uint32_t> SparseRowMatrix::row_indices(
    std::size_t r) const {
  const std::size_t b = row_begin(r);
  return {idx_.data() + b, row_end(r) - b};
}

std::span<const double> SparseRowMatrix::row_values(std::size_t r) const {
  const std::size_t b = row_begin(r);
  return {val_.data() + b, row_end(r) - b};
}

void SparseRowMatrix::to_dense(Matrix& out) const {
  out.resize(rows_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    const auto cols = row_indices(r);
    const auto vals = row_values(r);
    double* orow = out.row(r).data();
    for (std::size_t e = 0; e < cols.size(); ++e) orow[cols[e]] = vals[e];
  }
}

Matrix SparseRowMatrix::to_dense() const {
  Matrix out;
  to_dense(out);
  return out;
}

void SparseRowMatrix::matmul_into(const Matrix& other, Matrix& out) const {
  DRCELL_CHECK_MSG(cols_ == other.rows(), "sparse matmul shape mismatch");
  DRCELL_CHECK_MSG(&out != &other,
                   "sparse matmul output must not alias an operand");
  out.resize(rows_, other.cols());
  BackendRegistry::active().sparse_matmul_into(*this, other, out);
}

void SparseRowMatrix::matmul_transposed_self_add(const Matrix& other,
                                                 Matrix& out) const {
  DRCELL_CHECK_MSG(rows_ == other.rows(),
                   "sparse matmul_transposed_self mismatch");
  DRCELL_CHECK_MSG(out.rows() == cols_ && out.cols() == other.cols(),
                   "sparse matmul_transposed_self_add output shape mismatch");
  DRCELL_CHECK_MSG(&out != &other,
                   "sparse matmul_transposed_self_add output must not alias "
                   "an operand");
  BackendRegistry::active().sparse_matmul_transposed_self_add(*this, other,
                                                              out);
}

namespace kernels {

void sparse_gather_matmul_into(const SparseRowMatrix& a, const Matrix& b,
                               Matrix& out) {
  const std::size_t n = b.cols();
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const auto cols = a.row_indices(r);
    const auto vals = a.row_values(r);
    double* orow = out.row(r).data();
    for (std::size_t e = 0; e < cols.size(); ++e) {
      const double v = vals[e];
      // The dense kernel skips aik == 0.0 terms; an explicitly stored zero
      // must be skipped too, or ±0.0 additions could diverge.
      if (v == 0.0) continue;
      const double* brow = b.row(cols[e]).data();
      for (std::size_t j = 0; j < n; ++j) orow[j] += v * brow[j];
    }
  }
}

void sparse_gather_transposed_self_add(const SparseRowMatrix& a,
                                       const Matrix& b, Matrix& out) {
  const std::size_t n = b.cols();
  for (std::size_t k = 0; k < a.rows(); ++k) {
    const auto cols = a.row_indices(k);
    const auto vals = a.row_values(k);
    const double* brow = b.row(k).data();
    for (std::size_t e = 0; e < cols.size(); ++e) {
      const double v = vals[e];
      if (v == 0.0) continue;
      double* orow = out.row(cols[e]).data();
      for (std::size_t j = 0; j < n; ++j) orow[j] += v * brow[j];
    }
  }
}

}  // namespace kernels

}  // namespace drcell
