// Matrix decompositions: Cholesky, Householder QR and one-sided Jacobi SVD.
// These back the GP dataset generator (Cholesky of covariance kernels), the
// ridge solvers used by ALS matrix completion, and spectral diagnostics.
#pragma once

#include <vector>

#include "linalg/matrix.h"

namespace drcell {

/// Cholesky factorisation A = L Lᵀ of a symmetric positive-definite matrix.
/// Throws CheckError if A is not square or not (numerically) SPD.
struct Cholesky {
  explicit Cholesky(const Matrix& a);

  /// Solves A x = b using the factorisation.
  std::vector<double> solve(std::span<const double> b) const;
  /// L y = b (forward substitution).
  std::vector<double> forward(std::span<const double> b) const;

  Matrix l;  ///< lower-triangular factor
};

/// Householder QR factorisation A = Q R (A is rows x cols, rows >= cols).
struct QR {
  explicit QR(const Matrix& a);

  /// Least-squares solution of min ||A x - b||₂ via R x = Qᵀ b.
  std::vector<double> solve(std::span<const double> b) const;

  Matrix q;  ///< rows x cols with orthonormal columns (thin Q)
  Matrix r;  ///< cols x cols upper triangular
};

/// Thin singular value decomposition A = U diag(s) Vᵀ via one-sided Jacobi
/// rotations. Singular values are returned in descending order.
struct SVD {
  explicit SVD(const Matrix& a, int max_sweeps = 60, double tol = 1e-12);

  Matrix u;                       ///< rows x k, orthonormal columns
  std::vector<double> singular;   ///< k singular values, descending
  Matrix v;                       ///< cols x k, orthonormal columns

  /// Effective numerical rank at the given relative threshold.
  std::size_t rank(double rel_tol = 1e-10) const;
  /// Reconstructs U diag(s) Vᵀ (for testing).
  Matrix reconstruct() const;
};

}  // namespace drcell
