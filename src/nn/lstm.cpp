#include "nn/lstm.h"

#include <cmath>

#include "nn/activations.h"
#include "nn/init.h"

namespace drcell::nn {

Lstm::Lstm(std::size_t input_size, std::size_t hidden_size, Rng& rng)
    : wx_(input_size, 4 * hidden_size),
      wh_(hidden_size, 4 * hidden_size),
      b_(1, 4 * hidden_size) {
  DRCELL_CHECK(input_size > 0 && hidden_size > 0);
  xavier_uniform(wx_.value, input_size, hidden_size, rng);
  xavier_uniform(wh_.value, hidden_size, hidden_size, rng);
  // Forget-gate bias starts at 1 so early training does not erase memory.
  for (std::size_t c = hidden_size; c < 2 * hidden_size; ++c)
    b_.value(0, c) = 1.0;
}

Matrix Lstm::forward(const std::vector<Matrix>& steps) {
  DRCELL_CHECK_MSG(!steps.empty(), "LSTM forward on empty sequence");
  const std::size_t hidden = hidden_size();
  batch_ = steps.front().rows();

  const std::size_t t_max = steps.size();
  x_.assign(steps.begin(), steps.end());
  gates_.assign(t_max, Matrix());
  c_.assign(t_max, Matrix());
  tanh_c_.assign(t_max, Matrix());
  h_.assign(t_max, Matrix());

  Matrix h_prev(batch_, hidden);
  Matrix c_prev(batch_, hidden);
  for (std::size_t t = 0; t < t_max; ++t) {
    const Matrix& xt = steps[t];
    DRCELL_CHECK_MSG(xt.rows() == batch_ && xt.cols() == input_size(),
                     "LSTM: inconsistent step shape");
    // Pre-activations z = x Wx + h_prev Wh + b (workspaces reused across
    // steps and calls).
    xt.matmul_into(wx_.value, z_ws_);
    Matrix& z = z_ws_;
    h_prev.matmul_into(wh_.value, recur_ws_);
    z += recur_ws_;
    for (std::size_t r = 0; r < batch_; ++r)
      for (std::size_t col = 0; col < 4 * hidden; ++col)
        z(r, col) += b_.value(0, col);

    Matrix gates(batch_, 4 * hidden);
    Matrix ct(batch_, hidden);
    Matrix tct(batch_, hidden);
    Matrix ht(batch_, hidden);
    for (std::size_t r = 0; r < batch_; ++r) {
      for (std::size_t j = 0; j < hidden; ++j) {
        const double zi = z(r, j);
        const double zf = z(r, hidden + j);
        const double zg = z(r, 2 * hidden + j);
        const double zo = z(r, 3 * hidden + j);
        const double i = sigmoid(zi);
        const double f = sigmoid(zf);
        const double g = std::tanh(zg);
        const double o = sigmoid(zo);
        gates(r, j) = i;
        gates(r, hidden + j) = f;
        gates(r, 2 * hidden + j) = g;
        gates(r, 3 * hidden + j) = o;
        const double c_new = f * c_prev(r, j) + i * g;
        ct(r, j) = c_new;
        const double tc = std::tanh(c_new);
        tct(r, j) = tc;
        ht(r, j) = o * tc;
      }
    }
    gates_[t] = std::move(gates);
    c_[t] = ct;
    tanh_c_[t] = std::move(tct);
    h_[t] = ht;
    h_prev = std::move(ht);
    c_prev = std::move(ct);
  }
  return h_.back();
}

std::vector<Matrix> Lstm::backward(const Matrix& grad_last_hidden) {
  DRCELL_CHECK_MSG(!h_.empty(), "LSTM backward before forward");
  std::vector<Matrix> grads(h_.size(),
                            Matrix(batch_, hidden_size()));
  grads.back() = grad_last_hidden;
  return backward_sequence(grads);
}

std::vector<Matrix> Lstm::backward_sequence(
    const std::vector<Matrix>& grad_hidden_per_step) {
  const std::size_t t_max = h_.size();
  DRCELL_CHECK_MSG(t_max > 0, "LSTM backward before forward");
  DRCELL_CHECK(grad_hidden_per_step.size() == t_max);
  const std::size_t hidden = hidden_size();

  std::vector<Matrix> grad_x(t_max);
  Matrix dh_next(batch_, hidden);  // gradient flowing back through h
  Matrix dc_next(batch_, hidden);  // gradient flowing back through c

  for (std::size_t t = t_max; t-- > 0;) {
    // Total gradient into h_t: external + recurrent.
    Matrix dh = grad_hidden_per_step[t];
    DRCELL_CHECK(dh.rows() == batch_ && dh.cols() == hidden);
    dh += dh_next;

    const Matrix& gates = gates_[t];
    const Matrix& tct = tanh_c_[t];
    Matrix dz(batch_, 4 * hidden);
    Matrix dc_prev(batch_, hidden);
    for (std::size_t r = 0; r < batch_; ++r) {
      for (std::size_t j = 0; j < hidden; ++j) {
        const double i = gates(r, j);
        const double f = gates(r, hidden + j);
        const double g = gates(r, 2 * hidden + j);
        const double o = gates(r, 3 * hidden + j);
        const double tc = tct(r, j);
        const double c_prev =
            t > 0 ? c_[t - 1](r, j) : 0.0;

        const double dht = dh(r, j);
        const double d_o = dht * tc;
        const double dct = dc_next(r, j) + dht * o * dtanh_from_output(tc);
        const double d_i = dct * g;
        const double d_f = dct * c_prev;
        const double d_g = dct * i;
        dc_prev(r, j) = dct * f;

        dz(r, j) = d_i * dsigmoid_from_output(i);
        dz(r, hidden + j) = d_f * dsigmoid_from_output(f);
        dz(r, 2 * hidden + j) = d_g * dtanh_from_output(g);
        dz(r, 3 * hidden + j) = d_o * dsigmoid_from_output(o);
      }
    }

    // Parameter gradients.
    wx_.grad += x_[t].matmul_transposed_self(dz);
    if (t > 0) wh_.grad += h_[t - 1].matmul_transposed_self(dz);
    for (std::size_t r = 0; r < batch_; ++r)
      for (std::size_t col = 0; col < 4 * hidden; ++col)
        b_.grad(0, col) += dz(r, col);

    // Gradients flowing to inputs and to the previous step.
    grad_x[t] = dz.matmul(wx_.value.transposed());
    dz.matmul_into(wh_.value.transposed(), recur_ws_);
    std::swap(dh_next, recur_ws_);
    dc_next = std::move(dc_prev);
  }
  return grad_x;
}

}  // namespace drcell::nn
