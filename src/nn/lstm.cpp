#include "nn/lstm.h"

#include <algorithm>
#include <cmath>

#include "linalg/backend.h"
#include "nn/activations.h"
#include "nn/init.h"
#include "util/fastmath.h"

namespace drcell::nn {

namespace {

void check_gate_shapes(const Matrix& z, const Matrix* c_prev,
                       const Matrix& gates, const Matrix& c,
                       const Matrix& tanh_c, const Matrix& h) {
  const std::size_t batch = z.rows();
  const std::size_t hidden = c.cols();
  DRCELL_DCHECK(z.cols() == 4 * hidden);
  DRCELL_DCHECK(gates.rows() == batch && gates.cols() == 4 * hidden);
  DRCELL_DCHECK(c.rows() == batch);
  DRCELL_DCHECK(tanh_c.rows() == batch && tanh_c.cols() == hidden);
  DRCELL_DCHECK(h.rows() == batch && h.cols() == hidden);
  DRCELL_DCHECK(c_prev == nullptr ||
                (c_prev->rows() == batch && c_prev->cols() == hidden));
}

}  // namespace

void lstm_gate_forward(const Matrix& z, const Matrix* c_prev, Matrix& gates,
                       Matrix& c, Matrix& tanh_c, Matrix& h) {
  check_gate_shapes(z, c_prev, gates, c, tanh_c, h);
  const std::size_t batch = z.rows();
  const std::size_t hidden = c.cols();
  for (std::size_t r = 0; r < batch; ++r) {
    const double* zr = z.row(r).data();
    double* gr = gates.row(r).data();
    // Column layout [i | f | g | o]: i and f are adjacent, so one sigmoid
    // pass covers both blocks; g is tanh; o is sigmoid.
    fastmath::sigmoid_array(zr, gr, 2 * hidden);
    fastmath::tanh_array(zr + 2 * hidden, gr + 2 * hidden, hidden);
    fastmath::sigmoid_array(zr + 3 * hidden, gr + 3 * hidden, hidden);

    const double* i = gr;
    const double* f = gr + hidden;
    const double* g = gr + 2 * hidden;
    const double* o = gr + 3 * hidden;
    double* cr = c.row(r).data();
    double* tr = tanh_c.row(r).data();
    double* hr = h.row(r).data();
    if (c_prev != nullptr) {
      const double* cp = c_prev->row(r).data();
      for (std::size_t j = 0; j < hidden; ++j) cr[j] = f[j] * cp[j] + i[j] * g[j];
    } else {
      for (std::size_t j = 0; j < hidden; ++j) cr[j] = i[j] * g[j];
    }
    fastmath::tanh_array(cr, tr, hidden);
    for (std::size_t j = 0; j < hidden; ++j) hr[j] = o[j] * tr[j];
  }
}

void lstm_gate_backward(const Matrix& gates, const Matrix& tanh_c,
                        const Matrix* c_prev, const Matrix& dh,
                        const Matrix& dc_next, Matrix& dz, Matrix& dc_prev) {
  const std::size_t batch = gates.rows();
  const std::size_t hidden = tanh_c.cols();
  DRCELL_DCHECK(gates.cols() == 4 * hidden);
  DRCELL_DCHECK(dh.rows() == batch && dh.cols() == hidden);
  DRCELL_DCHECK(dc_next.rows() == batch && dc_next.cols() == hidden);
  DRCELL_DCHECK(dz.rows() == batch && dz.cols() == 4 * hidden);
  DRCELL_DCHECK(dc_prev.rows() == batch && dc_prev.cols() == hidden);
  for (std::size_t r = 0; r < batch; ++r) {
    const double* gr = gates.row(r).data();
    const double* i = gr;
    const double* f = gr + hidden;
    const double* g = gr + 2 * hidden;
    const double* o = gr + 3 * hidden;
    const double* tc = tanh_c.row(r).data();
    const double* cp = c_prev != nullptr ? c_prev->row(r).data() : nullptr;
    const double* dhr = dh.row(r).data();
    const double* dcn = dc_next.row(r).data();
    double* dzr = dz.row(r).data();
    double* dzi = dzr;
    double* dzf = dzr + hidden;
    double* dzg = dzr + 2 * hidden;
    double* dzo = dzr + 3 * hidden;
    double* dcp = dc_prev.row(r).data();
    // Same expressions, in the same evaluation order, as the std::
    // reference pass — the backward is exact elementwise arithmetic, so
    // the fused and reference passes are bit-identical given equal inputs.
    for (std::size_t j = 0; j < hidden; ++j) {
      const double c_prev_j = cp != nullptr ? cp[j] : 0.0;
      const double dht = dhr[j];
      const double d_o = dht * tc[j];
      const double dct = dcn[j] + dht * o[j] * (1.0 - tc[j] * tc[j]);
      dcp[j] = dct * f[j];
      dzi[j] = (dct * g[j]) * (i[j] * (1.0 - i[j]));
      dzf[j] = (dct * c_prev_j) * (f[j] * (1.0 - f[j]));
      dzg[j] = (dct * i[j]) * (1.0 - g[j] * g[j]);
      dzo[j] = d_o * (o[j] * (1.0 - o[j]));
    }
  }
}

void lstm_gate_forward_reference(const Matrix& z, const Matrix* c_prev,
                                 Matrix& gates, Matrix& c, Matrix& tanh_c,
                                 Matrix& h) {
  // The pre-fastmath gate pass: scalar std::tanh / nn::sigmoid per element
  // through checked-ish operator() indexing, exactly as the cell shipped it.
  check_gate_shapes(z, c_prev, gates, c, tanh_c, h);
  const std::size_t batch = z.rows();
  const std::size_t hidden = c.cols();
  for (std::size_t r = 0; r < batch; ++r) {
    for (std::size_t j = 0; j < hidden; ++j) {
      const double zi = z(r, j);
      const double zf = z(r, hidden + j);
      const double zg = z(r, 2 * hidden + j);
      const double zo = z(r, 3 * hidden + j);
      const double i = sigmoid(zi);
      const double f = sigmoid(zf);
      const double g = std::tanh(zg);
      const double o = sigmoid(zo);
      gates(r, j) = i;
      gates(r, hidden + j) = f;
      gates(r, 2 * hidden + j) = g;
      gates(r, 3 * hidden + j) = o;
      const double c_new =
          (c_prev != nullptr ? f * (*c_prev)(r, j) : 0.0) + i * g;
      c(r, j) = c_new;
      const double tc = std::tanh(c_new);
      tanh_c(r, j) = tc;
      h(r, j) = o * tc;
    }
  }
}

void lstm_gate_backward_reference(const Matrix& gates, const Matrix& tanh_c,
                                  const Matrix* c_prev, const Matrix& dh,
                                  const Matrix& dc_next, Matrix& dz,
                                  Matrix& dc_prev) {
  const std::size_t batch = gates.rows();
  const std::size_t hidden = tanh_c.cols();
  for (std::size_t r = 0; r < batch; ++r) {
    for (std::size_t j = 0; j < hidden; ++j) {
      const double i = gates(r, j);
      const double f = gates(r, hidden + j);
      const double g = gates(r, 2 * hidden + j);
      const double o = gates(r, 3 * hidden + j);
      const double tc = tanh_c(r, j);
      const double c_prev_j = c_prev != nullptr ? (*c_prev)(r, j) : 0.0;

      const double dht = dh(r, j);
      const double d_o = dht * tc;
      const double dct = dc_next(r, j) + dht * o * dtanh_from_output(tc);
      const double d_i = dct * g;
      const double d_f = dct * c_prev_j;
      const double d_g = dct * i;
      dc_prev(r, j) = dct * f;

      dz(r, j) = d_i * dsigmoid_from_output(i);
      dz(r, hidden + j) = d_f * dsigmoid_from_output(f);
      dz(r, 2 * hidden + j) = d_g * dtanh_from_output(g);
      dz(r, 3 * hidden + j) = d_o * dsigmoid_from_output(o);
    }
  }
}

Lstm::Lstm(std::size_t input_size, std::size_t hidden_size, Rng& rng)
    : wx_(input_size, 4 * hidden_size),
      wh_(hidden_size, 4 * hidden_size),
      b_(1, 4 * hidden_size) {
  DRCELL_CHECK(input_size > 0 && hidden_size > 0);
  xavier_uniform(wx_.value, input_size, hidden_size, rng);
  xavier_uniform(wh_.value, hidden_size, hidden_size, rng);
  // Forget-gate bias starts at 1 so early training does not erase memory.
  for (std::size_t c = hidden_size; c < 2 * hidden_size; ++c)
    b_.value(0, c) = 1.0;
}

void Lstm::finish_step(std::size_t t) {
  const std::size_t hidden = hidden_size();
  // Pre-activations z = x Wx + h_{t-1} Wh + b (workspaces reused across
  // steps and calls); z_ws_ arrives holding the input product. The very
  // first step has no previous hidden state; skipping the zero product is
  // bit-identical to adding it.
  Matrix& z = z_ws_;
  if (t > 0) {
    h_[t - 1].matmul_into(wh_.value, recur_ws_);
    z += recur_ws_;
  }
  for (std::size_t r = 0; r < batch_; ++r)
    for (std::size_t col = 0; col < 4 * hidden; ++col)
      z(r, col) += b_.value(0, col);

  Matrix& gates = gates_[t];
  gates.resize_overwrite(batch_, 4 * hidden);
  Matrix& ct = c_[t];
  ct.resize_overwrite(batch_, hidden);
  Matrix& tct = tanh_c_[t];
  tct.resize_overwrite(batch_, hidden);
  Matrix& ht = h_[t];
  ht.resize_overwrite(batch_, hidden);
  const Matrix* c_prev = t > 0 ? &c_[t - 1] : nullptr;
#ifdef DRCELL_ENABLE_REFERENCE_KERNELS
  if (reference_gate_kernel_) {
    // Forced std:: gates (the bit-identity test machinery) bypass the
    // backend so both sides of a batched-vs-per-sample comparison share one
    // gate arithmetic regardless of the selected backend.
    lstm_gate_forward_reference(z, c_prev, gates, ct, tct, ht);
    return;
  }
#endif
  BackendRegistry::active().lstm_gate_forward(z, c_prev, gates, ct, tct, ht);
}

const Matrix& Lstm::forward(const std::vector<Matrix>& steps) {
  DRCELL_CHECK_MSG(!steps.empty(), "LSTM forward on empty sequence");
  batch_ = steps.front().rows();
  sparse_x_ = false;

  const std::size_t t_max = steps.size();
  x_.resize(t_max);
  gates_.resize(t_max);
  c_.resize(t_max);
  tanh_c_.resize(t_max);
  h_.resize(t_max);

  for (std::size_t t = 0; t < t_max; ++t) {
    const Matrix& xt = steps[t];
    DRCELL_CHECK_MSG(xt.rows() == batch_ && xt.cols() == input_size(),
                     "LSTM: inconsistent step shape");
    x_[t] = xt;
    xt.matmul_into(wx_.value, z_ws_);
    finish_step(t);
  }
  return h_.back();
}

const Matrix& Lstm::forward(const std::vector<SparseRowMatrix>& steps) {
  DRCELL_CHECK_MSG(!steps.empty(), "LSTM forward on empty sequence");
  std::size_t nnz = 0;
  std::size_t total = 0;
  for (const auto& s : steps) {
    nnz += s.nonzeros();
    total += s.rows() * s.cols();
  }
  const double density =
      total == 0 ? 1.0 : static_cast<double>(nnz) / static_cast<double>(total);
  if (density >= kSparseGatherMaxDensity) {
    // Too dense for the gather to win — run the blocked dense engine on the
    // densified steps (same values, so downstream is unaffected).
    densify_ws_.resize(steps.size());
    for (std::size_t t = 0; t < steps.size(); ++t)
      steps[t].to_dense(densify_ws_[t]);
    return forward(densify_ws_);
  }

  batch_ = steps.front().rows();
  sparse_x_ = true;

  const std::size_t t_max = steps.size();
  sx_.resize(t_max);
  gates_.resize(t_max);
  c_.resize(t_max);
  tanh_c_.resize(t_max);
  h_.resize(t_max);

  for (std::size_t t = 0; t < t_max; ++t) {
    const SparseRowMatrix& xt = steps[t];
    DRCELL_CHECK_MSG(xt.rows() == batch_ && xt.cols() == input_size(),
                     "LSTM: inconsistent step shape");
    sx_[t] = xt;
    xt.matmul_into(wx_.value, z_ws_);
    finish_step(t);
  }
  return h_.back();
}

const std::vector<Matrix>& Lstm::backward(const Matrix& grad_last_hidden,
                                          bool compute_input_grads) {
  DRCELL_CHECK_MSG(!h_.empty(), "LSTM backward before forward");
  last_only_ws_.resize(h_.size());
  for (std::size_t t = 0; t + 1 < h_.size(); ++t)
    last_only_ws_[t].resize(batch_, hidden_size());
  last_only_ws_.back() = grad_last_hidden;
  return backward_sequence(last_only_ws_, compute_input_grads);
}

const std::vector<Matrix>& Lstm::backward_sequence(
    const std::vector<Matrix>& grad_hidden_per_step,
    bool compute_input_grads) {
  const std::size_t t_max = h_.size();
  DRCELL_CHECK_MSG(t_max > 0, "LSTM backward before forward");
  DRCELL_CHECK(grad_hidden_per_step.size() == t_max);
  const std::size_t hidden = hidden_size();

  dz_.resize(t_max);
  if (compute_input_grads) {
    grad_x_.resize(t_max);
  } else {
    grad_x_.clear();
  }
  dc_next_ws_.resize(batch_, hidden);

  for (std::size_t t = t_max; t-- > 0;) {
    // Total gradient into h_t: external + recurrent. The first (t = T-1)
    // iteration has no recurrent term; adding the zero matrix would be
    // bit-identical, so it is skipped.
    const Matrix& ext = grad_hidden_per_step[t];
    DRCELL_CHECK(ext.rows() == batch_ && ext.cols() == hidden);
    dh_ws_ = ext;
    if (t + 1 < t_max) dh_ws_ += dh_next_ws_;

    const Matrix& gates = gates_[t];
    const Matrix& tct = tanh_c_[t];
    Matrix& dz = dz_[t];
    dz.resize_overwrite(batch_, 4 * hidden);
    dc_prev_ws_.resize_overwrite(batch_, hidden);
    const Matrix* c_prev = t > 0 ? &c_[t - 1] : nullptr;
#ifdef DRCELL_ENABLE_REFERENCE_KERNELS
    if (reference_gate_kernel_)
      lstm_gate_backward_reference(gates, tct, c_prev, dh_ws_, dc_next_ws_,
                                   dz, dc_prev_ws_);
    else
#endif
      BackendRegistry::active().lstm_gate_backward(gates, tct, c_prev, dh_ws_,
                                                   dc_next_ws_, dz,
                                                   dc_prev_ws_);

    // Gradients flowing to inputs and to the previous step (no transposes
    // materialised).
    if (compute_input_grads)
      dz.matmul_transposed_other_into(wx_.value, grad_x_[t]);
    if (t > 0) dz.matmul_transposed_other_into(wh_.value, dh_next_ws_);
    std::swap(dc_next_ws_, dc_prev_ws_);
  }

  // Deferred parameter gradients. The per-(sample, step) contributions are
  // concatenated sample-major — rows ordered (b ascending; t descending
  // within b, matching the backward recursion) — and accumulated with one
  // AᵀB pass per parameter. matmul_transposed_self_add walks rows in
  // ascending order, so the additions land in grad in exactly the order a
  // per-sample backward loop would produce: batched gradients are
  // bit-identical to the per-sample path. Bonus: one [F x B·T]·[B·T x 4H]
  // GEMM beats T skinny per-step products.
  const std::size_t in = input_size();
  dzcat_ws_.resize_overwrite(batch_ * t_max, 4 * hidden);
  for (std::size_t b = 0; b < batch_; ++b) {
    for (std::size_t t = t_max; t-- > 0;) {
      const std::size_t row = b * t_max + (t_max - 1 - t);
      const auto dzrow = dz_[t].row(b);
      std::copy(dzrow.begin(), dzrow.end(), dzcat_ws_.row(row).begin());
    }
  }
  if (sparse_x_) {
    // Sparse twin of the xcat concat: same (b asc; t desc) row order, so
    // the gathered AᵀB accumulates into wx_.grad in exactly the dense
    // pass's addition order — bit-identical.
    sxcat_ws_.reset(batch_ * t_max, in);
    for (std::size_t b = 0; b < batch_; ++b) {
      for (std::size_t t = t_max; t-- > 0;) {
        const std::size_t row = b * t_max + (t_max - 1 - t);
        const auto cols = sx_[t].row_indices(b);
        const auto vals = sx_[t].row_values(b);
        for (std::size_t e = 0; e < cols.size(); ++e)
          sxcat_ws_.append(row, cols[e], vals[e]);
      }
    }
    sxcat_ws_.matmul_transposed_self_add(dzcat_ws_, wx_.grad);
  } else {
    xcat_ws_.resize_overwrite(batch_ * t_max, in);
    for (std::size_t b = 0; b < batch_; ++b) {
      for (std::size_t t = t_max; t-- > 0;) {
        const std::size_t row = b * t_max + (t_max - 1 - t);
        const auto xrow = x_[t].row(b);
        std::copy(xrow.begin(), xrow.end(), xcat_ws_.row(row).begin());
      }
    }
    xcat_ws_.matmul_transposed_self_add(dzcat_ws_, wx_.grad);
  }
  for (std::size_t row = 0; row < dzcat_ws_.rows(); ++row) {
    const auto dzrow = dzcat_ws_.row(row);
    for (std::size_t col = 0; col < 4 * hidden; ++col)
      b_.grad(0, col) += dzrow[col];
  }
  if (t_max > 1) {
    // Recurrent weights: the t = 0 step has no previous hidden state, so
    // its rows are excluded (matching the per-sample loop exactly).
    hcat_ws_.resize_overwrite(batch_ * (t_max - 1), hidden);
    dzhcat_ws_.resize_overwrite(batch_ * (t_max - 1), 4 * hidden);
    for (std::size_t b = 0; b < batch_; ++b) {
      for (std::size_t t = t_max; t-- > 1;) {
        const std::size_t row = b * (t_max - 1) + (t_max - 1 - t);
        const auto hrow = h_[t - 1].row(b);
        std::copy(hrow.begin(), hrow.end(), hcat_ws_.row(row).begin());
        const auto dzrow = dz_[t].row(b);
        std::copy(dzrow.begin(), dzrow.end(), dzhcat_ws_.row(row).begin());
      }
    }
    hcat_ws_.matmul_transposed_self_add(dzhcat_ws_, wh_.grad);
  }
  return grad_x_;
}

#ifdef DRCELL_ENABLE_REFERENCE_KERNELS
Matrix Lstm::forward_reference(const std::vector<Matrix>& steps) {
  // The pre-refactor forward: per-step products and gate blocks allocated
  // fresh every call, the zero initial hidden state multiplied through.
  DRCELL_CHECK_MSG(!steps.empty(), "LSTM forward on empty sequence");
  const std::size_t hidden = hidden_size();
  batch_ = steps.front().rows();
  sparse_x_ = false;

  const std::size_t t_max = steps.size();
  x_.assign(steps.begin(), steps.end());
  gates_.assign(t_max, Matrix());
  c_.assign(t_max, Matrix());
  tanh_c_.assign(t_max, Matrix());
  h_.assign(t_max, Matrix());

  Matrix h_prev(batch_, hidden);
  Matrix c_prev(batch_, hidden);
  for (std::size_t t = 0; t < t_max; ++t) {
    const Matrix& xt = steps[t];
    DRCELL_CHECK_MSG(xt.rows() == batch_ && xt.cols() == input_size(),
                     "LSTM: inconsistent step shape");
    Matrix z = xt.matmul(wx_.value);
    z += h_prev.matmul(wh_.value);
    for (std::size_t r = 0; r < batch_; ++r)
      for (std::size_t col = 0; col < 4 * hidden; ++col)
        z(r, col) += b_.value(0, col);

    Matrix gates(batch_, 4 * hidden);
    Matrix ct(batch_, hidden);
    Matrix tct(batch_, hidden);
    Matrix ht(batch_, hidden);
    for (std::size_t r = 0; r < batch_; ++r) {
      for (std::size_t j = 0; j < hidden; ++j) {
        const double i = sigmoid(z(r, j));
        const double f = sigmoid(z(r, hidden + j));
        const double g = std::tanh(z(r, 2 * hidden + j));
        const double o = sigmoid(z(r, 3 * hidden + j));
        gates(r, j) = i;
        gates(r, hidden + j) = f;
        gates(r, 2 * hidden + j) = g;
        gates(r, 3 * hidden + j) = o;
        const double c_new = f * c_prev(r, j) + i * g;
        ct(r, j) = c_new;
        const double tc = std::tanh(c_new);
        tct(r, j) = tc;
        ht(r, j) = o * tc;
      }
    }
    gates_[t] = std::move(gates);
    c_[t] = ct;
    tanh_c_[t] = std::move(tct);
    h_[t] = ht;
    h_prev = std::move(ht);
    c_prev = std::move(ct);
  }
  return h_.back();
}

std::vector<Matrix> Lstm::backward_reference(const Matrix& grad_last_hidden) {
  // The pre-refactor BPTT: Wxᵀ and Whᵀ materialised every step, parameter
  // gradients accumulated through a freshly allocated product per step.
  const std::size_t t_max = h_.size();
  DRCELL_CHECK_MSG(t_max > 0, "LSTM backward before forward");
  const std::size_t hidden = hidden_size();

  std::vector<Matrix> grad_x(t_max);
  Matrix dh_next(batch_, hidden);
  Matrix dc_next(batch_, hidden);

  for (std::size_t t = t_max; t-- > 0;) {
    Matrix dh = t + 1 == t_max ? grad_last_hidden
                               : Matrix(batch_, hidden);
    DRCELL_CHECK(dh.rows() == batch_ && dh.cols() == hidden);
    dh += dh_next;

    const Matrix& gates = gates_[t];
    const Matrix& tct = tanh_c_[t];
    Matrix dz(batch_, 4 * hidden);
    Matrix dc_prev(batch_, hidden);
    for (std::size_t r = 0; r < batch_; ++r) {
      for (std::size_t j = 0; j < hidden; ++j) {
        const double i = gates(r, j);
        const double f = gates(r, hidden + j);
        const double g = gates(r, 2 * hidden + j);
        const double o = gates(r, 3 * hidden + j);
        const double tc = tct(r, j);
        const double c_prev = t > 0 ? c_[t - 1](r, j) : 0.0;

        const double dht = dh(r, j);
        const double d_o = dht * tc;
        const double dct = dc_next(r, j) + dht * o * dtanh_from_output(tc);
        const double d_i = dct * g;
        const double d_f = dct * c_prev;
        const double d_g = dct * i;
        dc_prev(r, j) = dct * f;

        dz(r, j) = d_i * dsigmoid_from_output(i);
        dz(r, hidden + j) = d_f * dsigmoid_from_output(f);
        dz(r, 2 * hidden + j) = d_g * dtanh_from_output(g);
        dz(r, 3 * hidden + j) = d_o * dsigmoid_from_output(o);
      }
    }

    wx_.grad += x_[t].matmul_transposed_self(dz);
    if (t > 0) wh_.grad += h_[t - 1].matmul_transposed_self(dz);
    for (std::size_t r = 0; r < batch_; ++r)
      for (std::size_t col = 0; col < 4 * hidden; ++col)
        b_.grad(0, col) += dz(r, col);

    grad_x[t] = dz.matmul(wx_.value.transposed());
    dh_next = dz.matmul(wh_.value.transposed());
    dc_next = std::move(dc_prev);
  }
  return grad_x;
}
#endif

}  // namespace drcell::nn
