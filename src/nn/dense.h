// Fully-connected layer: y = x W + b.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/layer.h"
#include "util/rng.h"

namespace drcell::nn {

/// Per-batch-row output-column subsets for the candidate-restricted head
/// ops below: columns[i] lists the (strictly ascending) output units row i
/// evaluates.
using ColumnSubsets = std::vector<std::vector<std::uint32_t>>;

class Dense : public Layer {
 public:
  /// Xavier-initialised in_features x out_features layer.
  Dense(std::size_t in_features, std::size_t out_features, Rng& rng);

  const Matrix& forward(const Matrix& input) override;
  const Matrix& backward(const Matrix& grad_output) override;

  /// Candidate-restricted forward: out(i, j) = x_i · W[:, columns[i][j]] +
  /// b[columns[i][j]], evaluating only the listed output units per row.
  /// Returns a [batch x max_width] workspace — row i's entries past
  /// columns[i].size() are zeroed padding. Each output element accumulates
  /// over k ascending with x(i,k) == 0.0 skipped, exactly as the dense
  /// GEMM computes that element, so every evaluated entry is bit-identical
  /// to the corresponding full-forward entry. Caches the input for
  /// backward_columns.
  const Matrix& forward_columns(const Matrix& input,
                                const ColumnSubsets& columns);

  /// Backward of forward_columns: `grad_columns` is shaped like its output
  /// (entries past columns[i].size() ignored). Accumulates dW/db only at
  /// the listed columns and returns dx ([batch x in]). Accumulation orders
  /// replicate the dense kernels' (batch rows ascending; within a row the
  /// dense kernels' zero-skips), so from equal seeds a candidate-restricted
  /// update is bit-identical to a full update whose grad is zero off the
  /// listed columns.
  const Matrix& backward_columns(const Matrix& grad_columns,
                                 const ColumnSubsets& columns);
#ifdef DRCELL_ENABLE_REFERENCE_KERNELS
  /// Pre-refactor implementations: allocate the product per call and build
  /// Wᵀ for the input gradient. Bit-identical to the workspace path.
  Matrix forward_reference(const Matrix& input) override;
  Matrix backward_reference(const Matrix& grad_output) override;
#endif
  std::vector<Parameter*> parameters() override { return {&w_, &b_}; }
  std::string name() const override { return "Dense"; }

  std::size_t in_features() const { return w_.value.rows(); }
  std::size_t out_features() const { return w_.value.cols(); }

  Parameter& weight() { return w_; }
  Parameter& bias() { return b_; }

 private:
  Parameter w_;  // in x out
  Parameter b_;  // 1 x out
  Matrix cached_input_;
  // Batch-sized product workspaces recycled across calls via matmul_into.
  Matrix out_ws_;      // forward output
  Matrix grad_in_ws_;  // backward input-gradient
  Matrix out_cols_ws_;  // forward_columns output
};

}  // namespace drcell::nn
