// Fully-connected layer: y = x W + b.
#pragma once

#include "nn/layer.h"
#include "util/rng.h"

namespace drcell::nn {

class Dense : public Layer {
 public:
  /// Xavier-initialised in_features x out_features layer.
  Dense(std::size_t in_features, std::size_t out_features, Rng& rng);

  Matrix forward(const Matrix& input) override;
  Matrix backward(const Matrix& grad_output) override;
  std::vector<Parameter*> parameters() override { return {&w_, &b_}; }
  std::string name() const override { return "Dense"; }

  std::size_t in_features() const { return w_.value.rows(); }
  std::size_t out_features() const { return w_.value.cols(); }

  Parameter& weight() { return w_; }
  Parameter& bias() { return b_; }

 private:
  Parameter w_;  // in x out
  Parameter b_;  // 1 x out
  Matrix cached_input_;
};

}  // namespace drcell::nn
