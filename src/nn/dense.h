// Fully-connected layer: y = x W + b.
#pragma once

#include "nn/layer.h"
#include "util/rng.h"

namespace drcell::nn {

class Dense : public Layer {
 public:
  /// Xavier-initialised in_features x out_features layer.
  Dense(std::size_t in_features, std::size_t out_features, Rng& rng);

  const Matrix& forward(const Matrix& input) override;
  const Matrix& backward(const Matrix& grad_output) override;
#ifdef DRCELL_ENABLE_REFERENCE_KERNELS
  /// Pre-refactor implementations: allocate the product per call and build
  /// Wᵀ for the input gradient. Bit-identical to the workspace path.
  Matrix forward_reference(const Matrix& input) override;
  Matrix backward_reference(const Matrix& grad_output) override;
#endif
  std::vector<Parameter*> parameters() override { return {&w_, &b_}; }
  std::string name() const override { return "Dense"; }

  std::size_t in_features() const { return w_.value.rows(); }
  std::size_t out_features() const { return w_.value.cols(); }

  Parameter& weight() { return w_; }
  Parameter& bias() { return b_; }

 private:
  Parameter w_;  // in x out
  Parameter b_;  // 1 x out
  Matrix cached_input_;
  // Batch-sized product workspaces recycled across calls via matmul_into.
  Matrix out_ws_;      // forward output
  Matrix grad_in_ws_;  // backward input-gradient
};

}  // namespace drcell::nn
