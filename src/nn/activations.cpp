#include "nn/activations.h"

#include <cmath>

namespace drcell::nn {

double sigmoid(double x) {
  // Numerically stable in both tails.
  if (x >= 0.0) {
    const double z = std::exp(-x);
    return 1.0 / (1.0 + z);
  }
  const double z = std::exp(x);
  return z / (1.0 + z);
}

double dsigmoid_from_output(double y) { return y * (1.0 - y); }

double dtanh_from_output(double y) { return 1.0 - y * y; }

Matrix ReLU::forward(const Matrix& input) {
  cached_input_ = input;
  Matrix out = input;
  out.apply([](double x) { return x > 0.0 ? x : 0.0; });
  return out;
}

Matrix ReLU::backward(const Matrix& grad_output) {
  DRCELL_CHECK(grad_output.rows() == cached_input_.rows() &&
               grad_output.cols() == cached_input_.cols());
  Matrix grad = grad_output;
  for (std::size_t i = 0; i < grad.data().size(); ++i)
    if (cached_input_.data()[i] <= 0.0) grad.data()[i] = 0.0;
  return grad;
}

Matrix Tanh::forward(const Matrix& input) {
  Matrix out = input;
  out.apply([](double x) { return std::tanh(x); });
  cached_output_ = out;
  return out;
}

Matrix Tanh::backward(const Matrix& grad_output) {
  DRCELL_CHECK(grad_output.rows() == cached_output_.rows() &&
               grad_output.cols() == cached_output_.cols());
  Matrix grad = grad_output;
  for (std::size_t i = 0; i < grad.data().size(); ++i)
    grad.data()[i] *= dtanh_from_output(cached_output_.data()[i]);
  return grad;
}

Matrix Sigmoid::forward(const Matrix& input) {
  Matrix out = input;
  out.apply([](double x) { return sigmoid(x); });
  cached_output_ = out;
  return out;
}

Matrix Sigmoid::backward(const Matrix& grad_output) {
  DRCELL_CHECK(grad_output.rows() == cached_output_.rows() &&
               grad_output.cols() == cached_output_.cols());
  Matrix grad = grad_output;
  for (std::size_t i = 0; i < grad.data().size(); ++i)
    grad.data()[i] *= dsigmoid_from_output(cached_output_.data()[i]);
  return grad;
}

}  // namespace drcell::nn
