#include "nn/activations.h"

#include <cmath>

#include "util/fastmath.h"

namespace drcell::nn {

double sigmoid(double x) {
  // Numerically stable in both tails.
  if (x >= 0.0) {
    const double z = std::exp(-x);
    return 1.0 / (1.0 + z);
  }
  const double z = std::exp(x);
  return z / (1.0 + z);
}

double dsigmoid_from_output(double y) { return y * (1.0 - y); }

double dtanh_from_output(double y) { return 1.0 - y * y; }

const Matrix& ReLU::forward(const Matrix& input) {
  cached_input_ = input;
  out_ws_.resize_overwrite(input.rows(), input.cols());
  for (std::size_t i = 0; i < out_ws_.data().size(); ++i) {
    const double x = cached_input_.data()[i];
    out_ws_.data()[i] = x > 0.0 ? x : 0.0;
  }
  return out_ws_;
}

const Matrix& ReLU::backward(const Matrix& grad_output) {
  DRCELL_CHECK(grad_output.rows() == cached_input_.rows() &&
               grad_output.cols() == cached_input_.cols());
  grad_in_ws_.resize_overwrite(grad_output.rows(), grad_output.cols());
  for (std::size_t i = 0; i < grad_in_ws_.data().size(); ++i)
    grad_in_ws_.data()[i] =
        cached_input_.data()[i] > 0.0 ? grad_output.data()[i] : 0.0;
  return grad_in_ws_;
}

const Matrix& Tanh::forward(const Matrix& input) {
  cached_output_ = input;
  fastmath::tanh_inplace(cached_output_.data());
  return cached_output_;
}

const Matrix& Tanh::backward(const Matrix& grad_output) {
  DRCELL_CHECK(grad_output.rows() == cached_output_.rows() &&
               grad_output.cols() == cached_output_.cols());
  grad_in_ws_.resize_overwrite(grad_output.rows(), grad_output.cols());
  fastmath::dtanh_from_output_array(cached_output_.data().data(),
                                    grad_output.data().data(),
                                    grad_in_ws_.data().data(),
                                    grad_in_ws_.data().size());
  return grad_in_ws_;
}

const Matrix& Sigmoid::forward(const Matrix& input) {
  cached_output_ = input;
  fastmath::sigmoid_inplace(cached_output_.data());
  return cached_output_;
}

const Matrix& Sigmoid::backward(const Matrix& grad_output) {
  DRCELL_CHECK(grad_output.rows() == cached_output_.rows() &&
               grad_output.cols() == cached_output_.cols());
  grad_in_ws_.resize_overwrite(grad_output.rows(), grad_output.cols());
  fastmath::dsigmoid_from_output_array(cached_output_.data().data(),
                                       grad_output.data().data(),
                                       grad_in_ws_.data().data(),
                                       grad_in_ws_.data().size());
  return grad_in_ws_;
}

#ifdef DRCELL_ENABLE_REFERENCE_KERNELS
Matrix Tanh::forward_reference(const Matrix& input) {
  cached_output_ = input;
  cached_output_.apply([](double x) { return std::tanh(x); });
  return cached_output_;
}

Matrix Tanh::backward_reference(const Matrix& grad_output) {
  DRCELL_CHECK(grad_output.rows() == cached_output_.rows() &&
               grad_output.cols() == cached_output_.cols());
  Matrix grad_in(grad_output.rows(), grad_output.cols());
  for (std::size_t i = 0; i < grad_in.data().size(); ++i)
    grad_in.data()[i] =
        grad_output.data()[i] * dtanh_from_output(cached_output_.data()[i]);
  return grad_in;
}

Matrix Sigmoid::forward_reference(const Matrix& input) {
  cached_output_ = input;
  cached_output_.apply([](double x) { return sigmoid(x); });
  return cached_output_;
}

Matrix Sigmoid::backward_reference(const Matrix& grad_output) {
  DRCELL_CHECK(grad_output.rows() == cached_output_.rows() &&
               grad_output.cols() == cached_output_.cols());
  Matrix grad_in(grad_output.rows(), grad_output.cols());
  for (std::size_t i = 0; i < grad_in.data().size(); ++i)
    grad_in.data()[i] =
        grad_output.data()[i] * dsigmoid_from_output(cached_output_.data()[i]);
  return grad_in;
}
#endif

}  // namespace drcell::nn
