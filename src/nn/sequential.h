// A stack of layers executed in order — the MLP used by the dense DQN
// variant and by the DRQN head.
#pragma once

#include <memory>
#include <vector>

#include "nn/layer.h"

namespace drcell::nn {

class Sequential {
 public:
  Sequential() = default;

  /// Appends a layer; returns *this for fluent construction.
  Sequential& add(LayerPtr layer);

  template <typename L, typename... Args>
  Sequential& emplace(Args&&... args) {
    return add(std::make_unique<L>(std::forward<Args>(args)...));
  }

  Matrix forward(const Matrix& input);
  Matrix backward(const Matrix& grad_output);

  std::vector<Parameter*> parameters();
  std::size_t layer_count() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_.at(i); }

 private:
  std::vector<LayerPtr> layers_;
};

}  // namespace drcell::nn
