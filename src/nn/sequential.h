// A stack of layers executed in order — the MLP used by the dense DQN
// variant and by the DRQN head.
#pragma once

#include <memory>
#include <vector>

#include "nn/layer.h"

namespace drcell::nn {

class Sequential {
 public:
  Sequential() = default;

  /// Appends a layer; returns *this for fluent construction.
  Sequential& add(LayerPtr layer);

  template <typename L, typename... Args>
  Sequential& emplace(Args&&... args) {
    return add(std::make_unique<L>(std::forward<Args>(args)...));
  }

  /// Chains the layers' workspace-returning calls: no per-step allocation,
  /// the returned reference lives in the last (first) layer's workspace and
  /// stays valid until that layer runs again.
  const Matrix& forward(const Matrix& input);
  const Matrix& backward(const Matrix& grad_output);

#ifdef DRCELL_ENABLE_REFERENCE_KERNELS
  /// Chains the layers' retained pre-workspace reference calls (fresh
  /// allocations per call). Bit-identical to forward()/backward().
  Matrix forward_reference(const Matrix& input);
  Matrix backward_reference(const Matrix& grad_output);
#endif

  std::vector<Parameter*> parameters();
  std::size_t layer_count() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_.at(i); }

 private:
  std::vector<LayerPtr> layers_;
};

}  // namespace drcell::nn
