#include "nn/sequential.h"

namespace drcell::nn {

Sequential& Sequential::add(LayerPtr layer) {
  DRCELL_CHECK(layer != nullptr);
  layers_.push_back(std::move(layer));
  return *this;
}

const Matrix& Sequential::forward(const Matrix& input) {
  DRCELL_CHECK_MSG(!layers_.empty(), "empty Sequential");
  const Matrix* x = &input;
  for (auto& l : layers_) x = &l->forward(*x);
  return *x;
}

const Matrix& Sequential::backward(const Matrix& grad_output) {
  DRCELL_CHECK_MSG(!layers_.empty(), "empty Sequential");
  const Matrix* g = &grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
    g = &(*it)->backward(*g);
  return *g;
}

#ifdef DRCELL_ENABLE_REFERENCE_KERNELS
Matrix Sequential::forward_reference(const Matrix& input) {
  DRCELL_CHECK_MSG(!layers_.empty(), "empty Sequential");
  Matrix x = input;
  for (auto& l : layers_) x = l->forward_reference(x);
  return x;
}

Matrix Sequential::backward_reference(const Matrix& grad_output) {
  DRCELL_CHECK_MSG(!layers_.empty(), "empty Sequential");
  Matrix g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
    g = (*it)->backward_reference(g);
  return g;
}
#endif

std::vector<Parameter*> Sequential::parameters() {
  std::vector<Parameter*> all;
  for (auto& l : layers_) {
    auto ps = l->parameters();
    all.insert(all.end(), ps.begin(), ps.end());
  }
  return all;
}

}  // namespace drcell::nn
