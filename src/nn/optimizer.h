// First-order optimisers over a flat list of Parameters, plus global-norm
// gradient clipping (standard stabilisation for recurrent Q-networks).
#pragma once

#include <cstddef>
#include <vector>

#include "nn/layer.h"

namespace drcell::util {
class ThreadPool;
}

namespace drcell::nn {

class Optimizer {
 public:
  explicit Optimizer(std::vector<Parameter*> params);
  virtual ~Optimizer() = default;

  /// Applies one update using the accumulated gradients. A non-null `pool`
  /// lets the optimiser fan the elementwise update over the ThreadPool in
  /// index-exclusive parameter ranges — per thread_pool.h's determinism
  /// contract the result is bit-identical to the serial pass for any
  /// worker count (the update touches each element exactly once, with no
  /// cross-element arithmetic).
  virtual void step(util::ThreadPool* pool = nullptr) = 0;
  /// Clears all gradients.
  void zero_grad();

  const std::vector<Parameter*>& params() const { return params_; }

 protected:
  std::vector<Parameter*> params_;
};

/// Stochastic gradient descent with optional classical momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Parameter*> params, double learning_rate,
      double momentum = 0.0);
  /// Serial regardless of `pool` — SGD's two-op update is memory-bound at
  /// sizes where the fan-out would pay for itself.
  void step(util::ThreadPool* pool = nullptr) override;

 private:
  double lr_;
  double momentum_;
  std::vector<Matrix> velocity_;
};

/// RMSProp (the optimiser of the original DQN paper).
class RmsProp : public Optimizer {
 public:
  RmsProp(std::vector<Parameter*> params, double learning_rate,
          double decay = 0.99, double epsilon = 1e-8);
  /// Serial regardless of `pool` (see Sgd::step).
  void step(util::ThreadPool* pool = nullptr) override;

 private:
  double lr_, decay_, eps_;
  std::vector<Matrix> mean_square_;
};

/// Adam with bias correction.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Parameter*> params, double learning_rate,
       double beta1 = 0.9, double beta2 = 0.999, double epsilon = 1e-8);
  /// With a pool, the sqrt/div-heavy update runs as index-exclusive chunks
  /// over the workers — bit-identical to serial, and the difference between
  /// the optimiser pass *mattering* and not at the 10k-cell tier (~3.2M
  /// parameters per step).
  void step(util::ThreadPool* pool = nullptr) override;

 private:
  struct Chunk {
    std::size_t tensor, lo, hi;
  };

  double lr_, beta1_, beta2_, eps_;
  long t_ = 0;
  std::vector<Matrix> m_, v_;
  std::vector<Chunk> chunks_ws_;
};

/// Scales gradients so their global L2 norm does not exceed max_norm.
/// Returns the pre-clipping norm.
double clip_grad_norm(const std::vector<Parameter*>& params, double max_norm);

}  // namespace drcell::nn
