// First-order optimisers over a flat list of Parameters, plus global-norm
// gradient clipping (standard stabilisation for recurrent Q-networks).
#pragma once

#include <vector>

#include "nn/layer.h"

namespace drcell::nn {

class Optimizer {
 public:
  explicit Optimizer(std::vector<Parameter*> params);
  virtual ~Optimizer() = default;

  /// Applies one update using the accumulated gradients.
  virtual void step() = 0;
  /// Clears all gradients.
  void zero_grad();

  const std::vector<Parameter*>& params() const { return params_; }

 protected:
  std::vector<Parameter*> params_;
};

/// Stochastic gradient descent with optional classical momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Parameter*> params, double learning_rate,
      double momentum = 0.0);
  void step() override;

 private:
  double lr_;
  double momentum_;
  std::vector<Matrix> velocity_;
};

/// RMSProp (the optimiser of the original DQN paper).
class RmsProp : public Optimizer {
 public:
  RmsProp(std::vector<Parameter*> params, double learning_rate,
          double decay = 0.99, double epsilon = 1e-8);
  void step() override;

 private:
  double lr_, decay_, eps_;
  std::vector<Matrix> mean_square_;
};

/// Adam with bias correction.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Parameter*> params, double learning_rate,
       double beta1 = 0.9, double beta2 = 0.999, double epsilon = 1e-8);
  void step() override;

 private:
  double lr_, beta1_, beta2_, eps_;
  long t_ = 0;
  std::vector<Matrix> m_, v_;
};

/// Scales gradients so their global L2 norm does not exceed max_norm.
/// Returns the pre-clipping norm.
double clip_grad_norm(const std::vector<Parameter*>& params, double max_norm);

}  // namespace drcell::nn
