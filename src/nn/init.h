// Weight initialisation schemes.
#pragma once

#include "linalg/matrix.h"
#include "util/rng.h"

namespace drcell::nn {

/// Xavier/Glorot uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out)).
/// Suited to tanh/sigmoid layers (the LSTM gates).
void xavier_uniform(Matrix& w, std::size_t fan_in, std::size_t fan_out,
                    Rng& rng);

/// He/Kaiming normal: N(0, 2 / fan_in). Suited to ReLU layers.
void he_normal(Matrix& w, std::size_t fan_in, Rng& rng);

/// Fills with a constant (used for biases; LSTM forget-gate bias uses 1).
void constant_fill(Matrix& w, double value);

}  // namespace drcell::nn
