#include "nn/serialize.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

namespace drcell::nn {

namespace {

constexpr char kMagic[4] = {'D', 'R', 'C', 'W'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& out, T v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!in) throw SerializationError("truncated weight stream");
  return v;
}

}  // namespace

void save_matrices(std::ostream& out, const std::vector<const Matrix*>& ms) {
  out.write(kMagic, sizeof(kMagic));
  write_pod<std::uint32_t>(out, kVersion);
  write_pod<std::uint64_t>(out, ms.size());
  for (const auto* m : ms) {
    DRCELL_CHECK(m != nullptr);
    write_pod<std::uint64_t>(out, m->rows());
    write_pod<std::uint64_t>(out, m->cols());
    const auto data = m->data();
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size() * sizeof(double)));
  }
  if (!out) throw SerializationError("failed to write weight stream");
}

std::vector<Matrix> load_matrices(std::istream& in) {
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
    throw SerializationError("bad magic: not a DR-Cell weight stream");
  const auto version = read_pod<std::uint32_t>(in);
  if (version != kVersion)
    throw SerializationError("unsupported weight stream version " +
                             std::to_string(version));
  const auto count = read_pod<std::uint64_t>(in);
  // Defensive bound: no realistic network here exceeds a few hundred
  // matrices; a huge count signals stream corruption.
  if (count > 1'000'000)
    throw SerializationError("implausible matrix count in weight stream");
  std::vector<Matrix> ms;
  ms.reserve(count);
  for (std::uint64_t k = 0; k < count; ++k) {
    const auto rows = read_pod<std::uint64_t>(in);
    const auto cols = read_pod<std::uint64_t>(in);
    if (rows > 1'000'000 || cols > 1'000'000)
      throw SerializationError("implausible matrix shape in weight stream");
    Matrix m(rows, cols);
    auto data = m.data();
    in.read(reinterpret_cast<char*>(data.data()),
            static_cast<std::streamsize>(data.size() * sizeof(double)));
    if (!in) throw SerializationError("truncated weight stream");
    ms.push_back(std::move(m));
  }
  return ms;
}

void save_parameters(std::ostream& out,
                     const std::vector<Parameter*>& params) {
  std::vector<const Matrix*> ms;
  ms.reserve(params.size());
  for (const auto* p : params) {
    DRCELL_CHECK(p != nullptr);
    ms.push_back(&p->value);
  }
  save_matrices(out, ms);
}

void load_parameters(std::istream& in, const std::vector<Parameter*>& params) {
  const std::vector<Matrix> ms = load_matrices(in);
  if (ms.size() != params.size())
    throw SerializationError(
        "weight stream has " + std::to_string(ms.size()) +
        " matrices, network expects " + std::to_string(params.size()));
  for (std::size_t i = 0; i < ms.size(); ++i) {
    if (ms[i].rows() != params[i]->value.rows() ||
        ms[i].cols() != params[i]->value.cols())
      throw SerializationError("matrix " + std::to_string(i) +
                               " shape mismatch while loading weights");
  }
  for (std::size_t i = 0; i < ms.size(); ++i) params[i]->value = ms[i];
}

void save_parameters_to_file(const std::string& path,
                             const std::vector<Parameter*>& params) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw SerializationError("cannot open " + path + " for writing");
  save_parameters(out, params);
}

void load_parameters_from_file(const std::string& path,
                               const std::vector<Parameter*>& params) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw SerializationError("cannot open " + path + " for reading");
  load_parameters(in, params);
}

void copy_parameters(const std::vector<Parameter*>& from,
                     const std::vector<Parameter*>& to) {
  DRCELL_CHECK_MSG(from.size() == to.size(),
                   "parameter count mismatch in copy_parameters");
  for (std::size_t i = 0; i < from.size(); ++i) {
    DRCELL_CHECK(from[i]->value.rows() == to[i]->value.rows() &&
                 from[i]->value.cols() == to[i]->value.cols());
    to[i]->value = from[i]->value;
  }
}

}  // namespace drcell::nn
