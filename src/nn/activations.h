// Element-wise activation layers and the scalar activation functions the
// LSTM cell's reference path reuses.
//
// Tanh/Sigmoid run their forward and backward passes through the fastmath
// array kernels (util/fastmath.h). Numeric-divergence contract: fastmath
// matches std:: within 1e-12 relative on [-40, 40] (measured ≲ 1e-15 —
// tests/fastmath_test.cpp), so outputs differ from the retained std::-based
// reference path (forward_reference/backward_reference, compiled under
// DRCELL_ENABLE_REFERENCE_KERNELS) at the last bits. See
// docs/ARCHITECTURE.md ("Fastmath and the fused LSTM gate kernel").
#pragma once

#include "nn/layer.h"

namespace drcell::nn {

/// Scalar std::-based sigmoid (numerically stable in both tails) — the
/// reference-path form; the production layers use fastmath::sigmoid.
double sigmoid(double x);
double dsigmoid_from_output(double y);  // y = sigmoid(x) -> y(1-y)
double dtanh_from_output(double y);     // y = tanh(x)    -> 1-y²

class ReLU : public Layer {
 public:
  const Matrix& forward(const Matrix& input) override;
  const Matrix& backward(const Matrix& grad_output) override;
  std::string name() const override { return "ReLU"; }

 private:
  Matrix cached_input_;
  Matrix out_ws_;
  Matrix grad_in_ws_;
};

class Tanh : public Layer {
 public:
  const Matrix& forward(const Matrix& input) override;
  const Matrix& backward(const Matrix& grad_output) override;
#ifdef DRCELL_ENABLE_REFERENCE_KERNELS
  /// The pre-fastmath std::tanh path (diverges from forward() by the
  /// documented ≤1e-12 relative bound, unlike the bit-identical default
  /// reference delegation of the other layers).
  Matrix forward_reference(const Matrix& input) override;
  Matrix backward_reference(const Matrix& grad_output) override;
#endif
  std::string name() const override { return "Tanh"; }

 private:
  Matrix cached_output_;
  Matrix grad_in_ws_;
};

class Sigmoid : public Layer {
 public:
  const Matrix& forward(const Matrix& input) override;
  const Matrix& backward(const Matrix& grad_output) override;
#ifdef DRCELL_ENABLE_REFERENCE_KERNELS
  /// The pre-fastmath nn::sigmoid path (same divergence contract as Tanh).
  Matrix forward_reference(const Matrix& input) override;
  Matrix backward_reference(const Matrix& grad_output) override;
#endif
  std::string name() const override { return "Sigmoid"; }

 private:
  Matrix cached_output_;
  Matrix grad_in_ws_;
};

}  // namespace drcell::nn
