// Element-wise activation layers and the scalar activation functions the
// LSTM cell reuses.
#pragma once

#include "nn/layer.h"

namespace drcell::nn {

double sigmoid(double x);
double dsigmoid_from_output(double y);  // y = sigmoid(x) -> y(1-y)
double dtanh_from_output(double y);     // y = tanh(x)    -> 1-y²

class ReLU : public Layer {
 public:
  const Matrix& forward(const Matrix& input) override;
  const Matrix& backward(const Matrix& grad_output) override;
  std::string name() const override { return "ReLU"; }

 private:
  Matrix cached_input_;
  Matrix out_ws_;
  Matrix grad_in_ws_;
};

class Tanh : public Layer {
 public:
  const Matrix& forward(const Matrix& input) override;
  const Matrix& backward(const Matrix& grad_output) override;
  std::string name() const override { return "Tanh"; }

 private:
  Matrix cached_output_;
  Matrix grad_in_ws_;
};

class Sigmoid : public Layer {
 public:
  const Matrix& forward(const Matrix& input) override;
  const Matrix& backward(const Matrix& grad_output) override;
  std::string name() const override { return "Sigmoid"; }

 private:
  Matrix cached_output_;
  Matrix grad_in_ws_;
};

}  // namespace drcell::nn
