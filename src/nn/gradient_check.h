// Finite-difference gradient verification used by the nn test suite.
#pragma once

#include <functional>

#include "nn/layer.h"

namespace drcell::nn {

/// Result of comparing analytic vs numeric gradients for one parameter.
struct GradCheckResult {
  double max_abs_diff = 0.0;
  double max_rel_diff = 0.0;
  bool passed(double tol = 1e-5) const {
    return max_abs_diff < tol || max_rel_diff < tol;
  }
};

/// `loss` must recompute the full forward pass and return the scalar loss;
/// `param.grad` must already hold the analytic gradient of that loss.
/// Central differences with step `eps` on every element of param.value.
GradCheckResult check_gradient(Parameter& param,
                               const std::function<double()>& loss,
                               double eps = 1e-6);

}  // namespace drcell::nn
