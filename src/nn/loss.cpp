#include "nn/loss.h"

#include <cmath>

#include "util/check.h"

namespace drcell::nn {

namespace {
void check_same_shape(const Matrix& a, const Matrix& b) {
  DRCELL_CHECK_MSG(a.rows() == b.rows() && a.cols() == b.cols(),
                   "loss shape mismatch");
}
}  // namespace

LossResult mse_loss(const Matrix& predictions, const Matrix& targets) {
  Matrix ones(predictions.rows(), predictions.cols(), 1.0);
  return masked_mse_loss(predictions, targets, ones);
}

LossResult huber_loss(const Matrix& predictions, const Matrix& targets,
                      double delta) {
  Matrix ones(predictions.rows(), predictions.cols(), 1.0);
  return masked_huber_loss(predictions, targets, ones, delta);
}

LossResult masked_mse_loss(const Matrix& predictions, const Matrix& targets,
                           const Matrix& mask, double normalizer) {
  check_same_shape(predictions, targets);
  check_same_shape(predictions, mask);
  LossResult out;
  out.grad = Matrix(predictions.rows(), predictions.cols());
  double count = 0.0;
  for (std::size_t i = 0; i < predictions.data().size(); ++i)
    if (mask.data()[i] != 0.0) count += 1.0;
  DRCELL_CHECK_MSG(count > 0.0, "loss mask is entirely zero");
  out.normalizer = normalizer > 0.0 ? normalizer : count;
  for (std::size_t i = 0; i < predictions.data().size(); ++i) {
    if (mask.data()[i] == 0.0) continue;
    const double d = predictions.data()[i] - targets.data()[i];
    out.raw_sum += d * d;
    out.grad.data()[i] = 2.0 * d / out.normalizer;
  }
  out.value = out.raw_sum / out.normalizer;
  return out;
}

LossResult masked_huber_loss(const Matrix& predictions, const Matrix& targets,
                             const Matrix& mask, double delta,
                             double normalizer) {
  check_same_shape(predictions, targets);
  check_same_shape(predictions, mask);
  DRCELL_CHECK(delta > 0.0);
  LossResult out;
  out.grad = Matrix(predictions.rows(), predictions.cols());
  double count = 0.0;
  for (std::size_t i = 0; i < predictions.data().size(); ++i)
    if (mask.data()[i] != 0.0) count += 1.0;
  DRCELL_CHECK_MSG(count > 0.0, "loss mask is entirely zero");
  out.normalizer = normalizer > 0.0 ? normalizer : count;
  for (std::size_t i = 0; i < predictions.data().size(); ++i) {
    if (mask.data()[i] == 0.0) continue;
    const double d = predictions.data()[i] - targets.data()[i];
    if (std::fabs(d) <= delta) {
      out.raw_sum += 0.5 * d * d;
      out.grad.data()[i] = d / out.normalizer;
    } else {
      out.raw_sum += delta * (std::fabs(d) - 0.5 * delta);
      out.grad.data()[i] = (d > 0.0 ? delta : -delta) / out.normalizer;
    }
  }
  out.value = out.raw_sum / out.normalizer;
  return out;
}

}  // namespace drcell::nn
