#include "nn/dense.h"

#include <algorithm>

#include "nn/init.h"

namespace drcell::nn {

Dense::Dense(std::size_t in_features, std::size_t out_features, Rng& rng)
    : w_(in_features, out_features), b_(1, out_features) {
  DRCELL_CHECK(in_features > 0 && out_features > 0);
  xavier_uniform(w_.value, in_features, out_features, rng);
}

const Matrix& Dense::forward(const Matrix& input) {
  DRCELL_CHECK_MSG(input.cols() == w_.value.rows(),
                   "Dense: input feature mismatch");
  cached_input_ = input;
  // Multiply from the cached copy: `input` may alias this layer's own
  // workspace when a caller feeds a previous result straight back in.
  cached_input_.matmul_into(w_.value, out_ws_);
  for (std::size_t r = 0; r < out_ws_.rows(); ++r)
    for (std::size_t c = 0; c < out_ws_.cols(); ++c)
      out_ws_(r, c) += b_.value(0, c);
  return out_ws_;
}

const Matrix& Dense::backward(const Matrix& grad_output) {
  DRCELL_CHECK_MSG(grad_output.rows() == cached_input_.rows() &&
                       grad_output.cols() == w_.value.cols(),
                   "Dense: backward shape mismatch");
  // dW += xᵀ g, db += colsum(g), dx = g Wᵀ. Parameter gradients accumulate
  // in ascending batch-row order (the batched-vs-per-sample bit-identity
  // contract); dx avoids materialising Wᵀ.
  cached_input_.matmul_transposed_self_add(grad_output, w_.grad);
  for (std::size_t r = 0; r < grad_output.rows(); ++r)
    for (std::size_t c = 0; c < grad_output.cols(); ++c)
      b_.grad(0, c) += grad_output(r, c);
  grad_output.matmul_transposed_other_into(w_.value, grad_in_ws_);
  return grad_in_ws_;
}

const Matrix& Dense::forward_columns(const Matrix& input,
                                     const ColumnSubsets& columns) {
  DRCELL_CHECK_MSG(input.cols() == w_.value.rows(),
                   "Dense: input feature mismatch");
  DRCELL_CHECK_MSG(columns.size() == input.rows(),
                   "Dense: one column subset per batch row required");
  cached_input_ = input;
  std::size_t max_width = 0;
  for (const auto& cols : columns)
    max_width = std::max(max_width, cols.size());
  DRCELL_CHECK_MSG(max_width > 0, "Dense: empty column subsets");
  out_cols_ws_.resize(input.rows(), max_width);
  const std::size_t in = w_.value.rows();
  for (std::size_t r = 0; r < input.rows(); ++r) {
    const double* xr = cached_input_.row(r).data();
    double* orow = out_cols_ws_.row(r).data();
    const auto& cols = columns[r];
    for (std::size_t j = 0; j < cols.size(); ++j) {
      const std::size_t c = cols[j];
      DRCELL_DCHECK_MSG(c < w_.value.cols(), "Dense: column out of range");
      // Same per-element recurrence as the dense GEMM: k ascending,
      // zero inputs skipped.
      double acc = 0.0;
      for (std::size_t k = 0; k < in; ++k) {
        const double v = xr[k];
        if (v == 0.0) continue;
        acc += v * w_.value(k, c);
      }
      orow[j] = acc + b_.value(0, c);
    }
  }
  return out_cols_ws_;
}

const Matrix& Dense::backward_columns(const Matrix& grad_columns,
                                      const ColumnSubsets& columns) {
  DRCELL_CHECK_MSG(grad_columns.rows() == cached_input_.rows(),
                   "Dense: backward_columns batch mismatch");
  DRCELL_CHECK_MSG(columns.size() == grad_columns.rows(),
                   "Dense: one column subset per batch row required");
  const std::size_t in = w_.value.rows();
  // dW += xᵀ g restricted to the listed columns, batch rows ascending and
  // features ascending with x == 0.0 skipped — the dense
  // matmul_transposed_self_add order with the off-subset (zero) terms
  // dropped.
  for (std::size_t r = 0; r < grad_columns.rows(); ++r) {
    const double* xr = cached_input_.row(r).data();
    const double* gr = grad_columns.row(r).data();
    const auto& cols = columns[r];
    DRCELL_CHECK_MSG(cols.size() <= grad_columns.cols(),
                     "Dense: column subset wider than gradient");
    for (std::size_t k = 0; k < in; ++k) {
      const double v = xr[k];
      if (v == 0.0) continue;
      for (std::size_t j = 0; j < cols.size(); ++j)
        w_.grad(k, cols[j]) += v * gr[j];
    }
    for (std::size_t j = 0; j < cols.size(); ++j)
      b_.grad(0, cols[j]) += gr[j];
  }
  // dx(r, f) = Σ_j g(r, j)·W(f, columns[r][j]) over ascending columns with
  // g == 0.0 skipped — the matmul_transposed_other_into element recurrence
  // once the off-subset zeros are dropped.
  grad_in_ws_.resize_overwrite(grad_columns.rows(), in);
  for (std::size_t r = 0; r < grad_columns.rows(); ++r) {
    const double* gr = grad_columns.row(r).data();
    double* dxr = grad_in_ws_.row(r).data();
    const auto& cols = columns[r];
    for (std::size_t f = 0; f < in; ++f) {
      double acc = 0.0;
      for (std::size_t j = 0; j < cols.size(); ++j) {
        const double g = gr[j];
        if (g == 0.0) continue;
        acc += g * w_.value(f, cols[j]);
      }
      dxr[f] = acc;
    }
  }
  return grad_in_ws_;
}

#ifdef DRCELL_ENABLE_REFERENCE_KERNELS
Matrix Dense::forward_reference(const Matrix& input) {
  DRCELL_CHECK_MSG(input.cols() == w_.value.rows(),
                   "Dense: input feature mismatch");
  cached_input_ = input;
  Matrix out = input.matmul(w_.value);
  for (std::size_t r = 0; r < out.rows(); ++r)
    for (std::size_t c = 0; c < out.cols(); ++c) out(r, c) += b_.value(0, c);
  return out;
}

Matrix Dense::backward_reference(const Matrix& grad_output) {
  DRCELL_CHECK_MSG(grad_output.rows() == cached_input_.rows() &&
                       grad_output.cols() == w_.value.cols(),
                   "Dense: backward shape mismatch");
  w_.grad += cached_input_.matmul_transposed_self(grad_output);
  for (std::size_t r = 0; r < grad_output.rows(); ++r)
    for (std::size_t c = 0; c < grad_output.cols(); ++c)
      b_.grad(0, c) += grad_output(r, c);
  return grad_output.matmul(w_.value.transposed());
}
#endif

}  // namespace drcell::nn
