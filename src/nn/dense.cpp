#include "nn/dense.h"

#include "nn/init.h"

namespace drcell::nn {

Dense::Dense(std::size_t in_features, std::size_t out_features, Rng& rng)
    : w_(in_features, out_features), b_(1, out_features) {
  DRCELL_CHECK(in_features > 0 && out_features > 0);
  xavier_uniform(w_.value, in_features, out_features, rng);
}

const Matrix& Dense::forward(const Matrix& input) {
  DRCELL_CHECK_MSG(input.cols() == w_.value.rows(),
                   "Dense: input feature mismatch");
  cached_input_ = input;
  // Multiply from the cached copy: `input` may alias this layer's own
  // workspace when a caller feeds a previous result straight back in.
  cached_input_.matmul_into(w_.value, out_ws_);
  for (std::size_t r = 0; r < out_ws_.rows(); ++r)
    for (std::size_t c = 0; c < out_ws_.cols(); ++c)
      out_ws_(r, c) += b_.value(0, c);
  return out_ws_;
}

const Matrix& Dense::backward(const Matrix& grad_output) {
  DRCELL_CHECK_MSG(grad_output.rows() == cached_input_.rows() &&
                       grad_output.cols() == w_.value.cols(),
                   "Dense: backward shape mismatch");
  // dW += xᵀ g, db += colsum(g), dx = g Wᵀ. Parameter gradients accumulate
  // in ascending batch-row order (the batched-vs-per-sample bit-identity
  // contract); dx avoids materialising Wᵀ.
  cached_input_.matmul_transposed_self_add(grad_output, w_.grad);
  for (std::size_t r = 0; r < grad_output.rows(); ++r)
    for (std::size_t c = 0; c < grad_output.cols(); ++c)
      b_.grad(0, c) += grad_output(r, c);
  grad_output.matmul_transposed_other_into(w_.value, grad_in_ws_);
  return grad_in_ws_;
}

#ifdef DRCELL_ENABLE_REFERENCE_KERNELS
Matrix Dense::forward_reference(const Matrix& input) {
  DRCELL_CHECK_MSG(input.cols() == w_.value.rows(),
                   "Dense: input feature mismatch");
  cached_input_ = input;
  Matrix out = input.matmul(w_.value);
  for (std::size_t r = 0; r < out.rows(); ++r)
    for (std::size_t c = 0; c < out.cols(); ++c) out(r, c) += b_.value(0, c);
  return out;
}

Matrix Dense::backward_reference(const Matrix& grad_output) {
  DRCELL_CHECK_MSG(grad_output.rows() == cached_input_.rows() &&
                       grad_output.cols() == w_.value.cols(),
                   "Dense: backward shape mismatch");
  w_.grad += cached_input_.matmul_transposed_self(grad_output);
  for (std::size_t r = 0; r < grad_output.rows(); ++r)
    for (std::size_t c = 0; c < grad_output.cols(); ++c)
      b_.grad(0, c) += grad_output(r, c);
  return grad_output.matmul(w_.value.transposed());
}
#endif

}  // namespace drcell::nn
