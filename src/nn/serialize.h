// Binary (de)serialisation of parameter sets. This is the substrate for the
// paper's transfer-learning mechanism (Sec. 4.4): the source task's DRQN
// weights are saved, then loaded to initialise the target task's network.
//
// Format: magic "DRCW", u32 version, u64 matrix count, then for each matrix
// u64 rows, u64 cols followed by rows*cols little-endian doubles.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "nn/layer.h"

namespace drcell::nn {

/// Serialisation failure (bad magic, truncated stream, shape mismatch).
class SerializationError : public std::runtime_error {
 public:
  explicit SerializationError(const std::string& what)
      : std::runtime_error(what) {}
};

void save_matrices(std::ostream& out, const std::vector<const Matrix*>& ms);
std::vector<Matrix> load_matrices(std::istream& in);

/// Saves the values of a parameter set.
void save_parameters(std::ostream& out, const std::vector<Parameter*>& params);

/// Loads values into an existing parameter set. Count and each matrix shape
/// must match exactly; throws SerializationError otherwise.
void load_parameters(std::istream& in, const std::vector<Parameter*>& params);

/// File-path convenience wrappers.
void save_parameters_to_file(const std::string& path,
                             const std::vector<Parameter*>& params);
void load_parameters_from_file(const std::string& path,
                               const std::vector<Parameter*>& params);

/// Copies values from one parameter set to another (shapes must match).
/// Used for DQN target-network synchronisation and for transfer learning
/// within one process.
void copy_parameters(const std::vector<Parameter*>& from,
                     const std::vector<Parameter*>& to);

}  // namespace drcell::nn
