// LSTM over an observation sequence with full backpropagation through time.
//
// This is the recurrent core of the paper's DRQN (Sec. 4.3, Eq. 8): the
// state S = [s_{-k+1}, …, s_0] is fed as k time steps; the final hidden
// vector summarises the recent cell-selection history and is consumed by a
// dense head that scores all m candidate actions.
#pragma once

#include <vector>

#include "nn/layer.h"
#include "util/rng.h"

namespace drcell::nn {

class Lstm {
 public:
  Lstm(std::size_t input_size, std::size_t hidden_size, Rng& rng);

  /// Runs the cell over `steps` (each batch x input). Returns the hidden
  /// state after the last step (batch x hidden). Caches everything needed
  /// for backward().
  Matrix forward(const std::vector<Matrix>& steps);

  /// All per-step hidden states from the previous forward() call
  /// (useful for sequence-output heads and for tests).
  const std::vector<Matrix>& hidden_states() const { return h_; }

  /// BPTT from the gradient w.r.t. the final hidden state. Accumulates
  /// parameter gradients and returns the gradients w.r.t. each input step.
  std::vector<Matrix> backward(const Matrix& grad_last_hidden);

  /// BPTT from gradients w.r.t. every per-step hidden state.
  std::vector<Matrix> backward_sequence(
      const std::vector<Matrix>& grad_hidden_per_step);

  std::vector<Parameter*> parameters() { return {&wx_, &wh_, &b_}; }

  std::size_t input_size() const { return wx_.value.rows(); }
  std::size_t hidden_size() const { return wh_.value.rows(); }

 private:
  // Gate block layout along columns: [input | forget | candidate | output],
  // each hidden_size wide.
  Parameter wx_;  // input  x 4*hidden
  Parameter wh_;  // hidden x 4*hidden
  Parameter b_;   // 1      x 4*hidden

  // Forward caches (one entry per time step).
  std::vector<Matrix> x_;       // inputs
  std::vector<Matrix> gates_;   // post-activation [i f g o]
  std::vector<Matrix> c_;       // cell states
  std::vector<Matrix> tanh_c_;  // tanh(cell state)
  std::vector<Matrix> h_;       // hidden states
  std::size_t batch_ = 0;
  // Product workspaces recycled across steps/calls via matmul_into — the
  // trainer runs forward/backward thousands of times per episode, and these
  // were the per-step allocations on that path.
  Matrix z_ws_;      // x_t Wx, then += h_{t-1} Wh
  Matrix recur_ws_;  // h_{t-1} Wh (forward) / dz Wh^T (backward)
};

}  // namespace drcell::nn
