// LSTM over an observation sequence with full backpropagation through time.
//
// This is the recurrent core of the paper's DRQN (Sec. 4.3, Eq. 8): the
// state S = [s_{-k+1}, …, s_0] is fed as k time steps; the final hidden
// vector summarises the recent cell-selection history and is consumed by a
// dense head that scores all m candidate actions.
//
// The cell is batch-major end to end: each step is a [batch x input]
// matrix, the carried hidden/cell states are [batch x hidden], and one
// forward/backward over a B-sample batch runs the same handful of
// [B x F]·[F x 4H] GEMMs a single sample would — just with more rows.
//
// Batched determinism contract (tests/batched_training_test.cpp): row b of
// every per-step state is computed exactly as a B=1 forward of sample b
// would compute it, and backward() accumulates parameter gradients in
// sample-major order — the per-(sample, step) outer-product contributions
// are concatenated with rows ordered (b ascending; t descending within b)
// and accumulated through one AᵀB pass, which replays, addition for
// addition, what a per-sample backward loop performs. Batched training is
// therefore bit-identical to the per-sample path from zeroed gradients.
//
// Gate nonlinearities run through the active compute backend's gate pass
// (linalg/backend.h) — the fused fastmath kernel (below) under the default
// native backend. Numeric-divergence contract: the fused pass differs from
// the retained
// std::-based gate pass by the fastmath bound (≤1e-12 relative per
// activation on the training range, measured ≲1e-15 —
// tests/fastmath_test.cpp), so forward()/backward() diverge from the
// pre-fastmath reference path at the last bits while the batched-vs-
// per-sample bit-identity above continues to hold *within* each kernel
// choice. docs/ARCHITECTURE.md states the full contract.
#pragma once

#include <vector>

#include "linalg/sparse_matrix.h"
#include "nn/layer.h"
#include "util/rng.h"

namespace drcell::nn {

/// Fused LSTM gate pass: all four gate nonlinearities (σ over the
/// [i | f] and [o] column blocks, tanh over [g]), the cell update
/// c = f∘c_prev + i∘g and h = o∘tanh(c), computed in one contiguous pass
/// per batch row over the gate workspace through the fastmath array
/// kernels. `z` is the [B x 4H] pre-activation block (column layout
/// [i | f | g | o]); `c_prev` is nullptr on the first step; `gates`
/// ([B x 4H]), `c`, `tanh_c` and `h` ([B x H]) must be pre-sized by the
/// caller. Free functions so the bench pair (`lstm_gate_pass`) and the
/// kernel tests can drive them directly.
void lstm_gate_forward(const Matrix& z, const Matrix* c_prev, Matrix& gates,
                       Matrix& c, Matrix& tanh_c, Matrix& h);

/// The mirrored fused backward gate pass: consumes the cached forward
/// tensors plus `dh` (gradient into h_t) and `dc_next` (cell-state gradient
/// from step t+1), writes the pre-activation gradients `dz` ([B x 4H]) and
/// `dc_prev` ([B x H], both pre-sized). Pure elementwise arithmetic — the
/// same expressions, in the same order, as the std:: reference pass, so
/// given identical inputs the two backward passes are bit-identical; only
/// the forward transcendentals diverge.
void lstm_gate_backward(const Matrix& gates, const Matrix& tanh_c,
                        const Matrix* c_prev, const Matrix& dh,
                        const Matrix& dc_next, Matrix& dz, Matrix& dc_prev);

/// The retained pre-fastmath gate passes (std::tanh / nn::sigmoid, scalar
/// per-element loop) — the benchmark floor of `lstm_gate_pass`, the gate
/// kernel driven by Lstm::set_reference_gate_kernel(true), and the gate
/// implementation of the always-built "reference" compute backend
/// (linalg/backend.h), which is why they are no longer gated behind
/// DRCELL_ENABLE_REFERENCE_KERNELS.
void lstm_gate_forward_reference(const Matrix& z, const Matrix* c_prev,
                                 Matrix& gates, Matrix& c, Matrix& tanh_c,
                                 Matrix& h);
void lstm_gate_backward_reference(const Matrix& gates, const Matrix& tanh_c,
                                  const Matrix* c_prev, const Matrix& dh,
                                  const Matrix& dc_next, Matrix& dz,
                                  Matrix& dc_prev);

class Lstm {
 public:
  Lstm(std::size_t input_size, std::size_t hidden_size, Rng& rng);

  /// Runs the cell over `steps` (each batch x input). Returns the hidden
  /// state after the last step (batch x hidden, a reference into the
  /// per-step cache — valid until the next forward()). Caches everything
  /// needed for backward().
  const Matrix& forward(const std::vector<Matrix>& steps);

  /// Sparse-input forward: the same cell fed near-one-hot step matrices.
  /// Below kSparseGatherMaxDensity the input GEMM runs as a gather
  /// (SparseRowMatrix::matmul_into) and the parameter-gradient pass later
  /// gathers too — both bit-identical to the dense kernels, so this fast
  /// path changes no computed value (tests/sparse_gather_test.cpp). At or
  /// above the threshold the steps are densified and the dense engine runs
  /// unchanged.
  const Matrix& forward(const std::vector<SparseRowMatrix>& steps);

  /// Density cutoff of the sparse forward: gather wins easily on the
  /// ≤1%-dense metro selection states and loses to the blocked dense GEMM
  /// well before one entry in four is set.
  static constexpr double kSparseGatherMaxDensity = 0.25;

  /// All per-step hidden states from the previous forward() call
  /// (useful for sequence-output heads and for tests).
  const std::vector<Matrix>& hidden_states() const { return h_; }

  /// BPTT from the gradient w.r.t. the final hidden state. Accumulates
  /// parameter gradients and returns the gradients w.r.t. each input step
  /// (a reference into a reused workspace, valid until the next backward).
  /// `compute_input_grads = false` skips the per-step dz·Wxᵀ products —
  /// the DRQN discards input gradients, and they are the most expensive
  /// part of the backward pass after the parameter GEMMs. The returned
  /// vector is empty in that mode.
  const std::vector<Matrix>& backward(const Matrix& grad_last_hidden,
                                      bool compute_input_grads = true);

  /// BPTT from gradients w.r.t. every per-step hidden state.
  const std::vector<Matrix>& backward_sequence(
      const std::vector<Matrix>& grad_hidden_per_step,
      bool compute_input_grads = true);

#ifdef DRCELL_ENABLE_REFERENCE_KERNELS
  /// Retained pre-refactor cell (the benchmark floor of the batched
  /// engine): fresh per-step allocations, Wxᵀ/Whᵀ materialised every step
  /// of the backward recursion, parameter gradients accumulated per step,
  /// std::-based gate nonlinearities. With the reference gate kernel
  /// selected (below) this is bit-identical to forward()/backward() for
  /// B = 1; against the default fused fastmath kernel it diverges by the
  /// documented fastmath bound.
  Matrix forward_reference(const std::vector<Matrix>& steps);
  std::vector<Matrix> backward_reference(const Matrix& grad_last_hidden);

  /// Routes the *batched* engine's gate passes through the retained
  /// std::-based kernels instead of the fused fastmath ones — the batched
  /// structure (workspaces, deferred AᵀB parameter gradients) is unchanged,
  /// only the per-element nonlinearities differ. Used by the
  /// `train_step_fastmath` bench pair (isolating the fastmath win) and by
  /// the engine bit-identity tests (batched-vs-per-sample, which needs both
  /// sides on std:: arithmetic).
  void set_reference_gate_kernel(bool on) { reference_gate_kernel_ = on; }
  bool reference_gate_kernel() const { return reference_gate_kernel_; }
#endif

  std::vector<Parameter*> parameters() { return {&wx_, &wh_, &b_}; }

  std::size_t input_size() const { return wx_.value.rows(); }
  std::size_t hidden_size() const { return wh_.value.rows(); }

 private:
  // Gate block layout along columns: [input | forget | candidate | output],
  // each hidden_size wide.
  Parameter wx_;  // input  x 4*hidden
  Parameter wh_;  // hidden x 4*hidden
  Parameter b_;   // 1      x 4*hidden

  /// Shared tail of one forward step: z_ws_ already holds x_t·Wx; adds the
  /// recurrent term and bias, then runs the configured gate pass into the
  /// step-t caches.
  void finish_step(std::size_t t);

#ifdef DRCELL_ENABLE_REFERENCE_KERNELS
  bool reference_gate_kernel_ = false;
#endif
  // Forward caches (one entry per time step; storage reused across calls).
  std::vector<Matrix> x_;       // inputs (dense path)
  std::vector<SparseRowMatrix> sx_;  // inputs (sparse path)
  bool sparse_x_ = false;  // which input cache the last forward filled
  std::vector<Matrix> gates_;   // post-activation [i f g o]
  std::vector<Matrix> c_;       // cell states
  std::vector<Matrix> tanh_c_;  // tanh(cell state)
  std::vector<Matrix> h_;       // hidden states
  std::size_t batch_ = 0;
  // Product workspaces recycled across steps/calls via matmul_into — the
  // trainer runs forward/backward thousands of times per episode, and these
  // were the per-step allocations on that path.
  Matrix z_ws_;      // x_t Wx, then += h_{t-1} Wh
  Matrix recur_ws_;  // h_{t-1} Wh (forward)
  // Backward workspaces.
  std::vector<Matrix> dz_;      // per-step pre-activation gradients
  std::vector<Matrix> grad_x_;  // returned input gradients
  std::vector<Matrix> last_only_ws_;  // backward()'s zero-padded grads
  Matrix dh_ws_;       // gradient into h_t (external + recurrent)
  Matrix dh_next_ws_;  // dz_t Whᵀ flowing to step t-1
  Matrix dc_next_ws_;  // cell-state gradient flowing to step t-1
  Matrix dc_prev_ws_;
  std::vector<Matrix> densify_ws_;  // dense fallback of the sparse forward
  // Sample-major concatenations feeding the deferred parameter GEMMs.
  Matrix xcat_ws_;    // [B·T x input]  rows (b asc; t desc)
  SparseRowMatrix sxcat_ws_;  // its sparse twin when sparse_x_
  Matrix dzcat_ws_;   // [B·T x 4H]     rows (b asc; t desc)
  Matrix hcat_ws_;    // [B·(T-1) x H]  rows (b asc; t desc, t >= 1)
  Matrix dzhcat_ws_;  // [B·(T-1) x 4H] rows (b asc; t desc, t >= 1)
};

}  // namespace drcell::nn
