// Core abstractions of the drcell neural-network library: trainable
// parameters and the feed-forward Layer interface.
//
// The library is deliberately layer-based with explicit forward/backward
// (no general autograd): the paper's networks are a dense MLP (DQN) and an
// LSTM + dense head (DRQN), both of which map cleanly onto this design
// while keeping every gradient auditable and finite-difference-checkable.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "linalg/matrix.h"

namespace drcell::nn {

/// A trainable tensor together with its accumulated gradient.
struct Parameter {
  Parameter() = default;
  Parameter(std::size_t rows, std::size_t cols)
      : value(rows, cols), grad(rows, cols) {}

  void zero_grad() { grad = Matrix(value.rows(), value.cols()); }

  Matrix value;
  Matrix grad;
};

/// Feed-forward layer operating on batch-major matrices (batch x features).
///
/// forward() caches whatever backward() needs; backward() consumes the
/// gradient w.r.t. the layer output, accumulates parameter gradients and
/// returns the gradient w.r.t. the layer input. One backward per forward.
class Layer {
 public:
  virtual ~Layer() = default;

  virtual Matrix forward(const Matrix& input) = 0;
  virtual Matrix backward(const Matrix& grad_output) = 0;

  /// Trainable parameters (empty for activations).
  virtual std::vector<Parameter*> parameters() { return {}; }
  virtual std::string name() const = 0;
};

using LayerPtr = std::unique_ptr<Layer>;

/// Collects parameters from several parameter-owning objects.
template <typename... Owners>
std::vector<Parameter*> collect_parameters(Owners&... owners) {
  std::vector<Parameter*> all;
  (
      [&] {
        auto ps = owners.parameters();
        all.insert(all.end(), ps.begin(), ps.end());
      }(),
      ...);
  return all;
}

}  // namespace drcell::nn
