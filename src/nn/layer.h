// Core abstractions of the drcell neural-network library: trainable
// parameters and the feed-forward Layer interface.
//
// The library is deliberately layer-based with explicit forward/backward
// (no general autograd): the paper's networks are a dense MLP (DQN) and an
// LSTM + dense head (DRQN), both of which map cleanly onto this design
// while keeping every gradient auditable and finite-difference-checkable.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "linalg/matrix.h"

namespace drcell::nn {

/// A trainable tensor together with its accumulated gradient.
struct Parameter {
  Parameter() = default;
  Parameter(std::size_t rows, std::size_t cols)
      : value(rows, cols), grad(rows, cols) {}

  // resize() reuses the gradient's storage (data_.assign on warm capacity),
  // so a steady-state zero_grad is a fill, not a fresh allocation — at the
  // metro tier the gradients alone are ~25 MB per network.
  void zero_grad() { grad.resize(value.rows(), value.cols(), 0.0); }

  Matrix value;
  Matrix grad;
};

/// Feed-forward layer operating on batch-major matrices (batch x features).
///
/// forward() caches whatever backward() needs; backward() consumes the
/// gradient w.r.t. the layer output, accumulates parameter gradients and
/// returns the gradient w.r.t. the layer input. One backward per forward.
///
/// Both calls return references into layer-owned workspaces (valid until the
/// next forward()/backward() on the same layer), so a steady-state training
/// loop allocates nothing per step. Copy the result to keep it.
///
/// Batched determinism contract: every layer computes output row b of a
/// [batch x features] input exactly as it would compute the single row of a
/// [1 x features] input — same dot products, same addition order — and
/// backward() accumulates parameter gradients in ascending batch-row order.
/// Batched training is therefore bit-identical to a per-sample loop (from
/// zeroed gradients); tests/batched_training_test.cpp enforces this.
class Layer {
 public:
  virtual ~Layer() = default;

  virtual const Matrix& forward(const Matrix& input) = 0;
  virtual const Matrix& backward(const Matrix& grad_output) = 0;

#ifdef DRCELL_ENABLE_REFERENCE_KERNELS
  /// Retained pre-workspace reference path (benchmark floor of the batched
  /// training engine, per the repo's retained-naive-reference convention):
  /// value-returning calls that allocate fresh outputs and, where the
  /// optimised path avoids it, materialise transposes. Must be
  /// bit-identical to forward()/backward() — same dot products, same
  /// addition order. Defaults delegate to the optimised path (correct, and
  /// honest for layers whose old implementation had no extra cost beyond
  /// the per-call copy).
  virtual Matrix forward_reference(const Matrix& input) {
    return forward(input);
  }
  virtual Matrix backward_reference(const Matrix& grad_output) {
    return backward(grad_output);
  }
#endif

  /// Trainable parameters (empty for activations).
  virtual std::vector<Parameter*> parameters() { return {}; }
  virtual std::string name() const = 0;
};

using LayerPtr = std::unique_ptr<Layer>;

/// Collects parameters from several parameter-owning objects.
template <typename... Owners>
std::vector<Parameter*> collect_parameters(Owners&... owners) {
  std::vector<Parameter*> all;
  (
      [&] {
        auto ps = owners.parameters();
        all.insert(all.end(), ps.begin(), ps.end());
      }(),
      ...);
  return all;
}

}  // namespace drcell::nn
