#include "nn/optimizer.h"

#include <cmath>

namespace drcell::nn {

Optimizer::Optimizer(std::vector<Parameter*> params)
    : params_(std::move(params)) {
  DRCELL_CHECK_MSG(!params_.empty(), "optimizer needs at least one parameter");
  for (auto* p : params_) DRCELL_CHECK(p != nullptr);
}

void Optimizer::zero_grad() {
  for (auto* p : params_) p->zero_grad();
}

Sgd::Sgd(std::vector<Parameter*> params, double learning_rate, double momentum)
    : Optimizer(std::move(params)), lr_(learning_rate), momentum_(momentum) {
  DRCELL_CHECK(lr_ > 0.0 && momentum_ >= 0.0 && momentum_ < 1.0);
  velocity_.reserve(params_.size());
  for (auto* p : params_)
    velocity_.emplace_back(p->value.rows(), p->value.cols());
}

void Sgd::step() {
  for (std::size_t k = 0; k < params_.size(); ++k) {
    auto& p = *params_[k];
    auto vdata = velocity_[k].data();
    for (std::size_t i = 0; i < p.value.data().size(); ++i) {
      vdata[i] = momentum_ * vdata[i] - lr_ * p.grad.data()[i];
      p.value.data()[i] += vdata[i];
    }
  }
}

RmsProp::RmsProp(std::vector<Parameter*> params, double learning_rate,
                 double decay, double epsilon)
    : Optimizer(std::move(params)), lr_(learning_rate), decay_(decay),
      eps_(epsilon) {
  DRCELL_CHECK(lr_ > 0.0 && decay_ > 0.0 && decay_ < 1.0 && eps_ > 0.0);
  mean_square_.reserve(params_.size());
  for (auto* p : params_)
    mean_square_.emplace_back(p->value.rows(), p->value.cols());
}

void RmsProp::step() {
  for (std::size_t k = 0; k < params_.size(); ++k) {
    auto& p = *params_[k];
    auto ms = mean_square_[k].data();
    for (std::size_t i = 0; i < p.value.data().size(); ++i) {
      const double g = p.grad.data()[i];
      ms[i] = decay_ * ms[i] + (1.0 - decay_) * g * g;
      p.value.data()[i] -= lr_ * g / (std::sqrt(ms[i]) + eps_);
    }
  }
}

Adam::Adam(std::vector<Parameter*> params, double learning_rate, double beta1,
           double beta2, double epsilon)
    : Optimizer(std::move(params)), lr_(learning_rate), beta1_(beta1),
      beta2_(beta2), eps_(epsilon) {
  DRCELL_CHECK(lr_ > 0.0);
  DRCELL_CHECK(beta1_ >= 0.0 && beta1_ < 1.0);
  DRCELL_CHECK(beta2_ >= 0.0 && beta2_ < 1.0);
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (auto* p : params_) {
    m_.emplace_back(p->value.rows(), p->value.cols());
    v_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Adam::step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t k = 0; k < params_.size(); ++k) {
    auto& p = *params_[k];
    auto m = m_[k].data();
    auto v = v_[k].data();
    for (std::size_t i = 0; i < p.value.data().size(); ++i) {
      const double g = p.grad.data()[i];
      m[i] = beta1_ * m[i] + (1.0 - beta1_) * g;
      v[i] = beta2_ * v[i] + (1.0 - beta2_) * g * g;
      const double mhat = m[i] / bc1;
      const double vhat = v[i] / bc2;
      p.value.data()[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

double clip_grad_norm(const std::vector<Parameter*>& params, double max_norm) {
  DRCELL_CHECK(max_norm > 0.0);
  double sq = 0.0;
  for (const auto* p : params)
    for (double g : p->grad.data()) sq += g * g;
  const double norm = std::sqrt(sq);
  if (norm > max_norm) {
    const double scale = max_norm / norm;
    for (auto* p : params)
      for (double& g : p->grad.data()) g *= scale;
  }
  return norm;
}

}  // namespace drcell::nn
