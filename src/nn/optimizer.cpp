#include "nn/optimizer.h"

#include <algorithm>
#include <cmath>

#include "util/thread_pool.h"

namespace drcell::nn {

Optimizer::Optimizer(std::vector<Parameter*> params)
    : params_(std::move(params)) {
  DRCELL_CHECK_MSG(!params_.empty(), "optimizer needs at least one parameter");
  for (auto* p : params_) DRCELL_CHECK(p != nullptr);
}

void Optimizer::zero_grad() {
  for (auto* p : params_) p->zero_grad();
}

Sgd::Sgd(std::vector<Parameter*> params, double learning_rate, double momentum)
    : Optimizer(std::move(params)), lr_(learning_rate), momentum_(momentum) {
  DRCELL_CHECK(lr_ > 0.0 && momentum_ >= 0.0 && momentum_ < 1.0);
  velocity_.reserve(params_.size());
  for (auto* p : params_)
    velocity_.emplace_back(p->value.rows(), p->value.cols());
}

// The update loops below spell out __restrict pointers and hoist the
// scalar hyper-parameters into locals. Without this the compiler must
// assume the value/grad/moment arrays (and the member doubles reachable
// through `this`) alias each other and emits a scalar loop; with it the
// loops vectorise. The per-element arithmetic is unchanged — elementwise
// mul/add/div/sqrt with no reassociation — so the update is bit-identical
// to the scalar form, it just runs several lanes at a time (at the
// 10,000-cell metro tier the optimiser pass covers ~3.2M parameters and
// dominated the train step before this).

void Sgd::step(util::ThreadPool* /*pool*/) {
  const double momentum = momentum_, lr = lr_;
  for (std::size_t k = 0; k < params_.size(); ++k) {
    auto& p = *params_[k];
    const std::size_t n = p.value.data().size();
    double* __restrict v = velocity_[k].data().data();
    double* __restrict x = p.value.data().data();
    const double* __restrict g = p.grad.data().data();
    for (std::size_t i = 0; i < n; ++i) {
      v[i] = momentum * v[i] - lr * g[i];
      x[i] += v[i];
    }
  }
}

RmsProp::RmsProp(std::vector<Parameter*> params, double learning_rate,
                 double decay, double epsilon)
    : Optimizer(std::move(params)), lr_(learning_rate), decay_(decay),
      eps_(epsilon) {
  DRCELL_CHECK(lr_ > 0.0 && decay_ > 0.0 && decay_ < 1.0 && eps_ > 0.0);
  mean_square_.reserve(params_.size());
  for (auto* p : params_)
    mean_square_.emplace_back(p->value.rows(), p->value.cols());
}

void RmsProp::step(util::ThreadPool* /*pool*/) {
  const double decay = decay_, lr = lr_, eps = eps_;
  for (std::size_t k = 0; k < params_.size(); ++k) {
    auto& p = *params_[k];
    const std::size_t n = p.value.data().size();
    double* __restrict ms = mean_square_[k].data().data();
    double* __restrict x = p.value.data().data();
    const double* __restrict g = p.grad.data().data();
    for (std::size_t i = 0; i < n; ++i) {
      ms[i] = decay * ms[i] + (1.0 - decay) * g[i] * g[i];
      x[i] -= lr * g[i] / (std::sqrt(ms[i]) + eps);
    }
  }
}

Adam::Adam(std::vector<Parameter*> params, double learning_rate, double beta1,
           double beta2, double epsilon)
    : Optimizer(std::move(params)), lr_(learning_rate), beta1_(beta1),
      beta2_(beta2), eps_(epsilon) {
  DRCELL_CHECK(lr_ > 0.0);
  DRCELL_CHECK(beta1_ >= 0.0 && beta1_ < 1.0);
  DRCELL_CHECK(beta2_ >= 0.0 && beta2_ < 1.0);
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (auto* p : params_) {
    m_.emplace_back(p->value.rows(), p->value.cols());
    v_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Adam::step(util::ThreadPool* pool) {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  const double beta1 = beta1_, beta2 = beta2_, lr = lr_, eps = eps_;
  // Scalars captured by value: a by-reference capture would be a load
  // through the closure the vectoriser must assume aliases the __restrict
  // stores below, forcing the loop scalar again.
  const auto update = [this, beta1, beta2, lr, eps, bc1,
                       bc2](std::size_t tensor, std::size_t lo,
                            std::size_t hi) {
    auto& p = *params_[tensor];
    double* __restrict m = m_[tensor].data().data();
    double* __restrict v = v_[tensor].data().data();
    double* __restrict x = p.value.data().data();
    const double* __restrict g = p.grad.data().data();
    for (std::size_t i = lo; i < hi; ++i) {
      m[i] = beta1 * m[i] + (1.0 - beta1) * g[i];
      v[i] = beta2 * v[i] + (1.0 - beta2) * g[i] * g[i];
      const double mhat = m[i] / bc1;
      const double vhat = v[i] / bc2;
      x[i] -= lr * mhat / (std::sqrt(vhat) + eps);
    }
  };
  if (pool != nullptr && pool->worker_count() > 0) {
    // Index-exclusive chunks: every element is written by exactly one task
    // and the per-element arithmetic is untouched, so the pooled update is
    // bit-identical to the serial loop below for any worker count.
    constexpr std::size_t kChunk = 1 << 16;
    chunks_ws_.clear();
    for (std::size_t k = 0; k < params_.size(); ++k) {
      const std::size_t n = params_[k]->value.data().size();
      for (std::size_t lo = 0; lo < n; lo += kChunk)
        chunks_ws_.push_back({k, lo, std::min(lo + kChunk, n)});
    }
    pool->parallel_for(chunks_ws_.size(), [&](std::size_t c) {
      const Chunk& ch = chunks_ws_[c];
      update(ch.tensor, ch.lo, ch.hi);
    });
    return;
  }
  for (std::size_t k = 0; k < params_.size(); ++k)
    update(k, 0, params_[k]->value.data().size());
}

double clip_grad_norm(const std::vector<Parameter*>& params, double max_norm) {
  DRCELL_CHECK(max_norm > 0.0);
  double sq = 0.0;
  for (const auto* p : params)
    for (double g : p->grad.data()) sq += g * g;
  const double norm = std::sqrt(sq);
  if (norm > max_norm) {
    const double scale = max_norm / norm;
    for (auto* p : params)
      for (double& g : p->grad.data()) g *= scale;
  }
  return norm;
}

}  // namespace drcell::nn
