#include "nn/gradient_check.h"

#include <cmath>

namespace drcell::nn {

GradCheckResult check_gradient(Parameter& param,
                               const std::function<double()>& loss,
                               double eps) {
  GradCheckResult result;
  auto values = param.value.data();
  const auto grads = param.grad.data();
  for (std::size_t i = 0; i < values.size(); ++i) {
    const double saved = values[i];
    values[i] = saved + eps;
    const double up = loss();
    values[i] = saved - eps;
    const double down = loss();
    values[i] = saved;
    const double numeric = (up - down) / (2.0 * eps);
    const double analytic = grads[i];
    const double abs_diff = std::fabs(numeric - analytic);
    const double denom =
        std::max(1e-12, std::max(std::fabs(numeric), std::fabs(analytic)));
    result.max_abs_diff = std::max(result.max_abs_diff, abs_diff);
    result.max_rel_diff = std::max(result.max_rel_diff, abs_diff / denom);
  }
  return result;
}

}  // namespace drcell::nn
