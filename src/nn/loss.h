// Loss functions. The DQN trainer uses the masked variants: only the
// Q-value of the action actually taken receives a TD error (Eq. 5 of the
// paper); all other action outputs get zero gradient.
#pragma once

#include "linalg/matrix.h"

namespace drcell::nn {

struct LossResult {
  double value = 0.0;    ///< scalar loss: raw_sum / normalizer
  double raw_sum = 0.0;  ///< unnormalised sum of per-element losses,
                         ///< accumulated in row-major (batch-row) order
  double normalizer = 0.0;  ///< divisor applied to raw_sum and the gradients
  Matrix grad;              ///< gradient w.r.t. predictions (same shape)
};

/// Mean squared error over all elements: mean((pred - target)²).
LossResult mse_loss(const Matrix& predictions, const Matrix& targets);

/// Huber loss with threshold delta (gradient clipping built into the loss —
/// the standard DQN stabilisation).
LossResult huber_loss(const Matrix& predictions, const Matrix& targets,
                      double delta = 1.0);

/// Masked MSE: elements where mask == 0 contribute neither loss nor
/// gradient. The mean is over unmasked elements only, unless `normalizer`
/// is positive — then both the loss and the gradients divide by that
/// instead. A per-sample reference path passes the whole batch's unmasked
/// count so its per-row gradients match the batched call bit for bit.
LossResult masked_mse_loss(const Matrix& predictions, const Matrix& targets,
                           const Matrix& mask, double normalizer = 0.0);

/// Masked Huber (see above).
LossResult masked_huber_loss(const Matrix& predictions, const Matrix& targets,
                             const Matrix& mask, double delta = 1.0,
                             double normalizer = 0.0);

}  // namespace drcell::nn
