// Loss functions. The DQN trainer uses the masked variants: only the
// Q-value of the action actually taken receives a TD error (Eq. 5 of the
// paper); all other action outputs get zero gradient.
#pragma once

#include "linalg/matrix.h"

namespace drcell::nn {

struct LossResult {
  double value = 0.0;  ///< scalar loss averaged over contributing elements
  Matrix grad;         ///< gradient w.r.t. predictions (same shape)
};

/// Mean squared error over all elements: mean((pred - target)²).
LossResult mse_loss(const Matrix& predictions, const Matrix& targets);

/// Huber loss with threshold delta (gradient clipping built into the loss —
/// the standard DQN stabilisation).
LossResult huber_loss(const Matrix& predictions, const Matrix& targets,
                      double delta = 1.0);

/// Masked MSE: elements where mask == 0 contribute neither loss nor
/// gradient. The mean is over unmasked elements only.
LossResult masked_mse_loss(const Matrix& predictions, const Matrix& targets,
                           const Matrix& mask);

/// Masked Huber (see above).
LossResult masked_huber_loss(const Matrix& predictions, const Matrix& targets,
                             const Matrix& mask, double delta = 1.0);

}  // namespace drcell::nn
