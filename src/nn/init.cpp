#include "nn/init.h"

#include <cmath>

namespace drcell::nn {

void xavier_uniform(Matrix& w, std::size_t fan_in, std::size_t fan_out,
                    Rng& rng) {
  DRCELL_CHECK(fan_in + fan_out > 0);
  const double a =
      std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  for (double& x : w.data()) x = rng.uniform(-a, a);
}

void he_normal(Matrix& w, std::size_t fan_in, Rng& rng) {
  DRCELL_CHECK(fan_in > 0);
  const double sd = std::sqrt(2.0 / static_cast<double>(fan_in));
  for (double& x : w.data()) x = rng.normal(0.0, sd);
}

void constant_fill(Matrix& w, double value) {
  for (double& x : w.data()) x = value;
}

}  // namespace drcell::nn
