// Deployment policies wrapping a trained DrCellAgent as a CellSelector so
// the campaign runner can evaluate DR-Cell next to QBC and RANDOM.
#pragma once

#include "baselines/selector.h"
#include "core/agent.h"

namespace drcell::core {

/// Frozen greedy policy — the paper's testing stage: always take the action
/// with the largest Q-value (Sec. 5.3).
class DrCellPolicy final : public baselines::CellSelector {
 public:
  explicit DrCellPolicy(DrCellAgent& agent);

  std::size_t select(const mcs::SparseMcsEnvironment& env) override;
  std::string name() const override { return "DR-Cell"; }

 private:
  DrCellAgent& agent_;
};

/// Future-work extension (Sec. 6, "online manner"): keeps δ-greedy
/// exploration and Q-updates running during the testing stage. The reward
/// signal is observable at test time because q is the *assessed* quality
/// decision of the LOO Bayesian gate, not the unknown true error.
class OnlineAdaptivePolicy final : public baselines::CellSelector {
 public:
  /// `epsilon` is the (small, constant) test-time exploration rate.
  OnlineAdaptivePolicy(DrCellAgent& agent, double epsilon,
                       std::uint64_t seed);

  std::size_t select(const mcs::SparseMcsEnvironment& env) override;
  void on_step(const mcs::SparseMcsEnvironment& env, std::size_t action,
               const mcs::StepResult& result) override;
  std::string name() const override { return "DR-Cell-online"; }

 private:
  DrCellAgent& agent_;
  double epsilon_;
  Rng rng_;
  std::vector<double> pending_state_;
  std::size_t pending_action_ = 0;
  bool has_pending_ = false;
};

}  // namespace drcell::core
