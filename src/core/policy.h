// Deployment policies wrapping a trained DrCellAgent as a CellSelector so
// the campaign runner can evaluate DR-Cell next to QBC and RANDOM.
#pragma once

#include <algorithm>
#include <array>

#include "baselines/selector.h"
#include "core/agent.h"
#include "core/batched_selector.h"

namespace drcell::core {

/// Frozen greedy policy — the paper's testing stage: always take the action
/// with the largest Q-value (Sec. 5.3). Claims BatchedQSelector: its
/// decision is exactly the greedy argmax of the agent's online network, so
/// the multi-campaign scheduler may batch it across campaigns.
class DrCellPolicy final : public baselines::CellSelector,
                           public BatchedQSelector {
 public:
  explicit DrCellPolicy(DrCellAgent& agent);

  std::size_t select(const mcs::SparseMcsEnvironment& env) override;
  std::string name() const override { return "DR-Cell"; }

  rl::QNetwork& shared_network() override {
    return agent_.trainer().online();
  }
  DrCellAgent& agent() { return agent_; }

 private:
  DrCellAgent& agent_;
};

/// Future-work extension (Sec. 6, "online manner"): keeps δ-greedy
/// exploration and Q-updates running during the testing stage. The reward
/// signal is observable at test time because q is the *assessed* quality
/// decision of the LOO Bayesian gate, not the unknown true error.
class OnlineAdaptivePolicy final : public baselines::CellSelector {
 public:
  /// `epsilon` is the (small, constant) test-time exploration rate.
  OnlineAdaptivePolicy(DrCellAgent& agent, double epsilon,
                       std::uint64_t seed);

  std::size_t select(const mcs::SparseMcsEnvironment& env) override;
  void on_step(const mcs::SparseMcsEnvironment& env, std::size_t action,
               const mcs::StepResult& result) override;
  std::string name() const override { return "DR-Cell-online"; }

  /// Checkpoint scope (core/checkpoint.h): the exploration RNG stream only.
  /// Weights and trainer counters travel in the checkpoint's agent table;
  /// the replay buffer is deliberately out of scope, so a resumed online
  /// campaign warms its pool up again — its future *training* (not its
  /// restored weights) may diverge from the uninterrupted run. The
  /// bit-identical resume guarantee covers non-training selectors.
  std::vector<std::uint64_t> checkpoint_state_words() const override {
    const auto s = rng_.save_state();
    return std::vector<std::uint64_t>(s.begin(), s.end());
  }
  void restore_state_words(const std::vector<std::uint64_t>& words) override {
    DRCELL_CHECK_MSG(words.size() == 6,
                     "DR-Cell-online checkpoint needs 6 words");
    std::array<std::uint64_t, 6> s;
    std::copy(words.begin(), words.end(), s.begin());
    rng_.restore_state(s);
  }

  DrCellAgent& online_agent() { return agent_; }

 private:
  DrCellAgent& agent_;
  double epsilon_;
  Rng rng_;
  std::vector<double> pending_state_;
  std::size_t pending_action_ = 0;
  bool has_pending_ = false;
};

/// The trainable agent behind a selector, if any — nullptr for the
/// weightless baselines. Enumerates every selector type that carries
/// weights; the checkpoint layer's agent-dedup table and the scheduler's
/// health monitoring share this one definition.
DrCellAgent* trainable_agent_of(baselines::CellSelector* selector);

}  // namespace drcell::core
