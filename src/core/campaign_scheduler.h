// Multi-campaign serving engine: steps N independent sensing campaigns
// concurrently over the shared thread pool, one synchronised "wave" (one
// selection step per unfinished campaign) at a time.
//
// Wave anatomy (step_wave):
//
//   0. HEALTH/RECOVER — serial: consult every serving agent's numeric
//      sentinels (core/health_monitor.h; parameter scans on the configured
//      cadence, loss/Q sentinels tripped earlier stay sticky). An unhealthy
//      agent triggers rollback from the auto-checkpoint ring, else baseline
//      fallback, else quarantine (see "Fault tolerance" below). Then, on
//      the configured cadence, snapshot the whole fleet into the in-memory
//      checkpoint ring (CRC-protected DRCK v2 — core/checkpoint.h).
//   1. DECIDE — serial, ascending slot order. Campaigns whose selector
//      claims BatchedQSelector (core/batched_selector.h) are grouped by
//      shared network; each group's states are stacked into ONE
//      timestep-major [B x m] minibatch and scored with a single
//      forward_batch, then each row is argmaxed under that campaign's
//      action mask. By the batched determinism contract (rl/qnetwork.h)
//      every row's Q-values — and therefore the chosen action — are
//      bit-identical to the B = 1 forward the solo runner would do.
//      Non-batched selectors call select() serially in slot order, so a
//      selector's private draw stream advances exactly as its solo
//      campaign would.
//   2. STEP — parallel_for over the unfinished campaigns: each applies its
//      decided action to its own environment (where the real work lives —
//      matrix-completion inference, the LOO gate). Writes are
//      index-exclusive per slot, so the result is bit-identical for any
//      worker count (util/thread_pool.h determinism contract).
//   3. OBSERVE — serial, ascending: selector on_step hooks (online
//      training). Serial because campaigns may share a trainable agent.
//
// Fault tolerance (FaultToleranceOptions, default ON). Every phase runs
// each campaign inside its own fault domain: a throw out of DECIDE, STEP or
// OBSERVE (an injected fault, an engine CheckError, anything) is caught,
// attributed to that campaign and never unwinds the wave. A failed STEP is
// retried in-wave up to `step_retries` times — the `env.step` fault site
// precedes any mutation, so a transient fault retried with the same action
// continues the trajectory BIT-IDENTICALLY. A campaign that faults
// `quarantine_after` consecutive waves is quarantined: it stops stepping,
// its result is flagged, and the rest of the fleet continues — healthy
// campaigns' trajectories stay bit-identical to a no-fault run because
// campaigns never couple (own env/engine, private selector streams, and
// batched rows are row-wise bit-identical for any batch size). That
// isolation guarantee is hard-gated by bench_multi_campaign --fault-drill
// and tests/failure_injection_test.cpp.
//
// Graceful degradation of a shared agent: when a sentinel trips (NaN loss
// within one train step, non-finite Q row, poisoned parameters), the
// scheduler rolls the WHOLE fleet back to the newest auto-checkpoint ring
// entry (load_checkpoint onto itself — weights, counters, selector streams
// and replayed envs all return to the last-good wave bit-identically).
// Ring snapshots are taken only while every agent is healthy, so the ring
// never holds poisoned weights. After `max_rollbacks` rollbacks (a
// persistent poisoner), or with an empty ring, the agent's campaigns are
// switched to `fallback_factory` baseline selectors (degraded but serving)
// or quarantined when no fallback is configured. Every fault, retry,
// quarantine, rollback and fallback is appended to the human-readable
// incident log (`incidents()`).
//
// Per-campaign equivalence: a campaign stepped here produces the exact
// action log, environment trace and CampaignResult (seconds excluded —
// wall-clock is not part of any bit-compare) that run_campaign would
// produce with the same task/engine/selector/seeds, PROVIDED nothing
// couples the campaigns (engines and environments are per-campaign by
// construction; selectors must be per-campaign unless frozen;
// cross-campaign training through a shared online agent changes the
// training-data order by design). bench_multi_campaign hard-gates this
// equivalence.
//
// Checkpoint/resume (core/checkpoint.h): the scheduler records every
// campaign's ordered action log; resume rebuilds each environment with a
// fresh engine from the registered factory and replays the log — the
// environment is deterministic given the action sequence, and the replayed
// engine sees the identical inference-call sequence (including the
// order-sensitive ALS warm-start fingerprints), so a resumed scheduler
// continues bit-identically to one that never stopped. Quarantine state
// travels in the checkpoint (v2); a quarantined campaign's log holds only
// its SUCCESSFUL steps, so replay lands on its last consistent state.
#pragma once

#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "baselines/selector.h"
#include "core/batched_selector.h"
#include "core/campaign.h"
#include "util/thread_pool.h"

namespace drcell::core {

class DrCellAgent;

enum class CampaignState { kActive, kQuarantined };

/// One entry of the scheduler's incident log — the operator-facing record
/// of what the fault-tolerance layer did and why.
struct Incident {
  std::size_t wave = 0;  ///< waves_completed when the incident was recorded
  std::string campaign;  ///< campaign id; empty = fleet-level incident
  std::string kind;      ///< "decide-fault", "step-fault", "observe-fault",
                         ///< "retry-recovered", "quarantine", "agent-unhealthy",
                         ///< "rollback", "fallback"
  std::string detail;
};

class CampaignScheduler {
 public:
  /// Builds the campaign's inference engine. Must be deterministic — resume
  /// calls it again to rebuild the engine a replayed environment drives —
  /// which every stateless construction (make_als_engine(params), ...) is.
  using EngineFactory = std::function<cs::InferenceEnginePtr()>;

  /// Builds the degraded-mode replacement selector for a campaign (QBC,
  /// RANDOM, ...). Receives the campaign id and slot index so per-campaign
  /// seeds stay distinct.
  using FallbackFactory = std::function<std::shared_ptr<baselines::CellSelector>(
      const std::string& id, std::size_t slot)>;

  struct FaultToleranceOptions {
    /// Per-campaign fault domains in DECIDE/STEP/OBSERVE. Off = the legacy
    /// behaviour: the first campaign exception unwinds step_wave.
    bool isolate = true;
    /// In-wave retries of a failed environment step (same action; a
    /// transient fault recovered this way keeps the trajectory
    /// bit-identical). DECIDE/OBSERVE faults retry on the next wave
    /// instead — their selector streams must not be re-advanced.
    std::size_t step_retries = 1;
    /// Consecutive faulted waves before a campaign is quarantined.
    std::size_t quarantine_after = 2;
    /// Snapshot the fleet into the checkpoint ring every N waves (0 = no
    /// auto-checkpointing; rollback then degrades straight to fallback/
    /// quarantine).
    std::size_t checkpoint_every_waves = 0;
    /// Ring capacity (last K snapshots are kept).
    std::size_t checkpoint_ring = 3;
    /// Agent parameter-scan cadence in waves (0 disables agent health
    /// monitoring entirely; loss/Q sentinels tripped by the policies
    /// themselves are still acted on each wave).
    std::size_t health_check_every_waves = 1;
    /// Rollbacks before an unhealthy agent is declared persistent and its
    /// campaigns degrade to the fallback selector (or quarantine).
    std::size_t max_rollbacks = 2;
    /// Degraded-mode selector builder; nullptr = quarantine instead.
    FallbackFactory fallback_factory;
  };

  struct Options {
    util::ThreadPool* pool = nullptr;  ///< nullptr -> ThreadPool::global()
    /// Batch BatchedQSelector campaigns into shared forward_batch calls.
    /// Off = the unbatched reference: every selector steps via select().
    bool cross_campaign_batching = true;
    FaultToleranceOptions fault;
  };

  CampaignScheduler();  // default Options: global pool, batching on
  explicit CampaignScheduler(Options options);

  /// Registers a campaign and builds its environment; returns the slot
  /// index. `selector` must stay exclusive to this campaign unless it is a
  /// frozen BatchedQSelector policy (stateless select), and ids must be
  /// unique — they key the checkpoint's identity check. The campaign's
  /// `env.step` fault-injection site is scoped by the id (unless the config
  /// already set a scope), so drills can target exactly one campaign.
  std::size_t add_campaign(std::string id, CampaignConfig config,
                           std::shared_ptr<const mcs::SensingTask> task,
                           EngineFactory engine_factory,
                           std::shared_ptr<baselines::CellSelector> selector);

  std::size_t num_campaigns() const { return slots_.size(); }
  /// True when every campaign is finished OR quarantined.
  bool all_done() const;
  std::size_t waves_completed() const { return waves_; }

  /// One wave: every unfinished, non-quarantined campaign decides and
  /// applies one action. Returns how many campaigns were stepped (0 = all
  /// done or quarantined).
  std::size_t step_wave();

  /// Waves until every campaign's episode is done (or quarantined);
  /// returns the number of waves run. `max_waves` > 0 caps the burst
  /// (checkpoint drills).
  std::size_t run(std::size_t max_waves = 0);

  const mcs::SparseMcsEnvironment& environment(std::size_t slot) const;
  const std::vector<std::uint32_t>& action_log(std::size_t slot) const;

  CampaignState campaign_state(std::size_t slot) const;
  const std::string& quarantine_reason(std::size_t slot) const;
  /// Slot indices currently quarantined, ascending.
  std::vector<std::size_t> quarantined_slots() const;

  /// The fault-tolerance layer's ordered event record (see Incident).
  const std::vector<Incident>& incidents() const { return incidents_; }
  /// Rollbacks performed so far (bounded by max_rollbacks).
  std::size_t rollbacks() const { return rollbacks_; }
  /// Auto-checkpoint ring introspection (drills compare restored state
  /// against the snapshot bytes). Entries are full DRCK v2 streams,
  /// oldest first.
  std::size_t checkpoint_ring_size() const { return ring_.size(); }
  const std::string& checkpoint_ring_entry(std::size_t i) const;

  /// Results in slot order, each carrying its campaign id. seconds is 0 —
  /// wall-clock is owned by the caller and excluded from bit-compares.
  /// Quarantined campaigns are flagged (CampaignResult::quarantined) and
  /// summarise their trajectory up to the quarantine point.
  std::vector<CampaignResult> results() const;

 private:
  struct Slot {
    std::string id;
    CampaignConfig config;
    std::shared_ptr<const mcs::SensingTask> task;
    EngineFactory engine_factory;
    std::shared_ptr<baselines::CellSelector> selector;
    BatchedQSelector* batched = nullptr;  ///< non-null: batchable decision
    std::unique_ptr<mcs::SparseMcsEnvironment> env;
    std::vector<std::uint32_t> action_log;
    /// Wave workspaces (DECIDE writes, STEP reads; index-exclusive).
    std::vector<double> state_buf;
    std::size_t pending_action = 0;
    // Fault-domain state.
    CampaignState state = CampaignState::kActive;
    std::string quarantine_reason;
    std::size_t consecutive_faults = 0;
  };

  /// Returns false when a batched forward threw (isolated mode only); the
  /// caller then re-decides those campaigns serially per-campaign.
  bool decide_batched(const std::vector<std::size_t>& active);
  void note_incident(std::string campaign, std::string kind,
                     std::string detail);
  void quarantine(std::size_t slot, std::string reason);
  /// HEALTH/RECOVER phase: sentinel checks, rollback/fallback/quarantine.
  void health_phase();
  /// `reason` is taken by value: the caller passes the agent's sticky
  /// health reason, which a successful rollback resets mid-call.
  void handle_unhealthy_agent(DrCellAgent* agent, std::string reason);
  bool rollback_from_ring();
  void maybe_ring_save();

  // The checkpoint layer's private-state accessor (core/checkpoint.cpp).
  friend struct CheckpointAccess;

  Options options_;
  std::vector<Slot> slots_;
  std::size_t waves_ = 0;
  std::vector<Incident> incidents_;
  std::vector<std::string> ring_;  // oldest first, <= checkpoint_ring
  std::size_t last_ring_wave_ = static_cast<std::size_t>(-1);
  std::size_t rollbacks_ = 0;
};

}  // namespace drcell::core
