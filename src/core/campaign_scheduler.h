// Multi-campaign serving engine: steps N independent sensing campaigns
// concurrently over the shared thread pool, one synchronised "wave" (one
// selection step per unfinished campaign) at a time.
//
// Wave anatomy (step_wave):
//
//   1. DECIDE — serial, ascending slot order. Campaigns whose selector
//      claims BatchedQSelector (core/batched_selector.h) are grouped by
//      shared network; each group's states are stacked into ONE
//      timestep-major [B x m] minibatch and scored with a single
//      forward_batch, then each row is argmaxed under that campaign's
//      action mask. By the batched determinism contract (rl/qnetwork.h)
//      every row's Q-values — and therefore the chosen action — are
//      bit-identical to the B = 1 forward the solo runner would do.
//      Non-batched selectors call select() serially in slot order, so a
//      selector's private draw stream advances exactly as its solo
//      campaign would.
//   2. STEP — parallel_for over the unfinished campaigns: each applies its
//      decided action to its own environment (where the real work lives —
//      matrix-completion inference, the LOO gate). Writes are
//      index-exclusive per slot, so the result is bit-identical for any
//      worker count (util/thread_pool.h determinism contract).
//   3. OBSERVE — serial, ascending: selector on_step hooks (online
//      training). Serial because campaigns may share a trainable agent.
//
// Per-campaign equivalence: a campaign stepped here produces the exact
// action log, environment trace and CampaignResult (seconds excluded —
// wall-clock is not part of any bit-compare) that run_campaign would
// produce with the same task/engine/selector/seeds, PROVIDED nothing
// couples the campaigns (engines and environments are per-campaign by
// construction; selectors must be per-campaign unless frozen;
// cross-campaign training through a shared online agent changes the
// training-data order by design). bench_multi_campaign hard-gates this
// equivalence.
//
// Checkpoint/resume (core/checkpoint.h): the scheduler records every
// campaign's ordered action log; resume rebuilds each environment with a
// fresh engine from the registered factory and replays the log — the
// environment is deterministic given the action sequence, and the replayed
// engine sees the identical inference-call sequence (including the
// order-sensitive ALS warm-start fingerprints), so a resumed scheduler
// continues bit-identically to one that never stopped.
#pragma once

#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "baselines/selector.h"
#include "core/batched_selector.h"
#include "core/campaign.h"
#include "util/thread_pool.h"

namespace drcell::core {

class CampaignScheduler {
 public:
  /// Builds the campaign's inference engine. Must be deterministic — resume
  /// calls it again to rebuild the engine a replayed environment drives —
  /// which every stateless construction (make_als_engine(params), ...) is.
  using EngineFactory = std::function<cs::InferenceEnginePtr()>;

  struct Options {
    util::ThreadPool* pool = nullptr;  ///< nullptr -> ThreadPool::global()
    /// Batch BatchedQSelector campaigns into shared forward_batch calls.
    /// Off = the unbatched reference: every selector steps via select().
    bool cross_campaign_batching = true;
  };

  CampaignScheduler();  // default Options: global pool, batching on
  explicit CampaignScheduler(Options options);

  /// Registers a campaign and builds its environment; returns the slot
  /// index. `selector` must stay exclusive to this campaign unless it is a
  /// frozen BatchedQSelector policy (stateless select), and ids must be
  /// unique — they key the checkpoint's identity check.
  std::size_t add_campaign(std::string id, CampaignConfig config,
                           std::shared_ptr<const mcs::SensingTask> task,
                           EngineFactory engine_factory,
                           std::shared_ptr<baselines::CellSelector> selector);

  std::size_t num_campaigns() const { return slots_.size(); }
  bool all_done() const;
  std::size_t waves_completed() const { return waves_; }

  /// One wave: every unfinished campaign decides and applies one action.
  /// Returns how many campaigns were stepped (0 = all done).
  std::size_t step_wave();

  /// Waves until every campaign's episode is done; returns the number of
  /// waves run. `max_waves` > 0 caps the burst (checkpoint drills).
  std::size_t run(std::size_t max_waves = 0);

  const mcs::SparseMcsEnvironment& environment(std::size_t slot) const;
  const std::vector<std::uint32_t>& action_log(std::size_t slot) const;

  /// Results in slot order, each carrying its campaign id. seconds is 0 —
  /// wall-clock is owned by the caller and excluded from bit-compares.
  std::vector<CampaignResult> results() const;

 private:
  struct Slot {
    std::string id;
    CampaignConfig config;
    std::shared_ptr<const mcs::SensingTask> task;
    EngineFactory engine_factory;
    std::shared_ptr<baselines::CellSelector> selector;
    BatchedQSelector* batched = nullptr;  ///< non-null: batchable decision
    std::unique_ptr<mcs::SparseMcsEnvironment> env;
    std::vector<std::uint32_t> action_log;
    /// Wave workspaces (DECIDE writes, STEP reads; index-exclusive).
    std::vector<double> state_buf;
    std::size_t pending_action = 0;
  };

  void decide_batched(const std::vector<std::size_t>& active);

  friend void save_checkpoint(const CampaignScheduler& scheduler,
                              std::ostream& out);
  friend void load_checkpoint(CampaignScheduler& scheduler, std::istream& in);

  Options options_;
  std::vector<Slot> slots_;
  std::size_t waves_ = 0;
};

}  // namespace drcell::core
