#include "core/agent.h"

#include <fstream>

#include "nn/serialize.h"
#include "rl/drqn_qnetwork.h"
#include "rl/mlp_qnetwork.h"

namespace drcell::core {

namespace {
rl::QNetworkPtr build_network(std::size_t num_cells,
                              const DrCellConfig& config, Rng& rng) {
  switch (config.network) {
    case NetworkKind::kDrqn:
      return std::make_unique<rl::DrqnQNetwork>(
          num_cells, config.history_cycles, config.lstm_hidden,
          config.head_hidden, rng);
    case NetworkKind::kMlp:
      return std::make_unique<rl::MlpQNetwork>(
          num_cells, config.history_cycles, config.mlp_hidden, rng);
  }
  DRCELL_CHECK_MSG(false, "unknown network kind");
  return nullptr;
}
}  // namespace

DrCellAgent::DrCellAgent(std::size_t num_cells, DrCellConfig config)
    : num_cells_(num_cells), config_(std::move(config)) {
  DRCELL_CHECK(num_cells_ > 0);
  DRCELL_CHECK(config_.history_cycles > 0);
  Rng rng(config_.seed);
  trainer_ = std::make_unique<rl::DqnTrainer>(
      build_network(num_cells_, config_, rng), config_.dqn, rng.next_u64());
}

HealthStatus DrCellAgent::check_parameter_health() {
  return health_.check_parameters(trainer_->online().parameters());
}

std::size_t DrCellAgent::greedy_action(const std::vector<double>& state,
                                       const std::vector<std::uint8_t>& mask) {
  return trainer_->greedy_action(state, mask);
}

void DrCellAgent::save_weights(std::ostream& out) {
  nn::save_parameters(out, trainer_->online().parameters());
}

void DrCellAgent::load_weights(std::istream& in) {
  nn::load_parameters(in, trainer_->online().parameters());
  trainer_->sync_target();
}

void DrCellAgent::save_weights_file(const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  DRCELL_CHECK_MSG(static_cast<bool>(out), "cannot open " + path);
  save_weights(out);
}

void DrCellAgent::load_weights_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  DRCELL_CHECK_MSG(static_cast<bool>(in), "cannot open " + path);
  load_weights(in);
}

void DrCellAgent::copy_weights_to(DrCellAgent& other) {
  nn::copy_parameters(trainer_->online().parameters(),
                      other.trainer_->online().parameters());
  other.trainer_->sync_target();
}

}  // namespace drcell::core
