// Scheduler checkpoint/resume — the stop/restart contract of the
// multi-campaign serving engine (core/campaign_scheduler.h).
//
// Format (v2, current): magic "DRCK", u32 version = 2, u64 payload size,
// u32 CRC-32 of the payload (util/checksum.h), then the payload:
//   u64 waves_completed, u64 campaign count, u64 agent count;
//   per agent: u64 env_steps, u64 train_steps (the trainer counters that
//     drive the epsilon schedule and target-sync cadence), u64 blob size,
//     then that many bytes of DRCW weight stream (nn/serialize.h — the
//     online network's parameters, exactly what DrCellAgent::save_weights
//     emits);
//   per campaign: u64 id length + bytes, i64 agent index (-1 = no agent),
//     u64 cycle index at checkpoint, u64 action count + u32 actions (the
//     ordered action log), u64 word count + u64 selector state words
//     (CellSelector::checkpoint_state_words — RNG streams), u8 campaign
//     state (0 = active, 1 = quarantined) + quarantine reason string.
//
// v1 streams (no size/CRC header, no quarantine state) are still read;
// save_checkpoint_v1 still writes them for compatibility tooling.
//
// Error taxonomy — the load path distinguishes DAMAGED BYTES from a VALID
// STREAM THAT DOESN'T FIT this scheduler:
//   CheckpointCorruptionError — bad magic, truncated stream, payload-size /
//     CRC mismatch, implausible lengths. The file is damaged; retrying with
//     another replica (e.g. an older checkpoint-ring entry) is appropriate.
//   CheckpointMismatchError — counts, campaign ids, agent wiring or the
//     replayed trajectory disagree with the populated scheduler registry.
//     The bytes are fine; the registry is wrong (or the checkpoint is from
//     a different fleet), and no amount of re-reading will fix it.
// Both derive from nn::SerializationError, so existing catch sites keep
// working. Weight-shape mismatches surface as the DRCW layer's own
// nn::SerializationError.
//
// Agents are deduplicated by object identity: N campaigns serving one
// shared DrCellAgent write its weights ONCE and all reference the same
// table entry.
//
// Resume is replay: load_checkpoint requires a scheduler already populated
// with the same campaigns (matched by id, in order, same configs/tasks/
// factories/selector types — the checkpoint stores state, not
// configuration), restores agent weights and counters and selector RNG
// words FIRST, then rebuilds each environment with a fresh engine from its
// factory and replays the logged actions through env->step. The
// environment is deterministic given the action sequence and the replayed
// engine sees the identical inference-call sequence (including the
// order-sensitive ALS warm-start fingerprints — why the log keeps order,
// not just the selection set), so the resumed scheduler's subsequent waves
// are bit-identical to an uninterrupted run's. A quarantined campaign's
// log holds only its successful steps, so replay lands it on its last
// consistent state. Caveat: replay buffers are out of scope, so campaigns
// that TRAIN during serving (OnlineAdaptive) resume with restored weights
// but an empty pool — see core/policy.h.
//
// Fault-injection sites (util/fault_injection.h): "ckpt.save" at the top
// of save_checkpoint, "ckpt.load" at the top of load_checkpoint.
#pragma once

#include <iosfwd>
#include <string>

#include "nn/serialize.h"

namespace drcell::core {

class CampaignScheduler;

/// The checkpoint bytes are damaged (bad magic, truncation, CRC mismatch).
class CheckpointCorruptionError : public nn::SerializationError {
 public:
  using nn::SerializationError::SerializationError;
};

/// The checkpoint is intact but does not match the populated scheduler
/// registry (different fleet, ids, or agent wiring).
class CheckpointMismatchError : public nn::SerializationError {
 public:
  using nn::SerializationError::SerializationError;
};

void save_checkpoint(const CampaignScheduler& scheduler, std::ostream& out);
/// Legacy v1 writer (no CRC envelope, no quarantine state) — kept so the
/// v1 read path stays exercised by tests and old tooling can be fed.
void save_checkpoint_v1(const CampaignScheduler& scheduler, std::ostream& out);
void load_checkpoint(CampaignScheduler& scheduler, std::istream& in);

/// File-path convenience wrappers.
void save_checkpoint_file(const CampaignScheduler& scheduler,
                          const std::string& path);
void load_checkpoint_file(CampaignScheduler& scheduler,
                          const std::string& path);

}  // namespace drcell::core
