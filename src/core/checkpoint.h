// Scheduler checkpoint/resume — the stop/restart contract of the
// multi-campaign serving engine (core/campaign_scheduler.h).
//
// Format: magic "DRCK", u32 version, then
//   u64 waves_completed, u64 campaign count, u64 agent count;
//   per agent: u64 env_steps, u64 train_steps (the trainer counters that
//     drive the epsilon schedule and target-sync cadence), u64 blob size,
//     then that many bytes of DRCW weight stream (nn/serialize.h — the
//     online network's parameters, exactly what DrCellAgent::save_weights
//     emits);
//   per campaign: u64 id length + bytes, i64 agent index (-1 = no agent),
//     u64 cycle index at checkpoint, u64 action count + u32 actions (the
//     ordered action log), u64 word count + u64 selector state words
//     (CellSelector::checkpoint_state_words — RNG streams).
//
// Agents are deduplicated by object identity: N campaigns serving one
// shared DrCellAgent write its weights ONCE and all reference the same
// table entry.
//
// Resume is replay: load_checkpoint requires a scheduler already populated
// with the same campaigns (matched by id, in order, same configs/tasks/
// factories/selector types — the checkpoint stores state, not
// configuration), restores agent weights and counters and selector RNG
// words FIRST, then rebuilds each environment with a fresh engine from its
// factory and replays the logged actions through env->step. The
// environment is deterministic given the action sequence and the replayed
// engine sees the identical inference-call sequence (including the
// order-sensitive ALS warm-start fingerprints — why the log keeps order,
// not just the selection set), so the resumed scheduler's subsequent waves
// are bit-identical to an uninterrupted run's. Caveat: replay buffers are
// out of scope, so campaigns that TRAIN during serving (OnlineAdaptive)
// resume with restored weights but an empty pool — see core/policy.h.
//
// Throws nn::SerializationError on bad magic, truncation, count/id/cycle
// mismatches, or weight-shape mismatches (the DRCW layer's own check).
#pragma once

#include <iosfwd>
#include <string>

namespace drcell::core {

class CampaignScheduler;

void save_checkpoint(const CampaignScheduler& scheduler, std::ostream& out);
void load_checkpoint(CampaignScheduler& scheduler, std::istream& in);

/// File-path convenience wrappers.
void save_checkpoint_file(const CampaignScheduler& scheduler,
                          const std::string& path);
void load_checkpoint_file(CampaignScheduler& scheduler,
                          const std::string& path);

}  // namespace drcell::core
