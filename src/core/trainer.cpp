#include "core/trainer.h"

#include "util/stopwatch.h"

namespace drcell::core {

mcs::SparseMcsEnvironment make_training_environment(
    std::shared_ptr<const mcs::SensingTask> training_task,
    cs::InferenceEnginePtr engine, double epsilon,
    const DrCellConfig& config) {
  DRCELL_CHECK(training_task != nullptr);
  mcs::EnvOptions env_options = config.env;
  env_options.history_cycles = config.history_cycles;
  auto gate = std::make_shared<mcs::GroundTruthGate>(epsilon);
  return mcs::SparseMcsEnvironment(std::move(training_task),
                                   std::move(engine), std::move(gate),
                                   env_options);
}

TrainingResult train_agent(DrCellAgent& agent, mcs::SparseMcsEnvironment& env,
                           std::size_t episodes) {
  DRCELL_CHECK(episodes > 0);
  DRCELL_CHECK_MSG(env.num_cells() == agent.num_cells(),
                   "agent/environment cell count mismatch");
  DRCELL_CHECK_MSG(
      env.options().history_cycles == agent.config().history_cycles,
      "agent/environment state history mismatch");

  auto& trainer = agent.trainer();
  const std::size_t grad_steps = agent.config().train_steps_per_env_step;

  TrainingResult result;
  Stopwatch watch;
  for (std::size_t ep = 0; ep < episodes; ++ep) {
    env.reset();
    double loss_sum = 0.0;
    std::size_t loss_count = 0;
    while (!env.episode_done()) {
      const std::vector<double> state = env.state();
      const auto& mask = env.action_mask();
      const std::size_t action = trainer.select_action(state, mask);
      const mcs::StepResult step = env.step(action);

      rl::Experience e;
      e.state = state;
      e.action = action;
      e.reward = step.reward;
      e.next_state = env.state();
      e.next_mask = env.action_mask();
      e.terminal = step.episode_done;
      if (step.episode_done) {
        // The mask of a terminal state is all-zero; give the bootstrap a
        // well-formed (ignored) mask anyway.
        e.next_mask.assign(env.num_cells(), 1);
      }
      trainer.observe(std::move(e));

      for (std::size_t g = 0; g < grad_steps; ++g) {
        const double loss = trainer.train_step();
        if (loss > 0.0) {
          loss_sum += loss;
          ++loss_count;
        }
      }
    }
    result.episodes.push_back(env.stats());
    result.mean_losses.push_back(
        loss_count ? loss_sum / static_cast<double>(loss_count) : 0.0);
  }
  result.seconds = watch.elapsed_seconds();
  return result;
}

}  // namespace drcell::core
