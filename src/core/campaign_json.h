// Machine-readable campaign reports: serialises CampaignResults to the
// JSON schema the bench reports established (flat objects, format_double
// numbers — bench/README.md), so campaign examples can emit artifacts CI
// and notebooks consume next to the BENCH_*.json files.
//
//   {
//     "campaign_suite": "<name>",
//     "results": [
//       {"id": "...", "selector": "...", "cycles": N,
//        "total_selected": N, "avg_cells_per_cycle": X,
//        "satisfaction_ratio": X, "mean_cycle_error": X,
//        "total_cost": X, "seconds": X},
//       ...
//     ]
//   }
//
// Examples cannot include bench/ headers (the examples link only the
// library), so the `--json [path]` flag convention they share lives here
// too.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/campaign.h"

namespace drcell::core {

/// Writes the suite report; ordering follows the input vector.
void write_campaign_json(std::ostream& out, const std::string& suite,
                         const std::vector<CampaignResult>& results);

/// File convenience; returns false (after printing why) when the file
/// cannot be written, so callers can exit non-zero.
bool write_campaign_json_file(const std::string& path,
                              const std::string& suite,
                              const std::vector<CampaignResult>& results);

/// `--json [path]` parsing shared by the campaign examples: returns
/// `default_path` when the flag is given bare, "" when absent (same
/// convention as the bench flag).
std::string campaign_json_path(int argc, char** argv,
                               const std::string& default_path);

}  // namespace drcell::core
