#include "core/campaign_json.h"

#include <cstdio>
#include <fstream>
#include <iostream>
#include <ostream>

#include "util/table.h"

namespace drcell::core {

namespace {

/// Minimal JSON string escaping for ids/selector names (quotes, backslash,
/// control characters) — names here are ASCII identifiers, but a stray
/// quote must not corrupt the document.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void write_campaign_json(std::ostream& out, const std::string& suite,
                         const std::vector<CampaignResult>& results) {
  out << "{\n  \"campaign_suite\": \"" << json_escape(suite)
      << "\",\n  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const CampaignResult& r = results[i];
    out << "    {\"id\": \"" << json_escape(r.id) << "\", \"selector\": \""
        << json_escape(r.selector) << "\", \"cycles\": " << r.cycles
        << ", \"total_selected\": " << r.total_selected
        << ", \"avg_cells_per_cycle\": "
        << format_double(r.avg_cells_per_cycle, 4)
        << ", \"satisfaction_ratio\": "
        << format_double(r.satisfaction_ratio, 4)
        << ", \"mean_cycle_error\": " << format_double(r.mean_cycle_error, 6)
        << ", \"total_cost\": " << format_double(r.total_cost, 2)
        << ", \"seconds\": " << format_double(r.seconds, 4) << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

bool write_campaign_json_file(const std::string& path,
                              const std::string& suite,
                              const std::vector<CampaignResult>& results) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << '\n';
    return false;
  }
  write_campaign_json(out, suite, results);
  out.flush();
  if (!out.good()) {
    std::cerr << "failed while writing " << path << '\n';
    return false;
  }
  std::cout << "wrote " << path << '\n';
  return true;
}

std::string campaign_json_path(int argc, char** argv,
                               const std::string& default_path) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) != "--json") continue;
    if (i + 1 < argc && argv[i + 1][0] != '-') return argv[i + 1];
    return default_path;
  }
  return "";
}

}  // namespace drcell::core
