#include "core/transfer.h"

namespace drcell::core {

namespace {
mcs::SparseMcsEnvironment fine_tune_environment(
    const mcs::SensingTask& target_task, cs::InferenceEnginePtr engine,
    const DrCellConfig& config, const TransferOptions& options) {
  DRCELL_CHECK_MSG(options.target_training_cycles >= 2,
                   "fine-tuning needs at least two cycles");
  DRCELL_CHECK_MSG(options.target_training_cycles <= target_task.num_cycles(),
                   "more fine-tune cycles requested than the task has");
  auto slice = std::make_shared<const mcs::SensingTask>(
      target_task.slice_cycles(0, options.target_training_cycles));
  return make_training_environment(std::move(slice), std::move(engine),
                                   options.epsilon, config);
}
}  // namespace

DrCellAgent transfer_agent(DrCellAgent& source,
                           const mcs::SensingTask& target_task,
                           cs::InferenceEnginePtr engine,
                           const TransferOptions& options) {
  DRCELL_CHECK_MSG(source.num_cells() == target_task.num_cells(),
                   "transfer requires tasks over the same cells");
  // Fresh agent, same architecture, fine-tuning-friendly exploration: the
  // source policy is already decent, so start δ low rather than at 1.
  DrCellConfig config = source.config();
  config.dqn.epsilon = rl::EpsilonSchedule(0.3, 0.05, 500);
  config.seed = source.config().seed + 1;
  DrCellAgent target(target_task.num_cells(), config);
  source.copy_weights_to(target);

  auto env = fine_tune_environment(target_task, std::move(engine), config,
                                   options);
  train_agent(target, env, options.fine_tune_episodes);
  return target;
}

DrCellAgent short_train_agent(const DrCellConfig& config,
                              const mcs::SensingTask& target_task,
                              cs::InferenceEnginePtr engine,
                              const TransferOptions& options) {
  DrCellAgent agent(target_task.num_cells(), config);
  auto env = fine_tune_environment(target_task, std::move(engine), config,
                                   options);
  train_agent(agent, env, options.fine_tune_episodes);
  return agent;
}

}  // namespace drcell::core
