// core::HealthMonitor — cheap numeric sentinels for a serving/training
// agent: non-finite losses, exploding loss windows, non-finite Q-values and
// non-finite parameters (via Matrix::has_non_finite). The monitor is a
// detector only — it never mutates the agent. Recovery policy (checkpoint
// rollback, baseline fallback, quarantine) lives in the campaign scheduler
// (core/campaign_scheduler.h), which consults the monitor after every wave.
//
// Cost model: record_loss is O(1); check_q is one O(B·m) scan of a Q batch
// the caller already paid a forward for; check_parameters is O(#params)
// and is the only check worth rate-limiting (HealthOptions::
// param_check_every_waves in the scheduler).
//
// Status is STICKY: once a sentinel trips, status() stays unhealthy (and
// reason() says why) until reset() — e.g. after a rollback restored known-
// good weights. DrCellAgent owns one monitor (agent.health());
// OnlineAdaptivePolicy::on_step feeds every train-step loss into it, which
// is what makes a NaN-poisoned agent detectable within ONE train step: the
// Huber loss over any batch touching the poisoned forward is itself NaN.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "linalg/matrix.h"

namespace drcell::nn {
struct Parameter;
}

namespace drcell::core {

struct HealthOptions {
  /// Sliding window of recent losses compared against the baseline.
  std::size_t loss_window = 16;
  /// First `loss_baseline` finite losses form the reference level.
  std::size_t loss_baseline = 64;
  /// Trip when the window mean exceeds `loss_explosion_factor` x the
  /// baseline mean (plus a small absolute floor so a near-zero baseline
  /// does not flag ordinary noise). 0 disables explosion detection.
  double loss_explosion_factor = 1e3;
  /// Absolute |Q| bound for check_q; non-finite always trips. 0 disables
  /// the magnitude bound.
  double max_abs_q = 1e12;
};

enum class HealthStatus {
  kHealthy,
  kNonFiniteLoss,
  kLossExplosion,
  kNonFiniteQ,
  kQOutOfRange,
  kNonFiniteParams,
};

class HealthMonitor {
 public:
  explicit HealthMonitor(HealthOptions options = {});

  /// Feeds one train-step loss (0.0 pre-warmup losses are recorded but can
  /// never trip anything). Returns the (possibly newly tripped) status.
  HealthStatus record_loss(double loss);

  /// Scans a Q batch (any [B x m] forward output) for non-finite or
  /// absurd-magnitude values.
  HealthStatus check_q(const Matrix& q);

  /// Scans parameter values for non-finite entries.
  HealthStatus check_parameters(const std::vector<nn::Parameter*>& params);

  HealthStatus status() const { return status_; }
  bool healthy() const { return status_ == HealthStatus::kHealthy; }
  /// Human-readable description of the tripped sentinel (empty = healthy).
  const std::string& reason() const { return reason_; }

  /// Clears the sticky status AND the loss statistics — call after recovery
  /// restored known-good state (the old baseline no longer describes it).
  void reset();

  static const char* status_name(HealthStatus status);

 private:
  void trip(HealthStatus status, std::string reason);

  HealthOptions options_;
  HealthStatus status_ = HealthStatus::kHealthy;
  std::string reason_;

  // Loss statistics: baseline mean over the first loss_baseline finite
  // losses, then a ring of the last loss_window losses.
  double baseline_sum_ = 0.0;
  std::size_t baseline_count_ = 0;
  std::vector<double> window_;  // ring buffer, size <= loss_window
  std::size_t window_next_ = 0;
  double window_sum_ = 0.0;
};

}  // namespace drcell::core
