// All DR-Cell hyper-parameters in one value type, with the defaults used
// throughout the evaluation (see DESIGN.md §5 for the rationale).
#pragma once

#include <cstdint>
#include <vector>

#include "mcs/environment.h"
#include "rl/dqn_trainer.h"

namespace drcell::core {

enum class NetworkKind {
  kDrqn,  ///< LSTM + dense head — the paper's network (Sec. 4.3)
  kMlp,   ///< flattened window through dense layers — the ablation baseline
};

struct DrCellConfig {
  NetworkKind network = NetworkKind::kDrqn;

  /// k — recent cycles in the RL state (shared with EnvOptions).
  std::size_t history_cycles = 2;

  // DRQN shape.
  std::size_t lstm_hidden = 64;
  std::size_t head_hidden = 0;  ///< 0 = direct LSTM->output connection

  // MLP shape (NetworkKind::kMlp only).
  std::vector<std::size_t> mlp_hidden = {128, 64};

  /// Q-learning options (γ, learning rate, replay, fixed-target sync, δ).
  rl::DqnOptions dqn;

  /// Passes over the training cycles during the offline training stage.
  std::size_t training_episodes = 30;
  /// Gradient steps per environment step.
  std::size_t train_steps_per_env_step = 1;

  std::uint64_t seed = 7;

  /// Environment knobs (inference window, R, c, min observations). The
  /// history_cycles above is copied into it by the helpers that build
  /// environments.
  mcs::EnvOptions env;
};

}  // namespace drcell::core
