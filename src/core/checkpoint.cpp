#include "core/checkpoint.h"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "core/campaign_scheduler.h"
#include "core/policy.h"
#include "util/checksum.h"
#include "util/fault_injection.h"

namespace drcell::core {

namespace {

constexpr char kMagic[4] = {'D', 'R', 'C', 'K'};
constexpr std::uint32_t kVersionLegacy = 1;
constexpr std::uint32_t kVersion = 2;

using nn::SerializationError;

template <typename T>
void write_pod(std::ostream& out, T v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!in) throw CheckpointCorruptionError("truncated checkpoint stream");
  return v;
}

void write_string(std::ostream& out, const std::string& s) {
  write_pod<std::uint64_t>(out, s.size());
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& in, std::uint64_t max_len,
                        const char* what) {
  const auto len = read_pod<std::uint64_t>(in);
  if (len > max_len)
    throw CheckpointCorruptionError(std::string("implausible ") + what +
                                    " length in checkpoint");
  std::string s(len, '\0');
  in.read(s.data(), static_cast<std::streamsize>(len));
  if (!in) throw CheckpointCorruptionError("truncated checkpoint stream");
  return s;
}

/// Agent table in discovery order (ascending slot, first occurrence) plus
/// each slot's index into it (-1 = weightless selector). Shared between
/// save and load so the table order is reproducible from the registry
/// alone. Identity comes from core::trainable_agent_of — the one
/// definition of "selector that carries weights".
std::vector<DrCellAgent*> collect_agents(
    const std::vector<std::shared_ptr<baselines::CellSelector>>& selectors,
    std::vector<std::int64_t>& refs) {
  std::vector<DrCellAgent*> agents;
  refs.assign(selectors.size(), -1);
  for (std::size_t i = 0; i < selectors.size(); ++i) {
    DrCellAgent* agent = trainable_agent_of(selectors[i].get());
    if (agent == nullptr) continue;
    std::size_t idx = 0;
    while (idx < agents.size() && agents[idx] != agent) ++idx;
    if (idx == agents.size()) agents.push_back(agent);
    refs[i] = static_cast<std::int64_t>(idx);
  }
  return agents;
}

}  // namespace

/// Private-state accessor: the one friend of CampaignScheduler the
/// checkpoint layer goes through. Bodies are version-parameterised so the
/// v1 and v2 writers/readers share one definition of the record layout.
struct CheckpointAccess {
  static void write_body(const CampaignScheduler& scheduler, std::ostream& out,
                         std::uint32_t version) {
    std::vector<std::shared_ptr<baselines::CellSelector>> selectors;
    selectors.reserve(scheduler.slots_.size());
    for (const auto& slot : scheduler.slots_)
      selectors.push_back(slot.selector);
    std::vector<std::int64_t> refs;
    const std::vector<DrCellAgent*> agents = collect_agents(selectors, refs);

    write_pod<std::uint64_t>(out, scheduler.waves_);
    write_pod<std::uint64_t>(out, scheduler.slots_.size());
    write_pod<std::uint64_t>(out, agents.size());

    for (DrCellAgent* agent : agents) {
      write_pod<std::uint64_t>(out, agent->trainer().env_steps());
      write_pod<std::uint64_t>(out, agent->trainer().train_steps());
      std::ostringstream blob(std::ios::binary);
      agent->save_weights(blob);
      write_string(out, blob.str());
    }

    for (std::size_t i = 0; i < scheduler.slots_.size(); ++i) {
      const auto& slot = scheduler.slots_[i];
      write_string(out, slot.id);
      write_pod<std::int64_t>(out, refs[i]);
      write_pod<std::uint64_t>(out, slot.env->current_cycle());
      write_pod<std::uint64_t>(out, slot.action_log.size());
      out.write(reinterpret_cast<const char*>(slot.action_log.data()),
                static_cast<std::streamsize>(slot.action_log.size() *
                                             sizeof(std::uint32_t)));
      const std::vector<std::uint64_t> words =
          slot.selector->checkpoint_state_words();
      write_pod<std::uint64_t>(out, words.size());
      out.write(reinterpret_cast<const char*>(words.data()),
                static_cast<std::streamsize>(words.size() *
                                             sizeof(std::uint64_t)));
      if (version >= 2) {
        write_pod<std::uint8_t>(
            out, slot.state == CampaignState::kQuarantined ? 1 : 0);
        write_string(out, slot.quarantine_reason);
      }
    }
  }

  static void read_body(CampaignScheduler& scheduler, std::istream& in,
                        std::uint32_t version) {
    const auto waves = read_pod<std::uint64_t>(in);
    const auto campaign_count = read_pod<std::uint64_t>(in);
    if (campaign_count != scheduler.slots_.size())
      throw CheckpointMismatchError(
          "checkpoint holds " + std::to_string(campaign_count) +
          " campaigns, scheduler has " +
          std::to_string(scheduler.slots_.size()));

    // The agent table must line up with the one this registry would
    // produce — same discovery order, same sharing structure.
    std::vector<std::shared_ptr<baselines::CellSelector>> selectors;
    selectors.reserve(scheduler.slots_.size());
    for (const auto& slot : scheduler.slots_)
      selectors.push_back(slot.selector);
    std::vector<std::int64_t> expected_refs;
    const std::vector<DrCellAgent*> agents =
        collect_agents(selectors, expected_refs);

    const auto agent_count = read_pod<std::uint64_t>(in);
    if (agent_count != agents.size())
      throw CheckpointMismatchError(
          "checkpoint holds " + std::to_string(agent_count) +
          " agents, scheduler registry implies " +
          std::to_string(agents.size()));
    for (DrCellAgent* agent : agents) {
      const auto env_steps = read_pod<std::uint64_t>(in);
      const auto train_steps = read_pod<std::uint64_t>(in);
      const std::string blob =
          read_string(in, std::uint64_t{1} << 33, "weight blob");
      std::istringstream blob_in(blob, std::ios::binary);
      agent->load_weights(blob_in);  // DRCW layer checks shapes itself
      agent->trainer().restore_counters(env_steps, train_steps);
    }

    // Per-campaign state. Read everything (and restore selector streams)
    // before the replay fan-out below so stream errors surface first.
    std::vector<std::vector<std::uint32_t>> logs(scheduler.slots_.size());
    std::vector<std::uint64_t> cycles(scheduler.slots_.size());
    std::vector<std::uint8_t> states(scheduler.slots_.size(), 0);
    std::vector<std::string> reasons(scheduler.slots_.size());
    for (std::size_t i = 0; i < scheduler.slots_.size(); ++i) {
      auto& slot = scheduler.slots_[i];
      const std::string id = read_string(in, 4096, "campaign id");
      if (id != slot.id)
        throw CheckpointMismatchError(
            "checkpoint campaign " + std::to_string(i) + " is '" + id +
            "', scheduler has '" + slot.id + "'");
      const auto ref = read_pod<std::int64_t>(in);
      if (ref != expected_refs[i])
        throw CheckpointMismatchError("checkpoint agent wiring of campaign '" +
                                      id +
                                      "' does not match the scheduler "
                                      "registry");
      cycles[i] = read_pod<std::uint64_t>(in);
      const auto action_count = read_pod<std::uint64_t>(in);
      if (action_count > std::uint64_t{1} << 32)
        throw CheckpointCorruptionError(
            "implausible action count in checkpoint");
      logs[i].resize(action_count);
      in.read(reinterpret_cast<char*>(logs[i].data()),
              static_cast<std::streamsize>(action_count *
                                           sizeof(std::uint32_t)));
      if (!in) throw CheckpointCorruptionError("truncated checkpoint stream");
      const auto word_count = read_pod<std::uint64_t>(in);
      if (word_count > 1'000'000)
        throw CheckpointCorruptionError(
            "implausible selector state in checkpoint");
      std::vector<std::uint64_t> words(word_count);
      in.read(reinterpret_cast<char*>(words.data()),
              static_cast<std::streamsize>(word_count *
                                           sizeof(std::uint64_t)));
      if (!in) throw CheckpointCorruptionError("truncated checkpoint stream");
      slot.selector->restore_state_words(words);
      if (version >= 2) {
        states[i] = read_pod<std::uint8_t>(in);
        if (states[i] > 1)
          throw CheckpointCorruptionError(
              "invalid campaign state byte in checkpoint");
        reasons[i] = read_string(in, 4096, "quarantine reason");
      }
    }

    // Replay: fresh engine, logged actions, in order (see header). The
    // fan-out is index-exclusive per slot — bit-identical for any worker
    // count; errors are collected and rethrown on the caller's thread.
    util::ThreadPool& pool = scheduler.options_.pool != nullptr
                                 ? *scheduler.options_.pool
                                 : util::ThreadPool::global();
    std::vector<std::string> errors(scheduler.slots_.size());
    pool.parallel_for(scheduler.slots_.size(), [&](std::size_t i) {
      auto& slot = scheduler.slots_[i];
      slot.env = make_campaign_environment(slot.task, slot.engine_factory(),
                                           slot.config);
      for (const std::uint32_t a : logs[i]) {
        if (slot.env->episode_done() || a >= slot.env->num_cells() ||
            !slot.env->can_select(a)) {
          errors[i] =
              "invalid action in checkpoint replay of '" + slot.id + "'";
          return;
        }
        slot.env->step(a);
      }
      if (slot.env->current_cycle() != cycles[i]) {
        errors[i] = "replay of campaign '" + slot.id + "' reached cycle " +
                    std::to_string(slot.env->current_cycle()) +
                    ", checkpoint recorded " + std::to_string(cycles[i]);
        return;
      }
      slot.action_log = std::move(logs[i]);
    });
    for (const std::string& e : errors)
      if (!e.empty()) throw CheckpointMismatchError(e);

    for (std::size_t i = 0; i < scheduler.slots_.size(); ++i) {
      auto& slot = scheduler.slots_[i];
      slot.state = states[i] == 1 ? CampaignState::kQuarantined
                                  : CampaignState::kActive;
      slot.quarantine_reason = reasons[i];
      slot.consecutive_faults = 0;
    }
    scheduler.waves_ = waves;
  }
};

void save_checkpoint(const CampaignScheduler& scheduler, std::ostream& out) {
  DRCELL_FAULT_SITE("ckpt.save", "");
  // Serialise the body first so the envelope can carry its exact size and
  // CRC; a reader can then tell truncation/bit-rot from registry mismatch.
  std::ostringstream body(std::ios::binary);
  CheckpointAccess::write_body(scheduler, body, kVersion);
  const std::string payload = std::move(body).str();

  out.write(kMagic, sizeof(kMagic));
  write_pod<std::uint32_t>(out, kVersion);
  write_pod<std::uint64_t>(out, payload.size());
  write_pod<std::uint32_t>(out, util::crc32(payload.data(), payload.size()));
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  if (!out) throw SerializationError("failed to write checkpoint stream");
}

void save_checkpoint_v1(const CampaignScheduler& scheduler,
                        std::ostream& out) {
  out.write(kMagic, sizeof(kMagic));
  write_pod<std::uint32_t>(out, kVersionLegacy);
  CheckpointAccess::write_body(scheduler, out, kVersionLegacy);
  if (!out) throw SerializationError("failed to write checkpoint stream");
}

void load_checkpoint(CampaignScheduler& scheduler, std::istream& in) {
  DRCELL_FAULT_SITE("ckpt.load", "");
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
    throw CheckpointCorruptionError(
        "bad magic: not a DR-Cell checkpoint stream");
  const auto version = read_pod<std::uint32_t>(in);
  if (version == kVersionLegacy) {
    // Legacy stream: no envelope; the body is parsed straight off the
    // stream, truncation surfacing as CheckpointCorruptionError.
    CheckpointAccess::read_body(scheduler, in, version);
    return;
  }
  if (version != kVersion)
    throw SerializationError("unsupported checkpoint version " +
                             std::to_string(version));

  const auto payload_size = read_pod<std::uint64_t>(in);
  if (payload_size > std::uint64_t{1} << 33)
    throw CheckpointCorruptionError("implausible payload size in checkpoint");
  const auto stored_crc = read_pod<std::uint32_t>(in);
  std::string payload(static_cast<std::size_t>(payload_size), '\0');
  in.read(payload.data(), static_cast<std::streamsize>(payload.size()));
  if (!in || static_cast<std::uint64_t>(in.gcount()) != payload_size)
    throw CheckpointCorruptionError(
        "truncated checkpoint stream (payload shorter than header claims)");
  if (util::crc32(payload.data(), payload.size()) != stored_crc)
    throw CheckpointCorruptionError(
        "checkpoint CRC mismatch (bit-rot or torn write)");
  std::istringstream body(payload, std::ios::binary);
  CheckpointAccess::read_body(scheduler, body, version);
}

void save_checkpoint_file(const CampaignScheduler& scheduler,
                          const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out)
    throw SerializationError("cannot open " + path + " for writing");
  save_checkpoint(scheduler, out);
}

void load_checkpoint_file(CampaignScheduler& scheduler,
                          const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw SerializationError("cannot open " + path + " for reading");
  load_checkpoint(scheduler, in);
}

}  // namespace drcell::core
