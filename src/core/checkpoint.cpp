#include "core/checkpoint.h"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "core/campaign_scheduler.h"
#include "core/policy.h"
#include "nn/serialize.h"

namespace drcell::core {

namespace {

constexpr char kMagic[4] = {'D', 'R', 'C', 'K'};
constexpr std::uint32_t kVersion = 1;

using nn::SerializationError;

template <typename T>
void write_pod(std::ostream& out, T v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!in) throw SerializationError("truncated checkpoint stream");
  return v;
}

void write_string(std::ostream& out, const std::string& s) {
  write_pod<std::uint64_t>(out, s.size());
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& in, std::uint64_t max_len,
                        const char* what) {
  const auto len = read_pod<std::uint64_t>(in);
  if (len > max_len)
    throw SerializationError(std::string("implausible ") + what +
                             " length in checkpoint");
  std::string s(len, '\0');
  in.read(s.data(), static_cast<std::streamsize>(len));
  if (!in) throw SerializationError("truncated checkpoint stream");
  return s;
}

/// The trainable agent behind a selector, if any — the dedup identity of
/// the checkpoint's agent table. Must enumerate every selector type that
/// carries weights.
DrCellAgent* agent_of(baselines::CellSelector* selector) {
  if (auto* frozen = dynamic_cast<DrCellPolicy*>(selector))
    return &frozen->agent();
  if (auto* online = dynamic_cast<OnlineAdaptivePolicy*>(selector))
    return &online->online_agent();
  return nullptr;
}

/// Agent table in discovery order (ascending slot, first occurrence) plus
/// each slot's index into it (-1 = weightless selector). Shared between
/// save and load so the table order is reproducible from the registry
/// alone.
std::vector<DrCellAgent*> collect_agents(
    const std::vector<std::shared_ptr<baselines::CellSelector>>& selectors,
    std::vector<std::int64_t>& refs) {
  std::vector<DrCellAgent*> agents;
  refs.assign(selectors.size(), -1);
  for (std::size_t i = 0; i < selectors.size(); ++i) {
    DrCellAgent* agent = agent_of(selectors[i].get());
    if (agent == nullptr) continue;
    std::size_t idx = 0;
    while (idx < agents.size() && agents[idx] != agent) ++idx;
    if (idx == agents.size()) agents.push_back(agent);
    refs[i] = static_cast<std::int64_t>(idx);
  }
  return agents;
}

}  // namespace

void save_checkpoint(const CampaignScheduler& scheduler, std::ostream& out) {
  std::vector<std::shared_ptr<baselines::CellSelector>> selectors;
  selectors.reserve(scheduler.slots_.size());
  for (const auto& slot : scheduler.slots_) selectors.push_back(slot.selector);
  std::vector<std::int64_t> refs;
  const std::vector<DrCellAgent*> agents = collect_agents(selectors, refs);

  out.write(kMagic, sizeof(kMagic));
  write_pod<std::uint32_t>(out, kVersion);
  write_pod<std::uint64_t>(out, scheduler.waves_);
  write_pod<std::uint64_t>(out, scheduler.slots_.size());
  write_pod<std::uint64_t>(out, agents.size());

  for (DrCellAgent* agent : agents) {
    write_pod<std::uint64_t>(out, agent->trainer().env_steps());
    write_pod<std::uint64_t>(out, agent->trainer().train_steps());
    std::ostringstream blob(std::ios::binary);
    agent->save_weights(blob);
    write_string(out, blob.str());
  }

  for (std::size_t i = 0; i < scheduler.slots_.size(); ++i) {
    const auto& slot = scheduler.slots_[i];
    write_string(out, slot.id);
    write_pod<std::int64_t>(out, refs[i]);
    write_pod<std::uint64_t>(out, slot.env->current_cycle());
    write_pod<std::uint64_t>(out, slot.action_log.size());
    out.write(reinterpret_cast<const char*>(slot.action_log.data()),
              static_cast<std::streamsize>(slot.action_log.size() *
                                           sizeof(std::uint32_t)));
    const std::vector<std::uint64_t> words =
        slot.selector->checkpoint_state_words();
    write_pod<std::uint64_t>(out, words.size());
    out.write(reinterpret_cast<const char*>(words.data()),
              static_cast<std::streamsize>(words.size() *
                                           sizeof(std::uint64_t)));
  }
  if (!out) throw SerializationError("failed to write checkpoint stream");
}

void load_checkpoint(CampaignScheduler& scheduler, std::istream& in) {
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
    throw SerializationError("bad magic: not a DR-Cell checkpoint stream");
  const auto version = read_pod<std::uint32_t>(in);
  if (version != kVersion)
    throw SerializationError("unsupported checkpoint version " +
                             std::to_string(version));
  const auto waves = read_pod<std::uint64_t>(in);
  const auto campaign_count = read_pod<std::uint64_t>(in);
  if (campaign_count != scheduler.slots_.size())
    throw SerializationError(
        "checkpoint holds " + std::to_string(campaign_count) +
        " campaigns, scheduler has " +
        std::to_string(scheduler.slots_.size()));

  // The agent table must line up with the one this registry would produce —
  // same discovery order, same sharing structure.
  std::vector<std::shared_ptr<baselines::CellSelector>> selectors;
  selectors.reserve(scheduler.slots_.size());
  for (const auto& slot : scheduler.slots_) selectors.push_back(slot.selector);
  std::vector<std::int64_t> expected_refs;
  const std::vector<DrCellAgent*> agents =
      collect_agents(selectors, expected_refs);

  const auto agent_count = read_pod<std::uint64_t>(in);
  if (agent_count != agents.size())
    throw SerializationError(
        "checkpoint holds " + std::to_string(agent_count) +
        " agents, scheduler registry implies " +
        std::to_string(agents.size()));
  for (DrCellAgent* agent : agents) {
    const auto env_steps = read_pod<std::uint64_t>(in);
    const auto train_steps = read_pod<std::uint64_t>(in);
    const std::string blob =
        read_string(in, std::uint64_t{1} << 33, "weight blob");
    std::istringstream blob_in(blob, std::ios::binary);
    agent->load_weights(blob_in);  // DRCW layer checks shapes itself
    agent->trainer().restore_counters(env_steps, train_steps);
  }

  // Per-campaign state. Read everything (and restore selector streams)
  // before the replay fan-out below so stream errors surface first.
  std::vector<std::vector<std::uint32_t>> logs(scheduler.slots_.size());
  std::vector<std::uint64_t> cycles(scheduler.slots_.size());
  for (std::size_t i = 0; i < scheduler.slots_.size(); ++i) {
    auto& slot = scheduler.slots_[i];
    const std::string id = read_string(in, 4096, "campaign id");
    if (id != slot.id)
      throw SerializationError("checkpoint campaign " + std::to_string(i) +
                               " is '" + id + "', scheduler has '" + slot.id +
                               "'");
    const auto ref = read_pod<std::int64_t>(in);
    if (ref != expected_refs[i])
      throw SerializationError("checkpoint agent wiring of campaign '" + id +
                               "' does not match the scheduler registry");
    cycles[i] = read_pod<std::uint64_t>(in);
    const auto action_count = read_pod<std::uint64_t>(in);
    if (action_count > std::uint64_t{1} << 32)
      throw SerializationError("implausible action count in checkpoint");
    logs[i].resize(action_count);
    in.read(reinterpret_cast<char*>(logs[i].data()),
            static_cast<std::streamsize>(action_count *
                                         sizeof(std::uint32_t)));
    if (!in) throw SerializationError("truncated checkpoint stream");
    const auto word_count = read_pod<std::uint64_t>(in);
    if (word_count > 1'000'000)
      throw SerializationError("implausible selector state in checkpoint");
    std::vector<std::uint64_t> words(word_count);
    in.read(reinterpret_cast<char*>(words.data()),
            static_cast<std::streamsize>(word_count * sizeof(std::uint64_t)));
    if (!in) throw SerializationError("truncated checkpoint stream");
    slot.selector->restore_state_words(words);
  }

  // Replay: fresh engine, logged actions, in order (see header). The
  // fan-out is index-exclusive per slot — bit-identical for any worker
  // count; errors are collected and rethrown on the caller's thread.
  util::ThreadPool& pool = scheduler.options_.pool != nullptr
                               ? *scheduler.options_.pool
                               : util::ThreadPool::global();
  std::vector<std::string> errors(scheduler.slots_.size());
  pool.parallel_for(scheduler.slots_.size(), [&](std::size_t i) {
    auto& slot = scheduler.slots_[i];
    slot.env = make_campaign_environment(slot.task, slot.engine_factory(),
                                         slot.config);
    for (const std::uint32_t a : logs[i]) {
      if (slot.env->episode_done() || a >= slot.env->num_cells() ||
          !slot.env->can_select(a)) {
        errors[i] = "invalid action in checkpoint replay of '" + slot.id + "'";
        return;
      }
      slot.env->step(a);
    }
    if (slot.env->current_cycle() != cycles[i]) {
      errors[i] = "replay of campaign '" + slot.id + "' reached cycle " +
                  std::to_string(slot.env->current_cycle()) +
                  ", checkpoint recorded " + std::to_string(cycles[i]);
      return;
    }
    slot.action_log = std::move(logs[i]);
  });
  for (const std::string& e : errors)
    if (!e.empty()) throw SerializationError(e);

  scheduler.waves_ = waves;
}

void save_checkpoint_file(const CampaignScheduler& scheduler,
                          const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out)
    throw SerializationError("cannot open " + path + " for writing");
  save_checkpoint(scheduler, out);
}

void load_checkpoint_file(CampaignScheduler& scheduler,
                          const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw SerializationError("cannot open " + path + " for reading");
  load_checkpoint(scheduler, in);
}

}  // namespace drcell::core
