#include "core/policy.h"

namespace drcell::core {

DrCellPolicy::DrCellPolicy(DrCellAgent& agent) : agent_(agent) {}

std::size_t DrCellPolicy::select(const mcs::SparseMcsEnvironment& env) {
  return agent_.greedy_action(env.state(), env.action_mask());
}

OnlineAdaptivePolicy::OnlineAdaptivePolicy(DrCellAgent& agent, double epsilon,
                                           std::uint64_t seed)
    : agent_(agent), epsilon_(epsilon), rng_(seed) {
  DRCELL_CHECK(epsilon_ >= 0.0 && epsilon_ <= 1.0);
}

std::size_t OnlineAdaptivePolicy::select(
    const mcs::SparseMcsEnvironment& env) {
  const auto& mask = env.action_mask();
  const std::vector<double> state = env.state();
  std::size_t action = agent_.greedy_action(state, mask);
  if (rng_.bernoulli(epsilon_)) {
    std::vector<std::size_t> others;
    for (std::size_t a = 0; a < mask.size(); ++a)
      if (mask[a] && a != action) others.push_back(a);
    if (!others.empty()) action = others[rng_.uniform_index(others.size())];
  }
  pending_state_ = state;
  pending_action_ = action;
  has_pending_ = true;
  return action;
}

void OnlineAdaptivePolicy::on_step(const mcs::SparseMcsEnvironment& env,
                                   std::size_t action,
                                   const mcs::StepResult& result) {
  if (!has_pending_ || action != pending_action_) return;
  has_pending_ = false;

  rl::Experience e;
  e.state = std::move(pending_state_);
  e.action = action;
  e.reward = result.reward;
  e.next_state = env.state();
  e.next_mask = env.action_mask();
  e.terminal = result.episode_done;
  if (result.episode_done) e.next_mask.assign(env.num_cells(), 1);
  agent_.trainer().observe(std::move(e));
  const double loss = agent_.trainer().train_step();
  // One train step on NaN-poisoned weights produces a NaN Huber loss, so
  // the sentinel trips within that very step (core/health_monitor.h). The
  // scheduler reads agent_.health() after the wave and recovers.
  agent_.health().record_loss(loss);
}

DrCellAgent* trainable_agent_of(baselines::CellSelector* selector) {
  if (auto* frozen = dynamic_cast<DrCellPolicy*>(selector))
    return &frozen->agent();
  if (auto* online = dynamic_cast<OnlineAdaptivePolicy*>(selector))
    return &online->online_agent();
  return nullptr;
}

}  // namespace drcell::core
