// DrCellAgent — the trainable DR-Cell decision maker: a Q-network (DRQN by
// default) wrapped in the DQN trainer, plus weight (de)serialisation for
// checkpointing and transfer learning.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "core/config.h"
#include "core/health_monitor.h"
#include "rl/dqn_trainer.h"

namespace drcell::core {

class DrCellAgent {
 public:
  DrCellAgent(std::size_t num_cells, DrCellConfig config);

  const DrCellConfig& config() const { return config_; }
  std::size_t num_cells() const { return num_cells_; }

  rl::DqnTrainer& trainer() { return *trainer_; }
  const rl::DqnTrainer& trainer() const { return *trainer_; }

  /// Numeric-health sentinels over this agent's losses/Q-values/parameters
  /// (core/health_monitor.h). OnlineAdaptivePolicy feeds every train-step
  /// loss; the campaign scheduler consults and acts on the status.
  HealthMonitor& health() { return health_; }
  const HealthMonitor& health() const { return health_; }

  /// Convenience sentinel: scans the online network's parameters and
  /// returns the (sticky) status — O(#params), the scheduler rate-limits
  /// it via its health-check cadence.
  HealthStatus check_parameter_health();

  /// Greedy Q-maximising action (the deployed policy).
  std::size_t greedy_action(const std::vector<double>& state,
                            const std::vector<std::uint8_t>& mask);

  void save_weights(std::ostream& out);
  void load_weights(std::istream& in);
  void save_weights_file(const std::string& path);
  void load_weights_file(const std::string& path);

  /// Copies this agent's online-network weights into `other` (architectures
  /// must match) — the in-process transfer-learning primitive of Sec. 4.4.
  void copy_weights_to(DrCellAgent& other);

 private:
  std::size_t num_cells_;
  DrCellConfig config_;
  std::unique_ptr<rl::DqnTrainer> trainer_;
  HealthMonitor health_;
};

}  // namespace drcell::core
