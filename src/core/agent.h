// DrCellAgent — the trainable DR-Cell decision maker: a Q-network (DRQN by
// default) wrapped in the DQN trainer, plus weight (de)serialisation for
// checkpointing and transfer learning.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "core/config.h"
#include "rl/dqn_trainer.h"

namespace drcell::core {

class DrCellAgent {
 public:
  DrCellAgent(std::size_t num_cells, DrCellConfig config);

  const DrCellConfig& config() const { return config_; }
  std::size_t num_cells() const { return num_cells_; }

  rl::DqnTrainer& trainer() { return *trainer_; }
  const rl::DqnTrainer& trainer() const { return *trainer_; }

  /// Greedy Q-maximising action (the deployed policy).
  std::size_t greedy_action(const std::vector<double>& state,
                            const std::vector<std::uint8_t>& mask);

  void save_weights(std::ostream& out);
  void load_weights(std::istream& in);
  void save_weights_file(const std::string& path);
  void load_weights_file(const std::string& path);

  /// Copies this agent's online-network weights into `other` (architectures
  /// must match) — the in-process transfer-learning primitive of Sec. 4.4.
  void copy_weights_to(DrCellAgent& other);

 private:
  std::size_t num_cells_;
  DrCellConfig config_;
  std::unique_ptr<rl::DqnTrainer> trainer_;
};

}  // namespace drcell::core
