#include "core/health_monitor.h"

#include <cmath>

#include "nn/layer.h"
#include "util/check.h"

namespace drcell::core {

HealthMonitor::HealthMonitor(HealthOptions options) : options_(options) {
  DRCELL_CHECK(options_.loss_window > 0);
  DRCELL_CHECK(options_.loss_baseline > 0);
  DRCELL_CHECK(options_.loss_explosion_factor >= 0.0);
  DRCELL_CHECK(options_.max_abs_q >= 0.0);
  window_.reserve(options_.loss_window);
}

const char* HealthMonitor::status_name(HealthStatus status) {
  switch (status) {
    case HealthStatus::kHealthy: return "healthy";
    case HealthStatus::kNonFiniteLoss: return "non-finite loss";
    case HealthStatus::kLossExplosion: return "loss explosion";
    case HealthStatus::kNonFiniteQ: return "non-finite Q-values";
    case HealthStatus::kQOutOfRange: return "Q-values out of range";
    case HealthStatus::kNonFiniteParams: return "non-finite parameters";
  }
  return "unknown";
}

void HealthMonitor::trip(HealthStatus status, std::string reason) {
  // Sticky: keep the FIRST tripped sentinel — it names the root cause
  // (later checks on poisoned state all fail for derived reasons).
  if (status_ != HealthStatus::kHealthy) return;
  status_ = status;
  reason_ = std::move(reason);
}

HealthStatus HealthMonitor::record_loss(double loss) {
  if (!std::isfinite(loss)) {
    trip(HealthStatus::kNonFiniteLoss, "train-step loss is non-finite");
    return status_;
  }
  if (baseline_count_ < options_.loss_baseline) {
    baseline_sum_ += loss;
    ++baseline_count_;
    return status_;
  }
  if (window_.size() < options_.loss_window) {
    window_.push_back(loss);
    window_sum_ += loss;
  } else {
    window_sum_ += loss - window_[window_next_];
    window_[window_next_] = loss;
    window_next_ = (window_next_ + 1) % options_.loss_window;
  }
  if (options_.loss_explosion_factor > 0.0 &&
      window_.size() == options_.loss_window) {
    const double baseline =
        baseline_sum_ / static_cast<double>(baseline_count_);
    const double window_mean =
        window_sum_ / static_cast<double>(window_.size());
    // The +1.0 floor keeps a near-zero baseline (e.g. pre-warmup 0.0
    // losses) from flagging ordinary early-training noise.
    if (window_mean >
        options_.loss_explosion_factor * (std::fabs(baseline) + 1.0))
      trip(HealthStatus::kLossExplosion,
           "loss window mean " + std::to_string(window_mean) +
               " exploded over baseline " + std::to_string(baseline));
  }
  return status_;
}

HealthStatus HealthMonitor::check_q(const Matrix& q) {
  if (q.has_non_finite()) {
    trip(HealthStatus::kNonFiniteQ, "Q forward produced non-finite values");
    return status_;
  }
  if (options_.max_abs_q > 0.0) {
    for (std::size_t r = 0; r < q.rows(); ++r)
      for (std::size_t c = 0; c < q.cols(); ++c)
        if (std::fabs(q(r, c)) > options_.max_abs_q) {
          trip(HealthStatus::kQOutOfRange,
               "|Q| exceeded " + std::to_string(options_.max_abs_q));
          return status_;
        }
  }
  return status_;
}

HealthStatus HealthMonitor::check_parameters(
    const std::vector<nn::Parameter*>& params) {
  for (const nn::Parameter* p : params)
    if (p != nullptr && p->value.has_non_finite()) {
      trip(HealthStatus::kNonFiniteParams,
           "network parameters contain non-finite values");
      return status_;
    }
  return status_;
}

void HealthMonitor::reset() {
  status_ = HealthStatus::kHealthy;
  reason_.clear();
  baseline_sum_ = 0.0;
  baseline_count_ = 0;
  window_.clear();
  window_next_ = 0;
  window_sum_ = 0.0;
}

}  // namespace drcell::core
