#include "core/campaign_scheduler.h"

#include <algorithm>
#include <exception>
#include <sstream>
#include <utility>

#include "core/checkpoint.h"
#include "core/policy.h"
#include "mcs/state_encoder.h"

namespace drcell::core {

namespace {

std::string what_of(const std::exception_ptr& ep) {
  try {
    std::rethrow_exception(ep);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown exception";
  }
}

}  // namespace

CampaignScheduler::CampaignScheduler() : CampaignScheduler(Options()) {}

CampaignScheduler::CampaignScheduler(Options options)
    : options_(std::move(options)) {}

std::size_t CampaignScheduler::add_campaign(
    std::string id, CampaignConfig config,
    std::shared_ptr<const mcs::SensingTask> task, EngineFactory engine_factory,
    std::shared_ptr<baselines::CellSelector> selector) {
  DRCELL_CHECK_MSG(!id.empty(), "campaign id must be non-empty");
  DRCELL_CHECK(task != nullptr);
  DRCELL_CHECK(engine_factory != nullptr);
  DRCELL_CHECK(selector != nullptr);
  for (const Slot& s : slots_)
    DRCELL_CHECK_MSG(s.id != id, "duplicate campaign id: " + id);

  Slot slot;
  slot.id = std::move(id);
  slot.config = config;
  // Scope this campaign's env.step fault site by its id so a drill can
  // target exactly one campaign of the fleet.
  if (slot.config.env.fault_scope.empty())
    slot.config.env.fault_scope = slot.id;
  slot.task = std::move(task);
  slot.engine_factory = std::move(engine_factory);
  slot.selector = std::move(selector);
  slot.batched = dynamic_cast<BatchedQSelector*>(slot.selector.get());
  slot.env = make_campaign_environment(slot.task, slot.engine_factory(),
                                       slot.config);
  slots_.push_back(std::move(slot));
  return slots_.size() - 1;
}

bool CampaignScheduler::all_done() const {
  return std::all_of(slots_.begin(), slots_.end(), [](const Slot& s) {
    return s.env->episode_done() || s.state == CampaignState::kQuarantined;
  });
}

CampaignState CampaignScheduler::campaign_state(std::size_t slot) const {
  DRCELL_CHECK(slot < slots_.size());
  return slots_[slot].state;
}

const std::string& CampaignScheduler::quarantine_reason(
    std::size_t slot) const {
  DRCELL_CHECK(slot < slots_.size());
  return slots_[slot].quarantine_reason;
}

std::vector<std::size_t> CampaignScheduler::quarantined_slots() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < slots_.size(); ++i)
    if (slots_[i].state == CampaignState::kQuarantined) out.push_back(i);
  return out;
}

const std::string& CampaignScheduler::checkpoint_ring_entry(
    std::size_t i) const {
  DRCELL_CHECK(i < ring_.size());
  return ring_[i];
}

void CampaignScheduler::note_incident(std::string campaign, std::string kind,
                                      std::string detail) {
  Incident inc;
  inc.wave = waves_;
  inc.campaign = std::move(campaign);
  inc.kind = std::move(kind);
  inc.detail = std::move(detail);
  incidents_.push_back(std::move(inc));
}

void CampaignScheduler::quarantine(std::size_t slot, std::string reason) {
  Slot& s = slots_[slot];
  if (s.state == CampaignState::kQuarantined) return;
  s.state = CampaignState::kQuarantined;
  s.quarantine_reason = reason;
  note_incident(s.id, "quarantine", std::move(reason));
}

bool CampaignScheduler::decide_batched(const std::vector<std::size_t>& active) {
  // Group batchable campaigns by shared network, preserving first-seen
  // order (and ascending slot order within a group) so the batch layout —
  // and with it any accumulation order downstream — is deterministic.
  std::vector<rl::QNetwork*> networks;
  std::vector<std::vector<std::size_t>> groups;
  for (const std::size_t i : active) {
    Slot& slot = slots_[i];
    if (slot.batched == nullptr) continue;
    rl::QNetwork* net = &slot.batched->shared_network();
    const auto it = std::find(networks.begin(), networks.end(), net);
    if (it == networks.end()) {
      networks.push_back(net);
      groups.emplace_back();
      groups.back().push_back(i);
    } else {
      groups[static_cast<std::size_t>(it - networks.begin())].push_back(i);
    }
  }

  bool all_ok = true;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    rl::QNetwork& net = *networks[g];
    const std::vector<std::size_t>& members = groups[g];
    const auto decide_group = [&] {
      std::vector<const std::vector<double>*> states;
      states.reserve(members.size());
      for (const std::size_t i : members) {
        slots_[i].state_buf = slots_[i].env->state();
        states.push_back(&slots_[i].state_buf);
      }
      const mcs::StateEncoder encoder(net.num_actions(), net.history_steps());
      // One forward for the whole group; row r is bit-identical to the B = 1
      // forward of member r's state (batched determinism contract), and
      // masked_argmax_row is the same argmax greedy_action applies — so each
      // campaign picks exactly its solo action.
      const Matrix& q = net.forward_batch(encoder.to_sequence_batch(states));
      // Q sentinel: a poisoned shared network shows up here first. check_q
      // trips the owning agent's sticky monitor; the HEALTH phase of the
      // next wave acts on it (rollback / fallback / quarantine).
      if (options_.fault.health_check_every_waves > 0) {
        if (DrCellAgent* agent =
                trainable_agent_of(slots_[members[0]].selector.get()))
          agent->health().check_q(q);
      }
      for (std::size_t r = 0; r < members.size(); ++r) {
        Slot& slot = slots_[members[r]];
        slot.pending_action =
            rl::masked_argmax_row(q, r, slot.env->action_mask());
      }
    };
    if (options_.fault.isolate) {
      try {
        decide_group();
      } catch (const std::exception& e) {
        // The whole group's decision failed; the caller re-decides its
        // members serially, each in its own fault domain. Greedy selects
        // are draw-free, so the serial re-decide is bit-identical.
        note_incident("", "decide-fault",
                      "batched forward failed, falling back to serial "
                      "selects: " +
                          std::string(e.what()));
        all_ok = false;
      }
    } else {
      decide_group();
    }
  }
  return all_ok;
}

void CampaignScheduler::maybe_ring_save() {
  const FaultToleranceOptions& ft = options_.fault;
  if (ft.checkpoint_every_waves == 0 || ft.checkpoint_ring == 0) return;
  if (waves_ % ft.checkpoint_every_waves != 0) return;
  if (waves_ == last_ring_wave_) return;  // already snapshotted (rollback)
  std::ostringstream out(std::ios::binary);
  save_checkpoint(*this, out);
  ring_.push_back(std::move(out).str());
  if (ring_.size() > ft.checkpoint_ring)
    ring_.erase(ring_.begin(),
                ring_.begin() + static_cast<std::ptrdiff_t>(
                                    ring_.size() - ft.checkpoint_ring));
  last_ring_wave_ = waves_;
}

bool CampaignScheduler::rollback_from_ring() {
  while (!ring_.empty()) {
    try {
      std::istringstream in(ring_.back(), std::ios::binary);
      load_checkpoint(*this, in);
      last_ring_wave_ = waves_;  // restored to the snapshot's wave
      for (Slot& slot : slots_) slot.consecutive_faults = 0;
      // The restored weights are the last-good ones; clear every restored
      // agent's sticky sentinel so monitoring starts fresh.
      for (Slot& slot : slots_)
        if (DrCellAgent* agent = trainable_agent_of(slot.selector.get()))
          agent->health().reset();
      return true;
    } catch (const std::exception& e) {
      // A ring entry can become unloadable if the fleet's shape changed
      // since the snapshot (e.g. a campaign fell back to a different
      // selector type). Drop it and try the next-older one.
      note_incident("", "rollback", "discarding unloadable ring entry: " +
                                        std::string(e.what()));
      ring_.pop_back();
    }
  }
  return false;
}

void CampaignScheduler::handle_unhealthy_agent(DrCellAgent* agent,
                                               std::string reason) {
  note_incident("", "agent-unhealthy", reason);
  const FaultToleranceOptions& ft = options_.fault;
  if (rollbacks_ < ft.max_rollbacks) {
    ++rollbacks_;
    if (rollback_from_ring()) {
      std::ostringstream msg;
      msg << "restored fleet from checkpoint ring (wave " << waves_
          << ") after: " << reason;
      note_incident("", "rollback", msg.str());
      return;
    }
  }
  // Persistent poisoner or no usable snapshot: degrade the agent's
  // campaigns to the fallback selector, or quarantine them.
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    Slot& slot = slots_[i];
    if (slot.state == CampaignState::kQuarantined) continue;
    if (trainable_agent_of(slot.selector.get()) != agent) continue;
    if (ft.fallback_factory) {
      slot.selector = ft.fallback_factory(slot.id, i);
      DRCELL_CHECK_MSG(slot.selector != nullptr,
                       "fallback_factory returned null");
      slot.batched = dynamic_cast<BatchedQSelector*>(slot.selector.get());
      note_incident(slot.id, "fallback", "degraded to " +
                                             slot.selector->name() +
                                             " after: " + reason);
    } else {
      quarantine(i, "agent unhealthy: " + reason);
    }
  }
}

void CampaignScheduler::health_phase() {
  const FaultToleranceOptions& ft = options_.fault;
  if (ft.health_check_every_waves == 0) return;
  const bool scan_parameters = waves_ % ft.health_check_every_waves == 0;
  // Distinct serving agents of the non-quarantined slots, first-seen order.
  std::vector<DrCellAgent*> agents;
  for (const Slot& slot : slots_) {
    if (slot.state == CampaignState::kQuarantined) continue;
    DrCellAgent* agent = trainable_agent_of(slot.selector.get());
    if (agent != nullptr &&
        std::find(agents.begin(), agents.end(), agent) == agents.end())
      agents.push_back(agent);
  }
  for (DrCellAgent* agent : agents) {
    // Sentinels tripped since the last wave (NaN loss out of a train step,
    // non-finite Q row) are sticky; the parameter scan adds direct weight
    // poisoning on the configured cadence.
    if (agent->health().healthy() && scan_parameters)
      agent->check_parameter_health();
    if (!agent->health().healthy())
      handle_unhealthy_agent(agent, agent->health().reason());
  }
}

std::size_t CampaignScheduler::step_wave() {
  // HEALTH/RECOVER precedes the snapshot: the ring only ever holds states
  // every agent was healthy in, so a rollback target is always clean.
  health_phase();
  maybe_ring_save();

  std::vector<std::size_t> active;
  active.reserve(slots_.size());
  for (std::size_t i = 0; i < slots_.size(); ++i)
    if (!slots_[i].env->episode_done() &&
        slots_[i].state != CampaignState::kQuarantined)
      active.push_back(i);
  if (active.empty()) return 0;

  const bool isolate = options_.fault.isolate;
  // Per-campaign wave bookkeeping: which phase each campaign reached, and
  // the first fault attributed to it.
  std::vector<std::uint8_t> decided(active.size(), 0);
  std::vector<std::uint8_t> stepped(active.size(), 0);
  std::vector<std::string> fault_kind(active.size());
  std::vector<std::string> fault_what(active.size());

  // DECIDE. Batched groups first (one forward per shared network), then the
  // serial selectors in ascending slot order — each owns its draw stream,
  // so its decisions replay its solo campaign's exactly.
  bool batched_ok = true;
  if (options_.cross_campaign_batching) batched_ok = decide_batched(active);
  for (std::size_t k = 0; k < active.size(); ++k) {
    Slot& slot = slots_[active[k]];
    if (options_.cross_campaign_batching && slot.batched != nullptr &&
        batched_ok) {
      decided[k] = 1;
      continue;
    }
    if (!isolate) {
      slot.pending_action = slot.selector->select(*slot.env);
      decided[k] = 1;
      continue;
    }
    try {
      slot.pending_action = slot.selector->select(*slot.env);
      decided[k] = 1;
    } catch (const std::exception& e) {
      // No in-wave retry for DECIDE: a stateful selector's draw stream
      // already advanced, so re-selecting would fork the trajectory. The
      // next wave retries naturally.
      fault_kind[k] = "decide-fault";
      fault_what[k] = e.what();
    }
  }

  // STEP — the expensive phase (inference + gate) fans out over the pool.
  // Index-exclusive writes per slot keep it bit-identical for any worker
  // count. StepResults are recorded for the OBSERVE phase. With isolation
  // on, a throwing step is captured per-campaign instead of unwinding the
  // wave through the pool's aggregate-and-rethrow.
  util::ThreadPool& pool =
      options_.pool != nullptr ? *options_.pool : util::ThreadPool::global();
  std::vector<mcs::StepResult> results(active.size());
  std::vector<std::exception_ptr> step_errors(active.size());
  pool.parallel_for(active.size(), [&](std::size_t k) {
    if (!decided[k]) return;
    Slot& slot = slots_[active[k]];
    if (!isolate) {
      results[k] = slot.env->step(slot.pending_action);
      slot.action_log.push_back(
          static_cast<std::uint32_t>(slot.pending_action));
      stepped[k] = 1;
      return;
    }
    try {
      results[k] = slot.env->step(slot.pending_action);
      slot.action_log.push_back(
          static_cast<std::uint32_t>(slot.pending_action));
      stepped[k] = 1;
    } catch (...) {
      step_errors[k] = std::current_exception();
    }
  });

  // RETRY — serial, ascending: a transient step fault is retried with the
  // SAME action on the still-unmutated environment (the env.step fault site
  // precedes all mutation), so a recovered campaign's trajectory is
  // bit-identical to one that never faulted.
  if (isolate) {
    for (std::size_t k = 0; k < active.size(); ++k) {
      if (!decided[k] || stepped[k]) continue;
      Slot& slot = slots_[active[k]];
      for (std::size_t attempt = 0;
           attempt < options_.fault.step_retries && !stepped[k]; ++attempt) {
        try {
          results[k] = slot.env->step(slot.pending_action);
          slot.action_log.push_back(
              static_cast<std::uint32_t>(slot.pending_action));
          stepped[k] = 1;
          note_incident(slot.id, "retry-recovered",
                        "step retry succeeded after: " +
                            what_of(step_errors[k]));
          step_errors[k] = nullptr;
        } catch (...) {
          step_errors[k] = std::current_exception();
        }
      }
      if (!stepped[k]) {
        fault_kind[k] = "step-fault";
        fault_what[k] = what_of(step_errors[k]);
      }
    }
  }

  // OBSERVE — serial, ascending: hooks may train a shared agent.
  for (std::size_t k = 0; k < active.size(); ++k) {
    if (!stepped[k]) continue;
    Slot& slot = slots_[active[k]];
    if (!isolate) {
      slot.selector->on_step(*slot.env, slot.pending_action, results[k]);
      continue;
    }
    try {
      slot.selector->on_step(*slot.env, slot.pending_action, results[k]);
    } catch (const std::exception& e) {
      // The step itself committed (action applied and logged); only the
      // learning hook failed. The campaign keeps serving.
      fault_kind[k] = "observe-fault";
      fault_what[k] = e.what();
    }
  }

  // Fault accounting: a clean wave resets the streak; a faulted one
  // extends it and quarantines the campaign past the threshold.
  if (isolate) {
    for (std::size_t k = 0; k < active.size(); ++k) {
      Slot& slot = slots_[active[k]];
      if (fault_kind[k].empty()) {
        slot.consecutive_faults = 0;
        continue;
      }
      ++slot.consecutive_faults;
      note_incident(slot.id, fault_kind[k], fault_what[k]);
      if (slot.consecutive_faults >= options_.fault.quarantine_after)
        quarantine(active[k], fault_kind[k] + " x" +
                                  std::to_string(slot.consecutive_faults) +
                                  ": " + fault_what[k]);
    }
  }

  ++waves_;
  return active.size();
}

std::size_t CampaignScheduler::run(std::size_t max_waves) {
  std::size_t waves = 0;
  while (step_wave() > 0) {
    ++waves;
    if (max_waves > 0 && waves >= max_waves) break;
  }
  return waves;
}

const mcs::SparseMcsEnvironment& CampaignScheduler::environment(
    std::size_t slot) const {
  DRCELL_CHECK(slot < slots_.size());
  return *slots_[slot].env;
}

const std::vector<std::uint32_t>& CampaignScheduler::action_log(
    std::size_t slot) const {
  DRCELL_CHECK(slot < slots_.size());
  return slots_[slot].action_log;
}

std::vector<CampaignResult> CampaignScheduler::results() const {
  std::vector<CampaignResult> out;
  out.reserve(slots_.size());
  for (const Slot& slot : slots_) {
    CampaignResult r =
        summarize_campaign(*slot.env, slot.selector->name(), slot.config);
    r.id = slot.id;
    r.quarantined = slot.state == CampaignState::kQuarantined;
    r.quarantine_reason = slot.quarantine_reason;
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace drcell::core
