#include "core/campaign_scheduler.h"

#include <algorithm>

#include "mcs/state_encoder.h"

namespace drcell::core {

CampaignScheduler::CampaignScheduler() : CampaignScheduler(Options()) {}

CampaignScheduler::CampaignScheduler(Options options) : options_(options) {}

std::size_t CampaignScheduler::add_campaign(
    std::string id, CampaignConfig config,
    std::shared_ptr<const mcs::SensingTask> task, EngineFactory engine_factory,
    std::shared_ptr<baselines::CellSelector> selector) {
  DRCELL_CHECK_MSG(!id.empty(), "campaign id must be non-empty");
  DRCELL_CHECK(task != nullptr);
  DRCELL_CHECK(engine_factory != nullptr);
  DRCELL_CHECK(selector != nullptr);
  for (const Slot& s : slots_)
    DRCELL_CHECK_MSG(s.id != id, "duplicate campaign id: " + id);

  Slot slot;
  slot.id = std::move(id);
  slot.config = config;
  slot.task = std::move(task);
  slot.engine_factory = std::move(engine_factory);
  slot.selector = std::move(selector);
  slot.batched = dynamic_cast<BatchedQSelector*>(slot.selector.get());
  slot.env = make_campaign_environment(slot.task, slot.engine_factory(),
                                       slot.config);
  slots_.push_back(std::move(slot));
  return slots_.size() - 1;
}

bool CampaignScheduler::all_done() const {
  return std::all_of(slots_.begin(), slots_.end(),
                     [](const Slot& s) { return s.env->episode_done(); });
}

void CampaignScheduler::decide_batched(const std::vector<std::size_t>& active) {
  // Group batchable campaigns by shared network, preserving first-seen
  // order (and ascending slot order within a group) so the batch layout —
  // and with it any accumulation order downstream — is deterministic.
  std::vector<rl::QNetwork*> networks;
  std::vector<std::vector<std::size_t>> groups;
  for (const std::size_t i : active) {
    Slot& slot = slots_[i];
    if (slot.batched == nullptr) continue;
    rl::QNetwork* net = &slot.batched->shared_network();
    const auto it = std::find(networks.begin(), networks.end(), net);
    if (it == networks.end()) {
      networks.push_back(net);
      groups.emplace_back();
      groups.back().push_back(i);
    } else {
      groups[static_cast<std::size_t>(it - networks.begin())].push_back(i);
    }
  }

  for (std::size_t g = 0; g < groups.size(); ++g) {
    rl::QNetwork& net = *networks[g];
    const std::vector<std::size_t>& members = groups[g];
    std::vector<const std::vector<double>*> states;
    states.reserve(members.size());
    for (const std::size_t i : members) {
      slots_[i].state_buf = slots_[i].env->state();
      states.push_back(&slots_[i].state_buf);
    }
    const mcs::StateEncoder encoder(net.num_actions(), net.history_steps());
    // One forward for the whole group; row r is bit-identical to the B = 1
    // forward of member r's state (batched determinism contract), and
    // masked_argmax_row is the same argmax greedy_action applies — so each
    // campaign picks exactly its solo action.
    const Matrix& q = net.forward_batch(encoder.to_sequence_batch(states));
    for (std::size_t r = 0; r < members.size(); ++r) {
      Slot& slot = slots_[members[r]];
      slot.pending_action =
          rl::masked_argmax_row(q, r, slot.env->action_mask());
    }
  }
}

std::size_t CampaignScheduler::step_wave() {
  std::vector<std::size_t> active;
  active.reserve(slots_.size());
  for (std::size_t i = 0; i < slots_.size(); ++i)
    if (!slots_[i].env->episode_done()) active.push_back(i);
  if (active.empty()) return 0;

  // DECIDE. Batched groups first (one forward per shared network), then the
  // serial selectors in ascending slot order — each owns its draw stream,
  // so its decisions replay its solo campaign's exactly.
  if (options_.cross_campaign_batching) decide_batched(active);
  for (const std::size_t i : active) {
    Slot& slot = slots_[i];
    if (options_.cross_campaign_batching && slot.batched != nullptr) continue;
    slot.pending_action = slot.selector->select(*slot.env);
  }

  // STEP — the expensive phase (inference + gate) fans out over the pool.
  // Index-exclusive writes per slot keep it bit-identical for any worker
  // count. StepResults are recorded for the OBSERVE phase.
  util::ThreadPool& pool =
      options_.pool != nullptr ? *options_.pool : util::ThreadPool::global();
  std::vector<mcs::StepResult> results(active.size());
  pool.parallel_for(active.size(), [&](std::size_t k) {
    Slot& slot = slots_[active[k]];
    results[k] = slot.env->step(slot.pending_action);
    slot.action_log.push_back(
        static_cast<std::uint32_t>(slot.pending_action));
  });

  // OBSERVE — serial, ascending: hooks may train a shared agent.
  for (std::size_t k = 0; k < active.size(); ++k) {
    Slot& slot = slots_[active[k]];
    slot.selector->on_step(*slot.env, slot.pending_action, results[k]);
  }

  ++waves_;
  return active.size();
}

std::size_t CampaignScheduler::run(std::size_t max_waves) {
  std::size_t waves = 0;
  while (step_wave() > 0) {
    ++waves;
    if (max_waves > 0 && waves >= max_waves) break;
  }
  return waves;
}

const mcs::SparseMcsEnvironment& CampaignScheduler::environment(
    std::size_t slot) const {
  DRCELL_CHECK(slot < slots_.size());
  return *slots_[slot].env;
}

const std::vector<std::uint32_t>& CampaignScheduler::action_log(
    std::size_t slot) const {
  DRCELL_CHECK(slot < slots_.size());
  return slots_[slot].action_log;
}

std::vector<CampaignResult> CampaignScheduler::results() const {
  std::vector<CampaignResult> out;
  out.reserve(slots_.size());
  for (const Slot& slot : slots_) {
    CampaignResult r =
        summarize_campaign(*slot.env, slot.selector->name(), slot.config);
    r.id = slot.id;
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace drcell::core
