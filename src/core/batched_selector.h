// Opt-in mixin for selectors whose decision is the greedy argmax of a
// Q-network forward — the hook the multi-campaign scheduler
// (core/campaign_scheduler.h) uses to batch those forwards across
// campaigns. Lives in core/ (not baselines/) so the baseline layer keeps
// no rl/ dependency; the scheduler discovers the capability by
// dynamic_cast.
//
// Contract: the selector's select() must be exactly
//
//   encode state -> shared_network().forward_batch (B = 1)
//     -> rl::masked_argmax_row(q, 0, env.action_mask())
//
// with the encoder shape implied by the network (num_actions() cells,
// history_steps() recent selection vectors). Under the batched determinism
// contract (rl/qnetwork.h: row b of a batched forward is bit-identical to
// the B = 1 forward of sample b) the scheduler may stack any number of such
// campaigns' states into one forward_batch and argmax each row, producing
// per campaign exactly the action solo stepping would. Selectors that
// explore (δ-greedy), post-process scores or consult non-Q state must NOT
// claim this mixin — the scheduler steps them unbatched.
#pragma once

#include "rl/qnetwork.h"

namespace drcell::core {

class BatchedQSelector {
 public:
  virtual ~BatchedQSelector() = default;

  /// The network whose greedy argmax IS this selector's decision. Campaigns
  /// returning the same network object are batched into one forward_batch
  /// per wave. Non-const: forward_batch writes network-owned workspaces.
  virtual rl::QNetwork& shared_network() = 0;
};

}  // namespace drcell::core
