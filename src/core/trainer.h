// The offline training stage (Sec. 5.3): the organiser runs a preliminary
// study collecting data from every cell for a short period (e.g. two
// days); DR-Cell then learns its Q-function on that data with Algorithm 2,
// checking quality against the known ground truth (footnote 2).
#pragma once

#include <memory>
#include <vector>

#include "core/agent.h"
#include "cs/inference_engine.h"
#include "mcs/environment.h"

namespace drcell::core {

struct TrainingResult {
  std::vector<mcs::EpisodeStats> episodes;
  std::vector<double> mean_losses;  ///< mean TD loss per episode
  double seconds = 0.0;

  double final_cells_per_cycle() const {
    return episodes.empty() ? 0.0
                            : episodes.back().average_selections_per_cycle();
  }
};

/// Builds the training-stage environment for a task slice: GroundTruthGate
/// at the given epsilon, environment options from the agent config (with
/// history_cycles kept consistent).
mcs::SparseMcsEnvironment make_training_environment(
    std::shared_ptr<const mcs::SensingTask> training_task,
    cs::InferenceEnginePtr engine, double epsilon, const DrCellConfig& config);

/// Runs `episodes` full passes (episodes) of Algorithm 2 over the training
/// environment. The agent's replay pool and exploration schedule persist
/// across calls, so this can also fine-tune an already-trained agent
/// (transfer learning) or continue training online.
///
/// Each trainer.train_step() inside the loop is one batched minibatch
/// update: the replay buffer assembles a timestep-major [batch x cells]
/// window batch from its encoded-sequence cache and the whole
/// forward/loss/backward pipeline runs as batch-level GEMMs (see
/// rl/dqn_trainer.h; config.dqn.reference_path routes it through the
/// retained per-sample reference instead, bit-identically).
TrainingResult train_agent(DrCellAgent& agent, mcs::SparseMcsEnvironment& env,
                           std::size_t episodes);

}  // namespace drcell::core
