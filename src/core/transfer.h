// Transfer learning between correlated MCS tasks (Sec. 4.4): initialise the
// target task's DRQN with the weights learned on the source task, then
// fine-tune on the target's small amount of training data. The two tasks
// must share a target area (same cell count), so the network shapes match.
#pragma once

#include "core/agent.h"
#include "core/trainer.h"

namespace drcell::core {

struct TransferOptions {
  /// Cycles of target-task data available for fine-tuning (the paper uses
  /// 10 cycles = 5 hours of Sensor-Scope data).
  std::size_t target_training_cycles = 10;
  /// Fine-tuning passes over those cycles.
  std::size_t fine_tune_episodes = 10;
  /// Quality bound used during fine-tuning.
  double epsilon = 0.0;
};

/// Builds the target agent initialised from the source agent's weights and
/// fine-tunes it on the first `target_training_cycles` cycles of
/// `target_task`. Returns the fine-tuned agent (TRANSFER in Fig. 7).
DrCellAgent transfer_agent(DrCellAgent& source,
                           const mcs::SensingTask& target_task,
                           cs::InferenceEnginePtr engine,
                           const TransferOptions& options);

/// Control arms of the Fig. 7 experiment:
/// NO-TRANSFER — the source agent applied to the target task unchanged.
/// SHORT-TRAIN — a fresh agent trained only on the few target cycles.
DrCellAgent short_train_agent(const DrCellConfig& config,
                              const mcs::SensingTask& target_task,
                              cs::InferenceEnginePtr engine,
                              const TransferOptions& options);

}  // namespace drcell::core
