// The testing stage of Sec. 5.3: run a selection policy over the test
// cycles under the leave-one-out Bayesian (epsilon, p) gate, then verify
// the quality contract post hoc against the ground truth and report the
// number the paper's figures compare — the average number of selected
// cells per cycle.
#pragma once

#include <memory>
#include <string>

#include "baselines/selector.h"
#include "core/config.h"
#include "cs/inference_engine.h"
#include "mcs/environment.h"

namespace drcell::core {

struct CampaignConfig {
  double epsilon = 0.0;  ///< quality error bound
  double p = 0.9;        ///< fraction of cycles that must meet epsilon
  mcs::EnvOptions env;   ///< window, min observations, R/c, cell costs
};

struct CampaignResult {
  /// Campaign identifier — empty from run_campaign, the registry id from
  /// the multi-campaign scheduler (core/campaign_scheduler.h).
  std::string id;
  std::string selector;
  std::size_t cycles = 0;
  std::size_t total_selected = 0;
  double avg_cells_per_cycle = 0.0;
  /// Post-hoc Eq. 1 check: fraction of cycles with true error <= epsilon.
  double satisfaction_ratio = 0.0;
  double mean_cycle_error = 0.0;
  double total_cost = 0.0;
  double seconds = 0.0;
  /// Set by the multi-campaign scheduler when the campaign was quarantined
  /// by the fault-tolerance layer; the figures above then summarise the
  /// trajectory up to the quarantine point.
  bool quarantined = false;
  std::string quarantine_reason;
  mcs::EpisodeStats stats;
};

/// Builds the campaign environment exactly as run_campaign does — task +
/// inference engine + a fresh LOO Bayesian gate at (epsilon, p) — so the
/// multi-campaign scheduler steps environments bit-identical to the solo
/// runner's.
std::unique_ptr<mcs::SparseMcsEnvironment> make_campaign_environment(
    std::shared_ptr<const mcs::SensingTask> test_task,
    cs::InferenceEnginePtr engine, const CampaignConfig& config);

/// Summarises a finished environment into the figures the paper compares;
/// `seconds` is left 0 for the caller's clock.
CampaignResult summarize_campaign(const mcs::SparseMcsEnvironment& env,
                                  const std::string& selector_name,
                                  const CampaignConfig& config);

/// Runs one full campaign of `selector` over `test_task` with compressive
/// sensing inference and the LOO Bayesian gate at (epsilon, p).
CampaignResult run_campaign(std::shared_ptr<const mcs::SensingTask> test_task,
                            cs::InferenceEnginePtr engine,
                            baselines::CellSelector& selector,
                            const CampaignConfig& config);

}  // namespace drcell::core
