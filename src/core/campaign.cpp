#include "core/campaign.h"

#include "util/statistics.h"
#include "util/stopwatch.h"

namespace drcell::core {

std::unique_ptr<mcs::SparseMcsEnvironment> make_campaign_environment(
    std::shared_ptr<const mcs::SensingTask> test_task,
    cs::InferenceEnginePtr engine, const CampaignConfig& config) {
  DRCELL_CHECK(test_task != nullptr);
  auto gate = std::make_shared<mcs::LooBayesianGate>(config.epsilon, config.p);
  return std::make_unique<mcs::SparseMcsEnvironment>(
      std::move(test_task), std::move(engine), std::move(gate), config.env);
}

CampaignResult summarize_campaign(const mcs::SparseMcsEnvironment& env,
                                  const std::string& selector_name,
                                  const CampaignConfig& config) {
  const auto& stats = env.stats();
  CampaignResult out;
  out.selector = selector_name;
  out.cycles = stats.cycles;
  out.total_selected = stats.total_selections;
  out.avg_cells_per_cycle = stats.average_selections_per_cycle();
  out.satisfaction_ratio = stats.quality_satisfaction_ratio(config.epsilon);
  out.mean_cycle_error = mean(stats.cycle_errors);
  out.total_cost = stats.total_cost;
  out.stats = stats;
  return out;
}

CampaignResult run_campaign(std::shared_ptr<const mcs::SensingTask> test_task,
                            cs::InferenceEnginePtr engine,
                            baselines::CellSelector& selector,
                            const CampaignConfig& config) {
  const auto env = make_campaign_environment(std::move(test_task),
                                             std::move(engine), config);

  Stopwatch watch;
  while (!env->episode_done()) {
    const std::size_t action = selector.select(*env);
    const mcs::StepResult result = env->step(action);
    selector.on_step(*env, action, result);
  }

  CampaignResult out = summarize_campaign(*env, selector.name(), config);
  out.seconds = watch.elapsed_seconds();
  return out;
}

}  // namespace drcell::core
