#include "core/campaign.h"

#include "util/statistics.h"
#include "util/stopwatch.h"

namespace drcell::core {

CampaignResult run_campaign(std::shared_ptr<const mcs::SensingTask> test_task,
                            cs::InferenceEnginePtr engine,
                            baselines::CellSelector& selector,
                            const CampaignConfig& config) {
  DRCELL_CHECK(test_task != nullptr);
  auto gate = std::make_shared<mcs::LooBayesianGate>(config.epsilon, config.p);
  mcs::SparseMcsEnvironment env(test_task, std::move(engine), std::move(gate),
                                config.env);

  Stopwatch watch;
  while (!env.episode_done()) {
    const std::size_t action = selector.select(env);
    const mcs::StepResult result = env.step(action);
    selector.on_step(env, action, result);
  }

  const auto& stats = env.stats();
  CampaignResult out;
  out.selector = selector.name();
  out.cycles = stats.cycles;
  out.total_selected = stats.total_selections;
  out.avg_cells_per_cycle = stats.average_selections_per_cycle();
  out.satisfaction_ratio = stats.quality_satisfaction_ratio(config.epsilon);
  out.mean_cycle_error = mean(stats.cycle_errors);
  out.total_cost = stats.total_cost;
  out.seconds = watch.elapsed_seconds();
  out.stats = stats;
  return out;
}

}  // namespace drcell::core
