#include "cs/knn_inference.h"

#include <algorithm>
#include <cmath>

namespace drcell::cs {

double euclidean_distance(const CellCoord& a, const CellCoord& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

KnnInference::KnnInference(std::vector<CellCoord> coords, KnnOptions options)
    : coords_(std::move(coords)), options_(options) {
  DRCELL_CHECK_MSG(!coords_.empty(), "KNN requires cell coordinates");
  DRCELL_CHECK(options_.k > 0);
  DRCELL_CHECK(options_.distance_power >= 0.0);
}

Matrix KnnInference::infer(const PartialMatrix& observed) const {
  const std::size_t m = observed.rows();
  const std::size_t n = observed.cols();
  DRCELL_CHECK_MSG(m == coords_.size(),
                   "KNN: row count does not match coordinate count");
  const double global_mean = observed.observed_mean();
  Matrix est(m, n, global_mean);

  // Per-cell temporal means (fallback when a cycle has no observations).
  std::vector<double> cell_mean(m, global_mean);
  for (std::size_t r = 0; r < m; ++r) {
    const auto& cols = observed.observed_cols_in_row(r);
    if (cols.empty()) continue;
    double s = 0.0;
    for (std::size_t c : cols) s += observed.value(r, c);
    cell_mean[r] = s / static_cast<double>(cols.size());
  }

  for (std::size_t c = 0; c < n; ++c) {
    const auto& obs_rows = observed.observed_rows_in_col(c);
    for (std::size_t r = 0; r < m; ++r) {
      if (observed.observed(r, c)) {
        est(r, c) = observed.value(r, c);
        continue;
      }
      if (obs_rows.empty()) {
        est(r, c) = cell_mean[r];
        continue;
      }
      // k nearest observed cells in this cycle.
      std::vector<std::pair<double, std::size_t>> by_dist;
      by_dist.reserve(obs_rows.size());
      for (std::size_t o : obs_rows)
        by_dist.emplace_back(euclidean_distance(coords_[r], coords_[o]), o);
      const std::size_t k = std::min(options_.k, by_dist.size());
      std::partial_sort(by_dist.begin(), by_dist.begin() + k, by_dist.end());
      double wsum = 0.0, vsum = 0.0;
      for (std::size_t i = 0; i < k; ++i) {
        const auto [d, o] = by_dist[i];
        // A coincident observed cell determines the value outright.
        if (d == 0.0) {
          wsum = 1.0;
          vsum = observed.value(o, c);
          break;
        }
        const double w = 1.0 / std::pow(d, options_.distance_power);
        wsum += w;
        vsum += w * observed.value(o, c);
      }
      est(r, c) = vsum / wsum;
    }
  }
  return est;
}

}  // namespace drcell::cs
