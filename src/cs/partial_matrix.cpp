#include "cs/partial_matrix.h"

#include <algorithm>
#include <bit>

namespace drcell::cs {

namespace {
/// Inserts v into a sorted index list (no-op precondition: v absent).
void sorted_insert(std::vector<std::size_t>& list, std::size_t v) {
  list.insert(std::lower_bound(list.begin(), list.end(), v), v);
}

/// Removes v from a sorted index list (precondition: v present).
void sorted_erase(std::vector<std::size_t>& list, std::size_t v) {
  list.erase(std::lower_bound(list.begin(), list.end(), v));
}
}  // namespace

PartialMatrix::PartialMatrix(std::size_t rows, std::size_t cols)
    : values_(rows, cols),
      mask_(rows * cols, 0),
      row_obs_(rows),
      col_obs_(cols) {}

PartialMatrix::PartialMatrix(const PartialMatrix& other)
    : values_(other.values_),
      mask_(other.mask_),
      observed_count_(other.observed_count_),
      row_obs_(other.row_obs_),
      col_obs_(other.col_obs_) {
  // Valid flag first (acquire), value only behind it — reading fp_ before
  // fp_valid_ could capture a stale hash published as valid by a racing
  // fingerprint() on `other`. The new object is unshared, so its own
  // stores can be relaxed.
  if (other.fp_valid_.load(std::memory_order_acquire)) {
    fp_.store(other.fp_.load(std::memory_order_relaxed),
              std::memory_order_relaxed);
    fp_valid_.store(true, std::memory_order_relaxed);
  }
}

PartialMatrix::PartialMatrix(PartialMatrix&& other) noexcept
    : values_(std::move(other.values_)),
      mask_(std::move(other.mask_)),
      observed_count_(other.observed_count_),
      row_obs_(std::move(other.row_obs_)),
      col_obs_(std::move(other.col_obs_)),
      fp_computations_(
          other.fp_computations_.load(std::memory_order_relaxed)) {
  if (other.fp_valid_.load(std::memory_order_acquire)) {
    fp_.store(other.fp_.load(std::memory_order_relaxed),
              std::memory_order_relaxed);
    fp_valid_.store(true, std::memory_order_relaxed);
  }
}

PartialMatrix& PartialMatrix::operator=(const PartialMatrix& other) {
  if (this == &other) return *this;
  values_ = other.values_;
  mask_ = other.mask_;
  observed_count_ = other.observed_count_;
  row_obs_ = other.row_obs_;
  col_obs_ = other.col_obs_;
  // Valid flag first (acquire), value only behind it — see the copy
  // constructor. Assignment targets are single-threaded by contract (only
  // const access is concurrency-safe), so the local stores are relaxed.
  if (other.fp_valid_.load(std::memory_order_acquire)) {
    fp_.store(other.fp_.load(std::memory_order_relaxed),
              std::memory_order_relaxed);
    fp_valid_.store(true, std::memory_order_relaxed);
  } else {
    fp_valid_.store(false, std::memory_order_relaxed);
  }
  // Like the copy constructor: a copy starts with a fresh instrumentation
  // counter (it has computed nothing itself yet).
  fp_computations_.store(0, std::memory_order_relaxed);
  return *this;
}

PartialMatrix& PartialMatrix::operator=(PartialMatrix&& other) noexcept {
  if (this == &other) return *this;
  values_ = std::move(other.values_);
  mask_ = std::move(other.mask_);
  observed_count_ = other.observed_count_;
  row_obs_ = std::move(other.row_obs_);
  col_obs_ = std::move(other.col_obs_);
  if (other.fp_valid_.load(std::memory_order_acquire)) {
    fp_.store(other.fp_.load(std::memory_order_relaxed),
              std::memory_order_relaxed);
    fp_valid_.store(true, std::memory_order_relaxed);
  } else {
    fp_valid_.store(false, std::memory_order_relaxed);
  }
  // Like the move constructor: the counter travels with the content.
  fp_computations_.store(
      other.fp_computations_.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  return *this;
}

double PartialMatrix::value(std::size_t r, std::size_t c) const {
  DRCELL_CHECK_MSG(observed(r, c), "reading unobserved PartialMatrix entry");
  return values_(r, c);
}

void PartialMatrix::set(std::size_t r, std::size_t c, double v) {
  const std::size_t i = index(r, c);
  if (mask_[i] == 0) {
    mask_[i] = 1;
    ++observed_count_;
    sorted_insert(row_obs_[r], c);
    sorted_insert(col_obs_[c], r);
  } else if (std::bit_cast<std::uint64_t>(values_(r, c)) ==
             std::bit_cast<std::uint64_t>(v)) {
    // Re-observing an entry with the identical value (LOO restore) leaves
    // the content — and therefore the fingerprint — unchanged.
    return;
  }
  values_(r, c) = v;
  invalidate_fingerprint();
}

void PartialMatrix::clear(std::size_t r, std::size_t c) {
  const std::size_t i = index(r, c);
  if (mask_[i] != 0) {
    mask_[i] = 0;
    --observed_count_;
    sorted_erase(row_obs_[r], c);
    sorted_erase(col_obs_[c], r);
    invalidate_fingerprint();
  }
  values_(r, c) = 0.0;
}

std::size_t PartialMatrix::observed_count_in_col(std::size_t c) const {
  DRCELL_CHECK_MSG(c < cols(), "PartialMatrix column out of range");
  return col_obs_[c].size();
}

std::size_t PartialMatrix::observed_count_in_row(std::size_t r) const {
  DRCELL_CHECK_MSG(r < rows(), "PartialMatrix row out of range");
  return row_obs_[r].size();
}

const std::vector<std::size_t>& PartialMatrix::observed_rows_in_col(
    std::size_t c) const {
  DRCELL_CHECK_MSG(c < cols(), "PartialMatrix column out of range");
  return col_obs_[c];
}

const std::vector<std::size_t>& PartialMatrix::observed_cols_in_row(
    std::size_t r) const {
  DRCELL_CHECK_MSG(r < rows(), "PartialMatrix row out of range");
  return row_obs_[r];
}

double PartialMatrix::observed_mean() const {
  if (observed_count_ == 0) return 0.0;
  double s = 0.0;
  for (std::size_t r = 0; r < row_obs_.size(); ++r)
    for (std::size_t c : row_obs_[r]) s += values_(r, c);
  return s / static_cast<double>(observed_count_);
}

std::uint64_t PartialMatrix::fingerprint() const {
  if (fp_valid_.load(std::memory_order_acquire))
    return fp_.load(std::memory_order_relaxed);
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
    h ^= h >> 29;
  };
  mix(rows());
  mix(cols());
  mix(observed_count_);
  const std::size_t n = cols();
  for (std::size_t r = 0; r < row_obs_.size(); ++r)
    for (std::size_t c : row_obs_[r]) {
      mix(r * n + c);
      mix(std::bit_cast<std::uint64_t>(values_(r, c)));
    }
  fp_computations_.fetch_add(1, std::memory_order_relaxed);
  fp_.store(h, std::memory_order_relaxed);
  fp_valid_.store(true, std::memory_order_release);
  return h;
}

}  // namespace drcell::cs
