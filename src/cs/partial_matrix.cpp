#include "cs/partial_matrix.h"

namespace drcell::cs {

PartialMatrix::PartialMatrix(std::size_t rows, std::size_t cols)
    : values_(rows, cols), mask_(rows * cols, 0) {}

double PartialMatrix::value(std::size_t r, std::size_t c) const {
  DRCELL_CHECK_MSG(observed(r, c), "reading unobserved PartialMatrix entry");
  return values_(r, c);
}

void PartialMatrix::set(std::size_t r, std::size_t c, double v) {
  const std::size_t i = index(r, c);
  if (mask_[i] == 0) {
    mask_[i] = 1;
    ++observed_count_;
  }
  values_(r, c) = v;
}

void PartialMatrix::clear(std::size_t r, std::size_t c) {
  const std::size_t i = index(r, c);
  if (mask_[i] != 0) {
    mask_[i] = 0;
    --observed_count_;
  }
  values_(r, c) = 0.0;
}

std::size_t PartialMatrix::observed_count_in_col(std::size_t c) const {
  std::size_t n = 0;
  for (std::size_t r = 0; r < rows(); ++r)
    if (observed(r, c)) ++n;
  return n;
}

std::size_t PartialMatrix::observed_count_in_row(std::size_t r) const {
  std::size_t n = 0;
  for (std::size_t c = 0; c < cols(); ++c)
    if (observed(r, c)) ++n;
  return n;
}

std::vector<std::size_t> PartialMatrix::observed_rows_in_col(
    std::size_t c) const {
  std::vector<std::size_t> out;
  for (std::size_t r = 0; r < rows(); ++r)
    if (observed(r, c)) out.push_back(r);
  return out;
}

std::vector<std::size_t> PartialMatrix::observed_cols_in_row(
    std::size_t r) const {
  std::vector<std::size_t> out;
  for (std::size_t c = 0; c < cols(); ++c)
    if (observed(r, c)) out.push_back(c);
  return out;
}

double PartialMatrix::observed_mean() const {
  if (observed_count_ == 0) return 0.0;
  double s = 0.0;
  for (std::size_t r = 0; r < rows(); ++r)
    for (std::size_t c = 0; c < cols(); ++c)
      if (observed(r, c)) s += values_(r, c);
  return s / static_cast<double>(observed_count_);
}

}  // namespace drcell::cs
