// Inference committee: runs several heterogeneous engines and measures
// their per-entry disagreement. This is the substrate of the QBC baseline
// (Sec. 5.2): "allocate the next task to the cell with the largest variance
// among the inferred values of different algorithms".
#pragma once

#include <vector>

#include "cs/inference_engine.h"

namespace drcell::cs {

class InferenceCommittee {
 public:
  explicit InferenceCommittee(std::vector<InferenceEnginePtr> members);

  std::size_t size() const { return members_.size(); }
  const InferenceEngine& member(std::size_t i) const { return *members_.at(i); }

  /// Runs every member on the observation. Results are index-aligned with
  /// the member list.
  std::vector<Matrix> infer_all(const PartialMatrix& observed) const;

  /// Population variance of member predictions for every entry.
  static Matrix disagreement(const std::vector<Matrix>& predictions);

  /// Element-wise mean of member predictions.
  static Matrix mean_prediction(const std::vector<Matrix>& predictions);

 private:
  std::vector<InferenceEnginePtr> members_;
};

}  // namespace drcell::cs
