// Inference committee: runs several heterogeneous engines and measures
// their per-entry disagreement. This is the substrate of the QBC baseline
// (Sec. 5.2): "allocate the next task to the cell with the largest variance
// among the inferred values of different algorithms".
//
// infer_all fans the members out over a util::ThreadPool (the process-wide
// pool by default). Results are written by member index, so the output is
// bit-identical to the serial loop for any worker count.
#pragma once

#include <vector>

#include "cs/inference_engine.h"
#include "util/thread_pool.h"

namespace drcell::cs {

class InferenceCommittee {
 public:
  explicit InferenceCommittee(std::vector<InferenceEnginePtr> members);

  std::size_t size() const { return members_.size(); }
  const InferenceEngine& member(std::size_t i) const { return *members_.at(i); }

  /// Overrides the pool used by infer_all. nullptr restores the global pool;
  /// a pool with 0 workers gives strictly serial execution.
  void set_thread_pool(util::ThreadPool* pool) { pool_ = pool; }

  /// Runs every member on the observation. Results are index-aligned with
  /// the member list.
  std::vector<Matrix> infer_all(const PartialMatrix& observed) const;

  /// Population variance of member predictions for every entry.
  static Matrix disagreement(const std::vector<Matrix>& predictions);

  /// Element-wise mean of member predictions.
  static Matrix mean_prediction(const std::vector<Matrix>& predictions);

 private:
  std::vector<InferenceEnginePtr> members_;
  util::ThreadPool* pool_ = nullptr;  // nullptr -> ThreadPool::global()
};

}  // namespace drcell::cs
