// Baseline inference engines with closed-form estimates: global/cell means.
#pragma once

#include "cs/inference_engine.h"

namespace drcell::cs {

/// Estimates every unobserved entry by the observed mean of its cycle
/// (column), falling back to the cell (row) mean and the global mean.
class MeanInference final : public InferenceEngine {
 public:
  Matrix infer(const PartialMatrix& observed) const override;
  std::string name() const override { return "mean"; }
};

}  // namespace drcell::cs
