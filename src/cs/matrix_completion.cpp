#include "cs/matrix_completion.h"

#include <algorithm>
#include <cmath>

#include "linalg/solvers.h"
#include "util/rng.h"

namespace drcell::cs {

MatrixCompletion::MatrixCompletion(MatrixCompletionOptions options)
    : options_(options) {
  DRCELL_CHECK(options_.rank > 0);
  DRCELL_CHECK(options_.lambda > 0.0);
  DRCELL_CHECK(options_.iterations > 0);
}

MatrixCompletion::Fit MatrixCompletion::fit(
    const PartialMatrix& observed) const {
  const std::size_t m = observed.rows();
  const std::size_t n = observed.cols();
  DRCELL_CHECK_MSG(m > 0 && n > 0, "matrix completion on empty matrix");

  Fit result;
  result.mu = observed.observed_mean();
  // The effective rank can never exceed the observation budget, and factors
  // beyond half of either dimension cannot be identified from partial data
  // without overfitting.
  const std::size_t dim_cap = std::max<std::size_t>(1, std::min(m, n) / 2);
  result.rank = std::min(
      {options_.rank, dim_cap,
       std::max<std::size_t>(observed.observed_count(), 1)});
  const std::size_t rank = result.rank;

  Rng rng(options_.seed);
  result.row_factors = Matrix(m, rank);
  result.col_factors = Matrix(n, rank);
  if (observed.observed_count() == 0) return result;
  const double init_sd = 1.0;
  for (double& x : result.row_factors.data()) x = rng.normal(0.0, init_sd);
  for (double& x : result.col_factors.data()) x = rng.normal(0.0, init_sd);

  // Pre-compute observation lists.
  std::vector<std::vector<std::size_t>> cols_of_row(m), rows_of_col(n);
  for (std::size_t r = 0; r < m; ++r)
    cols_of_row[r] = observed.observed_cols_in_row(r);
  for (std::size_t c = 0; c < n; ++c)
    rows_of_col[c] = observed.observed_rows_in_col(c);

  Matrix& row_f = result.row_factors;
  Matrix& col_f = result.col_factors;
  const double mu = result.mu;
  for (std::size_t it = 0; it < options_.iterations; ++it) {
    double max_change = 0.0;
    // Update row factors: for each row solve a ridge regression on the
    // column factors of its observed entries.
    for (std::size_t r = 0; r < m; ++r) {
      const auto& cols = cols_of_row[r];
      if (cols.empty()) {
        // No data for this cell in the window; shrink towards the mean.
        for (std::size_t k = 0; k < rank; ++k) row_f(r, k) = 0.0;
        continue;
      }
      Matrix a(cols.size(), rank);
      std::vector<double> b(cols.size());
      for (std::size_t i = 0; i < cols.size(); ++i) {
        for (std::size_t k = 0; k < rank; ++k) a(i, k) = col_f(cols[i], k);
        b[i] = observed.value(r, cols[i]) - mu;
      }
      // Weighted-lambda ALS (Zhou et al.): scaling the ridge by the number
      // of observations keeps sparsely observed rows from blowing up to
      // compensate for small factors on the other side.
      const auto x = ridge_solve(
          a, b, options_.lambda * static_cast<double>(cols.size()));
      for (std::size_t k = 0; k < rank; ++k) {
        max_change = std::max(max_change, std::fabs(row_f(r, k) - x[k]));
        row_f(r, k) = x[k];
      }
    }
    // Update column factors symmetrically.
    for (std::size_t c = 0; c < n; ++c) {
      const auto& rows = rows_of_col[c];
      if (rows.empty()) {
        for (std::size_t k = 0; k < rank; ++k) col_f(c, k) = 0.0;
        continue;
      }
      Matrix a(rows.size(), rank);
      std::vector<double> b(rows.size());
      for (std::size_t i = 0; i < rows.size(); ++i) {
        for (std::size_t k = 0; k < rank; ++k) a(i, k) = row_f(rows[i], k);
        b[i] = observed.value(rows[i], c) - mu;
      }
      const auto x = ridge_solve(
          a, b, options_.lambda * static_cast<double>(rows.size()));
      for (std::size_t k = 0; k < rank; ++k) {
        max_change = std::max(max_change, std::fabs(col_f(c, k) - x[k]));
        col_f(c, k) = x[k];
      }
    }
    if (max_change < options_.convergence_tol) break;
  }
  return result;
}

Matrix MatrixCompletion::infer(const PartialMatrix& observed) const {
  const Fit f = fit(observed);
  Matrix est = f.row_factors.matmul(f.col_factors.transposed());
  est.apply([&f](double x) { return x + f.mu; });
  // Observed entries are known exactly — keep them.
  for (std::size_t r = 0; r < observed.rows(); ++r)
    for (std::size_t c = 0; c < observed.cols(); ++c)
      if (observed.observed(r, c)) est(r, c) = observed.value(r, c);
  DRCELL_CHECK_MSG(!est.has_non_finite(),
                   "matrix completion produced non-finite values");
  return est;
}

std::vector<double> MatrixCompletion::loo_column_predictions(
    const PartialMatrix& observed, std::size_t col) const {
  DRCELL_CHECK(col < observed.cols());
  const Fit f = fit(observed);
  const std::size_t rank = f.rank;
  const auto rows_in_col = observed.observed_rows_in_col(col);
  std::vector<double> predictions;
  predictions.reserve(rows_in_col.size());

  for (std::size_t cell : rows_in_col) {
    // Both factors touching the held-out entry are re-solved without it —
    // leaving either at its full-fit value leaks the withheld observation
    // (severely so in sparse windows, where one value can dominate its own
    // cell's row factor) and makes the quality gate overconfident.
    //
    // Row factor of the held-out cell from its *other* observations
    // (column factors fixed):
    const auto cols_of_row = observed.observed_cols_in_row(cell);
    std::vector<double> u(rank, 0.0);
    if (cols_of_row.size() > 1) {
      Matrix a(cols_of_row.size() - 1, rank);
      std::vector<double> b;
      b.reserve(cols_of_row.size() - 1);
      std::size_t i = 0;
      for (std::size_t c : cols_of_row) {
        if (c == col) continue;
        for (std::size_t k = 0; k < rank; ++k) a(i, k) = f.col_factors(c, k);
        b.push_back(observed.value(cell, c) - f.mu);
        ++i;
      }
      u = ridge_solve(
          a, b,
          options_.lambda * static_cast<double>(cols_of_row.size() - 1));
    }
    // Assessed column's factor without the held-out cell (row factors
    // fixed):
    std::vector<double> v(rank, 0.0);
    if (rows_in_col.size() > 1) {
      Matrix a(rows_in_col.size() - 1, rank);
      std::vector<double> b;
      b.reserve(rows_in_col.size() - 1);
      std::size_t i = 0;
      for (std::size_t r : rows_in_col) {
        if (r == cell) continue;
        for (std::size_t k = 0; k < rank; ++k) a(i, k) = f.row_factors(r, k);
        b.push_back(observed.value(r, col) - f.mu);
        ++i;
      }
      v = ridge_solve(
          a, b, options_.lambda * static_cast<double>(rows_in_col.size() - 1));
    }
    double pred = f.mu;
    for (std::size_t k = 0; k < rank; ++k) pred += u[k] * v[k];
    predictions.push_back(pred);
  }
  return predictions;
}

}  // namespace drcell::cs
