#include "cs/matrix_completion.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "linalg/solvers.h"
#include "util/rng.h"

namespace drcell::cs {

namespace {
/// RMSE of `mu + row_factors colᵀ` against the window's observed entries.
double observed_rmse(const Matrix& row_factors, const Matrix& col_factors,
                     double mu, const PartialMatrix& observed) {
  double sq = 0.0;
  std::size_t count = 0;
  const std::size_t rank = row_factors.cols();
  for (std::size_t r = 0; r < observed.rows(); ++r)
    for (std::size_t c = 0; c < observed.cols(); ++c) {
      if (!observed.observed(r, c)) continue;
      double pred = mu;
      for (std::size_t k = 0; k < rank; ++k)
        pred += row_factors(r, k) * col_factors(c, k);
      const double d = pred - observed.value(r, c);
      sq += d * d;
      ++count;
    }
  return count ? std::sqrt(sq / static_cast<double>(count)) : 0.0;
}

/// Order-sensitive 64-bit hash of the window's shape and observed entries.
/// A fingerprint match is treated as "same window" and returns the cached
/// factors without touching the solver; distinct windows colliding is a
/// ~2^-64 event per comparison, which we accept rather than storing and
/// comparing a full copy of the previous window.
std::uint64_t window_fingerprint(const PartialMatrix& observed) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
    h ^= h >> 29;
  };
  mix(observed.rows());
  mix(observed.cols());
  mix(observed.observed_count());
  for (std::size_t r = 0; r < observed.rows(); ++r)
    for (std::size_t c = 0; c < observed.cols(); ++c)
      if (observed.observed(r, c)) {
        mix(r * observed.cols() + c);
        mix(std::bit_cast<std::uint64_t>(observed.value(r, c)));
      }
  return h;
}
}  // namespace

MatrixCompletion::MatrixCompletion(MatrixCompletionOptions options)
    : options_(options) {
  DRCELL_CHECK(options_.rank > 0);
  DRCELL_CHECK(options_.lambda > 0.0);
  DRCELL_CHECK(options_.iterations > 0);
  DRCELL_CHECK(options_.warm_iterations > 0);
  DRCELL_CHECK(options_.warm_trust_factor >= 1.0);
  DRCELL_CHECK(options_.warm_rmse_factor >= options_.warm_trust_factor);
  DRCELL_CHECK(options_.frobenius_tol >= 0.0);
}

void MatrixCompletion::reset_warm_start() const {
  std::lock_guard<std::mutex> lock(warm_mutex_);
  warm_.reset();
}

MatrixCompletion::Fit MatrixCompletion::fit(
    const PartialMatrix& observed) const {
  const std::size_t m = observed.rows();
  const std::size_t n = observed.cols();
  DRCELL_CHECK_MSG(m > 0 && n > 0, "matrix completion on empty matrix");

  Fit result;
  result.mu = observed.observed_mean();
  // The effective rank can never exceed the observation budget, and factors
  // beyond half of either dimension cannot be identified from partial data
  // without overfitting.
  const std::size_t dim_cap = std::max<std::size_t>(1, std::min(m, n) / 2);
  result.rank = std::min(
      {options_.rank, dim_cap,
       std::max<std::size_t>(observed.observed_count(), 1)});
  const std::size_t rank = result.rank;

  result.row_factors = Matrix(m, rank);
  result.col_factors = Matrix(n, rank);
  if (observed.observed_count() == 0) return result;

  // Resume from the previous window's converged factors when they fit this
  // window's shape; otherwise start from random noise. A fingerprint match
  // means the window is unchanged since the cached fit converged — return it
  // outright (repeated infer/LOO calls per cycle then cost one hash pass).
  const std::uint64_t fingerprint =
      options_.warm_start ? window_fingerprint(observed) : 0;
  bool warm_resumed = false;
  bool warm_trusted = false;
  if (options_.warm_start) {
    std::lock_guard<std::mutex> lock(warm_mutex_);
    if (warm_.has_value() && warm_->fit.rank == rank &&
        warm_->fit.row_factors.rows() == m &&
        warm_->fit.col_factors.rows() == n) {
      if (warm_->fingerprint == fingerprint) return warm_->fit;
      // A matching shape is not enough: after an episode reset or a window
      // slide the columns hold different cycles, and polishing unrelated
      // factors for a few sweeps would silently under-converge. Resume only
      // if the cached factors still predict the new observations about as
      // well as they predicted their own — and grant the reduced sweep
      // budget only below the (tighter) trust threshold.
      const double init_rmse = observed_rmse(
          warm_->fit.row_factors, warm_->fit.col_factors, result.mu, observed);
      if (init_rmse <=
          options_.warm_rmse_factor * warm_->rmse + options_.convergence_tol) {
        result.row_factors = warm_->fit.row_factors;
        result.col_factors = warm_->fit.col_factors;
        warm_resumed = true;
        warm_trusted =
            init_rmse <= options_.warm_trust_factor * warm_->rmse +
                             options_.convergence_tol;
      }
    }
  }
  if (!warm_resumed) {
    // Same draw stream as the hand-rolled normal(0, 1) loops this replaces.
    Rng rng(options_.seed);
    result.row_factors = random_normal_matrix(m, rank, rng);
    result.col_factors = random_normal_matrix(n, rank, rng);
  }

  // Pre-compute observation lists.
  std::vector<std::vector<std::size_t>> cols_of_row(m), rows_of_col(n);
  std::size_t max_obs = 1;
  for (std::size_t r = 0; r < m; ++r) {
    cols_of_row[r] = observed.observed_cols_in_row(r);
    max_obs = std::max(max_obs, cols_of_row[r].size());
  }
  for (std::size_t c = 0; c < n; ++c) {
    rows_of_col[c] = observed.observed_rows_in_col(c);
    max_obs = std::max(max_obs, rows_of_col[c].size());
  }

  Matrix& row_f = result.row_factors;
  Matrix& col_f = result.col_factors;
  const double mu = result.mu;
  // One design-matrix/rhs workspace reused across every per-row and
  // per-column solve (resize() recycles the allocation).
  Matrix a(max_obs, rank);
  std::vector<double> b(max_obs);
  const std::size_t sweep_budget =
      warm_trusted ? std::min(options_.warm_iterations, options_.iterations)
                   : options_.iterations;
  for (std::size_t it = 0; it < sweep_budget; ++it) {
    double max_change = 0.0;
    double delta_sq = 0.0;   // Frobenius² of this sweep's factor delta
    double factor_sq = 0.0;  // Frobenius² of the updated factors
    // Update row factors: for each row solve a ridge regression on the
    // column factors of its observed entries.
    for (std::size_t r = 0; r < m; ++r) {
      const auto& cols = cols_of_row[r];
      if (cols.empty()) {
        // No data for this cell in the window; shrink towards the mean.
        for (std::size_t k = 0; k < rank; ++k) row_f(r, k) = 0.0;
        continue;
      }
      a.resize(cols.size(), rank);
      b.resize(cols.size());
      for (std::size_t i = 0; i < cols.size(); ++i) {
        const auto src = col_f.row(cols[i]);
        std::copy(src.begin(), src.end(), a.row(i).begin());
        b[i] = observed.value(r, cols[i]) - mu;
      }
      // Weighted-lambda ALS (Zhou et al.): scaling the ridge by the number
      // of observations keeps sparsely observed rows from blowing up to
      // compensate for small factors on the other side.
      const auto x = ridge_solve(
          a, b, options_.lambda * static_cast<double>(cols.size()));
      for (std::size_t k = 0; k < rank; ++k) {
        const double d = row_f(r, k) - x[k];
        max_change = std::max(max_change, std::fabs(d));
        delta_sq += d * d;
        factor_sq += x[k] * x[k];
        row_f(r, k) = x[k];
      }
    }
    // Update column factors symmetrically.
    for (std::size_t c = 0; c < n; ++c) {
      const auto& rows = rows_of_col[c];
      if (rows.empty()) {
        for (std::size_t k = 0; k < rank; ++k) col_f(c, k) = 0.0;
        continue;
      }
      a.resize(rows.size(), rank);
      b.resize(rows.size());
      for (std::size_t i = 0; i < rows.size(); ++i) {
        const auto src = row_f.row(rows[i]);
        std::copy(src.begin(), src.end(), a.row(i).begin());
        b[i] = observed.value(rows[i], c) - mu;
      }
      const auto x = ridge_solve(
          a, b, options_.lambda * static_cast<double>(rows.size()));
      for (std::size_t k = 0; k < rank; ++k) {
        const double d = col_f(c, k) - x[k];
        max_change = std::max(max_change, std::fabs(d));
        delta_sq += d * d;
        factor_sq += x[k] * x[k];
        col_f(c, k) = x[k];
      }
    }
    if (max_change < options_.convergence_tol) break;
    if (options_.frobenius_tol > 0.0 &&
        std::sqrt(delta_sq) <
            options_.frobenius_tol * std::max(std::sqrt(factor_sq), 1.0))
      break;
  }

  if (options_.warm_start) {
    const double final_rmse =
        observed_rmse(row_f, col_f, result.mu, observed);
    std::lock_guard<std::mutex> lock(warm_mutex_);
    warm_ = WarmState{result, fingerprint, final_rmse};
  }
  return result;
}

Matrix MatrixCompletion::infer(const PartialMatrix& observed) const {
  const Fit f = fit(observed);
  Matrix est = f.row_factors.matmul(f.col_factors.transposed());
  est.apply([&f](double x) { return x + f.mu; });
  // Observed entries are known exactly — keep them.
  for (std::size_t r = 0; r < observed.rows(); ++r)
    for (std::size_t c = 0; c < observed.cols(); ++c)
      if (observed.observed(r, c)) est(r, c) = observed.value(r, c);
  DRCELL_CHECK_MSG(!est.has_non_finite(),
                   "matrix completion produced non-finite values");
  return est;
}

std::vector<double> MatrixCompletion::loo_column_predictions(
    const PartialMatrix& observed, std::size_t col) const {
  DRCELL_CHECK(col < observed.cols());
  const Fit f = fit(observed);
  const std::size_t rank = f.rank;
  const auto rows_in_col = observed.observed_rows_in_col(col);
  std::vector<double> predictions;
  predictions.reserve(rows_in_col.size());

  for (std::size_t cell : rows_in_col) {
    // Both factors touching the held-out entry are re-solved without it —
    // leaving either at its full-fit value leaks the withheld observation
    // (severely so in sparse windows, where one value can dominate its own
    // cell's row factor) and makes the quality gate overconfident.
    //
    // Row factor of the held-out cell from its *other* observations
    // (column factors fixed):
    const auto cols_of_row = observed.observed_cols_in_row(cell);
    std::vector<double> u(rank, 0.0);
    if (cols_of_row.size() > 1) {
      Matrix a(cols_of_row.size() - 1, rank);
      std::vector<double> b;
      b.reserve(cols_of_row.size() - 1);
      std::size_t i = 0;
      for (std::size_t c : cols_of_row) {
        if (c == col) continue;
        for (std::size_t k = 0; k < rank; ++k) a(i, k) = f.col_factors(c, k);
        b.push_back(observed.value(cell, c) - f.mu);
        ++i;
      }
      u = ridge_solve(
          a, b,
          options_.lambda * static_cast<double>(cols_of_row.size() - 1));
    }
    // Assessed column's factor without the held-out cell (row factors
    // fixed):
    std::vector<double> v(rank, 0.0);
    if (rows_in_col.size() > 1) {
      Matrix a(rows_in_col.size() - 1, rank);
      std::vector<double> b;
      b.reserve(rows_in_col.size() - 1);
      std::size_t i = 0;
      for (std::size_t r : rows_in_col) {
        if (r == cell) continue;
        for (std::size_t k = 0; k < rank; ++k) a(i, k) = f.row_factors(r, k);
        b.push_back(observed.value(r, col) - f.mu);
        ++i;
      }
      v = ridge_solve(
          a, b, options_.lambda * static_cast<double>(rows_in_col.size() - 1));
    }
    double pred = f.mu;
    for (std::size_t k = 0; k < rank; ++k) pred += u[k] * v[k];
    predictions.push_back(pred);
  }
  return predictions;
}

}  // namespace drcell::cs
