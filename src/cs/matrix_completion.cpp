#include "cs/matrix_completion.h"

#include <algorithm>
#include <cmath>

#include "linalg/solvers.h"
#include "util/chunking.h"
#include "util/fault_injection.h"
#include "util/rng.h"

namespace drcell::cs {

double observed_rmse(const Matrix& row_factors, const Matrix& col_factors,
                     double mu, const PartialMatrix& observed) {
  double sq = 0.0;
  const std::size_t count = observed.observed_count();
  const std::size_t rank = row_factors.cols();
  for (std::size_t r = 0; r < observed.rows(); ++r) {
    const auto row_f = row_factors.row(r);
    for (std::size_t c : observed.observed_cols_in_row(r)) {
      double pred = mu;
      const auto col_f = col_factors.row(c);
      for (std::size_t k = 0; k < rank; ++k) pred += row_f[k] * col_f[k];
      const double d = pred - observed.value(r, c);
      sq += d * d;
    }
  }
  return count ? std::sqrt(sq / static_cast<double>(count)) : 0.0;
}

namespace {
// Weighted chunking policy for the ALS/LOO fan-outs (shared implementation
// in util/chunking.h; boundaries only group solves, never change the
// arithmetic). The ridge solves here are hundreds of ns each, so the
// default 256-weight floor keeps dispatch overhead in the noise while
// letting small windows still split across lanes.
constexpr util::ChunkPolicy kSolveChunkPolicy{};

std::vector<std::size_t> chunk_bounds(std::size_t count, std::size_t lanes,
                                      std::size_t total_obs,
                                      const std::vector<std::size_t>& weight) {
  return util::chunk_bounds(count, lanes, total_obs, weight,
                            kSolveChunkPolicy);
}
}  // namespace

MatrixCompletion::MatrixCompletion(MatrixCompletionOptions options)
    : options_(options) {
  DRCELL_CHECK(options_.rank > 0);
  DRCELL_CHECK(options_.lambda > 0.0);
  DRCELL_CHECK(options_.iterations > 0);
  DRCELL_CHECK(options_.warm_iterations > 0);
  DRCELL_CHECK(options_.warm_trust_factor >= 1.0);
  DRCELL_CHECK(options_.warm_rmse_factor >= options_.warm_trust_factor);
  DRCELL_CHECK(options_.frobenius_tol >= 0.0);
}

void MatrixCompletion::reset_warm_start() const {
  std::lock_guard<std::mutex> lock(warm_mutex_);
  warm_.reset();
}

MatrixCompletion::Fit MatrixCompletion::fit(
    const PartialMatrix& observed) const {
  // Robustness drill hook: an armed `als.solve` fault surfaces here as an
  // InjectedFault thrown out of the environment step that requested the
  // inference — the deep mid-wave throw the scheduler's campaign fault
  // domains must contain.
  DRCELL_FAULT_SITE("als.solve", "");
  const std::size_t m = observed.rows();
  const std::size_t n = observed.cols();
  DRCELL_CHECK_MSG(m > 0 && n > 0, "matrix completion on empty matrix");

  Fit result;
  result.mu = observed.observed_mean();
  // The effective rank can never exceed the observation budget, and factors
  // beyond half of either dimension cannot be identified from partial data
  // without overfitting.
  const std::size_t dim_cap = std::max<std::size_t>(1, std::min(m, n) / 2);
  result.rank = std::min(
      {options_.rank, dim_cap,
       std::max<std::size_t>(observed.observed_count(), 1)});
  const std::size_t rank = result.rank;

  result.row_factors = Matrix(m, rank);
  result.col_factors = Matrix(n, rank);
  if (observed.observed_count() == 0) return result;

  // Resume from the previous window's converged factors when they fit this
  // window's shape; otherwise start from random noise. A fingerprint match
  // means the window is unchanged since the cached fit converged — return it
  // outright. The fingerprint itself is cached inside the PartialMatrix, so
  // repeated infer + LOO-gate calls per sensing step share one hash pass.
  const std::uint64_t fingerprint =
      options_.warm_start ? observed.fingerprint() : 0;
  bool warm_resumed = false;
  bool warm_trusted = false;
  if (options_.warm_start) {
    std::lock_guard<std::mutex> lock(warm_mutex_);
    if (warm_.has_value() && warm_->fit.rank == rank &&
        warm_->fit.row_factors.rows() == m &&
        warm_->fit.col_factors.rows() == n) {
      if (warm_->fingerprint == fingerprint) return warm_->fit;
      // A matching shape is not enough: after an episode reset or a window
      // slide the columns hold different cycles, and polishing unrelated
      // factors for a few sweeps would silently under-converge. Resume only
      // if the cached factors still predict the new observations about as
      // well as they predicted their own — and grant the reduced sweep
      // budget only below the (tighter) trust threshold.
      const double init_rmse = observed_rmse(
          warm_->fit.row_factors, warm_->fit.col_factors, result.mu, observed);
      if (init_rmse <=
          options_.warm_rmse_factor * warm_->rmse + options_.convergence_tol) {
        result.row_factors = warm_->fit.row_factors;
        result.col_factors = warm_->fit.col_factors;
        warm_resumed = true;
        warm_trusted =
            init_rmse <= options_.warm_trust_factor * warm_->rmse +
                             options_.convergence_tol;
      }
    }
  }
  if (!warm_resumed) {
    // Same draw stream as the hand-rolled normal(0, 1) loops this replaces.
    Rng rng(options_.seed);
    result.row_factors = random_normal_matrix(m, rank, rng);
    result.col_factors = random_normal_matrix(n, rank, rng);
  }

  // Per-row/per-column observation counts (the incremental lists live inside
  // the PartialMatrix; only the workspace sizing needs a pass here).
  std::size_t max_obs = 1;
  std::vector<std::size_t> row_weight(m), col_weight(n);
  for (std::size_t r = 0; r < m; ++r) {
    row_weight[r] = observed.observed_count_in_row(r);
    max_obs = std::max(max_obs, row_weight[r]);
  }
  for (std::size_t c = 0; c < n; ++c) {
    col_weight[c] = observed.observed_count_in_col(c);
    max_obs = std::max(max_obs, col_weight[c]);
  }

  Matrix& row_f = result.row_factors;
  Matrix& col_f = result.col_factors;
  const double mu = result.mu;

  util::ThreadPool& pool = pool_ ? *pool_ : util::ThreadPool::global();
  const std::size_t lanes = pool.worker_count() + 1;
  const std::size_t total_obs = observed.observed_count();
  const auto row_bounds = chunk_bounds(m, lanes, total_obs, row_weight);
  const auto col_bounds = chunk_bounds(n, lanes, total_obs, col_weight);

  // Per-solve convergence stats, written by index during the parallel phase
  // and reduced serially in index order afterwards — the sweep result and
  // the stop decision are bit-identical for any worker count.
  std::vector<double> solve_max(std::max(m, n), 0.0);
  std::vector<double> solve_delta(std::max(m, n), 0.0);
  std::vector<double> solve_factor(std::max(m, n), 0.0);

  // One ALS half-sweep: for every index i, ridge-solve dst's row i against
  // the src-side factors of its observed entries. Solves are independent
  // (dst rows are disjoint, src is read-only during the phase), so chunks of
  // them run concurrently; each chunk hoists one design-matrix/rhs workspace
  // across its solves.
  const auto half_sweep = [&](const std::vector<std::size_t>& bounds,
                              Matrix& dst, const Matrix& src,
                              auto&& obs_list, auto&& obs_value) {
    pool.parallel_for(bounds.size() - 1, [&](std::size_t chunk) {
      Matrix a(max_obs, rank);
      std::vector<double> b(max_obs);
      for (std::size_t i = bounds[chunk]; i < bounds[chunk + 1]; ++i) {
        const std::vector<std::size_t>& obs = obs_list(i);
        if (obs.empty()) {
          // No data for this index in the window; shrink towards the mean
          // (and contribute nothing to the convergence stats, as before).
          for (std::size_t k = 0; k < rank; ++k) dst(i, k) = 0.0;
          solve_max[i] = solve_delta[i] = solve_factor[i] = 0.0;
          continue;
        }
        a.resize(obs.size(), rank);
        b.resize(obs.size());
        for (std::size_t j = 0; j < obs.size(); ++j) {
          const auto from = src.row(obs[j]);
          std::copy(from.begin(), from.end(), a.row(j).begin());
          b[j] = obs_value(i, obs[j]) - mu;
        }
        // Weighted-lambda ALS (Zhou et al.): scaling the ridge by the number
        // of observations keeps sparsely observed rows from blowing up to
        // compensate for small factors on the other side.
        const auto x = ridge_solve(
            a, b, options_.lambda * static_cast<double>(obs.size()));
        double mx = 0.0, dsq = 0.0, fsq = 0.0;
        for (std::size_t k = 0; k < rank; ++k) {
          const double d = dst(i, k) - x[k];
          mx = std::max(mx, std::fabs(d));
          dsq += d * d;
          fsq += x[k] * x[k];
          dst(i, k) = x[k];
        }
        solve_max[i] = mx;
        solve_delta[i] = dsq;
        solve_factor[i] = fsq;
      }
    });
  };

  const auto run_sweeps = [&](std::size_t budget) {
    for (std::size_t it = 0; it < budget; ++it) {
      double max_change = 0.0;
      double delta_sq = 0.0;   // Frobenius² of this sweep's factor delta
      double factor_sq = 0.0;  // Frobenius² of the updated factors
      // Update row factors: for each row solve a ridge regression on the
      // column factors of its observed entries.
      half_sweep(
          row_bounds, row_f, col_f,
          [&](std::size_t r) -> const std::vector<std::size_t>& {
            return observed.observed_cols_in_row(r);
          },
          [&](std::size_t r, std::size_t c) { return observed.value(r, c); });
      for (std::size_t r = 0; r < m; ++r) {
        max_change = std::max(max_change, solve_max[r]);
        delta_sq += solve_delta[r];
        factor_sq += solve_factor[r];
      }
      // Update column factors symmetrically.
      half_sweep(
          col_bounds, col_f, row_f,
          [&](std::size_t c) -> const std::vector<std::size_t>& {
            return observed.observed_rows_in_col(c);
          },
          [&](std::size_t c, std::size_t r) { return observed.value(r, c); });
      for (std::size_t c = 0; c < n; ++c) {
        max_change = std::max(max_change, solve_max[c]);
        delta_sq += solve_delta[c];
        factor_sq += solve_factor[c];
      }
      if (max_change < options_.convergence_tol) break;
      if (options_.frobenius_tol > 0.0 &&
          std::sqrt(delta_sq) <
              options_.frobenius_tol * std::max(std::sqrt(factor_sq), 1.0))
        break;
    }
  };

  const std::size_t sweep_budget =
      warm_trusted ? std::min(options_.warm_iterations, options_.iterations)
                   : options_.iterations;
  run_sweeps(sweep_budget);

  // Cold-solve fallback: a warm resume that failed to produce a usable
  // factorisation — non-finite factors from a pathological cached init, or
  // an armed `als.converge` fault standing in for one — is retried from
  // noise with the full sweep budget instead of poisoning infer() (whose
  // non-finite CHECK would kill the campaign). Identical arithmetic to a
  // never-warmed engine's solve, so the fallback result is bit-identical
  // to a cold engine's on the same window.
  if (warm_resumed &&
      (row_f.has_non_finite() || col_f.has_non_finite() ||
       util::FaultInjection::check("als.converge"))) {
    Rng rng(options_.seed);
    row_f = random_normal_matrix(m, rank, rng);
    col_f = random_normal_matrix(n, rank, rng);
    run_sweeps(options_.iterations);
  }

  if (options_.warm_start) {
    const double final_rmse =
        observed_rmse(row_f, col_f, result.mu, observed);
    std::lock_guard<std::mutex> lock(warm_mutex_);
    warm_ = WarmState{result, fingerprint, final_rmse};
  }
  return result;
}

Matrix MatrixCompletion::infer(const PartialMatrix& observed) const {
  const Fit f = fit(observed);
  Matrix est = f.row_factors.matmul(f.col_factors.transposed());
  est.apply([&f](double x) { return x + f.mu; });
  // Observed entries are known exactly — keep them.
  for (std::size_t r = 0; r < observed.rows(); ++r)
    for (std::size_t c : observed.observed_cols_in_row(r))
      est(r, c) = observed.value(r, c);
  DRCELL_CHECK_MSG(!est.has_non_finite(),
                   "matrix completion produced non-finite values");
  return est;
}

std::vector<double> MatrixCompletion::loo_column_predictions(
    const PartialMatrix& observed, std::size_t col) const {
  DRCELL_CHECK(col < observed.cols());
  const Fit f = fit(observed);
  const std::size_t rank = f.rank;
  const auto& rows_in_col = observed.observed_rows_in_col(col);
  const std::size_t count = rows_in_col.size();
  std::vector<double> predictions(count, 0.0);
  if (count == 0) return predictions;

  // Each per-cell solve costs two ridge systems — one over the held-out
  // cell's other observations, one over the column's remaining observations
  // — so the chunk-balancing weight is the sum of both system heights.
  std::vector<std::size_t> weight(count);
  std::size_t total_weight = 0;
  std::size_t max_row_obs = 1;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t row_obs =
        observed.observed_count_in_row(rows_in_col[i]);
    max_row_obs = std::max(max_row_obs, row_obs);
    weight[i] = row_obs + count;
    total_weight += weight[i];
  }
  const std::size_t max_obs = std::max(max_row_obs, count);

  util::ThreadPool& pool = pool_ ? *pool_ : util::ThreadPool::global();
  const std::size_t lanes = pool.worker_count() + 1;
  const auto bounds = chunk_bounds(count, lanes, total_weight, weight);

  // The held-out solves are mutually independent (the full fit `f` is
  // read-only and prediction i is the only slot index i writes), so chunks
  // of them fan out over the pool exactly like the ALS half-sweeps:
  // results land by index, bit-identical to serial for any worker count.
  pool.parallel_for(bounds.size() - 1, [&](std::size_t chunk) {
    Matrix a(max_obs, rank);
    std::vector<double> b;
    b.reserve(max_obs);
    for (std::size_t idx = bounds[chunk]; idx < bounds[chunk + 1]; ++idx) {
      const std::size_t cell = rows_in_col[idx];
      // Both factors touching the held-out entry are re-solved without it —
      // leaving either at its full-fit value leaks the withheld observation
      // (severely so in sparse windows, where one value can dominate its
      // own cell's row factor) and makes the quality gate overconfident.
      //
      // Row factor of the held-out cell from its *other* observations
      // (column factors fixed):
      const auto& cols_of_row = observed.observed_cols_in_row(cell);
      std::vector<double> u(rank, 0.0);
      if (cols_of_row.size() > 1) {
        a.resize(cols_of_row.size() - 1, rank);
        b.clear();
        std::size_t i = 0;
        for (std::size_t c : cols_of_row) {
          if (c == col) continue;
          for (std::size_t k = 0; k < rank; ++k) a(i, k) = f.col_factors(c, k);
          b.push_back(observed.value(cell, c) - f.mu);
          ++i;
        }
        u = ridge_solve(
            a, b,
            options_.lambda * static_cast<double>(cols_of_row.size() - 1));
      }
      // Assessed column's factor without the held-out cell (row factors
      // fixed):
      std::vector<double> v(rank, 0.0);
      if (count > 1) {
        a.resize(count - 1, rank);
        b.clear();
        std::size_t i = 0;
        for (std::size_t r : rows_in_col) {
          if (r == cell) continue;
          for (std::size_t k = 0; k < rank; ++k) a(i, k) = f.row_factors(r, k);
          b.push_back(observed.value(r, col) - f.mu);
          ++i;
        }
        v = ridge_solve(a, b,
                        options_.lambda * static_cast<double>(count - 1));
      }
      double pred = f.mu;
      for (std::size_t k = 0; k < rank; ++k) pred += u[k] * v[k];
      predictions[idx] = pred;
    }
  });
  return predictions;
}

}  // namespace drcell::cs
