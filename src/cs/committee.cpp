#include "cs/committee.h"

namespace drcell::cs {

InferenceCommittee::InferenceCommittee(std::vector<InferenceEnginePtr> members)
    : members_(std::move(members)) {
  DRCELL_CHECK_MSG(members_.size() >= 2,
                   "a committee needs at least two members");
  for (const auto& m : members_) DRCELL_CHECK(m != nullptr);
}

std::vector<Matrix> InferenceCommittee::infer_all(
    const PartialMatrix& observed) const {
  std::vector<Matrix> out(members_.size());
  util::ThreadPool& pool = pool_ ? *pool_ : util::ThreadPool::global();
  pool.parallel_for(members_.size(), [&](std::size_t i) {
    out[i] = members_[i]->infer(observed);
  });
  return out;
}

Matrix InferenceCommittee::disagreement(
    const std::vector<Matrix>& predictions) {
  DRCELL_CHECK_MSG(!predictions.empty(), "no predictions");
  const std::size_t m = predictions.front().rows();
  const std::size_t n = predictions.front().cols();
  // Structural precondition, not a per-element check: it must stay active in
  // release builds because the flat-index loops below index every member's
  // data() against the front member's extent.
  for (const auto& p : predictions)
    DRCELL_CHECK_MSG(p.rows() == m && p.cols() == n,
                     "committee members disagree on the matrix shape");

  const double count = static_cast<double>(predictions.size());
  Matrix mean(m, n);
  for (const auto& p : predictions) mean += p;
  mean *= 1.0 / count;

  Matrix var(m, n);
  for (const auto& p : predictions) {
    for (std::size_t i = 0; i < var.data().size(); ++i) {
      const double d = p.data()[i] - mean.data()[i];
      var.data()[i] += d * d;
    }
  }
  var *= 1.0 / count;
  return var;
}

Matrix InferenceCommittee::mean_prediction(
    const std::vector<Matrix>& predictions) {
  DRCELL_CHECK_MSG(!predictions.empty(), "no predictions");
  Matrix mean = predictions.front();
  for (std::size_t i = 1; i < predictions.size(); ++i)
    mean += predictions[i];
  mean *= 1.0 / static_cast<double>(predictions.size());
  return mean;
}

}  // namespace drcell::cs
