// Spatial k-nearest-neighbour inference. The paper's QBC baseline uses a
// committee of heterogeneous inference algorithms ("such as compressive
// sensing and K-Nearest Neighbors"); this is the KNN member.
#pragma once

#include <vector>

#include "cs/inference_engine.h"

namespace drcell::cs {

/// 2-D cell centre used for spatial distances.
struct CellCoord {
  double x = 0.0;
  double y = 0.0;
};

double euclidean_distance(const CellCoord& a, const CellCoord& b);

struct KnnOptions {
  std::size_t k = 4;          ///< neighbours per estimate
  double distance_power = 1.0;///< inverse-distance weight exponent
};

class KnnInference final : public InferenceEngine {
 public:
  /// `coords[i]` is the centre of cell i (row i of the matrices).
  KnnInference(std::vector<CellCoord> coords, KnnOptions options = {});

  /// For every unobserved (cell, cycle): inverse-distance-weighted mean of
  /// the k nearest cells observed in the same cycle; falls back to the
  /// cell's own temporal mean, then to the global observed mean.
  Matrix infer(const PartialMatrix& observed) const override;
  std::string name() const override { return "knn"; }

 private:
  std::vector<CellCoord> coords_;
  KnnOptions options_;
};

}  // namespace drcell::cs
