// Per-cell temporal linear interpolation — a committee member that exploits
// temporal rather than spatial correlation.
#pragma once

#include "cs/inference_engine.h"

namespace drcell::cs {

/// For each cell, linearly interpolates between its observed cycles
/// (constant extrapolation at the ends). Cells with no observations fall
/// back to the per-cycle mean of observed cells, then the global mean.
class TemporalInterpolation final : public InferenceEngine {
 public:
  Matrix infer(const PartialMatrix& observed) const override;
  std::string name() const override { return "temporal-interpolation"; }
};

}  // namespace drcell::cs
