#include "cs/inference_engine.h"

namespace drcell::cs {

std::vector<double> InferenceEngine::loo_column_predictions(
    const PartialMatrix& observed, std::size_t col) const {
  // The list reference stays valid: the LOO churn below mutates only the
  // scratch copy, never `observed` itself.
  const auto& rows = observed.observed_rows_in_col(col);
  std::vector<double> predictions;
  predictions.reserve(rows.size());
  PartialMatrix scratch = observed;
  for (std::size_t cell : rows) {
    const double held_out = scratch.value(cell, col);
    scratch.clear(cell, col);
    const Matrix inferred = infer(scratch);
    scratch.set(cell, col, held_out);
    predictions.push_back(inferred(cell, col));
  }
  return predictions;
}

}  // namespace drcell::cs
