// Compressive-sensing data inference via low-rank matrix completion.
//
// This is the de facto inference algorithm of Sparse MCS (Definition 5 of
// the paper, citing CCS-TA / SPACE-TA): the cells x cycles sensing matrix
// of an urban field is approximately low-rank, so the unsensed entries are
// recovered by fitting D ≈ mean + Uᵀ V on the observed entries with a
// regularised alternating-least-squares factorisation.
#pragma once

#include <cstdint>

#include "cs/inference_engine.h"

namespace drcell::cs {

struct MatrixCompletionOptions {
  std::size_t rank = 5;        ///< latent dimension r
  double lambda = 0.005;       ///< L2 regularisation (scaled by per-row/col observation count)
  std::size_t iterations = 20; ///< ALS sweeps
  std::uint64_t seed = 17;     ///< factor initialisation seed
  double convergence_tol = 1e-5; ///< early stop on max factor change
};

class MatrixCompletion final : public InferenceEngine {
 public:
  explicit MatrixCompletion(MatrixCompletionOptions options = {});

  Matrix infer(const PartialMatrix& observed) const override;

  /// Fast approximate leave-one-out: fits the factorisation once, then for
  /// each held-out observation re-solves only the affected row factor and
  /// the assessed column's factor (with the other side fixed). Orders of
  /// magnitude cheaper than the generic re-fit-per-cell default and accurate
  /// enough for the quality gate, which only consumes error *statistics*.
  std::vector<double> loo_column_predictions(const PartialMatrix& observed,
                                             std::size_t col) const override;

  std::string name() const override { return "compressive-sensing"; }

  const MatrixCompletionOptions& options() const { return options_; }

 private:
  struct Fit {
    Matrix row_factors;  // m x r
    Matrix col_factors;  // n x r
    double mu = 0.0;     // observed mean
    std::size_t rank = 0;
  };
  Fit fit(const PartialMatrix& observed) const;

  MatrixCompletionOptions options_;
};

}  // namespace drcell::cs
