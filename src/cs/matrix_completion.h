// Compressive-sensing data inference via low-rank matrix completion.
//
// This is the de facto inference algorithm of Sparse MCS (Definition 5 of
// the paper, citing CCS-TA / SPACE-TA): the cells x cycles sensing matrix
// of an urban field is approximately low-rank, so the unsensed entries are
// recovered by fitting D ≈ mean + Uᵀ V on the observed entries with a
// regularised alternating-least-squares factorisation.
//
// The solver is warm-started: each fit caches its converged factors, and the
// next fit over a same-shaped window resumes from them instead of random
// noise. A sensing campaign calls infer() once per cycle on a window that
// changes by a handful of entries, so the resumed solve typically converges
// in one or two sweeps (vs. the full budget from a cold start) and lands on
// the same reconstruction. Set `warm_start = false` for the stateless
// cold-start behaviour.
//
// Robustness: a warm resume that fails to produce usable factors —
// non-finite values out of a pathological cached init, or the armed
// `als.converge` fault-injection site (util/fault_injection.h) standing in
// for one — falls back to a cold solve from noise with the full sweep
// budget, bit-identical to a never-warmed engine's solve on the same
// window. infer() still hard-checks the final reconstruction for
// non-finite values (the campaign fault domains catch that CheckError).
//
// Threading / determinism contract (every pooled path in this engine — the
// ALS half-sweeps and the leave-one-out solves — upholds it, and any new
// fan-out added here must too; see src/util/thread_pool.h for the pool-side
// half of the contract):
//  * Work is partitioned into contiguous index chunks whose boundaries only
//    affect load balance, never arithmetic: each unit (a ridge solve) reads
//    shared state that is immutable during the phase and writes exclusively
//    to its own output index.
//  * Cross-unit reductions (convergence stats, RMSE sums) are written per
//    index during the parallel phase and reduced serially in ascending index
//    order afterwards — never accumulated in claim order.
//  * Any randomness is seeded from options_.seed (or per task index via
//    ThreadPool::parallel_for_seeded), never from the executing thread.
// Consequence: infer(), loo_column_predictions() and the resulting quality
// gate decisions are bit-identical for ANY worker count, including the
// 0-worker (strictly serial) pool. tests/sparse_paths_test.cpp holds both
// paths to exact equality.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>

#include "cs/inference_engine.h"
#include "util/thread_pool.h"

namespace drcell::cs {

/// RMSE of `mu + row_factors col_factorsᵀ` against the window's observed
/// entries, iterated through the observation lists (O(observed · rank), not
/// rows x cols). Used by the warm-start trust guard and the scale benches.
double observed_rmse(const Matrix& row_factors, const Matrix& col_factors,
                     double mu, const PartialMatrix& observed);

struct MatrixCompletionOptions {
  std::size_t rank = 5;        ///< latent dimension r
  double lambda = 0.005;       ///< L2 regularisation (scaled by per-row/col observation count)
  std::size_t iterations = 20; ///< ALS sweeps
  std::uint64_t seed = 17;     ///< factor initialisation seed
  double convergence_tol = 1e-5; ///< early stop on max factor change
  bool warm_start = true;      ///< resume from the previous fit's factors
  /// Sweep budget for a *trusted* warm resume. A window that changed by one
  /// cycle's observations leaves the cached factors near the new optimum, so
  /// a few polish sweeps replace the full from-noise budget (incremental
  /// ALS). The reduced budget applies only when the cached factors predict
  /// the new window's observations within `warm_trust_factor` of their own
  /// converged RMSE — i.e. when the init is provably close; resumes between
  /// the trust and accept thresholds keep the warm init (never worse than
  /// noise) but run the full sweep budget.
  std::size_t warm_iterations = 4;
  /// Below this init/converged RMSE ratio the window barely changed and the
  /// short warm_iterations budget is safe (typical per-cycle evolution
  /// measures 1.1-1.7).
  double warm_trust_factor = 2.0;
  /// Above this ratio the window is treated as unrelated — episode reset,
  /// slid/relabelled columns, different task — and the solve starts cold.
  /// A cycle's worth of new entries stays well below it; an unrelated
  /// window overshoots it by an order of magnitude.
  double warm_rmse_factor = 4.0;
  /// Early exit when the Frobenius norm of the per-sweep factor delta drops
  /// below this fraction of the factor norm itself. Warm resumes over a
  /// window that changed by a few entries usually trip it after one or two
  /// sweeps; the reconstruction only needs ~1e-3 relative factor accuracy,
  /// so 1e-4 leaves a safety margin. 0 disables the exit (the pre-warm-start
  /// behaviour, used as the bench reference).
  double frobenius_tol = 1e-4;
};

class MatrixCompletion final : public InferenceEngine {
 public:
  explicit MatrixCompletion(MatrixCompletionOptions options = {});

  Matrix infer(const PartialMatrix& observed) const override;

  /// Fast approximate leave-one-out: fits the factorisation once, then for
  /// each held-out observation re-solves only the affected row factor and
  /// the assessed column's factor (with the other side fixed). Orders of
  /// magnitude cheaper than the generic re-fit-per-cell default and accurate
  /// enough for the quality gate, which only consumes error *statistics*.
  /// The per-cell solves are independent and fan out over the configured
  /// ThreadPool like the ALS half-sweeps (predictions written by index);
  /// the result is bit-identical for any worker count.
  std::vector<double> loo_column_predictions(const PartialMatrix& observed,
                                             std::size_t col) const override;

  std::string name() const override { return "compressive-sensing"; }

  const MatrixCompletionOptions& options() const { return options_; }

  /// Drops the cached factors; the next fit starts cold. Call when switching
  /// to an unrelated sensing matrix mid-stream.
  void reset_warm_start() const;

  /// Overrides the pool that runs the ridge solves of an ALS half-sweep and
  /// of the leave-one-out pass. nullptr restores the global pool; a 0-worker
  /// pool gives strictly serial execution. Results are bit-identical for any
  /// worker count (solves are independent, stats reduce in index order).
  void set_thread_pool(util::ThreadPool* pool) { pool_ = pool; }

 private:
  struct Fit {
    Matrix row_factors;  // m x r
    Matrix col_factors;  // n x r
    double mu = 0.0;     // observed mean
    std::size_t rank = 0;
  };
  struct WarmState {
    Fit fit;
    std::uint64_t fingerprint = 0;  // of the window the fit converged on
    double rmse = 0.0;  // of the fit on its own observed entries
  };
  Fit fit(const PartialMatrix& observed) const;

  MatrixCompletionOptions options_;
  util::ThreadPool* pool_ = nullptr;  // nullptr -> ThreadPool::global()
  // Converged factors of the previous fit. Engines are shared as const
  // pointers across the campaign, so the cache is mutable and mutex-guarded;
  // the lock is only taken twice per fit (snapshot in, store out).
  mutable std::mutex warm_mutex_;
  mutable std::optional<WarmState> warm_;
};

}  // namespace drcell::cs
