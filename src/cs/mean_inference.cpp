#include "cs/mean_inference.h"

namespace drcell::cs {

Matrix MeanInference::infer(const PartialMatrix& observed) const {
  const std::size_t m = observed.rows();
  const std::size_t n = observed.cols();
  const double global_mean = observed.observed_mean();
  Matrix est(m, n, global_mean);

  std::vector<double> col_mean(n);
  std::vector<bool> col_has(n, false);
  for (std::size_t c = 0; c < n; ++c) {
    const auto& rows = observed.observed_rows_in_col(c);
    if (rows.empty()) continue;
    double s = 0.0;
    for (std::size_t r : rows) s += observed.value(r, c);
    col_mean[c] = s / static_cast<double>(rows.size());
    col_has[c] = true;
  }
  std::vector<double> row_mean(m);
  std::vector<bool> row_has(m, false);
  for (std::size_t r = 0; r < m; ++r) {
    const auto& cols = observed.observed_cols_in_row(r);
    if (cols.empty()) continue;
    double s = 0.0;
    for (std::size_t c : cols) s += observed.value(r, c);
    row_mean[r] = s / static_cast<double>(cols.size());
    row_has[r] = true;
  }

  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      if (observed.observed(r, c)) {
        est(r, c) = observed.value(r, c);
      } else if (col_has[c]) {
        est(r, c) = col_mean[c];
      } else if (row_has[r]) {
        est(r, c) = row_mean[r];
      }
    }
  }
  return est;
}

}  // namespace drcell::cs
