// A partially observed cells x cycles matrix — the input of every data
// inference engine in Sparse MCS (Definition 5 of the paper: infer the
// unsensed entries from the sensed ones).
//
// The matrix maintains incremental per-row and per-column observation lists,
// updated in set()/clear(), so observation queries (counts, index lists,
// mean) cost O(observed) — or O(1) — instead of scanning the dense
// rows x cols grid. At the 1000-cell scale target a window is ~10% observed,
// so the dense scans the seed shipped were an order of magnitude of wasted
// work on every inference call.
//
// The order-sensitive 64-bit fingerprint of the observed content (used by
// the warm-started completion engine to recognise an unchanged window) is
// cached here and invalidated by set()/clear(): one sensing step computes it
// at most once no matter how many engines and quality gates look at the
// window. The cache is a pair of atomics so concurrent committee members may
// race to fill it — both compute the same value, so the race is benign.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "linalg/matrix.h"

namespace drcell::cs {

class PartialMatrix {
 public:
  PartialMatrix() = default;
  PartialMatrix(std::size_t rows, std::size_t cols);

  PartialMatrix(const PartialMatrix& other);
  PartialMatrix(PartialMatrix&& other) noexcept;
  PartialMatrix& operator=(const PartialMatrix& other);
  PartialMatrix& operator=(PartialMatrix&& other) noexcept;

  std::size_t rows() const { return values_.rows(); }
  std::size_t cols() const { return values_.cols(); }

  bool observed(std::size_t r, std::size_t c) const {
    return mask_[index(r, c)] != 0;
  }
  /// Value at an observed entry. Reading an unobserved entry is an error.
  double value(std::size_t r, std::size_t c) const;
  /// Marks (r, c) observed with the given value.
  void set(std::size_t r, std::size_t c, double v);
  /// Removes an observation (used by leave-one-out quality assessment).
  void clear(std::size_t r, std::size_t c);

  std::size_t observed_count() const { return observed_count_; }
  std::size_t observed_count_in_col(std::size_t c) const;
  std::size_t observed_count_in_row(std::size_t r) const;
  /// Row indices observed in column c, ascending. The reference stays valid
  /// until the next set()/clear() touching that column.
  const std::vector<std::size_t>& observed_rows_in_col(std::size_t c) const;
  /// Column indices observed in row r, ascending. The reference stays valid
  /// until the next set()/clear() touching that row.
  const std::vector<std::size_t>& observed_cols_in_row(std::size_t r) const;

  /// Mean of all observed values; 0 when nothing is observed. Sums in
  /// row-major observed order, O(observed).
  double observed_mean() const;

  /// Order-sensitive 64-bit hash of the shape and observed entries, cached
  /// until the next mutation. Two windows with equal fingerprints are
  /// treated as identical by the warm-started completion engine (collisions
  /// are a ~2^-64 event per comparison).
  std::uint64_t fingerprint() const;
  /// How many times fingerprint() actually recomputed the hash (cache
  /// misses) over this object's lifetime — instrumentation for the
  /// once-per-cycle regression tests.
  std::size_t fingerprint_computations() const {
    return fp_computations_.load(std::memory_order_relaxed);
  }

  /// Underlying value matrix (unobserved entries are 0 — do not read them
  /// directly; use value()/observed()).
  const Matrix& raw_values() const { return values_; }

 private:
  std::size_t index(std::size_t r, std::size_t c) const {
    DRCELL_CHECK_MSG(r < rows() && c < cols(),
                     "PartialMatrix index out of range");
    return r * cols() + c;
  }
  void invalidate_fingerprint() {
    fp_valid_.store(false, std::memory_order_release);
  }

  Matrix values_;
  std::vector<std::uint8_t> mask_;
  std::size_t observed_count_ = 0;
  // Incremental observation lists, ascending; kept consistent with mask_
  // through every set()/clear() (including LOO clear-then-restore churn).
  std::vector<std::vector<std::size_t>> row_obs_;  // per row: observed cols
  std::vector<std::vector<std::size_t>> col_obs_;  // per col: observed rows
  // Lazily computed fingerprint cache. Concurrent readers may both miss and
  // recompute; they store the same value, so relaxed stores behind an
  // acquire/release valid flag are sufficient.
  mutable std::atomic<std::uint64_t> fp_{0};
  mutable std::atomic<bool> fp_valid_{false};
  mutable std::atomic<std::size_t> fp_computations_{0};
};

}  // namespace drcell::cs
