// A partially observed cells x cycles matrix — the input of every data
// inference engine in Sparse MCS (Definition 5 of the paper: infer the
// unsensed entries from the sensed ones).
#pragma once

#include <cstdint>
#include <vector>

#include "linalg/matrix.h"

namespace drcell::cs {

class PartialMatrix {
 public:
  PartialMatrix() = default;
  PartialMatrix(std::size_t rows, std::size_t cols);

  std::size_t rows() const { return values_.rows(); }
  std::size_t cols() const { return values_.cols(); }

  bool observed(std::size_t r, std::size_t c) const {
    return mask_[index(r, c)] != 0;
  }
  /// Value at an observed entry. Reading an unobserved entry is an error.
  double value(std::size_t r, std::size_t c) const;
  /// Marks (r, c) observed with the given value.
  void set(std::size_t r, std::size_t c, double v);
  /// Removes an observation (used by leave-one-out quality assessment).
  void clear(std::size_t r, std::size_t c);

  std::size_t observed_count() const { return observed_count_; }
  std::size_t observed_count_in_col(std::size_t c) const;
  std::size_t observed_count_in_row(std::size_t r) const;
  /// Row indices observed in column c.
  std::vector<std::size_t> observed_rows_in_col(std::size_t c) const;
  /// Column indices observed in row r.
  std::vector<std::size_t> observed_cols_in_row(std::size_t r) const;

  /// Mean of all observed values; 0 when nothing is observed.
  double observed_mean() const;

  /// Underlying value matrix (unobserved entries are 0 — do not read them
  /// directly; use value()/observed()).
  const Matrix& raw_values() const { return values_; }

 private:
  std::size_t index(std::size_t r, std::size_t c) const {
    DRCELL_CHECK_MSG(r < rows() && c < cols(),
                     "PartialMatrix index out of range");
    return r * cols() + c;
  }

  Matrix values_;
  std::vector<std::uint8_t> mask_;
  std::size_t observed_count_ = 0;
};

}  // namespace drcell::cs
