// Data-inference interface of Sparse MCS (Definition 5): given the partially
// observed window of the sensing matrix, estimate every entry.
#pragma once

#include <memory>
#include <string>

#include "cs/partial_matrix.h"

namespace drcell::cs {

class InferenceEngine {
 public:
  virtual ~InferenceEngine() = default;

  /// Returns a full estimate of the matrix. Observed entries should be
  /// reproduced (approximately for regularised engines, exactly for
  /// interpolators); unobserved entries are inferred.
  virtual Matrix infer(const PartialMatrix& observed) const = 0;

  /// Leave-one-out predictions for the observed cells of column `col`,
  /// index-aligned with observed_rows_in_col(col): entry k estimates cell
  /// rows[k] at that column with its own observation withheld. The quality
  /// assessor calls this once per gate decision.
  ///
  /// The default re-runs infer() once per observed cell (exact but
  /// expensive); engines may override with cheaper approximations.
  virtual std::vector<double> loo_column_predictions(
      const PartialMatrix& observed, std::size_t col) const;

  virtual std::string name() const = 0;
};

using InferenceEnginePtr = std::shared_ptr<const InferenceEngine>;

}  // namespace drcell::cs
