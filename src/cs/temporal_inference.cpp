#include "cs/temporal_inference.h"

namespace drcell::cs {

Matrix TemporalInterpolation::infer(const PartialMatrix& observed) const {
  const std::size_t m = observed.rows();
  const std::size_t n = observed.cols();
  const double global_mean = observed.observed_mean();
  Matrix est(m, n, global_mean);

  // Per-cycle means for cells that were never observed.
  std::vector<double> col_mean(n, global_mean);
  for (std::size_t c = 0; c < n; ++c) {
    const auto& rows = observed.observed_rows_in_col(c);
    if (rows.empty()) continue;
    double s = 0.0;
    for (std::size_t r : rows) s += observed.value(r, c);
    col_mean[c] = s / static_cast<double>(rows.size());
  }

  for (std::size_t r = 0; r < m; ++r) {
    const auto& cols = observed.observed_cols_in_row(r);
    if (cols.empty()) {
      for (std::size_t c = 0; c < n; ++c) est(r, c) = col_mean[c];
      continue;
    }
    // cols is sorted ascending by construction.
    for (std::size_t c = 0; c < n; ++c) {
      if (observed.observed(r, c)) {
        est(r, c) = observed.value(r, c);
        continue;
      }
      // Find bracketing observations.
      auto it = std::lower_bound(cols.begin(), cols.end(), c);
      if (it == cols.begin()) {
        est(r, c) = observed.value(r, cols.front());
      } else if (it == cols.end()) {
        est(r, c) = observed.value(r, cols.back());
      } else {
        const std::size_t hi = *it;
        const std::size_t lo = *(it - 1);
        const double vlo = observed.value(r, lo);
        const double vhi = observed.value(r, hi);
        const double t = static_cast<double>(c - lo) /
                         static_cast<double>(hi - lo);
        est(r, c) = vlo + t * (vhi - vlo);
      }
    }
  }
  return est;
}

}  // namespace drcell::cs
