#include "data/synthetic_field.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "linalg/decompositions.h"
#include "util/fastmath.h"
#include "util/statistics.h"
#include "util/thread_pool.h"

namespace drcell::data {

namespace {

/// Diagonal jitter added to the landmark Gram matrix W before its Cholesky:
/// smooth RBF Gram matrices over hundreds of landmarks are numerically
/// rank-deficient (eigenvalues decay below machine precision), so without a
/// ridge the factorisation fails on rounding noise (~eps·k ≈ 6e-14 at
/// k = 256). 1e-8 dominates that noise while perturbing the approximated
/// covariance by O(1e-8) — far below the covariance-error bound the test
/// asserts and the nugget any field carries.
constexpr double kNystromJitter = 1e-8;

/// The RBF kernel exponent −d²/(2ℓ²) between two cells — the single
/// definition of the kernel form shared by the exact Cholesky and both
/// Nyström blocks, so a future kernel change cannot desynchronise the
/// exact and low-rank covariances.
double rbf_exponent(const cs::CellCoord& a, const cs::CellCoord& b,
                    double ell2) {
  const double d = cs::euclidean_distance(a, b);
  return -d * d / (2.0 * ell2);
}

}  // namespace

std::size_t SyntheticFieldGenerator::SpatialKeyHash::operator()(
    const SpatialKey& k) const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
    h ^= h >> 29;
  };
  mix(std::bit_cast<std::uint64_t>(k.spatial_length));
  mix(std::bit_cast<std::uint64_t>(k.nugget));
  mix(k.low_rank ? 1 : 0);
  mix(k.landmarks);
  return static_cast<std::size_t>(h);
}

namespace {

/// FNV-1a over the raw coordinate doubles — the geometry half of the shared
/// registry's hash (equality still compares element-wise, so the hash only
/// routes to a bucket and can never alias two geometries into one entry).
std::size_t hash_coords(const std::vector<cs::CellCoord>& coords) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
    h ^= h >> 29;
  };
  mix(coords.size());
  for (const cs::CellCoord& c : coords) {
    mix(std::bit_cast<std::uint64_t>(c.x));
    mix(std::bit_cast<std::uint64_t>(c.y));
  }
  return static_cast<std::size_t>(h);
}

}  // namespace

bool SyntheticFieldGenerator::SharedKey::operator==(
    const SharedKey& o) const {
  if (!(spatial == o.spatial) || coord_hash != o.coord_hash) return false;
  if (coords == o.coords) return true;  // same generator's vector
  const auto& a = *coords;
  const auto& b = *o.coords;
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i].x != b[i].x || a[i].y != b[i].y) return false;
  return true;
}

std::size_t SyntheticFieldGenerator::SharedKeyHash::operator()(
    const SharedKey& k) const {
  return k.coord_hash ^ (SpatialKeyHash{}(k.spatial) * 0x9e3779b97f4a7c15ULL);
}

/// The process-wide factor registry (see shared_factor_cache_hits). One
/// mutex guards map and counter; held across builds so a concurrent
/// same-config request waits for the single factorisation instead of
/// duplicating it — the same discipline as the per-generator lock.
struct SyntheticFieldGenerator::SharedRegistry {
  std::mutex mutex;
  std::unordered_map<SharedKey, std::shared_ptr<const SpatialFactor>,
                     SharedKeyHash>
      factors;
  std::size_t hits = 0;
  std::size_t builds = 0;  // cold factorisations, both tiers
};

SyntheticFieldGenerator::SharedRegistry&
SyntheticFieldGenerator::shared_registry() {
  static SharedRegistry registry;
  return registry;
}

std::size_t SyntheticFieldGenerator::shared_factor_cache_hits() {
  SharedRegistry& r = shared_registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  return r.hits;
}

std::size_t SyntheticFieldGenerator::shared_factor_cache_size() {
  SharedRegistry& r = shared_registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  return r.factors.size();
}

std::size_t SyntheticFieldGenerator::shared_factor_cache_builds() {
  SharedRegistry& r = shared_registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  return r.builds;
}

void SyntheticFieldGenerator::reset_shared_factor_cache() {
  SharedRegistry& r = shared_registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  r.factors.clear();
  r.hits = 0;
  r.builds = 0;
}

SyntheticFieldGenerator::SyntheticFieldGenerator(
    std::vector<cs::CellCoord> coords)
    : coords_(std::make_shared<const std::vector<cs::CellCoord>>(
          std::move(coords))),
      coord_hash_(hash_coords(*coords_)) {
  DRCELL_CHECK_MSG(!coords_->empty(), "generator needs cell coordinates");
}

Matrix SyntheticFieldGenerator::spatial_cholesky(
    const FieldParams& params) const {
  const std::size_t m = coords_->size();
  Matrix k(m, m);
  const double ell2 = params.spatial_length * params.spatial_length;
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j)
      k(i, j) = (1.0 - params.nugget) *
                std::exp(rbf_exponent((*coords_)[i], (*coords_)[j], ell2));
    k(i, i) += params.nugget;
  }
  return Cholesky(k).l;
}

std::vector<std::size_t> SyntheticFieldGenerator::landmark_indices(
    std::size_t k) const {
  // Deterministic farthest-point sampling: start from cell 0, then
  // repeatedly add the cell farthest from the chosen set (lowest index on
  // ties). Covers irregular layouts evenly in O(m·k).
  const std::size_t m = coords_->size();
  std::vector<std::size_t> landmarks;
  landmarks.reserve(k);
  std::vector<double> dist2(m, std::numeric_limits<double>::infinity());
  std::size_t next = 0;
  for (std::size_t t = 0; t < k; ++t) {
    landmarks.push_back(next);
    const cs::CellCoord& c = (*coords_)[next];
    std::size_t best = 0;
    double best_d2 = -1.0;
    for (std::size_t i = 0; i < m; ++i) {
      const double dx = (*coords_)[i].x - c.x;
      const double dy = (*coords_)[i].y - c.y;
      const double d2 = dx * dx + dy * dy;
      if (d2 < dist2[i]) dist2[i] = d2;
      if (dist2[i] > best_d2) {
        best_d2 = dist2[i];
        best = i;
      }
    }
    next = best;
  }
  return landmarks;
}

Matrix SyntheticFieldGenerator::build_nystrom_factor(
    const FieldParams& params) const {
  const std::size_t m = coords_->size();
  const std::size_t k = std::min(params.nystrom_landmarks, m);
  DRCELL_CHECK_MSG(k > 0, "Nyström factor needs at least one landmark");
  const std::vector<std::size_t> landmarks = landmark_indices(k);
  const double ell2 = params.spatial_length * params.spatial_length;
  const double amp = 1.0 - params.nugget;

  util::ThreadPool& pool = pool_ ? *pool_ : util::ThreadPool::global();

  // Cross-kernel C = K(cells, landmarks): fill the RBF exponents, then a
  // fastmath exp pass and the amplitude scale, pooled per row. The fastmath
  // kernels are strictly elementwise (identical IEEE-754 ops per element
  // regardless of array extent), so the per-row passes are bit-identical to
  // the old whole-block passes — and to any worker count. (The exact branch
  // keeps std::exp so its bit-stream is unchanged.)
  Matrix c(m, k);
  pool.parallel_for(m, [&](std::size_t i) {
    const auto crow = c.row(i);
    for (std::size_t j = 0; j < k; ++j)
      crow[j] = rbf_exponent((*coords_)[i], (*coords_)[landmarks[j]], ell2);
    fastmath::exp_inplace(crow);
    for (std::size_t j = 0; j < k; ++j) crow[j] *= amp;
  });

  // Landmark Gram W (+ jitter ridge) and its Cholesky.
  Matrix w(k, k);
  for (std::size_t a = 0; a < k; ++a)
    for (std::size_t b = 0; b < k; ++b)
      w(a, b) =
          rbf_exponent((*coords_)[landmarks[a]], (*coords_)[landmarks[b]], ell2);
  fastmath::exp_inplace(w.data());
  w *= amp;
  for (std::size_t a = 0; a < k; ++a) w(a, a) += kNystromJitter * amp;
  const Cholesky chol(w);
  const Matrix& lw = chol.l;

  // F = C·Lw⁻ᵀ by forward substitution per row: F·Fᵀ = C·W⁻¹·Cᵀ, the
  // Nyström approximation of the smooth kernel. O(m·k²/2). Rows are
  // independent (each reads only its own C row and the shared Lw), so they
  // fan out index-exclusively — the dominant cost of the 10k cold build.
  Matrix f(m, k);
  pool.parallel_for(m, [&](std::size_t i) {
    const auto crow = c.row(i);
    const auto frow = f.row(i);
    for (std::size_t t = 0; t < k; ++t) {
      double s = crow[t];
      for (std::size_t u = 0; u < t; ++u) s -= lw(t, u) * frow[u];
      frow[t] = s / lw(t, t);
    }
  });
  return f;
}

const SyntheticFieldGenerator::SpatialFactor&
SyntheticFieldGenerator::spatial_factor(const FieldParams& params) const {
  DRCELL_CHECK(params.spatial_length > 0.0);
  DRCELL_CHECK(params.nugget > 0.0 && params.nugget <= 1.0);
  const bool low_rank = coords_->size() > params.nystrom_threshold;
  const SpatialKey key{params.spatial_length, params.nugget, low_rank,
                       low_rank ? params.nystrom_landmarks : 0};
  // The generator lock covers the local lookup and the registry consult: a
  // concurrent same-config generate() on this generator waits instead of
  // racing, and the shared_ptr pinned into the local map keeps the returned
  // reference valid past release (even across a registry reset). Lock order
  // is generator → registry, with no path back, so no deadlock.
  const std::lock_guard<std::mutex> lock(factor_mutex_);
  if (const auto it = factor_cache_.find(key); it != factor_cache_.end()) {
    ++factor_cache_hits_;
    return *it->second;
  }
  std::shared_ptr<const SpatialFactor> factor = shared_factor(key, params);
  return *factor_cache_.emplace(key, std::move(factor)).first->second;
}

std::shared_ptr<const SyntheticFieldGenerator::SpatialFactor>
SyntheticFieldGenerator::shared_factor(const SpatialKey& key,
                                       const FieldParams& params) const {
  const SharedKey shared_key{coords_, coord_hash_, key};
  SharedRegistry& r = shared_registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  if (const auto it = r.factors.find(shared_key); it != r.factors.end()) {
    ++r.hits;
    return it->second;
  }
  auto factor = std::make_shared<SpatialFactor>();
  factor->low_rank = key.low_rank;
  if (key.low_rank)
    factor->f = build_nystrom_factor(params);
  else
    factor->dense_l = spatial_cholesky(params);
  ++r.builds;
  return r.factors.emplace(shared_key, std::move(factor)).first->second;
}

const Matrix& SyntheticFieldGenerator::nystrom_factor(
    const FieldParams& params) const {
  // Reject exact-path params before spatial_factor() would pay the O(m³)
  // dense factorisation (and cache it) only to throw.
  DRCELL_CHECK_MSG(coords_->size() > params.nystrom_threshold,
                   "params select the exact path (cells <= nystrom_threshold)");
  return spatial_factor(params).f;
}

Matrix SyntheticFieldGenerator::draw_modes(const FieldParams& params,
                                           Rng& rng) const {
  DRCELL_CHECK(params.num_modes > 0);
  const std::size_t m = coords_->size();
  const SpatialFactor& factor = spatial_factor(params);
  util::ThreadPool& pool = pool_ ? *pool_ : util::ThreadPool::global();
  Matrix modes(m, params.num_modes);
  if (!factor.low_rank) {
    // Exact path: the draws stay serial from the caller's rng, so the
    // stream — and therefore every sub-threshold dataset — is bit-identical
    // to the pre-Nyström generator. Only the per-draw lower-triangular
    // matvec fans out (index-exclusive rows, deterministic per-row sums).
    const Matrix& l = factor.dense_l;
    std::vector<double> eta(m);
    for (std::size_t r = 0; r < params.num_modes; ++r) {
      for (double& e : eta) e = rng.normal();
      pool.parallel_for(m, [&](std::size_t i) {
        double s = 0.0;
        for (std::size_t j = 0; j <= i; ++j) s += l(i, j) * eta[j];
        modes(i, r) = s;
      });
    }
    return modes;
  }
  // Nyström path: smooth part F·u_r with u_r ~ N(0, I_k) — covariance
  // F·Fᵀ ≈ (1 − nugget)·K_rbf — plus the iid nugget component per cell.
  // The Gaussian streams stay serial from the caller's rng in the exact
  // pre-PR-9 order (u_r, then the per-cell nuggets, mode by mode), so every
  // metro-tier dataset is bit-identical to what PR 5-8 generated — the
  // metro training/acceptance gates keep their tuned fields. Only the
  // rng-free m×k dot pass fans out over the pool (index-exclusive rows),
  // which is where the per-draw time goes; the result is therefore also
  // bit-identical for any worker count.
  const Matrix& f = factor.f;
  const std::size_t k = f.cols();
  const double nugget_sd = std::sqrt(params.nugget);
  std::vector<double> u(k);
  for (std::size_t r = 0; r < params.num_modes; ++r) {
    for (double& v : u) v = rng.normal();
    pool.parallel_for(m, [&](std::size_t i) {
      const auto frow = f.row(i);
      double s = 0.0;
      for (std::size_t j = 0; j < k; ++j) s += frow[j] * u[j];
      modes(i, r) = s;
    });
    for (std::size_t i = 0; i < m; ++i)
      modes(i, r) += nugget_sd * rng.normal();
  }
  return modes;
}

Matrix SyntheticFieldGenerator::draw_coefficients(const FieldParams& params,
                                                  std::size_t cycles,
                                                  Rng& rng) {
  DRCELL_CHECK(cycles > 0);
  DRCELL_CHECK(params.temporal_ar1 >= 0.0 && params.temporal_ar1 < 1.0);
  DRCELL_CHECK(params.mode_decay > 0.0 && params.mode_decay <= 1.0);
  const double phi = params.temporal_ar1;
  const double innov = std::sqrt(1.0 - phi * phi);
  Matrix coeffs(params.num_modes, cycles);
  double weight = 1.0;
  for (std::size_t r = 0; r < params.num_modes; ++r) {
    double a = rng.normal();
    for (std::size_t t = 0; t < cycles; ++t) {
      if (t > 0) a = phi * a + innov * rng.normal();
      coeffs(r, t) = weight * a;
    }
    weight *= params.mode_decay;
  }
  return coeffs;
}

Matrix SyntheticFieldGenerator::assemble(const FieldParams& params,
                                         const Matrix& modes,
                                         const Matrix& coefficients,
                                         Rng& rng) {
  DRCELL_CHECK(params.cycles_per_day > 0.0);
  DRCELL_CHECK(params.noise_sd >= 0.0);
  DRCELL_CHECK(params.noise_heterogeneity >= 1.0);
  const std::size_t m = modes.rows();
  const std::size_t cycles = coefficients.cols();

  // Per-cell noise scales (log-uniform around noise_sd).
  std::vector<double> noise_scale(m, params.noise_sd);
  if (params.noise_sd > 0.0 && params.noise_heterogeneity > 1.0) {
    const double log_h = std::log(params.noise_heterogeneity);
    for (double& s : noise_scale)
      s = params.noise_sd * std::exp(rng.uniform(-log_h, log_h));
  }

  Matrix latent = modes.matmul(coefficients);  // m x cycles, rank num_modes
  const double two_pi = 6.283185307179586;
  for (std::size_t t = 0; t < cycles; ++t) {
    const double diurnal =
        params.diurnal_amplitude *
        std::sin(two_pi * static_cast<double>(t) / params.cycles_per_day +
                 params.diurnal_phase);
    for (std::size_t i = 0; i < m; ++i) {
      const double noise =
          noise_scale[i] > 0.0 ? rng.normal(0.0, noise_scale[i]) : 0.0;
      latent(i, t) += diurnal + noise;
    }
  }

  // Standardise empirically so finalize() hits the target moments.
  RunningStats stats;
  for (double x : latent.data()) stats.add(x);
  const double mu = stats.mean();
  const double sd = stats.stddev() > 1e-12 ? stats.stddev() : 1.0;
  latent.apply([mu, sd](double x) { return (x - mu) / sd; });
  return latent;
}

Matrix SyntheticFieldGenerator::finalize(const FieldParams& params,
                                         Matrix latent) {
  DRCELL_CHECK(params.stddev > 0.0);
  if (!params.lognormal) {
    latent.apply([&](double x) { return params.mean + params.stddev * x; });
    return latent;
  }
  // Log-normal warp with exact target moments:
  // sigma² = ln(1 + (std/mean)²), mu = ln(mean) - sigma²/2.
  DRCELL_CHECK_MSG(params.mean > 0.0, "lognormal fields need a positive mean");
  const double cv = params.stddev / params.mean;
  const double sigma2 = std::log(1.0 + cv * cv);
  const double mu = std::log(params.mean) - 0.5 * sigma2;
  const double sigma = std::sqrt(sigma2);
  latent.apply([&](double x) { return std::exp(mu + sigma * x); });
  return latent;
}

Matrix SyntheticFieldGenerator::generate(const FieldParams& params,
                                         std::size_t cycles, Rng& rng) const {
  const Matrix modes = draw_modes(params, rng);
  const Matrix coeffs = draw_coefficients(params, cycles, rng);
  return finalize(params, assemble(params, modes, coeffs, rng));
}

std::pair<Matrix, Matrix> SyntheticFieldGenerator::generate_correlated_pair(
    const FieldParams& first, const FieldParams& second, double rho,
    std::size_t cycles, Rng& rng) const {
  DRCELL_CHECK(rho >= -1.0 && rho <= 1.0);
  DRCELL_CHECK_MSG(first.num_modes == second.num_modes,
                   "correlated tasks must share the latent rank");
  // Shared geography: one set of spatial modes for both signals.
  const Matrix modes = draw_modes(first, rng);
  const Matrix coeffs_a = draw_coefficients(first, cycles, rng);
  Matrix coeffs_b = draw_coefficients(second, cycles, rng);
  const double own = std::sqrt(1.0 - rho * rho);
  for (std::size_t i = 0; i < coeffs_b.data().size(); ++i)
    coeffs_b.data()[i] = rho * coeffs_a.data()[i] + own * coeffs_b.data()[i];

  Rng rng_a = rng.fork();
  Rng rng_b = rng.fork();
  return {finalize(first, assemble(first, modes, coeffs_a, rng_a)),
          finalize(second, assemble(second, modes, coeffs_b, rng_b))};
}

std::vector<cs::CellCoord> grid_coords(std::size_t rows, std::size_t cols,
                                       double cell_w, double cell_h) {
  DRCELL_CHECK(rows > 0 && cols > 0 && cell_w > 0.0 && cell_h > 0.0);
  std::vector<cs::CellCoord> out;
  out.reserve(rows * cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c)
      out.push_back({(static_cast<double>(c) + 0.5) * cell_w,
                     (static_cast<double>(r) + 0.5) * cell_h});
  return out;
}

}  // namespace drcell::data
