#include "data/synthetic_field.h"

#include <cmath>

#include "linalg/decompositions.h"
#include "util/statistics.h"

namespace drcell::data {

SyntheticFieldGenerator::SyntheticFieldGenerator(
    std::vector<cs::CellCoord> coords)
    : coords_(std::move(coords)) {
  DRCELL_CHECK_MSG(!coords_.empty(), "generator needs cell coordinates");
}

Matrix SyntheticFieldGenerator::spatial_cholesky(
    const FieldParams& params) const {
  DRCELL_CHECK(params.spatial_length > 0.0);
  DRCELL_CHECK(params.nugget > 0.0 && params.nugget <= 1.0);
  const std::size_t m = coords_.size();
  Matrix k(m, m);
  const double ell2 = params.spatial_length * params.spatial_length;
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      const double d = cs::euclidean_distance(coords_[i], coords_[j]);
      k(i, j) = (1.0 - params.nugget) * std::exp(-d * d / (2.0 * ell2));
    }
    k(i, i) += params.nugget;
  }
  return Cholesky(k).l;
}

Matrix SyntheticFieldGenerator::draw_modes(const FieldParams& params,
                                           Rng& rng) const {
  DRCELL_CHECK(params.num_modes > 0);
  const std::size_t m = coords_.size();
  const Matrix l = spatial_cholesky(params);
  Matrix modes(m, params.num_modes);
  std::vector<double> eta(m);
  for (std::size_t r = 0; r < params.num_modes; ++r) {
    for (double& e : eta) e = rng.normal();
    for (std::size_t i = 0; i < m; ++i) {
      double s = 0.0;
      for (std::size_t j = 0; j <= i; ++j) s += l(i, j) * eta[j];
      modes(i, r) = s;
    }
  }
  return modes;
}

Matrix SyntheticFieldGenerator::draw_coefficients(const FieldParams& params,
                                                  std::size_t cycles,
                                                  Rng& rng) {
  DRCELL_CHECK(cycles > 0);
  DRCELL_CHECK(params.temporal_ar1 >= 0.0 && params.temporal_ar1 < 1.0);
  DRCELL_CHECK(params.mode_decay > 0.0 && params.mode_decay <= 1.0);
  const double phi = params.temporal_ar1;
  const double innov = std::sqrt(1.0 - phi * phi);
  Matrix coeffs(params.num_modes, cycles);
  double weight = 1.0;
  for (std::size_t r = 0; r < params.num_modes; ++r) {
    double a = rng.normal();
    for (std::size_t t = 0; t < cycles; ++t) {
      if (t > 0) a = phi * a + innov * rng.normal();
      coeffs(r, t) = weight * a;
    }
    weight *= params.mode_decay;
  }
  return coeffs;
}

Matrix SyntheticFieldGenerator::assemble(const FieldParams& params,
                                         const Matrix& modes,
                                         const Matrix& coefficients,
                                         Rng& rng) {
  DRCELL_CHECK(params.cycles_per_day > 0.0);
  DRCELL_CHECK(params.noise_sd >= 0.0);
  DRCELL_CHECK(params.noise_heterogeneity >= 1.0);
  const std::size_t m = modes.rows();
  const std::size_t cycles = coefficients.cols();

  // Per-cell noise scales (log-uniform around noise_sd).
  std::vector<double> noise_scale(m, params.noise_sd);
  if (params.noise_sd > 0.0 && params.noise_heterogeneity > 1.0) {
    const double log_h = std::log(params.noise_heterogeneity);
    for (double& s : noise_scale)
      s = params.noise_sd * std::exp(rng.uniform(-log_h, log_h));
  }

  Matrix latent = modes.matmul(coefficients);  // m x cycles, rank num_modes
  const double two_pi = 6.283185307179586;
  for (std::size_t t = 0; t < cycles; ++t) {
    const double diurnal =
        params.diurnal_amplitude *
        std::sin(two_pi * static_cast<double>(t) / params.cycles_per_day +
                 params.diurnal_phase);
    for (std::size_t i = 0; i < m; ++i) {
      const double noise =
          noise_scale[i] > 0.0 ? rng.normal(0.0, noise_scale[i]) : 0.0;
      latent(i, t) += diurnal + noise;
    }
  }

  // Standardise empirically so finalize() hits the target moments.
  RunningStats stats;
  for (double x : latent.data()) stats.add(x);
  const double mu = stats.mean();
  const double sd = stats.stddev() > 1e-12 ? stats.stddev() : 1.0;
  latent.apply([mu, sd](double x) { return (x - mu) / sd; });
  return latent;
}

Matrix SyntheticFieldGenerator::finalize(const FieldParams& params,
                                         Matrix latent) {
  DRCELL_CHECK(params.stddev > 0.0);
  if (!params.lognormal) {
    latent.apply([&](double x) { return params.mean + params.stddev * x; });
    return latent;
  }
  // Log-normal warp with exact target moments:
  // sigma² = ln(1 + (std/mean)²), mu = ln(mean) - sigma²/2.
  DRCELL_CHECK_MSG(params.mean > 0.0, "lognormal fields need a positive mean");
  const double cv = params.stddev / params.mean;
  const double sigma2 = std::log(1.0 + cv * cv);
  const double mu = std::log(params.mean) - 0.5 * sigma2;
  const double sigma = std::sqrt(sigma2);
  latent.apply([&](double x) { return std::exp(mu + sigma * x); });
  return latent;
}

Matrix SyntheticFieldGenerator::generate(const FieldParams& params,
                                         std::size_t cycles, Rng& rng) const {
  const Matrix modes = draw_modes(params, rng);
  const Matrix coeffs = draw_coefficients(params, cycles, rng);
  return finalize(params, assemble(params, modes, coeffs, rng));
}

std::pair<Matrix, Matrix> SyntheticFieldGenerator::generate_correlated_pair(
    const FieldParams& first, const FieldParams& second, double rho,
    std::size_t cycles, Rng& rng) const {
  DRCELL_CHECK(rho >= -1.0 && rho <= 1.0);
  DRCELL_CHECK_MSG(first.num_modes == second.num_modes,
                   "correlated tasks must share the latent rank");
  // Shared geography: one set of spatial modes for both signals.
  const Matrix modes = draw_modes(first, rng);
  const Matrix coeffs_a = draw_coefficients(first, cycles, rng);
  Matrix coeffs_b = draw_coefficients(second, cycles, rng);
  const double own = std::sqrt(1.0 - rho * rho);
  for (std::size_t i = 0; i < coeffs_b.data().size(); ++i)
    coeffs_b.data()[i] = rho * coeffs_a.data()[i] + own * coeffs_b.data()[i];

  Rng rng_a = rng.fork();
  Rng rng_b = rng.fork();
  return {finalize(first, assemble(first, modes, coeffs_a, rng_a)),
          finalize(second, assemble(second, modes, coeffs_b, rng_b))};
}

std::vector<cs::CellCoord> grid_coords(std::size_t rows, std::size_t cols,
                                       double cell_w, double cell_h) {
  DRCELL_CHECK(rows > 0 && cols > 0 && cell_w > 0.0 && cell_h > 0.0);
  std::vector<cs::CellCoord> out;
  out.reserve(rows * cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c)
      out.push_back({(static_cast<double>(c) + 0.5) * cell_w,
                     (static_cast<double>(r) + 0.5) * cell_h});
  return out;
}

}  // namespace drcell::data
