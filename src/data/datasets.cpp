#include "data/datasets.h"

#include <algorithm>
#include <numeric>

#include "data/synthetic_field.h"
#include "util/statistics.h"

namespace drcell::data {

namespace {

/// Keeps `keep` cells of `coords`, chosen deterministically from `rng`
/// (Sensor-Scope: 57 of the 100 grid cells carry valid sensors).
std::vector<cs::CellCoord> subsample_cells(std::vector<cs::CellCoord> coords,
                                           std::size_t keep, Rng& rng) {
  DRCELL_CHECK(keep <= coords.size());
  std::vector<std::size_t> idx(coords.size());
  std::iota(idx.begin(), idx.end(), 0);
  rng.shuffle(idx);
  idx.resize(keep);
  std::sort(idx.begin(), idx.end());
  std::vector<cs::CellCoord> out;
  out.reserve(keep);
  for (std::size_t i : idx) out.push_back(coords[i]);
  return out;
}

}  // namespace

SensorScopeDataset make_sensorscope_like(std::uint64_t seed) {
  Rng rng(seed);
  // 500 m x 300 m campus split into 10 x 10 cells of 50 m x 30 m; 57 of the
  // 100 cells have valid sensors (Sec. 5.1).
  auto coords = subsample_cells(grid_coords(10, 10, 50.0, 30.0), 57, rng);
  SyntheticFieldGenerator gen(coords);

  const std::size_t cycles = 336;  // 7 days of half-hour cycles

  // Spatial length and nugget are calibrated so that the (0.3 °C, 0.9)
  // budget of the paper is achievable from roughly a fifth of the cells:
  // campus-scale temperature varies mostly over time, much less across
  // 50 m cells, so the field is spatially very smooth with a small
  // unpredictable per-cell residual (nugget std ≈ 1.87·√0.012 ≈ 0.2 °C,
  // below the 0.3 °C error bound).
  FieldParams temperature;
  temperature.mean = 6.04;   // Table 1: 6.04 ± 1.87 °C
  temperature.stddev = 1.87;
  temperature.spatial_length = 150.0;  // metres; a few spatial modes across campus
  temperature.nugget = 0.01;
  temperature.temporal_ar1 = 0.97;
  temperature.diurnal_amplitude = 1.1;
  temperature.cycles_per_day = 48.0;
  // Microclimate spread: some cells (courtyards, rooftops) are markedly
  // harder to infer than others — the structure cell selection exploits.
  temperature.noise_sd = 0.06;
  temperature.noise_heterogeneity = 1.6;

  FieldParams humidity;
  humidity.mean = 84.52;  // Table 1: 84.52 ± 6.32 %
  humidity.stddev = 6.32;
  humidity.spatial_length = 150.0;
  humidity.nugget = 0.01;
  humidity.temporal_ar1 = 0.97;
  humidity.diurnal_amplitude = 1.0;
  humidity.cycles_per_day = 48.0;
  humidity.diurnal_phase = 3.14159265358979;  // humidity peaks at night
  humidity.noise_sd = 0.06;
  humidity.noise_heterogeneity = 1.6;

  // Humidity anti-correlates with temperature; |rho| is what transfer
  // learning exploits.
  auto [temp_field, hum_field] =
      gen.generate_correlated_pair(temperature, humidity, -0.85, cycles, rng);

  return SensorScopeDataset{
      mcs::SensingTask("sensorscope-temperature", std::move(temp_field),
                       coords, mcs::ErrorMetric::mae(), 0.5),
      mcs::SensingTask("sensorscope-humidity", std::move(hum_field),
                       std::move(coords), mcs::ErrorMetric::mae(), 0.5)};
}

UAirDataset make_uair_like(std::uint64_t seed) {
  Rng rng(seed);
  // 36 cells of 1 km x 1 km (Sec. 5.1), hourly cycles over 11 days.
  auto coords = grid_coords(6, 6, 1000.0, 1000.0);
  SyntheticFieldGenerator gen(coords);

  FieldParams pm25;
  pm25.mean = 79.11;   // Table 1: 79.11 ± 81.21
  pm25.stddev = 81.21;
  pm25.spatial_length = 4500.0;  // metres; city-scale pollution plumes
  pm25.nugget = 0.01;
  pm25.temporal_ar1 = 0.97;
  pm25.diurnal_amplitude = 0.6;
  pm25.cycles_per_day = 24.0;
  pm25.lognormal = true;  // heavy-tailed, like real PM2.5
  pm25.num_modes = 3;
  // Local sources (traffic, construction) make some cells unpredictable.
  pm25.noise_sd = 0.05;
  pm25.noise_heterogeneity = 1.5;

  Matrix field = gen.generate(pm25, 264, rng);
  return UAirDataset{mcs::SensingTask("uair-pm25", std::move(field),
                                      std::move(coords),
                                      mcs::ErrorMetric::aqi_classification(),
                                      1.0)};
}

mcs::SensingTask make_city_scale_task(std::size_t grid_rows,
                                      std::size_t grid_cols,
                                      std::size_t cycles,
                                      std::uint64_t seed) {
  Rng rng(seed);
  auto coords = grid_coords(grid_rows, grid_cols, 100.0, 100.0);
  SyntheticFieldGenerator gen(coords);

  FieldParams temperature;
  temperature.mean = 12.0;
  temperature.stddev = 4.0;
  // A handful of smooth modes across the ~4 km x 2.5 km area, with a larger
  // nugget than the campus dataset: at city scale the per-cell residual is
  // what keeps 1000-cell selection non-trivial.
  temperature.spatial_length = 600.0;
  temperature.nugget = 0.02;
  temperature.temporal_ar1 = 0.97;
  temperature.diurnal_amplitude = 1.0;
  temperature.cycles_per_day = 48.0;
  temperature.noise_sd = 0.06;
  temperature.noise_heterogeneity = 1.6;
  temperature.num_modes = 6;

  Matrix field = gen.generate(temperature, cycles, rng);
  return mcs::SensingTask("city-scale-temperature", std::move(field),
                          std::move(coords), mcs::ErrorMetric::mae(), 0.5);
}

FieldParams metro_scale_field_params() {
  FieldParams temperature;
  temperature.mean = 12.0;
  temperature.stddev = 4.0;
  // Metro-area smoothness: kilometre-scale modes across the ~10 km extent,
  // so the 256 Nyström landmarks cover several cells per length scale and
  // the low-rank covariance error stays far below the nugget
  // (tests/nystrom_field_test.cpp bounds it).
  temperature.spatial_length = 1500.0;
  temperature.nugget = 0.02;
  temperature.temporal_ar1 = 0.97;
  temperature.diurnal_amplitude = 1.0;
  temperature.cycles_per_day = 48.0;
  temperature.noise_sd = 0.06;
  temperature.noise_heterogeneity = 1.6;
  temperature.num_modes = 8;
  return temperature;
}

mcs::SensingTask make_metro_scale_task(std::size_t grid_rows,
                                       std::size_t grid_cols,
                                       std::size_t cycles,
                                       std::uint64_t seed) {
  Rng rng(seed);
  auto coords = grid_coords(grid_rows, grid_cols, 100.0, 100.0);
  SyntheticFieldGenerator gen(coords);
  Matrix field = gen.generate(metro_scale_field_params(), cycles, rng);
  return mcs::SensingTask("metro-scale-temperature", std::move(field),
                          std::move(coords), mcs::ErrorMetric::mae(), 0.5);
}

DatasetStats compute_stats(const mcs::SensingTask& task) {
  DatasetStats s;
  s.name = task.name();
  s.num_cells = task.num_cells();
  s.num_cycles = task.num_cycles();
  s.cycle_hours = task.cycle_hours();
  s.duration_days =
      static_cast<double>(task.num_cycles()) * task.cycle_hours() / 24.0;
  RunningStats rs;
  for (double x : task.ground_truth().data()) rs.add(x);
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = rs.min();
  s.max = rs.max();
  return s;
}

}  // namespace drcell::data
