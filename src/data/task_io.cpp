#include "data/task_io.h"

#include <fstream>
#include <sstream>

#include "util/csv.h"

namespace drcell::data {

namespace {

std::vector<std::string> to_strings(const std::vector<double>& values) {
  std::vector<std::string> out;
  out.reserve(values.size());
  for (double v : values) {
    std::ostringstream ss;
    ss.precision(17);
    ss << v;
    out.push_back(ss.str());
  }
  return out;
}

std::vector<double> tail_as_doubles(const std::vector<std::string>& row) {
  std::vector<std::string> tail(row.begin() + 1, row.end());
  return parse_double_row(tail);
}

}  // namespace

void save_task_csv(std::ostream& out, const mcs::SensingTask& task) {
  CsvWriter w(out);
  w.write_row(std::vector<std::string>{"name", task.name()});
  {
    std::ostringstream ss;
    ss.precision(17);
    ss << task.cycle_hours();
    w.write_row(std::vector<std::string>{"cycle_hours", ss.str()});
  }
  {
    std::vector<std::string> metric_row{"metric"};
    switch (task.metric().kind()) {
      case mcs::ErrorMetric::Kind::kMae:
        metric_row.push_back("mae");
        break;
      case mcs::ErrorMetric::Kind::kRmse:
        metric_row.push_back("rmse");
        break;
      case mcs::ErrorMetric::Kind::kClassification: {
        metric_row.push_back("classification");
        // Recover the bounds by probing the categoriser at each category
        // edge is fragile; instead serialise the AQI default. Custom bounds
        // round-trip through the generic path below.
        break;
      }
    }
    if (task.metric().is_classification()) {
      // Probe category boundaries: categorise midpoints is not possible
      // without the bounds, so store the canonical AQI bounds — the only
      // classification metric the factories produce.
      for (double b : {50.0, 100.0, 150.0, 200.0, 300.0}) {
        std::ostringstream ss;
        ss << b;
        metric_row.push_back(ss.str());
      }
    }
    w.write_row(metric_row);
  }
  std::vector<double> xs, ys;
  xs.reserve(task.num_cells());
  ys.reserve(task.num_cells());
  for (const auto& c : task.coords()) {
    xs.push_back(c.x);
    ys.push_back(c.y);
  }
  {
    auto row = to_strings(xs);
    row.insert(row.begin(), "coords_x");
    w.write_row(row);
  }
  {
    auto row = to_strings(ys);
    row.insert(row.begin(), "coords_y");
    w.write_row(row);
  }
  for (std::size_t cell = 0; cell < task.num_cells(); ++cell) {
    std::vector<double> vals(task.num_cycles());
    for (std::size_t t = 0; t < task.num_cycles(); ++t)
      vals[t] = task.truth(cell, t);
    w.write_row(to_strings(vals));
  }
}

mcs::SensingTask load_task_csv(std::istream& in) {
  const auto rows = CsvReader::parse_stream(in);
  DRCELL_CHECK_MSG(rows.size() >= 6, "task CSV too short");
  DRCELL_CHECK_MSG(rows[0].size() == 2 && rows[0][0] == "name",
                   "task CSV: bad name row");
  const std::string name = rows[0][1];
  DRCELL_CHECK_MSG(rows[1].size() == 2 && rows[1][0] == "cycle_hours",
                   "task CSV: bad cycle_hours row");
  const double cycle_hours = parse_double_row({rows[1][1]})[0];
  DRCELL_CHECK_MSG(rows[2].size() >= 2 && rows[2][0] == "metric",
                   "task CSV: bad metric row");

  mcs::ErrorMetric metric = mcs::ErrorMetric::mae();
  if (rows[2][1] == "mae") {
    metric = mcs::ErrorMetric::mae();
  } else if (rows[2][1] == "rmse") {
    metric = mcs::ErrorMetric::rmse();
  } else if (rows[2][1] == "classification") {
    std::vector<std::string> bound_fields(rows[2].begin() + 2, rows[2].end());
    metric = mcs::ErrorMetric::classification(parse_double_row(bound_fields));
  } else {
    DRCELL_CHECK_MSG(false, "task CSV: unknown metric '" + rows[2][1] + "'");
  }

  DRCELL_CHECK_MSG(rows[3].size() >= 2 && rows[3][0] == "coords_x",
                   "task CSV: bad coords_x row");
  DRCELL_CHECK_MSG(rows[4].size() >= 2 && rows[4][0] == "coords_y",
                   "task CSV: bad coords_y row");
  const auto xs = tail_as_doubles(rows[3]);
  const auto ys = tail_as_doubles(rows[4]);
  DRCELL_CHECK_MSG(xs.size() == ys.size(), "task CSV: coord length mismatch");

  const std::size_t cells = xs.size();
  DRCELL_CHECK_MSG(rows.size() == 5 + cells,
                   "task CSV: expected one data row per cell");
  std::vector<cs::CellCoord> coords(cells);
  for (std::size_t i = 0; i < cells; ++i) coords[i] = {xs[i], ys[i]};

  const std::size_t cycles = rows[5].size();
  Matrix values(cells, cycles);
  for (std::size_t cell = 0; cell < cells; ++cell) {
    const auto vals = parse_double_row(rows[5 + cell]);
    DRCELL_CHECK_MSG(vals.size() == cycles,
                     "task CSV: ragged data rows");
    for (std::size_t t = 0; t < cycles; ++t) values(cell, t) = vals[t];
  }
  return mcs::SensingTask(name, std::move(values), std::move(coords),
                          std::move(metric), cycle_hours);
}

void save_task_csv_file(const std::string& path,
                        const mcs::SensingTask& task) {
  std::ofstream out(path);
  DRCELL_CHECK_MSG(static_cast<bool>(out), "cannot open " + path);
  save_task_csv(out, task);
}

mcs::SensingTask load_task_csv_file(const std::string& path) {
  std::ifstream in(path);
  DRCELL_CHECK_MSG(static_cast<bool>(in), "cannot open " + path);
  return load_task_csv(in);
}

}  // namespace drcell::data
