// Factories for the two evaluation datasets of Table 1 (synthetic
// equivalents — see DESIGN.md) and the statistics used to regenerate the
// table.
#pragma once

#include <cstdint>

#include "data/synthetic_field.h"
#include "mcs/sensing_task.h"

namespace drcell::data {

/// Sensor-Scope-like campaign: EPFL campus, 500 m x 300 m split into 100
/// cells of 50 m x 30 m of which 57 carry sensors; half-hour cycles over
/// 7 days (336 cycles); temperature and humidity are correlated tasks.
struct SensorScopeDataset {
  mcs::SensingTask temperature;
  mcs::SensingTask humidity;
};
SensorScopeDataset make_sensorscope_like(std::uint64_t seed = 2018);

/// U-Air-like campaign: Beijing, 36 active 1 km x 1 km cells, hourly cycles
/// over 11 days (264 cycles); PM2.5 with the 6-level AQI classification
/// metric.
struct UAirDataset {
  mcs::SensingTask pm25;
};
UAirDataset make_uair_like(std::uint64_t seed = 2013);

/// Synthetic city-scale deployment far beyond the paper's 57 cells — the
/// workload of the 1000-cell scale target (ROADMAP). A grid_rows x grid_cols
/// grid of 100 m x 100 m cells (25 x 40 = 1000 by default) with a
/// temperature-like field, half-hour cycles. At this size the field still
/// uses the exact O(cells³) spatial Cholesky (bit-identical to earlier
/// releases). The factor lands in the process-wide shared registry (PR 7),
/// so re-calling this factory per episode pays ONE factorisation per
/// process, not one per call; cold vs warm behaviour is observable at both
/// tiers via SyntheticFieldGenerator::shared_factor_cache_builds() /
/// shared_factor_cache_hits() (and per-generator factor_cache_hits()).
mcs::SensingTask make_city_scale_task(std::size_t grid_rows = 25,
                                      std::size_t grid_cols = 40,
                                      std::size_t cycles = 96,
                                      std::uint64_t seed = 1000);

/// Metro-scale deployment: a grid_rows x grid_cols grid of 100 m x 100 m
/// cells (100 x 100 = 10,000 by default, a ~10 km x 10 km metro area) with
/// a temperature-like field. Above FieldParams::nystrom_threshold the
/// generator samples spatial modes through the low-rank Nyström factor
/// (O(cells·k²) with k = 256 landmarks instead of O(cells³)) — the tier the
/// exact Cholesky could never reach (10,000³ ≈ 3·10¹¹ kernel flops per
/// factorisation before memory).
mcs::SensingTask make_metro_scale_task(std::size_t grid_rows = 100,
                                       std::size_t grid_cols = 100,
                                       std::size_t cycles = 96,
                                       std::uint64_t seed = 10000);

/// The metro task's field configuration (kilometre-scale modes, Nyström
/// above the default threshold) — the single definition the factory above
/// and the field-sampler ops of bench_scale_10000cell share, so retuning
/// the task retunes the bench with it.
FieldParams metro_scale_field_params();

/// Row of Table 1.
struct DatasetStats {
  std::string name;
  std::size_t num_cells = 0;
  std::size_t num_cycles = 0;
  double cycle_hours = 0.0;
  double duration_days = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};
DatasetStats compute_stats(const mcs::SensingTask& task);

}  // namespace drcell::data
