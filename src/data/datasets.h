// Factories for the two evaluation datasets of Table 1 (synthetic
// equivalents — see DESIGN.md) and the statistics used to regenerate the
// table.
#pragma once

#include <cstdint>

#include "mcs/sensing_task.h"

namespace drcell::data {

/// Sensor-Scope-like campaign: EPFL campus, 500 m x 300 m split into 100
/// cells of 50 m x 30 m of which 57 carry sensors; half-hour cycles over
/// 7 days (336 cycles); temperature and humidity are correlated tasks.
struct SensorScopeDataset {
  mcs::SensingTask temperature;
  mcs::SensingTask humidity;
};
SensorScopeDataset make_sensorscope_like(std::uint64_t seed = 2018);

/// U-Air-like campaign: Beijing, 36 active 1 km x 1 km cells, hourly cycles
/// over 11 days (264 cycles); PM2.5 with the 6-level AQI classification
/// metric.
struct UAirDataset {
  mcs::SensingTask pm25;
};
UAirDataset make_uair_like(std::uint64_t seed = 2013);

/// Synthetic city-scale deployment far beyond the paper's 57 cells — the
/// workload of the 1000-cell scale target (ROADMAP). A grid_rows x grid_cols
/// grid of 100 m x 100 m cells (25 x 40 = 1000 by default) with a
/// temperature-like field, half-hour cycles. Generation cost is dominated by
/// the O(cells³) spatial Cholesky, so call it once and slice.
mcs::SensingTask make_city_scale_task(std::size_t grid_rows = 25,
                                      std::size_t grid_cols = 40,
                                      std::size_t cycles = 96,
                                      std::uint64_t seed = 1000);

/// Row of Table 1.
struct DatasetStats {
  std::string name;
  std::size_t num_cells = 0;
  std::size_t num_cycles = 0;
  double cycle_hours = 0.0;
  double duration_days = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};
DatasetStats compute_stats(const mcs::SensingTask& task);

}  // namespace drcell::data
