// Synthetic spatio-temporal field generator — the stand-in for the
// Sensor-Scope and U-Air measurements (see DESIGN.md, substitution table).
//
// Model: an explicitly low-rank spatio-temporal process — the structural
// assumption the whole Sparse-MCS line of work builds on (compressive
// sensing recovers the matrix *because* urban sensing matrices are
// approximately low-rank). The field is
//
//   D(i, t) = Σ_r w_r · φ_r(i) · a_r(t)  +  diurnal(t)  +  κ_i · ε(i, t)
//
// where the spatial modes φ_r are smooth GP draws from an RBF kernel over
// the cell coordinates (nearby cells similar — Fig. 1 of the paper), the
// temporal coefficients a_r(t) are stationary AR(1) series (smooth
// hour-scale dynamics), w_r decays geometrically, the diurnal sinusoid
// adds the daily rhythm, and κ_i·ε is per-cell unpredictable noise whose
// scale varies across cells. The standardised latent field is finally
// mapped to the target mean/std, optionally through a log-normal warp for
// heavy-tailed signals such as PM2.5.
#pragma once

#include <cstdint>
#include <vector>

#include "cs/knn_inference.h"  // CellCoord
#include "linalg/matrix.h"
#include "util/rng.h"

namespace drcell::data {

struct FieldParams {
  double mean = 0.0;            ///< target sample mean
  double stddev = 1.0;          ///< target sample standard deviation
  double spatial_length = 1.0;  ///< RBF length scale (coordinate units)
  double nugget = 0.05;         ///< iid fraction of the spatial variance
  double temporal_ar1 = 0.9;    ///< AR(1) coefficient between cycles
  double diurnal_amplitude = 1.0; ///< sinusoid amplitude (latent std units)
  double cycles_per_day = 24.0; ///< cycles forming one diurnal period
  double diurnal_phase = 0.0;   ///< radians
  bool lognormal = false;       ///< heavy-tailed warp (PM2.5)
  /// Temporally-white per-cell noise (latent std units) on top of the
  /// smooth GP — the microclimate/measurement component that no amount of
  /// neighbour sensing can predict.
  double noise_sd = 0.0;
  /// Heterogeneity of that noise across cells: each cell's noise scale is
  /// drawn log-uniformly from [noise_sd / h, noise_sd · h]. h = 1 makes all
  /// cells equally predictable; larger h creates genuinely hard-to-infer
  /// cells, the structure that differentiates cell-selection policies.
  double noise_heterogeneity = 1.0;
  /// Latent rank: number of spatio-temporal modes (excluding the diurnal
  /// component and the noise).
  std::size_t num_modes = 4;
  /// Geometric amplitude decay across modes (w_r = mode_decay^r).
  double mode_decay = 0.65;
};

class SyntheticFieldGenerator {
 public:
  explicit SyntheticFieldGenerator(std::vector<cs::CellCoord> coords);

  std::size_t num_cells() const { return coords_.size(); }
  const std::vector<cs::CellCoord>& coords() const { return coords_; }

  /// cells x cycles matrix drawn from the model above.
  Matrix generate(const FieldParams& params, std::size_t cycles,
                  Rng& rng) const;

  /// Two fields whose latent processes have correlation `rho` — the
  /// substrate of the transfer-learning experiment (temperature/humidity
  /// are inter-correlated tasks in the same area, Sec. 4.4). The tasks
  /// share their spatial modes (the same city has the same hot/cold
  /// districts for both signals); their temporal coefficient series are
  /// correlated at `rho`.
  std::pair<Matrix, Matrix> generate_correlated_pair(
      const FieldParams& first, const FieldParams& second, double rho,
      std::size_t cycles, Rng& rng) const;

 private:
  Matrix spatial_cholesky(const FieldParams& params) const;
  /// m x R smooth spatial mode matrix (GP draws).
  Matrix draw_modes(const FieldParams& params, Rng& rng) const;
  /// R x T temporal coefficients: unit-variance AR(1) rows scaled by
  /// mode_decay^r.
  static Matrix draw_coefficients(const FieldParams& params,
                                  std::size_t cycles, Rng& rng);
  /// modes x coefficients + diurnal + heterogeneous noise, standardised.
  static Matrix assemble(const FieldParams& params, const Matrix& modes,
                         const Matrix& coefficients, Rng& rng);
  static Matrix finalize(const FieldParams& params, Matrix latent);

  std::vector<cs::CellCoord> coords_;
};

/// Convenience: centres of a rows x cols grid of cell_w x cell_h cells.
std::vector<cs::CellCoord> grid_coords(std::size_t rows, std::size_t cols,
                                       double cell_w, double cell_h);

}  // namespace drcell::data
