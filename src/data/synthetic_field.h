// Synthetic spatio-temporal field generator — the stand-in for the
// Sensor-Scope and U-Air measurements (see DESIGN.md, substitution table).
//
// Model: an explicitly low-rank spatio-temporal process — the structural
// assumption the whole Sparse-MCS line of work builds on (compressive
// sensing recovers the matrix *because* urban sensing matrices are
// approximately low-rank). The field is
//
//   D(i, t) = Σ_r w_r · φ_r(i) · a_r(t)  +  diurnal(t)  +  κ_i · ε(i, t)
//
// where the spatial modes φ_r are smooth GP draws from an RBF kernel over
// the cell coordinates (nearby cells similar — Fig. 1 of the paper), the
// temporal coefficients a_r(t) are stationary AR(1) series (smooth
// hour-scale dynamics), w_r decays geometrically, the diurnal sinusoid
// adds the daily rhythm, and κ_i·ε is per-cell unpredictable noise whose
// scale varies across cells. The standardised latent field is finally
// mapped to the target mean/std, optionally through a log-normal warp for
// heavy-tailed signals such as PM2.5.
// Spatial-mode sampling backends: below `FieldParams::nystrom_threshold`
// cells the GP draws go through the exact dense Cholesky of the m x m
// kernel (O(m³), bit-identical to the pre-Nyström generator); above it a
// low-rank Nyström factor over ~256 farthest-point landmark cells replaces
// it (O(m·k²) build, O(m·k) per mode draw), which is what unlocks the
// 10,000-cell metro-scale workload. Factors are cached at two levels:
// a per-generator map (lock-free reuse pattern unchanged from PR 5,
// `factor_cache_hits()` counts the reuses) backed by a process-wide shared
// registry keyed by (cell coordinates, spatial FieldParams fields), so N
// campaigns — each built through its own factory call and therefore its own
// generator — with equal spatial params share ONE factorisation
// (`shared_factor_cache_hits()` counts the cross-generator reuses; the
// multi-campaign bench hard-gates hits >= N-1). Both levels are
// mutex-guarded: concurrent generate() calls on one shared generator, or on
// many generators across ThreadPool workers, are race-free, and a
// concurrent same-config build is paid exactly once (later arrivals wait on
// the registry lock, then hit).
//
// Parallelism: the Nyström factor build (per-row cross-covariance block and
// forward substitution) and the spatial mode draws fan out over the
// ThreadPool (set_thread_pool, default global()) under the pool determinism
// contract — bit-identical results for any worker count. Both draw paths
// keep their Gaussian streams serial from the caller's rng in the
// pre-parallelism order, so every dataset (sub-threshold exact AND
// metro-tier Nyström) is bit-identical to earlier releases — the tuned
// metro training/acceptance fields are preserved. Only the rng-free heavy
// loops fan out: the exact path's per-draw lower-triangular matvec and the
// Nyström path's per-cell m×k dot pass (index-exclusive rows).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "cs/knn_inference.h"  // CellCoord
#include "linalg/matrix.h"
#include "util/rng.h"

namespace drcell::util {
class ThreadPool;
}

namespace drcell::data {

struct FieldParams {
  double mean = 0.0;            ///< target sample mean
  double stddev = 1.0;          ///< target sample standard deviation
  double spatial_length = 1.0;  ///< RBF length scale (coordinate units)
  double nugget = 0.05;         ///< iid fraction of the spatial variance
  double temporal_ar1 = 0.9;    ///< AR(1) coefficient between cycles
  double diurnal_amplitude = 1.0; ///< sinusoid amplitude (latent std units)
  double cycles_per_day = 24.0; ///< cycles forming one diurnal period
  double diurnal_phase = 0.0;   ///< radians
  bool lognormal = false;       ///< heavy-tailed warp (PM2.5)
  /// Temporally-white per-cell noise (latent std units) on top of the
  /// smooth GP — the microclimate/measurement component that no amount of
  /// neighbour sensing can predict.
  double noise_sd = 0.0;
  /// Heterogeneity of that noise across cells: each cell's noise scale is
  /// drawn log-uniformly from [noise_sd / h, noise_sd · h]. h = 1 makes all
  /// cells equally predictable; larger h creates genuinely hard-to-infer
  /// cells, the structure that differentiates cell-selection policies.
  double noise_heterogeneity = 1.0;
  /// Latent rank: number of spatio-temporal modes (excluding the diurnal
  /// component and the noise).
  std::size_t num_modes = 4;
  /// Geometric amplitude decay across modes (w_r = mode_decay^r).
  double mode_decay = 0.65;
  /// Above this many cells the exact O(cells³) spatial Cholesky is replaced
  /// by the low-rank Nyström factor. The default keeps every existing
  /// dataset (57, 36 and 1000 cells) on the bit-identical exact path; set
  /// to 0 to force Nyström at any size (tests/benches).
  std::size_t nystrom_threshold = 2048;
  /// Landmark count k of the Nyström factor (clamped to the cell count).
  /// Covariance error decays with landmark coverage of the spatial length
  /// scale; 256 bounds the error well below the nugget for the smooth
  /// fields this generator draws (tests/nystrom_field_test.cpp).
  std::size_t nystrom_landmarks = 256;
};

class SyntheticFieldGenerator {
 public:
  explicit SyntheticFieldGenerator(std::vector<cs::CellCoord> coords);

  std::size_t num_cells() const { return coords_->size(); }
  const std::vector<cs::CellCoord>& coords() const { return *coords_; }

  /// Pool used by the Nyström factor build and the spatial mode draws
  /// (nullptr → ThreadPool::global()). Results are bit-identical for any
  /// worker count (pool determinism contract); the bench/test hook for
  /// sweeping worker counts. Set before generating — not synchronised
  /// against in-flight generate() calls.
  void set_thread_pool(util::ThreadPool* pool) { pool_ = pool; }

  /// cells x cycles matrix drawn from the model above.
  Matrix generate(const FieldParams& params, std::size_t cycles,
                  Rng& rng) const;

  /// Two fields whose latent processes have correlation `rho` — the
  /// substrate of the transfer-learning experiment (temperature/humidity
  /// are inter-correlated tasks in the same area, Sec. 4.4). The tasks
  /// share their spatial modes (the same city has the same hot/cold
  /// districts for both signals); their temporal coefficient series are
  /// correlated at `rho`.
  std::pair<Matrix, Matrix> generate_correlated_pair(
      const FieldParams& first, const FieldParams& second, double rho,
      std::size_t cycles, Rng& rng) const;

  /// How many generate()/pair calls reused a cached spatial factor instead
  /// of re-factorising — within this generator OR through the process-wide
  /// shared registry. The factor depends only on the coordinates (fixed per
  /// generator) and the spatial fields of FieldParams, so episodic
  /// regeneration hits the cache from the second call on. Mutex-guarded
  /// like every cache access: safe to read while other threads generate.
  std::size_t factor_cache_hits() const {
    const std::lock_guard<std::mutex> lock(factor_mutex_);
    return factor_cache_hits_;
  }

  /// Process-wide shared-registry counters: how many factor requests were
  /// served by a factor another generator (or an earlier same-coordinate
  /// generator) already built, and how many distinct factors the registry
  /// currently holds. The multi-campaign scheduler's "N same-params
  /// campaigns pay one factorisation" contract is gated on hits >= N-1
  /// (bench_multi_campaign).
  static std::size_t shared_factor_cache_hits();
  static std::size_t shared_factor_cache_size();
  /// How many factors the registry has actually built (cold builds) since
  /// the last reset — the exact-path dense Cholesky and the Nyström factor
  /// both count, so cold/warm behaviour is observable at both tiers:
  /// builds is the cold count, shared_factor_cache_hits() the warm count.
  static std::size_t shared_factor_cache_builds();
  /// Drops every shared factor and zeroes the hit counter (test/bench
  /// isolation; also the reference side of the shared-cache bench pair).
  /// Factors already handed to live generators stay valid — they hold
  /// shared ownership.
  static void reset_shared_factor_cache();

  /// The m x k Nyström factor F with F·Fᵀ ≈ (1 − nugget)·K_rbf (the smooth
  /// kernel part; the nugget is sampled as iid noise on top). Exposed for
  /// the covariance-error test and the scale bench; requires `params` to
  /// select the low-rank path (cells > nystrom_threshold). Reference into
  /// the factor cache — valid while the generator lives.
  const Matrix& nystrom_factor(const FieldParams& params) const;

 private:
  /// Cache key: exactly the FieldParams fields the spatial factor depends
  /// on (the coordinates are fixed per generator). Full equality — the
  /// fingerprint is only the hash, so a 64-bit collision can never serve
  /// the wrong factor.
  struct SpatialKey {
    double spatial_length = 0.0;
    double nugget = 0.0;
    bool low_rank = false;
    std::size_t landmarks = 0;
    bool operator==(const SpatialKey&) const = default;
  };
  struct SpatialKeyHash {
    std::size_t operator()(const SpatialKey& k) const;
  };
  /// Cached spatial factorisation: exact lower-triangular Cholesky of the
  /// full kernel (dense_l) or the low-rank Nyström factor (f).
  struct SpatialFactor {
    bool low_rank = false;
    Matrix dense_l;  ///< m x m, exact path
    Matrix f;        ///< m x k, Nyström path
  };
  /// Key of the process-wide registry: the generator's coordinates (shared,
  /// never copied per entry) plus the spatial key. Equality compares the
  /// coordinates element-wise — like the per-generator cache, a hash
  /// collision can never serve another geometry's factor.
  struct SharedKey {
    std::shared_ptr<const std::vector<cs::CellCoord>> coords;
    std::size_t coord_hash = 0;
    SpatialKey spatial;
    bool operator==(const SharedKey& o) const;
  };
  struct SharedKeyHash {
    std::size_t operator()(const SharedKey& k) const;
  };
  /// The process-wide registry (map + hit counter behind one mutex);
  /// defined in the .cpp, reached through the function-local singleton
  /// shared_registry().
  struct SharedRegistry;
  static SharedRegistry& shared_registry();
  const SpatialFactor& spatial_factor(const FieldParams& params) const;
  /// Registry lookup-or-build (registry mutex held across the build so a
  /// concurrent same-config request waits instead of duplicating work).
  std::shared_ptr<const SpatialFactor> shared_factor(
      const SpatialKey& key, const FieldParams& params) const;
  Matrix spatial_cholesky(const FieldParams& params) const;
  Matrix build_nystrom_factor(const FieldParams& params) const;
  /// Deterministic farthest-point landmark selection over the coordinates.
  std::vector<std::size_t> landmark_indices(std::size_t k) const;
  /// m x R smooth spatial mode matrix (GP draws).
  Matrix draw_modes(const FieldParams& params, Rng& rng) const;
  /// R x T temporal coefficients: unit-variance AR(1) rows scaled by
  /// mode_decay^r.
  static Matrix draw_coefficients(const FieldParams& params,
                                  std::size_t cycles, Rng& rng);
  /// modes x coefficients + diurnal + heterogeneous noise, standardised.
  static Matrix assemble(const FieldParams& params, const Matrix& modes,
                         const Matrix& coefficients, Rng& rng);
  static Matrix finalize(const FieldParams& params, Matrix latent);

  // Shared so the process-wide registry can key entries on the coordinate
  // vector without copying it; immutable for the generator's lifetime.
  std::shared_ptr<const std::vector<cs::CellCoord>> coords_;
  std::size_t coord_hash_ = 0;  // precomputed FNV over the coordinates
  // Per-generator spatial-factor cache, keyed by the spatial FieldParams
  // fields; entries share ownership with the process-wide registry (see
  // shared_factor_cache_hits). Mutable so the const generate() API caches;
  // the mutex keeps concurrent generate() calls on one shared generator
  // race-free (each with its own Rng — a pattern the pre-cache API
  // permitted), and shared_ptr-held factors are address-stable, so
  // returned references outlive the lock (and even a registry reset).
  mutable std::mutex factor_mutex_;
  mutable std::unordered_map<SpatialKey,
                             std::shared_ptr<const SpatialFactor>,
                             SpatialKeyHash>
      factor_cache_;
  mutable std::size_t factor_cache_hits_ = 0;
  // Pool for the pooled build/draw paths; see set_thread_pool.
  util::ThreadPool* pool_ = nullptr;
};

/// Convenience: centres of a rows x cols grid of cell_w x cell_h cells.
std::vector<cs::CellCoord> grid_coords(std::size_t rows, std::size_t cols,
                                       double cell_w, double cell_h);

}  // namespace drcell::data
