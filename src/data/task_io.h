// CSV import/export of sensing tasks so campaigns can run on user-provided
// measurements instead of the synthetic generators.
//
// Format (one CSV file):
//   row 0: name,<task name>
//   row 1: cycle_hours,<hours>
//   row 2: metric,<mae|rmse|classification>[,bound1,bound2,...]
//   row 3: coords_x,<x0>,<x1>,...      (one per cell)
//   row 4: coords_y,<y0>,<y1>,...
//   rows 5..: one row per cell with its per-cycle values
#pragma once

#include <iosfwd>
#include <string>

#include "mcs/sensing_task.h"

namespace drcell::data {

void save_task_csv(std::ostream& out, const mcs::SensingTask& task);
mcs::SensingTask load_task_csv(std::istream& in);

void save_task_csv_file(const std::string& path,
                        const mcs::SensingTask& task);
mcs::SensingTask load_task_csv_file(const std::string& path);

}  // namespace drcell::data
