// Encodes the RL state of Sec. 4.1: the recent-k window of the cell
// selection matrix, S = [s_{-k+1}, …, s_{-1}, s_0], where s_0 is the
// (partial) selection vector of the current cycle. Cycles before the start
// of the campaign are zero-padded.
#pragma once

#include <vector>

#include "linalg/matrix.h"
#include "mcs/selection_matrix.h"

namespace drcell::mcs {

class StateEncoder {
 public:
  StateEncoder(std::size_t cells, std::size_t history_cycles);

  std::size_t cells() const { return cells_; }
  std::size_t history_cycles() const { return k_; }
  /// Length of the flat encoding: k * m, ordered oldest step first.
  std::size_t state_size() const { return k_ * cells_; }

  /// Flat state vector at `cycle` (includes the in-progress selections of
  /// that cycle from the matrix).
  std::vector<double> encode(const SelectionMatrix& selection,
                             std::size_t cycle) const;

  /// Splits a flat state into the k per-step observation vectors that feed
  /// the DRQN's LSTM (each 1 x m). Batch variant stacks several states.
  std::vector<Matrix> to_sequence(const std::vector<double>& flat_state) const;
  std::vector<Matrix> to_sequence_batch(
      const std::vector<const std::vector<double>*>& flat_states) const;

 private:
  std::size_t cells_;
  std::size_t k_;
};

}  // namespace drcell::mcs
