// Encodes the RL state of Sec. 4.1: the recent-k window of the cell
// selection matrix, S = [s_{-k+1}, …, s_{-1}, s_0], where s_0 is the
// (partial) selection vector of the current cycle. Cycles before the start
// of the campaign are zero-padded.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "linalg/matrix.h"
#include "linalg/sparse_matrix.h"
#include "mcs/selection_matrix.h"

namespace drcell::mcs {

class StateEncoder {
 public:
  StateEncoder(std::size_t cells, std::size_t history_cycles);

  std::size_t cells() const { return cells_; }
  std::size_t history_cycles() const { return k_; }
  /// Length of the flat encoding: k * m, ordered oldest step first.
  std::size_t state_size() const { return k_ * cells_; }

  /// Flat state vector at `cycle` (includes the in-progress selections of
  /// that cycle from the matrix).
  std::vector<double> encode(const SelectionMatrix& selection,
                             std::size_t cycle) const;

  /// Splits a flat state into the k per-step observation vectors that feed
  /// the DRQN's LSTM (each 1 x m). Batch variant stacks several states.
  std::vector<Matrix> to_sequence(const std::vector<double>& flat_state) const;
  std::vector<Matrix> to_sequence_batch(
      const std::vector<const std::vector<double>*>& flat_states) const;

  /// Sparse counterpart of encode(): the ascending flat indices of the 1.0
  /// entries. Per-cycle selection lists are ascending and steps are ordered
  /// oldest first, so the indices come out globally ascending — the order
  /// the sparse kernels require.
  std::vector<std::uint32_t> encode_ones(const SelectionMatrix& selection,
                                         std::size_t cycle) const;

  /// Sparse counterparts of to_sequence(): one [k x cells] SparseRowMatrix
  /// whose row j holds step j's nonzeros (the replay cache's
  /// per-transition layout) — from a flat state, or from an encode_ones()
  /// index list (all values 1.0).
  void to_sparse_steps(const std::vector<double>& flat_state,
                       SparseRowMatrix& out) const;
  void ones_to_sparse_steps(std::span<const std::uint32_t> ones,
                            SparseRowMatrix& out) const;

  /// Appends one state as row `row` of the k timestep-major step matrices
  /// (each pre-reset to [batch x cells]) — the sparse counterpart of one
  /// to_sequence_batch row, used for B = 1 candidate action selection.
  void ones_to_sequence_row(std::span<const std::uint32_t> ones,
                            std::size_t row,
                            std::vector<SparseRowMatrix>& steps) const;

 private:
  std::size_t cells_;
  std::size_t k_;
};

}  // namespace drcell::mcs
