// The cell-selection matrix S of Definition 4: S[i, j] = 1 iff cell i was
// selected for sensing at cycle j. The RL state (Sec. 4.1) is a recent-k
// window of its columns.
//
// Besides the dense bit grid, the matrix maintains incremental per-cycle
// selection lists (sorted, updated in mark()/reset()), so per-cycle queries
// cost O(1)/O(selected) instead of scanning all cells — the state encoder
// and the environment's unsensed-set bookkeeping read them on every step of
// the 1000-cell scale workload.
#pragma once

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace drcell::mcs {

class SelectionMatrix {
 public:
  SelectionMatrix(std::size_t cells, std::size_t cycles);

  std::size_t cells() const { return cells_; }
  std::size_t cycles() const { return cycles_; }

  bool selected(std::size_t cell, std::size_t cycle) const {
    return bits_[index(cell, cycle)] != 0;
  }
  /// Marks the cell selected; selecting twice in the same cycle is an error
  /// (the paper forbids re-selection within a cycle). O(selected-in-cycle)
  /// for the sorted-list insert, never O(cells).
  void mark(std::size_t cell, std::size_t cycle);

  std::size_t selected_count() const { return total_; }
  /// O(1).
  std::size_t selected_count_in_cycle(std::size_t cycle) const {
    DRCELL_CHECK_MSG(cycle < cycles_, "selection cycle out of range");
    return per_cycle_[cycle].size();
  }
  /// Cells selected in the cycle, ascending. O(1) — returns a const
  /// reference to the incrementally maintained list, valid until the next
  /// mark()/reset().
  const std::vector<std::size_t>& selected_cells_in_cycle(
      std::size_t cycle) const {
    DRCELL_CHECK_MSG(cycle < cycles_, "selection cycle out of range");
    return per_cycle_[cycle];
  }
  std::vector<std::size_t> unselected_cells_in_cycle(std::size_t cycle) const;

  /// 0/1 column of the given cycle (length = cells()).
  std::vector<double> cycle_vector(std::size_t cycle) const;

  void reset();

 private:
  std::size_t index(std::size_t cell, std::size_t cycle) const {
    DRCELL_CHECK_MSG(cell < cells_ && cycle < cycles_,
                     "selection index out of range");
    return cell * cycles_ + cycle;
  }

  std::size_t cells_;
  std::size_t cycles_;
  std::vector<std::uint8_t> bits_;
  // Per cycle: the selected cells, ascending; consistent with bits_ through
  // every mark()/reset().
  std::vector<std::vector<std::size_t>> per_cycle_;
  std::size_t total_ = 0;
};

}  // namespace drcell::mcs
