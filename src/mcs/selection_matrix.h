// The cell-selection matrix S of Definition 4: S[i, j] = 1 iff cell i was
// selected for sensing at cycle j. The RL state (Sec. 4.1) is a recent-k
// window of its columns.
#pragma once

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace drcell::mcs {

class SelectionMatrix {
 public:
  SelectionMatrix(std::size_t cells, std::size_t cycles);

  std::size_t cells() const { return cells_; }
  std::size_t cycles() const { return cycles_; }

  bool selected(std::size_t cell, std::size_t cycle) const {
    return bits_[index(cell, cycle)] != 0;
  }
  /// Marks the cell selected; selecting twice in the same cycle is an error
  /// (the paper forbids re-selection within a cycle).
  void mark(std::size_t cell, std::size_t cycle);

  std::size_t selected_count() const { return total_; }
  std::size_t selected_count_in_cycle(std::size_t cycle) const;
  std::vector<std::size_t> selected_cells_in_cycle(std::size_t cycle) const;
  std::vector<std::size_t> unselected_cells_in_cycle(std::size_t cycle) const;

  /// 0/1 column of the given cycle (length = cells()).
  std::vector<double> cycle_vector(std::size_t cycle) const;

  void reset();

 private:
  std::size_t index(std::size_t cell, std::size_t cycle) const {
    DRCELL_CHECK_MSG(cell < cells_ && cycle < cycles_,
                     "selection index out of range");
    return cell * cycles_ + cycle;
  }

  std::size_t cells_;
  std::size_t cycles_;
  std::vector<std::uint8_t> bits_;
  std::size_t total_ = 0;
};

}  // namespace drcell::mcs
