#include "mcs/error_metric.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace drcell::mcs {

ErrorMetric::ErrorMetric(Kind kind, std::vector<double> bounds)
    : kind_(kind), category_bounds_(std::move(bounds)) {
  if (kind_ == Kind::kClassification) {
    DRCELL_CHECK_MSG(!category_bounds_.empty(),
                     "classification metric needs category bounds");
    DRCELL_CHECK_MSG(
        std::is_sorted(category_bounds_.begin(), category_bounds_.end()),
        "category bounds must be ascending");
  }
}

ErrorMetric ErrorMetric::mae() { return ErrorMetric(Kind::kMae); }
ErrorMetric ErrorMetric::rmse() { return ErrorMetric(Kind::kRmse); }

ErrorMetric ErrorMetric::classification(std::vector<double> category_bounds) {
  return ErrorMetric(Kind::kClassification, std::move(category_bounds));
}

ErrorMetric ErrorMetric::aqi_classification() {
  return classification({50.0, 100.0, 150.0, 200.0, 300.0});
}

std::string ErrorMetric::name() const {
  switch (kind_) {
    case Kind::kMae: return "mean-absolute-error";
    case Kind::kRmse: return "root-mean-squared-error";
    case Kind::kClassification: return "classification-error";
  }
  return "unknown";
}

int ErrorMetric::categorize(double value) const {
  DRCELL_CHECK_MSG(kind_ == Kind::kClassification,
                   "categorize on a non-classification metric");
  const auto it = std::lower_bound(category_bounds_.begin(),
                                   category_bounds_.end(), value);
  return static_cast<int>(it - category_bounds_.begin());
}

double ErrorMetric::pointwise_error(double truth, double estimate) const {
  switch (kind_) {
    case Kind::kMae:
    case Kind::kRmse:
      return std::fabs(truth - estimate);
    case Kind::kClassification:
      return categorize(truth) == categorize(estimate) ? 0.0 : 1.0;
  }
  return 0.0;
}

double ErrorMetric::error(std::span<const double> truth,
                          std::span<const double> estimate,
                          const std::vector<std::size_t>& indices) const {
  DRCELL_CHECK(truth.size() == estimate.size());
  if (indices.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i : indices) {
    DRCELL_CHECK(i < truth.size());
    const double d = truth[i] - estimate[i];
    switch (kind_) {
      case Kind::kMae:
        acc += std::fabs(d);
        break;
      case Kind::kRmse:
        acc += d * d;
        break;
      case Kind::kClassification:
        acc += pointwise_error(truth[i], estimate[i]);
        break;
    }
  }
  acc /= static_cast<double>(indices.size());
  return kind_ == Kind::kRmse ? std::sqrt(acc) : acc;
}

}  // namespace drcell::mcs
