// Candidate-subset action spaces for metro-scale cell selection.
//
// At 10,000 cells evaluating (and argmaxing) the full Q head every step is
// the dominant cost of action selection, and the replay targets would need
// a 10k-wide bootstrap per sample. Following the reference DRQN deployments
// at CELL_SIZE = 10000, each decision instead scores a small candidate
// subset: the K_knn cells nearest (by grid proximity) to the centroid of
// the recently selected cells — exploitation around the spatial frontier
// the policy is building — plus a seeded uniform slice of the remaining
// unsensed cells for exploration. When the unsensed set fits inside the
// subset the generator returns it whole, so small tail-of-cycle decisions
// degenerate to the exact full action space (the covering case the
// argmax-equality test pins).
//
// Training on candidate subsets changes the *trajectory distribution*, not
// the train-step arithmetic — see docs/ARCHITECTURE.md for the divergence
// contract.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cs/knn_inference.h"
#include "util/rng.h"

namespace drcell::mcs {

struct CandidateSetOptions {
  /// K — candidates per decision. Q-head evaluation cost scales linearly
  /// with it; 64 keeps a 10,000-cell decision ~150x cheaper than full.
  std::size_t subset_size = 64;
  /// Fraction of K drawn uniformly from the unsensed remainder (the
  /// exploration slice); the rest is the KNN slice.
  double random_fraction = 0.5;
  /// Seed of the generator's private random stream (the exploration slice
  /// is deterministic given the seed and the call sequence).
  std::uint64_t seed = 0x5eedu;
};

class CandidateSetGenerator {
 public:
  /// `coords` are the per-cell grid centres (SensingTask::coords()).
  CandidateSetGenerator(std::vector<cs::CellCoord> coords,
                        CandidateSetOptions options = {});

  const CandidateSetOptions& options() const { return options_; }
  std::size_t num_cells() const { return coords_.size(); }

  /// Builds the candidate set for one decision. `unsensed` is the currently
  /// selectable set (any order, distinct ids); `recent` the recently
  /// selected cells anchoring the KNN slice (empty → fully random subset).
  /// Returns strictly ascending cell ids — the order the candidate Q-head
  /// ops and the bootstrap argmax rely on; a reference into a reused
  /// workspace, valid until the next generate() call.
  const std::vector<std::uint32_t>& generate(
      std::span<const std::size_t> unsensed,
      std::span<const std::size_t> recent);

 private:
  CandidateSetOptions options_;
  std::vector<cs::CellCoord> coords_;
  Rng rng_;
  std::vector<std::uint32_t> out_;
  std::vector<std::uint8_t> picked_;              // per-cell scratch
  std::vector<std::pair<double, std::size_t>> scored_;  // KNN scratch
};

}  // namespace drcell::mcs
