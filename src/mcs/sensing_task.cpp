#include "mcs/sensing_task.h"

namespace drcell::mcs {

SensingTask::SensingTask(std::string name, Matrix ground_truth,
                         std::vector<cs::CellCoord> coords, ErrorMetric metric,
                         double cycle_hours)
    : name_(std::move(name)),
      ground_truth_(std::move(ground_truth)),
      coords_(std::move(coords)),
      metric_(std::move(metric)),
      cycle_hours_(cycle_hours) {
  DRCELL_CHECK_MSG(ground_truth_.rows() > 0 && ground_truth_.cols() > 0,
                   "sensing task requires a non-empty data matrix");
  DRCELL_CHECK_MSG(coords_.size() == ground_truth_.rows(),
                   "one coordinate per cell required");
  DRCELL_CHECK_MSG(!ground_truth_.has_non_finite(),
                   "ground truth contains non-finite values");
  DRCELL_CHECK(cycle_hours_ > 0.0);
}

SensingTask SensingTask::slice_cycles(std::size_t first,
                                      std::size_t last) const {
  DRCELL_CHECK_MSG(first < last && last <= num_cycles(),
                   "invalid cycle slice");
  Matrix sliced(num_cells(), last - first);
  for (std::size_t r = 0; r < num_cells(); ++r)
    for (std::size_t c = first; c < last; ++c)
      sliced(r, c - first) = ground_truth_(r, c);
  return SensingTask(name_ + "[" + std::to_string(first) + "," +
                         std::to_string(last) + ")",
                     std::move(sliced), coords_, metric_, cycle_hours_);
}

}  // namespace drcell::mcs
