// SparseMcsEnvironment — the sequential decision process of Sec. 3/4.
//
// One episode walks the task's cycles in order. Within a cycle the agent
// repeatedly picks an unsensed cell (the RL action); the environment
// records the observation, re-runs data inference and consults the quality
// gate. When the gate is satisfied the cycle completes: the action that
// closed it earns R·q − c (q = 1), every other action earns −c, exactly as
// in Algorithms 1 and 2. The environment also keeps the bookkeeping the
// evaluation needs: the full selection matrix, per-cycle true inference
// errors and the (epsilon, p) satisfaction ratio.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cs/inference_engine.h"
#include "mcs/quality.h"
#include "mcs/selection_matrix.h"
#include "mcs/sensing_task.h"
#include "mcs/state_encoder.h"

namespace drcell::mcs {

struct EnvOptions {
  /// k — how many recent cycles form the RL state (Sec. 4.1).
  std::size_t history_cycles = 2;
  /// w — how many recent cycles feed the inference engine.
  std::size_t inference_window = 12;
  /// R — bonus when the action satisfies the quality requirement.
  /// 0 means "use the number of cells" (the paper's worked example).
  double reward_bonus = 0.0;
  /// c — cost of one sensing action (uniform case).
  double cost = 1.0;
  /// Fewest observations in a cycle before the gate is consulted.
  std::size_t min_observations = 3;
  /// Hard per-cycle selection cap; 0 means "all cells".
  std::size_t max_selections_per_cycle = 0;
  /// Future-work extension (Sec. 6): heterogeneous per-cell sensing costs.
  /// Empty means every cell costs `cost`.
  std::vector<double> cell_costs;
  /// Fully-observed history prepended before cycle 0 — the preliminary
  /// study data the organiser already holds when deployment starts
  /// (Sec. 5.3: "a 2-day preliminary study to collect data from all the
  /// cells"). cells x h; the inference window reaches back into it.
  /// Empty disables warm starting.
  Matrix warm_start;
  /// Scope label of this environment's `env.step` fault-injection site
  /// (util/fault_injection.h) — the campaign scheduler sets it to the
  /// campaign id so drills can target one campaign. Empty (the default)
  /// leaves the site matchable only by unscoped specs. Never affects the
  /// trajectory when no matching fault is armed.
  std::string fault_scope;
  /// Training-stage dense reward shaping: when > 0, every step whose
  /// observation count has reached `min_observations` additionally earns
  /// `error_shaping * (previous true cycle error - current true cycle
  /// error)` — the step's own marginal reduction of the true inference
  /// error. Like GroundTruthGate this consults the ground truth, which the
  /// organiser only has for the fully-observed historical data the DRQN is
  /// trained on offline (Sec. 5.3) — never enable it in a deployment
  /// environment. Forces a full inference per step (warm-started ALS, so
  /// typically one or two polish sweeps). 0 (the default) disables shaping
  /// and skips the per-step inference entirely.
  double error_shaping = 0.0;
};

struct StepResult {
  double reward = 0.0;
  bool cycle_complete = false;     ///< the cycle's data collection ended
  bool quality_satisfied = false;  ///< gate fired (vs forced completion)
  bool episode_done = false;       ///< no more cycles in the horizon
  double true_cycle_error = 0.0;   ///< only valid when cycle_complete
};

/// Summary of one completed episode (used by trainers and the campaign
/// runner alike).
struct EpisodeStats {
  std::size_t cycles = 0;
  std::size_t total_selections = 0;
  double total_reward = 0.0;
  double total_cost = 0.0;
  std::vector<double> cycle_errors;        ///< true error per cycle
  std::vector<std::size_t> cycle_selected; ///< #selected per cycle

  double average_selections_per_cycle() const {
    return cycles ? static_cast<double>(total_selections) /
                        static_cast<double>(cycles)
                  : 0.0;
  }
  /// Fraction of cycles whose true error was <= epsilon — the post-hoc
  /// verification of (epsilon, p)-quality (Eq. 1).
  double quality_satisfaction_ratio(double epsilon) const;
};

class SparseMcsEnvironment {
 public:
  SparseMcsEnvironment(std::shared_ptr<const SensingTask> task,
                       cs::InferenceEnginePtr engine,
                       std::shared_ptr<const QualityGate> gate,
                       EnvOptions options = {});

  const SensingTask& task() const { return *task_; }
  const EnvOptions& options() const { return options_; }
  const StateEncoder& encoder() const { return encoder_; }
  std::size_t num_cells() const { return task_->num_cells(); }

  /// Starts a fresh episode at cycle 0.
  void reset();

  std::size_t current_cycle() const { return cycle_; }
  bool episode_done() const { return done_; }

  /// Flat RL state (k*m, oldest cycle first) at the current position.
  std::vector<double> state() const;
  /// Sparse state: the ascending flat indices of the 1.0 entries of
  /// state() (see StateEncoder::encode_ones) — O(k·selected) instead of
  /// O(k·cells), the metro-tier representation.
  std::vector<std::uint32_t> state_ones() const;
  /// mask[i] == 1 iff cell i may be selected now. The mask is maintained
  /// incrementally (O(1) per step, O(changed) per cycle turnover) and
  /// returned by const reference — no O(cells) copy per call. The
  /// reference is invalidated by the next step()/reset(); copy it to keep
  /// it across steps (e.g. a transition's next_mask).
  const std::vector<std::uint8_t>& action_mask() const { return mask_; }
  /// The cells selectable right now — the complement of the current cycle's
  /// selections; empty once the episode is done. O(1): returns a const
  /// reference to the incrementally maintained set (swap-removal order, not
  /// ascending — deterministic for a given action sequence). Invalidated by
  /// the next step()/reset().
  const std::vector<std::size_t>& unsensed_cells() const { return unsensed_; }
  /// O(1) membership test: may `cell` be selected now?
  bool can_select(std::size_t cell) const {
    return cell < unsensed_pos_.size() && unsensed_pos_[cell] != kSensed;
  }

  /// Senses `cell` in the current cycle. Requires an unsensed cell and an
  /// unfinished episode.
  StepResult step(std::size_t cell);

  /// Runs the rest of the current cycle with an arbitrary selection policy
  /// (used by baselines). Returns the step result that completed the cycle.
  template <typename PickCell>
  StepResult run_cycle(PickCell&& pick) {
    StepResult last;
    do {
      last = step(pick(*this));
    } while (!last.cycle_complete);
    return last;
  }

  /// The observation window the inference engine currently sees.
  const cs::PartialMatrix& observation_window() const { return window_; }
  /// First campaign cycle covered by the window (warm-start columns, if
  /// any, precede it).
  std::size_t window_start() const {
    return window_anchor_ < 0 ? 0 : static_cast<std::size_t>(window_anchor_);
  }
  /// Column of the window holding the current cycle.
  std::size_t current_window_col() const {
    return static_cast<std::size_t>(static_cast<long>(cycle_) -
                                    window_anchor_);
  }
  /// Observations of the current cycle so far.
  std::size_t observations_this_cycle() const { return obs_this_cycle_; }

  const SelectionMatrix& selections() const { return selection_; }
  const EpisodeStats& stats() const { return stats_; }

 private:
  static constexpr std::size_t kSensed = static_cast<std::size_t>(-1);

  void advance_window_to(std::size_t cycle);
  double cost_of(std::size_t cell) const;
  std::size_t max_selections() const;
  /// O(cells): every cell becomes selectable (episode start).
  void rebuild_unsensed();
  /// O(1) swap-removal of a just-sensed cell from the unsensed set.
  void remove_unsensed(std::size_t cell);

  std::shared_ptr<const SensingTask> task_;
  cs::InferenceEnginePtr engine_;
  std::shared_ptr<const QualityGate> gate_;
  EnvOptions options_;
  StateEncoder encoder_;

  SelectionMatrix selection_;
  // Incrementally maintained complement of the current cycle's selections:
  // `unsensed_` is the dense list, `unsensed_pos_[cell]` its position in
  // that list (kSensed when selected), `mask_` the matching 0/1 action
  // mask. step() updates all three in O(1); a cycle turnover restores the
  // finished cycle's selections in O(changed).
  std::vector<std::size_t> unsensed_;
  std::vector<std::size_t> unsensed_pos_;
  std::vector<std::uint8_t> mask_;
  cs::PartialMatrix window_;  // cells x window-cycles observations
  long window_anchor_ = 0;    // campaign cycle of window col 0 (< 0 = warm)
  // Reward-shaping state: the true cycle error after the previous step of
  // the current cycle (invalid before the first measurable error of a cycle
  // — the first shaped step has no predecessor to difference against).
  double shaping_prev_error_ = 0.0;
  bool shaping_have_prev_ = false;
  std::size_t cycle_ = 0;
  std::size_t obs_this_cycle_ = 0;
  bool done_ = false;
  EpisodeStats stats_;
};

}  // namespace drcell::mcs
