#include "mcs/state_encoder.h"

namespace drcell::mcs {

StateEncoder::StateEncoder(std::size_t cells, std::size_t history_cycles)
    : cells_(cells), k_(history_cycles) {
  DRCELL_CHECK(cells_ > 0);
  DRCELL_CHECK_MSG(k_ > 0, "state needs at least the current cycle");
}

std::vector<double> StateEncoder::encode(const SelectionMatrix& selection,
                                         std::size_t cycle) const {
  DRCELL_CHECK(selection.cells() == cells_);
  DRCELL_CHECK(cycle < selection.cycles());
  std::vector<double> state(state_size(), 0.0);
  // Slice j of the flat state holds cycle (cycle - k + 1 + j). Only the
  // selected cells are touched (the matrix keeps incremental per-cycle
  // lists), so filling costs O(k·selected) on top of the zero init.
  for (std::size_t j = 0; j < k_; ++j) {
    const std::size_t age = k_ - 1 - j;  // how many cycles back
    if (age > cycle) continue;           // before the campaign: zeros
    const std::size_t src = cycle - age;
    for (std::size_t cell : selection.selected_cells_in_cycle(src))
      state[j * cells_ + cell] = 1.0;
  }
  return state;
}

std::vector<std::uint32_t> StateEncoder::encode_ones(
    const SelectionMatrix& selection, std::size_t cycle) const {
  DRCELL_CHECK(selection.cells() == cells_);
  DRCELL_CHECK(cycle < selection.cycles());
  std::vector<std::uint32_t> ones;
  for (std::size_t j = 0; j < k_; ++j) {
    const std::size_t age = k_ - 1 - j;
    if (age > cycle) continue;
    const std::size_t src = cycle - age;
    // selected_cells_in_cycle is ascending and slice offsets grow with j,
    // so the flat indices are pushed in globally ascending order.
    for (std::size_t cell : selection.selected_cells_in_cycle(src))
      ones.push_back(static_cast<std::uint32_t>(j * cells_ + cell));
  }
  return ones;
}

void StateEncoder::to_sparse_steps(const std::vector<double>& flat_state,
                                   SparseRowMatrix& out) const {
  DRCELL_CHECK_MSG(flat_state.size() == state_size(),
                   "flat state size mismatch");
  out.reset(k_, cells_);
  for (std::size_t j = 0; j < k_; ++j)
    for (std::size_t cell = 0; cell < cells_; ++cell) {
      const double v = flat_state[j * cells_ + cell];
      if (v != 0.0) out.append(j, cell, v);
    }
}

void StateEncoder::ones_to_sparse_steps(std::span<const std::uint32_t> ones,
                                        SparseRowMatrix& out) const {
  out.reset(k_, cells_);
  for (const std::uint32_t flat : ones) {
    DRCELL_DCHECK_MSG(flat < state_size(), "flat index out of range");
    out.append(flat / cells_, flat % cells_, 1.0);
  }
}

void StateEncoder::ones_to_sequence_row(
    std::span<const std::uint32_t> ones, std::size_t row,
    std::vector<SparseRowMatrix>& steps) const {
  DRCELL_CHECK_MSG(steps.size() == k_, "sequence length mismatch");
  for (const std::uint32_t flat : ones) {
    DRCELL_DCHECK_MSG(flat < state_size(), "flat index out of range");
    steps[flat / cells_].append(row, flat % cells_, 1.0);
  }
}

std::vector<Matrix> StateEncoder::to_sequence(
    const std::vector<double>& flat_state) const {
  const std::vector<const std::vector<double>*> one{&flat_state};
  return to_sequence_batch(one);
}

std::vector<Matrix> StateEncoder::to_sequence_batch(
    const std::vector<const std::vector<double>*>& flat_states) const {
  DRCELL_CHECK(!flat_states.empty());
  const std::size_t batch = flat_states.size();
  std::vector<Matrix> steps(k_, Matrix(batch, cells_));
  for (std::size_t b = 0; b < batch; ++b) {
    DRCELL_CHECK(flat_states[b] != nullptr);
    const auto& flat = *flat_states[b];
    DRCELL_CHECK_MSG(flat.size() == state_size(), "flat state size mismatch");
    for (std::size_t j = 0; j < k_; ++j)
      for (std::size_t cell = 0; cell < cells_; ++cell)
        steps[j](b, cell) = flat[j * cells_ + cell];
  }
  return steps;
}

}  // namespace drcell::mcs
