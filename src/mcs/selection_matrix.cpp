#include "mcs/selection_matrix.h"

#include <algorithm>

namespace drcell::mcs {

SelectionMatrix::SelectionMatrix(std::size_t cells, std::size_t cycles)
    : cells_(cells), cycles_(cycles), bits_(cells * cycles, 0),
      per_cycle_(cycles) {
  DRCELL_CHECK(cells > 0 && cycles > 0);
}

void SelectionMatrix::mark(std::size_t cell, std::size_t cycle) {
  auto& b = bits_[index(cell, cycle)];
  DRCELL_CHECK_MSG(b == 0, "cell selected twice in the same cycle");
  b = 1;
  auto& list = per_cycle_[cycle];
  list.insert(std::lower_bound(list.begin(), list.end(), cell), cell);
  ++total_;
}

std::vector<std::size_t> SelectionMatrix::unselected_cells_in_cycle(
    std::size_t cycle) const {
  std::vector<std::size_t> out;
  out.reserve(cells_ - selected_count_in_cycle(cycle));
  for (std::size_t cell = 0; cell < cells_; ++cell)
    if (!selected(cell, cycle)) out.push_back(cell);
  return out;
}

std::vector<double> SelectionMatrix::cycle_vector(std::size_t cycle) const {
  std::vector<double> v(cells_, 0.0);
  for (std::size_t cell : selected_cells_in_cycle(cycle)) v[cell] = 1.0;
  return v;
}

void SelectionMatrix::reset() {
  std::fill(bits_.begin(), bits_.end(), 0);
  for (auto& list : per_cycle_) list.clear();
  total_ = 0;
}

}  // namespace drcell::mcs
