#include "mcs/selection_matrix.h"

namespace drcell::mcs {

SelectionMatrix::SelectionMatrix(std::size_t cells, std::size_t cycles)
    : cells_(cells), cycles_(cycles), bits_(cells * cycles, 0) {
  DRCELL_CHECK(cells > 0 && cycles > 0);
}

void SelectionMatrix::mark(std::size_t cell, std::size_t cycle) {
  auto& b = bits_[index(cell, cycle)];
  DRCELL_CHECK_MSG(b == 0, "cell selected twice in the same cycle");
  b = 1;
  ++total_;
}

std::size_t SelectionMatrix::selected_count_in_cycle(std::size_t cycle) const {
  std::size_t n = 0;
  for (std::size_t cell = 0; cell < cells_; ++cell)
    if (selected(cell, cycle)) ++n;
  return n;
}

std::vector<std::size_t> SelectionMatrix::selected_cells_in_cycle(
    std::size_t cycle) const {
  std::vector<std::size_t> out;
  for (std::size_t cell = 0; cell < cells_; ++cell)
    if (selected(cell, cycle)) out.push_back(cell);
  return out;
}

std::vector<std::size_t> SelectionMatrix::unselected_cells_in_cycle(
    std::size_t cycle) const {
  std::vector<std::size_t> out;
  for (std::size_t cell = 0; cell < cells_; ++cell)
    if (!selected(cell, cycle)) out.push_back(cell);
  return out;
}

std::vector<double> SelectionMatrix::cycle_vector(std::size_t cycle) const {
  std::vector<double> v(cells_, 0.0);
  for (std::size_t cell = 0; cell < cells_; ++cell)
    if (selected(cell, cycle)) v[cell] = 1.0;
  return v;
}

void SelectionMatrix::reset() {
  std::fill(bits_.begin(), bits_.end(), 0);
  total_ = 0;
}

}  // namespace drcell::mcs
