// A Sparse MCS sensing task: the ground-truth data matrix (Definition 3),
// the geometry of the sensing area (Definition 1) and the error metric the
// organiser cares about.
#pragma once

#include <string>
#include <vector>

#include "cs/knn_inference.h"  // CellCoord
#include "linalg/matrix.h"
#include "mcs/error_metric.h"

namespace drcell::mcs {

class SensingTask {
 public:
  /// ground_truth is cells x cycles; coords has one entry per cell.
  SensingTask(std::string name, Matrix ground_truth,
              std::vector<cs::CellCoord> coords, ErrorMetric metric,
              double cycle_hours = 1.0);

  const std::string& name() const { return name_; }
  std::size_t num_cells() const { return ground_truth_.rows(); }
  std::size_t num_cycles() const { return ground_truth_.cols(); }
  double cycle_hours() const { return cycle_hours_; }

  const Matrix& ground_truth() const { return ground_truth_; }
  double truth(std::size_t cell, std::size_t cycle) const {
    // Public API boundary: stays bounds-checked in every build mode (the
    // DCHECK demotion applies to internal hot loops, not entry points).
    return ground_truth_.at(cell, cycle);
  }
  const std::vector<cs::CellCoord>& coords() const { return coords_; }
  const ErrorMetric& metric() const { return metric_; }

  /// Restriction of the task to cycles [first, last) — used to carve the
  /// preliminary-study training stage out of the full campaign.
  SensingTask slice_cycles(std::size_t first, std::size_t last) const;

 private:
  std::string name_;
  Matrix ground_truth_;
  std::vector<cs::CellCoord> coords_;
  ErrorMetric metric_;
  double cycle_hours_;
};

}  // namespace drcell::mcs
