#include "mcs/candidate_set.h"

#include <algorithm>
#include <cmath>

namespace drcell::mcs {

CandidateSetGenerator::CandidateSetGenerator(std::vector<cs::CellCoord> coords,
                                             CandidateSetOptions options)
    : options_(options), coords_(std::move(coords)), rng_(options.seed) {
  DRCELL_CHECK_MSG(!coords_.empty(), "candidate generator needs cell coords");
  DRCELL_CHECK_MSG(options_.subset_size > 0, "subset_size must be positive");
  DRCELL_CHECK_MSG(
      options_.random_fraction >= 0.0 && options_.random_fraction <= 1.0,
      "random_fraction must lie in [0, 1]");
  picked_.assign(coords_.size(), 0);
}

const std::vector<std::uint32_t>& CandidateSetGenerator::generate(
    std::span<const std::size_t> unsensed,
    std::span<const std::size_t> recent) {
  DRCELL_CHECK_MSG(!unsensed.empty(), "no selectable cells");
  out_.clear();

  const std::size_t k = options_.subset_size;
  if (unsensed.size() <= k) {
    // Covering case: the whole action space fits — candidate argmax equals
    // the full masked argmax exactly.
    for (const std::size_t cell : unsensed)
      out_.push_back(static_cast<std::uint32_t>(cell));
    std::sort(out_.begin(), out_.end());
    return out_;
  }

  std::size_t random_count = static_cast<std::size_t>(
      std::lround(options_.random_fraction * static_cast<double>(k)));
  random_count = std::min(random_count, k);
  std::size_t knn_count = k - random_count;
  if (recent.empty()) {
    // Nothing to anchor proximity on (cycle start): fully random subset.
    random_count = k;
    knn_count = 0;
  }

  if (knn_count > 0) {
    // Anchor: centroid of the recent selections. Nearest-first by squared
    // grid distance, ties broken by ascending cell id so the slice is
    // deterministic.
    double cx = 0.0;
    double cy = 0.0;
    for (const std::size_t cell : recent) {
      DRCELL_DCHECK(cell < coords_.size());
      cx += coords_[cell].x;
      cy += coords_[cell].y;
    }
    cx /= static_cast<double>(recent.size());
    cy /= static_cast<double>(recent.size());

    scored_.clear();
    for (const std::size_t cell : unsensed) {
      DRCELL_DCHECK(cell < coords_.size());
      const double dx = coords_[cell].x - cx;
      const double dy = coords_[cell].y - cy;
      scored_.emplace_back(dx * dx + dy * dy, cell);
    }
    const auto nearer = [](const std::pair<double, std::size_t>& a,
                           const std::pair<double, std::size_t>& b) {
      if (a.first != b.first) return a.first < b.first;
      return a.second < b.second;
    };
    std::nth_element(scored_.begin(), scored_.begin() + (knn_count - 1),
                     scored_.end(), nearer);
    for (std::size_t i = 0; i < knn_count; ++i) {
      const std::size_t cell = scored_[i].second;
      picked_[cell] = 1;
      out_.push_back(static_cast<std::uint32_t>(cell));
    }
  }

  // Exploration slice: uniform over the unsensed remainder. Rejection
  // sampling is cheap while the subset is small relative to the unsensed
  // set; if the draw stalls (tiny remainder) a deterministic sweep tops up.
  std::size_t attempts = 16 * random_count + 32;
  while (random_count > 0 && attempts-- > 0) {
    const std::size_t cell = unsensed[rng_.uniform_index(unsensed.size())];
    if (picked_[cell]) continue;
    picked_[cell] = 1;
    out_.push_back(static_cast<std::uint32_t>(cell));
    --random_count;
  }
  if (random_count > 0) {
    for (const std::size_t cell : unsensed) {
      if (picked_[cell]) continue;
      picked_[cell] = 1;
      out_.push_back(static_cast<std::uint32_t>(cell));
      if (--random_count == 0) break;
    }
  }

  for (const std::uint32_t cell : out_) picked_[cell] = 0;
  std::sort(out_.begin(), out_.end());
  return out_;
}

}  // namespace drcell::mcs
