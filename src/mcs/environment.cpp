#include "mcs/environment.h"

#include <algorithm>

#include "util/fault_injection.h"

namespace drcell::mcs {

double EpisodeStats::quality_satisfaction_ratio(double epsilon) const {
  if (cycle_errors.empty()) return 0.0;
  std::size_t ok = 0;
  for (double e : cycle_errors)
    if (e <= epsilon) ++ok;
  return static_cast<double>(ok) / static_cast<double>(cycle_errors.size());
}

SparseMcsEnvironment::SparseMcsEnvironment(
    std::shared_ptr<const SensingTask> task, cs::InferenceEnginePtr engine,
    std::shared_ptr<const QualityGate> gate, EnvOptions options)
    : task_(std::move(task)),
      engine_(std::move(engine)),
      gate_(std::move(gate)),
      options_(options),
      encoder_(task_ ? task_->num_cells() : 1, options.history_cycles),
      selection_(task_ ? task_->num_cells() : 1,
                 task_ ? task_->num_cycles() : 1),
      window_(task_ ? task_->num_cells() : 1, 1) {
  DRCELL_CHECK(task_ != nullptr);
  DRCELL_CHECK(engine_ != nullptr);
  DRCELL_CHECK(gate_ != nullptr);
  DRCELL_CHECK(options_.inference_window > 0);
  DRCELL_CHECK(options_.cost >= 0.0);
  DRCELL_CHECK(options_.error_shaping >= 0.0);
  DRCELL_CHECK_MSG(options_.min_observations >= 1,
                   "at least one observation per cycle is required");
  if (!options_.cell_costs.empty()) {
    DRCELL_CHECK_MSG(options_.cell_costs.size() == task_->num_cells(),
                     "cell_costs must have one entry per cell");
    for (double c : options_.cell_costs) DRCELL_CHECK(c >= 0.0);
  }
  if (!options_.warm_start.empty()) {
    DRCELL_CHECK_MSG(options_.warm_start.rows() == task_->num_cells(),
                     "warm_start must have one row per cell");
    DRCELL_CHECK_MSG(!options_.warm_start.has_non_finite(),
                     "warm_start contains non-finite values");
  }
  reset();
}

void SparseMcsEnvironment::reset() {
  selection_.reset();
  cycle_ = 0;
  obs_this_cycle_ = 0;
  shaping_have_prev_ = false;
  done_ = false;
  stats_ = EpisodeStats{};
  rebuild_unsensed();
  advance_window_to(0);
}

void SparseMcsEnvironment::rebuild_unsensed() {
  const std::size_t cells = task_->num_cells();
  unsensed_.resize(cells);
  unsensed_pos_.resize(cells);
  for (std::size_t cell = 0; cell < cells; ++cell) {
    unsensed_[cell] = cell;
    unsensed_pos_[cell] = cell;
  }
  mask_.assign(cells, 1);
}

void SparseMcsEnvironment::remove_unsensed(std::size_t cell) {
  const std::size_t pos = unsensed_pos_[cell];
  DRCELL_CHECK_MSG(pos != kSensed, "cell already removed from unsensed set");
  const std::size_t last = unsensed_.back();
  unsensed_[pos] = last;
  unsensed_pos_[last] = pos;
  unsensed_.pop_back();
  unsensed_pos_[cell] = kSensed;
  mask_[cell] = 0;
}

void SparseMcsEnvironment::advance_window_to(std::size_t cycle) {
  const long w = static_cast<long>(options_.inference_window);
  const long warm = static_cast<long>(options_.warm_start.cols());
  // The window may reach back into the warm-start block (virtual cycles
  // -warm .. -1, fully observed preliminary-study data).
  window_anchor_ = std::max(static_cast<long>(cycle) + 1 - w, -warm);
  const std::size_t width =
      static_cast<std::size_t>(static_cast<long>(cycle) - window_anchor_ + 1);
  window_ = cs::PartialMatrix(task_->num_cells(), width);
  for (long v = window_anchor_; v <= static_cast<long>(cycle); ++v) {
    const std::size_t col = static_cast<std::size_t>(v - window_anchor_);
    if (v < 0) {
      const std::size_t warm_col = static_cast<std::size_t>(warm + v);
      for (std::size_t cell = 0; cell < task_->num_cells(); ++cell)
        window_.set(cell, col, options_.warm_start(cell, warm_col));
    } else {
      // Sensed entries of past campaign cycles stay available.
      const std::size_t c = static_cast<std::size_t>(v);
      for (std::size_t cell = 0; cell < task_->num_cells(); ++cell)
        if (selection_.selected(cell, c))
          window_.set(cell, col, task_->truth(cell, c));
    }
  }
}

double SparseMcsEnvironment::cost_of(std::size_t cell) const {
  return options_.cell_costs.empty() ? options_.cost
                                     : options_.cell_costs[cell];
}

std::size_t SparseMcsEnvironment::max_selections() const {
  return options_.max_selections_per_cycle == 0
             ? task_->num_cells()
             : std::min(options_.max_selections_per_cycle,
                        task_->num_cells());
}

std::vector<double> SparseMcsEnvironment::state() const {
  // After the final cycle completes the state of the would-be next cycle is
  // still well defined (all-empty current column) — trainers use it as the
  // terminal next-state.
  const std::size_t c = std::min(cycle_, task_->num_cycles() - 1);
  return encoder_.encode(selection_, c);
}

std::vector<std::uint32_t> SparseMcsEnvironment::state_ones() const {
  const std::size_t c = std::min(cycle_, task_->num_cycles() - 1);
  return encoder_.encode_ones(selection_, c);
}

StepResult SparseMcsEnvironment::step(std::size_t cell) {
  // Planted BEFORE any mutation: a transient injected fault leaves the
  // environment untouched, so the scheduler's in-wave retry of the same
  // action continues the trajectory bit-identically.
  DRCELL_FAULT_SITE("env.step", options_.fault_scope);
  DRCELL_CHECK_MSG(!done_, "step() after episode end");
  DRCELL_CHECK_MSG(cell < task_->num_cells(), "action out of range");
  DRCELL_CHECK_MSG(!selection_.selected(cell, cycle_),
                   "cell already sensed this cycle (mask violation)");

  selection_.mark(cell, cycle_);
  remove_unsensed(cell);
  window_.set(cell, current_window_col(), task_->truth(cell, cycle_));
  ++obs_this_cycle_;
  stats_.total_selections += 1;
  const double cost = cost_of(cell);
  stats_.total_cost += cost;

  StepResult result;
  result.reward = -cost;

  const bool everything_sensed = obs_this_cycle_ == task_->num_cells();
  const bool cap_reached = obs_this_cycle_ >= max_selections();
  bool satisfied = false;
  double cycle_error = 0.0;
  if (obs_this_cycle_ >= options_.min_observations || everything_sensed) {
    const std::size_t col = current_window_col();
    // Inference is the expensive part of a step; run it only when the gate
    // actually consumes it (the LOO gate does its own) or when the cycle is
    // about to close and the true error must be recorded.
    Matrix inferred;
    bool have_inferred = false;
    auto ensure_inferred = [&] {
      if (!have_inferred) {
        inferred = engine_->infer(window_);
        have_inferred = true;
      }
    };
    if (everything_sensed) {
      satisfied = true;
    } else {
      if (gate_->needs_inference()) ensure_inferred();
      const QualityContext ctx{*task_, window_,
                               col,    cycle_,
                               have_inferred ? &inferred : nullptr,
                               *engine_};
      satisfied = gate_->satisfied(ctx);
    }
    if (satisfied || cap_reached || options_.error_shaping > 0.0) {
      ensure_inferred();
      cycle_error =
          true_cycle_error(*task_, window_, col, inferred, cycle_);
    }
    if (options_.error_shaping > 0.0) {
      // Dense training-stage shaping (see EnvOptions::error_shaping): the
      // step earns its own marginal reduction of the true cycle error. The
      // shaped rewards of a cycle telescope to
      // error_shaping * (first measured error - final error), so the return
      // a policy maximises is exactly the total error reduction its
      // placements achieve.
      if (shaping_have_prev_)
        result.reward +=
            options_.error_shaping * (shaping_prev_error_ - cycle_error);
      shaping_prev_error_ = cycle_error;
      shaping_have_prev_ = true;
    }
  }

  if (satisfied || cap_reached) {
    // Cycle ends. q = 1 only if the quality requirement was actually met.
    const double bonus = options_.reward_bonus > 0.0
                             ? options_.reward_bonus
                             : static_cast<double>(task_->num_cells());
    if (satisfied) result.reward += bonus;
    result.cycle_complete = true;
    result.quality_satisfied = satisfied;
    result.true_cycle_error = cycle_error;

    stats_.cycles += 1;
    stats_.cycle_errors.push_back(cycle_error);
    stats_.cycle_selected.push_back(obs_this_cycle_);

    obs_this_cycle_ = 0;
    shaping_have_prev_ = false;  // the next cycle differences from scratch
    if (cycle_ + 1 >= task_->num_cycles()) {
      done_ = true;
      result.episode_done = true;
      // Nothing is selectable after the episode: empty the unsensed set and
      // zero the mask for the cells still in it (O(remaining)).
      for (std::size_t c : unsensed_) {
        unsensed_pos_[c] = kSensed;
        mask_[c] = 0;
      }
      unsensed_.clear();
    } else {
      ++cycle_;
      // The new cycle starts with no selections: restore exactly the cells
      // the finished cycle consumed (O(changed), not O(cells)).
      for (std::size_t c : selection_.selected_cells_in_cycle(cycle_ - 1)) {
        unsensed_pos_[c] = unsensed_.size();
        unsensed_.push_back(c);
        mask_[c] = 1;
      }
      advance_window_to(cycle_);
    }
  }

  stats_.total_reward += result.reward;
  return result;
}

}  // namespace drcell::mcs
