// Inference-error metrics of Definition 6: mean absolute error for
// continuous signals (temperature, humidity) and classification error for
// categorised signals (the U-Air PM2.5 AQI levels).
#pragma once

#include <span>
#include <string>
#include <vector>

namespace drcell::mcs {

class ErrorMetric {
 public:
  enum class Kind { kMae, kRmse, kClassification };

  static ErrorMetric mae();
  static ErrorMetric rmse();
  /// Classification error with category upper bounds (ascending). A value v
  /// falls in the first category whose bound is >= v; values above the last
  /// bound fall in category bounds.size().
  static ErrorMetric classification(std::vector<double> category_bounds);
  /// The six U-Air AQI categories: Good (0-50), Moderate (51-100),
  /// Unhealthy-for-sensitive (101-150), Unhealthy (151-200),
  /// Very Unhealthy (201-300), Hazardous (>300).
  static ErrorMetric aqi_classification();

  Kind kind() const { return kind_; }
  bool is_classification() const { return kind_ == Kind::kClassification; }
  std::string name() const;

  /// Category index of a raw value (classification metrics only).
  int categorize(double value) const;

  /// Error between truth and estimate restricted to `indices`.
  /// MAE: mean |t - e|; RMSE: sqrt(mean (t-e)²);
  /// classification: fraction of indices whose category differs.
  /// Empty `indices` yields 0 (nothing left to infer — perfect).
  double error(std::span<const double> truth, std::span<const double> estimate,
               const std::vector<std::size_t>& indices) const;

  /// Per-entry error contribution (absolute deviation or 0/1 mismatch) —
  /// what the leave-one-out assessor samples.
  double pointwise_error(double truth, double estimate) const;

 private:
  explicit ErrorMetric(Kind kind, std::vector<double> bounds = {});

  Kind kind_;
  std::vector<double> category_bounds_;
};

}  // namespace drcell::mcs
