#include "mcs/quality.h"

#include <cmath>

#include "util/statistics.h"

namespace drcell::mcs {

std::vector<std::size_t> unobserved_cells_in_cycle(
    const cs::PartialMatrix& window, std::size_t window_col) {
  std::vector<std::size_t> out;
  for (std::size_t cell = 0; cell < window.rows(); ++cell)
    if (!window.observed(cell, window_col)) out.push_back(cell);
  return out;
}

double true_cycle_error(const SensingTask& task,
                        const cs::PartialMatrix& window,
                        std::size_t window_col, const Matrix& inferred,
                        std::size_t cycle) {
  const std::size_t col = window_col;
  DRCELL_CHECK(col < window.cols());
  DRCELL_CHECK(cycle < task.num_cycles());
  const auto unobserved = unobserved_cells_in_cycle(window, col);
  std::vector<double> truth(task.num_cells());
  std::vector<double> est(task.num_cells());
  for (std::size_t cell = 0; cell < task.num_cells(); ++cell) {
    truth[cell] = task.truth(cell, cycle);
    est[cell] = inferred(cell, col);
  }
  return task.metric().error(truth, est, unobserved);
}

GroundTruthGate::GroundTruthGate(double epsilon) : epsilon_(epsilon) {
  DRCELL_CHECK(epsilon_ >= 0.0);
}

bool GroundTruthGate::satisfied(const QualityContext& ctx) const {
  DRCELL_CHECK_MSG(ctx.inferred != nullptr,
                   "GroundTruthGate requires the inferred window");
  return true_cycle_error(ctx.task, ctx.window, ctx.window_col,
                          *ctx.inferred, ctx.cycle) <= epsilon_;
}

LooBayesianGate::LooBayesianGate(double epsilon, double p)
    : epsilon_(epsilon), p_(p) {
  DRCELL_CHECK(epsilon_ >= 0.0);
  DRCELL_CHECK(p_ > 0.0 && p_ < 1.0);
}

double LooBayesianGate::probability(const QualityContext& ctx) const {
  const std::size_t col = ctx.window_col;
  DRCELL_CHECK(col < ctx.window.cols());
  const auto& observed = ctx.window.observed_rows_in_col(col);
  if (observed.empty()) return 0.0;  // nothing sensed: no evidence at all
  const auto unobserved = unobserved_cells_in_cycle(ctx.window, col);
  if (unobserved.empty()) return 1.0;  // everything sensed: error is zero

  // Leave-one-out: withhold each current-cycle observation in turn and
  // record the error the engine makes on the held-out cell.
  const std::vector<double> loo_predictions =
      ctx.engine.loo_column_predictions(ctx.window, col);
  DRCELL_CHECK(loo_predictions.size() == observed.size());
  std::vector<double> loo_errors;
  loo_errors.reserve(observed.size());
  for (std::size_t k = 0; k < observed.size(); ++k) {
    const double truth = ctx.window.value(observed[k], col);
    loo_errors.push_back(
        ctx.task.metric().pointwise_error(truth, loo_predictions[k]));
  }

  if (ctx.task.metric().is_classification()) {
    // Beta-Bernoulli posterior over the per-cell misclassification rate.
    // The prior carries one pseudo-failure (Beta(2, 1)): LOO errors are
    // measured at *sensed* cells, which systematically look easier than the
    // unsensed cells the gate is actually vouching for, so the prior leans
    // pessimistic until the evidence accumulates.
    double fails = 0.0;
    for (double e : loo_errors) fails += e;
    const double alpha = 2.0 + fails;
    const double beta =
        1.0 + static_cast<double>(loo_errors.size()) - fails;
    return incomplete_beta(alpha, beta, epsilon_);
  }

  // Continuous metric: Bayesian estimate of the cycle error. The LOO
  // errors are s samples of the per-cell inference error with mean mu and
  // spread sd; the cycle error is the average over the u unsensed cells.
  // Per-cell errors are neither independent (they share one low-rank fit,
  // so a pure CLT sqrt(u) shrinkage is overconfident) nor perfectly
  // correlated (each cell also carries its own unpredictable residual, so
  // treating the average as a single draw is far too conservative). We use
  // an effective sample size u_eff between those extremes, and a Student-t
  // with s−1 dof to account for estimating (mu, sd) from only s LOO
  // samples:  P = T_{s-1}((eps − mu) / (sd · sqrt(1/u_eff + 1/s))).
  const double mu = mean(loo_errors);
  const double sd = stddev(loo_errors);
  const double s = static_cast<double>(loo_errors.size());
  // Fewer than three LOO samples cannot support a confident continuous
  // decision (with two, the deviations from their mean are always equal, so
  // the spread estimate degenerates to zero).
  if (s < 3.0) return 0.0;
  if (sd <= 1e-12) return mu <= epsilon_ ? 1.0 : 0.0;
  // u^0.2 rather than the CLT's sqrt(u): inference errors share the
  // low-rank fit and the LOO sample is drawn from the (easier) sensed
  // cells, so the averaging over unsensed cells buys far less certainty
  // than independence would suggest. Calibrated against the post-hoc
  // satisfaction ratios of the Fig. 6 bench.
  const double u_eff = std::max(
      1.0, std::pow(static_cast<double>(unobserved.size()), 0.2));
  const double scale = sd * std::sqrt(1.0 / u_eff + 1.0 / s);
  return student_t_cdf((epsilon_ - mu) / scale, s - 1.0);
}

bool LooBayesianGate::satisfied(const QualityContext& ctx) const {
  return probability(ctx) >= p_;
}

}  // namespace drcell::mcs
