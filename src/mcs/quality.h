// Quality gates: decide whether the cells sensed so far in the current
// cycle suffice, i.e. whether data collection may stop (Definition 6).
//
// Two implementations mirror the paper's two phases:
//  * GroundTruthGate — the training stage, where the organiser has run a
//    preliminary study and knows every cell's value (footnote 2), so the
//    inference error is computed directly.
//  * LooBayesianGate — the deployed testing stage, where the truth of
//    unsensed cells is unknown and a leave-one-out Bayesian estimate of
//    P(cycle error <= epsilon) gates against the requested p.
#pragma once

#include <memory>
#include <string>

#include "cs/inference_engine.h"
#include "mcs/sensing_task.h"

namespace drcell::mcs {

struct QualityContext {
  const SensingTask& task;
  /// Observations over the inference window (cells x window cycles).
  const cs::PartialMatrix& window;
  /// Column of `window` holding the cycle being assessed (its last column).
  std::size_t window_col = 0;
  /// Absolute index of the cycle being assessed.
  std::size_t cycle = 0;
  /// Engine output on `window`. Provided by the environment only when the
  /// gate declares needs_inference(); may be null otherwise.
  const Matrix* inferred = nullptr;
  /// Engine, for gates that need to re-run inference (leave-one-out).
  const cs::InferenceEngine& engine;
};

class QualityGate {
 public:
  virtual ~QualityGate() = default;
  /// True if the current cycle's quality requirement is met.
  virtual bool satisfied(const QualityContext& ctx) const = 0;
  /// Whether satisfied() reads ctx.inferred. Gates that run their own
  /// (leave-one-out) inference return false so the environment can skip a
  /// redundant full inference per step.
  virtual bool needs_inference() const { return true; }
  virtual std::string name() const = 0;
};

/// Training-stage gate: true cycle inference error (over the unsensed cells
/// of the current cycle) <= epsilon.
class GroundTruthGate final : public QualityGate {
 public:
  explicit GroundTruthGate(double epsilon);
  bool satisfied(const QualityContext& ctx) const override;
  std::string name() const override { return "ground-truth"; }
  double epsilon() const { return epsilon_; }

 private:
  double epsilon_;
};

/// Testing-stage gate: leave-one-out Bayesian estimate of
/// P(error(D[:,k], D-hat[:,k]) <= epsilon) >= p.
///
/// Continuous metrics (MAE/RMSE): the LOO errors e_1..e_s at sensed cells
/// are samples of the per-cell inference error; with a noninformative
/// prior, the Bayesian posterior predictive of a new error is Student-t
/// with s−1 dof, location mean(e) and scale sd(e)·sqrt(1+1/s), and
/// P = T_{s−1}((epsilon − mean) / scale). The cycle error counts as a
/// single predictive draw because inference errors are spatially
/// correlated (see quality.cpp for the full argument).
/// Classification metric: LOO mismatches are Bernoulli; with a Beta(1,1)
/// prior the posterior over the per-cell error rate theta is
/// Beta(1 + fails, 1 + hits) and P = I_epsilon(alpha, beta).
class LooBayesianGate final : public QualityGate {
 public:
  LooBayesianGate(double epsilon, double p);
  bool satisfied(const QualityContext& ctx) const override;
  bool needs_inference() const override { return false; }
  std::string name() const override { return "loo-bayesian"; }

  /// The probability estimate itself (exposed for tests and diagnostics).
  double probability(const QualityContext& ctx) const;

  double epsilon() const { return epsilon_; }
  double p() const { return p_; }

 private:
  double epsilon_;
  double p_;
};

/// Indices of the current-cycle column that are *not* observed — the cells
/// whose values must be inferred and therefore define the cycle error.
std::vector<std::size_t> unobserved_cells_in_cycle(
    const cs::PartialMatrix& window, std::size_t window_col);

/// True inference error of a cycle given the inferred window (restricted to
/// the unsensed cells of that cycle). Shared by the training gate and the
/// post-hoc (epsilon, p) verifier.
double true_cycle_error(const SensingTask& task,
                        const cs::PartialMatrix& window,
                        std::size_t window_col, const Matrix& inferred,
                        std::size_t cycle);

}  // namespace drcell::mcs
