// Deep (recurrent) Q-network learning, Algorithm 2 of the paper: δ-greedy
// behaviour policy, experience replay, fixed Q-targets synchronised every
// RPLACE_ITER gradient steps, TD loss (Eqs. 5-7) restricted to the action
// actually taken.
//
// train_step() is batch-major end to end: the replay buffer assembles one
// timestep-major minibatch from its encoded-sequence cache
// (ReplayBuffer::fill_timestep_major), the target/online forwards, the
// Double-DQN argmax, the masked TD loss and the backward pass all run over
// [batch x m] matrices, and the per-sample loop survives only as
// train_step_reference() — the retained reference path the batched engine
// matches bit for bit under the std:: gate kernel
// (DqnOptions::reference_gate_kernel) and within the documented fastmath
// tolerance on the production fused-gate path
// (tests/batched_training_test.cpp, docs/ARCHITECTURE.md, and the
// self-checks in bench_micro_components).
#pragma once

#include <memory>
#include <span>

#include "mcs/state_encoder.h"
#include "nn/optimizer.h"
#include "rl/epsilon.h"
#include "rl/qnetwork.h"
#include "rl/replay_buffer.h"
#include "util/thread_pool.h"

namespace drcell::rl {

struct DqnOptions {
  double gamma = 0.9;                 ///< discount factor
  double learning_rate = 1e-3;        ///< Adam step size
  std::size_t batch_size = 32;        ///< replay minibatch
  std::size_t replay_capacity = 20000;
  std::size_t min_replay = 200;       ///< warm-up before training starts
  std::size_t target_sync_interval = 150;  ///< RPLACE_ITER of Algorithm 2
  double grad_clip_norm = 5.0;        ///< global-norm clipping; 0 disables
  double huber_delta = 1.0;           ///< TD-error robustness threshold
  bool double_dqn = false;            ///< Hasselt-style target (extension)
  /// Route train_step() through the retained per-sample reference path
  /// instead of the batched engine. Debug/verification only: the two paths
  /// are bit-identical by contract (given the same gate kernel, see
  /// reference_gate_kernel below), the reference is just slower. Requires
  /// a build with DRCELL_REFERENCE_KERNELS (the default).
  bool reference_path = false;
#ifdef DRCELL_ENABLE_REFERENCE_KERNELS
  /// Run the batched engine's *recurrent* (LSTM) gate nonlinearities
  /// (online and target networks) through the retained std::-based kernels
  /// instead of the fused fastmath pass. Verification/benchmark only: with
  /// this set, the batched engine is bit-identical to the per-sample
  /// reference path for the shipped networks (DRQN = LSTM + Dense/ReLU
  /// head, MLP = Dense/ReLU — the PR-4 contract); with the default
  /// fastmath kernel the two paths agree within the documented fastmath
  /// tolerance instead (docs/ARCHITECTURE.md,
  /// tests/batched_training_test.cpp). NB the toggle does not reach
  /// standalone nn::Tanh/nn::Sigmoid *layers* (always fastmath in
  /// production) — a custom QNetwork using those in its head would diverge
  /// from its std:: reference path by the same fastmath bound even with
  /// this flag set.
  bool reference_gate_kernel = false;
#endif
  /// Train on candidate action subsets (metro tier): the minibatch is
  /// assembled sparse, the online Q head is evaluated only at each
  /// transition's taken action and the bootstrap argmax only over its
  /// stored next_candidates (Experience::next_candidates must be non-empty
  /// for every non-terminal transition). Requires a network with
  /// supports_action_columns(). The train-step arithmetic is bit-identical
  /// to the full batched path whenever the candidates cover the allowed
  /// actions (tests/sparse_gather_test.cpp); with genuine subsets the
  /// *trajectory*, not the arithmetic, diverges — see docs/ARCHITECTURE.md.
  bool candidate_training = false;
  /// Disable the sparse minibatch fast path even when the network supports
  /// it (verification/benchmarking: pins the dense engine as the floor the
  /// sparse gather is gated against).
  bool force_dense_batch = false;
  EpsilonSchedule epsilon{1.0, 0.05, 5000};
};

class DqnTrainer {
 public:
  /// Takes ownership of the online network; the fixed-target copy is built
  /// via clone_architecture and immediately synchronised.
  DqnTrainer(QNetworkPtr online, DqnOptions options, std::uint64_t seed);

  QNetwork& online() { return *online_; }
  /// The fixed-target copy. Exposed for inspection and for fault drills:
  /// poisoning the target corrupts the TD loss without touching the action
  /// path, which is how tests pin the loss sentinel's one-step detection.
  QNetwork& target() { return *target_; }
  const DqnOptions& options() const { return options_; }
  ReplayBuffer& replay() { return replay_; }
  std::size_t env_steps() const { return env_steps_; }
  std::size_t train_steps() const { return train_steps_; }
  double current_epsilon() const;

  /// δ-greedy action over the unmasked cells; advances the exploration
  /// schedule by one step.
  std::size_t select_action(const std::vector<double>& state,
                            const std::vector<std::uint8_t>& mask);

  /// Greedy (δ = 0) action — the deployed policy of the testing stage.
  std::size_t greedy_action(const std::vector<double>& state,
                            const std::vector<std::uint8_t>& mask);

  /// Candidate-subset variants (metro tier): the state arrives as its
  /// sparse one-index list (mcs::SparseMcsEnvironment::state_ones) and only
  /// `candidates` (strictly ascending cell ids, all currently selectable)
  /// are scored — one B=1 sparse forward of the restricted Q head instead
  /// of a k·m dense encode plus full-width forward. The δ-greedy variant
  /// draws its exploration from the candidate set and advances the
  /// schedule; every scored Q-value is bit-identical to the full forward's.
  std::size_t select_action_candidates(
      std::span<const std::uint32_t> state_ones,
      std::span<const std::uint32_t> candidates);
  std::size_t greedy_action_candidates(
      std::span<const std::uint32_t> state_ones,
      std::span<const std::uint32_t> candidates);

  /// Q-values for one state (diagnostics / tests).
  std::vector<double> q_values(const std::vector<double>& state);

  /// Q-values of `candidates`, in candidate order, from the same B=1
  /// sparse restricted forward greedy_action_candidates argmaxes over —
  /// for policies that post-process candidate scores (e.g. test-time
  /// symmetry averaging) instead of taking the raw argmax.
  std::vector<double> candidate_q_values(
      std::span<const std::uint32_t> state_ones,
      std::span<const std::uint32_t> candidates);

  /// Stores a transition in the replay pool.
  void observe(Experience e);

  /// One batched minibatch update; returns the TD loss, or 0 while the
  /// pool is below the warm-up threshold. (With options().reference_path
  /// the update runs through train_step_reference() instead.)
  double train_step();

  /// The batched update core on a caller-chosen minibatch (exposed so
  /// tests and the bench can drive both paths over the identical batch).
  double train_step_on_indices(std::span<const std::size_t> indices);

#ifdef DRCELL_ENABLE_REFERENCE_KERNELS
  /// The retained per-sample reference update (benchmark floor, same
  /// convention as Matrix::matmul_naive): samples the same draw stream,
  /// then forwards/backpropagates each transition as its own B=1 sequence
  /// through the networks' pre-refactor reference implementations —
  /// per-call allocations, transposes materialised per step, gradients
  /// accumulated sample by sample. Bit-identical to train_step() by the
  /// batched determinism contract; kept for the bit-identity tests and the
  /// train_step_batched bench pair.
  double train_step_reference();
  double train_step_reference_on_indices(
      std::span<const std::size_t> indices);
#endif

  /// Copies the online parameters into the fixed-target network.
  void sync_target();

  /// Checkpoint/resume: restores the step counters that drive the epsilon
  /// schedule (env_steps) and the target-sync cadence (train_steps) — the
  /// "epsilon state" of the scheduler checkpoint contract
  /// (core/checkpoint.h). Weights are restored separately via the
  /// parameter (de)serialisation in nn/serialize.h.
  void restore_counters(std::size_t env_steps, std::size_t train_steps) {
    env_steps_ = env_steps;
    train_steps_ = train_steps;
  }

  /// Overrides the pool that runs the batch forwards of train_step.
  /// nullptr restores the global pool.
  void set_thread_pool(util::ThreadPool* pool) { pool_ = pool; }

 private:
  std::vector<Matrix> to_sequence(
      const std::vector<const std::vector<double>*>& states) const;
  EncodedExperience encode_experience(const Experience& e) const;
  std::size_t masked_argmax(const Matrix& q, std::size_t row,
                            const std::vector<std::uint8_t>& mask) const;
  double bootstrap_value(const Experience& e, const Matrix& q_next_target,
                         const Matrix& q_next_online, std::size_t row) const;
  /// Shared epilogue of both update paths: clip, optimiser step, target
  /// sync cadence.
  double finish_update(double raw_loss_sum, double normalizer);
  /// Position (not cell id) of the greedy candidate in `candidates` after
  /// one B=1 sparse column-restricted forward.
  std::size_t candidate_argmax(std::span<const std::uint32_t> state_ones,
                               std::span<const std::uint32_t> candidates);
  /// The candidate-training minibatch update (see
  /// DqnOptions::candidate_training).
  double train_step_candidates_on_indices(
      std::span<const std::size_t> indices);
#ifdef DRCELL_ENABLE_REFERENCE_KERNELS
  /// Densifies one cached sparse encoding into the B=1 timestep-major
  /// sequence the reference implementations consume.
  std::vector<Matrix> to_reference_sequence(const SparseRowMatrix& s) const;
#endif

  QNetworkPtr online_;
  QNetworkPtr target_;
  DqnOptions options_;
  ReplayBuffer replay_;
  mcs::StateEncoder encoder_;
  std::unique_ptr<nn::Optimizer> optimizer_;
  Rng rng_;
  util::ThreadPool* pool_ = nullptr;  // nullptr -> ThreadPool::global()
  std::size_t env_steps_ = 0;
  std::size_t train_steps_ = 0;
  // Minibatch workspaces reused across train steps (timestep-major batch,
  // Double-DQN online snapshot, TD targets and action mask).
  std::vector<Matrix> state_seq_ws_;
  std::vector<Matrix> next_seq_ws_;
  Matrix q_next_online_ws_;
  Matrix targets_ws_;
  Matrix mask_ws_;
  // Sparse / candidate-path workspaces (metro tier).
  std::vector<SparseRowMatrix> state_sseq_ws_;
  std::vector<SparseRowMatrix> next_sseq_ws_;
  ActionColumns action_cols_ws_;  // width-1 taken-action columns
  ActionColumns next_cols_ws_;    // per-sample bootstrap candidates
  std::vector<SparseRowMatrix> sel_seq_ws_;  // B=1 action selection
  ActionColumns sel_cols_ws_;
};

}  // namespace drcell::rl
