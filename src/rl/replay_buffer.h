// Uniform experience-replay memory (the pool D of Algorithm 2).
//
// Alongside each transition the buffer caches its encoded DRQN input
// sequences. The encodings are one-hot unions, so they are cached *sparse*
// (SparseRowMatrix, one [k x cells] per state): a dense encoded transition
// costs ~2·k·cells doubles — at the 10,000-cell metro tier the former
// 256 MiB dense budget would hold fewer than 800 transitions, while the
// sparse form costs ~12 bytes per selected cell. The cache is filled lazily
// on first access (the trainer supplies the encoding function), invalidated
// when the ring overwrites the slot, and bounded by a byte budget. Past the
// budget, encoded() computes into a scratch slot instead of caching.
#pragma once

#include <algorithm>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "linalg/matrix.h"
#include "linalg/sparse_matrix.h"
#include "rl/experience.h"
#include "util/rng.h"

namespace drcell::rl {

/// Encoded DRQN inputs of one transition, stored sparse: row j of each
/// [k x cells] matrix is step j of S (resp. S') — see
/// mcs::StateEncoder::to_sparse_steps.
struct EncodedExperience {
  SparseRowMatrix state;
  SparseRowMatrix next_state;
};

class ReplayBuffer {
 public:
  /// Default byte budget of the encoded-sequence cache (256 MiB). With the
  /// sparse encoding an entry costs ~12 bytes per selected cell instead of
  /// 8·k·cells, so the budget now covers full pools even at the
  /// 10,000-cell metro tier (300 selections/cycle, k = 2: ≲15 KB each).
  static constexpr std::size_t kDefaultMaxCacheBytes =
      std::size_t{256} << 20;

  explicit ReplayBuffer(std::size_t capacity,
                        std::size_t max_cache_bytes = kDefaultMaxCacheBytes);

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

  /// Adds a transition, evicting the oldest once full (ring buffer). The
  /// overwritten slot's cached encoding is invalidated.
  void add(Experience e);

  /// Uniformly samples `count` transitions with replacement.
  std::vector<const Experience*> sample(std::size_t count, Rng& rng) const;
  /// Same draw stream as sample(), returning slot indices (the key of the
  /// encoded-sequence cache).
  std::vector<std::size_t> sample_indices(std::size_t count, Rng& rng) const;

  /// Cached encoded sequences of transition i, computed via `encode` on the
  /// first access after the slot was (re)written. Once the byte budget is
  /// exhausted, further misses are served from a scratch slot — the
  /// returned reference is then only valid until the next encoded() call.
  /// Not thread-safe — call from the training thread only.
  template <typename EncodeFn>
  const EncodedExperience& encoded(std::size_t i, EncodeFn&& encode) const {
    auto& slot = cache_.at(i);
    if (slot.has_value()) return *slot;
    EncodedExperience enc = encode(items_[i]);
    ++encode_misses_;
    const std::size_t bytes = encoded_bytes(enc);
    if (cache_bytes_ + bytes <= max_cache_bytes_) {
      cache_bytes_ += bytes;
      slot = std::move(enc);
      return *slot;
    }
    scratch_ = std::move(enc);
    return scratch_;
  }
  /// Assembles the trainer's *dense* timestep-major minibatch straight from
  /// the (sparse) encoded-sequence cache: `state_seq`/`next_seq` are shaped
  /// to k matrices of [indices.size() x cells] (their storage is reused
  /// across calls) and row i of every step is zeroed then scattered from
  /// transition indices[i]'s cached encoding. Rows land in ascending i
  /// order, so the batch layout is deterministic. Cache semantics match
  /// encoded(): lazy fill on first access, invalidated when the ring
  /// overwrites a slot, scratch fallback past the byte budget.
  template <typename EncodeFn>
  void fill_timestep_major(std::span<const std::size_t> indices,
                           EncodeFn&& encode, std::vector<Matrix>& state_seq,
                           std::vector<Matrix>& next_seq) const {
    DRCELL_CHECK_MSG(!indices.empty(), "empty minibatch");
    const std::size_t b = indices.size();
    for (std::size_t i = 0; i < b; ++i) {
      // The reference is only guaranteed until the next encoded() call
      // (scratch fallback), so each transition's rows are copied out before
      // the next lookup.
      const EncodedExperience& enc = encoded(indices[i], encode);
      if (i == 0) {
        const std::size_t k = enc.state.rows();
        DRCELL_CHECK_MSG(k > 0 && enc.next_state.rows() == k,
                         "malformed encoded experience");
        const std::size_t cells = enc.state.cols();
        if (state_seq.size() != k) state_seq.resize(k);
        if (next_seq.size() != k) next_seq.resize(k);
        for (std::size_t j = 0; j < k; ++j) {
          state_seq[j].resize_overwrite(b, cells);
          next_seq[j].resize_overwrite(b, cells);
        }
      }
      DRCELL_CHECK_MSG(enc.state.rows() == state_seq.size(),
                       "inconsistent encoded sequence length");
      DRCELL_CHECK_MSG(enc.state.cols() == state_seq.front().cols(),
                       "inconsistent encoded step width");
      for (std::size_t j = 0; j < state_seq.size(); ++j) {
        scatter_row(enc.state, j, state_seq[j], i);
        scatter_row(enc.next_state, j, next_seq[j], i);
      }
    }
  }

  /// Sparse counterpart of fill_timestep_major: shapes `state_seq`/
  /// `next_seq` to k SparseRowMatrix of [indices.size() x cells] (entry
  /// storage reused across calls) and appends transition indices[i]'s
  /// cached rows as row i — no densification anywhere, so assembling a
  /// metro-tier minibatch costs O(nonzeros) instead of O(b·k·cells).
  template <typename EncodeFn>
  void fill_timestep_major_sparse(std::span<const std::size_t> indices,
                                  EncodeFn&& encode,
                                  std::vector<SparseRowMatrix>& state_seq,
                                  std::vector<SparseRowMatrix>& next_seq)
      const {
    DRCELL_CHECK_MSG(!indices.empty(), "empty minibatch");
    const std::size_t b = indices.size();
    for (std::size_t i = 0; i < b; ++i) {
      const EncodedExperience& enc = encoded(indices[i], encode);
      if (i == 0) {
        const std::size_t k = enc.state.rows();
        DRCELL_CHECK_MSG(k > 0 && enc.next_state.rows() == k,
                         "malformed encoded experience");
        const std::size_t cells = enc.state.cols();
        if (state_seq.size() != k) state_seq.resize(k);
        if (next_seq.size() != k) next_seq.resize(k);
        for (std::size_t j = 0; j < k; ++j) {
          state_seq[j].reset(b, cells);
          next_seq[j].reset(b, cells);
        }
      }
      DRCELL_CHECK_MSG(enc.state.rows() == state_seq.size(),
                       "inconsistent encoded sequence length");
      DRCELL_CHECK_MSG(enc.state.cols() == state_seq.front().cols(),
                       "inconsistent encoded step width");
      for (std::size_t j = 0; j < state_seq.size(); ++j) {
        append_row(enc.state, j, state_seq[j], i);
        append_row(enc.next_state, j, next_seq[j], i);
      }
    }
  }

  /// How many encoded() calls had to encode (cache misses) — instrumentation
  /// for the no-re-encoding regression tests.
  std::size_t encode_misses() const { return encode_misses_; }
  /// Bytes currently held by cached encodings (excludes the scratch slot).
  std::size_t cache_bytes() const { return cache_bytes_; }

  const Experience& at(std::size_t i) const { return items_.at(i); }
  void clear();

 private:
  static std::size_t encoded_bytes(const EncodedExperience& e) {
    return e.state.byte_size() + e.next_state.byte_size();
  }
  /// Row `src_row` of `enc` written dense into row `dst_row` of `dst`
  /// (zeroed first — resize_overwrite leaves stale contents).
  static void scatter_row(const SparseRowMatrix& enc, std::size_t src_row,
                          Matrix& dst, std::size_t dst_row) {
    auto drow = dst.row(dst_row);
    std::fill(drow.begin(), drow.end(), 0.0);
    const auto cols = enc.row_indices(src_row);
    const auto vals = enc.row_values(src_row);
    for (std::size_t e = 0; e < cols.size(); ++e) drow[cols[e]] = vals[e];
  }
  static void append_row(const SparseRowMatrix& enc, std::size_t src_row,
                         SparseRowMatrix& dst, std::size_t dst_row) {
    const auto cols = enc.row_indices(src_row);
    const auto vals = enc.row_values(src_row);
    for (std::size_t e = 0; e < cols.size(); ++e)
      dst.append(dst_row, cols[e], vals[e]);
  }

  std::size_t capacity_;
  std::size_t max_cache_bytes_;
  std::size_t next_ = 0;  // ring cursor once at capacity
  std::vector<Experience> items_;
  mutable std::vector<std::optional<EncodedExperience>> cache_;
  mutable std::size_t cache_bytes_ = 0;
  mutable std::size_t encode_misses_ = 0;
  mutable EncodedExperience scratch_;  // over-budget misses land here
};

}  // namespace drcell::rl
