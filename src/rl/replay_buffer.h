// Uniform experience-replay memory (the pool D of Algorithm 2).
//
// Alongside each transition the buffer caches its encoded DRQN input
// sequences: the one-hot k x (1 x m) matrices the state encoder produces
// are a pure function of the stored transition, yet the seed re-encoded
// every sampled transition on every train step. The cache is filled lazily
// on first access (the trainer supplies the encoding function), invalidated
// when the ring overwrites the slot, and bounded by a byte budget — an
// encoded transition costs ~2·k·cells doubles, which at a 1000-cell
// deployment with the default 20000-transition capacity would otherwise
// grow unchecked. Past the budget, encoded() computes into a scratch slot
// instead of caching.
#pragma once

#include <algorithm>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "linalg/matrix.h"
#include "rl/experience.h"
#include "util/rng.h"

namespace drcell::rl {

/// Encoded DRQN inputs of one transition: the k per-step 1 x cells matrices
/// of S and S' (see mcs::StateEncoder::to_sequence).
struct EncodedExperience {
  std::vector<Matrix> state;
  std::vector<Matrix> next_state;
};

class ReplayBuffer {
 public:
  /// Default byte budget of the encoded-sequence cache (256 MiB): never a
  /// constraint at paper scale (57 cells x 20000 transitions ≈ 36 MiB
  /// fully warm), a deliberate cap at the 1000-cell scale target.
  static constexpr std::size_t kDefaultMaxCacheBytes =
      std::size_t{256} << 20;

  explicit ReplayBuffer(std::size_t capacity,
                        std::size_t max_cache_bytes = kDefaultMaxCacheBytes);

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

  /// Adds a transition, evicting the oldest once full (ring buffer). The
  /// overwritten slot's cached encoding is invalidated.
  void add(Experience e);

  /// Uniformly samples `count` transitions with replacement.
  std::vector<const Experience*> sample(std::size_t count, Rng& rng) const;
  /// Same draw stream as sample(), returning slot indices (the key of the
  /// encoded-sequence cache).
  std::vector<std::size_t> sample_indices(std::size_t count, Rng& rng) const;

  /// Cached encoded sequences of transition i, computed via `encode` on the
  /// first access after the slot was (re)written. Once the byte budget is
  /// exhausted, further misses are served from a scratch slot — the
  /// returned reference is then only valid until the next encoded() call.
  /// Not thread-safe — call from the training thread only.
  template <typename EncodeFn>
  const EncodedExperience& encoded(std::size_t i, EncodeFn&& encode) const {
    auto& slot = cache_.at(i);
    if (slot.has_value()) return *slot;
    EncodedExperience enc = encode(items_[i]);
    ++encode_misses_;
    const std::size_t bytes = encoded_bytes(enc);
    if (cache_bytes_ + bytes <= max_cache_bytes_) {
      cache_bytes_ += bytes;
      slot = std::move(enc);
      return *slot;
    }
    scratch_ = std::move(enc);
    return scratch_;
  }
  /// Assembles the trainer's timestep-major minibatch straight from the
  /// encoded-sequence cache: `state_seq`/`next_seq` are shaped to k matrices
  /// of [indices.size() x cells] (their storage is reused across calls) and
  /// row i of every step is filled from transition indices[i]'s cached
  /// encoding — one row copy per (transition, step), no per-transition
  /// temporaries or re-packing in between. Rows land in ascending i order,
  /// so the batch layout is deterministic. Cache semantics match encoded():
  /// lazy fill on first access, invalidated when the ring overwrites a
  /// slot, scratch fallback past the byte budget.
  template <typename EncodeFn>
  void fill_timestep_major(std::span<const std::size_t> indices,
                           EncodeFn&& encode, std::vector<Matrix>& state_seq,
                           std::vector<Matrix>& next_seq) const {
    DRCELL_CHECK_MSG(!indices.empty(), "empty minibatch");
    const std::size_t b = indices.size();
    for (std::size_t i = 0; i < b; ++i) {
      // The reference is only guaranteed until the next encoded() call
      // (scratch fallback), so each transition's rows are copied out before
      // the next lookup.
      const EncodedExperience& enc = encoded(indices[i], encode);
      if (i == 0) {
        const std::size_t k = enc.state.size();
        DRCELL_CHECK_MSG(k > 0 && enc.next_state.size() == k,
                         "malformed encoded experience");
        const std::size_t cells = enc.state.front().cols();
        if (state_seq.size() != k) state_seq.resize(k);
        if (next_seq.size() != k) next_seq.resize(k);
        for (std::size_t j = 0; j < k; ++j) {
          state_seq[j].resize_overwrite(b, cells);
          next_seq[j].resize_overwrite(b, cells);
        }
      }
      DRCELL_CHECK_MSG(enc.state.size() == state_seq.size(),
                       "inconsistent encoded sequence length");
      for (std::size_t j = 0; j < state_seq.size(); ++j) {
        const auto srow = enc.state[j].row(0);
        DRCELL_CHECK_MSG(srow.size() == state_seq[j].cols(),
                         "inconsistent encoded step width");
        std::copy(srow.begin(), srow.end(), state_seq[j].row(i).begin());
        const auto nrow = enc.next_state[j].row(0);
        std::copy(nrow.begin(), nrow.end(), next_seq[j].row(i).begin());
      }
    }
  }

  /// How many encoded() calls had to encode (cache misses) — instrumentation
  /// for the no-re-encoding regression tests.
  std::size_t encode_misses() const { return encode_misses_; }
  /// Bytes currently held by cached encodings (excludes the scratch slot).
  std::size_t cache_bytes() const { return cache_bytes_; }

  const Experience& at(std::size_t i) const { return items_.at(i); }
  void clear();

 private:
  static std::size_t encoded_bytes(const EncodedExperience& e) {
    std::size_t b = 0;
    for (const Matrix& m : e.state) b += m.data().size() * sizeof(double);
    for (const Matrix& m : e.next_state)
      b += m.data().size() * sizeof(double);
    return b;
  }

  std::size_t capacity_;
  std::size_t max_cache_bytes_;
  std::size_t next_ = 0;  // ring cursor once at capacity
  std::vector<Experience> items_;
  mutable std::vector<std::optional<EncodedExperience>> cache_;
  mutable std::size_t cache_bytes_ = 0;
  mutable std::size_t encode_misses_ = 0;
  mutable EncodedExperience scratch_;  // over-budget misses land here
};

}  // namespace drcell::rl
