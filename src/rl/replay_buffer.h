// Uniform experience-replay memory (the pool D of Algorithm 2).
#pragma once

#include <vector>

#include "rl/experience.h"
#include "util/rng.h"

namespace drcell::rl {

class ReplayBuffer {
 public:
  explicit ReplayBuffer(std::size_t capacity);

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

  /// Adds a transition, evicting the oldest once full (ring buffer).
  void add(Experience e);

  /// Uniformly samples `count` transitions with replacement.
  std::vector<const Experience*> sample(std::size_t count, Rng& rng) const;

  const Experience& at(std::size_t i) const { return items_.at(i); }
  void clear();

 private:
  std::size_t capacity_;
  std::size_t next_ = 0;  // ring cursor once at capacity
  std::vector<Experience> items_;
};

}  // namespace drcell::rl
