#include "rl/epsilon.h"

#include <cmath>

#include "util/check.h"

namespace drcell::rl {

EpsilonSchedule::EpsilonSchedule(double start, double end,
                                 std::size_t decay_steps, Decay decay)
    : start_(start), end_(end), decay_steps_(decay_steps), decay_(decay) {
  DRCELL_CHECK(start_ >= 0.0 && start_ <= 1.0);
  DRCELL_CHECK(end_ >= 0.0 && end_ <= 1.0);
  DRCELL_CHECK_MSG(end_ <= start_, "epsilon schedules decay downwards");
  DRCELL_CHECK(decay_steps_ > 0);
}

EpsilonSchedule EpsilonSchedule::constant(double epsilon) {
  return EpsilonSchedule(epsilon, epsilon, 1);
}

double EpsilonSchedule::value(std::size_t step) const {
  if (step >= decay_steps_) {
    if (decay_ == Decay::kLinear) return end_;
  }
  const double t = static_cast<double>(step) /
                   static_cast<double>(decay_steps_);
  switch (decay_) {
    case Decay::kLinear:
      return start_ + (end_ - start_) * std::min(1.0, t);
    case Decay::kExponential:
      // Reaches ~end + (start-end)/e^3 at decay_steps.
      return end_ + (start_ - end_) * std::exp(-3.0 * t);
  }
  return end_;
}

}  // namespace drcell::rl
