#include "rl/spatial_drqn_qnetwork.h"

#include <algorithm>
#include <cmath>

#include "nn/activations.h"

namespace drcell::rl {

namespace {

/// Per-axis Fourier basis at normalised position u ∈ (0, 1):
/// [1, cos(π·1·u), sin(π·1·u), ..., cos(π·k·u), sin(π·k·u)].
void axis_basis(double u, std::size_t k, std::vector<double>& out) {
  out.clear();
  out.push_back(1.0);
  for (std::size_t f = 1; f <= k; ++f) {
    const double a = M_PI * static_cast<double>(f) * u;
    out.push_back(std::cos(a));
    out.push_back(std::sin(a));
  }
}

Matrix make_features(std::size_t grid_w, std::size_t grid_h,
                     std::size_t fourier_k) {
  const std::size_t axis = 2 * fourier_k + 1;
  Matrix phi(grid_w * grid_h, axis * axis);
  std::vector<double> bu, bv;
  for (std::size_t c = 0; c < grid_w * grid_h; ++c) {
    // Cell centres, matching the coords SyntheticFieldGenerator assigns.
    const double u = (static_cast<double>(c % grid_w) + 0.5) /
                     static_cast<double>(grid_w);
    const double v = (static_cast<double>(c / grid_w) + 0.5) /
                     static_cast<double>(grid_h);
    axis_basis(u, fourier_k, bu);
    axis_basis(v, fourier_k, bv);
    std::size_t j = 0;
    for (std::size_t y = 0; y < axis; ++y)
      for (std::size_t x = 0; x < axis; ++x) phi(c, j++) = bu[x] * bv[y];
  }
  return phi;
}

}  // namespace

SpatialDrqnQNetwork::SpatialDrqnQNetwork(std::size_t grid_w,
                                         std::size_t grid_h,
                                         std::size_t history_steps,
                                         std::size_t lstm_hidden,
                                         std::size_t fourier_k,
                                         std::size_t query_hidden, Rng& rng)
    : grid_w_(grid_w),
      grid_h_(grid_h),
      history_steps_(history_steps),
      fourier_k_(fourier_k),
      query_hidden_(query_hidden),
      lstm_((2 * fourier_k + 1) * (2 * fourier_k + 1), lstm_hidden, rng),
      phi_(make_features(grid_w, grid_h, fourier_k)) {
  DRCELL_CHECK(grid_w_ > 0 && grid_h_ > 0 && history_steps_ > 0);
  const std::size_t d = phi_.cols();
  if (query_hidden_ > 0) {
    query_.emplace<nn::Dense>(lstm_hidden, query_hidden_, rng);
    query_.emplace<nn::ReLU>();
    query_.emplace<nn::Dense>(query_hidden_, d, rng);
  } else {
    query_.emplace<nn::Dense>(lstm_hidden, d, rng);
  }
}

const Matrix& SpatialDrqnQNetwork::forward_query(const Matrix& trunk_out) {
  return query_.forward(trunk_out);
}

namespace {

/// Fixed input gain on the projected coverage sums. The summary must keep
/// its magnitude — feature 0 is the all-ones column of Φ, so it carries
/// the selection count, the within-cycle progress signal the value
/// estimate needs (per-step error reductions shrink sharply as a cycle
/// fills). A per-row mean-normalisation would erase it; a fixed scale
/// just keeps realistic counts inside the LSTM's well-conditioned input
/// range. Applied to the already-projected [batch x d] matrix,
/// identically after the dense and the sparse gather projection, so it
/// preserves their bit-identity.
constexpr double kInputGain = 1.0 / 32.0;

void scale_rows(Matrix& proj) {
  for (std::size_t r = 0; r < proj.rows(); ++r) {
    double* row = proj.row(r).data();
    for (std::size_t j = 0; j < proj.cols(); ++j) row[j] *= kInputGain;
  }
}

}  // namespace

const std::vector<Matrix>& SpatialDrqnQNetwork::project(
    const std::vector<Matrix>& steps) {
  proj_ws_.resize(steps.size());
  for (std::size_t t = 0; t < steps.size(); ++t) {
    steps[t].matmul_into(phi_, proj_ws_[t]);
    scale_rows(proj_ws_[t]);
  }
  return proj_ws_;
}

const std::vector<Matrix>& SpatialDrqnQNetwork::project(
    const std::vector<SparseRowMatrix>& steps) {
  proj_ws_.resize(steps.size());
  for (std::size_t t = 0; t < steps.size(); ++t) {
    steps[t].matmul_into(phi_, proj_ws_[t]);
    scale_rows(proj_ws_[t]);
  }
  return proj_ws_;
}

const Matrix& SpatialDrqnQNetwork::forward_batch(
    const std::vector<Matrix>& timestep_major_batch) {
  DRCELL_CHECK_MSG(timestep_major_batch.size() == history_steps_,
                   "sequence length mismatch");
  const Matrix& q = forward_query(lstm_.forward(project(timestep_major_batch)));
  q.matmul_transposed_other_into(phi_, q_full_ws_);
  return q_full_ws_;
}

const Matrix& SpatialDrqnQNetwork::forward_batch_sparse(
    const std::vector<SparseRowMatrix>& timestep_major_batch) {
  DRCELL_CHECK_MSG(timestep_major_batch.size() == history_steps_,
                   "sequence length mismatch");
  const Matrix& q = forward_query(lstm_.forward(project(timestep_major_batch)));
  q.matmul_transposed_other_into(phi_, q_full_ws_);
  return q_full_ws_;
}

void SpatialDrqnQNetwork::backward(const Matrix& grad_q) {
  // dquery = grad_q · Φ; the TD gradient is zero off the taken actions and
  // the matmul kernel skips those terms, so this costs O(nonzero · d).
  grad_q.matmul_into(phi_, dquery_ws_);
  lstm_.backward(query_.backward(dquery_ws_), /*compute_input_grads=*/false);
}

const Matrix& SpatialDrqnQNetwork::forward_batch_columns(
    const std::vector<SparseRowMatrix>& timestep_major_batch,
    const ActionColumns& columns) {
  DRCELL_CHECK_MSG(timestep_major_batch.size() == history_steps_,
                   "sequence length mismatch");
  const Matrix& q = forward_query(lstm_.forward(project(timestep_major_batch)));
  DRCELL_CHECK_MSG(columns.size() == q.rows(),
                   "one column subset per batch row required");
  std::size_t max_width = 0;
  for (const auto& cols : columns)
    max_width = std::max(max_width, cols.size());
  DRCELL_CHECK_MSG(max_width > 0, "empty column subsets");
  q_cols_ws_.resize(q.rows(), max_width);
  const std::size_t d = phi_.cols();
  for (std::size_t r = 0; r < q.rows(); ++r) {
    const double* qr = q.row(r).data();
    double* orow = q_cols_ws_.row(r).data();
    const auto& cols = columns[r];
    for (std::size_t j = 0; j < cols.size(); ++j) {
      DRCELL_DCHECK_MSG(cols[j] < phi_.rows(), "candidate out of range");
      const double* frow = phi_.row(cols[j]).data();
      // Same per-element recurrence as matmul_transposed_other_into:
      // single accumulator, k ascending, q(r, k) == 0.0 skipped — so each
      // evaluated entry is bit-identical to the full q·Φᵀ entry.
      double acc = 0.0;
      for (std::size_t k = 0; k < d; ++k) {
        const double v = qr[k];
        if (v == 0.0) continue;
        acc += v * frow[k];
      }
      orow[j] = acc;
    }
  }
  return q_cols_ws_;
}

void SpatialDrqnQNetwork::backward_columns(const Matrix& grad_columns,
                                           const ActionColumns& columns) {
  DRCELL_CHECK_MSG(columns.size() == grad_columns.rows(),
                   "one column subset per batch row required");
  // dquery(r, :) = Σ_j grad(r, j) · φ(columns[r][j]) over ascending
  // candidate ids with zero grads skipped — exactly the terms (in exactly
  // the order) the full backward's grad_q · Φ accumulates for row r, since
  // the full grad is zero off the listed columns.
  dquery_ws_.resize_overwrite(grad_columns.rows(), phi_.cols());
  const std::size_t d = phi_.cols();
  for (std::size_t r = 0; r < grad_columns.rows(); ++r) {
    const double* gr = grad_columns.row(r).data();
    double* dq = dquery_ws_.row(r).data();
    for (std::size_t k = 0; k < d; ++k) dq[k] = 0.0;
    const auto& cols = columns[r];
    DRCELL_CHECK_MSG(cols.size() <= grad_columns.cols(),
                     "column subset wider than gradient");
    for (std::size_t j = 0; j < cols.size(); ++j) {
      const double g = gr[j];
      if (g == 0.0) continue;
      const double* frow = phi_.row(cols[j]).data();
      for (std::size_t k = 0; k < d; ++k) dq[k] += g * frow[k];
    }
  }
  lstm_.backward(query_.backward(dquery_ws_), /*compute_input_grads=*/false);
}

#ifdef DRCELL_ENABLE_REFERENCE_KERNELS
Matrix SpatialDrqnQNetwork::forward_reference(
    const std::vector<Matrix>& sequence) {
  DRCELL_CHECK_MSG(sequence.size() == history_steps_,
                   "sequence length mismatch");
  // The x·Φ projection has no pre-refactor variant either; the reference
  // trunk consumes the same projected steps the batched trunk does.
  const Matrix last_hidden = lstm_.forward_reference(project(sequence));
  const Matrix q = query_.forward_reference(last_hidden);
  // The q·Φᵀ epilogue has no pre-refactor variant — the batched kernel is
  // deterministic and batch-row independent, so the reference path shares
  // it (bit-identity with forward_batch follows from the trunk contract).
  return q.matmul_transposed_other(phi_);
}

void SpatialDrqnQNetwork::backward_reference(const Matrix& grad_q) {
  const Matrix dquery = grad_q.matmul(phi_);
  const Matrix grad_hidden = query_.backward_reference(dquery);
  (void)lstm_.backward_reference(grad_hidden);
}
#endif

std::vector<nn::Parameter*> SpatialDrqnQNetwork::parameters() {
  auto ps = lstm_.parameters();
  const auto qs = query_.parameters();
  ps.insert(ps.end(), qs.begin(), qs.end());
  return ps;
}

std::unique_ptr<QNetwork> SpatialDrqnQNetwork::clone_architecture(
    Rng& rng) const {
  return std::make_unique<SpatialDrqnQNetwork>(grid_w_, grid_h_,
                                               history_steps_,
                                               lstm_.hidden_size(), fourier_k_,
                                               query_hidden_, rng);
}

}  // namespace drcell::rl
