// Tabular Q-learning (Algorithm 1) — practical for small cell counts where
// the 2^(k·m) state space still fits in a hash table, and the reference
// point for the DRQN (Sec. 4.2's worked example / Fig. 5).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/rng.h"

namespace drcell::rl {

class TabularQLearning {
 public:
  struct Options {
    double alpha = 0.5;  ///< learning rate (Eq. 2)
    double gamma = 0.9;  ///< discount factor (Eq. 2)
  };

  explicit TabularQLearning(std::size_t num_actions);
  TabularQLearning(std::size_t num_actions, Options options);

  std::size_t num_actions() const { return num_actions_; }

  /// δ-greedy action choice among unmasked actions: the best-known action
  /// with probability 1−epsilon, otherwise a uniformly random *other*
  /// allowed action (Sec. 4.2).
  std::size_t select_action(const std::vector<double>& state,
                            const std::vector<std::uint8_t>& mask,
                            double epsilon, Rng& rng) const;

  /// Q-table update (Eqs. 2 and 3). `next_mask` restricts the max over A';
  /// `terminal` suppresses bootstrapping.
  void update(const std::vector<double>& state, std::size_t action,
              double reward, const std::vector<double>& next_state,
              const std::vector<std::uint8_t>& next_mask, bool terminal);

  double q_value(const std::vector<double>& state, std::size_t action) const;
  /// V(S) = max over allowed actions of Q[S, A] (Eq. 3); 0 for new states.
  double state_value(const std::vector<double>& state,
                     const std::vector<std::uint8_t>& mask) const;

  std::size_t table_size() const { return table_.size(); }

 private:
  /// States are binary selection windows; pack them into 64-bit words.
  using StateKey = std::vector<std::uint64_t>;
  static StateKey make_key(const std::vector<double>& state);

  struct KeyHash {
    std::size_t operator()(const StateKey& k) const;
  };

  const std::vector<double>* find_row(const StateKey& key) const;

  std::size_t num_actions_;
  Options options_;
  std::unordered_map<StateKey, std::vector<double>, KeyHash> table_;
};

}  // namespace drcell::rl
