#include "rl/tabular.h"

#include <algorithm>

namespace drcell::rl {

TabularQLearning::TabularQLearning(std::size_t num_actions)
    : TabularQLearning(num_actions, Options{}) {}

TabularQLearning::TabularQLearning(std::size_t num_actions, Options options)
    : num_actions_(num_actions), options_(options) {
  DRCELL_CHECK(num_actions_ > 0);
  DRCELL_CHECK(options_.alpha > 0.0 && options_.alpha <= 1.0);
  DRCELL_CHECK(options_.gamma >= 0.0 && options_.gamma <= 1.0);
}

TabularQLearning::StateKey TabularQLearning::make_key(
    const std::vector<double>& state) {
  StateKey key((state.size() + 63) / 64, 0);
  for (std::size_t i = 0; i < state.size(); ++i)
    if (state[i] > 0.5) key[i / 64] |= (std::uint64_t{1} << (i % 64));
  return key;
}

std::size_t TabularQLearning::KeyHash::operator()(const StateKey& k) const {
  // FNV-1a over the packed words.
  std::uint64_t h = 1469598103934665603ULL;
  for (std::uint64_t w : k) {
    for (int b = 0; b < 8; ++b) {
      h ^= (w >> (8 * b)) & 0xffULL;
      h *= 1099511628211ULL;
    }
  }
  return static_cast<std::size_t>(h);
}

const std::vector<double>* TabularQLearning::find_row(
    const StateKey& key) const {
  const auto it = table_.find(key);
  return it == table_.end() ? nullptr : &it->second;
}

std::size_t TabularQLearning::select_action(
    const std::vector<double>& state, const std::vector<std::uint8_t>& mask,
    double epsilon, Rng& rng) const {
  DRCELL_CHECK(mask.size() == num_actions_);
  std::vector<std::size_t> allowed;
  for (std::size_t a = 0; a < num_actions_; ++a)
    if (mask[a]) allowed.push_back(a);
  DRCELL_CHECK_MSG(!allowed.empty(), "no selectable action");

  const auto* row = find_row(make_key(state));
  std::size_t best = allowed.front();
  if (row != nullptr) {
    for (std::size_t a : allowed)
      if ((*row)[a] > (*row)[best]) best = a;
  } else if (allowed.size() > 1) {
    // Unseen state: all Q-values tie at zero — pick uniformly.
    best = allowed[rng.uniform_index(allowed.size())];
  }

  if (allowed.size() > 1 && rng.bernoulli(epsilon)) {
    // Explore: a uniformly random allowed action other than the best.
    std::vector<std::size_t> others;
    others.reserve(allowed.size() - 1);
    for (std::size_t a : allowed)
      if (a != best) others.push_back(a);
    return others[rng.uniform_index(others.size())];
  }
  return best;
}

void TabularQLearning::update(const std::vector<double>& state,
                              std::size_t action, double reward,
                              const std::vector<double>& next_state,
                              const std::vector<std::uint8_t>& next_mask,
                              bool terminal) {
  DRCELL_CHECK(action < num_actions_);
  const double v_next =
      terminal ? 0.0 : state_value(next_state, next_mask);
  auto& row = table_[make_key(state)];
  if (row.empty()) row.assign(num_actions_, 0.0);
  // Q[S,A] = (1−α) Q[S,A] + α (R + γ V(S'))   (Eq. 2)
  row[action] = (1.0 - options_.alpha) * row[action] +
                options_.alpha * (reward + options_.gamma * v_next);
}

double TabularQLearning::q_value(const std::vector<double>& state,
                                 std::size_t action) const {
  DRCELL_CHECK(action < num_actions_);
  const auto* row = find_row(make_key(state));
  return row == nullptr ? 0.0 : (*row)[action];
}

double TabularQLearning::state_value(
    const std::vector<double>& state,
    const std::vector<std::uint8_t>& mask) const {
  DRCELL_CHECK(mask.size() == num_actions_);
  const auto* row = find_row(make_key(state));
  double best = 0.0;
  bool any = false;
  for (std::size_t a = 0; a < num_actions_; ++a) {
    if (!mask[a]) continue;
    const double q = row == nullptr ? 0.0 : (*row)[a];
    if (!any || q > best) {
      best = q;
      any = true;
    }
  }
  return any ? best : 0.0;
}

}  // namespace drcell::rl
