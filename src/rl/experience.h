// One transition e_t = <S, A, R, S'> of Sec. 4.3, extended with the action
// mask of S' (cells already sensed in the next state may not be chosen, so
// the bootstrap max must exclude them) and a terminal flag (the end of the
// training horizon must not bootstrap into the next episode).
//
// Metro-tier extensions (10,000 cells): a dense transition costs
// 2·k·cells doubles for the states plus cells bytes for the mask — ~330 KB
// each, gigabytes per replay pool. `sparse_states` switches the state
// representation to the ascending flat indices of the 1.0 entries (the
// selection encodings are exactly one-hot unions), and `next_candidates`
// records the candidate action subset generated at S' so the bootstrap
// argmax can be restricted to it without storing a 10k-wide mask.
#pragma once

#include <cstdint>
#include <vector>

namespace drcell::rl {

struct Experience {
  std::vector<double> state;             ///< flat k*m encoding of S
  std::size_t action = 0;                ///< A: the selected cell
  double reward = 0.0;                   ///< R = q·R − c
  std::vector<double> next_state;        ///< flat encoding of S'
  std::vector<std::uint8_t> next_mask;   ///< valid actions at S'
  bool terminal = false;                 ///< no bootstrapping past here

  /// When set, `state`/`next_state` stay empty and the flat encodings are
  /// given by the ascending index lists below (all entries 1.0) — see
  /// mcs::StateEncoder::encode_ones.
  bool sparse_states = false;
  std::vector<std::uint32_t> state_ones;       ///< S's 1.0 entries
  std::vector<std::uint32_t> next_state_ones;  ///< S''s 1.0 entries
  /// Candidate actions at S' (ascending cell ids, a subset of the allowed
  /// actions). Non-empty: the bootstrap argmax is restricted to it and
  /// `next_mask` may be left empty. Empty: full action space via
  /// `next_mask` as before.
  std::vector<std::uint32_t> next_candidates;
};

}  // namespace drcell::rl
