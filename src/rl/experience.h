// One transition e_t = <S, A, R, S'> of Sec. 4.3, extended with the action
// mask of S' (cells already sensed in the next state may not be chosen, so
// the bootstrap max must exclude them) and a terminal flag (the end of the
// training horizon must not bootstrap into the next episode).
#pragma once

#include <cstdint>
#include <vector>

namespace drcell::rl {

struct Experience {
  std::vector<double> state;             ///< flat k*m encoding of S
  std::size_t action = 0;                ///< A: the selected cell
  double reward = 0.0;                   ///< R = q·R − c
  std::vector<double> next_state;        ///< flat encoding of S'
  std::vector<std::uint8_t> next_mask;   ///< valid actions at S'
  bool terminal = false;                 ///< no bootstrapping past here
};

}  // namespace drcell::rl
