// The δ-greedy exploration schedule of Sec. 4.2: start with a large δ
// ("try more at the beginning"), then decay it as training proceeds.
#pragma once

#include <cstddef>

namespace drcell::rl {

class EpsilonSchedule {
 public:
  enum class Decay { kLinear, kExponential };

  /// Decays from `start` to `end` over `decay_steps` steps.
  EpsilonSchedule(double start, double end, std::size_t decay_steps,
                  Decay decay = Decay::kLinear);

  /// Constant exploration rate.
  static EpsilonSchedule constant(double epsilon);

  double value(std::size_t step) const;
  double start() const { return start_; }
  double end() const { return end_; }

 private:
  double start_;
  double end_;
  std::size_t decay_steps_;
  Decay decay_;
};

}  // namespace drcell::rl
