// The paper's Deep Recurrent Q-Network (Sec. 4.3, Eq. 8): an LSTM consumes
// the k recent selection vectors step by step; its final hidden state is
// mapped by a dense head to one Q-value per cell.
#pragma once

#include "nn/dense.h"
#include "nn/lstm.h"
#include "nn/sequential.h"
#include "rl/qnetwork.h"

namespace drcell::rl {

class DrqnQNetwork final : public QNetwork {
 public:
  /// `head_hidden` = 0 connects the LSTM straight to the output layer;
  /// otherwise one ReLU hidden layer of that width is inserted.
  DrqnQNetwork(std::size_t num_cells, std::size_t history_steps,
               std::size_t lstm_hidden, std::size_t head_hidden, Rng& rng);

  const Matrix& forward_batch(
      const std::vector<Matrix>& timestep_major_batch) override;
  void backward(const Matrix& grad_q) override;

  /// Metro-tier fast paths: gather-GEMM LSTM input (bit-identical to the
  /// dense forward — see nn/lstm.h) and the candidate-restricted Q head
  /// (final Dense evaluated only at each sample's candidate columns).
  bool supports_sparse_batch() const override { return true; }
  const Matrix& forward_batch_sparse(
      const std::vector<SparseRowMatrix>& timestep_major_batch) override;
  bool supports_action_columns() const override { return true; }
  const Matrix& forward_batch_columns(
      const std::vector<SparseRowMatrix>& timestep_major_batch,
      const ActionColumns& columns) override;
  void backward_columns(const Matrix& grad_columns,
                        const ActionColumns& columns) override;
#ifdef DRCELL_ENABLE_REFERENCE_KERNELS
  Matrix forward_reference(const std::vector<Matrix>& sequence) override;
  void backward_reference(const Matrix& grad_q) override;
  void set_reference_gate_kernel(bool on) override {
    lstm_.set_reference_gate_kernel(on);
  }
#endif
  std::vector<nn::Parameter*> parameters() override;
  std::unique_ptr<QNetwork> clone_architecture(Rng& rng) const override;
  std::size_t num_actions() const override { return num_cells_; }
  std::size_t history_steps() const override { return history_steps_; }
  std::string name() const override { return "drqn-lstm"; }

  std::size_t lstm_hidden() const { return lstm_.hidden_size(); }

 private:
  std::size_t num_cells_;
  std::size_t history_steps_;
  std::size_t head_hidden_;
  nn::Lstm lstm_;
  nn::Sequential head_;
};

}  // namespace drcell::rl
