// Q-function approximators. Both the paper's DRQN (LSTM) and the plain
// dense DQN (the ablation baseline of Sec. 4.3: "one common way is using
// dense layers") implement this interface, so one trainer serves both.
//
// The interface is batch-major: the primitive is forward_batch over a
// timestep-major batch (k matrices, each [batch x m] — all samples' step-t
// selection vectors stacked), and the per-sample forward() is simply the
// B = 1 case. Implementations must uphold the batched determinism contract
// (see nn/layer.h): row b of the batched Q output is bit-identical to a
// B = 1 forward of sample b, and backward() accumulates parameter
// gradients in ascending batch-row order so batched training replays a
// per-sample loop addition for addition.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "linalg/matrix.h"
#include "linalg/sparse_matrix.h"
#include "nn/layer.h"
#include "util/rng.h"

namespace drcell::rl {

/// Per-sample candidate action lists (strictly ascending cell ids) for the
/// column-restricted Q-head ops.
using ActionColumns = std::vector<std::vector<std::uint32_t>>;

class QNetwork {
 public:
  virtual ~QNetwork() = default;

  /// `timestep_major_batch` holds the k recent selection vectors, oldest
  /// first, each a [batch x m] matrix (row b = sample b's step-t vector).
  /// Returns Q-values, [batch x m] (one score per cell), as a reference
  /// into a network-owned workspace — valid until the next forward_batch
  /// on this network; copy it to keep it across calls.
  virtual const Matrix& forward_batch(
      const std::vector<Matrix>& timestep_major_batch) = 0;

  /// Per-sample convenience wrapper (action selection, diagnostics): the
  /// B = 1 case of forward_batch, returned by value.
  Matrix forward(const std::vector<Matrix>& sequence) {
    return forward_batch(sequence);
  }

  /// Backpropagates the gradient w.r.t. the Q output of the last
  /// forward_batch (same [batch x m] shape).
  virtual void backward(const Matrix& grad_q) = 0;

  /// Sparse fast paths (metro tier). The sparse batch forward consumes the
  /// same timestep-major layout with near-one-hot steps stored sparse and
  /// must return values bit-identical to forward_batch on the densified
  /// steps. The column-restricted pair evaluates/backpropagates the Q head
  /// only at each sample's candidate actions: forward_batch_columns returns
  /// [batch x max_width] (row i's entries past columns[i].size() are
  /// padding) and every evaluated entry is bit-identical to the
  /// corresponding full forward_batch entry; backward_columns takes the
  /// matching gradient layout. Networks that do not implement a path keep
  /// the default supports_* = false and the default bodies throw.
  virtual bool supports_sparse_batch() const { return false; }
  virtual const Matrix& forward_batch_sparse(
      const std::vector<SparseRowMatrix>& timestep_major_batch) {
    (void)timestep_major_batch;
    ::drcell::detail::check_failed("supports_sparse_batch()", __FILE__,
                                   __LINE__, name() + " has no sparse path");
  }
  virtual bool supports_action_columns() const { return false; }
  virtual const Matrix& forward_batch_columns(
      const std::vector<SparseRowMatrix>& timestep_major_batch,
      const ActionColumns& columns) {
    (void)timestep_major_batch;
    (void)columns;
    ::drcell::detail::check_failed("supports_action_columns()", __FILE__,
                                   __LINE__,
                                   name() + " has no candidate-column path");
  }
  virtual void backward_columns(const Matrix& grad_columns,
                                const ActionColumns& columns) {
    (void)grad_columns;
    (void)columns;
    ::drcell::detail::check_failed("supports_action_columns()", __FILE__,
                                   __LINE__,
                                   name() + " has no candidate-column path");
  }

#ifdef DRCELL_ENABLE_REFERENCE_KERNELS
  /// Retained pre-batching reference path (the benchmark floor the batched
  /// engine is gated against, per the repo's retained-naive-reference
  /// convention): value-returning forward through the pre-workspace layer
  /// implementations, backward with transposes materialised per step and
  /// input gradients always computed. Bit-identical to
  /// forward_batch()/backward() — the per-sample trainer reference drives
  /// it with B = 1 sequences.
  virtual Matrix forward_reference(const std::vector<Matrix>& sequence) = 0;
  virtual void backward_reference(const Matrix& grad_q) = 0;

  /// Routes any recurrent gate nonlinearities of the *batched* path through
  /// the retained std::-based kernels instead of the fused fastmath ones
  /// (see nn/lstm.h). No-op for networks without such kernels (MLP).
  virtual void set_reference_gate_kernel(bool /*on*/) {}
#endif

  virtual std::vector<nn::Parameter*> parameters() = 0;

  /// A freshly initialised network of identical architecture (used to build
  /// the fixed Q-target copy).
  virtual std::unique_ptr<QNetwork> clone_architecture(Rng& rng) const = 0;

  virtual std::size_t num_actions() const = 0;
  virtual std::size_t history_steps() const = 0;
  virtual std::string name() const = 0;
};

using QNetworkPtr = std::unique_ptr<QNetwork>;

/// Greedy masked argmax over row `row` of a [B x m] Q matrix: ascending
/// scan, strict `>` comparison (first maximum wins), masked-out actions
/// skipped. This is THE argmax of the library — DqnTrainer's greedy/
/// behaviour policies and the cross-campaign batched serving path
/// (core::CampaignScheduler) all call it, so a batched Q row argmaxes to
/// exactly the action a B = 1 forward would pick.
inline std::size_t masked_argmax_row(const Matrix& q, std::size_t row,
                                     const std::vector<std::uint8_t>& mask) {
  DRCELL_CHECK(mask.size() == q.cols());
  std::size_t best = mask.size();
  double best_q = -std::numeric_limits<double>::infinity();
  for (std::size_t a = 0; a < mask.size(); ++a) {
    if (!mask[a]) continue;
    if (q(row, a) > best_q) {
      best_q = q(row, a);
      best = a;
    }
  }
  DRCELL_CHECK_MSG(best < mask.size(), "no selectable action");
  return best;
}

}  // namespace drcell::rl
