// Q-function approximators. Both the paper's DRQN (LSTM) and the plain
// dense DQN (the ablation baseline of Sec. 4.3: "one common way is using
// dense layers") implement this interface, so one trainer serves both.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "linalg/matrix.h"
#include "nn/layer.h"
#include "util/rng.h"

namespace drcell::rl {

class QNetwork {
 public:
  virtual ~QNetwork() = default;

  /// `sequence` holds the k recent selection vectors, oldest first, each a
  /// batch x m matrix. Returns Q-values, batch x m (one score per cell).
  virtual Matrix forward(const std::vector<Matrix>& sequence) = 0;

  /// Backpropagates the gradient w.r.t. the Q output of the last forward.
  virtual void backward(const Matrix& grad_q) = 0;

  virtual std::vector<nn::Parameter*> parameters() = 0;

  /// A freshly initialised network of identical architecture (used to build
  /// the fixed Q-target copy).
  virtual std::unique_ptr<QNetwork> clone_architecture(Rng& rng) const = 0;

  virtual std::size_t num_actions() const = 0;
  virtual std::size_t history_steps() const = 0;
  virtual std::string name() const = 0;
};

using QNetworkPtr = std::unique_ptr<QNetwork>;

}  // namespace drcell::rl
