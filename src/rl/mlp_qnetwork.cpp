#include "rl/mlp_qnetwork.h"

#include "nn/activations.h"
#include "nn/dense.h"

namespace drcell::rl {

MlpQNetwork::MlpQNetwork(std::size_t num_cells, std::size_t history_steps,
                         std::vector<std::size_t> hidden_sizes, Rng& rng)
    : num_cells_(num_cells),
      history_steps_(history_steps),
      hidden_sizes_(std::move(hidden_sizes)) {
  DRCELL_CHECK(num_cells_ > 0 && history_steps_ > 0);
  std::size_t in = num_cells_ * history_steps_;
  for (std::size_t h : hidden_sizes_) {
    DRCELL_CHECK(h > 0);
    net_.emplace<nn::Dense>(in, h, rng);
    net_.emplace<nn::ReLU>();
    in = h;
  }
  net_.emplace<nn::Dense>(in, num_cells_, rng);
}

const Matrix& MlpQNetwork::flatten(const std::vector<Matrix>& sequence) {
  DRCELL_CHECK_MSG(sequence.size() == history_steps_,
                   "sequence length mismatch");
  const std::size_t batch = sequence.front().rows();
  flat_ws_.resize_overwrite(batch, num_cells_ * history_steps_);
  for (std::size_t t = 0; t < history_steps_; ++t) {
    const Matrix& step = sequence[t];
    DRCELL_CHECK(step.rows() == batch && step.cols() == num_cells_);
    for (std::size_t b = 0; b < batch; ++b)
      for (std::size_t c = 0; c < num_cells_; ++c)
        flat_ws_(b, t * num_cells_ + c) = step(b, c);
  }
  return flat_ws_;
}

const Matrix& MlpQNetwork::forward_batch(
    const std::vector<Matrix>& timestep_major_batch) {
  return net_.forward(flatten(timestep_major_batch));
}

void MlpQNetwork::backward(const Matrix& grad_q) { net_.backward(grad_q); }

#ifdef DRCELL_ENABLE_REFERENCE_KERNELS
Matrix MlpQNetwork::forward_reference(const std::vector<Matrix>& sequence) {
  // Pre-refactor behaviour: the flattened window is a fresh allocation per
  // call, and every layer allocates its output.
  Matrix flat = flatten(sequence);
  return net_.forward_reference(flat);
}

void MlpQNetwork::backward_reference(const Matrix& grad_q) {
  (void)net_.backward_reference(grad_q);
}
#endif

std::vector<nn::Parameter*> MlpQNetwork::parameters() {
  return net_.parameters();
}

std::unique_ptr<QNetwork> MlpQNetwork::clone_architecture(Rng& rng) const {
  return std::make_unique<MlpQNetwork>(num_cells_, history_steps_,
                                       hidden_sizes_, rng);
}

}  // namespace drcell::rl
