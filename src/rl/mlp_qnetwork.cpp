#include "rl/mlp_qnetwork.h"

#include "nn/activations.h"
#include "nn/dense.h"

namespace drcell::rl {

MlpQNetwork::MlpQNetwork(std::size_t num_cells, std::size_t history_steps,
                         std::vector<std::size_t> hidden_sizes, Rng& rng)
    : num_cells_(num_cells),
      history_steps_(history_steps),
      hidden_sizes_(std::move(hidden_sizes)) {
  DRCELL_CHECK(num_cells_ > 0 && history_steps_ > 0);
  std::size_t in = num_cells_ * history_steps_;
  for (std::size_t h : hidden_sizes_) {
    DRCELL_CHECK(h > 0);
    net_.emplace<nn::Dense>(in, h, rng);
    net_.emplace<nn::ReLU>();
    in = h;
  }
  net_.emplace<nn::Dense>(in, num_cells_, rng);
}

Matrix MlpQNetwork::flatten(const std::vector<Matrix>& sequence) const {
  DRCELL_CHECK_MSG(sequence.size() == history_steps_,
                   "sequence length mismatch");
  const std::size_t batch = sequence.front().rows();
  Matrix flat(batch, num_cells_ * history_steps_);
  for (std::size_t t = 0; t < history_steps_; ++t) {
    const Matrix& step = sequence[t];
    DRCELL_CHECK(step.rows() == batch && step.cols() == num_cells_);
    for (std::size_t b = 0; b < batch; ++b)
      for (std::size_t c = 0; c < num_cells_; ++c)
        flat(b, t * num_cells_ + c) = step(b, c);
  }
  return flat;
}

Matrix MlpQNetwork::forward(const std::vector<Matrix>& sequence) {
  return net_.forward(flatten(sequence));
}

void MlpQNetwork::backward(const Matrix& grad_q) { net_.backward(grad_q); }

std::vector<nn::Parameter*> MlpQNetwork::parameters() {
  return net_.parameters();
}

std::unique_ptr<QNetwork> MlpQNetwork::clone_architecture(Rng& rng) const {
  return std::make_unique<MlpQNetwork>(num_cells_, history_steps_,
                                       hidden_sizes_, rng);
}

}  // namespace drcell::rl
