#include "rl/dqn_trainer.h"

#include <limits>

#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/serialize.h"
#include "util/fault_injection.h"

namespace drcell::rl {

DqnTrainer::DqnTrainer(QNetworkPtr online, DqnOptions options,
                       std::uint64_t seed)
    : online_(std::move(online)),
      options_(options),
      replay_(options.replay_capacity),
      encoder_(online_ ? online_->num_actions() : 1,
               online_ ? online_->history_steps() : 1),
      rng_(seed) {
  DRCELL_CHECK(online_ != nullptr);
  DRCELL_CHECK(options_.gamma >= 0.0 && options_.gamma <= 1.0);
  DRCELL_CHECK(options_.batch_size > 0);
  DRCELL_CHECK(options_.target_sync_interval > 0);
  DRCELL_CHECK(options_.min_replay >= options_.batch_size);
  target_ = online_->clone_architecture(rng_);
#ifdef DRCELL_ENABLE_REFERENCE_KERNELS
  if (options_.reference_gate_kernel) {
    online_->set_reference_gate_kernel(true);
    target_->set_reference_gate_kernel(true);
  }
#endif
  sync_target();
  optimizer_ = std::make_unique<nn::Adam>(online_->parameters(),
                                          options_.learning_rate);
}

double DqnTrainer::current_epsilon() const {
  return options_.epsilon.value(env_steps_);
}

std::vector<Matrix> DqnTrainer::to_sequence(
    const std::vector<const std::vector<double>*>& states) const {
  return encoder_.to_sequence_batch(states);
}

EncodedExperience DqnTrainer::encode_experience(const Experience& e) const {
  // Cached sparse either way: dense states are scanned once here and never
  // re-densified; sparse (metro) states never materialise k·m vectors at
  // all.
  EncodedExperience enc;
  if (e.sparse_states) {
    encoder_.ones_to_sparse_steps(e.state_ones, enc.state);
    encoder_.ones_to_sparse_steps(e.next_state_ones, enc.next_state);
  } else {
    encoder_.to_sparse_steps(e.state, enc.state);
    encoder_.to_sparse_steps(e.next_state, enc.next_state);
  }
  return enc;
}

std::size_t DqnTrainer::masked_argmax(
    const Matrix& q, std::size_t row,
    const std::vector<std::uint8_t>& mask) const {
  return masked_argmax_row(q, row, mask);
}

std::size_t DqnTrainer::select_action(const std::vector<double>& state,
                                      const std::vector<std::uint8_t>& mask) {
  const double eps = current_epsilon();
  ++env_steps_;
  const Matrix& q = online_->forward_batch(to_sequence({&state}));
  const std::size_t best = masked_argmax(q, 0, mask);

  std::vector<std::size_t> others;
  for (std::size_t a = 0; a < mask.size(); ++a)
    if (mask[a] && a != best) others.push_back(a);
  if (!others.empty() && rng_.bernoulli(eps))
    return others[rng_.uniform_index(others.size())];
  return best;
}

std::size_t DqnTrainer::greedy_action(const std::vector<double>& state,
                                      const std::vector<std::uint8_t>& mask) {
  const Matrix& q = online_->forward_batch(to_sequence({&state}));
  return masked_argmax(q, 0, mask);
}

std::vector<double> DqnTrainer::q_values(const std::vector<double>& state) {
  const Matrix& q = online_->forward_batch(to_sequence({&state}));
  std::vector<double> out(q.cols());
  for (std::size_t a = 0; a < q.cols(); ++a) out[a] = q(0, a);
  return out;
}

void DqnTrainer::observe(Experience e) {
  DRCELL_CHECK(e.action < online_->num_actions());
  if (e.sparse_states) {
    DRCELL_CHECK_MSG(e.state.empty() && e.next_state.empty(),
                     "sparse_states transitions must leave the dense "
                     "encodings empty");
  } else {
    DRCELL_CHECK(e.state.size() == encoder_.state_size());
    DRCELL_CHECK(e.next_state.size() == encoder_.state_size());
  }
  if (e.next_candidates.empty()) {
    // Full-action bootstrap needs the mask (terminal transitions never
    // bootstrap, so theirs may stay empty).
    DRCELL_CHECK(e.terminal || e.next_mask.size() == online_->num_actions());
  } else {
    DRCELL_CHECK_MSG(
        e.next_mask.empty() || e.next_mask.size() == online_->num_actions(),
        "next_mask must be empty or full-width");
  }
  replay_.add(std::move(e));
}

double DqnTrainer::bootstrap_value(const Experience& e,
                                   const Matrix& q_next_target,
                                   const Matrix& q_next_online,
                                   std::size_t row) const {
  // Bootstrap from the fixed-target network (Eq. 7); optionally Double-DQN:
  // argmax from the online network, value from the target network. Terminal
  // transitions and dead-end masks contribute nothing.
  if (e.terminal) return 0.0;
  if (!e.next_candidates.empty()) {
    // Candidate-subset bootstrap: argmax restricted to the stored
    // candidates. Ascending cell ids with strict > replicate
    // masked_argmax's first-max-wins tie-breaking, so when the candidates
    // cover the allowed actions this equals the full masked bootstrap
    // exactly.
    const Matrix& chooser = options_.double_dqn ? q_next_online : q_next_target;
    std::size_t best = e.next_candidates.front();
    double best_q = -std::numeric_limits<double>::infinity();
    for (const std::uint32_t a : e.next_candidates) {
      if (chooser(row, a) > best_q) {
        best_q = chooser(row, a);
        best = a;
      }
    }
    return q_next_target(row, best);
  }
  bool any = false;
  for (std::uint8_t allowed : e.next_mask)
    if (allowed) {
      any = true;
      break;
    }
  if (!any) return 0.0;
  if (options_.double_dqn) {
    const std::size_t a_star = masked_argmax(q_next_online, row, e.next_mask);
    return q_next_target(row, a_star);
  }
  return q_next_target(row, masked_argmax(q_next_target, row, e.next_mask));
}

double DqnTrainer::finish_update(double raw_loss_sum, double normalizer) {
  if (options_.grad_clip_norm > 0.0)
    nn::clip_grad_norm(online_->parameters(), options_.grad_clip_norm);
  // Pooled elementwise update — bit-identical to serial for any worker
  // count (optimizer.h), and the dominant per-step cost at the metro tier.
  optimizer_->step(pool_ ? pool_ : &util::ThreadPool::global());
  ++train_steps_;
  if (train_steps_ % options_.target_sync_interval == 0) sync_target();
  return raw_loss_sum / normalizer;
}

double DqnTrainer::train_step() {
  // Planted before the replay sample so a transient injected fault does not
  // advance the sampling stream — a retried/skipped step trains on exactly
  // the batch the uninterrupted run would have drawn.
  DRCELL_FAULT_SITE("train.step", "");
  if (replay_.size() < options_.min_replay) return 0.0;
  const auto batch = replay_.sample_indices(options_.batch_size, rng_);
#ifdef DRCELL_ENABLE_REFERENCE_KERNELS
  if (options_.reference_path) return train_step_reference_on_indices(batch);
#else
  DRCELL_CHECK_MSG(!options_.reference_path,
                   "reference_path requires DRCELL_REFERENCE_KERNELS");
#endif
  return train_step_on_indices(batch);
}

#ifdef DRCELL_ENABLE_REFERENCE_KERNELS
double DqnTrainer::train_step_reference() {
  if (replay_.size() < options_.min_replay) return 0.0;
  const auto batch = replay_.sample_indices(options_.batch_size, rng_);
  return train_step_reference_on_indices(batch);
}
#endif

double DqnTrainer::train_step_on_indices(
    std::span<const std::size_t> indices) {
  if (options_.candidate_training)
    return train_step_candidates_on_indices(indices);

  const std::size_t b = indices.size();
  DRCELL_CHECK(b > 0);
  const std::size_t actions = online_->num_actions();

  // One timestep-major minibatch for the current and next states, assembled
  // by the replay buffer straight from its encoded-sequence cache (a
  // transition is encoded once, not once per epoch it gets sampled into).
  // Networks with a sparse batch path consume the minibatch without
  // densification — bit-identical values either way.
  const auto encode = [this](const Experience& e) {
    return encode_experience(e);
  };
  const bool sparse_batch = !options_.force_dense_batch &&
                            online_->supports_sparse_batch() &&
                            target_->supports_sparse_batch();
  if (sparse_batch) {
    replay_.fill_timestep_major_sparse(indices, encode, state_sseq_ws_,
                                       next_sseq_ws_);
  } else {
    replay_.fill_timestep_major(indices, encode, state_seq_ws_, next_seq_ws_);
  }

  // The target and online networks are distinct objects, so their batch
  // forwards run as two concurrent pool lanes. The online lane keeps its
  // internal order (next-state forward, then current-state forward) so the
  // activations cached for backward() always belong to q_pred; the
  // Double-DQN snapshot is copied out before the second forward overwrites
  // the online network's workspace. Results are bit-identical to the
  // serial path for any worker count.
  const Matrix* q_next_target = nullptr;
  const Matrix* q_pred = nullptr;
  util::ThreadPool& pool = pool_ ? *pool_ : util::ThreadPool::global();
  pool.parallel_for(2, [&](std::size_t lane) {
    if (lane == 0) {
      q_next_target = sparse_batch
                          ? &target_->forward_batch_sparse(next_sseq_ws_)
                          : &target_->forward_batch(next_seq_ws_);
    } else if (sparse_batch) {
      if (options_.double_dqn)
        q_next_online_ws_ = online_->forward_batch_sparse(next_sseq_ws_);
      q_pred = &online_->forward_batch_sparse(state_sseq_ws_);
    } else {
      if (options_.double_dqn)
        q_next_online_ws_ = online_->forward_batch(next_seq_ws_);
      q_pred = &online_->forward_batch(state_seq_ws_);
    }
  });

  // Regress the taken action's Q-value towards R + γ max Q'(S', A') with a
  // masked Huber loss (Eqs. 5-7).
  targets_ws_.resize(b, actions);
  mask_ws_.resize(b, actions);
  for (std::size_t i = 0; i < b; ++i) {
    const Experience& e = replay_.at(indices[i]);
    const double boot =
        bootstrap_value(e, *q_next_target, q_next_online_ws_, i);
    targets_ws_(i, e.action) = e.reward + options_.gamma * boot;
    mask_ws_(i, e.action) = 1.0;
  }

  const auto loss = nn::masked_huber_loss(*q_pred, targets_ws_, mask_ws_,
                                          options_.huber_delta);
  optimizer_->zero_grad();
  online_->backward(loss.grad);
  return finish_update(loss.raw_sum, loss.normalizer);
}

double DqnTrainer::train_step_candidates_on_indices(
    std::span<const std::size_t> indices) {
  // The metro-tier update: sparse minibatch, Q head evaluated at one column
  // (the taken action) per prediction row and at the stored candidates per
  // bootstrap row, masked Huber over [b x 1]. Every evaluated Q-value, the
  // loss and the resulting parameter update are bit-identical to the full
  // batched path whenever each transition's candidates cover its allowed
  // actions (the covering contract pinned by tests/sparse_gather_test.cpp);
  // the head work drops from O(b·m·hidden) to O(b·K·hidden).
  const std::size_t b = indices.size();
  DRCELL_CHECK(b > 0);
  DRCELL_CHECK_MSG(online_->supports_action_columns(),
                   "candidate_training needs a column-capable network");

  replay_.fill_timestep_major_sparse(
      indices, [this](const Experience& e) { return encode_experience(e); },
      state_sseq_ws_, next_sseq_ws_);

  action_cols_ws_.resize(b);
  next_cols_ws_.resize(b);
  for (std::size_t i = 0; i < b; ++i) {
    const Experience& e = replay_.at(indices[i]);
    action_cols_ws_[i].assign(1, static_cast<std::uint32_t>(e.action));
    if (e.terminal) {
      // Never bootstrapped — any well-formed column keeps the batch
      // rectangular without influencing the update.
      next_cols_ws_[i].assign(1, 0);
    } else {
      DRCELL_CHECK_MSG(!e.next_candidates.empty(),
                       "candidate training needs next_candidates on every "
                       "non-terminal transition");
      next_cols_ws_[i] = e.next_candidates;
    }
  }

  // Same two concurrent lanes as the full path (distinct network objects;
  // the online lane orders its forwards so the cached activations belong to
  // q_pred).
  const Matrix* q_next_target = nullptr;
  const Matrix* q_pred = nullptr;
  util::ThreadPool& pool = pool_ ? *pool_ : util::ThreadPool::global();
  pool.parallel_for(2, [&](std::size_t lane) {
    if (lane == 0) {
      q_next_target =
          &target_->forward_batch_columns(next_sseq_ws_, next_cols_ws_);
    } else {
      if (options_.double_dqn)
        q_next_online_ws_ =
            online_->forward_batch_columns(next_sseq_ws_, next_cols_ws_);
      q_pred = &online_->forward_batch_columns(state_sseq_ws_, action_cols_ws_);
    }
  });

  targets_ws_.resize(b, 1);
  mask_ws_.resize(b, 1);
  for (std::size_t i = 0; i < b; ++i) {
    const Experience& e = replay_.at(indices[i]);
    double boot = 0.0;
    if (!e.terminal) {
      // Argmax over candidate positions (ascending cell ids, strict >):
      // replicates masked_argmax's first-max-wins scan over the same
      // Q-values.
      const auto& cols = next_cols_ws_[i];
      const Matrix& chooser =
          options_.double_dqn ? q_next_online_ws_ : *q_next_target;
      std::size_t best = 0;
      double best_q = -std::numeric_limits<double>::infinity();
      for (std::size_t j = 0; j < cols.size(); ++j) {
        if (chooser(i, j) > best_q) {
          best_q = chooser(i, j);
          best = j;
        }
      }
      boot = (*q_next_target)(i, best);
    }
    targets_ws_(i, 0) = e.reward + options_.gamma * boot;
    mask_ws_(i, 0) = 1.0;
  }

  // One masked entry per row, so the default normalizer (mask count = b)
  // matches the full path's — the per-row loss terms and gradients are the
  // full path's masked entries, nothing more.
  const auto loss = nn::masked_huber_loss(*q_pred, targets_ws_, mask_ws_,
                                          options_.huber_delta);
  optimizer_->zero_grad();
  online_->backward_columns(loss.grad, action_cols_ws_);
  return finish_update(loss.raw_sum, loss.normalizer);
}

std::vector<double> DqnTrainer::candidate_q_values(
    std::span<const std::uint32_t> state_ones,
    std::span<const std::uint32_t> candidates) {
  DRCELL_CHECK_MSG(!candidates.empty(), "no candidate actions");
  const std::size_t k = encoder_.history_cycles();
  sel_seq_ws_.resize(k);
  for (auto& step : sel_seq_ws_) step.reset(1, encoder_.cells());
  encoder_.ones_to_sequence_row(state_ones, 0, sel_seq_ws_);
  sel_cols_ws_.resize(1);
  sel_cols_ws_[0].assign(candidates.begin(), candidates.end());
  const Matrix& q = online_->forward_batch_columns(sel_seq_ws_, sel_cols_ws_);
  std::vector<double> out(candidates.size());
  for (std::size_t j = 0; j < candidates.size(); ++j) out[j] = q(0, j);
  return out;
}

std::size_t DqnTrainer::candidate_argmax(
    std::span<const std::uint32_t> state_ones,
    std::span<const std::uint32_t> candidates) {
  DRCELL_CHECK_MSG(!candidates.empty(), "no candidate actions");
  const std::size_t k = encoder_.history_cycles();
  sel_seq_ws_.resize(k);
  for (auto& step : sel_seq_ws_) step.reset(1, encoder_.cells());
  encoder_.ones_to_sequence_row(state_ones, 0, sel_seq_ws_);
  sel_cols_ws_.resize(1);
  sel_cols_ws_[0].assign(candidates.begin(), candidates.end());
  const Matrix& q = online_->forward_batch_columns(sel_seq_ws_, sel_cols_ws_);
  std::size_t best = 0;
  double best_q = -std::numeric_limits<double>::infinity();
  for (std::size_t j = 0; j < candidates.size(); ++j) {
    if (q(0, j) > best_q) {
      best_q = q(0, j);
      best = j;
    }
  }
  return best;
}

std::size_t DqnTrainer::select_action_candidates(
    std::span<const std::uint32_t> state_ones,
    std::span<const std::uint32_t> candidates) {
  const double eps = current_epsilon();
  ++env_steps_;
  const std::size_t best = candidate_argmax(state_ones, candidates);
  // Same δ-greedy draw pattern as select_action: explore only when an
  // alternative exists, drawing uniformly from the non-greedy candidates.
  if (candidates.size() > 1 && rng_.bernoulli(eps)) {
    std::size_t j = rng_.uniform_index(candidates.size() - 1);
    if (j >= best) ++j;
    return candidates[j];
  }
  return candidates[best];
}

std::size_t DqnTrainer::greedy_action_candidates(
    std::span<const std::uint32_t> state_ones,
    std::span<const std::uint32_t> candidates) {
  return candidates[candidate_argmax(state_ones, candidates)];
}

#ifdef DRCELL_ENABLE_REFERENCE_KERNELS
std::vector<Matrix> DqnTrainer::to_reference_sequence(
    const SparseRowMatrix& s) const {
  // Fresh per-call allocations on purpose — this feeds the retained
  // pre-refactor reference path, whose convention is allocation-heavy.
  std::vector<Matrix> seq(s.rows());
  for (std::size_t j = 0; j < s.rows(); ++j) {
    seq[j].resize(1, s.cols());
    const auto cols = s.row_indices(j);
    const auto vals = s.row_values(j);
    for (std::size_t e = 0; e < cols.size(); ++e)
      seq[j](0, cols[e]) = vals[e];
  }
  return seq;
}

double DqnTrainer::train_step_reference_on_indices(
    std::span<const std::size_t> indices) {
  // The per-sample trainer the batched engine replaces, retained as the
  // reference it must match bit for bit: every transition runs as its own
  // B=1 timestep-major sequence through the networks' pre-refactor
  // reference implementations — target forward, optional Double-DQN online
  // forward, online forward, per-sample loss gradient (normalised by the
  // whole minibatch's element count so it equals the batched gradient row),
  // backward — with gradients accumulating sample by sample.
  const std::size_t b = indices.size();
  DRCELL_CHECK(b > 0);
  const std::size_t actions = online_->num_actions();
  const double normalizer = static_cast<double>(b);

  optimizer_->zero_grad();
  double raw_loss_sum = 0.0;
  for (std::size_t i = 0; i < b; ++i) {
    const Experience& e = replay_.at(indices[i]);
    const EncodedExperience& enc = replay_.encoded(
        indices[i], [this](const Experience& ex) {
          return encode_experience(ex);
        });
    // The cache stores sparse encodings; the reference implementations
    // consume dense B=1 sequences, so densify (outside any timed kernel
    // contract — the reference is the floor, not the fast path).
    const std::vector<Matrix> next_seq = to_reference_sequence(enc.next_state);
    const std::vector<Matrix> state_seq = to_reference_sequence(enc.state);

    const Matrix q_next_target = target_->forward_reference(next_seq);
    double boot = 0.0;
    if (options_.double_dqn) {
      const Matrix q_next_online = online_->forward_reference(next_seq);
      boot = bootstrap_value(e, q_next_target, q_next_online, 0);
    } else {
      boot = bootstrap_value(e, q_next_target, q_next_online_ws_, 0);
    }
    const Matrix q_pred = online_->forward_reference(state_seq);

    Matrix target_row(1, actions);
    Matrix mask_row(1, actions);
    target_row(0, e.action) = e.reward + options_.gamma * boot;
    mask_row(0, e.action) = 1.0;
    const auto loss = nn::masked_huber_loss(q_pred, target_row, mask_row,
                                            options_.huber_delta, normalizer);
    raw_loss_sum += loss.raw_sum;
    online_->backward_reference(loss.grad);
  }
  return finish_update(raw_loss_sum, normalizer);
}
#endif

void DqnTrainer::sync_target() {
  nn::copy_parameters(online_->parameters(), target_->parameters());
}

}  // namespace drcell::rl
