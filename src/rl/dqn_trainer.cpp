#include "rl/dqn_trainer.h"

#include <limits>

#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/serialize.h"

namespace drcell::rl {

DqnTrainer::DqnTrainer(QNetworkPtr online, DqnOptions options,
                       std::uint64_t seed)
    : online_(std::move(online)),
      options_(options),
      replay_(options.replay_capacity),
      encoder_(online_ ? online_->num_actions() : 1,
               online_ ? online_->history_steps() : 1),
      rng_(seed) {
  DRCELL_CHECK(online_ != nullptr);
  DRCELL_CHECK(options_.gamma >= 0.0 && options_.gamma <= 1.0);
  DRCELL_CHECK(options_.batch_size > 0);
  DRCELL_CHECK(options_.target_sync_interval > 0);
  DRCELL_CHECK(options_.min_replay >= options_.batch_size);
  target_ = online_->clone_architecture(rng_);
  sync_target();
  optimizer_ = std::make_unique<nn::Adam>(online_->parameters(),
                                          options_.learning_rate);
}

double DqnTrainer::current_epsilon() const {
  return options_.epsilon.value(env_steps_);
}

std::vector<Matrix> DqnTrainer::to_sequence(
    const std::vector<const std::vector<double>*>& states) const {
  return encoder_.to_sequence_batch(states);
}

std::size_t DqnTrainer::masked_argmax(
    const Matrix& q, std::size_t row,
    const std::vector<std::uint8_t>& mask) const {
  DRCELL_CHECK(mask.size() == q.cols());
  std::size_t best = mask.size();
  double best_q = -std::numeric_limits<double>::infinity();
  for (std::size_t a = 0; a < mask.size(); ++a) {
    if (!mask[a]) continue;
    if (q(row, a) > best_q) {
      best_q = q(row, a);
      best = a;
    }
  }
  DRCELL_CHECK_MSG(best < mask.size(), "no selectable action");
  return best;
}

std::size_t DqnTrainer::select_action(const std::vector<double>& state,
                                      const std::vector<std::uint8_t>& mask) {
  const double eps = current_epsilon();
  ++env_steps_;
  const Matrix q = online_->forward(to_sequence({&state}));
  const std::size_t best = masked_argmax(q, 0, mask);

  std::vector<std::size_t> others;
  for (std::size_t a = 0; a < mask.size(); ++a)
    if (mask[a] && a != best) others.push_back(a);
  if (!others.empty() && rng_.bernoulli(eps))
    return others[rng_.uniform_index(others.size())];
  return best;
}

std::size_t DqnTrainer::greedy_action(const std::vector<double>& state,
                                      const std::vector<std::uint8_t>& mask) {
  const Matrix q = online_->forward(to_sequence({&state}));
  return masked_argmax(q, 0, mask);
}

std::vector<double> DqnTrainer::q_values(const std::vector<double>& state) {
  const Matrix q = online_->forward(to_sequence({&state}));
  std::vector<double> out(q.cols());
  for (std::size_t a = 0; a < q.cols(); ++a) out[a] = q(0, a);
  return out;
}

void DqnTrainer::observe(Experience e) {
  DRCELL_CHECK(e.action < online_->num_actions());
  DRCELL_CHECK(e.state.size() == encoder_.state_size());
  DRCELL_CHECK(e.next_state.size() == encoder_.state_size());
  DRCELL_CHECK(e.next_mask.size() == online_->num_actions());
  replay_.add(std::move(e));
}

double DqnTrainer::train_step() {
  if (replay_.size() < options_.min_replay) return 0.0;
  const auto batch = replay_.sample_indices(options_.batch_size, rng_);
  const std::size_t b = batch.size();
  const std::size_t actions = online_->num_actions();

  // Batch input sequences for the current and next states. The per-
  // transition encodings are cached inside the replay buffer (a transition
  // is encoded once, not once per epoch it gets sampled into); assembling a
  // batch is then k contiguous row copies per transition.
  const std::size_t k = encoder_.history_cycles();
  const std::size_t cells = encoder_.cells();
  std::vector<Matrix> next_seq(k, Matrix(b, cells));
  std::vector<Matrix> state_seq(k, Matrix(b, cells));
  for (std::size_t i = 0; i < b; ++i) {
    const EncodedExperience& enc =
        replay_.encoded(batch[i], [this](const Experience& e) {
          return EncodedExperience{encoder_.to_sequence(e.state),
                                   encoder_.to_sequence(e.next_state)};
        });
    for (std::size_t j = 0; j < k; ++j) {
      const auto state_row = enc.state[j].row(0);
      std::copy(state_row.begin(), state_row.end(),
                state_seq[j].row(i).begin());
      const auto next_row = enc.next_state[j].row(0);
      std::copy(next_row.begin(), next_row.end(),
                next_seq[j].row(i).begin());
    }
  }

  // Bootstrap values for every next state from the fixed-target network
  // (Eq. 7); optionally Double-DQN: argmax from the online network, value
  // from the target network.

  // The target and online networks are distinct objects, so their batch
  // forwards run as two concurrent pool lanes. The online lane keeps its
  // internal order (next-state forward, then current-state forward) so the
  // activations cached for backward() always belong to q_pred; results are
  // bit-identical to the serial path.
  Matrix q_next_target;
  Matrix q_next_online;
  Matrix q_pred;
  util::ThreadPool& pool = pool_ ? *pool_ : util::ThreadPool::global();
  pool.parallel_for(2, [&](std::size_t lane) {
    if (lane == 0) {
      q_next_target = target_->forward(next_seq);
    } else {
      if (options_.double_dqn) q_next_online = online_->forward(next_seq);
      q_pred = online_->forward(state_seq);
    }
  });

  std::vector<double> bootstrap(b, 0.0);
  for (std::size_t i = 0; i < b; ++i) {
    const Experience& e = replay_.at(batch[i]);
    if (e.terminal) continue;
    bool any = false;
    for (std::uint8_t allowed : e.next_mask)
      if (allowed) {
        any = true;
        break;
      }
    if (!any) continue;
    if (options_.double_dqn) {
      const std::size_t a_star = masked_argmax(q_next_online, i, e.next_mask);
      bootstrap[i] = q_next_target(i, a_star);
    } else {
      bootstrap[i] =
          q_next_target(i, masked_argmax(q_next_target, i, e.next_mask));
    }
  }

  // Regress the taken action's Q-value towards R + γ max Q'(S', A') with a
  // masked Huber loss (Eqs. 5-7).
  Matrix targets(b, actions);
  Matrix mask(b, actions);
  for (std::size_t i = 0; i < b; ++i) {
    const Experience& e = replay_.at(batch[i]);
    targets(i, e.action) = e.reward + options_.gamma * bootstrap[i];
    mask(i, e.action) = 1.0;
  }

  const auto loss =
      nn::masked_huber_loss(q_pred, targets, mask, options_.huber_delta);
  optimizer_->zero_grad();
  online_->backward(loss.grad);
  if (options_.grad_clip_norm > 0.0)
    nn::clip_grad_norm(online_->parameters(), options_.grad_clip_norm);
  optimizer_->step();

  ++train_steps_;
  if (train_steps_ % options_.target_sync_interval == 0) sync_target();
  return loss.value;
}

void DqnTrainer::sync_target() {
  nn::copy_parameters(online_->parameters(), target_->parameters());
}

}  // namespace drcell::rl
