// DRQN variant for metro-scale action spaces: both ends of the paper's
// network are factored through one *fixed* spatial feature matrix Φ
// instead of per-cell weight columns:
//
//   state_t  = g·(x_t · Φ)                 (trunk input, d ≪ cells)
//   Q(s, a)  = query(lstm(state)) · φ(a)   (head)
//
// where φ(a) = Φ.row(a) is a 2-D Fourier feature vector of cell a's grid
// position (all products of {1, cos(πk·u), sin(πk·u)} in each axis up to
// `fourier_k`, d = (2·fourier_k + 1)²), x_t is the t-th recent selection
// vector, and query(·) is a small learned dense map from the LSTM state.
// `DrqnQNetwork` needs gradient signal on every one of its m head columns
// and m LSTM input rows — at 10,000 cells a training run's transitions
// touch each a handful of times, far too few to learn either a placement
// policy or the grid geometry behind it. Here the geometry is supplied:
// the trunk sees each step's *coverage summary* (the mean Fourier feature
// of the selected cells — a smoothed density map of where sensing mass
// sits), every transition updates the whole query map, and the preference
// that matters at this tier ("score cells by how thinly their
// neighbourhood is covered") is a bilinear form of summary and φ(a). This
// is the standard action-embedding treatment for very large discrete
// action spaces; the trade-off — Q can only vary smoothly over the grid,
// no per-cell exceptions — is documented in docs/ARCHITECTURE.md.
//
// The fast-path contracts of the candidate machinery hold here too: the
// x·Φ trunk projection *is* the sparse gather-GEMM when the steps arrive
// as index lists (SparseRowMatrix::matmul_into, bit-identical to the
// dense kernel), and the column-restricted head evaluates q·φ(a) with the
// same ascending-k zero-skip recurrence the full q·Φᵀ kernel uses per
// element, so every evaluated entry is bit-identical to the full
// forward's.
#pragma once

#include "nn/dense.h"
#include "nn/lstm.h"
#include "nn/sequential.h"
#include "rl/qnetwork.h"

namespace drcell::rl {

class SpatialDrqnQNetwork final : public QNetwork {
 public:
  /// Cells are the row-major grid_w x grid_h grid (cell c at
  /// (c % grid_w, c / grid_w), matching data::SyntheticFieldGenerator).
  /// `fourier_k` controls the spatial resolution of the head
  /// (d = (2k+1)² features); `query_hidden` = 0 maps the LSTM state to the
  /// query directly, otherwise one ReLU hidden layer is inserted.
  SpatialDrqnQNetwork(std::size_t grid_w, std::size_t grid_h,
                      std::size_t history_steps, std::size_t lstm_hidden,
                      std::size_t fourier_k, std::size_t query_hidden,
                      Rng& rng);

  const Matrix& forward_batch(
      const std::vector<Matrix>& timestep_major_batch) override;
  void backward(const Matrix& grad_q) override;

  bool supports_sparse_batch() const override { return true; }
  const Matrix& forward_batch_sparse(
      const std::vector<SparseRowMatrix>& timestep_major_batch) override;
  bool supports_action_columns() const override { return true; }
  const Matrix& forward_batch_columns(
      const std::vector<SparseRowMatrix>& timestep_major_batch,
      const ActionColumns& columns) override;
  void backward_columns(const Matrix& grad_columns,
                        const ActionColumns& columns) override;
#ifdef DRCELL_ENABLE_REFERENCE_KERNELS
  Matrix forward_reference(const std::vector<Matrix>& sequence) override;
  void backward_reference(const Matrix& grad_q) override;
  void set_reference_gate_kernel(bool on) override {
    lstm_.set_reference_gate_kernel(on);
  }
#endif
  std::vector<nn::Parameter*> parameters() override;
  std::unique_ptr<QNetwork> clone_architecture(Rng& rng) const override;
  std::size_t num_actions() const override { return grid_w_ * grid_h_; }
  std::size_t history_steps() const override { return history_steps_; }
  std::string name() const override { return "drqn-lstm-spatial"; }

  std::size_t feature_dims() const { return phi_.cols(); }
  /// The fixed feature matrix Φ ([cells x d]; tests).
  const Matrix& features() const { return phi_; }

 private:
  /// query(h) of the last forward (shared epilogue of the full and
  /// column-restricted paths).
  const Matrix& forward_query(const Matrix& trunk_out);
  /// g·(x_t · Φ) per step into proj_ws_ (g a fixed input gain). The
  /// sparse overload gathers over the stored ones — bit-identical to the
  /// dense projection.
  const std::vector<Matrix>& project(const std::vector<Matrix>& steps);
  const std::vector<Matrix>& project(
      const std::vector<SparseRowMatrix>& steps);

  std::size_t grid_w_, grid_h_;
  std::size_t history_steps_;
  std::size_t fourier_k_;
  std::size_t query_hidden_;
  nn::Lstm lstm_;
  nn::Sequential query_;
  Matrix phi_;         // [cells x d], fixed (not a Parameter)
  std::vector<Matrix> proj_ws_;  // [batch x d] per-step trunk inputs
  Matrix q_full_ws_;   // [batch x cells] full-head output
  Matrix q_cols_ws_;   // [batch x max_width] restricted-head output
  Matrix dquery_ws_;   // [batch x d] head-input gradient
};

}  // namespace drcell::rl
