#include "rl/drqn_qnetwork.h"

#include "nn/activations.h"
#include "nn/sequential.h"

namespace drcell::rl {

DrqnQNetwork::DrqnQNetwork(std::size_t num_cells, std::size_t history_steps,
                           std::size_t lstm_hidden, std::size_t head_hidden,
                           Rng& rng)
    : num_cells_(num_cells),
      history_steps_(history_steps),
      head_hidden_(head_hidden),
      lstm_(num_cells, lstm_hidden, rng) {
  DRCELL_CHECK(num_cells_ > 0 && history_steps_ > 0);
  if (head_hidden_ > 0) {
    head_.emplace<nn::Dense>(lstm_hidden, head_hidden_, rng);
    head_.emplace<nn::ReLU>();
    head_.emplace<nn::Dense>(head_hidden_, num_cells_, rng);
  } else {
    head_.emplace<nn::Dense>(lstm_hidden, num_cells_, rng);
  }
}

Matrix DrqnQNetwork::forward(const std::vector<Matrix>& sequence) {
  DRCELL_CHECK_MSG(sequence.size() == history_steps_,
                   "sequence length mismatch");
  const Matrix last_hidden = lstm_.forward(sequence);
  return head_.forward(last_hidden);
}

void DrqnQNetwork::backward(const Matrix& grad_q) {
  const Matrix grad_hidden = head_.backward(grad_q);
  lstm_.backward(grad_hidden);
}

std::vector<nn::Parameter*> DrqnQNetwork::parameters() {
  auto ps = lstm_.parameters();
  const auto head_ps = head_.parameters();
  ps.insert(ps.end(), head_ps.begin(), head_ps.end());
  return ps;
}

std::unique_ptr<QNetwork> DrqnQNetwork::clone_architecture(Rng& rng) const {
  return std::make_unique<DrqnQNetwork>(num_cells_, history_steps_,
                                        lstm_.hidden_size(), head_hidden_,
                                        rng);
}

}  // namespace drcell::rl
