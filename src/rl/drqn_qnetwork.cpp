#include "rl/drqn_qnetwork.h"

#include "nn/activations.h"
#include "nn/sequential.h"

namespace drcell::rl {

DrqnQNetwork::DrqnQNetwork(std::size_t num_cells, std::size_t history_steps,
                           std::size_t lstm_hidden, std::size_t head_hidden,
                           Rng& rng)
    : num_cells_(num_cells),
      history_steps_(history_steps),
      head_hidden_(head_hidden),
      lstm_(num_cells, lstm_hidden, rng) {
  DRCELL_CHECK(num_cells_ > 0 && history_steps_ > 0);
  if (head_hidden_ > 0) {
    head_.emplace<nn::Dense>(lstm_hidden, head_hidden_, rng);
    head_.emplace<nn::ReLU>();
    head_.emplace<nn::Dense>(head_hidden_, num_cells_, rng);
  } else {
    head_.emplace<nn::Dense>(lstm_hidden, num_cells_, rng);
  }
}

const Matrix& DrqnQNetwork::forward_batch(
    const std::vector<Matrix>& timestep_major_batch) {
  DRCELL_CHECK_MSG(timestep_major_batch.size() == history_steps_,
                   "sequence length mismatch");
  return head_.forward(lstm_.forward(timestep_major_batch));
}

void DrqnQNetwork::backward(const Matrix& grad_q) {
  // The DRQN never consumes gradients w.r.t. its (one-hot state) inputs,
  // so the LSTM skips the per-step dz·Wxᵀ products entirely.
  lstm_.backward(head_.backward(grad_q), /*compute_input_grads=*/false);
}

const Matrix& DrqnQNetwork::forward_batch_sparse(
    const std::vector<SparseRowMatrix>& timestep_major_batch) {
  DRCELL_CHECK_MSG(timestep_major_batch.size() == history_steps_,
                   "sequence length mismatch");
  return head_.forward(lstm_.forward(timestep_major_batch));
}

const Matrix& DrqnQNetwork::forward_batch_columns(
    const std::vector<SparseRowMatrix>& timestep_major_batch,
    const ActionColumns& columns) {
  DRCELL_CHECK_MSG(timestep_major_batch.size() == history_steps_,
                   "sequence length mismatch");
  // All head layers but the output Dense run in full (they are
  // hidden-width, not action-width); only the final m-wide projection is
  // restricted to the candidate columns.
  const Matrix* x = &lstm_.forward(timestep_major_batch);
  for (std::size_t i = 0; i + 1 < head_.layer_count(); ++i)
    x = &head_.layer(i).forward(*x);
  auto& out = static_cast<nn::Dense&>(head_.layer(head_.layer_count() - 1));
  return out.forward_columns(*x, columns);
}

void DrqnQNetwork::backward_columns(const Matrix& grad_columns,
                                    const ActionColumns& columns) {
  auto& out = static_cast<nn::Dense&>(head_.layer(head_.layer_count() - 1));
  const Matrix* g = &out.backward_columns(grad_columns, columns);
  for (std::size_t i = head_.layer_count() - 1; i-- > 0;)
    g = &head_.layer(i).backward(*g);
  lstm_.backward(*g, /*compute_input_grads=*/false);
}

#ifdef DRCELL_ENABLE_REFERENCE_KERNELS
Matrix DrqnQNetwork::forward_reference(const std::vector<Matrix>& sequence) {
  DRCELL_CHECK_MSG(sequence.size() == history_steps_,
                   "sequence length mismatch");
  const Matrix last_hidden = lstm_.forward_reference(sequence);
  return head_.forward_reference(last_hidden);
}

void DrqnQNetwork::backward_reference(const Matrix& grad_q) {
  // Pre-refactor behaviour: input gradients computed (and discarded), with
  // Wxᵀ/Whᵀ materialised every step.
  const Matrix grad_hidden = head_.backward_reference(grad_q);
  (void)lstm_.backward_reference(grad_hidden);
}
#endif

std::vector<nn::Parameter*> DrqnQNetwork::parameters() {
  auto ps = lstm_.parameters();
  const auto head_ps = head_.parameters();
  ps.insert(ps.end(), head_ps.begin(), head_ps.end());
  return ps;
}

std::unique_ptr<QNetwork> DrqnQNetwork::clone_architecture(Rng& rng) const {
  return std::make_unique<DrqnQNetwork>(num_cells_, history_steps_,
                                        lstm_.hidden_size(), head_hidden_,
                                        rng);
}

}  // namespace drcell::rl
