#include "rl/replay_buffer.h"

namespace drcell::rl {

ReplayBuffer::ReplayBuffer(std::size_t capacity, std::size_t max_cache_bytes)
    : capacity_(capacity), max_cache_bytes_(max_cache_bytes) {
  DRCELL_CHECK_MSG(capacity_ > 0, "replay buffer needs positive capacity");
  items_.reserve(capacity_);
  cache_.reserve(capacity_);
}

void ReplayBuffer::add(Experience e) {
  if (items_.size() < capacity_) {
    items_.push_back(std::move(e));
    cache_.emplace_back();
  } else {
    items_[next_] = std::move(e);
    if (cache_[next_].has_value()) {
      // The slot now holds a different transition; release its encoding
      // back to the byte budget.
      cache_bytes_ -= encoded_bytes(*cache_[next_]);
      cache_[next_].reset();
    }
    next_ = (next_ + 1) % capacity_;
  }
}

std::vector<std::size_t> ReplayBuffer::sample_indices(std::size_t count,
                                                      Rng& rng) const {
  DRCELL_CHECK_MSG(!items_.empty(), "sampling from an empty replay buffer");
  std::vector<std::size_t> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    out.push_back(rng.uniform_index(items_.size()));
  return out;
}

std::vector<const Experience*> ReplayBuffer::sample(std::size_t count,
                                                    Rng& rng) const {
  const auto indices = sample_indices(count, rng);
  std::vector<const Experience*> out;
  out.reserve(count);
  for (std::size_t i : indices) out.push_back(&items_[i]);
  return out;
}

void ReplayBuffer::clear() {
  items_.clear();
  cache_.clear();
  cache_bytes_ = 0;
  next_ = 0;
}

}  // namespace drcell::rl
