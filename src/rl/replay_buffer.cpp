#include "rl/replay_buffer.h"

namespace drcell::rl {

ReplayBuffer::ReplayBuffer(std::size_t capacity) : capacity_(capacity) {
  DRCELL_CHECK_MSG(capacity_ > 0, "replay buffer needs positive capacity");
  items_.reserve(capacity_);
}

void ReplayBuffer::add(Experience e) {
  if (items_.size() < capacity_) {
    items_.push_back(std::move(e));
  } else {
    items_[next_] = std::move(e);
    next_ = (next_ + 1) % capacity_;
  }
}

std::vector<const Experience*> ReplayBuffer::sample(std::size_t count,
                                                    Rng& rng) const {
  DRCELL_CHECK_MSG(!items_.empty(), "sampling from an empty replay buffer");
  std::vector<const Experience*> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    out.push_back(&items_[rng.uniform_index(items_.size())]);
  return out;
}

void ReplayBuffer::clear() {
  items_.clear();
  next_ = 0;
}

}  // namespace drcell::rl
