// Dense (non-recurrent) Q-network: the k-step state window is flattened and
// fed through an MLP. The Sec. 4.3 strawman that the DRQN is compared
// against in the network-architecture ablation.
#pragma once

#include "nn/sequential.h"
#include "rl/qnetwork.h"

namespace drcell::rl {

class MlpQNetwork final : public QNetwork {
 public:
  /// history_steps * num_cells inputs -> hidden ReLU layers -> num_cells.
  MlpQNetwork(std::size_t num_cells, std::size_t history_steps,
              std::vector<std::size_t> hidden_sizes, Rng& rng);

  const Matrix& forward_batch(
      const std::vector<Matrix>& timestep_major_batch) override;
  void backward(const Matrix& grad_q) override;
#ifdef DRCELL_ENABLE_REFERENCE_KERNELS
  Matrix forward_reference(const std::vector<Matrix>& sequence) override;
  void backward_reference(const Matrix& grad_q) override;
#endif
  std::vector<nn::Parameter*> parameters() override;
  std::unique_ptr<QNetwork> clone_architecture(Rng& rng) const override;
  std::size_t num_actions() const override { return num_cells_; }
  std::size_t history_steps() const override { return history_steps_; }
  std::string name() const override { return "dqn-mlp"; }

 private:
  const Matrix& flatten(const std::vector<Matrix>& sequence);

  std::size_t num_cells_;
  std::size_t history_steps_;
  std::vector<std::size_t> hidden_sizes_;
  nn::Sequential net_;
  Matrix flat_ws_;  // [batch x k·m] flattened window, reused across calls
};

}  // namespace drcell::rl
