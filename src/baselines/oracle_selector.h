// Greedy ground-truth oracle — the impractical reference point of the
// paper's footnote 1 ("the optimal cell selection strategy … needs to know
// the ground truth data of each cell in advance"). For every candidate cell
// it hypothetically senses it, re-infers, and measures the *true* cycle
// error, then picks the error-minimising cell. Used only in ablation
// benches to show the remaining headroom above DR-Cell.
#pragma once

#include "baselines/selector.h"

namespace drcell::baselines {

class GreedyOracleSelector final : public CellSelector {
 public:
  explicit GreedyOracleSelector(cs::InferenceEnginePtr engine);

  std::size_t select(const mcs::SparseMcsEnvironment& env) override;
  std::string name() const override { return "ORACLE"; }

 private:
  cs::InferenceEnginePtr engine_;
};

}  // namespace drcell::baselines
