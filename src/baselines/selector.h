// The cell-selection policy interface. DR-Cell, QBC, RANDOM and the oracle
// all implement it, so the campaign runner can evaluate them identically.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mcs/environment.h"

namespace drcell::baselines {

class CellSelector {
 public:
  virtual ~CellSelector() = default;

  /// Chooses the next cell to sense given the environment's current
  /// observation window and action mask. Must return an unmasked cell.
  virtual std::size_t select(const mcs::SparseMcsEnvironment& env) = 0;

  /// Called by the campaign runner after the chosen action was applied —
  /// lets adaptive policies (online DR-Cell) learn from the outcome.
  virtual void on_step(const mcs::SparseMcsEnvironment& env,
                       std::size_t action, const mcs::StepResult& result) {
    (void)env;
    (void)action;
    (void)result;
  }

  /// Checkpoint/resume hooks (core/checkpoint.h): the selector's mutable
  /// state as opaque 64-bit words, such that restore_state_words on a
  /// freshly constructed same-config selector makes its future decisions
  /// bit-identical to the checkpointed one's. Stateless selectors (greedy
  /// DR-Cell, QBC, oracle) keep the empty default; stochastic ones
  /// (RANDOM, online DR-Cell) serialise their RNG stream. Model weights
  /// travel separately in the checkpoint's agent table, not here.
  virtual std::vector<std::uint64_t> checkpoint_state_words() const {
    return {};
  }
  virtual void restore_state_words(const std::vector<std::uint64_t>& words) {
    DRCELL_CHECK_MSG(words.empty(),
                     "selector " + name() + " expects no checkpoint state");
  }

  virtual std::string name() const = 0;
};

}  // namespace drcell::baselines
