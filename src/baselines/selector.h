// The cell-selection policy interface. DR-Cell, QBC, RANDOM and the oracle
// all implement it, so the campaign runner can evaluate them identically.
#pragma once

#include <string>

#include "mcs/environment.h"

namespace drcell::baselines {

class CellSelector {
 public:
  virtual ~CellSelector() = default;

  /// Chooses the next cell to sense given the environment's current
  /// observation window and action mask. Must return an unmasked cell.
  virtual std::size_t select(const mcs::SparseMcsEnvironment& env) = 0;

  /// Called by the campaign runner after the chosen action was applied —
  /// lets adaptive policies (online DR-Cell) learn from the outcome.
  virtual void on_step(const mcs::SparseMcsEnvironment& env,
                       std::size_t action, const mcs::StepResult& result) {
    (void)env;
    (void)action;
    (void)result;
  }

  virtual std::string name() const = 0;
};

}  // namespace drcell::baselines
