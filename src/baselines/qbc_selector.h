// Query-By-Committee baseline (Sec. 5.2, following CCS-TA/SPACE-TA): a
// committee of heterogeneous inference algorithms each reconstructs the
// sensing matrix; the next sensed cell is the one where their predictions
// for the current cycle disagree the most (largest variance) — the
// "hard-to-infer" cell.
#pragma once

#include "baselines/selector.h"
#include "cs/committee.h"
#include "util/rng.h"

namespace drcell::baselines {

class QbcSelector final : public CellSelector {
 public:
  /// The committee typically mixes compressive sensing, KNN and temporal
  /// interpolation; `seed` drives tie-breaking only.
  QbcSelector(cs::InferenceCommittee committee, std::uint64_t seed);

  /// Builds the canonical three-member committee for a task geometry.
  static QbcSelector make_default(const mcs::SensingTask& task,
                                  std::uint64_t seed);

  std::size_t select(const mcs::SparseMcsEnvironment& env) override;
  std::string name() const override { return "QBC"; }

 private:
  cs::InferenceCommittee committee_;
  Rng rng_;
};

}  // namespace drcell::baselines
