#include "baselines/oracle_selector.h"

#include <limits>

namespace drcell::baselines {

GreedyOracleSelector::GreedyOracleSelector(cs::InferenceEnginePtr engine)
    : engine_(std::move(engine)) {
  DRCELL_CHECK(engine_ != nullptr);
}

std::size_t GreedyOracleSelector::select(const mcs::SparseMcsEnvironment& env) {
  const auto& mask = env.action_mask();
  const auto& task = env.task();
  const std::size_t cycle = env.current_cycle();
  const std::size_t col = env.current_window_col();

  double best_error = std::numeric_limits<double>::infinity();
  std::size_t best_cell = mask.size();
  cs::PartialMatrix scratch = env.observation_window();
  for (std::size_t cell = 0; cell < mask.size(); ++cell) {
    if (!mask[cell]) continue;
    scratch.set(cell, col, task.truth(cell, cycle));
    const Matrix inferred = engine_->infer(scratch);
    const double err =
        mcs::true_cycle_error(task, scratch, col, inferred, cycle);
    scratch.clear(cell, col);
    if (err < best_error) {
      best_error = err;
      best_cell = cell;
    }
  }
  DRCELL_CHECK_MSG(best_cell < mask.size(), "no selectable cell");
  return best_cell;
}

}  // namespace drcell::baselines
