#include "baselines/random_selector.h"

namespace drcell::baselines {

RandomSelector::RandomSelector(std::uint64_t seed) : rng_(seed) {}

std::size_t RandomSelector::select(const mcs::SparseMcsEnvironment& env) {
  // One uniform draw over the environment's incremental unsensed set — O(1)
  // per pick instead of rebuilding an allowed-cell list per call. The set's
  // order is swap-removal, not ascending, so a given seed maps the same
  // draw stream to different cells than the pre-set implementation did;
  // the distribution (uniform over the allowed cells) is unchanged.
  const auto& allowed = env.unsensed_cells();
  DRCELL_CHECK_MSG(!allowed.empty(), "no selectable cell");
  return allowed[rng_.uniform_index(allowed.size())];
}

}  // namespace drcell::baselines
