#include "baselines/random_selector.h"

namespace drcell::baselines {

RandomSelector::RandomSelector(std::uint64_t seed) : rng_(seed) {}

std::size_t RandomSelector::select(const mcs::SparseMcsEnvironment& env) {
  const auto mask = env.action_mask();
  std::vector<std::size_t> allowed;
  for (std::size_t a = 0; a < mask.size(); ++a)
    if (mask[a]) allowed.push_back(a);
  DRCELL_CHECK_MSG(!allowed.empty(), "no selectable cell");
  return allowed[rng_.uniform_index(allowed.size())];
}

}  // namespace drcell::baselines
