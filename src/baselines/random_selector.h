// RANDOM baseline (Sec. 5.2): sense uniformly random unsensed cells until
// the quality gate is satisfied.
#pragma once

#include <algorithm>
#include <array>

#include "baselines/selector.h"
#include "util/rng.h"

namespace drcell::baselines {

class RandomSelector final : public CellSelector {
 public:
  explicit RandomSelector(std::uint64_t seed);

  std::size_t select(const mcs::SparseMcsEnvironment& env) override;
  std::string name() const override { return "RANDOM"; }

  /// The draw stream (util/rng.h save/restore): a resumed RANDOM campaign
  /// picks the exact cells the uninterrupted run would have.
  std::vector<std::uint64_t> checkpoint_state_words() const override {
    const auto s = rng_.save_state();
    return std::vector<std::uint64_t>(s.begin(), s.end());
  }
  void restore_state_words(const std::vector<std::uint64_t>& words) override {
    DRCELL_CHECK_MSG(words.size() == 6, "RANDOM checkpoint needs 6 words");
    std::array<std::uint64_t, 6> s;
    std::copy(words.begin(), words.end(), s.begin());
    rng_.restore_state(s);
  }

 private:
  Rng rng_;
};

}  // namespace drcell::baselines
