// RANDOM baseline (Sec. 5.2): sense uniformly random unsensed cells until
// the quality gate is satisfied.
#pragma once

#include "baselines/selector.h"
#include "util/rng.h"

namespace drcell::baselines {

class RandomSelector final : public CellSelector {
 public:
  explicit RandomSelector(std::uint64_t seed);

  std::size_t select(const mcs::SparseMcsEnvironment& env) override;
  std::string name() const override { return "RANDOM"; }

 private:
  Rng rng_;
};

}  // namespace drcell::baselines
