#include "baselines/qbc_selector.h"

#include "cs/matrix_completion.h"
#include "cs/mean_inference.h"
#include "cs/temporal_inference.h"

namespace drcell::baselines {

QbcSelector::QbcSelector(cs::InferenceCommittee committee, std::uint64_t seed)
    : committee_(std::move(committee)), rng_(seed) {}

QbcSelector QbcSelector::make_default(const mcs::SensingTask& task,
                                      std::uint64_t seed) {
  std::vector<cs::InferenceEnginePtr> members;
  members.push_back(std::make_shared<cs::MatrixCompletion>());
  members.push_back(std::make_shared<cs::KnnInference>(task.coords()));
  members.push_back(std::make_shared<cs::TemporalInterpolation>());
  return QbcSelector(cs::InferenceCommittee(std::move(members)), seed);
}

std::size_t QbcSelector::select(const mcs::SparseMcsEnvironment& env) {
  const auto& window = env.observation_window();
  const std::size_t col = env.current_window_col();

  const auto predictions = committee_.infer_all(window);
  const Matrix variance = cs::InferenceCommittee::disagreement(predictions);

  // Argmax of the committee variance over selectable cells; ties (notably
  // the all-zero variance at the start of a cycle) break uniformly. The
  // scan stays in ascending cell order — can_select() is the O(1)
  // membership test of the incremental unsensed set, and the epsilon-band
  // tie collection below is order-sensitive, so iterating the set's
  // swap-removal order would change the selection stream for a given seed.
  double best = -1.0;
  std::vector<std::size_t> best_cells;
  for (std::size_t cell = 0; cell < env.num_cells(); ++cell) {
    if (!env.can_select(cell)) continue;
    const double v = variance(cell, col);
    if (v > best + 1e-15) {
      best = v;
      best_cells.assign(1, cell);
    } else if (v >= best - 1e-15) {
      best_cells.push_back(cell);
    }
  }
  DRCELL_CHECK_MSG(!best_cells.empty(), "no selectable cell");
  return best_cells[rng_.uniform_index(best_cells.size())];
}

}  // namespace drcell::baselines
