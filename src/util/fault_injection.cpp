#include "util/fault_injection.h"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace drcell::util {

InjectedFault::InjectedFault(const std::string& site, const std::string& scope)
    : std::runtime_error("injected fault at " + site +
                         (scope.empty() ? std::string() : "@" + scope)),
      site_(site),
      scope_(scope) {}

namespace {

FaultSpec parse_entry(const std::string& entry);

struct ArmedSpec {
  FaultSpec spec;
  std::uint64_t hit_count = 0;
  std::uint64_t fire_count = 0;
  Rng rng;

  explicit ArmedSpec(const FaultSpec& s) : spec(s), rng(s.seed) {}
};

struct Registry {
  std::mutex mutex;
  std::vector<ArmedSpec> armed;
  // Mirrors `!armed.empty()` so disarmed sites pay one relaxed load and no
  // lock. Only mutated under `mutex`.
  std::atomic<bool> any_armed{false};
};

Registry& registry() {
  // The env spec is parsed once, at first registry use — after that only
  // the programmatic API mutates the armed set. Parsing happens inline
  // (not via arm_from_string) because nothing else may reach the registry
  // until this initializer returns.
  static Registry* reg = [] {
    auto* r = new Registry();
    if (const char* env = std::getenv("DRCELL_FAULT_SPEC");
        env != nullptr && *env != '\0') {
      const std::string spec(env);
      std::size_t start = 0;
      while (start <= spec.size()) {
        std::size_t end = spec.find(';', start);
        if (end == std::string::npos) end = spec.size();
        const std::string entry = spec.substr(start, end - start);
        start = end + 1;
        if (entry.empty()) continue;
        r->armed.emplace_back(parse_entry(entry));
      }
      r->any_armed.store(!r->armed.empty(), std::memory_order_relaxed);
    }
    return r;
  }();
  return *reg;
}

bool matches(const FaultSpec& spec, const char* site,
             const std::string& scope) {
  if (spec.site != site) return false;
  return spec.scope.empty() || spec.scope == scope;
}

// Parses one `site[@scope]:k=v,...` entry of the DRCELL_FAULT_SPEC grammar.
FaultSpec parse_entry(const std::string& entry) {
  FaultSpec spec;
  const std::size_t colon = entry.find(':');
  std::string head = entry.substr(0, colon);
  const std::size_t at = head.find('@');
  if (at != std::string::npos) {
    spec.scope = head.substr(at + 1);
    head = head.substr(0, at);
  }
  spec.site = head;
  DRCELL_CHECK_MSG(!spec.site.empty(),
                   "DRCELL_FAULT_SPEC entry with empty site: '" + entry + "'");
  if (colon == std::string::npos) return spec;

  std::string params = entry.substr(colon + 1);
  std::size_t start = 0;
  while (start <= params.size()) {
    std::size_t end = params.find(',', start);
    if (end == std::string::npos) end = params.size();
    const std::string kv = params.substr(start, end - start);
    start = end + 1;
    if (kv.empty()) continue;
    const std::size_t eq = kv.find('=');
    DRCELL_CHECK_MSG(eq != std::string::npos && eq > 0,
                     "malformed DRCELL_FAULT_SPEC param '" + kv + "'");
    const std::string key = kv.substr(0, eq);
    const std::string value = kv.substr(eq + 1);
    char* parse_end = nullptr;
    if (key == "after") {
      spec.after = std::strtoull(value.c_str(), &parse_end, 10);
    } else if (key == "times") {
      if (value == "inf") {
        spec.times = FaultSpec::kForever;
        parse_end = const_cast<char*>(value.c_str()) + value.size();
      } else {
        spec.times = std::strtoull(value.c_str(), &parse_end, 10);
      }
    } else if (key == "prob") {
      spec.probability = std::strtod(value.c_str(), &parse_end);
    } else if (key == "seed") {
      spec.seed = std::strtoull(value.c_str(), &parse_end, 10);
    } else {
      DRCELL_CHECK_MSG(false,
                       "unknown DRCELL_FAULT_SPEC key '" + key + "'");
    }
    DRCELL_CHECK_MSG(
        parse_end != nullptr && *parse_end == '\0' &&
            parse_end != value.c_str(),
        "unparsable DRCELL_FAULT_SPEC value '" + kv + "'");
  }
  DRCELL_CHECK_MSG(spec.probability >= 0.0 && spec.probability <= 1.0,
                   "DRCELL_FAULT_SPEC prob outside [0,1]");
  return spec;
}

}  // namespace

bool FaultInjection::enabled() {
  return registry().any_armed.load(std::memory_order_relaxed);
}

void FaultInjection::arm(const FaultSpec& spec) {
  DRCELL_CHECK_MSG(!spec.site.empty(), "FaultSpec needs a site name");
  DRCELL_CHECK_MSG(spec.probability >= 0.0 && spec.probability <= 1.0,
                   "FaultSpec probability outside [0,1]");
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  reg.armed.emplace_back(spec);
  reg.any_armed.store(true, std::memory_order_relaxed);
}

std::size_t FaultInjection::arm_from_string(const std::string& spec) {
  std::size_t count = 0;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t end = spec.find(';', start);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(start, end - start);
    start = end + 1;
    if (entry.empty()) continue;
    arm(parse_entry(entry));
    ++count;
  }
  return count;
}

void FaultInjection::disarm_all() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  reg.armed.clear();
  reg.any_armed.store(false, std::memory_order_relaxed);
}

std::uint64_t FaultInjection::hits(const std::string& site,
                                   const std::string& scope) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  std::uint64_t total = 0;
  for (const ArmedSpec& a : reg.armed)
    if (a.spec.site == site && (scope.empty() || a.spec.scope == scope))
      total += a.hit_count;
  return total;
}

std::uint64_t FaultInjection::fires(const std::string& site,
                                    const std::string& scope) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  std::uint64_t total = 0;
  for (const ArmedSpec& a : reg.armed)
    if (a.spec.site == site && (scope.empty() || a.spec.scope == scope))
      total += a.fire_count;
  return total;
}

bool FaultInjection::check(const char* site, const std::string& scope) {
  Registry& reg = registry();
  if (!reg.any_armed.load(std::memory_order_relaxed)) return false;
  std::lock_guard<std::mutex> lock(reg.mutex);
  bool fire = false;
  for (ArmedSpec& a : reg.armed) {
    if (!matches(a.spec, site, scope)) continue;
    ++a.hit_count;
    if (fire) continue;  // one fire per call; later specs still count hits
    if (a.hit_count <= a.spec.after) continue;
    if (a.spec.times != FaultSpec::kForever && a.fire_count >= a.spec.times)
      continue;
    if (a.spec.probability < 1.0 && !a.rng.bernoulli(a.spec.probability))
      continue;
    ++a.fire_count;
    fire = true;
  }
  return fire;
}

void FaultInjection::site(const char* site, const std::string& scope) {
  if (check(site, scope)) throw InjectedFault(site, scope);
}

}  // namespace drcell::util
