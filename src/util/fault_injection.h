// Deterministic, seeded fault injection for robustness drills.
//
// The library plants named *fault sites* on its failure-prone boundaries —
// environment stepping (`env.step`), ALS solves (`als.solve`, plus the
// check-only `als.converge` that forces the cold-solve fallback), checkpoint
// I/O (`ckpt.save`, `ckpt.load`) and the DQN train step (`train.step`).
// A disarmed site costs one relaxed atomic load and draws NOTHING from any
// RNG stream, so healthy-path trajectories are bit-identical with the
// subsystem compiled in (the serving engine's no-fault bit-identity gates
// run with it enabled).
//
// Arming. Sites are armed programmatically (`FaultInjection::arm`) or via
// the `DRCELL_FAULT_SPEC` environment variable, read ONCE at first registry
// use (the same read-once discipline as DRCELL_BACKEND / DRCELL_THREADS).
// The spec grammar is `;`-separated entries of
//
//   site[@scope]:key=value[,key=value...]      e.g.
//   DRCELL_FAULT_SPEC="env.step@city-3:after=5,times=1;als.solve:prob=0.01"
//
// with keys
//   after=N   skip the first N matching hits, fire from hit N+1 on (0)
//   times=K   fire at most K times, `inf` = every eligible hit (inf)
//   prob=P    per-eligible-hit fire probability in [0,1] (1.0)
//   seed=S    seed of the spec's PRIVATE probability draw stream (13)
// A bare `site[@scope]` (no params) fires on every hit — a persistent
// fault. `scope` narrows the spec to one instance (the scheduler scopes
// `env.step` by campaign id); an empty scope matches every instance.
//
// Determinism: each armed spec owns its hit counter, fire counter and RNG
// stream, so countdown faults against a scoped site fire on an exact,
// reproducible hit of exactly that instance. (Probability faults on an
// UNscoped site that is hit from pooled workers see hits in scheduling
// order — countdowns on scoped sites are the reproducible drill primitive.)
//
// Firing sites throw util::InjectedFault, which fault-tolerant callers
// (core/campaign_scheduler.h) treat like any other campaign fault: bounded
// retry, then quarantine. Check-only sites (`FaultInjection::check`) let a
// caller degrade behaviour without unwinding — cs/matrix_completion.cpp
// uses one to force its non-convergence fallback deterministically.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace drcell::util {

/// The exception a firing (throwing) fault site raises. Deliberately NOT a
/// CheckError: drills must distinguish injected faults from real contract
/// violations.
class InjectedFault : public std::runtime_error {
 public:
  InjectedFault(const std::string& site, const std::string& scope);
  const std::string& site() const { return site_; }
  const std::string& scope() const { return scope_; }

 private:
  std::string site_;
  std::string scope_;
};

/// One armed fault. Defaults describe a persistent always-fire fault;
/// `after`/`times`/`probability` carve transient or stochastic ones out.
struct FaultSpec {
  std::string site;   ///< site name, e.g. "env.step" — required
  std::string scope;  ///< instance filter; empty matches every scope
  std::uint64_t after = 0;  ///< eligible from matching hit `after`+1 on
  std::uint64_t times = kForever;  ///< max fires; kForever = unbounded
  double probability = 1.0;        ///< per-eligible-hit fire chance
  std::uint64_t seed = 13;         ///< private stream for probability draws

  static constexpr std::uint64_t kForever = ~std::uint64_t{0};
};

/// Process-wide fault registry (static interface; one registry per
/// process, guarded by a mutex on the armed path only).
class FaultInjection {
 public:
  /// True when any spec is armed (incl. via DRCELL_FAULT_SPEC). One relaxed
  /// atomic load — the entire cost of a disarmed site.
  static bool enabled();

  /// Arms a spec. Throws CheckError on an empty site name or a probability
  /// outside [0, 1].
  static void arm(const FaultSpec& spec);
  /// Parses and arms a DRCELL_FAULT_SPEC-grammar string (see header
  /// comment); returns the number of specs armed. Throws CheckError on a
  /// malformed spec.
  static std::size_t arm_from_string(const std::string& spec);
  /// Disarms every spec, including env-armed ones (tests/drills reset).
  static void disarm_all();

  /// Total matching hits / fires recorded by armed specs for `site` (+
  /// `scope` filter, empty = sum over all). Zero when nothing matching is
  /// armed — disarmed sites count nothing by design.
  static std::uint64_t hits(const std::string& site,
                            const std::string& scope = "");
  static std::uint64_t fires(const std::string& site,
                             const std::string& scope = "");

  /// Check-only site: records the hit and returns true when an armed spec
  /// fires. Callers use it to degrade behaviour in place of unwinding.
  static bool check(const char* site, const std::string& scope = {});
  /// Throwing site: like check(), but raises InjectedFault on fire.
  static void site(const char* site, const std::string& scope = {});
};

}  // namespace drcell::util

/// The planted-site macro: one relaxed atomic load when disarmed, so hot
/// paths keep it unconditionally.
#define DRCELL_FAULT_SITE(name, scope)                      \
  do {                                                      \
    if (::drcell::util::FaultInjection::enabled())          \
      ::drcell::util::FaultInjection::site((name), (scope)); \
  } while (false)
