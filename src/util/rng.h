// Deterministic random number generation for all drcell components.
//
// Every stochastic component in the library takes an explicit seed (or an
// Rng&) so that experiments are exactly reproducible. The generator is
// xoshiro256** seeded through SplitMix64, which is fast, high quality and
// has a tiny state compared to std::mt19937.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "util/check.h"

namespace drcell {

/// SplitMix64 — used to expand a single 64-bit seed into generator state.
/// Also usable standalone as a tiny counter-based generator.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna) wrapped with the sampling helpers the
/// library needs. Satisfies UniformRandomBitGenerator so it can also be fed
/// to <random> distributions if ever required.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eedu);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }
  result_type operator()() { return next_u64(); }

  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n). Requires n > 0.
  std::size_t uniform_index(std::size_t n);
  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int uniform_int(int lo, int hi);
  /// Standard normal via Box–Muller (cached spare value).
  double normal();
  /// Normal with the given mean and standard deviation (sd >= 0).
  double normal(double mean, double sd);
  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = uniform_index(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Uniformly chosen element of a non-empty vector.
  template <typename T>
  const T& choice(const std::vector<T>& v) {
    DRCELL_CHECK_MSG(!v.empty(), "Rng::choice on empty vector");
    return v[uniform_index(v.size())];
  }

  /// Derive an independent child generator (for per-component streams).
  Rng fork();

  /// Checkpoint/resume support: the full generator state as six words —
  /// the four xoshiro words, the cached Box–Muller spare (bit-cast), and
  /// its validity flag. restore_state(save_state()) resumes the exact draw
  /// stream, so a resumed campaign replays the uninterrupted one bit for
  /// bit (core/checkpoint.h).
  std::array<std::uint64_t, 6> save_state() const;
  void restore_state(const std::array<std::uint64_t, 6>& words);

 private:
  std::uint64_t s_[4];
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
};

}  // namespace drcell
