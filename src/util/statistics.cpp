#include "util/statistics.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace drcell {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(n_ + other.n_);
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ +
         delta * delta * static_cast<double>(n_) *
             static_cast<double>(other.n_) / total;
  mean_ += delta * static_cast<double>(other.n_) / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double quantile(std::vector<double> xs, double q) {
  DRCELL_CHECK_MSG(!xs.empty(), "quantile of empty sample");
  DRCELL_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs[0];
  const double pos = q * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double median(std::vector<double> xs) { return quantile(std::move(xs), 0.5); }

double pearson_correlation(std::span<const double> xs,
                           std::span<const double> ys) {
  DRCELL_CHECK(xs.size() == ys.size());
  if (xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double normal_cdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

double normal_quantile(double p) {
  DRCELL_CHECK_MSG(p > 0.0 && p < 1.0, "normal_quantile domain");
  // Acklam's algorithm.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  const double phigh = 1.0 - plow;
  double q, r;
  if (p < plow) {
    q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= phigh) {
    q = p - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  }
  q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

double log_gamma(double x) {
  DRCELL_CHECK_MSG(x > 0.0, "log_gamma domain");
  // Lanczos approximation, g = 7, n = 9.
  static const double coeffs[] = {
      0.99999999999980993,  676.5203681218851,   -1259.1392167224028,
      771.32342877765313,   -176.61502916214059, 12.507343278686905,
      -0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7};
  if (x < 0.5) {
    // Reflection formula.
    const double pi = 3.14159265358979323846;
    return std::log(pi / std::sin(pi * x)) - log_gamma(1.0 - x);
  }
  x -= 1.0;
  double a = coeffs[0];
  const double t = x + 7.5;
  for (int i = 1; i < 9; ++i) a += coeffs[i] / (x + static_cast<double>(i));
  const double half_log_two_pi = 0.91893853320467274178;
  return half_log_two_pi + (x + 0.5) * std::log(t) - t + std::log(a);
}

double student_t_cdf(double t, double dof) {
  DRCELL_CHECK_MSG(dof > 0.0, "student_t_cdf needs positive dof");
  if (t == 0.0) return 0.5;
  const double x = dof / (dof + t * t);
  const double half_tail = 0.5 * incomplete_beta(dof / 2.0, 0.5, x);
  return t > 0.0 ? 1.0 - half_tail : half_tail;
}

namespace {
// Continued fraction for the incomplete beta function (Lentz's method).
double beta_cf(double a, double b, double x) {
  const int max_iter = 300;
  const double eps = 3.0e-14;
  const double fpmin = 1.0e-300;
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < fpmin) d = fpmin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= max_iter; ++m) {
    const double m2 = 2.0 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < fpmin) d = fpmin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < fpmin) c = fpmin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < fpmin) d = fpmin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < fpmin) c = fpmin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < eps) break;
  }
  return h;
}
}  // namespace

double incomplete_beta(double a, double b, double x) {
  DRCELL_CHECK(a > 0.0 && b > 0.0);
  DRCELL_CHECK(x >= 0.0 && x <= 1.0);
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  const double ln_front = log_gamma(a + b) - log_gamma(a) - log_gamma(b) +
                          a * std::log(x) + b * std::log(1.0 - x);
  const double front = std::exp(ln_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * beta_cf(a, b, x) / a;
  }
  return 1.0 - front * beta_cf(b, a, 1.0 - x) / b;
}

}  // namespace drcell
