// Vectorised elementwise transcendental kernels — the fastmath layer behind
// the nn/ activations and the fused LSTM gate pass.
//
// std::exp / std::tanh are scalar library calls: accurate to <1 ulp, but they
// branch per element and never vectorise, and the LSTM gate nonlinearities
// (4 per hidden unit per step) became the dominant per-sample train-step
// cost once the GEMMs were batched (ROADMAP). The kernels here trade that
// last digit for a branch-light polynomial form the compiler can keep in
// SIMD registers across a whole array pass:
//
//   exp   — exp2-style range reduction x = k·ln2 + r (Cody–Waite two-part
//           ln2, round-to-nearest via the 1.5·2^52 shift trick), degree-11
//           Taylor/Horner for e^r on |r| ≤ ln2/2, scale by 2^k through exponent
//           bit assembly. No per-element branches; specials (NaN, ±inf,
//           overflow, underflow) are patched with selects the vectoriser
//           turns into blends.
//   tanh  — tanh(x) = -em1 / (2 + em1) with em1 = expm1(-2|x|) computed
//           through the same reduction (expm1 form, so the small-|x| path
//           suffers no 1 - e cancellation), sign restored via copysign.
//   sigmoid — e = exp(-|x|); sigmoid = (x ≥ 0 ? 1 : e) / (1 + e), the
//           branchless form of the numerically stable two-sided evaluation.
//
// Accuracy contract (tests/fastmath_test.cpp sweeps a dense grid against
// std:: and the edge cases): on the training range [-40, 40] the relative
// error of tanh/sigmoid/exp is ≤ 1e-12 (measured ≲ 5e-14; the degree-11
// polynomial's truncation bound on |r| ≤ 0.3466 is 6.3e-15 before rounding).
// Outside it: tanh saturates to ±1 and sigmoid to {0, 1} exactly where
// std:: does within 1 ulp; exp flushes to 0 below x ≈ -708 (the subnormal
// tail is not reproduced) and to +inf above x ≈ 709.8; NaN propagates;
// denormal inputs pass through tanh/sigmoid exactly (tanh(x) = x,
// sigmoid(x) = 0.5 at that magnitude).
//
// Determinism: every kernel performs the same IEEE-754 double operations per
// element regardless of vector width, and the translation unit is compiled
// with -ffp-contract=off, so the target_clones SIMD variants (AVX2 and
// baseline; emitted on x86-64 ELF with GCC or Clang >= 14, single baseline
// path elsewhere) produce bit-identical results on every machine. Results
// differ from std:: by the documented bound — the numeric-divergence
// contract of the fused LSTM gate kernel (docs/ARCHITECTURE.md) is stated
// against this layer.
#pragma once

#include <cstddef>
#include <span>

namespace drcell::fastmath {

/// Scalar forms (the array kernels apply exactly these per element; exposed
/// for the accuracy tests and for callers with a single value in hand).
double exp(double x);
double tanh(double x);
double sigmoid(double x);

/// Out-of-place array forms: dst[i] = f(src[i]). src and dst may alias
/// exactly (dst == src) but must not partially overlap.
void exp_array(const double* src, double* dst, std::size_t n);
void tanh_array(const double* src, double* dst, std::size_t n);
void sigmoid_array(const double* src, double* dst, std::size_t n);

/// In-place array forms.
inline void exp_inplace(double* x, std::size_t n) { exp_array(x, x, n); }
inline void tanh_inplace(double* x, std::size_t n) { tanh_array(x, x, n); }
inline void sigmoid_inplace(double* x, std::size_t n) {
  sigmoid_array(x, x, n);
}
inline void exp_inplace(std::span<double> x) { exp_inplace(x.data(), x.size()); }
inline void tanh_inplace(std::span<double> x) {
  tanh_inplace(x.data(), x.size());
}
inline void sigmoid_inplace(std::span<double> x) {
  sigmoid_inplace(x.data(), x.size());
}

/// Derivative-from-output array forms (exact elementwise arithmetic — no
/// approximation): given y = tanh(x) (resp. sigmoid(x)) and the incoming
/// gradient g, writes dst[i] = g[i] · (1 - y[i]²) (resp. g[i]·y[i]·(1-y[i])).
void dtanh_from_output_array(const double* y, const double* grad, double* dst,
                             std::size_t n);
void dsigmoid_from_output_array(const double* y, const double* grad,
                                double* dst, std::size_t n);

}  // namespace drcell::fastmath
