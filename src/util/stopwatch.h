// Wall-clock stopwatch used by the benchmark harness and the trainers to
// report computation time (Sec. 5.4 of the paper).
#pragma once

#include <chrono>

namespace drcell {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double elapsed_ms() const { return elapsed_seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace drcell
