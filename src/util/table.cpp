#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/check.h"

namespace drcell {

std::string format_double(double v, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  return ss.str();
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  DRCELL_CHECK_MSG(!headers_.empty(), "table requires at least one column");
}

void TablePrinter::add_row(std::vector<std::string> row) {
  DRCELL_CHECK_MSG(row.size() == headers_.size(),
                   "row width does not match header width");
  rows_.push_back(std::move(row));
}

void TablePrinter::add_row(const std::string& label,
                           const std::vector<double>& values, int precision) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double v : values) row.push_back(format_double(v, precision));
  add_row(std::move(row));
}

void TablePrinter::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    out << "| ";
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
      out << (c + 1 < row.size() ? " | " : " |");
    }
    out << '\n';
  };

  print_row(headers_);
  out << '|';
  for (std::size_t c = 0; c < widths.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << '|';
  }
  out << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string TablePrinter::to_string() const {
  std::ostringstream ss;
  print(ss);
  return ss.str();
}

}  // namespace drcell
