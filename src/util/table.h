// Fixed-width console table printer. The benchmark harness uses it to
// print paper-style tables (one per figure / table of the evaluation).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace drcell {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> row);
  /// Convenience: formats doubles with the given precision.
  void add_row(const std::string& label, const std::vector<double>& values,
               int precision = 2);

  /// Renders the table with column separators and a header rule.
  void print(std::ostream& out) const;
  std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper shared by benches).
std::string format_double(double v, int precision = 2);

}  // namespace drcell
