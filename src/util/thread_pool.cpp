#include "util/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <memory>

namespace drcell::util {

namespace {
// Set for the lifetime of a worker thread. Nested parallel_for calls from
// inside a pool task run inline instead of re-entering the pool, which would
// deadlock a fully busy pool.
thread_local bool t_is_pool_worker = false;
// Set while a thread is submitting/draining a batch: a nested parallel_for
// from the caller's own lane must not touch submission_mutex_ again
// (try_lock on a non-recursive mutex the thread already owns is UB).
thread_local bool t_in_parallel_for = false;
// Task-exception count of this thread's most recent parallel_for (serial
// fallbacks included) — see ThreadPool::last_batch_error_count().
thread_local std::size_t t_last_error_count = 0;

// Indices claimed per fetch_add. ~8 chunks per lane keeps dynamic load
// balance (late lanes steal from the shared counter) while paying dispatch
// overhead once per range instead of once per index.
std::size_t chunk_size(std::size_t n, std::size_t lanes) {
  return std::max<std::size_t>(1, n / (lanes * 8));
}

// Owned through a unique_ptr so set_global_worker_count_for_testing can
// join + replace the pool; function-local static keeps the usual lazy-init
// thread safety.
std::unique_ptr<ThreadPool>& global_pool_slot() {
  static std::unique_ptr<ThreadPool> pool = std::make_unique<ThreadPool>(
      ThreadPool::workers_from_lanes_spec(std::getenv("DRCELL_THREADS"),
                                          ThreadPool::default_worker_count()));
  return pool;
}
}  // namespace

std::size_t ThreadPool::default_worker_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 1 ? static_cast<std::size_t>(hw - 1) : 0;
}

std::size_t ThreadPool::workers_from_lanes_spec(const char* spec,
                                                std::size_t fallback) {
  if (spec == nullptr || *spec == '\0') return fallback;
  char* end = nullptr;
  const unsigned long lanes = std::strtoul(spec, &end, 10);
  if (end == spec || *end != '\0' || lanes == 0) return fallback;
  return static_cast<std::size_t>(lanes - 1);  // caller is one lane
}

ThreadPool& ThreadPool::global() { return *global_pool_slot(); }

void ThreadPool::set_global_worker_count_for_testing(std::size_t workers) {
  auto& slot = global_pool_slot();
  if (slot->worker_count() == workers) return;
  slot = std::make_unique<ThreadPool>(workers);  // joins the old pool first
}

ThreadPool::ThreadPool(std::size_t workers) {
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    workers_.emplace_back([this] {
      t_is_pool_worker = true;
      worker_loop();
    });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_ready_.wait(lock, [this] {
      return stop_ ||
             (batch_ != nullptr &&
              batch_->next.load(std::memory_order_relaxed) < batch_->n);
    });
    if (stop_) return;
    Batch& batch = *batch_;
    // Register as a drainer under the mutex BEFORE touching the batch
    // lock-free: the caller's completion wait includes `drainers == 0`, so
    // the stack-allocated Batch cannot be destroyed while any worker still
    // holds a reference to it.
    ++batch.drainers;
    lock.unlock();
    drain(batch);
    lock.lock();
    --batch.drainers;
    if (batch.drainers == 0 &&
        batch.completed.load(std::memory_order_relaxed) == batch.n)
      batch_done_.notify_all();
  }
}

void ThreadPool::drain(Batch& batch) {
  for (;;) {
    const std::size_t start =
        batch.next.fetch_add(batch.chunk, std::memory_order_relaxed);
    if (start >= batch.n) return;
    const std::size_t end = std::min(start + batch.chunk, batch.n);
    // Per-task guard: a throwing task must not starve its chunk-mates (the
    // aggregation contract in the header). Zero-cost on the no-throw path;
    // errors are rare, so per-error locking is fine.
    std::exception_ptr first;
    std::size_t errors = 0;
    for (std::size_t i = start; i < end; ++i) {
      try {
        batch.fn(i);
      } catch (...) {
        if (!first) first = std::current_exception();
        ++errors;
      }
    }
    if (errors > 0) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!batch.error) batch.error = first;
      batch.error_count += errors;
    }
    // acq_rel: the release half publishes this range's output writes; the
    // caller's acquire load of `completed` (which reads the last value in
    // the RMW release sequence) synchronises with every lane's writes.
    const std::size_t done = end - start;
    if (batch.completed.fetch_add(done, std::memory_order_acq_rel) + done ==
        batch.n) {
      // Last range: wake the caller. Taking the mutex pairs the notify with
      // the caller's predicate check so the wake cannot be lost.
      std::lock_guard<std::mutex> lock(mutex_);
      batch_done_.notify_all();
    }
  }
}

namespace {
// Serial fallback with the same aggregation semantics as the pooled path:
// every index runs, the first exception is rethrown afterwards.
void run_serial(std::size_t n, FunctionRef<void(std::size_t)> fn,
                std::size_t& error_count) {
  std::exception_ptr first;
  error_count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    try {
      fn(i);
    } catch (...) {
      if (!first) first = std::current_exception();
      ++error_count;
    }
  }
  if (first) std::rethrow_exception(first);
}
}  // namespace

std::size_t ThreadPool::last_batch_error_count() {
  return t_last_error_count;
}

void ThreadPool::parallel_for(std::size_t n,
                              FunctionRef<void(std::size_t)> fn) {
  if (n == 0) {
    t_last_error_count = 0;
    return;
  }
  if (workers_.empty() || n == 1 || t_is_pool_worker || t_in_parallel_for) {
    // Nested calls share the caller's thread-local count; the innermost
    // batch wins, matching "most recent parallel_for of this thread".
    run_serial(n, fn, t_last_error_count);
    return;
  }
  std::unique_lock<std::mutex> submission(submission_mutex_,
                                          std::try_to_lock);
  if (!submission.owns_lock()) {
    // Another thread's batch is in flight; running serially is always
    // correct and never deadlocks.
    run_serial(n, fn, t_last_error_count);
    return;
  }
  t_in_parallel_for = true;
  struct ReentryGuard {
    ~ReentryGuard() { t_in_parallel_for = false; }
  } reentry_guard;

  Batch batch(fn, n, chunk_size(n, workers_.size() + 1));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    batch_ = &batch;
  }
  work_ready_.notify_all();
  drain(batch);  // the caller is one of the lanes
  std::unique_lock<std::mutex> lock(mutex_);
  batch_done_.wait(lock, [&batch] {
    return batch.completed.load(std::memory_order_acquire) == batch.n &&
           batch.drainers == 0;
  });
  batch_ = nullptr;
  t_last_error_count = batch.error_count;
  if (batch.error) {
    lock.unlock();
    std::rethrow_exception(batch.error);
  }
}

void ThreadPool::parallel_for_seeded(std::uint64_t seed, std::size_t n,
                                     FunctionRef<void(std::size_t, Rng&)> fn) {
  parallel_for(n, [seed, &fn](std::size_t i) {
    // Derive the stream from (seed, i) only — never from the executing
    // thread — so outputs are identical for any worker count.
    SplitMix64 mix(seed + 0x9e3779b97f4a7c15ULL * (i + 1));
    Rng rng(mix.next());
    fn(i, rng);
  });
}

}  // namespace drcell::util
