#include "util/thread_pool.h"

namespace drcell::util {

namespace {
// Set for the lifetime of a worker thread. Nested parallel_for calls from
// inside a pool task run inline instead of re-entering the pool, which would
// deadlock a fully busy pool.
thread_local bool t_is_pool_worker = false;
// Set while a thread is submitting/draining a batch: a nested parallel_for
// from the caller's own lane must not touch submission_mutex_ again
// (try_lock on a non-recursive mutex the thread already owns is UB).
thread_local bool t_in_parallel_for = false;
}  // namespace

std::size_t ThreadPool::default_worker_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 1 ? static_cast<std::size_t>(hw - 1) : 0;
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

ThreadPool::ThreadPool(std::size_t workers) {
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    workers_.emplace_back([this] {
      t_is_pool_worker = true;
      worker_loop();
    });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_ready_.wait(lock, [this] {
      return stop_ || (batch_ != nullptr && batch_->next < batch_->n);
    });
    if (stop_) return;
    drain_batch(*batch_, lock);
  }
}

void ThreadPool::drain_batch(Batch& batch,
                             std::unique_lock<std::mutex>& lock) {
  while (batch.next < batch.n) {
    const std::size_t i = batch.next++;
    lock.unlock();
    std::exception_ptr error;
    try {
      (*batch.fn)(i);
    } catch (...) {
      error = std::current_exception();
    }
    lock.lock();
    if (error && !batch.error) batch.error = error;
    if (++batch.completed == batch.n) batch_done_.notify_all();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1 || t_is_pool_worker || t_in_parallel_for) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::unique_lock<std::mutex> submission(submission_mutex_,
                                          std::try_to_lock);
  if (!submission.owns_lock()) {
    // Another thread's batch is in flight; running serially is always
    // correct and never deadlocks.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  t_in_parallel_for = true;
  struct ReentryGuard {
    ~ReentryGuard() { t_in_parallel_for = false; }
  } reentry_guard;

  Batch batch;
  batch.fn = &fn;
  batch.n = n;
  std::unique_lock<std::mutex> lock(mutex_);
  batch_ = &batch;
  work_ready_.notify_all();
  drain_batch(batch, lock);  // the caller is one of the lanes
  batch_done_.wait(lock, [&batch] { return batch.completed == batch.n; });
  batch_ = nullptr;
  if (batch.error) {
    lock.unlock();
    std::rethrow_exception(batch.error);
  }
}

void ThreadPool::parallel_for_seeded(
    std::uint64_t seed, std::size_t n,
    const std::function<void(std::size_t, Rng&)>& fn) {
  parallel_for(n, [seed, &fn](std::size_t i) {
    // Derive the stream from (seed, i) only — never from the executing
    // thread — so outputs are identical for any worker count.
    SplitMix64 mix(seed + 0x9e3779b97f4a7c15ULL * (i + 1));
    Rng rng(mix.next());
    fn(i, rng);
  });
}

}  // namespace drcell::util
