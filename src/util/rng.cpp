#include "util/rng.h"

#include <bit>
#include <cmath>

namespace drcell {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
  // All-zero state is the one invalid state for xoshiro; SplitMix64 cannot
  // produce four zeros from any seed, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 top bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  DRCELL_CHECK(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::size_t Rng::uniform_index(std::size_t n) {
  DRCELL_CHECK_MSG(n > 0, "uniform_index requires n > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % n;
  std::uint64_t x;
  do {
    x = next_u64();
  } while (x >= limit);
  return static_cast<std::size_t>(x % n);
}

int Rng::uniform_int(int lo, int hi) {
  DRCELL_CHECK(lo <= hi);
  return lo + static_cast<int>(uniform_index(
                  static_cast<std::size_t>(hi) - static_cast<std::size_t>(lo) + 1));
}

double Rng::normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u1, u2;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  const double two_pi = 6.283185307179586476925286766559;
  spare_normal_ = mag * std::sin(two_pi * u2);
  has_spare_normal_ = true;
  return mag * std::cos(two_pi * u2);
}

double Rng::normal(double mean, double sd) {
  DRCELL_CHECK(sd >= 0.0);
  return mean + sd * normal();
}

bool Rng::bernoulli(double p) {
  DRCELL_CHECK(p >= 0.0 && p <= 1.0);
  return uniform() < p;
}

Rng Rng::fork() { return Rng(next_u64()); }

std::array<std::uint64_t, 6> Rng::save_state() const {
  return {s_[0], s_[1], s_[2], s_[3],
          std::bit_cast<std::uint64_t>(spare_normal_),
          has_spare_normal_ ? std::uint64_t{1} : std::uint64_t{0}};
}

void Rng::restore_state(const std::array<std::uint64_t, 6>& words) {
  DRCELL_CHECK_MSG((words[0] | words[1] | words[2] | words[3]) != 0,
                   "all-zero xoshiro state is invalid");
  for (std::size_t i = 0; i < 4; ++i) s_[i] = words[i];
  spare_normal_ = std::bit_cast<double>(words[4]);
  has_spare_normal_ = words[5] != 0;
}

}  // namespace drcell
