// Shared weighted-chunk decomposition for pooled loops.
//
// Splits [0, count) into contiguous ranges of roughly equal weight so a
// parallel_for over chunks stays load-balanced when per-index cost varies
// (ALS ridge solves scale with a cell's observation count, LOO solves with
// the two system heights). Chunk boundaries only group tasks — they never
// change the arithmetic — so pooled callers stay bit-identical for any
// worker count and any policy tuning (the determinism contract in
// util/thread_pool.h).
//
// Hoisted out of cs/matrix_completion.cpp; the constants are retuned for
// the chunked-atomic ThreadPool dispatch (one fetch_add per range, measured
// at well under 1µs per chunk by `pool_dispatch_fine_grain` in
// bench_micro_components), which tolerates ~4x smaller chunks than the old
// mutex-per-index dispatch the 1024-observation floor was guessed for.
#pragma once

#include <cstddef>
#include <vector>

namespace drcell::util {

struct ChunkPolicy {
  /// Fewest weight units a chunk should carry: below this the per-index
  /// work is too cheap to amortise pool dispatch, so the decomposition
  /// collapses towards a single chunk (which parallel_for's n == 1 fast
  /// path runs inline with zero queue traffic).
  std::size_t min_weight_per_chunk = 256;
  /// Upper bound on chunks per pool lane. More chunks per lane means finer
  /// dynamic load balance but more claims on the shared atomic counter.
  std::size_t max_chunks_per_lane = 8;
};

/// Returns ascending bounds b with b.front() == 0 and b.back() == count;
/// chunk c spans [b[c], b[c+1]). Every chunk except possibly the last
/// carries at least max(policy.min_weight_per_chunk, total_weight /
/// max_chunks) weight. `weight` must have `count` entries and sum to
/// `total_weight` (callers already track both; passing the sum avoids a
/// second pass). Degenerate inputs: count == 0 yields {0, 0} (zero chunks),
/// count == 1 yields {0, 1}.
std::vector<std::size_t> chunk_bounds(std::size_t count, std::size_t lanes,
                                      std::size_t total_weight,
                                      const std::vector<std::size_t>& weight,
                                      const ChunkPolicy& policy = {});

}  // namespace drcell::util
