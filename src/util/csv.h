// Minimal CSV reader/writer used to export campaign results and to
// import/export sensing tasks. Handles quoting of fields containing
// commas, quotes or newlines; no external dependencies.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace drcell {

/// Writes rows of string or numeric fields as RFC-4180-style CSV.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  void write_row(const std::vector<std::string>& fields);
  void write_row(const std::vector<double>& values);

 private:
  static std::string escape(const std::string& field);
  std::ostream& out_;
};

/// Parses CSV text into rows of string fields.
/// Supports quoted fields with embedded commas, quotes ("" escape) and
/// newlines; accepts both \n and \r\n line endings.
class CsvReader {
 public:
  static std::vector<std::vector<std::string>> parse(const std::string& text);
  static std::vector<std::vector<std::string>> parse_stream(std::istream& in);
};

/// Parses every field of `row` as double. Throws CheckError on malformed
/// numeric input.
std::vector<double> parse_double_row(const std::vector<std::string>& row);

}  // namespace drcell
